package array

import (
	"math"
	"testing"

	"rim/internal/geom"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestLinear3Geometry(t *testing.T) {
	a := NewLinear3(0.029)
	if a.NumAntennas() != 3 {
		t.Fatalf("antennas = %d", a.NumAntennas())
	}
	pairs := a.Pairs()
	if len(pairs) != 3 {
		t.Fatalf("pairs = %d", len(pairs))
	}
	// Adjacent separation = spacing, outer pair = 2*spacing.
	if !almost(a.Separation(Pair{0, 1}), 0.029, 1e-12) {
		t.Errorf("sep(0,1) = %v", a.Separation(Pair{0, 1}))
	}
	if !almost(a.Separation(Pair{0, 2}), 0.058, 1e-12) {
		t.Errorf("sep(0,2) = %v", a.Separation(Pair{0, 2}))
	}
	// A linear array resolves exactly 2 directions.
	dirs := a.SupportedDirections(geom.Rad(1))
	if len(dirs) != 2 {
		t.Errorf("directions = %v", dirs)
	}
}

func TestHexagonalGeometry(t *testing.T) {
	spacing := 0.029
	a := NewHexagonal(spacing)
	if a.NumAntennas() != 6 {
		t.Fatalf("antennas = %d", a.NumAntennas())
	}
	if len(a.Pairs()) != 15 {
		t.Fatalf("pairs = %d", len(a.Pairs()))
	}
	// Regular hexagon: adjacent separation equals circumradius.
	ring := a.AdjacentRing()
	if len(ring) != 6 {
		t.Fatalf("ring = %d", len(ring))
	}
	for _, p := range ring {
		if !almost(a.Separation(p), spacing, 1e-9) {
			t.Errorf("adjacent sep(%v) = %v, want %v", p, a.Separation(p), spacing)
		}
	}
	if !almost(a.Radius(), spacing, 1e-9) {
		t.Errorf("radius = %v", a.Radius())
	}
	// The paper: a hexagonal array provides 12 directions (30° resolution).
	dirs := a.SupportedDirections(geom.Rad(1))
	if len(dirs) != 12 {
		t.Fatalf("directions = %d, want 12 (%v)", len(dirs), dirs)
	}
	for i := 1; i < len(dirs); i++ {
		if !almost(dirs[i]-dirs[i-1], geom.Rad(30), 1e-6) {
			t.Errorf("direction spacing %v, want 30°", geom.Deg(dirs[i]-dirs[i-1]))
		}
	}
	// NIC split: antennas 0-2 on NIC 0, 3-5 on NIC 1.
	for k, ant := range a.Antennas {
		wantNIC := 0
		if k >= 3 {
			wantNIC = 1
		}
		if ant.NIC != wantNIC {
			t.Errorf("antenna %d NIC = %d", k, ant.NIC)
		}
	}
}

func TestHexagonalParallelGroups(t *testing.T) {
	a := NewHexagonal(0.029)
	groups := a.ParallelGroups(geom.Rad(1), 1e-6)
	// 15 pairs fall into groups by (direction mod π, separation):
	// adjacent side pairs: 6 pairs, 3 directions -> 3 groups of 2
	// "skip-one" pairs (sep √3 r): 6 pairs, 3 directions -> 3 groups of 2
	// diameters: 3 pairs, 3 directions -> 3 groups of 1
	if len(groups) != 9 {
		t.Fatalf("groups = %d, want 9", len(groups))
	}
	twos, ones := 0, 0
	for _, g := range groups {
		switch len(g.Pairs) {
		case 2:
			twos++
		case 1:
			ones++
		default:
			t.Errorf("unexpected group size %d", len(g.Pairs))
		}
		// All members must share direction and separation.
		for _, p := range g.Pairs {
			if geom.AbsAngleDiff(a.Direction(p), g.Direction) > geom.Rad(1) {
				t.Errorf("pair %v direction %v != group %v",
					p, geom.Deg(a.Direction(p)), geom.Deg(g.Direction))
			}
			if !almost(a.Separation(p), g.Separation, 1e-9) {
				t.Errorf("pair %v separation mismatch", p)
			}
		}
	}
	if twos != 6 || ones != 3 {
		t.Errorf("group sizes: %d pairs-of-2, %d singletons; want 6 and 3", twos, ones)
	}
}

func TestPairDirectionConvention(t *testing.T) {
	a := NewLinear3(0.03)
	// Antenna 0 at -x, antenna 2 at +x: ray 0->2 points along +X.
	if d := a.Direction(Pair{0, 2}); !almost(d, 0, 1e-12) {
		t.Errorf("direction(0,2) = %v", d)
	}
	if d := a.Direction(Pair{2, 0}); !almost(math.Abs(d), math.Pi, 1e-12) {
		t.Errorf("direction(2,0) = %v", d)
	}
}

func TestWorldPositions(t *testing.T) {
	a := NewPairArray(0.06)
	pose := geom.Pose{Pos: geom.Vec2{X: 1, Y: 2}, Theta: math.Pi / 2}
	pos := a.WorldPositions(pose, nil)
	if len(pos) != 2 {
		t.Fatalf("len = %d", len(pos))
	}
	// Body (−0.03, 0) rotated 90° -> (0, −0.03), translated -> (1, 1.97).
	if !almost(pos[0].X, 1, 1e-12) || !almost(pos[0].Y, 1.97, 1e-12) {
		t.Errorf("pos[0] = %v", pos[0])
	}
	// Reuse should not grow the slice.
	pos2 := a.WorldPositions(pose, pos)
	if len(pos2) != 2 {
		t.Errorf("reuse len = %d", len(pos2))
	}
}

func TestLShape(t *testing.T) {
	a := NewLShape(0.029)
	if a.NumAntennas() != 3 {
		t.Fatal("L-shape must have 3 antennas")
	}
	// Horizontal pair (0,1) and vertical pair (0,2) are orthogonal.
	dh := a.Direction(Pair{0, 1})
	dv := a.Direction(Pair{0, 2})
	if !almost(geom.AbsAngleDiff(dh, dv), math.Pi/2, 1e-9) {
		t.Errorf("L-shape pair angle = %v", geom.Deg(geom.AbsAngleDiff(dh, dv)))
	}
}

func TestString(t *testing.T) {
	if s := NewHexagonal(0.03).String(); s != "hexagonal(6 antennas)" {
		t.Errorf("String = %q", s)
	}
}
