// Package array models the receive antenna arrays RIM runs on: the
// 3-antenna linear array available on a single COTS NIC, the L-shaped
// 3-antenna pointer unit, and the 6-element hexagonal array built from two
// NICs (Fig. 2 of the paper). It enumerates antenna pairs, the motion
// directions they can measure, and the parallel-isometric pair groups whose
// alignment matrices are averaged (§4.2).
package array

import (
	"fmt"
	"math"

	"rim/internal/geom"
)

// Antenna is one physical receive element.
type Antenna struct {
	// Pos is the element position in the body (array) frame, meters,
	// relative to the array center.
	Pos geom.Vec2
	// NIC is the index of the WiFi card this element belongs to (0 or 1
	// for the hexagonal prototype). Elements on different NICs share no
	// phase reference — only packet-level synchronization.
	NIC int
}

// Pair is an ordered pair of antenna indices (I, J). By the paper's
// convention, a positive alignment lag on pair (I, J) means antenna I is
// retracing antenna J's footprints, i.e. the array moves along the ray from
// I towards J.
type Pair struct {
	I, J int
}

// Array is a rigid arrangement of antennas.
type Array struct {
	Name     string
	Antennas []Antenna
	pairs    []Pair
}

// NumAntennas returns the element count.
func (a *Array) NumAntennas() int { return len(a.Antennas) }

// Pairs returns all unordered antenna pairs (i < j) once.
func (a *Array) Pairs() []Pair {
	if a.pairs == nil {
		for i := 0; i < len(a.Antennas); i++ {
			for j := i + 1; j < len(a.Antennas); j++ {
				a.pairs = append(a.pairs, Pair{I: i, J: j})
			}
		}
	}
	return a.pairs
}

// Separation returns the element spacing |pos_j - pos_i| for a pair.
func (a *Array) Separation(p Pair) float64 {
	return a.Antennas[p.I].Pos.Dist(a.Antennas[p.J].Pos)
}

// Direction returns the body-frame direction of the ray from antenna I to
// antenna J in radians.
func (a *Array) Direction(p Pair) float64 {
	return a.Antennas[p.J].Pos.Sub(a.Antennas[p.I].Pos).Angle()
}

// SupportedDirections returns the distinct body-frame motion directions the
// array can resolve (two per pair, deduplicated within tol radians), sorted
// ascending. A hexagonal array returns 12 directions at 30° spacing.
func (a *Array) SupportedDirections(tol float64) []float64 {
	var dirs []float64
	add := func(th float64) {
		th = geom.NormalizeAngle(th)
		for _, d := range dirs {
			if geom.AbsAngleDiff(d, th) < tol {
				return
			}
		}
		dirs = append(dirs, th)
	}
	for _, p := range a.Pairs() {
		d := a.Direction(p)
		add(d)
		add(d + math.Pi)
	}
	// Insertion sort; the list is tiny.
	for i := 1; i < len(dirs); i++ {
		for j := i; j > 0 && dirs[j] < dirs[j-1]; j-- {
			dirs[j], dirs[j-1] = dirs[j-1], dirs[j]
		}
	}
	return dirs
}

// ParallelGroup is a set of pairs sharing direction (mod π) and separation;
// their alignment matrices carry the same delay and are averaged for
// robustness (§4.2 of the paper).
type ParallelGroup struct {
	// Pairs all share Direction (within tolerance) and Separation. Pair
	// orientations are canonicalized so every member points the same way.
	Pairs []Pair
	// Direction is the body-frame direction of the I->J ray, radians.
	Direction float64
	// Separation is the common element spacing in meters.
	Separation float64
}

// ParallelGroups partitions all pairs into parallel-isometric groups.
// Pairs whose directions differ by π are flipped to a canonical orientation
// (direction in (-π/2, π/2] stays, otherwise the pair is reversed) so that
// lags from grouped matrices agree in sign.
func (a *Array) ParallelGroups(angTol, sepTol float64) []ParallelGroup {
	var groups []ParallelGroup
	for _, p := range a.Pairs() {
		d := a.Direction(p)
		// Canonical orientation: direction in (-π/2, π/2].
		if d <= -math.Pi/2 || d > math.Pi/2 {
			p = Pair{I: p.J, J: p.I}
			d = a.Direction(p)
		}
		sep := a.Separation(p)
		placed := false
		for gi := range groups {
			g := &groups[gi]
			if geom.AbsAngleDiff(g.Direction, d) < angTol &&
				math.Abs(g.Separation-sep) < sepTol {
				g.Pairs = append(g.Pairs, p)
				placed = true
				break
			}
		}
		if !placed {
			groups = append(groups, ParallelGroup{
				Pairs:      []Pair{p},
				Direction:  d,
				Separation: sep,
			})
		}
	}
	return groups
}

// Subset returns a new Array keeping only the antennas at the given global
// indices (strictly ascending). It is the geometric basis of degraded
// operation: when an RF chain dies mid-stream, the pipeline re-derives the
// pair groups from the surviving elements and keeps measuring with them.
// Element positions stay in the original body frame, so headings from the
// reduced array remain directly comparable with full-array output.
func (a *Array) Subset(idx []int) (*Array, error) {
	if len(idx) == 0 {
		return nil, fmt.Errorf("array: empty antenna subset")
	}
	out := &Array{Name: fmt.Sprintf("%s/sub%d", a.Name, len(idx))}
	prev := -1
	for _, i := range idx {
		if i <= prev || i < 0 || i >= len(a.Antennas) {
			return nil, fmt.Errorf("array: subset indices must be strictly ascending and in [0,%d): got %v",
				len(a.Antennas), idx)
		}
		prev = i
		out.Antennas = append(out.Antennas, a.Antennas[i])
	}
	return out, nil
}

// AdjacentRing returns the ordered ring of adjacent pairs for circular
// arrays (antenna i with antenna (i+1) mod n), used for rotation detection:
// during an in-place rotation every adjacent pair aligns simultaneously.
func (a *Array) AdjacentRing() []Pair {
	n := len(a.Antennas)
	out := make([]Pair, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Pair{I: i, J: (i + 1) % n})
	}
	return out
}

// Radius returns the maximum element distance from the array center (the
// centroid is assumed to be the body-frame origin).
func (a *Array) Radius() float64 {
	var r float64
	for _, ant := range a.Antennas {
		if d := ant.Pos.Norm(); d > r {
			r = d
		}
	}
	return r
}

// WorldPositions returns the world-frame position of every element for the
// given body pose, appending into dst (which may be nil).
func (a *Array) WorldPositions(pose geom.Pose, dst []geom.Vec2) []geom.Vec2 {
	dst = dst[:0]
	for _, ant := range a.Antennas {
		dst = append(dst, pose.ToWorld(ant.Pos))
	}
	return dst
}

// NewLinear3 builds the 3-antenna linear array of a single COTS NIC with
// the given element spacing (the paper uses λ/2 = 2.58 cm... strictly
// 2.9 cm at 5.18 GHz; the paper quotes 2.58 cm for its channel). Elements
// lie on the body X axis, centered.
func NewLinear3(spacing float64) *Array {
	return &Array{
		Name: "linear3",
		Antennas: []Antenna{
			{Pos: geom.Vec2{X: -spacing}, NIC: 0},
			{Pos: geom.Vec2{X: 0}, NIC: 0},
			{Pos: geom.Vec2{X: spacing}, NIC: 0},
		},
	}
}

// NewLShape builds the compact 3-antenna "L" pointer unit of the gesture
// application (§6.3.2): one corner element, one along +X, one along +Y.
func NewLShape(spacing float64) *Array {
	return &Array{
		Name: "lshape",
		Antennas: []Antenna{
			{Pos: geom.Vec2{X: 0, Y: 0}, NIC: 0},
			{Pos: geom.Vec2{X: spacing, Y: 0}, NIC: 0},
			{Pos: geom.Vec2{X: 0, Y: spacing}, NIC: 0},
		},
	}
}

// NewHexagonal builds the 6-element circular array of Fig. 2: two 3-antenna
// NICs arranged on a circle of radius equal to the element spacing (a
// regular hexagon's side equals its circumradius). Antennas 0-2 belong to
// NIC 0 and 3-5 to NIC 1; element k sits at angle 60°·k.
func NewHexagonal(spacing float64) *Array {
	arr := &Array{Name: "hexagonal"}
	for k := 0; k < 6; k++ {
		nic := 0
		if k >= 3 {
			nic = 1
		}
		arr.Antennas = append(arr.Antennas, Antenna{
			Pos: geom.FromPolar(spacing, geom.Rad(60*float64(k))),
			NIC: nic,
		})
	}
	return arr
}

// NewPairArray builds a minimal 2-antenna array for 1D experiments (Fig. 1).
func NewPairArray(spacing float64) *Array {
	return &Array{
		Name: "pair",
		Antennas: []Antenna{
			{Pos: geom.Vec2{X: -spacing / 2}, NIC: 0},
			{Pos: geom.Vec2{X: spacing / 2}, NIC: 0},
		},
	}
}

// String implements fmt.Stringer.
func (a *Array) String() string {
	return fmt.Sprintf("%s(%d antennas)", a.Name, len(a.Antennas))
}
