package viz

import (
	"strings"
	"testing"

	"rim/internal/floorplan"
	"rim/internal/geom"
)

func TestCanvasPutAndCollision(t *testing.T) {
	c := NewCanvas(10, 10, geom.Vec2{}, geom.Vec2{X: 10, Y: 10})
	p := geom.Vec2{X: 5, Y: 5}
	c.Put(p, '.')
	c.Put(p, '*')
	if !strings.Contains(c.String(), "X") {
		t.Error("collision glyph missing")
	}
	// Structural glyphs overwrite.
	c.Put(p, '#')
	if strings.Contains(c.String(), "X") {
		t.Error("wall did not overwrite")
	}
	// Out-of-viewport draws are ignored.
	c.Put(geom.Vec2{X: 99, Y: 99}, '*')
	if strings.Count(c.String(), "*") != 0 {
		t.Error("out-of-viewport point drawn")
	}
}

func TestPolylineDense(t *testing.T) {
	c := NewCanvas(20, 5, geom.Vec2{}, geom.Vec2{X: 20, Y: 5})
	c.Polyline([]geom.Vec2{{X: 1, Y: 2}, {X: 18, Y: 2}}, '.')
	// A horizontal line must fill (nearly) every column it spans.
	best := 0
	for _, row := range strings.Split(c.String(), "\n") {
		if n := strings.Count(row, "."); n > best {
			best = n
		}
	}
	if best < 15 {
		t.Errorf("sparse polyline (max %d dots per row):\n%s", best, c)
	}
	// Single point polyline.
	c2 := NewCanvas(10, 5, geom.Vec2{}, geom.Vec2{X: 10, Y: 5})
	c2.Polyline([]geom.Vec2{{X: 5, Y: 2}}, '*')
	if strings.Count(c2.String(), "*") != 1 {
		t.Error("single-point polyline")
	}
}

func TestWallsAndMarkers(t *testing.T) {
	var plan floorplan.Plan
	plan.Bounds = geom.Rect{Max: geom.Vec2{X: 10, Y: 10}}
	plan.AddWall(geom.Vec2{X: 0, Y: 5}, geom.Vec2{X: 10, Y: 5}, 4)
	plan.AddPillar(geom.Rect{Min: geom.Vec2{X: 2, Y: 2}, Max: geom.Vec2{X: 3, Y: 3}})
	out := TruthVsEstimate(30, 15, &plan,
		[]geom.Vec2{{X: 1, Y: 1}, {X: 8, Y: 1}},
		[]geom.Vec2{{X: 1, Y: 1}, {X: 8, Y: 1.4}},
		map[byte]geom.Vec2{'A': {X: 9, Y: 9}})
	for _, want := range []string{"#", ".", "*", "A", "legend"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestDegenerateViewport(t *testing.T) {
	// All content at one point: must not divide by zero.
	out := TruthVsEstimate(10, 5, nil,
		[]geom.Vec2{{X: 3, Y: 3}}, nil, nil)
	if !strings.Contains(out, ".") {
		t.Errorf("point not drawn:\n%s", out)
	}
	// Nothing at all.
	empty := TruthVsEstimate(10, 5, nil, nil, nil, nil)
	if !strings.Contains(empty, "legend") {
		t.Error("empty render broken")
	}
	// Tiny canvas clamps.
	c := NewCanvas(1, 1, geom.Vec2{}, geom.Vec2{})
	if c.String() == "" {
		t.Error("tiny canvas empty")
	}
}
