// Package viz renders trajectories and floorplans as ASCII art for the
// demo binaries and examples: ground truth and estimate traces over an
// optional wall map, with collision glyphs where they coincide.
package viz

import (
	"math"
	"strings"

	"rim/internal/floorplan"
	"rim/internal/geom"
)

// Canvas is a character grid over a world-coordinate viewport.
type Canvas struct {
	cols, rows int
	min, max   geom.Vec2
	grid       [][]byte
}

// NewCanvas creates a canvas of cols x rows characters covering the world
// rectangle [min, max]. Degenerate viewports are padded to avoid division
// by zero.
func NewCanvas(cols, rows int, min, max geom.Vec2) *Canvas {
	if cols < 2 {
		cols = 2
	}
	if rows < 2 {
		rows = 2
	}
	if max.X-min.X < 1e-9 {
		max.X = min.X + 1
	}
	if max.Y-min.Y < 1e-9 {
		max.Y = min.Y + 1
	}
	c := &Canvas{cols: cols, rows: rows, min: min, max: max}
	c.grid = make([][]byte, rows)
	for y := range c.grid {
		c.grid[y] = make([]byte, cols)
		for x := range c.grid[y] {
			c.grid[y][x] = ' '
		}
	}
	return c
}

// cell maps a world point to grid coordinates.
func (c *Canvas) cell(p geom.Vec2) (int, int, bool) {
	x := int((p.X - c.min.X) / (c.max.X - c.min.X) * float64(c.cols-1))
	y := c.rows - 1 - int((p.Y-c.min.Y)/(c.max.Y-c.min.Y)*float64(c.rows-1))
	if x < 0 || x >= c.cols || y < 0 || y >= c.rows {
		return 0, 0, false
	}
	return x, y, true
}

// Put draws ch at world point p. Drawing '.' over '*' (or vice versa)
// produces 'X'; structural glyphs ('#', letters) overwrite anything.
func (c *Canvas) Put(p geom.Vec2, ch byte) {
	x, y, ok := c.cell(p)
	if !ok {
		return
	}
	cur := c.grid[y][x]
	switch {
	case (cur == '.' && ch == '*') || (cur == '*' && ch == '.'):
		c.grid[y][x] = 'X'
	case ch == '#' || (ch >= 'A' && ch <= 'Z'):
		c.grid[y][x] = ch
	case cur == ' ':
		c.grid[y][x] = ch
	}
}

// Polyline draws a densified polyline with the given glyph.
func (c *Canvas) Polyline(pts []geom.Vec2, ch byte) {
	if len(pts) == 1 {
		c.Put(pts[0], ch)
		return
	}
	stepW := (c.max.X - c.min.X) / float64(c.cols)
	for i := 1; i < len(pts); i++ {
		a, b := pts[i-1], pts[i]
		n := int(math.Ceil(a.Dist(b)/(stepW/2))) + 1
		for s := 0; s <= n; s++ {
			c.Put(a.Lerp(b, float64(s)/float64(n)), ch)
		}
	}
}

// Walls draws a floorplan's walls and pillars with '#'.
func (c *Canvas) Walls(plan *floorplan.Plan) {
	if plan == nil {
		return
	}
	for _, w := range plan.Walls {
		c.Polyline([]geom.Vec2{w.Seg.A, w.Seg.B}, '#')
	}
	for _, p := range plan.Pillars {
		c.Put(p.Center(), '#')
	}
}

// String renders the canvas.
func (c *Canvas) String() string {
	var b strings.Builder
	for _, row := range c.grid {
		b.Write(row)
		b.WriteByte('\n')
	}
	return b.String()
}

// TruthVsEstimate is the one-call renderer used by the demos: walls (if
// any), the ground-truth trace as '.', the estimate as '*' ('X' where they
// coincide), plus optional labelled markers (e.g. the AP position).
func TruthVsEstimate(cols, rows int, plan *floorplan.Plan, truth, est []geom.Vec2, markers map[byte]geom.Vec2) string {
	min, max := bounds(plan, truth, est, markers)
	c := NewCanvas(cols, rows, min, max)
	c.Walls(plan)
	c.Polyline(truth, '.')
	c.Polyline(est, '*')
	for ch, p := range markers {
		c.Put(p, ch)
	}
	return c.String() + "legend: .=truth  *=estimate  X=both  #=wall\n"
}

// bounds computes a padded viewport covering all drawable content.
func bounds(plan *floorplan.Plan, truth, est []geom.Vec2, markers map[byte]geom.Vec2) (geom.Vec2, geom.Vec2) {
	min := geom.Vec2{X: math.Inf(1), Y: math.Inf(1)}
	max := geom.Vec2{X: math.Inf(-1), Y: math.Inf(-1)}
	grow := func(p geom.Vec2) {
		min.X = math.Min(min.X, p.X)
		min.Y = math.Min(min.Y, p.Y)
		max.X = math.Max(max.X, p.X)
		max.Y = math.Max(max.Y, p.Y)
	}
	if plan != nil {
		grow(plan.Bounds.Min)
		grow(plan.Bounds.Max)
	}
	for _, p := range truth {
		grow(p)
	}
	for _, p := range est {
		grow(p)
	}
	for _, p := range markers {
		grow(p)
	}
	if math.IsInf(min.X, 1) {
		return geom.Vec2{}, geom.Vec2{X: 1, Y: 1}
	}
	pad := 0.03 * math.Max(max.X-min.X, max.Y-min.Y)
	if pad == 0 {
		pad = 0.5
	}
	return geom.Vec2{X: min.X - pad, Y: min.Y - pad}, geom.Vec2{X: max.X + pad, Y: max.Y + pad}
}
