package camera

import (
	"math"
	"testing"

	"rim/internal/geom"
	"rim/internal/traj"
)

func TestTrackFollowsTrajectory(t *testing.T) {
	tr := traj.Line(100, geom.Vec2{X: 1, Y: 2}, 0, 0, 2.0, 0.5)
	cfg := DefaultConfig(1)
	cfg.SyncOffsetSeconds = 0
	fixes := Track(tr, cfg)
	if len(fixes) < int(tr.Duration()*cfg.Rate) {
		t.Fatalf("too few fixes: %d", len(fixes))
	}
	// Every fix must be within a few mm of the true path position.
	for _, f := range fixes {
		truth := positionAt(tr, f.T)
		if f.Pos.Dist(truth) > 0.01 {
			t.Fatalf("fix at %v off by %v m", f.T, f.Pos.Dist(truth))
		}
	}
}

func TestTrackPathLength(t *testing.T) {
	tr := traj.Line(100, geom.Vec2{}, 0, 0, 3.0, 1.0)
	cfg := DefaultConfig(2)
	cfg.PixelNoiseStd = 0
	cfg.SyncOffsetSeconds = 0
	fixes := Track(tr, cfg)
	if d := PathLength(fixes); math.Abs(d-3.0) > 0.05 {
		t.Errorf("path length = %v, want 3.0", d)
	}
}

func TestSyncOffsetShiftsFixes(t *testing.T) {
	tr := traj.Line(100, geom.Vec2{}, 0, 0, 1.0, 0.5)
	a := Track(tr, Config{PixelsPerMeter: 1e6, Rate: 30, SyncOffsetSeconds: 0})
	b := Track(tr, Config{PixelsPerMeter: 1e6, Rate: 30, SyncOffsetSeconds: 0.1})
	// At the same camera time, b sees the position 0.1 s later: +5 cm.
	mid := len(a) / 2
	diff := b[mid].Pos.X - a[mid].Pos.X
	if math.Abs(diff-0.05) > 0.005 {
		t.Errorf("sync shift = %v m, want 0.05", diff)
	}
}

func TestPositionAtInterpolation(t *testing.T) {
	fixes := []Fix{
		{T: 0, Pos: geom.Vec2{X: 0}},
		{T: 1, Pos: geom.Vec2{X: 1}},
		{T: 2, Pos: geom.Vec2{X: 3}},
	}
	if got := PositionAt(fixes, 0.5); math.Abs(got.X-0.5) > 1e-12 {
		t.Errorf("interp = %v", got)
	}
	if got := PositionAt(fixes, 1.5); math.Abs(got.X-2) > 1e-12 {
		t.Errorf("interp = %v", got)
	}
	if PositionAt(fixes, -1) != fixes[0].Pos || PositionAt(fixes, 99) != fixes[2].Pos {
		t.Error("clamping failed")
	}
	if PositionAt(nil, 1) != (geom.Vec2{}) {
		t.Error("empty fixes must return zero")
	}
}

func TestQuantization(t *testing.T) {
	tr := traj.Line(100, geom.Vec2{}, 0, 0, 0.5, 0.5)
	cfg := Config{PixelsPerMeter: 10, PixelNoiseStd: 0, Rate: 30} // 10 cm pixels
	fixes := Track(tr, cfg)
	for _, f := range fixes {
		// All coordinates must be multiples of 0.1 m.
		if r := math.Mod(f.Pos.X+1e-9, 0.1); r > 1e-6 && r < 0.1-1e-6 {
			t.Fatalf("unquantized fix %v", f.Pos)
		}
	}
}

func TestEmptyTrajectory(t *testing.T) {
	empty := &traj.Trajectory{Rate: 100}
	if got := positionAt(empty, 1); got != (geom.Vec2{}) {
		t.Error("empty trajectory position must be zero")
	}
}
