// Package camera simulates the camera-based ground-truth system of §6.1:
// the target is tracked in pixel coordinates (quantized, slightly noisy)
// and converted to 2D world coordinates, with a small synchronization
// offset relative to the CSI clock. Evaluation code compares RIM estimates
// against this reference exactly the way the paper does — synchronized at
// the initial movement point and paired sample-by-sample.
package camera

import (
	"math"
	"math/rand"

	"rim/internal/geom"
	"rim/internal/traj"
)

// Config describes the tracking rig.
type Config struct {
	// PixelsPerMeter is the image resolution of the world plane
	// (default 400: 2.5 mm/pixel).
	PixelsPerMeter float64
	// PixelNoiseStd is the marker-detection jitter in pixels (default 1).
	PixelNoiseStd float64
	// SyncOffsetSeconds shifts the camera clock relative to the CSI clock
	// (the paper notes slight offsets that "do not favor" evaluation).
	SyncOffsetSeconds float64
	// Rate is the camera frame rate (default 30 fps).
	Rate float64
	// Seed drives the pixel jitter.
	Seed int64
}

// DefaultConfig returns a realistic rig.
func DefaultConfig(seed int64) Config {
	return Config{
		PixelsPerMeter:    400,
		PixelNoiseStd:     1,
		SyncOffsetSeconds: 0.02,
		Rate:              30,
		Seed:              seed,
	}
}

// Fix is one camera-derived position fix.
type Fix struct {
	T   float64 // camera time (CSI clock + sync offset)
	Pos geom.Vec2
}

// Track films the trajectory and returns world-coordinate fixes.
func Track(tr *traj.Trajectory, cfg Config) []Fix {
	if cfg.PixelsPerMeter <= 0 {
		cfg.PixelsPerMeter = 400
	}
	if cfg.Rate <= 0 {
		cfg.Rate = 30
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	dur := tr.Duration()
	var out []Fix
	for t := 0.0; t <= dur; t += 1 / cfg.Rate {
		p := positionAt(tr, t+cfg.SyncOffsetSeconds)
		// Pixel quantization + jitter.
		px := math.Round(p.X*cfg.PixelsPerMeter + rng.NormFloat64()*cfg.PixelNoiseStd)
		py := math.Round(p.Y*cfg.PixelsPerMeter + rng.NormFloat64()*cfg.PixelNoiseStd)
		out = append(out, Fix{
			T:   t,
			Pos: geom.Vec2{X: px / cfg.PixelsPerMeter, Y: py / cfg.PixelsPerMeter},
		})
	}
	return out
}

// positionAt linearly interpolates the trajectory position at time t,
// clamping outside the recorded range.
func positionAt(tr *traj.Trajectory, t float64) geom.Vec2 {
	n := len(tr.Samples)
	if n == 0 {
		return geom.Vec2{}
	}
	if t <= tr.Samples[0].T {
		return tr.Samples[0].Pose.Pos
	}
	if t >= tr.Samples[n-1].T {
		return tr.Samples[n-1].Pose.Pos
	}
	idx := int(t * tr.Rate)
	if idx >= n-1 {
		idx = n - 2
	}
	a, b := tr.Samples[idx], tr.Samples[idx+1]
	span := b.T - a.T
	if span <= 0 {
		return a.Pose.Pos
	}
	frac := (t - a.T) / span
	return a.Pose.Pos.Lerp(b.Pose.Pos, frac)
}

// PositionAt resamples the camera track at an arbitrary time by linear
// interpolation (clamped).
func PositionAt(fixes []Fix, t float64) geom.Vec2 {
	n := len(fixes)
	if n == 0 {
		return geom.Vec2{}
	}
	if t <= fixes[0].T {
		return fixes[0].Pos
	}
	if t >= fixes[n-1].T {
		return fixes[n-1].Pos
	}
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if fixes[mid].T <= t {
			lo = mid
		} else {
			hi = mid
		}
	}
	span := fixes[hi].T - fixes[lo].T
	if span <= 0 {
		return fixes[lo].Pos
	}
	frac := (t - fixes[lo].T) / span
	return fixes[lo].Pos.Lerp(fixes[hi].Pos, frac)
}

// PathLength returns the total path length of the camera track — the
// ground-truth moving distance used by the distance-accuracy experiments.
func PathLength(fixes []Fix) float64 {
	var d float64
	for i := 1; i < len(fixes); i++ {
		d += fixes[i].Pos.Dist(fixes[i-1].Pos)
	}
	return d
}
