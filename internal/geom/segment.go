package geom

import "math"

// Segment is a closed 2D line segment between A and B.
type Segment struct {
	A, B Vec2
}

// Length returns the segment length.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// Dir returns the unit direction from A to B.
func (s Segment) Dir() Vec2 { return s.B.Sub(s.A).Unit() }

// Midpoint returns the segment midpoint.
func (s Segment) Midpoint() Vec2 { return s.A.Lerp(s.B, 0.5) }

// PointAt returns A + t*(B-A) for t in [0,1].
func (s Segment) PointAt(t float64) Vec2 { return s.A.Lerp(s.B, t) }

// Intersects reports whether segments s and o share at least one point,
// including touching endpoints and collinear overlap.
func (s Segment) Intersects(o Segment) bool {
	d1 := orient(o.A, o.B, s.A)
	d2 := orient(o.A, o.B, s.B)
	d3 := orient(s.A, s.B, o.A)
	d4 := orient(s.A, s.B, o.B)
	if ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
		((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0)) {
		return true
	}
	// Collinear / endpoint-touching cases.
	if d1 == 0 && onSegment(o.A, o.B, s.A) {
		return true
	}
	if d2 == 0 && onSegment(o.A, o.B, s.B) {
		return true
	}
	if d3 == 0 && onSegment(s.A, s.B, o.A) {
		return true
	}
	if d4 == 0 && onSegment(s.A, s.B, o.B) {
		return true
	}
	return false
}

// Intersection returns the intersection point of the two segments and true
// if they cross at a single proper point. For parallel, collinear or
// non-crossing segments it returns the zero vector and false.
func (s Segment) Intersection(o Segment) (Vec2, bool) {
	r := s.B.Sub(s.A)
	q := o.B.Sub(o.A)
	den := r.Cross(q)
	if den == 0 {
		return Vec2{}, false
	}
	diff := o.A.Sub(s.A)
	t := diff.Cross(q) / den
	u := diff.Cross(r) / den
	if t < 0 || t > 1 || u < 0 || u > 1 {
		return Vec2{}, false
	}
	return s.PointAt(t), true
}

// DistToPoint returns the minimum distance from p to the segment.
func (s Segment) DistToPoint(p Vec2) float64 {
	ab := s.B.Sub(s.A)
	den := ab.NormSq()
	if den == 0 {
		return s.A.Dist(p)
	}
	t := p.Sub(s.A).Dot(ab) / den
	t = math.Max(0, math.Min(1, t))
	return s.PointAt(t).Dist(p)
}

// ClosestPoint returns the point on the segment closest to p.
func (s Segment) ClosestPoint(p Vec2) Vec2 {
	ab := s.B.Sub(s.A)
	den := ab.NormSq()
	if den == 0 {
		return s.A
	}
	t := p.Sub(s.A).Dot(ab) / den
	t = math.Max(0, math.Min(1, t))
	return s.PointAt(t)
}

func orient(a, b, c Vec2) float64 { return b.Sub(a).Cross(c.Sub(a)) }

func onSegment(a, b, p Vec2) bool {
	return math.Min(a.X, b.X) <= p.X && p.X <= math.Max(a.X, b.X) &&
		math.Min(a.Y, b.Y) <= p.Y && p.Y <= math.Max(a.Y, b.Y)
}

// Rect is an axis-aligned rectangle, used for rooms and pillars.
type Rect struct {
	Min, Max Vec2
}

// Contains reports whether p lies inside or on the boundary of r.
func (r Rect) Contains(p Vec2) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Center returns the rectangle center.
func (r Rect) Center() Vec2 { return r.Min.Lerp(r.Max, 0.5) }

// Edges returns the four boundary segments of r in CCW order.
func (r Rect) Edges() [4]Segment {
	bl := r.Min
	br := Vec2{r.Max.X, r.Min.Y}
	tr := r.Max
	tl := Vec2{r.Min.X, r.Max.Y}
	return [4]Segment{{bl, br}, {br, tr}, {tr, tl}, {tl, bl}}
}

// IntersectsSegment reports whether segment s crosses or touches the
// rectangle boundary or interior.
func (r Rect) IntersectsSegment(s Segment) bool {
	if r.Contains(s.A) || r.Contains(s.B) {
		return true
	}
	for _, e := range r.Edges() {
		if e.Intersects(s) {
			return true
		}
	}
	return false
}
