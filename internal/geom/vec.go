// Package geom provides the small set of 2D vector, angle and segment
// primitives shared by the RIM substrates: antenna-array layout, trajectory
// generation, floorplan collision tests and the particle filter.
//
// Conventions: world coordinates are in meters, X to the right and Y up.
// Angles are in radians, measured counter-clockwise from the +X axis, and
// normalized to (-π, π] by NormalizeAngle.
package geom

import "math"

// Vec2 is a 2D point or displacement in meters.
type Vec2 struct {
	X, Y float64
}

// Add returns v + w.
func (v Vec2) Add(w Vec2) Vec2 { return Vec2{v.X + w.X, v.Y + w.Y} }

// Sub returns v - w.
func (v Vec2) Sub(w Vec2) Vec2 { return Vec2{v.X - w.X, v.Y - w.Y} }

// Scale returns v scaled by s.
func (v Vec2) Scale(s float64) Vec2 { return Vec2{v.X * s, v.Y * s} }

// Dot returns the dot product v·w.
func (v Vec2) Dot(w Vec2) float64 { return v.X*w.X + v.Y*w.Y }

// Cross returns the scalar (z-component) cross product v×w.
func (v Vec2) Cross(w Vec2) float64 { return v.X*w.Y - v.Y*w.X }

// Norm returns the Euclidean length of v.
func (v Vec2) Norm() float64 { return math.Hypot(v.X, v.Y) }

// NormSq returns the squared Euclidean length of v.
func (v Vec2) NormSq() float64 { return v.X*v.X + v.Y*v.Y }

// Dist returns the Euclidean distance between v and w.
func (v Vec2) Dist(w Vec2) float64 { return v.Sub(w).Norm() }

// Unit returns v scaled to unit length. The zero vector is returned
// unchanged so callers never divide by zero.
func (v Vec2) Unit() Vec2 {
	n := v.Norm()
	if n == 0 {
		return Vec2{}
	}
	return v.Scale(1 / n)
}

// Angle returns the direction of v in radians in (-π, π].
func (v Vec2) Angle() float64 { return math.Atan2(v.Y, v.X) }

// Rotate returns v rotated counter-clockwise by theta radians.
func (v Vec2) Rotate(theta float64) Vec2 {
	s, c := math.Sincos(theta)
	return Vec2{v.X*c - v.Y*s, v.X*s + v.Y*c}
}

// Perp returns v rotated counter-clockwise by 90 degrees.
func (v Vec2) Perp() Vec2 { return Vec2{-v.Y, v.X} }

// Lerp returns the linear interpolation v + t*(w-v).
func (v Vec2) Lerp(w Vec2, t float64) Vec2 {
	return Vec2{v.X + t*(w.X-v.X), v.Y + t*(w.Y-v.Y)}
}

// FromPolar returns the vector with length r and direction theta.
func FromPolar(r, theta float64) Vec2 {
	s, c := math.Sincos(theta)
	return Vec2{r * c, r * s}
}

// NormalizeAngle wraps theta into (-π, π].
func NormalizeAngle(theta float64) float64 {
	theta = math.Mod(theta, 2*math.Pi)
	if theta > math.Pi {
		theta -= 2 * math.Pi
	} else if theta <= -math.Pi {
		theta += 2 * math.Pi
	}
	return theta
}

// AngleDiff returns the smallest signed difference a-b wrapped into (-π, π].
func AngleDiff(a, b float64) float64 { return NormalizeAngle(a - b) }

// AbsAngleDiff returns |AngleDiff(a, b)|.
func AbsAngleDiff(a, b float64) float64 { return math.Abs(AngleDiff(a, b)) }

// Deg converts radians to degrees.
func Deg(rad float64) float64 { return rad * 180 / math.Pi }

// Rad converts degrees to radians.
func Rad(deg float64) float64 { return deg * math.Pi / 180 }
