package geom

import (
	"math"
	"testing"
	"testing/quick"
)

const eps = 1e-12

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestVecBasicOps(t *testing.T) {
	v := Vec2{3, 4}
	w := Vec2{-1, 2}
	if got := v.Add(w); got != (Vec2{2, 6}) {
		t.Errorf("Add = %v", got)
	}
	if got := v.Sub(w); got != (Vec2{4, 2}) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Scale(2); got != (Vec2{6, 8}) {
		t.Errorf("Scale = %v", got)
	}
	if got := v.Dot(w); got != 5 {
		t.Errorf("Dot = %v", got)
	}
	if got := v.Cross(w); got != 10 {
		t.Errorf("Cross = %v", got)
	}
	if got := v.Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
	if got := v.NormSq(); got != 25 {
		t.Errorf("NormSq = %v", got)
	}
	if got := v.Dist(w); !almost(got, math.Hypot(4, 2)) {
		t.Errorf("Dist = %v", got)
	}
}

func TestVecUnit(t *testing.T) {
	u := Vec2{3, 4}.Unit()
	if !almost(u.Norm(), 1) {
		t.Errorf("Unit norm = %v", u.Norm())
	}
	if got := (Vec2{}).Unit(); got != (Vec2{}) {
		t.Errorf("Unit of zero = %v, want zero", got)
	}
}

func TestVecRotate(t *testing.T) {
	v := Vec2{1, 0}
	r := v.Rotate(math.Pi / 2)
	if !almost(r.X, 0) || !almost(r.Y, 1) {
		t.Errorf("Rotate 90 = %v", r)
	}
	if p := v.Perp(); !almost(p.X, 0) || !almost(p.Y, 1) {
		t.Errorf("Perp = %v", p)
	}
}

func TestVecRotatePreservesNorm(t *testing.T) {
	f := func(x, y, theta float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.IsNaN(theta) ||
			math.IsInf(x, 0) || math.IsInf(y, 0) || math.IsInf(theta, 0) {
			return true
		}
		// Keep magnitudes sane so float error bounds hold.
		x = math.Mod(x, 1e6)
		y = math.Mod(y, 1e6)
		theta = math.Mod(theta, 1e3)
		v := Vec2{x, y}
		r := v.Rotate(theta)
		return math.Abs(r.Norm()-v.Norm()) < 1e-6*(1+v.Norm())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFromPolarRoundTrip(t *testing.T) {
	for _, th := range []float64{0, 0.3, math.Pi / 2, -2.5, 3.1} {
		v := FromPolar(2.5, th)
		if !almost(v.Norm(), 2.5) {
			t.Errorf("FromPolar norm = %v", v.Norm())
		}
		if !almost(NormalizeAngle(v.Angle()-th), 0) {
			t.Errorf("FromPolar angle = %v want %v", v.Angle(), th)
		}
	}
}

func TestNormalizeAngle(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{math.Pi, math.Pi},
		{-math.Pi, math.Pi},
		{2 * math.Pi, 0},
		{3 * math.Pi, math.Pi},
		{-3 * math.Pi, math.Pi},
		{math.Pi / 2, math.Pi / 2},
		{5 * math.Pi / 2, math.Pi / 2},
	}
	for _, c := range cases {
		if got := NormalizeAngle(c.in); !almost(got, c.want) {
			t.Errorf("NormalizeAngle(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestNormalizeAngleRange(t *testing.T) {
	f := func(theta float64) bool {
		if math.IsNaN(theta) || math.IsInf(theta, 0) {
			return true
		}
		theta = math.Mod(theta, 1e4)
		n := NormalizeAngle(theta)
		return n > -math.Pi-eps && n <= math.Pi+eps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAngleDiff(t *testing.T) {
	if got := AngleDiff(0.1, -0.1); !almost(got, 0.2) {
		t.Errorf("AngleDiff = %v", got)
	}
	// Wrap-around: 175 deg vs -175 deg differ by 10 deg, not 350.
	if got := AbsAngleDiff(Rad(175), Rad(-175)); !almost(got, Rad(10)) {
		t.Errorf("AbsAngleDiff wrap = %v deg", Deg(got))
	}
}

func TestDegRadRoundTrip(t *testing.T) {
	for _, d := range []float64{0, 30, 90, -45, 180, 359} {
		if got := Deg(Rad(d)); !almost(got, d) {
			t.Errorf("Deg(Rad(%v)) = %v", d, got)
		}
	}
}

func TestSegmentIntersects(t *testing.T) {
	s := Segment{Vec2{0, 0}, Vec2{2, 2}}
	cross := Segment{Vec2{0, 2}, Vec2{2, 0}}
	if !s.Intersects(cross) {
		t.Error("crossing segments not detected")
	}
	apart := Segment{Vec2{3, 3}, Vec2{4, 4}}
	if s.Intersects(apart) {
		t.Error("disjoint collinear segments reported intersecting")
	}
	touch := Segment{Vec2{2, 2}, Vec2{3, 0}}
	if !s.Intersects(touch) {
		t.Error("endpoint touch not detected")
	}
	parallel := Segment{Vec2{0, 1}, Vec2{2, 3}}
	if s.Intersects(parallel) {
		t.Error("parallel segments reported intersecting")
	}
}

func TestSegmentIntersectionPoint(t *testing.T) {
	s := Segment{Vec2{0, 0}, Vec2{2, 2}}
	o := Segment{Vec2{0, 2}, Vec2{2, 0}}
	p, ok := s.Intersection(o)
	if !ok || !almost(p.X, 1) || !almost(p.Y, 1) {
		t.Errorf("Intersection = %v, %v", p, ok)
	}
	if _, ok := s.Intersection(Segment{Vec2{0, 1}, Vec2{2, 3}}); ok {
		t.Error("parallel segments returned an intersection")
	}
	if _, ok := s.Intersection(Segment{Vec2{5, 0}, Vec2{5, 1}}); ok {
		t.Error("non-crossing segments returned an intersection")
	}
}

func TestSegmentDistToPoint(t *testing.T) {
	s := Segment{Vec2{0, 0}, Vec2{10, 0}}
	if got := s.DistToPoint(Vec2{5, 3}); !almost(got, 3) {
		t.Errorf("DistToPoint mid = %v", got)
	}
	if got := s.DistToPoint(Vec2{-4, 3}); !almost(got, 5) {
		t.Errorf("DistToPoint beyond A = %v", got)
	}
	if got := s.DistToPoint(Vec2{13, 4}); !almost(got, 5) {
		t.Errorf("DistToPoint beyond B = %v", got)
	}
	deg := Segment{Vec2{1, 1}, Vec2{1, 1}}
	if got := deg.DistToPoint(Vec2{4, 5}); !almost(got, 5) {
		t.Errorf("degenerate DistToPoint = %v", got)
	}
}

func TestSegmentClosestPoint(t *testing.T) {
	s := Segment{Vec2{0, 0}, Vec2{10, 0}}
	if got := s.ClosestPoint(Vec2{5, 3}); !almost(got.X, 5) || !almost(got.Y, 0) {
		t.Errorf("ClosestPoint = %v", got)
	}
	if got := s.ClosestPoint(Vec2{-7, 2}); got != (Vec2{0, 0}) {
		t.Errorf("ClosestPoint clamp = %v", got)
	}
}

func TestSegmentAccessors(t *testing.T) {
	s := Segment{Vec2{0, 0}, Vec2{4, 0}}
	if !almost(s.Length(), 4) {
		t.Errorf("Length = %v", s.Length())
	}
	if d := s.Dir(); !almost(d.X, 1) || !almost(d.Y, 0) {
		t.Errorf("Dir = %v", d)
	}
	if m := s.Midpoint(); !almost(m.X, 2) {
		t.Errorf("Midpoint = %v", m)
	}
	if p := s.PointAt(0.25); !almost(p.X, 1) {
		t.Errorf("PointAt = %v", p)
	}
}

func TestRect(t *testing.T) {
	r := Rect{Vec2{0, 0}, Vec2{4, 2}}
	if !r.Contains(Vec2{1, 1}) || !r.Contains(Vec2{0, 0}) || r.Contains(Vec2{5, 1}) {
		t.Error("Contains failed")
	}
	if c := r.Center(); !almost(c.X, 2) || !almost(c.Y, 1) {
		t.Errorf("Center = %v", c)
	}
	// Segment passing through.
	if !r.IntersectsSegment(Segment{Vec2{-1, 1}, Vec2{5, 1}}) {
		t.Error("through-segment not detected")
	}
	// Segment fully inside.
	if !r.IntersectsSegment(Segment{Vec2{1, 1}, Vec2{2, 1}}) {
		t.Error("inner segment not detected")
	}
	// Segment fully outside.
	if r.IntersectsSegment(Segment{Vec2{-1, 3}, Vec2{5, 3}}) {
		t.Error("outer segment reported intersecting")
	}
}

func TestPoseRoundTrip(t *testing.T) {
	p := Pose{Pos: Vec2{3, -2}, Theta: Rad(40)}
	body := Vec2{0.5, 1.2}
	world := p.ToWorld(body)
	back := p.ToBody(world)
	if !almost(back.X, body.X) || !almost(back.Y, body.Y) {
		t.Errorf("ToBody(ToWorld(v)) = %v, want %v", back, body)
	}
}

func TestPoseDirRoundTrip(t *testing.T) {
	p := Pose{Theta: Rad(100)}
	d := Rad(150)
	w := p.DirToWorld(d)
	if !almost(NormalizeAngle(w), NormalizeAngle(Rad(250))) {
		t.Errorf("DirToWorld = %v deg", Deg(w))
	}
	if got := p.DirToBody(w); !almost(NormalizeAngle(got-d), 0) {
		t.Errorf("DirToBody round trip = %v deg", Deg(got))
	}
}

func TestPoseTranslationOnly(t *testing.T) {
	p := Pose{Pos: Vec2{1, 1}}
	if got := p.ToWorld(Vec2{2, 3}); got != (Vec2{3, 4}) {
		t.Errorf("ToWorld = %v", got)
	}
}

func TestVecLerp(t *testing.T) {
	a, b := Vec2{0, 0}, Vec2{10, 20}
	if got := a.Lerp(b, 0.5); !almost(got.X, 5) || !almost(got.Y, 10) {
		t.Errorf("Lerp = %v", got)
	}
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp 0 = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp 1 = %v", got)
	}
}
