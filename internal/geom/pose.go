package geom

// Pose is a rigid 2D pose: the position of a body origin in the world frame
// plus the body orientation Theta (rotation of the body frame relative to
// the world frame, CCW radians).
type Pose struct {
	Pos   Vec2
	Theta float64
}

// ToWorld maps a point expressed in the body frame into the world frame.
func (p Pose) ToWorld(body Vec2) Vec2 {
	return p.Pos.Add(body.Rotate(p.Theta))
}

// ToBody maps a world-frame point into the body frame.
func (p Pose) ToBody(world Vec2) Vec2 {
	return world.Sub(p.Pos).Rotate(-p.Theta)
}

// DirToWorld rotates a body-frame direction into the world frame.
func (p Pose) DirToWorld(theta float64) float64 {
	return NormalizeAngle(theta + p.Theta)
}

// DirToBody rotates a world-frame direction into the body frame.
func (p Pose) DirToBody(theta float64) float64 {
	return NormalizeAngle(theta - p.Theta)
}
