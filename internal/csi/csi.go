// Package csi models CSI acquisition on commodity WiFi receivers: an AP
// broadcasting sequence-numbered packets at a fixed rate, one or two
// receiver NICs measuring the per-subcarrier channel for each of their
// antennas with realistic phase impairments (CFO/SFO/STO, per-packet PLL
// phase), additive noise and packet loss, plus the preprocessing RIM applies
// before TRRS: packet-level cross-NIC synchronization by sequence number,
// null-CSI interpolation, and linear phase sanitization.
package csi

import (
	"fmt"
	"math"
	"math/rand"

	"rim/internal/array"
	"rim/internal/faults"
	"rim/internal/geom"
	"rim/internal/obs"
	"rim/internal/obs/trace"
	"rim/internal/rf"
	"rim/internal/sigproc"
	"rim/internal/traj"
)

// ReceiverConfig describes the measurement imperfections of the NICs.
// The zero value means an ideal receiver (no noise, loss or phase errors).
type ReceiverConfig struct {
	// SNRdB is the per-subcarrier signal-to-noise ratio. <= 0 disables
	// noise. Commodity CSI sits around 20-30 dB.
	SNRdB float64
	// LossProb is the per-packet, per-NIC loss probability.
	LossProb float64
	// CFOMaxHz bounds the per-NIC residual carrier frequency offset; each
	// NIC draws its offset uniformly from [-CFOMaxHz, CFOMaxHz]. The CFO
	// appears as a time-varying common phase on every measurement.
	CFOMaxHz float64
	// STOSlopeMax bounds the per-packet linear phase slope (radians per
	// subcarrier) from symbol-timing and sampling-frequency offsets.
	STOSlopeMax float64
	// PLLPhase enables a uniformly random common phase per packet per NIC
	// (the initial phase offset eliminated by |·| in TRRS).
	PLLPhase bool
	// ChainRippleDB is the amplitude of a mild per-chain frequency ripple
	// modeling hardware heterogeneity between antennas.
	ChainRippleDB float64
	// Seed drives all receiver randomness.
	Seed int64
	// Faults optionally injects deployment-grade failure modes on top of
	// the baseline impairments: bursty (Gilbert-Elliott) packet loss, dead
	// or flapping RF chains, interference bursts, AGC gain steps, and
	// corrupt/NaN frames. nil injects nothing. Fault randomness is driven
	// by Faults.Seed, independent of Seed.
	Faults *faults.Model
	// Obs optionally receives acquisition counters (rim_csi_packets_total /
	// rim_csi_packets_lost_total, counting every loss mechanism: baseline
	// i.i.d. loss plus injected bursty loss). nil disables the accounting.
	Obs *obs.Registry
	// Trace optionally receives per-(NIC, packet) acquisition events —
	// trace.KindFrameAcquired for every measured frame, trace.KindPacketLost
	// for every loss, each carrying the slot as the frame ID — the root of
	// the frame→estimate lineage. nil disables the events.
	Trace *trace.Recorder
}

// RealisticReceiver returns impairments typical of the paper's hardware.
func RealisticReceiver(seed int64) ReceiverConfig {
	return ReceiverConfig{
		SNRdB:         25,
		LossProb:      0.02,
		CFOMaxHz:      500,
		STOSlopeMax:   0.06,
		PLLPhase:      true,
		ChainRippleDB: 0.5,
		Seed:          seed,
	}
}

// Frame is the CSI of one received packet on one NIC: H[localAnt][tx][k].
type Frame struct {
	Seq int
	T   float64
	H   [][][]complex128
}

// Trace is the raw, sequence-aligned recording of a motion: one slot per
// broadcast packet and per NIC; lost packets leave nil frames (the "null
// CSI" of §5).
type Trace struct {
	Rate    float64
	NumAnts int // total antennas across NICs
	NumTx   int
	NumSub  int
	NumNICs int
	// frames[nic][slot] is nil when that NIC lost the packet.
	frames [][]*Frame
	// antNIC maps global antenna index -> (nic, local index).
	antNIC   []int
	antLocal []int
}

// NumSlots returns the number of broadcast packets (time slots).
func (t *Trace) NumSlots() int {
	if t.NumNICs == 0 {
		return 0
	}
	return len(t.frames[0])
}

// LossRate returns the fraction of (nic, slot) frames lost.
func (t *Trace) LossRate() float64 {
	total, lost := 0, 0
	for _, nic := range t.frames {
		for _, f := range nic {
			total++
			if f == nil {
				lost++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(lost) / float64(total)
}

// nicLayout inspects the array and returns the per-NIC local antenna lists.
func nicLayout(arr *array.Array) (numNICs int, antNIC, antLocal []int) {
	counts := map[int]int{}
	for _, ant := range arr.Antennas {
		if ant.NIC >= numNICs {
			numNICs = ant.NIC + 1
		}
		antNIC = append(antNIC, ant.NIC)
		antLocal = append(antLocal, counts[ant.NIC])
		counts[ant.NIC]++
	}
	return numNICs, antNIC, antLocal
}

// Collect simulates the full acquisition of one motion: for every trajectory
// sample the AP broadcasts one packet; every NIC that receives it measures
// the physical CFR at each of its antennas' world positions and corrupts it
// with its own impairments. The trajectory's sample rate is the packet rate.
func Collect(env *rf.Environment, arr *array.Array, tr *traj.Trajectory, cfg ReceiverConfig) *Trace {
	rcfg := env.Config()
	numNICs, antNIC, antLocal := nicLayout(arr)
	inj := cfg.Faults.NewInjector(numNICs)
	cPackets := cfg.Obs.Counter("rim_csi_packets_total",
		"per-NIC packets the AP broadcast during acquisition")
	cLost := cfg.Obs.Counter("rim_csi_packets_lost_total",
		"per-NIC packets lost to baseline or injected loss")
	out := &Trace{
		Rate:     tr.Rate,
		NumAnts:  arr.NumAntennas(),
		NumTx:    rcfg.NumTxAntennas,
		NumSub:   rcfg.NumSubcarriers,
		NumNICs:  numNICs,
		frames:   make([][]*Frame, numNICs),
		antNIC:   antNIC,
		antLocal: antLocal,
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Per-NIC static state.
	cfo := make([]float64, numNICs)
	for n := range cfo {
		cfo[n] = (rng.Float64()*2 - 1) * cfg.CFOMaxHz
	}
	// Per-chain complex gain and frequency ripple (hardware heterogeneity).
	localCount := make([]int, numNICs)
	for i := range arr.Antennas {
		localCount[antNIC[i]]++
	}
	chainGain := make([][]complex128, arr.NumAntennas())
	for a := range chainGain {
		chainGain[a] = make([]complex128, rcfg.NumSubcarriers)
		base := cmplxFromPolar(0.8+0.4*rng.Float64(), rng.Float64()*2*math.Pi)
		ripAmp := cfg.ChainRippleDB * (rng.Float64()*2 - 1)
		ripPhase := rng.Float64() * 2 * math.Pi
		for k := range chainGain[a] {
			rip := math.Pow(10, ripAmp*math.Sin(2*math.Pi*float64(k)/float64(rcfg.NumSubcarriers)+ripPhase)/20)
			chainGain[a][k] = base * complex(rip, 0)
		}
	}

	// Estimate the mean signal amplitude once (for the noise floor): probe
	// the first trajectory sample.
	noiseStd := 0.0
	if cfg.SNRdB > 0 && len(tr.Samples) > 0 {
		probe := env.SnapshotAll(tr.Samples[0].Pose.ToWorld(arr.Antennas[0].Pos), 0)
		var p float64
		for _, h := range probe {
			p += sigproc.Energy(h)
		}
		p /= float64(len(probe) * rcfg.NumSubcarriers)
		noiseStd = math.Sqrt(p*math.Pow(10, -cfg.SNRdB/10)) / math.Sqrt2
	}

	for n := 0; n < numNICs; n++ {
		out.frames[n] = make([]*Frame, len(tr.Samples))
	}
	h := make([]complex128, rcfg.NumSubcarriers)
	var worldPos []geom.Vec2
	for slot, s := range tr.Samples {
		worldPos = arr.WorldPositions(s.Pose, worldPos)
		// Physical channel for every (ant, tx) at this instant.
		phys := make([][][]complex128, arr.NumAntennas())
		for a := 0; a < arr.NumAntennas(); a++ {
			phys[a] = make([][]complex128, rcfg.NumTxAntennas)
			for tx := 0; tx < rcfg.NumTxAntennas; tx++ {
				env.CFR(worldPos[a], tx, s.T, h)
				v := make([]complex128, len(h))
				copy(v, h)
				phys[a][tx] = v
			}
		}
		for n := 0; n < numNICs; n++ {
			// The bursty chain must advance every packet to keep its state
			// machine (and hence the whole fault sequence) deterministic,
			// so query it before the i.i.d. draw.
			cPackets.Inc()
			burstyLost := inj.PacketLost(n)
			if cfg.LossProb > 0 && rng.Float64() < cfg.LossProb {
				cLost.Inc()
				cfg.Trace.Emit(trace.KindPacketLost, -1, int64(slot), int64(n), 0)
				continue // packet lost on this NIC
			}
			if burstyLost {
				cLost.Inc()
				cfg.Trace.Emit(trace.KindPacketLost, -1, int64(slot), int64(n), 1)
				continue
			}
			// Per-packet NIC-wide phase state.
			common := 2 * math.Pi * cfo[n] * s.T
			if cfg.PLLPhase {
				common += rng.Float64() * 2 * math.Pi
			}
			slope := 0.0
			if cfg.STOSlopeMax > 0 {
				slope = (rng.Float64()*2 - 1) * cfg.STOSlopeMax
			}
			slotNoise := noiseStd * inj.NoiseBoost(s.T)
			agc := complex(inj.Gain(n, s.T), 0)
			corrupt, corruptNaN := inj.CorruptFrame()
			f := &Frame{Seq: slot, T: s.T, H: make([][][]complex128, localCount[n])}
			for a := 0; a < arr.NumAntennas(); a++ {
				if antNIC[a] != n {
					continue
				}
				la := antLocal[a]
				dead := inj.ChainDead(a, s.T)
				f.H[la] = make([][]complex128, rcfg.NumTxAntennas)
				for tx := 0; tx < rcfg.NumTxAntennas; tx++ {
					v := make([]complex128, rcfg.NumSubcarriers)
					for k := range v {
						if !dead {
							// A dead RF chain reports no signal, only its
							// own noise floor — the NIC still fills the row.
							v[k] = phys[a][tx][k] * chainGain[a][k]
						}
						if slotNoise > 0 {
							v[k] += complex(rng.NormFloat64()*slotNoise, rng.NormFloat64()*slotNoise)
						}
						v[k] *= agc
					}
					sigproc.ApplyPhaseRamp(v, common, slope)
					if corrupt {
						if corruptNaN {
							bad := math.NaN()
							for k := range v {
								v[k] = complex(bad, bad)
							}
						} else {
							for k := range v {
								re, im := inj.GarbageSample()
								v[k] = complex(re, im)
							}
						}
					}
					f.H[la][tx] = v
				}
			}
			out.frames[n][slot] = f
			cfg.Trace.Emit(trace.KindFrameAcquired, -1, int64(slot), int64(n), 0)
		}
	}
	return out
}

func cmplxFromPolar(r, th float64) complex128 {
	s, c := math.Sincos(th)
	return complex(r*c, r*s)
}

// sampleSanityCap bounds the amplitude a real CFR sample can plausibly
// reach; anything above it is corrupt (bit flips, DMA tearing). Physical
// CFRs in the simulator and on hardware sit many orders of magnitude
// below this.
const sampleSanityCap = 1e5

// RowSane reports whether every sample of a CSI row is finite and within
// the amplitude sanity cap.
func RowSane(v []complex128) bool {
	for _, c := range v {
		re, im := real(c), imag(c)
		if math.IsNaN(re) || math.IsInf(re, 0) || math.IsNaN(im) || math.IsInf(im, 0) {
			return false
		}
		if re > sampleSanityCap || re < -sampleSanityCap || im > sampleSanityCap || im < -sampleSanityCap {
			return false
		}
	}
	return true
}

// toneSlope estimates the linear phase slope across tones (radians per
// tone) as the phase of the lag-1 tone autocorrelation Σ_k H[k+1]·H*[k] —
// a power-weighted, unwrapping-free delay estimate.
func toneSlope(v []complex128) float64 {
	var re, im float64
	for k := 1; k < len(v); k++ {
		a, b := v[k], v[k-1]
		// a * conj(b)
		re += real(a)*real(b) + imag(a)*imag(b)
		im += imag(a)*real(b) - real(a)*imag(b)
	}
	return math.Atan2(im, re)
}

// Series is the preprocessed, analysis-ready CSI stream: synchronized
// across NICs by sequence number, gaps interpolated, phases sanitized.
// Layout H[ant][tx][slot] is a per-subcarrier vector, chosen so the TRRS
// inner loops stream contiguously in time.
type Series struct {
	Rate    float64
	NumAnts int
	NumTx   int
	NumSub  int
	H       [][][][]complex128
	// Missing[ant][slot] marks slots whose frame was interpolated.
	Missing [][]bool
}

// NumSlots returns the number of time slots.
func (s *Series) NumSlots() int {
	if s.NumAnts == 0 || s.NumTx == 0 {
		return 0
	}
	return len(s.H[0][0])
}

// Dt returns the sampling interval in seconds.
func (s *Series) Dt() float64 { return 1 / s.Rate }

// Process converts a raw trace into a Series: cross-NIC packet
// synchronization is implicit (frames are already slot-indexed by the
// broadcast sequence number), lost frames are linearly interpolated, and
// when sanitize is true the SFO/STO-induced linear phase errors are
// calibrated out (the [13]-style sanitization the paper applies before
// computing TRRS).
//
// Sanitization detail: the per-packet linear phase slope across tones is
// the sum of the channel's bulk-delay slope (spatial information TRRS
// needs) and the receiver's timing jitter. Removing the whole fit would
// erase the bulk delay and flatten the TRRS spatial decay, so Process
// removes only the *deviation* of each packet's slope from a 1-second
// running median: the channel slope varies negligibly within that window
// (TRRS only ever compares snapshots taken within ~0.5 s), while the
// per-packet jitter is zero-mean around it. The per-packet common phase
// (CFO/PLL) is removed entirely; TRRS is invariant to it anyway.
func (t *Trace) Process(sanitize bool) (*Series, error) {
	slots := t.NumSlots()
	if slots == 0 {
		return nil, fmt.Errorf("csi: empty trace")
	}
	s := &Series{
		Rate:    t.Rate,
		NumAnts: t.NumAnts,
		NumTx:   t.NumTx,
		NumSub:  t.NumSub,
		H:       make([][][][]complex128, t.NumAnts),
		Missing: make([][]bool, t.NumAnts),
	}
	for a := 0; a < t.NumAnts; a++ {
		nic, la := t.antNIC[a], t.antLocal[a]
		s.H[a] = make([][][]complex128, t.NumTx)
		s.Missing[a] = make([]bool, slots)
		for tx := 0; tx < t.NumTx; tx++ {
			seq := make([][]complex128, slots)
			for slot := 0; slot < slots; slot++ {
				f := t.frames[nic][slot]
				if f == nil {
					s.Missing[a][slot] = true
					continue
				}
				// Corrupt frames (NaN/Inf from poisoned driver buffers,
				// or wildly out-of-range garbage) are rejected at ingest
				// and treated exactly like lost packets: interpolated and
				// flagged Missing. Letting a single NaN through would
				// poison every TRRS window that touches it.
				if !RowSane(f.H[la][tx]) {
					s.Missing[a][slot] = true
					continue
				}
				seq[slot] = f.H[la][tx]
			}
			filled := sigproc.InterpolateMissing(seq)
			if filled[0] == nil {
				return nil, fmt.Errorf("csi: NIC %d lost every packet", nic)
			}
			if sanitize {
				// First pass: estimate each packet's linear phase slope
				// across tones from the lag-1 tone autocorrelation —
				// the standard delay estimator. Unlike an unwrap-and-fit,
				// it cannot glitch in deep band fades.
				slopes := make([]float64, slots)
				for slot := range filled {
					slopes[slot] = toneSlope(filled[slot])
				}
				// Running median slope over ~1 s isolates the per-packet
				// jitter from the (slowly varying) channel bulk delay.
				half := int(t.Rate / 2)
				if half < 1 {
					half = 1
				}
				medSlopes := sigproc.MedianFilter(slopes, half)
				for slot := range filled {
					// Copy before correcting: interpolation may alias
					// neighbouring slots on loss-free traces.
					v := make([]complex128, len(filled[slot]))
					copy(v, filled[slot])
					sigproc.ApplyPhaseRamp(v, 0, -(slopes[slot] - medSlopes[slot]))
					filled[slot] = v
				}
			}
			s.H[a][tx] = filled
		}
	}
	return s, nil
}

// Downsample returns a new Series keeping every factor-th slot — the
// sampling-rate study of Fig. 16. factor <= 1 returns the receiver itself.
func (s *Series) Downsample(factor int) *Series {
	if factor <= 1 {
		return s
	}
	slots := s.NumSlots()
	out := &Series{
		Rate:    s.Rate / float64(factor),
		NumAnts: s.NumAnts,
		NumTx:   s.NumTx,
		NumSub:  s.NumSub,
		H:       make([][][][]complex128, s.NumAnts),
		Missing: make([][]bool, s.NumAnts),
	}
	for a := 0; a < s.NumAnts; a++ {
		out.H[a] = make([][][]complex128, s.NumTx)
		for tx := 0; tx < s.NumTx; tx++ {
			for slot := 0; slot < slots; slot += factor {
				out.H[a][tx] = append(out.H[a][tx], s.H[a][tx][slot])
			}
		}
		for slot := 0; slot < slots; slot += factor {
			out.Missing[a] = append(out.Missing[a], s.Missing[a][slot])
		}
	}
	return out
}
