package csi

import (
	"math"
	"testing"

	"rim/internal/array"
	"rim/internal/faults"
	"rim/internal/geom"
	"rim/internal/sigproc"
	"rim/internal/traj"
)

func TestCollectBurstyLoss(t *testing.T) {
	env := testEnv()
	arr := array.NewLinear3(0.029)
	tr := traj.Line(100, geom.Vec2{X: 10}, 0, 0, 1.0, 0.5) // 2 s
	cfg := ReceiverConfig{
		Faults: &faults.Model{Loss: faults.NewGilbertElliott(0.3, 15), Seed: 9},
	}
	trace := Collect(env, arr, tr, cfg)
	lr := trace.LossRate()
	if lr < 0.15 || lr > 0.5 {
		t.Errorf("bursty loss rate = %v, want ~0.3", lr)
	}
	// Bursts: at least one loss run of >= 5 consecutive packets.
	maxRun, run := 0, 0
	for _, f := range trace.frames[0] {
		if f == nil {
			run++
			if run > maxRun {
				maxRun = run
			}
		} else {
			run = 0
		}
	}
	if maxRun < 5 {
		t.Errorf("longest loss burst = %d packets, expected bursty gaps", maxRun)
	}
	// The series must still process (interpolated, flagged missing).
	s, err := trace.Process(true)
	if err != nil {
		t.Fatal(err)
	}
	miss := 0
	for _, m := range s.Missing[0] {
		if m {
			miss++
		}
	}
	if frac := float64(miss) / float64(s.NumSlots()); math.Abs(frac-lr) > 0.05 {
		t.Errorf("missing fraction %v does not reflect loss rate %v", frac, lr)
	}
}

func TestCollectDeadChainIsNoiseOnly(t *testing.T) {
	env := testEnv()
	arr := array.NewLinear3(0.029)
	tr := traj.Line(100, geom.Vec2{X: 10}, 0, 0, 0.5, 0.5) // 1 s
	cfg := ReceiverConfig{
		SNRdB:  25,
		Seed:   1,
		Faults: &faults.Model{Dropouts: []faults.Dropout{{Antenna: 2, Start: 0.5}}},
	}
	s, err := Collect(env, arr, tr, cfg).Process(false)
	if err != nil {
		t.Fatal(err)
	}
	eBefore := sigproc.Energy(s.H[2][0][10])
	eAfter := sigproc.Energy(s.H[2][0][80])
	eAlive := sigproc.Energy(s.H[0][0][80])
	if eAfter > eBefore/10 {
		t.Errorf("dead chain energy %v not far below live energy %v", eAfter, eBefore)
	}
	if eAlive < eBefore/10 {
		t.Errorf("surviving antenna energy collapsed: %v", eAlive)
	}
}

func TestCollectInterferenceBurstCrushesTRRS(t *testing.T) {
	env := testEnv()
	arr := array.NewLinear3(0.029)
	b := traj.NewBuilder(100, geom.Pose{Pos: geom.Vec2{X: 10}})
	b.Pause(2)
	tr := b.Build()
	cfg := ReceiverConfig{
		SNRdB: 25,
		Seed:  2,
		Faults: &faults.Model{
			Bursts: []faults.Burst{{Start: 1, Duration: 0.5, SNRDropDB: 30}},
		},
	}
	s, err := Collect(env, arr, tr, cfg).Process(false)
	if err != nil {
		t.Fatal(err)
	}
	// Static device: adjacent-slot TRRS is ~1 outside the burst and must
	// collapse inside it.
	kClean := trrs(s.H[0][0][10], s.H[0][0][20])
	kBurst := trrs(s.H[0][0][110], s.H[0][0][120])
	if kClean < 0.9 {
		t.Errorf("clean static TRRS = %v", kClean)
	}
	if kBurst > kClean-0.2 {
		t.Errorf("burst TRRS %v not crushed below clean %v", kBurst, kClean)
	}
}

func TestCollectAGCStepInvisibleAfterNormalization(t *testing.T) {
	env := testEnv()
	arr := array.NewLinear3(0.029)
	b := traj.NewBuilder(100, geom.Pose{Pos: geom.Vec2{X: 10}})
	b.Pause(1)
	tr := b.Build()
	cfg := ReceiverConfig{
		Seed:   3,
		Faults: &faults.Model{AGCSteps: []faults.AGCStep{{T: 0.5, NIC: -1, GainDB: 12}}},
	}
	s, err := Collect(env, arr, tr, cfg).Process(false)
	if err != nil {
		t.Fatal(err)
	}
	// Amplitude jumps by 4x across the step...
	aBefore := math.Sqrt(sigproc.Energy(s.H[0][0][30]))
	aAfter := math.Sqrt(sigproc.Energy(s.H[0][0][70]))
	if r := aAfter / aBefore; math.Abs(r-3.98) > 0.2 {
		t.Errorf("AGC amplitude ratio = %v, want ~3.98 (12 dB)", r)
	}
	// ...but TRRS (normalized) is blind to it.
	if k := trrs(s.H[0][0][30], s.H[0][0][70]); k < 0.999 {
		t.Errorf("TRRS across AGC step = %v, want ~1", k)
	}
}

func TestCollectCorruptFramesRejected(t *testing.T) {
	env := testEnv()
	arr := array.NewLinear3(0.029)
	tr := traj.Line(100, geom.Vec2{X: 10}, 0, 0, 0.5, 0.5)
	for _, nan := range []bool{true, false} {
		cfg := ReceiverConfig{
			Seed:   4,
			Faults: &faults.Model{Corrupt: faults.Corruption{Prob: 0.2, NaN: nan}, Seed: 8},
		}
		s, err := Collect(env, arr, tr, cfg).Process(true)
		if err != nil {
			t.Fatal(err)
		}
		miss := 0
		for slot := 0; slot < s.NumSlots(); slot++ {
			for a := 0; a < s.NumAnts; a++ {
				if s.Missing[a][slot] {
					miss++
					break
				}
			}
			for a := 0; a < s.NumAnts; a++ {
				for tx := 0; tx < s.NumTx; tx++ {
					if !RowSane(s.H[a][tx][slot]) {
						t.Fatalf("corrupt row survived Process (nan=%v, slot %d)", nan, slot)
					}
				}
			}
		}
		if miss == 0 {
			t.Errorf("no corrupt frames flagged missing (nan=%v)", nan)
		}
	}
}

func TestRowSane(t *testing.T) {
	ok := []complex128{1 + 2i, -3, 0}
	if !RowSane(ok) {
		t.Error("finite row must be sane")
	}
	if RowSane([]complex128{1, complex(math.NaN(), 0)}) {
		t.Error("NaN row must be insane")
	}
	if RowSane([]complex128{1, complex(0, math.Inf(1))}) {
		t.Error("Inf row must be insane")
	}
	if RowSane([]complex128{complex(1e9, 0)}) {
		t.Error("garbage-amplitude row must be insane")
	}
}
