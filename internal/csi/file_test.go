package csi

import (
	"bytes"
	"strings"
	"testing"

	"rim/internal/array"
	"rim/internal/geom"
	"rim/internal/traj"
)

func TestSeriesFileRoundTrip(t *testing.T) {
	env := testEnv()
	arr := array.NewLinear3(0.029)
	tr := shortTraj(100)
	s, err := Collect(env, arr, tr, RealisticReceiver(5)).Process(true)
	if err != nil {
		t.Fatal(err)
	}
	meta := FileMeta{Motion: "line", Array: "linear3", Seed: 5}
	truth := []FileTruth{{T: 0, X: 10, Y: 0}}

	var buf bytes.Buffer
	if err := WriteSeries(&buf, s, meta, truth); err != nil {
		t.Fatal(err)
	}
	back, ff, err := ReadSeries(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ff.Meta.Motion != "line" || ff.Meta.Array != "linear3" {
		t.Errorf("meta lost: %+v", ff.Meta)
	}
	if len(ff.Truth) != 1 || ff.Truth[0].X != 10 {
		t.Errorf("truth lost: %+v", ff.Truth)
	}
	if back.Rate != s.Rate || back.NumAnts != s.NumAnts ||
		back.NumTx != s.NumTx || back.NumSub != s.NumSub {
		t.Fatalf("shape mismatch: %+v", back)
	}
	if back.NumSlots() != s.NumSlots() {
		t.Fatalf("slots = %d, want %d", back.NumSlots(), s.NumSlots())
	}
	for _, idx := range [][3]int{{0, 0, 0}, {2, 1, 5}, {1, 2, 10}} {
		a, tx, slot := idx[0], idx[1], idx[2]
		for k := range s.H[a][tx][slot] {
			if s.H[a][tx][slot][k] != back.H[a][tx][slot][k] {
				t.Fatalf("CSI value changed at a=%d tx=%d slot=%d k=%d", a, tx, slot, k)
			}
		}
	}
}

func TestReadSeriesErrors(t *testing.T) {
	if _, _, err := ReadSeries(strings.NewReader("not json")); err == nil {
		t.Error("garbage must error")
	}
	// Valid JSON, empty CSI.
	if _, _, err := ReadSeries(strings.NewReader(`{"meta":{"rate_hz":100},"csi":[]}`)); err == nil {
		t.Error("empty CSI must error")
	}
	// Missing rate.
	if _, _, err := ReadSeries(strings.NewReader(`{"meta":{},"csi":[[[[ [1,2] ]]]]}`)); err == nil {
		t.Error("zero rate must error")
	}
	// Shape mismatch: meta says 2 antennas, data has 1.
	bad := `{"meta":{"rate_hz":100,"num_antennas":2,"num_tx":1,"num_subcarriers":1},"csi":[[[[[1,2]]]]]}`
	if _, _, err := ReadSeries(strings.NewReader(bad)); err == nil {
		t.Error("antenna mismatch must error")
	}
	// Tone count mismatch.
	bad2 := `{"meta":{"rate_hz":100,"num_antennas":1,"num_tx":1,"num_subcarriers":3},"csi":[[[[[1,2]]]]]}`
	if _, _, err := ReadSeries(strings.NewReader(bad2)); err == nil {
		t.Error("tone mismatch must error")
	}
}

func TestFileSeriesPipelineCompatible(t *testing.T) {
	// A series that went through serialization must drive the TRRS engine
	// identically — guard against accidental layout changes.
	env := testEnv()
	arr := array.NewLinear3(0.029)
	tr := traj.Line(100, geom.Vec2{X: 10}, 0, 0, 0.3, 0.5)
	s, err := Collect(env, arr, tr, ReceiverConfig{}).Process(false)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSeries(&buf, s, FileMeta{}, nil); err != nil {
		t.Fatal(err)
	}
	back, _, err := ReadSeries(&buf)
	if err != nil {
		t.Fatal(err)
	}
	k1 := trrsVal(s.H[0][0][0], s.H[2][0][5])
	k2 := trrsVal(back.H[0][0][0], back.H[2][0][5])
	if k1 != k2 {
		t.Errorf("TRRS changed across serialization: %v vs %v", k1, k2)
	}
}

func trrsVal(a, b []complex128) float64 { return trrs(a, b) }
