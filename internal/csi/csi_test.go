package csi

import (
	"math"
	"math/cmplx"
	"testing"

	"rim/internal/array"
	"rim/internal/geom"
	"rim/internal/rf"
	"rim/internal/sigproc"
	"rim/internal/traj"
)

func testEnv() *rf.Environment {
	cfg := rf.FastConfig()
	return rf.NewEnvironment(cfg, geom.Vec2{}, geom.Vec2{X: 10, Y: 0}, nil)
}

func shortTraj(rate float64) *traj.Trajectory {
	return traj.Line(rate, geom.Vec2{X: 10, Y: 0}, 0, 0, 0.3, 0.5)
}

func trrs(a, b []complex128) float64 {
	ip := cmplx.Abs(sigproc.InnerProduct(a, b))
	return ip * ip / (sigproc.Energy(a) * sigproc.Energy(b))
}

func TestCollectIdealReceiver(t *testing.T) {
	env := testEnv()
	arr := array.NewLinear3(0.029)
	tr := shortTraj(100)
	trace := Collect(env, arr, tr, ReceiverConfig{})
	if trace.NumSlots() != len(tr.Samples) {
		t.Fatalf("slots = %d, want %d", trace.NumSlots(), len(tr.Samples))
	}
	if trace.LossRate() != 0 {
		t.Errorf("ideal receiver lost packets: %v", trace.LossRate())
	}
	s, err := trace.Process(false)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumSlots() != len(tr.Samples) || s.NumAnts != 3 {
		t.Fatalf("series shape: slots=%d ants=%d", s.NumSlots(), s.NumAnts)
	}
	if s.Dt() != 0.01 {
		t.Errorf("dt = %v", s.Dt())
	}
}

func TestCollectDeterministic(t *testing.T) {
	env := testEnv()
	arr := array.NewLinear3(0.029)
	tr := shortTraj(100)
	cfg := RealisticReceiver(5)
	s1, err1 := Collect(env, arr, tr, cfg).Process(true)
	s2, err2 := Collect(env, arr, tr, cfg).Process(true)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	for k := range s1.H[0][0][0] {
		if s1.H[0][0][0][k] != s2.H[0][0][0][k] {
			t.Fatal("same seed must reproduce identical CSI")
		}
	}
}

func TestPacketLossAndInterpolation(t *testing.T) {
	env := testEnv()
	arr := array.NewLinear3(0.029)
	tr := shortTraj(100)
	cfg := ReceiverConfig{LossProb: 0.3, Seed: 3}
	trace := Collect(env, arr, tr, cfg)
	if lr := trace.LossRate(); lr < 0.15 || lr > 0.45 {
		t.Errorf("loss rate = %v, want ~0.3", lr)
	}
	s, err := trace.Process(false)
	if err != nil {
		t.Fatal(err)
	}
	// Every slot must be filled after interpolation.
	for slot := 0; slot < s.NumSlots(); slot++ {
		if s.H[0][0][slot] == nil {
			t.Fatalf("slot %d still nil", slot)
		}
	}
	// Missing flags must reflect the lost packets.
	missing := 0
	for _, m := range s.Missing[0] {
		if m {
			missing++
		}
	}
	if missing == 0 {
		t.Error("no slots flagged missing despite loss")
	}
}

func TestSanitizationRestoresAlignability(t *testing.T) {
	// Hold the device still: physically the channel is constant, but STO
	// slope jitter decorrelates raw measurements across packets. The
	// sanitized TRRS between two packets must be much closer to 1.
	env := testEnv()
	arr := array.NewLinear3(0.029)
	b := traj.NewBuilder(100, geom.Pose{Pos: geom.Vec2{X: 10, Y: 0}})
	b.Pause(0.5)
	tr := b.Build()
	cfg := ReceiverConfig{STOSlopeMax: 0.08, PLLPhase: true, Seed: 11}
	trace := Collect(env, arr, tr, cfg)

	raw, err := trace.Process(false)
	if err != nil {
		t.Fatal(err)
	}
	san, err := trace.Process(true)
	if err != nil {
		t.Fatal(err)
	}
	kRaw := trrs(raw.H[0][0][0], raw.H[0][0][20])
	kSan := trrs(san.H[0][0][0], san.H[0][0][20])
	if kSan < 0.98 {
		t.Errorf("sanitized static TRRS = %v, want ~1", kSan)
	}
	if kSan <= kRaw {
		t.Errorf("sanitization did not help: raw %v vs sanitized %v", kRaw, kSan)
	}
}

func TestPLLPhaseInvisibleToTRRS(t *testing.T) {
	// Per-packet random common phase must not affect TRRS (the |·| in
	// Eq. 2 removes it).
	env := testEnv()
	arr := array.NewLinear3(0.029)
	b := traj.NewBuilder(100, geom.Pose{Pos: geom.Vec2{X: 10, Y: 0}})
	b.Pause(0.3)
	tr := b.Build()
	cfg := ReceiverConfig{PLLPhase: true, Seed: 4}
	s, err := Collect(env, arr, tr, cfg).Process(false)
	if err != nil {
		t.Fatal(err)
	}
	if k := trrs(s.H[0][0][0], s.H[0][0][10]); k < 0.999 {
		t.Errorf("static TRRS with PLL phase = %v, want 1", k)
	}
}

func TestTwoNICCrossAntennaConsistency(t *testing.T) {
	// Antennas on different NICs, placed at the same world position at
	// different times, must still produce near-1 TRRS after sanitization —
	// that is the entire premise of cross-NIC virtual antenna alignment.
	env := testEnv()
	arr := array.NewHexagonal(0.029)
	// Move along the direction from antenna 0 (NIC 0) to antenna 2
	// (NIC 0)... use instead antennas 0 and 3 (opposite, NIC 0 and 1):
	// direction from 0 to 3 is 180° in the body frame.
	b := traj.NewBuilder(200, geom.Pose{Pos: geom.Vec2{X: 10, Y: 0}})
	b.MoveBody(math.Pi, 0.3, 0.3) // antenna 0 retraces antenna 3's path
	tr := b.Build()
	cfg := ReceiverConfig{PLLPhase: true, STOSlopeMax: 0.05, Seed: 9}
	s, err := Collect(env, arr, tr, cfg).Process(true)
	if err != nil {
		t.Fatal(err)
	}
	// Antenna 0 at time t+dt occupies antenna 3's position at time t,
	// where dt = separation / speed. Separation = 2*0.029 (diameter).
	dt := 2 * 0.029 / 0.3
	lag := int(math.Round(dt * 200))
	var kAligned, kSame float64
	n := 0
	for slot := lag; slot < s.NumSlots()-1; slot += 5 {
		for tx := 0; tx < s.NumTx; tx++ {
			kAligned += trrs(s.H[0][tx][slot], s.H[3][tx][slot-lag])
			kSame += trrs(s.H[0][tx][slot], s.H[3][tx][slot])
		}
		n += s.NumTx
	}
	kAligned /= float64(n)
	kSame /= float64(n)
	if kAligned < 0.5 {
		t.Errorf("cross-NIC aligned TRRS = %v, want high", kAligned)
	}
	if kAligned <= kSame+0.1 {
		t.Errorf("aligned TRRS %v not above unaligned %v", kAligned, kSame)
	}
}

func TestDownsample(t *testing.T) {
	env := testEnv()
	arr := array.NewLinear3(0.029)
	tr := shortTraj(200)
	s, err := Collect(env, arr, tr, ReceiverConfig{}).Process(false)
	if err != nil {
		t.Fatal(err)
	}
	d := s.Downsample(4)
	if d.Rate != 50 {
		t.Errorf("rate = %v", d.Rate)
	}
	wantSlots := (s.NumSlots() + 3) / 4
	if d.NumSlots() != wantSlots {
		t.Errorf("slots = %d, want %d", d.NumSlots(), wantSlots)
	}
	// Slot 1 of the downsampled series is slot 4 of the original.
	if d.H[0][0][1][0] != s.H[0][0][4][0] {
		t.Error("downsample did not keep every 4th slot")
	}
	if s.Downsample(1) != s {
		t.Error("factor 1 must return the receiver")
	}
}

func TestProcessEmptyTrace(t *testing.T) {
	tr := &Trace{NumNICs: 1, frames: [][]*Frame{{}}}
	if _, err := tr.Process(false); err == nil {
		t.Error("empty trace must error")
	}
}

func TestNoiseReducesTRRS(t *testing.T) {
	env := testEnv()
	arr := array.NewLinear3(0.029)
	b := traj.NewBuilder(100, geom.Pose{Pos: geom.Vec2{X: 10, Y: 0}})
	b.Pause(0.3)
	tr := b.Build()
	clean, _ := Collect(env, arr, tr, ReceiverConfig{}).Process(false)
	noisy, _ := Collect(env, arr, tr, ReceiverConfig{SNRdB: 10, Seed: 2}).Process(false)
	kClean := trrs(clean.H[0][0][0], clean.H[0][0][10])
	kNoisy := trrs(noisy.H[0][0][0], noisy.H[0][0][10])
	if kNoisy >= kClean {
		t.Errorf("noise did not reduce TRRS: %v >= %v", kNoisy, kClean)
	}
	if kNoisy < 0.7 {
		t.Errorf("10 dB SNR TRRS collapsed: %v", kNoisy)
	}
}
