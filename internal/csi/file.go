package csi

import (
	"encoding/json"
	"fmt"
	"io"
)

// FileSeries is the portable JSON representation of a processed CSI series
// (written by cmd/rimsim, consumed by ReadSeries). It is the intended entry
// point for real measured CSI: convert your capture into this schema and
// the entire RIM pipeline runs on it unchanged.
type FileSeries struct {
	// Meta describes the recording.
	Meta FileMeta `json:"meta"`
	// Truth optionally carries ground-truth poses for evaluation.
	Truth []FileTruth `json:"truth,omitempty"`
	// CSI[slot][ant][tx] is the complex CFR as [re, im] pairs per tone.
	CSI [][][][][2]float64 `json:"csi"`
}

// FileMeta is the recording header.
type FileMeta struct {
	Motion  string  `json:"motion,omitempty"`
	Array   string  `json:"array,omitempty"`
	Rate    float64 `json:"rate_hz"`
	Speed   float64 `json:"speed_mps,omitempty"`
	Length  float64 `json:"length_m,omitempty"`
	APID    int     `json:"ap_id,omitempty"`
	Seed    int64   `json:"seed,omitempty"`
	NumAnts int     `json:"num_antennas"`
	NumTx   int     `json:"num_tx"`
	NumSub  int     `json:"num_subcarriers"`
}

// FileTruth is one ground-truth pose sample.
type FileTruth struct {
	T     float64 `json:"t"`
	X     float64 `json:"x"`
	Y     float64 `json:"y"`
	Theta float64 `json:"theta"`
}

// ToFile converts a Series into its portable form. meta fields describing
// the recording (motion, array, ...) are taken from the argument; shape
// fields are filled from the series.
func (s *Series) ToFile(meta FileMeta) *FileSeries {
	meta.Rate = s.Rate
	meta.NumAnts = s.NumAnts
	meta.NumTx = s.NumTx
	meta.NumSub = s.NumSub
	ff := &FileSeries{Meta: meta}
	slots := s.NumSlots()
	ff.CSI = make([][][][][2]float64, slots)
	for t := 0; t < slots; t++ {
		ff.CSI[t] = make([][][][2]float64, s.NumAnts)
		for a := 0; a < s.NumAnts; a++ {
			ff.CSI[t][a] = make([][][2]float64, s.NumTx)
			for tx := 0; tx < s.NumTx; tx++ {
				v := s.H[a][tx][t]
				tones := make([][2]float64, len(v))
				for k, c := range v {
					tones[k] = [2]float64{real(c), imag(c)}
				}
				ff.CSI[t][a][tx] = tones
			}
		}
	}
	return ff
}

// ToSeries converts the portable form back into an analysis-ready Series.
func (ff *FileSeries) ToSeries() (*Series, error) {
	if ff.Meta.Rate <= 0 {
		return nil, fmt.Errorf("csi: file meta rate must be positive")
	}
	slots := len(ff.CSI)
	if slots == 0 {
		return nil, fmt.Errorf("csi: file contains no CSI slots")
	}
	na, nt, ns := ff.Meta.NumAnts, ff.Meta.NumTx, ff.Meta.NumSub
	s := &Series{
		Rate:    ff.Meta.Rate,
		NumAnts: na,
		NumTx:   nt,
		NumSub:  ns,
		H:       make([][][][]complex128, na),
		Missing: make([][]bool, na),
	}
	for a := 0; a < na; a++ {
		s.H[a] = make([][][]complex128, nt)
		s.Missing[a] = make([]bool, slots)
		for tx := 0; tx < nt; tx++ {
			s.H[a][tx] = make([][]complex128, slots)
		}
	}
	for t := 0; t < slots; t++ {
		if len(ff.CSI[t]) != na {
			return nil, fmt.Errorf("csi: slot %d has %d antennas, want %d", t, len(ff.CSI[t]), na)
		}
		for a := 0; a < na; a++ {
			if len(ff.CSI[t][a]) != nt {
				return nil, fmt.Errorf("csi: slot %d antenna %d has %d tx, want %d", t, a, len(ff.CSI[t][a]), nt)
			}
			for tx := 0; tx < nt; tx++ {
				tones := ff.CSI[t][a][tx]
				if len(tones) != ns {
					return nil, fmt.Errorf("csi: slot %d antenna %d tx %d has %d tones, want %d",
						t, a, tx, len(tones), ns)
				}
				v := make([]complex128, ns)
				for k, c := range tones {
					v[k] = complex(c[0], c[1])
				}
				s.H[a][tx][t] = v
			}
		}
	}
	return s, nil
}

// WriteSeries encodes the series (with recording meta) as JSON.
func WriteSeries(w io.Writer, s *Series, meta FileMeta, truth []FileTruth) error {
	ff := s.ToFile(meta)
	ff.Truth = truth
	return json.NewEncoder(w).Encode(ff)
}

// ReadSeries decodes a JSON CSI recording into a Series (plus the file
// envelope with meta and optional ground truth).
func ReadSeries(r io.Reader) (*Series, *FileSeries, error) {
	var ff FileSeries
	if err := json.NewDecoder(r).Decode(&ff); err != nil {
		return nil, nil, fmt.Errorf("csi: decoding recording: %w", err)
	}
	s, err := ff.ToSeries()
	if err != nil {
		return nil, nil, err
	}
	return s, &ff, nil
}
