// Package experiments regenerates every figure of the paper's evaluation
// (§6): one runner per figure, each producing a Report with the same rows
// or series the paper plots, alongside the paper's claim for side-by-side
// comparison. cmd/rimbench prints all reports; bench_test.go wraps each
// runner in a testing.B benchmark; the package tests assert the *shape* of
// each result (who wins, by roughly what factor, where crossovers fall).
package experiments

import (
	"fmt"
	"strings"

	"rim/internal/array"
	"rim/internal/core"
	"rim/internal/csi"
	"rim/internal/floorplan"
	"rim/internal/geom"
	"rim/internal/rf"
	"rim/internal/traj"
)

// Scale selects the experiment size: Fast for tests/benchmarks (reduced
// subcarriers, shorter traces, fewer repetitions), Full for the
// cmd/rimbench reproduction run at the paper's parameters.
type Scale int

const (
	// Fast is the reduced test scale.
	Fast Scale = iota
	// Full is the paper-parameter scale.
	Full
)

// Rate returns the CSI packet rate for the scale (the paper uses 200 Hz).
func (s Scale) Rate() float64 {
	if s == Full {
		return 200
	}
	return 100
}

// RF returns the radio configuration for the scale.
func (s Scale) RF() rf.Config {
	if s == Full {
		return rf.DefaultConfig()
	}
	return rf.FastConfig()
}

// Pick returns fast for Fast scale and full for Full scale.
func (s Scale) Pick(fast, full int) int {
	if s == Full {
		return full
	}
	return fast
}

// PickF is Pick for float64.
func (s Scale) PickF(fast, full float64) float64 {
	if s == Full {
		return full
	}
	return fast
}

// Report is one regenerated figure: a table of rows mirroring what the
// paper plots, plus the paper's claim for comparison.
type Report struct {
	ID         string
	Title      string
	PaperClaim string
	Columns    []string
	Rows       [][]string
	Notes      []string
}

// AddRow appends a formatted row.
func (r *Report) AddRow(cells ...string) { r.Rows = append(r.Rows, cells) }

// AddNote appends a free-form note line.
func (r *Report) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", r.ID, r.Title)
	fmt.Fprintf(&b, "paper: %s\n", r.PaperClaim)
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	line(r.Columns)
	sep := make([]string, len(r.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Setup is the shared experimental apparatus: the office floorplan with a
// selected AP location and an environment whose scatterers surround the
// open experiment area.
type Setup struct {
	Office *floorplan.Office
	Env    *rf.Environment
	// Area is the center of the open experiment space.
	Area geom.Vec2
}

// NewSetup builds the office environment with the AP at location apID
// (0 = the default far-corner NLOS placement) and the scatterer field
// around the open experiment area.
func NewSetup(scale Scale, apID int, seed int64) *Setup {
	office := floorplan.NewOffice()
	return NewSetupAt(scale, apID, office.OpenAreaCenter(), seed)
}

// NewSetupAt is NewSetup with the experiment area (and scatterer field)
// centered at an arbitrary floor position — for workloads that run outside
// the central open space, e.g. corridor tours.
func NewSetupAt(scale Scale, apID int, area geom.Vec2, seed int64) *Setup {
	office := floorplan.NewOffice()
	ap, err := office.AP(apID)
	if err != nil {
		panic(err)
	}
	cfg := scale.RF()
	cfg.Seed = seed
	env := rf.NewEnvironment(cfg, ap.Pos, area, &office.Plan)
	return &Setup{Office: office, Env: env, Area: area}
}

// Acquire simulates and preprocesses CSI for a motion.
func (s *Setup) Acquire(arr *array.Array, tr *traj.Trajectory, seed int64) (*csi.Series, error) {
	return csi.Collect(s.Env, arr, tr, csi.RealisticReceiver(seed)).Process(true)
}

// AcquireWith is Acquire with explicit receiver impairments (stress tests).
func (s *Setup) AcquireWith(arr *array.Array, tr *traj.Trajectory, rcfg csi.ReceiverConfig) (*csi.Series, error) {
	return csi.Collect(s.Env, arr, tr, rcfg).Process(true)
}

// StressedReceiver returns a low-SNR, lossy receiver used by the
// experiments that probe robustness mechanisms (virtual massive antennas,
// DP tracking): at the nominal SNR the pipeline is accurate even without
// them, exactly as a clean channel would hide their value on hardware.
func StressedReceiver(seed int64) csi.ReceiverConfig {
	r := csi.RealisticReceiver(seed)
	r.SNRdB = 9
	r.LossProb = 0.06
	return r
}

// CoreConfig returns the pipeline configuration for the scale: the paper's
// operating point at Full, a reduced lag window at Fast (test motions are
// brisk).
func CoreConfig(scale Scale, arr *array.Array) core.Config {
	cfg := core.DefaultConfig(arr)
	if scale == Fast {
		cfg.WindowSeconds = 0.3
		cfg.V = 16
	}
	return cfg
}

// Spacing is the λ/2 element spacing of the prototype arrays.
const Spacing = 0.029

// DistanceErrors is the collection of absolute distance errors (meters) a
// distance experiment produces; helper methods format the standard rows.
type DistanceErrors []float64

// Centimeters converts to centimeters.
func (d DistanceErrors) Centimeters() []float64 {
	out := make([]float64, len(d))
	for i, v := range d {
		out[i] = v * 100
	}
	return out
}
