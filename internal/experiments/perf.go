package experiments

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"time"

	"rim/internal/array"
	"rim/internal/core"
	"rim/internal/csi"
	"rim/internal/geom"
	"rim/internal/obs"
	"rim/internal/traj"
	"rim/internal/trrs"
)

// PerfResult carries the engine-throughput measurements: the batch
// base-matrix build serial vs parallel, the streaming replay with the
// seed's full-window recompute vs the incremental engine, and the
// per-stage latency distribution of the instrumented replay. The struct
// marshals to the JSON perf row rimbench -json emits.
type PerfResult struct {
	Report *Report `json:"-"`
	// SerialNs and ParallelNs are the batch BaseMatrix wall times.
	SerialNs   float64 `json:"serial_ns"`
	ParallelNs float64 `json:"parallel_ns"`
	// RecomputeSlotsPerSec and IncrementalSlotsPerSec are the streaming
	// replay throughputs.
	RecomputeSlotsPerSec   float64 `json:"recompute_slots_per_sec"`
	IncrementalSlotsPerSec float64 `json:"incremental_slots_per_sec"`
	// BatchSpeedup and StreamSpeedup are the corresponding ratios.
	BatchSpeedup  float64 `json:"batch_speedup"`
	StreamSpeedup float64 `json:"stream_speedup"`
	// SymmetricSpeedup is the single-core gain from deriving reversed and
	// self pairs by Hermitian reflection in one BaseMatrices call instead
	// of computing every matrix from scratch.
	SymmetricSpeedup float64 `json:"symmetric_speedup"`
	// BatchedSpeedup is the single-core gain of the cross-pair batched
	// bulk build with the vector kernel over per-pair sequential builds
	// (three distinct pairs, no symmetry shortcuts).
	BatchedSpeedup float64 `json:"batched_speedup"`
	// VectorSpeedup is the single-pair serial-build gain of the opt-in
	// vector (lag-sweep) kernel over the sequential reference.
	VectorSpeedup float64 `json:"vector_speedup"`
	// Float32Speedup is the single-pair serial-build gain of float32
	// planes over float64, both on the vector-shaped sweep path.
	Float32Speedup float64 `json:"float32_speedup"`
	// HopNs and HopAllocsPerOp are one steady-state incremental hop
	// (append W, drop W, refresh the pair matrix) at Parallelism 1. The
	// hot path runs in ring- and matrix-owned storage, so allocs/op is 0
	// once the window geometry has settled.
	HopNs          float64 `json:"hop_ns"`
	HopAllocsPerOp float64 `json:"hop_allocs_per_op"`
	// Stages holds the per-stage latency percentiles of an instrumented
	// (registry-attached) incremental replay of the same trace.
	Stages []StageLatency `json:"stages,omitempty"`
}

// StageLatency summarizes one pipeline stage's latency histogram.
type StageLatency struct {
	// Stage is the metric name (e.g. "rim_stream_hop_seconds").
	Stage string  `json:"stage"`
	Count uint64  `json:"count"`
	P50   float64 `json:"p50_seconds"`
	P90   float64 `json:"p90_seconds"`
	P99   float64 `json:"p99_seconds"`
}

// perfSeries simulates the walk both measurements replay.
func perfSeries(scale Scale) *csi.Series {
	setup := NewSetup(scale, 0, 9901)
	rate := scale.Rate()
	b := traj.NewBuilder(rate, geom.Pose{Pos: setup.Area})
	b.Pause(1)
	b.MoveDir(0, scale.PickF(1.5, 4), 0.4)
	b.Pause(1)
	s, err := setup.Acquire(array.NewLinear3(Spacing), b.Build(), 9902)
	if err != nil {
		panic(err)
	}
	return s
}

// timeBest returns the best-of-reps wall time of f.
func timeBest(reps int, f func()) time.Duration {
	best := time.Duration(math.MaxInt64)
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		f()
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	return best
}

// hopStats measures one steady-state incremental hop at Parallelism 1:
// best-of-reps wall time plus the malloc count per hop (via the runtime's
// cumulative Mallocs counter, averaged over a settled run).
func hopStats(s *csi.Series, w, reps int) (time.Duration, float64) {
	inc, err := trrs.NewIncremental(s.Rate, s.NumAnts, s.NumTx, w)
	if err != nil {
		panic(err)
	}
	inc.SetParallelism(1)
	snaps := make([][][][]complex128, s.NumSlots())
	for ti := range snaps {
		snap := make([][][]complex128, s.NumAnts)
		for a := 0; a < s.NumAnts; a++ {
			snap[a] = make([][]complex128, s.NumTx)
			for tx := 0; tx < s.NumTx; tx++ {
				snap[a][tx] = s.H[a][tx][ti]
			}
		}
		snaps[ti] = snap
	}
	for ti := 0; ti < s.NumSlots(); ti++ {
		if err := inc.Append(snaps[ti]); err != nil {
			panic(err)
		}
	}
	if _, err := inc.ExtendMatrix(0, 2); err != nil {
		panic(err)
	}
	k := 0
	hopOnce := func() {
		for n := 0; n < w; n++ {
			if err := inc.Append(snaps[k%len(snaps)]); err != nil {
				panic(err)
			}
			k++
		}
		inc.DropFront(w)
		if _, err := inc.ExtendMatrix(0, 2); err != nil {
			panic(err)
		}
	}
	for n := 0; n < 12; n++ {
		hopOnce() // settle the ring and both matrix generations
	}
	best := timeBest(reps, hopOnce)
	// Mallocs is process-wide, so runtime background work (GC assists,
	// timer wakeups) can leak a stray allocation into the window. A real
	// per-hop allocation shows up in every attempt; noise doesn't — take
	// the minimum over a few attempts.
	const allocRuns = 10
	allocs := math.Inf(1)
	for attempt := 0; attempt < 3; attempt++ {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		for n := 0; n < allocRuns; n++ {
			hopOnce()
		}
		runtime.ReadMemStats(&after)
		allocs = math.Min(allocs, float64(after.Mallocs-before.Mallocs)/allocRuns)
		if allocs == 0 {
			break
		}
	}
	return best, allocs
}

// replayThroughput replays s through a fresh streamer and returns slots/s.
func replayThroughput(s *csi.Series, cfg core.StreamConfig) float64 {
	st, err := core.NewStreamer(cfg, s.Rate, s.NumAnts, s.NumTx, s.NumSub)
	if err != nil {
		panic(err)
	}
	snap := make([][][]complex128, s.NumAnts)
	for a := range snap {
		snap[a] = make([][]complex128, s.NumTx)
	}
	t0 := time.Now()
	for ti := 0; ti < s.NumSlots(); ti++ {
		for a := 0; a < s.NumAnts; a++ {
			for tx := 0; tx < s.NumTx; tx++ {
				snap[a][tx] = s.H[a][tx][ti]
			}
		}
		if _, err := st.Push(snap); err != nil && !errors.Is(err, core.ErrAnalysis) {
			panic(err)
		}
	}
	st.Flush()
	return float64(s.NumSlots()) / time.Since(t0).Seconds()
}

// stageHistograms names the latency histograms the pipeline records, in
// pipeline order (ingest → TRRS build → movement → alignment → whole hop).
var stageHistograms = []string{
	"rim_ingest_seconds",
	"rim_trrs_build_seconds",
	"rim_movement_seconds",
	"rim_align_seconds",
	"rim_stream_hop_seconds",
}

// stageLatencies replays the trace once more with a live registry attached
// and extracts each stage's latency percentiles. The replay is separate
// from the timed throughput runs so instrumentation cost never pollutes
// the recompute-vs-incremental comparison.
func stageLatencies(s *csi.Series, cfg core.StreamConfig) []StageLatency {
	reg := obs.NewRegistry()
	cfg.Core.Obs = reg
	replayThroughput(s, cfg)
	var out []StageLatency
	for _, name := range stageHistograms {
		h := reg.Histogram(name, "", nil)
		if h.Count() == 0 {
			continue
		}
		out = append(out, StageLatency{
			Stage: name,
			Count: h.Count(),
			P50:   h.Quantile(0.50),
			P90:   h.Quantile(0.90),
			P99:   h.Quantile(0.99),
		})
	}
	return out
}

// Perf measures the parallel + incremental TRRS engine against the seed's
// serial full-recompute paths on one simulated walk: the batch base-matrix
// build (one pair, full trace) and the end-to-end streaming replay. This is
// the reproduction's throughput row — the paper's real-time claim (§6.1,
// 200 Hz on a laptop) needs the streaming hop cost to stay sub-hop.
func Perf(scale Scale) *PerfResult {
	arr := array.NewLinear3(Spacing)
	s := perfSeries(scale)
	cfg := CoreConfig(scale, arr)
	w := int(math.Round(cfg.WindowSeconds * s.Rate))
	reps := scale.Pick(3, 5)

	e := trrs.NewEngine(s)
	e.SetParallelism(1)
	serial := timeBest(reps, func() { e.BaseMatrixSerial(0, 2, w) })
	e.SetParallelism(0)
	parallel := timeBest(reps, func() { e.BaseMatrix(0, 2, w) })

	// Symmetric pair set on one core: reflection dedup vs from-scratch.
	symPairs := []trrs.PairSpec{{I: 0, J: 2}, {I: 2, J: 0}, {I: 1, J: 1}}
	e.SetParallelism(1)
	symNaive := timeBest(reps, func() {
		for _, p := range symPairs {
			e.BaseMatrixSerial(p.I, p.J, w)
		}
	})
	symDedup := timeBest(reps, func() { e.BaseMatrices(symPairs, w) })

	// Cross-pair batched build (three distinct pairs, one core): per-pair
	// sequential builds vs one batched BaseMatrices pass with the vector
	// kernel — the bulk-construction fast path.
	bulkPairs := []trrs.PairSpec{{I: 0, J: 1}, {I: 0, J: 2}, {I: 1, J: 2}}
	perPair := timeBest(reps, func() {
		for _, p := range bulkPairs {
			e.BaseMatrixSerial(p.I, p.J, w)
		}
	})
	eVec := trrs.NewEngine(s)
	eVec.SetParallelism(1)
	eVec.SetKernel(trrs.KernelVector)
	batchedVec := timeBest(reps, func() { eVec.BaseMatrices(bulkPairs, w) })
	vector := timeBest(reps, func() { eVec.BaseMatrixSerial(0, 2, w) })
	e32 := trrs.NewEnginePrecision(s, trrs.PrecisionFloat32)
	e32.SetParallelism(1)
	f32 := timeBest(reps, func() { e32.BaseMatrixSerial(0, 2, w) })

	hopNs, hopAllocs := hopStats(s, w, reps)

	oracleCfg := core.StreamConfig{Core: cfg, Recompute: true}
	oracleCfg.Core.Parallelism = 1
	incCfg := core.StreamConfig{Core: cfg}
	recompute := replayThroughput(s, oracleCfg)
	incremental := replayThroughput(s, incCfg)

	out := &PerfResult{
		SerialNs:               float64(serial.Nanoseconds()),
		ParallelNs:             float64(parallel.Nanoseconds()),
		RecomputeSlotsPerSec:   recompute,
		IncrementalSlotsPerSec: incremental,
		BatchSpeedup:           float64(serial) / float64(parallel),
		StreamSpeedup:          incremental / recompute,
		SymmetricSpeedup:       float64(symNaive) / float64(symDedup),
		BatchedSpeedup:         float64(perPair) / float64(batchedVec),
		VectorSpeedup:          float64(serial) / float64(vector),
		Float32Speedup:         float64(vector) / float64(f32),
		HopNs:                  float64(hopNs.Nanoseconds()),
		HopAllocsPerOp:         hopAllocs,
		Stages:                 stageLatencies(s, incCfg),
	}

	rep := &Report{
		ID:         "Perf",
		Title:      "TRRS engine throughput (parallel + incremental vs serial recompute)",
		PaperClaim: "real-time at 200 Hz on a laptop (§6.1); engine must keep per-hop cost below the hop interval",
		Columns:    []string{"path", "metric", "value", "speedup"},
	}
	rep.AddRow("BaseMatrix serial", "build time", serial.Round(time.Microsecond).String(), "1.00x")
	rep.AddRow("BaseMatrix parallel", "build time", parallel.Round(time.Microsecond).String(),
		fmt.Sprintf("%.2fx", out.BatchSpeedup))
	rep.AddRow("stream recompute", "throughput", fmt.Sprintf("%.0f slots/s", recompute), "1.00x")
	rep.AddRow("stream incremental", "throughput", fmt.Sprintf("%.0f slots/s", incremental),
		fmt.Sprintf("%.2fx", out.StreamSpeedup))
	rep.AddRow("symmetric pairs dedup", "build time (1 core)", symDedup.Round(time.Microsecond).String(),
		fmt.Sprintf("%.2fx", out.SymmetricSpeedup))
	rep.AddRow("batched bulk build (vector)", "build time (1 core, 3 pairs)", batchedVec.Round(time.Microsecond).String(),
		fmt.Sprintf("%.2fx", out.BatchedSpeedup))
	rep.AddRow("vector kernel", "build time (1 core)", vector.Round(time.Microsecond).String(),
		fmt.Sprintf("%.2fx", out.VectorSpeedup))
	rep.AddRow("float32 planes", "build time (1 core)", f32.Round(time.Microsecond).String(),
		fmt.Sprintf("%.2fx", out.Float32Speedup))
	rep.AddRow("incremental hop", "steady-state cost", hopNs.Round(time.Microsecond).String(),
		fmt.Sprintf("%.0f allocs/op", hopAllocs))
	rep.AddNote("GOMAXPROCS=%d; trace %d slots at %.0f Hz, W=%d slots; on 1 core the parallel pool degenerates to the serial loop",
		runtime.GOMAXPROCS(0), s.NumSlots(), s.Rate, w)
	rep.AddNote("real-time margin: incremental streams %.1fx faster than the %.0f Hz arrival rate",
		incremental/s.Rate, s.Rate)
	for _, sl := range out.Stages {
		rep.AddRow(sl.Stage, "latency P50/P90/P99",
			fmt.Sprintf("%s / %s / %s", fmtSec(sl.P50), fmtSec(sl.P90), fmtSec(sl.P99)),
			fmt.Sprintf("n=%d", sl.Count))
	}
	out.Report = rep
	return out
}

// fmtSec renders a latency in engineering units.
func fmtSec(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond).String()
}
