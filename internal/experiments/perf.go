package experiments

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"time"

	"rim/internal/array"
	"rim/internal/core"
	"rim/internal/csi"
	"rim/internal/geom"
	"rim/internal/traj"
	"rim/internal/trrs"
)

// PerfResult carries the engine-throughput measurements: the batch
// base-matrix build serial vs parallel, and the streaming replay with the
// seed's full-window recompute vs the incremental engine.
type PerfResult struct {
	Report *Report
	// SerialNs and ParallelNs are the batch BaseMatrix wall times.
	SerialNs, ParallelNs float64
	// RecomputeSlotsPerSec and IncrementalSlotsPerSec are the streaming
	// replay throughputs.
	RecomputeSlotsPerSec, IncrementalSlotsPerSec float64
	// BatchSpeedup and StreamSpeedup are the corresponding ratios.
	BatchSpeedup, StreamSpeedup float64
}

// perfSeries simulates the walk both measurements replay.
func perfSeries(scale Scale) *csi.Series {
	setup := NewSetup(scale, 0, 9901)
	rate := scale.Rate()
	b := traj.NewBuilder(rate, geom.Pose{Pos: setup.Area})
	b.Pause(1)
	b.MoveDir(0, scale.PickF(1.5, 4), 0.4)
	b.Pause(1)
	s, err := setup.Acquire(array.NewLinear3(Spacing), b.Build(), 9902)
	if err != nil {
		panic(err)
	}
	return s
}

// timeBest returns the best-of-reps wall time of f.
func timeBest(reps int, f func()) time.Duration {
	best := time.Duration(math.MaxInt64)
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		f()
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	return best
}

// replayThroughput replays s through a fresh streamer and returns slots/s.
func replayThroughput(s *csi.Series, cfg core.StreamConfig) float64 {
	st, err := core.NewStreamer(cfg, s.Rate, s.NumAnts, s.NumTx, s.NumSub)
	if err != nil {
		panic(err)
	}
	snap := make([][][]complex128, s.NumAnts)
	for a := range snap {
		snap[a] = make([][]complex128, s.NumTx)
	}
	t0 := time.Now()
	for ti := 0; ti < s.NumSlots(); ti++ {
		for a := 0; a < s.NumAnts; a++ {
			for tx := 0; tx < s.NumTx; tx++ {
				snap[a][tx] = s.H[a][tx][ti]
			}
		}
		if _, err := st.Push(snap); err != nil && !errors.Is(err, core.ErrAnalysis) {
			panic(err)
		}
	}
	st.Flush()
	return float64(s.NumSlots()) / time.Since(t0).Seconds()
}

// Perf measures the parallel + incremental TRRS engine against the seed's
// serial full-recompute paths on one simulated walk: the batch base-matrix
// build (one pair, full trace) and the end-to-end streaming replay. This is
// the reproduction's throughput row — the paper's real-time claim (§6.1,
// 200 Hz on a laptop) needs the streaming hop cost to stay sub-hop.
func Perf(scale Scale) *PerfResult {
	arr := array.NewLinear3(Spacing)
	s := perfSeries(scale)
	cfg := CoreConfig(scale, arr)
	w := int(math.Round(cfg.WindowSeconds * s.Rate))
	reps := scale.Pick(3, 5)

	e := trrs.NewEngine(s)
	e.SetParallelism(1)
	serial := timeBest(reps, func() { e.BaseMatrixSerial(0, 2, w) })
	e.SetParallelism(0)
	parallel := timeBest(reps, func() { e.BaseMatrix(0, 2, w) })

	oracleCfg := core.StreamConfig{Core: cfg, Recompute: true}
	oracleCfg.Core.Parallelism = 1
	incCfg := core.StreamConfig{Core: cfg}
	recompute := replayThroughput(s, oracleCfg)
	incremental := replayThroughput(s, incCfg)

	out := &PerfResult{
		SerialNs:               float64(serial.Nanoseconds()),
		ParallelNs:             float64(parallel.Nanoseconds()),
		RecomputeSlotsPerSec:   recompute,
		IncrementalSlotsPerSec: incremental,
		BatchSpeedup:           float64(serial) / float64(parallel),
		StreamSpeedup:          incremental / recompute,
	}

	rep := &Report{
		ID:         "Perf",
		Title:      "TRRS engine throughput (parallel + incremental vs serial recompute)",
		PaperClaim: "real-time at 200 Hz on a laptop (§6.1); engine must keep per-hop cost below the hop interval",
		Columns:    []string{"path", "metric", "value", "speedup"},
	}
	rep.AddRow("BaseMatrix serial", "build time", serial.Round(time.Microsecond).String(), "1.00x")
	rep.AddRow("BaseMatrix parallel", "build time", parallel.Round(time.Microsecond).String(),
		fmt.Sprintf("%.2fx", out.BatchSpeedup))
	rep.AddRow("stream recompute", "throughput", fmt.Sprintf("%.0f slots/s", recompute), "1.00x")
	rep.AddRow("stream incremental", "throughput", fmt.Sprintf("%.0f slots/s", incremental),
		fmt.Sprintf("%.2fx", out.StreamSpeedup))
	rep.AddNote("GOMAXPROCS=%d; trace %d slots at %.0f Hz, W=%d slots; on 1 core the parallel pool degenerates to the serial loop",
		runtime.GOMAXPROCS(0), s.NumSlots(), s.Rate, w)
	rep.AddNote("real-time margin: incremental streams %.1fx faster than the %.0f Hz arrival rate",
		incremental/s.Rate, s.Rate)
	out.Report = rep
	return out
}
