package experiments

import (
	"fmt"
	"math"

	"rim/internal/array"
	"rim/internal/core"
	"rim/internal/csi"
	"rim/internal/geom"
	"rim/internal/imu"
	"rim/internal/sigproc"
	"rim/internal/traj"
)

// runDistance collects CSI for a motion and returns |estimated − truth|
// total translation distance in meters, plus the pipeline result.
func runDistance(setup *Setup, arr *array.Array, tr *traj.Trajectory, seed int64, cfg core.Config) (float64, *core.Result) {
	s, err := setup.Acquire(arr, tr, seed)
	if err != nil {
		panic(err)
	}
	res, err := core.ProcessSeries(s, cfg)
	if err != nil {
		panic(err)
	}
	return math.Abs(res.Distance - tr.TotalDistance()), res
}

// cartTrace builds a cart push: a longer straight move with lateral sway,
// centered on the open experiment area so long traces stay inside it.
func cartTrace(scale Scale, area geom.Vec2, dirDeg, length float64, seed int64) *traj.Trajectory {
	rate := scale.Rate()
	speed := scale.PickF(0.5, 1.0)
	start := area.
		Add(geom.FromPolar(0.3+float64(seed%3)*0.3, float64(seed))).
		Sub(geom.FromPolar(length/2, geom.Rad(dirDeg)))
	b := traj.NewBuilder(rate, geom.Pose{Pos: start, Theta: geom.Rad(dirDeg)})
	b.Pause(0.5)
	b.MoveBody(0, length, speed)
	b.Pause(0.5)
	tr := b.Build()
	tr.AddLateralSway(0.004, 0.9)
	return tr
}

// deskTrace builds a short, stable desktop move.
func deskTrace(scale Scale, area geom.Vec2, dirDeg float64, seed int64) *traj.Trajectory {
	rate := scale.Rate()
	start := area.Add(geom.FromPolar(0.3, float64(seed)))
	b := traj.NewBuilder(rate, geom.Pose{Pos: start, Theta: geom.Rad(dirDeg)})
	b.Pause(0.5)
	b.MoveBody(0, 1.0, 0.25)
	b.Pause(0.5)
	return b.Build()
}

// Fig11Result carries the distance-accuracy error samples.
type Fig11Result struct {
	Report   *Report
	Desktop  DistanceErrors
	CartLOS  DistanceErrors
	CartNLOS DistanceErrors
}

// Fig11 reproduces "Accuracy of moving distance": short stable desktop
// moves and long cart pushes under LOS (central AP) and NLOS (far-corner
// AP) conditions. The paper reports medians of 2.3 cm (desktop) and 8.4 cm
// (cart: 7.3 LOS / 8.6 NLOS), 90% < 15 cm.
func Fig11(scale Scale) *Fig11Result {
	arr := array.NewLinear3(Spacing)
	reps := scale.Pick(3, 8)
	cartLen := scale.PickF(3, 10)
	out := &Fig11Result{}

	nlos := NewSetup(scale, 0, 1101) // far corner: through walls
	los := NewSetup(scale, 3, 1102)  // central open space

	for r := 0; r < reps; r++ {
		dir := float64(r * 40)
		tr := deskTrace(scale, nlos.Area, dir, int64(r))
		cfg := CoreConfig(scale, arr)
		e, _ := runDistance(nlos, arr, tr, 1110+int64(r), cfg)
		out.Desktop = append(out.Desktop, e)
	}
	for r := 0; r < reps; r++ {
		dir := float64(r * 55)
		cfg := CoreConfig(scale, arr)
		tr := cartTrace(scale, los.Area, dir, cartLen, int64(r))
		e, _ := runDistance(los, arr, tr, 1120+int64(r), cfg)
		out.CartLOS = append(out.CartLOS, e)

		tr2 := cartTrace(scale, nlos.Area, dir+20, cartLen, int64(r+3))
		e2, _ := runDistance(nlos, arr, tr2, 1130+int64(r), cfg)
		out.CartNLOS = append(out.CartNLOS, e2)
	}

	rep := &Report{
		ID:         "Fig. 11",
		Title:      "Accuracy of moving distance",
		PaperClaim: "median 2.3 cm desktop; 8.4 cm cart (7.3 LOS / 8.6 NLOS); 90%tile < 15 cm, max < 21 cm",
		Columns:    []string{"condition", "median (cm)", "P90 (cm)", "max (cm)", "n"},
	}
	add := func(name string, d DistanceErrors) {
		cm := d.Centimeters()
		rep.AddRow(name,
			fmt.Sprintf("%.1f", sigproc.Median(cm)),
			fmt.Sprintf("%.1f", sigproc.Percentile(cm, 90)),
			fmt.Sprintf("%.1f", sigproc.Max(cm)),
			fmt.Sprintf("%d", len(cm)))
	}
	add("desktop", out.Desktop)
	add("cart LOS", out.CartLOS)
	add("cart NLOS", out.CartNLOS)
	all := append(append(DistanceErrors{}, out.CartLOS...), out.CartNLOS...)
	add("cart overall", all)
	out.Report = rep
	return out
}

// Fig12Result carries the heading errors per direction.
type Fig12Result struct {
	Report *Report
	// ErrDegByDir maps true direction (deg) to heading error (deg).
	ErrDegByDir  map[int]float64
	MeanErrDeg   float64
	FracWithin10 float64
}

// Fig12 reproduces "Accuracy of heading direction": the hexagonal array
// moves ~1 m in directions sweeping the plane; the paper reports >90% of
// errors within 10° and a mean of 6.1°.
func Fig12(scale Scale) *Fig12Result {
	setup := NewSetup(scale, 0, 1201)
	arr := array.NewHexagonal(Spacing)
	rate := scale.Rate()
	step := scale.Pick(30, 10)
	out := &Fig12Result{ErrDegByDir: map[int]float64{}}
	var errs []float64
	seed := int64(1210)
	for d := -90; d <= 180; d += step {
		b := traj.NewBuilder(rate, geom.Pose{Pos: setup.Area})
		b.Pause(0.4)
		b.MoveDir(geom.Rad(float64(d)), 1.0, 0.4)
		b.Pause(0.4)
		s, err := setup.Acquire(arr, b.Build(), seed)
		seed++
		if err != nil {
			panic(err)
		}
		res, err := core.ProcessSeries(s, CoreConfig(scale, arr))
		if err != nil {
			panic(err)
		}
		errDeg := 180.0 // unresolved counts as worst case
		for _, seg := range res.SegmentsOfKind(core.MotionTranslate) {
			errDeg = math.Abs(geom.Deg(geom.AngleDiff(seg.HeadingBody, geom.Rad(float64(d)))))
			break
		}
		out.ErrDegByDir[d] = errDeg
		errs = append(errs, errDeg)
	}
	out.MeanErrDeg = sigproc.Mean(errs)
	within := 0
	for _, e := range errs {
		if e <= 10 {
			within++
		}
	}
	out.FracWithin10 = float64(within) / float64(len(errs))

	rep := &Report{
		ID:         "Fig. 12",
		Title:      "Accuracy of heading direction",
		PaperClaim: ">90% of heading errors within 10°, mean 6.1°; estimates quantized to the 30° direction set",
		Columns:    []string{"true direction (deg)", "heading error (deg)"},
	}
	for d := -90; d <= 180; d += step {
		rep.AddRow(fmt.Sprintf("%d", d), fmt.Sprintf("%.0f", out.ErrDegByDir[d]))
	}
	rep.AddNote("mean error %.1f°, %.0f%% within 10°", out.MeanErrDeg, out.FracWithin10*100)
	out.Report = rep
	return out
}

// Fig13Result carries rotation errors for RIM and the gyroscope.
type Fig13Result struct {
	Report *Report
	// RIMErrDeg / GyroErrDeg are absolute rotation-angle errors (deg),
	// one per trial.
	RIMErrDeg  []float64
	GyroErrDeg []float64
}

// Fig13 reproduces "Accuracy of rotating angle": in-place rotations from
// 30° to 360°; RIM reaches ~30° median error (≈1.3 cm of arc) while the
// gyroscope is much better at this task.
func Fig13(scale Scale) *Fig13Result {
	setup := NewSetup(scale, 0, 1301)
	arr := array.NewHexagonal(Spacing)
	rate := scale.Rate()
	angles := []float64{90, 180, 270}
	if scale == Full {
		angles = []float64{30, 60, 90, 120, 150, 180, 270, 360}
	}
	reps := scale.Pick(2, 10)
	out := &Fig13Result{}
	rep := &Report{
		ID:         "Fig. 13",
		Title:      "Accuracy of rotating angle (RIM vs gyroscope)",
		PaperClaim: "RIM median error ~30.1° (17.6% relative, ~1.3 cm arc); gyroscope performs better",
		Columns:    []string{"angle (deg)", "RIM med err (deg)", "gyro med err (deg)"},
	}
	seed := int64(1310)
	for _, ang := range angles {
		var rimErrs, gyroErrs []float64
		for r := 0; r < reps; r++ {
			b := traj.NewBuilder(rate, geom.Pose{Pos: setup.Area})
			b.Pause(0.4)
			b.RotateInPlace(geom.Rad(ang), geom.Rad(180))
			b.Pause(0.4)
			tr := b.Build()
			s, err := setup.Acquire(arr, tr, seed)
			if err != nil {
				panic(err)
			}
			cfg := CoreConfig(scale, arr)
			cfg.WindowSeconds = 0.6 // rotation lags are long (arc/(ω·r))
			res, err := core.ProcessSeries(s, cfg)
			if err != nil {
				panic(err)
			}
			est := geom.Deg(res.RotationAngle)
			rimErrs = append(rimErrs, math.Abs(est-ang))

			readings := imu.Simulate(tr, imu.DefaultConfig(seed))
			gangles := imu.IntegrateGyro(readings, rate)
			gyroErrs = append(gyroErrs, math.Abs(math.Abs(geom.Deg(gangles[len(gangles)-1]))-ang))
			seed++
		}
		out.RIMErrDeg = append(out.RIMErrDeg, rimErrs...)
		out.GyroErrDeg = append(out.GyroErrDeg, gyroErrs...)
		rep.AddRow(fmt.Sprintf("%.0f", ang),
			fmt.Sprintf("%.1f", sigproc.Median(rimErrs)),
			fmt.Sprintf("%.1f", sigproc.Median(gyroErrs)))
	}
	rep.AddNote("overall: RIM median %.1f°, gyro median %.1f°",
		sigproc.Median(out.RIMErrDeg), sigproc.Median(out.GyroErrDeg))
	out.Report = rep
	return out
}

// Fig14Result carries per-AP-location distance errors.
type Fig14Result struct {
	Report *Report
	// MedianCmByAP maps AP id to the median distance error in cm.
	MedianCmByAP map[int]float64
}

// Fig14 reproduces "Impact of AP location": the same distance workload is
// repeated with the AP at locations #1–#6; the paper finds consistently
// <10 cm medians whether LOS or through multiple walls.
func Fig14(scale Scale) *Fig14Result {
	arr := array.NewLinear3(Spacing)
	reps := scale.Pick(3, 6)
	length := scale.PickF(2, 6)
	out := &Fig14Result{MedianCmByAP: map[int]float64{}}
	rep := &Report{
		ID:         "Fig. 14",
		Title:      "Impact of AP location",
		PaperClaim: "median error < 10 cm for every AP location, LOS or through walls/pillars",
		Columns:    []string{"AP location", "LOS to area", "median err (cm)", "n"},
	}
	for apID := 1; apID <= 6; apID++ {
		setup := NewSetup(scale, apID, 1401+int64(apID))
		var errs DistanceErrors
		for r := 0; r < reps; r++ {
			tr := cartTrace(scale, setup.Area, float64(r*65), length, int64(r))
			cfg := CoreConfig(scale, arr)
			e, _ := runDistance(setup, arr, tr, 1410+int64(apID*10+r), cfg)
			errs = append(errs, e)
		}
		med := sigproc.Median(errs.Centimeters())
		out.MedianCmByAP[apID] = med
		losStr := "NLOS"
		if setup.Env.IsLOS(setup.Area) {
			losStr = "LOS"
		}
		rep.AddRow(fmt.Sprintf("#%d", apID), losStr, fmt.Sprintf("%.1f", med),
			fmt.Sprintf("%d", len(errs)))
	}
	out.Report = rep
	return out
}

// Fig15Result carries error vs accumulated distance.
type Fig15Result struct {
	Report *Report
	// ErrCmAtMeter[k] is the median |est−truth| in cm after k+1 meters.
	ErrCmAtMeter []float64
}

// Fig15 reproduces "Impact of movement distances": tracking error at each
// meter mark of longer traces; errors range ~3–14 cm and do not accumulate
// appreciably.
func Fig15(scale Scale) *Fig15Result {
	setup := NewSetup(scale, 0, 1501)
	arr := array.NewLinear3(Spacing)
	length := scale.PickF(4, 10)
	reps := scale.Pick(3, 6)
	marks := int(length)
	sums := make([][]float64, marks)

	for r := 0; r < reps; r++ {
		tr := cartTrace(scale, setup.Area, float64(r*50), length, int64(r))
		s, err := setup.Acquire(arr, tr, 1510+int64(r))
		if err != nil {
			panic(err)
		}
		res, err := core.ProcessSeries(s, CoreConfig(scale, arr))
		if err != nil {
			panic(err)
		}
		// Cumulative estimated distance per slot (with the blind-start
		// compensation applied at each segment start).
		dt := 1 / res.Rate
		cum := make([]float64, len(res.Estimates))
		var acc float64
		segAt := map[int]float64{}
		for _, seg := range res.SegmentsOfKind(core.MotionTranslate) {
			segAt[seg.Start] = seg.GroupSep
		}
		for i, e := range res.Estimates {
			if sep, ok := segAt[i]; ok {
				acc += sep
			}
			if e.Kind == core.MotionTranslate {
				acc += e.Speed * dt
			}
			cum[i] = acc
		}
		for k := 1; k <= marks; k++ {
			// Find the slot where ground truth crosses k meters.
			slot := -1
			for i := range tr.Samples {
				if tr.DistanceUpTo(i) >= float64(k) {
					slot = i
					break
				}
			}
			if slot < 0 || slot >= len(cum) {
				continue
			}
			sums[k-1] = append(sums[k-1], math.Abs(cum[slot]-float64(k))*100)
		}
	}
	out := &Fig15Result{}
	rep := &Report{
		ID:         "Fig. 15",
		Title:      "Impact of movement distances",
		PaperClaim: "median errors 3–14 cm across 1–10 m; no significant accumulation",
		Columns:    []string{"distance (m)", "median err (cm)"},
	}
	for k := 0; k < marks; k++ {
		med := sigproc.Median(sums[k])
		out.ErrCmAtMeter = append(out.ErrCmAtMeter, med)
		rep.AddRow(fmt.Sprintf("%d", k+1), fmt.Sprintf("%.1f", med))
	}
	out.Report = rep
	return out
}

// Fig16Result carries distance error vs sampling rate.
type Fig16Result struct {
	Report *Report
	// MedianCmByRate maps sampling rate (Hz) to median error (cm).
	MedianCmByRate map[int]float64
}

// Fig16 reproduces "Impact of sampling rate": CSI captured at 200 Hz is
// downsampled; at 1 m/s, 20–40 Hz are insufficient and ≥100 Hz is needed
// for sub-centimeter per-sample displacement.
func Fig16(scale Scale) *Fig16Result {
	setup := NewSetup(scale, 0, 1601)
	arr := array.NewLinear3(Spacing)
	baseRate := 200.0
	speed := 1.0
	length := scale.PickF(3, 8)
	reps := scale.Pick(2, 5)
	factors := []int{1, 2, 5, 10} // 200, 100, 40, 20 Hz
	out := &Fig16Result{MedianCmByRate: map[int]float64{}}

	errsByFactor := map[int][]float64{}
	for r := 0; r < reps; r++ {
		dir := geom.Rad(float64(r * 70))
		start := setup.Area.
			Add(geom.FromPolar(0.4, float64(r))).
			Sub(geom.FromPolar(length/2, dir))
		b := traj.NewBuilder(baseRate, geom.Pose{Pos: start, Theta: dir})
		b.Pause(0.5)
		b.MoveBody(0, length, speed)
		b.Pause(0.5)
		tr := b.Build()
		tr.AddLateralSway(0.004, 0.9)
		s, err := setup.Acquire(arr, tr, 1610+int64(r))
		if err != nil {
			panic(err)
		}
		for _, f := range factors {
			ds := s.Downsample(f)
			cfg := CoreConfig(scale, arr)
			res, err := core.ProcessSeries(ds, cfg)
			if err != nil {
				panic(err)
			}
			errsByFactor[f] = append(errsByFactor[f],
				math.Abs(res.Distance-tr.TotalDistance())*100)
		}
	}
	rep := &Report{
		ID:         "Fig. 16",
		Title:      "Impact of sampling rate",
		PaperClaim: "accuracy improves with rate; 20–40 Hz insufficient at 1 m/s, ≥100 Hz needed, marginal gains beyond",
		Columns:    []string{"rate (Hz)", "median err (cm)"},
	}
	for _, f := range factors {
		rate := int(baseRate) / f
		med := sigproc.Median(errsByFactor[f])
		out.MedianCmByRate[rate] = med
		rep.AddRow(fmt.Sprintf("%d", rate), fmt.Sprintf("%.1f", med))
	}
	out.Report = rep
	return out
}

// Fig17Result carries distance error vs virtual-antenna count.
type Fig17Result struct {
	Report *Report
	// MedianCmByV maps V to median distance error (cm).
	MedianCmByV map[int]float64
	Vs          []int
}

// Fig17 reproduces "Impact of virtual antenna number": the median error
// drops from ~30 cm at V=1 to ~10 cm at V=5 and ~6.6 cm at V=100.
func Fig17(scale Scale) *Fig17Result {
	setup := NewSetup(scale, 0, 1701)
	arr := array.NewLinear3(Spacing)
	vs := []int{1, 5, 20, 50}
	if scale == Full {
		vs = []int{1, 5, 10, 50, 100}
	}
	reps := scale.Pick(3, 6)
	length := scale.PickF(2, 5)
	out := &Fig17Result{MedianCmByV: map[int]float64{}, Vs: vs}

	// Reuse the same CSI per rep across V values. The receiver is
	// deliberately stressed (low SNR, loss): virtual-massive averaging is
	// a robustness mechanism, and a clean channel hides its value.
	var seriesList []*csi.Series
	var truths []float64
	for r := 0; r < reps; r++ {
		tr := cartTrace(scale, setup.Area, float64(r*75), length, int64(r))
		s, err := setup.AcquireWith(arr, tr, StressedReceiver(1710+int64(r)))
		if err != nil {
			panic(err)
		}
		seriesList = append(seriesList, s)
		truths = append(truths, tr.TotalDistance())
	}
	rep := &Report{
		ID:         "Fig. 17",
		Title:      "Impact of virtual antenna number",
		PaperClaim: "median error ~30 cm at V=1, ~10 cm at V=5, 6.6 cm at V=100 (diminishing returns past ~30)",
		Columns:    []string{"V", "median err (cm)"},
	}
	for _, v := range vs {
		var errs []float64
		for i, s := range seriesList {
			cfg := CoreConfig(scale, arr)
			cfg.V = v
			res, err := core.ProcessSeries(s, cfg)
			if err != nil {
				panic(err)
			}
			errs = append(errs, math.Abs(res.Distance-truths[i])*100)
		}
		med := sigproc.Median(errs)
		out.MedianCmByV[v] = med
		rep.AddRow(fmt.Sprintf("%d", v), fmt.Sprintf("%.1f", med))
	}
	out.Report = rep
	return out
}

// DynResult carries the environmental-dynamics robustness comparison.
type DynResult struct {
	Report *Report
	// StaticErrCm and DynamicErrCm are median distance errors.
	StaticErrCm, DynamicErrCm float64
}

// Dyn reproduces §6.2.8 "Robustness to environmental dynamics": the same
// distance workload with and without walking humans (dynamic scatterers)
// near the receiver; RIM's accuracy should not collapse.
func Dyn(scale Scale) *DynResult {
	arr := array.NewLinear3(Spacing)
	reps := scale.Pick(3, 6)
	length := scale.PickF(2, 5)

	run := func(dynamic bool, seedBase int64) []float64 {
		var errs []float64
		for r := 0; r < reps; r++ {
			setup := NewSetup(scale, 0, 1801+int64(r))
			if dynamic {
				setup.Env.SetDynamicScatterers(3, 1.2, setup.Area, seedBase+int64(r))
			}
			tr := cartTrace(scale, setup.Area, float64(r*60), length, int64(r))
			cfg := CoreConfig(scale, arr)
			e, _ := runDistance(setup, arr, tr, seedBase+100+int64(r), cfg)
			errs = append(errs, e*100)
		}
		return errs
	}
	static := run(false, 1820)
	dynamic := run(true, 1860)
	out := &DynResult{
		StaticErrCm:  sigproc.Median(static),
		DynamicErrCm: sigproc.Median(dynamic),
	}
	rep := &Report{
		ID:         "§6.2.8",
		Title:      "Robustness to environmental dynamics (walking humans)",
		PaperClaim: "accuracy holds with people moving around: only part of the multipath changes and RIM does not rely on absolute TRRS",
		Columns:    []string{"environment", "median err (cm)"},
	}
	rep.AddRow("static", fmt.Sprintf("%.1f", out.StaticErrCm))
	rep.AddRow("3 walking humans", fmt.Sprintf("%.1f", out.DynamicErrCm))
	out.Report = rep
	return out
}
