package experiments

import (
	"fmt"
	"math"

	"rim/internal/array"
	"rim/internal/core"
	"rim/internal/geom"
	"rim/internal/sigproc"
	"rim/internal/traj"
	"rim/internal/wiball"
)

// ExtWiBallResult compares RIM against the WiBall baseline.
type ExtWiBallResult struct {
	Report *Report
	// RIMErrCm and WiBallErrCm are median distance errors.
	RIMErrCm, WiBallErrCm float64
}

// ExtWiBall is an extension experiment beyond the paper's figures: it runs
// the WiBall TRRS-autocorrelation speed estimator (the paper's reference
// [46], its closest prior art and the §7 candidate for out-of-plane
// motion) on the same traces as RIM. The paper positions RIM as
// centimeter-accurate against WiBall's decimeter accuracy; this experiment
// regenerates that comparison.
func ExtWiBall(scale Scale) *ExtWiBallResult {
	setup := NewSetup(scale, 0, 4001)
	arr := array.NewLinear3(Spacing)
	reps := scale.Pick(3, 6)
	length := scale.PickF(2, 5)

	wcfg := wiball.DefaultConfig()
	wcfg.WavelengthM = scale.RF().Wavelength()

	var rimErrs, wbErrs []float64
	for r := 0; r < reps; r++ {
		// WiBall's measurable speed range is bounded by its lag window;
		// use a moderate speed well inside it for a fair comparison.
		tr := cartTrace(scale, setup.Area, float64(r*65), length, int64(r))
		s, err := setup.Acquire(arr, tr, 4010+int64(r))
		if err != nil {
			panic(err)
		}
		res, err := core.ProcessSeries(s, CoreConfig(scale, arr))
		if err != nil {
			panic(err)
		}
		rimErrs = append(rimErrs, math.Abs(res.Distance-tr.TotalDistance())*100)
		wb := wiball.EstimateSpeed(s, wcfg)
		wbErrs = append(wbErrs, math.Abs(wb.Distance-tr.TotalDistance())*100)
	}
	out := &ExtWiBallResult{
		RIMErrCm:    sigproc.Median(rimErrs),
		WiBallErrCm: sigproc.Median(wbErrs),
	}
	rep := &Report{
		ID:         "Ext. A",
		Title:      "RIM vs WiBall (TRRS autocorrelation) distance estimation",
		PaperClaim: "prior single-AP tracking [46] achieves decimeter accuracy; RIM reaches centimeters via virtual antenna alignment",
		Columns:    []string{"estimator", "median distance err (cm)"},
	}
	rep.AddRow("RIM (virtual antenna alignment)", fmt.Sprintf("%.1f", out.RIMErrCm))
	rep.AddRow("WiBall (ACF dip)", fmt.Sprintf("%.1f", out.WiBallErrCm))
	out.Report = rep
	return out
}

// ExtHeadingResult compares discrete and continuous heading resolution.
type ExtHeadingResult struct {
	Report *Report
	// DiscreteMeanDeg and ContinuousMeanDeg are mean heading errors over
	// an off-grid direction sweep.
	DiscreteMeanDeg, ContinuousMeanDeg float64
}

// ExtHeading is the §7 "angle resolution" future-work extension: headings
// between the hexagonal array's 30° direction set are refined by comparing
// alignment quality across angularly adjacent pair groups. The sweep uses
// off-grid directions, where the discrete estimator is limited to ≥10°
// error by construction.
func ExtHeading(scale Scale) *ExtHeadingResult {
	setup := NewSetup(scale, 0, 4101)
	arr := array.NewHexagonal(Spacing)
	rate := scale.Rate()
	dirs := []float64{10, 40, 75, 130}
	if scale == Full {
		dirs = []float64{5, 10, 20, 40, 50, 70, 75, 100, 130, 160}
	}
	run := func(continuous bool) float64 {
		var sum float64
		seed := int64(4110)
		for _, d := range dirs {
			b := traj.NewBuilder(rate, geom.Pose{Pos: setup.Area})
			b.Pause(0.4)
			b.MoveDir(geom.Rad(d), 0.8, 0.4)
			b.Pause(0.4)
			s, err := setup.Acquire(arr, b.Build(), seed)
			seed++
			if err != nil {
				panic(err)
			}
			cfg := CoreConfig(scale, arr)
			cfg.ContinuousHeading = continuous
			res, err := core.ProcessSeries(s, cfg)
			if err != nil {
				panic(err)
			}
			errDeg := 180.0
			for _, seg := range res.SegmentsOfKind(core.MotionTranslate) {
				errDeg = math.Abs(geom.Deg(geom.AngleDiff(seg.HeadingBody, geom.Rad(d))))
				break
			}
			sum += errDeg
		}
		return sum / float64(len(dirs))
	}
	out := &ExtHeadingResult{DiscreteMeanDeg: run(false), ContinuousMeanDeg: run(true)}
	rep := &Report{
		ID:         "Ext. B",
		Title:      "Continuous heading refinement (§7 future work)",
		PaperClaim: "§7: finer-granularity directions look promising by leveraging adjacent antenna pairs' TRRS deviation behaviour",
		Columns:    []string{"estimator", "mean heading err (deg, off-grid sweep)"},
	}
	rep.AddRow("discrete (30° set)", fmt.Sprintf("%.1f", out.DiscreteMeanDeg))
	rep.AddRow("continuous refinement", fmt.Sprintf("%.1f", out.ContinuousMeanDeg))
	out.Report = rep
	return out
}
