package experiments

import (
	"fmt"

	"rim/internal/apps/gesture"
	"rim/internal/apps/handwriting"
	"rim/internal/apps/tracking"
	"rim/internal/array"
	"rim/internal/camera"
	"rim/internal/csi"
	"rim/internal/fusion"
	"rim/internal/geom"
	"rim/internal/imu"
	"rim/internal/sigproc"
	"rim/internal/traj"
)

// Fig18Result carries per-letter handwriting errors.
type Fig18Result struct {
	Report *Report
	// MeanErrCmByLetter maps letter to mean trajectory error in cm.
	MeanErrCmByLetter map[rune]float64
	// OverallMeanCm is the mean over letters.
	OverallMeanCm float64
}

// Fig18 reproduces "Desktop handwriting": the array writes letters on a
// desk; the reconstruction error (mean minimum projection distance) was
// 2.4 cm in the paper for ~20 cm glyphs.
func Fig18(scale Scale) *Fig18Result {
	setup := NewSetup(scale, 0, 1901)
	rate := scale.Rate()
	arr := array.NewHexagonal(Spacing)
	letters := []rune{'L', 'I'}
	if scale == Full {
		letters = []rune{'R', 'I', 'M', 'L', 'N', 'W', 'Z', 'V'}
	}
	size := 0.4
	speed := 0.25
	cfg := CoreConfig(scale, arr)
	cfg.WindowSeconds = 0.35
	cfg.HeadingWindowSeconds = 0.5

	out := &Fig18Result{MeanErrCmByLetter: map[rune]float64{}}
	rep := &Report{
		ID:         "Fig. 18",
		Title:      "Desktop handwriting",
		PaperClaim: "recognizable letters; mean trajectory error 2.4 cm (letters ~20 cm)",
		Columns:    []string{"letter", "mean err (cm)", "points"},
	}
	seed := int64(1910)
	var all []float64
	for _, r := range letters {
		origin := setup.Area.Add(geom.Vec2{X: -0.2, Y: -0.2})
		res, err := handwriting.WriteAndReconstruct(r, origin, size, speed, rate,
			func(tr *traj.Trajectory) (*csi.Series, error) {
				return setup.Acquire(arr, tr, seed)
			}, cfg)
		seed++
		if err != nil {
			panic(err)
		}
		cm := res.MeanError * 100
		out.MeanErrCmByLetter[r] = cm
		all = append(all, cm)
		rep.AddRow(string(r), fmt.Sprintf("%.1f", cm), fmt.Sprintf("%d", len(res.Estimated)))
	}
	out.OverallMeanCm = sigproc.Mean(all)
	rep.AddNote("overall mean %.1f cm (glyph size %.0f cm)", out.OverallMeanCm, size*100)
	out.Report = rep
	return out
}

// Fig19Result carries gesture detection/recognition statistics.
type Fig19Result struct {
	Report *Report
	// Total gestures performed, detected, correctly recognized, and false
	// triggers.
	Total, Detected, Correct, FalseTriggers int
	DetectionRate                           float64
}

// Fig19 reproduces "Gesture recognition": users perform left/right/up/down
// out-and-back strokes with a pointer unit; the paper reports 96.25%
// detection with all detected gestures correctly recognized and 1.04%
// false triggers.
func Fig19(scale Scale) *Fig19Result {
	setup := NewSetup(scale, 0, 2001)
	rate := scale.Rate()
	arr := array.NewLShape(Spacing)
	users := scale.Pick(1, 3)
	repsPerGesture := scale.Pick(2, 5)

	ccfg := CoreConfig(scale, arr)
	ccfg.WindowSeconds = 0.25
	gcfg := gesture.DefaultConfig(ccfg)

	out := &Fig19Result{}
	seed := int64(2010)
	for u := 0; u < users; u++ {
		// Per-user style: slightly different speed and reach.
		speed := 0.35 + 0.1*float64(u)
		reach := 0.28 + 0.04*float64(u)
		var kinds []traj.GestureKind
		for rep := 0; rep < repsPerGesture; rep++ {
			kinds = append(kinds, traj.AllGestures()...)
		}
		tr, spans := traj.GestureSession(rate, kinds, setup.Area, reach, speed)
		s, err := setup.Acquire(arr, tr, seed)
		seed++
		if err != nil {
			panic(err)
		}
		dets, err := gesture.Recognize(s, gcfg)
		if err != nil {
			panic(err)
		}
		out.Total += len(kinds)
		matched := make([]bool, len(kinds))
		for _, d := range dets {
			mid := (d.Start + d.End) / 2
			hit := false
			for gi, sp := range spans {
				if mid >= sp[0]-int(0.3*rate) && mid < sp[1]+int(0.3*rate) {
					hit = true
					if !matched[gi] {
						matched[gi] = true
						out.Detected++
						if d.Kind == kinds[gi] {
							out.Correct++
						}
					}
					break
				}
			}
			if !hit {
				out.FalseTriggers++
			}
		}
	}
	if out.Total > 0 {
		out.DetectionRate = float64(out.Detected) / float64(out.Total)
	}
	rep := &Report{
		ID:         "Fig. 19",
		Title:      "Gesture recognition",
		PaperClaim: "96.25% average detection; all detected gestures correctly recognized; 4.79% misses, 1.04% false triggers",
		Columns:    []string{"metric", "value"},
	}
	rep.AddRow("gestures performed", fmt.Sprintf("%d", out.Total))
	rep.AddRow("detected", fmt.Sprintf("%d (%.1f%%)", out.Detected, out.DetectionRate*100))
	rep.AddRow("correctly recognized", fmt.Sprintf("%d", out.Correct))
	rep.AddRow("false triggers", fmt.Sprintf("%d", out.FalseTriggers))
	out.Report = rep
	return out
}

// Fig20Result carries pure-RIM floor tracking accuracy.
type Fig20Result struct {
	Report *Report
	// MedianErrM per trace.
	MedianErrM []float64
	// DistRelErr per trace: |est−truth|/truth path length.
	DistRelErr []float64
}

// Fig20 reproduces "Tracking by sole RIM": floor-scale trajectories with
// sideway movements (heading changes without turning) tracked by the
// hexagonal array alone; the paper shows 36 m and 76 m traces accurately
// reconstructed with no significant accumulation.
func Fig20(scale Scale) *Fig20Result {
	setup := NewSetup(scale, 0, 2101)
	rate := scale.Rate()
	arr := array.NewHexagonal(Spacing)
	speed := scale.PickF(0.4, 0.8)
	leg := scale.PickF(1.5, 6)

	cfg := CoreConfig(scale, arr)
	out := &Fig20Result{}
	rep := &Report{
		ID:         "Fig. 20",
		Title:      "Indoor tracking by sole RIM (sideway movements)",
		PaperClaim: "36 m and 76 m traces with sideway moves tracked accurately; no significant error accumulation",
		Columns:    []string{"trace", "length (m)", "median err (m)", "dist rel err (%)"},
	}
	// Two traces: an L with sideways, and a zigzag loop. Starts are chosen
	// so the whole path stays inside the open experiment area.
	paths := []struct {
		dirs  []float64
		start geom.Vec2
	}{
		{[]float64{0, 90, 0}, setup.Area.Add(geom.Vec2{X: -2 * leg, Y: -leg / 2})},
		{[]float64{0, 90, 180, 90, 0}, setup.Area.Add(geom.Vec2{X: -leg / 2, Y: -leg})},
	}
	for ti, path := range paths {
		dirs := path.dirs
		start := path.start
		b := traj.NewBuilder(rate, geom.Pose{Pos: start})
		b.Pause(0.5)
		for _, d := range dirs {
			b.MoveDir(geom.Rad(d), leg, speed)
			b.Pause(0.7)
		}
		tr := b.Build()
		s, err := setup.Acquire(arr, tr, 2110+int64(ti))
		if err != nil {
			panic(err)
		}
		camCfg := camera.DefaultConfig(2120 + int64(ti))
		res, err := tracking.PureRIM(s, cfg, geom.Pose{Pos: start}, tr, camCfg)
		if err != nil {
			panic(err)
		}
		out.MedianErrM = append(out.MedianErrM, res.MedianError)
		rel := 0.0
		if res.TruthDistance > 0 {
			rel = (res.EstimatedDistance - res.TruthDistance) / res.TruthDistance * 100
		}
		out.DistRelErr = append(out.DistRelErr, rel)
		rep.AddRow(fmt.Sprintf("%d", ti+1),
			fmt.Sprintf("%.1f", res.TruthDistance),
			fmt.Sprintf("%.2f", res.MedianError),
			fmt.Sprintf("%+.1f", rel))
	}
	out.Report = rep
	return out
}

// Fig21Result carries the fused-tracking comparison.
type Fig21Result struct {
	Report *Report
	// RawMedianErrM is RIM distance + gyro heading dead reckoning;
	// PFMedianErrM adds the map-constrained particle filter;
	// ESKFMedianErrM swaps the particle filter for the error-state Kalman
	// backend (ZUPT pseudo-measurements, no floorplan).
	RawMedianErrM, PFMedianErrM, ESKFMedianErrM float64
}

// Fig21 reproduces "Tracking by RIM integrated with sensors": RIM supplies
// distance, the (drifting) gyroscope supplies heading, and the particle
// filter with floorplan constraints corrects the drift.
func Fig21(scale Scale) *Fig21Result {
	// The tour runs in the west corridor, so center the scatterer field
	// there rather than on the default open area.
	setup := NewSetupAt(scale, 0, geom.Vec2{X: 9.5, Y: 12}, 2201)
	rate := scale.Rate()
	arr := array.NewLinear3(Spacing)
	speed := scale.PickF(0.4, 0.8)
	leg := scale.PickF(1.5, 4)

	// A touring path through the west corridor (walled on both sides by
	// the room block at x=5.5 and the building core at x=12), as a cart
	// tours the floor: the gyroscope measures the turns but its bias
	// drift accumulates; RIM supplies drift-free distances; the particle
	// filter reconciles them against the floorplan walls (Fig. 21).
	corridorLeg := scale.PickF(5, 13)
	start := geom.Vec2{X: 8.75, Y: 5.5}
	b := traj.NewBuilder(rate, geom.Pose{Pos: start, Theta: geom.Rad(90)})
	b.Pause(0.5)
	b.MoveBody(0, corridorLeg, speed) // north through the corridor
	b.Pause(0.3)
	b.RotateInPlace(geom.Rad(-90), geom.Rad(90))
	b.Pause(0.3)
	b.MoveBody(0, leg, speed) // east into the open area
	b.Pause(0.5)
	tr := b.Build()
	s, err := setup.Acquire(arr, tr, 2210)
	if err != nil {
		panic(err)
	}
	// Aggressive gyro drift makes the comparison visible at demo length.
	icfg := imu.DefaultConfig(2211)
	icfg.GyroBiasWalk = 3e-3
	readings := imu.Simulate(tr, icfg)
	camCfg := camera.DefaultConfig(2212)
	cfg := CoreConfig(scale, arr)

	raw, err := tracking.Fused(s, cfg, readings, tracking.FusedConfig{},
		geom.Pose{Pos: start, Theta: geom.Rad(90)}, tr, camCfg)
	if err != nil {
		panic(err)
	}
	pf, err := tracking.Fused(s, cfg, readings, tracking.FusedConfig{
		UsePF: true,
		PF:    fusion.DefaultConfig(2213),
		Plan:  &setup.Office.Plan,
	}, geom.Pose{Pos: start, Theta: geom.Rad(90)}, tr, camCfg)
	if err != nil {
		panic(err)
	}
	// Same walk through the ESKF backend: no floorplan, but ZUPT intervals
	// pin the speed/gyro biases during the pauses and the magnetometer
	// bounds absolute heading drift.
	eskfCfg := fusion.DefaultConfig(2213)
	eskfCfg.Backend = fusion.BackendESKF
	eskf, err := tracking.Fused(s, cfg, readings, tracking.FusedConfig{
		UsePF: true,
		PF:    eskfCfg,
	}, geom.Pose{Pos: start, Theta: geom.Rad(90)}, tr, camCfg)
	if err != nil {
		panic(err)
	}
	out := &Fig21Result{
		RawMedianErrM:  raw.MedianError,
		PFMedianErrM:   pf.MedianError,
		ESKFMedianErrM: eskf.MedianError,
	}
	rep := &Report{
		ID:         "Fig. 21",
		Title:      "Tracking by RIM integrated with inertial sensors",
		PaperClaim: "RIM distances accurate; gyro heading drifts; the floorplan particle filter gracefully reconstructs the trajectory",
		Columns:    []string{"variant", "median err (m)"},
	}
	rep.AddRow("RIM + gyro (raw)", fmt.Sprintf("%.2f", out.RawMedianErrM))
	rep.AddRow("RIM + gyro + particle filter", fmt.Sprintf("%.2f", out.PFMedianErrM))
	rep.AddRow("RIM + gyro + ESKF (ZUPT)", fmt.Sprintf("%.2f", out.ESKFMedianErrM))
	out.Report = rep
	return out
}
