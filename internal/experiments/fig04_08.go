package experiments

import (
	"fmt"
	"math"

	"rim/internal/align"
	"rim/internal/array"
	"rim/internal/core"
	"rim/internal/geom"
	"rim/internal/imu"
	"rim/internal/sigproc"
	"rim/internal/traj"
	"rim/internal/trrs"
)

// Fig4Result carries the TRRS-vs-displacement series for shape tests.
type Fig4Result struct {
	Report *Report
	// DistancesMM and SelfTRRS: self-TRRS against displacement (Fig. 4a).
	DistancesMM []float64
	SelfTRRS    []float64
	// CrossRelMM and CrossTRRS: cross-antenna TRRS against the relative
	// distance around the antenna separation (Fig. 4b) — the peak sits at
	// relative distance 0, i.e. where the following antenna reaches the
	// leading antenna's footprint.
	CrossRelMM []float64
	CrossTRRS  []float64
}

// Fig4 reproduces "Spatial resolution of TRRS": an antenna moves at
// constant speed; the TRRS of each antenna against its own past snapshots
// (self) and against another antenna's snapshots (cross, with virtual
// massive boosting) is plotted against relative displacement. The paper
// observes an immediate drop within millimeters and a ~1 cm unambiguous
// peak width.
func Fig4(scale Scale) *Fig4Result {
	setup := NewSetup(scale, 0, 401)
	rate := scale.Rate()
	speed := 0.25
	arr := array.NewLinear3(Spacing)
	tr := traj.Line(rate, setup.Area, 0, 0, 0.5, speed)
	s, err := setup.Acquire(arr, tr, 402)
	if err != nil {
		panic(err)
	}
	e := trrs.NewEngine(s)
	mmPerSlot := speed / rate * 1000

	rep := &Report{
		ID:         "Fig. 4",
		Title:      "Spatial resolution of TRRS",
		PaperClaim: "self-TRRS drops by up to 0.3 within a few mm, decreases within ~1 cm; cross-antenna TRRS peaks at the antenna distance and decays the same way at lower absolute values",
		Columns:    []string{"series", "x (mm)", "TRRS"},
	}
	res := &Fig4Result{Report: rep}

	// Reference slot in steady motion, averaged with Eq. 4's virtual
	// massive window.
	t0 := s.NumSlots() / 2
	v := scale.Pick(10, 30)
	avgAt := func(i, j, lag int) float64 {
		var sum float64
		n := 0
		for _, tt := range []int{t0 - 20, t0, t0 + 20} {
			var sv float64
			m := 0
			for k := -v / 2; k <= v/2; k++ {
				sv += e.Base(i, j, tt+k, tt+k-lag)
				m++
			}
			sum += sv / float64(m)
			n++
		}
		return sum / float64(n)
	}

	// Fig. 4a: self-TRRS out to 40 mm (averaged over the 3 antennas).
	maxLag := int(40 / mmPerSlot)
	for lag := 0; lag <= maxLag; lag += scale.Pick(2, 1) {
		var self float64
		for a := 0; a < 3; a++ {
			self += avgAt(a, a, lag)
		}
		mm := float64(lag) * mmPerSlot
		res.DistancesMM = append(res.DistancesMM, mm)
		res.SelfTRRS = append(res.SelfTRRS, self/3)
	}
	// Fig. 4b: cross-TRRS of the adjacent pair (0,1) against the relative
	// distance around its separation. Pair (0,1) with the array moving
	// along +X: antenna 0 retraces antenna 1, so the peak sits at lag =
	// separation/speed.
	sep := Spacing * 1000 // mm
	for rel := -20.0; rel <= 40; rel += scale.PickF(5, 2.5) {
		lag := int(math.Round((sep + rel) / mmPerSlot))
		res.CrossRelMM = append(res.CrossRelMM, rel)
		res.CrossTRRS = append(res.CrossTRRS, avgAt(0, 1, lag))
	}
	for i := range res.DistancesMM {
		rep.AddRow("self", fmt.Sprintf("%.1f", res.DistancesMM[i]),
			fmt.Sprintf("%.3f", res.SelfTRRS[i]))
	}
	for i := range res.CrossRelMM {
		rep.AddRow("cross(0,1)", fmt.Sprintf("%+.1f", res.CrossRelMM[i]),
			fmt.Sprintf("%.3f", res.CrossTRRS[i]))
	}
	return res
}

// Fig5Result carries the aligned-pair sequence of the square trajectory.
type Fig5Result struct {
	Report *Report
	// LegHeadings are the measured body-frame headings of the four legs
	// in degrees.
	LegHeadings []float64
	// TrueHeadings are the ground-truth leg directions in degrees.
	TrueHeadings []float64
}

// Fig5 reproduces "Alignment matrices of a square-shape trajectory": a
// hexagonal array traces a square without turning; the aligned pairs (and
// hence headings) must step through the four leg directions in turn.
func Fig5(scale Scale) *Fig5Result {
	setup := NewSetup(scale, 0, 405)
	rate := scale.Rate()
	arr := array.NewHexagonal(Spacing)
	side := scale.PickF(0.8, 1.5)
	b := traj.NewBuilder(rate, geom.Pose{Pos: setup.Area})
	b.Pause(0.6)
	var legSpan [][2]int
	for _, dir := range []float64{0, 90, 180, 270} {
		s0 := b.NumSamples()
		b.MoveDir(geom.Rad(dir), side, 0.4)
		legSpan = append(legSpan, [2]int{s0, b.NumSamples()})
		b.Pause(0.8)
	}
	tr := b.Build()
	s, err := setup.Acquire(arr, tr, 406)
	if err != nil {
		panic(err)
	}
	res, err := core.ProcessSeries(s, CoreConfig(scale, arr))
	if err != nil {
		panic(err)
	}
	rep := &Report{
		ID:         "Fig. 5",
		Title:      "Alignment matrices of a square-shape trajectory",
		PaperClaim: "aligned pairs switch through the four leg directions in turn (1v3, 1v6, then reversed)",
		Columns:    []string{"leg", "true heading (deg)", "measured heading (deg)", "distance (m)"},
	}
	out := &Fig5Result{Report: rep, TrueHeadings: []float64{0, 90, 180, -90}}
	// Match each leg to the translate segment overlapping it most.
	for li, span := range legSpan {
		var bestSeg *core.SegmentResult
		bestOverlap := 0
		for i := range res.Segments {
			seg := &res.Segments[i]
			if seg.Kind != core.MotionTranslate {
				continue
			}
			lo := max(seg.Start, span[0])
			hi := min(seg.End, span[1])
			if hi-lo > bestOverlap {
				bestOverlap = hi - lo
				bestSeg = seg
			}
		}
		if bestSeg == nil {
			rep.AddRow(fmt.Sprintf("%d", li+1),
				fmt.Sprintf("%.0f", out.TrueHeadings[li]), "unresolved", "-")
			continue
		}
		h := geom.Deg(bestSeg.HeadingBody)
		out.LegHeadings = append(out.LegHeadings, h)
		rep.AddRow(fmt.Sprintf("%d", li+1),
			fmt.Sprintf("%.0f", out.TrueHeadings[li]),
			fmt.Sprintf("%.0f", h),
			fmt.Sprintf("%.2f", bestSeg.Distance))
	}
	return out
}

// Fig6Result carries the deviated-retracing peak statistics.
type Fig6Result struct {
	Report *Report
	// PeakByDeviation maps deviation angle (deg) to the median tracked
	// peak TRRS; PromByDeviation maps it to the median peak prominence
	// (peak minus off-peak floor), the quantity that actually decides
	// whether alignment is usable.
	PeakByDeviation map[int]float64
	PromByDeviation map[int]float64
}

// Fig6 reproduces "Antenna alignment in case of deviated retracing": the
// array moves at an angle slightly off a pair's axis; the alignment peak
// weakens but survives. With the adjacent pair (Δd = λ/2) the theoretical
// tolerance is arcsin(0.2λ/Δd) ≈ 24°, and the paper demonstrates 15°.
func Fig6(scale Scale) *Fig6Result {
	setup := NewSetup(scale, 0, 407)
	rate := scale.Rate()
	arr := array.NewLinear3(Spacing)
	rep := &Report{
		ID:         "Fig. 6",
		Title:      "Antenna alignment under deviated retracing",
		PaperClaim: "TRRS peaks much weaker but still evident at 15° deviation; tolerance ≈ arcsin(0.2λ/Δd)",
		Columns:    []string{"deviation (deg)", "median peak TRRS", "median prominence"},
	}
	out := &Fig6Result{
		Report:          rep,
		PeakByDeviation: map[int]float64{},
		PromByDeviation: map[int]float64{},
	}
	for _, devDeg := range []int{0, 15, 40} {
		b := traj.NewBuilder(rate, geom.Pose{Pos: setup.Area})
		b.Pause(0.3)
		// Move off-axis by devDeg while the body (and pair axis) stays
		// put.
		b.MoveDir(geom.Rad(float64(devDeg)), 0.8, 0.4)
		tr := b.Build()
		s, err := setup.Acquire(arr, tr, 408+int64(devDeg))
		if err != nil {
			panic(err)
		}
		e := trrs.NewEngine(s)
		w := int(0.3 * rate)
		// Adjacent pair (0,1): Δd = λ/2, tolerance ≈ 24°.
		m := e.PairMatrix(0, 1, w, scale.Pick(16, 30))
		start := int(0.6 * rate)
		track := align.TrackPeaks(m, start, m.NumSlots()-5, align.DefaultTrackConfig())
		peak := sigproc.Median(track.Vals)
		// Peak elevation at the *expected* alignment lag above the row's
		// TRRS floor (the paper's Fig. 6b compares peak heights at the
		// alignment position): under deviation the aligned antennas pass
		// at a closest approach of Δd·sin(α), so the TRRS there sinks
		// toward the floor as α grows past the tolerance.
		expLag := int(math.Round(Spacing * math.Cos(geom.Rad(float64(devDeg))) / 0.4 * rate))
		var elevs []float64
		for t := start; t < m.NumSlots()-5; t++ {
			elevs = append(elevs, m.At(t, expLag)-sigproc.Median(m.Vals[t]))
		}
		prom := sigproc.Median(elevs)
		out.PeakByDeviation[devDeg] = peak
		out.PromByDeviation[devDeg] = prom
		rep.AddRow(fmt.Sprintf("%d", devDeg), fmt.Sprintf("%.3f", peak), fmt.Sprintf("%.3f", prom))
	}
	return out
}

// Fig7Result carries the movement-detection indicator curves.
type Fig7Result struct {
	Report *Report
	// StopsDetectedRIM / StopsDetectedIMU count how many of the transient
	// stops each detector resolves.
	StopsDetectedRIM int
	StopsDetectedIMU int
	NumStops         int
}

// Fig7 reproduces "Movement detection": a stop-and-go trace with transient
// stops; RIM's TRRS indicator resolves every stop while the accelerometer/
// gyroscope energy detector misses them.
func Fig7(scale Scale) *Fig7Result {
	setup := NewSetup(scale, 0, 409)
	rate := scale.Rate()
	arr := array.NewLinear3(Spacing)
	numStops := 3
	stop := 0.7
	b := traj.NewBuilder(rate, geom.Pose{Pos: setup.Area})
	b.Pause(2)
	for i := 0; i < numStops+1; i++ {
		b.MoveDir(0, 0.8, 0.6)
		if i < numStops {
			b.Pause(stop)
		}
	}
	b.Pause(2)
	tr := b.Build()
	s, err := setup.Acquire(arr, tr, 410)
	if err != nil {
		panic(err)
	}
	e := trrs.NewEngine(s)
	mcfg := align.DefaultMovementConfig()
	rimInd := align.MovementIndicator(e, mcfg)
	readings := imu.Simulate(tr, imu.DefaultConfig(411))
	imuInd := imu.MovementIndicator(readings, rate, 1.0)

	// A stop is "detected" when the indicator crosses its threshold
	// within the stop interval.
	stopDetected := func(ind []float64, static func(v float64) bool) int {
		count := 0
		cursor := 0
		// Recompute stop intervals from ground truth.
		for i := 1; i < len(tr.Samples); i++ {
			mv := tr.Samples[i].Vel.Norm() > 0
			pv := tr.Samples[i-1].Vel.Norm() > 0
			if pv && !mv { // stop begins
				start := i
				end := i
				for end < len(tr.Samples) && tr.Samples[end].Vel.Norm() == 0 {
					end++
				}
				// Only transient stops (not the long head/tail pauses).
				if float64(end-start)/rate < 1.5 && start > int(2.5*rate) && end < len(tr.Samples)-int(1.5*rate) {
					for k := start; k < end && k < len(ind); k++ {
						if static(ind[k]) {
							count++
							break
						}
					}
				}
				cursor = end
			}
		}
		_ = cursor
		return count
	}
	res := &Fig7Result{NumStops: numStops}
	res.StopsDetectedRIM = stopDetected(rimInd, func(v float64) bool { return v >= mcfg.Threshold })
	res.StopsDetectedIMU = stopDetected(imuInd, func(v float64) bool { return v < 0.25 })

	rep := &Report{
		ID:         "Fig. 7",
		Title:      "Movement detection (TRRS vs accelerometer/gyroscope)",
		PaperClaim: "RIM detects all transient stops; Acc and Gyr both fail to detect the three transient stops",
		Columns:    []string{"detector", "transient stops detected", "of"},
	}
	rep.AddRow("RIM (TRRS)", fmt.Sprintf("%d", res.StopsDetectedRIM), fmt.Sprintf("%d", numStops))
	rep.AddRow("Acc+Gyr energy", fmt.Sprintf("%d", res.StopsDetectedIMU), fmt.Sprintf("%d", numStops))
	res.Report = rep
	return res
}

// Fig8Result carries the peak-tracking accuracy of a back-and-forth move.
type Fig8Result struct {
	Report *Report
	// HitRate is the fraction of steady-state slots where the tracked lag
	// matches the ground-truth lag within 2 slots.
	HitRate float64
	// SignFlip reports whether the tracked lag changed sign between the
	// forward and backward phases.
	SignFlip bool
}

// Fig8 reproduces "TRRS peak tracking": a forward-then-backward movement
// whose alignment lag flips sign; the DP tracker must follow the ridge
// through noise.
func Fig8(scale Scale) *Fig8Result {
	setup := NewSetup(scale, 0, 412)
	rate := scale.Rate()
	speed := 0.4
	arr := array.NewLinear3(Spacing)
	tr := traj.BackAndForth(rate, setup.Area, 0, scale.PickF(0.8, 2), speed)
	s, err := setup.Acquire(arr, tr, 413)
	if err != nil {
		panic(err)
	}
	e := trrs.NewEngine(s)
	w := int(0.3 * rate)
	m := e.PairMatrix(0, 2, w, scale.Pick(16, 30))
	track := align.TrackPeaks(m, 0, m.NumSlots(), align.DefaultTrackConfig())

	wantLag := int(math.Round(2 * Spacing / speed * rate))
	half := len(tr.Samples) / 2
	hits, total := 0, 0
	sawPos, sawNeg := false, false
	for k, lag := range track.Lags {
		truthLag := wantLag
		if k > half {
			truthLag = -wantLag
		}
		// Steady state only: skip the warmup after each reversal.
		if k < wantLag+5 || (k > half-5 && k < half+wantLag+10) || k > len(track.Lags)-5 {
			continue
		}
		total++
		if int(math.Abs(float64(lag-truthLag))) <= 2 {
			hits++
		}
		if lag > 0 {
			sawPos = true
		}
		if lag < 0 {
			sawNeg = true
		}
	}
	res := &Fig8Result{}
	if total > 0 {
		res.HitRate = float64(hits) / float64(total)
	}
	res.SignFlip = sawPos && sawNeg
	rep := &Report{
		ID:         "Fig. 8",
		Title:      "TRRS peak tracking (dynamic programming)",
		PaperClaim: "alignment peaks identified accurately and robustly; lag sign flips between forward and backward phases",
		Columns:    []string{"metric", "value"},
	}
	rep.AddRow("steady-state lag hit rate", fmt.Sprintf("%.2f", res.HitRate))
	rep.AddRow("lag sign flip observed", fmt.Sprintf("%v", res.SignFlip))
	res.Report = rep
	return res
}
