package experiments

import (
	"fmt"
	"math"

	"rim/internal/align"
	"rim/internal/array"
	"rim/internal/core"
	"rim/internal/csi"
	"rim/internal/geom"
	"rim/internal/sigproc"
	"rim/internal/traj"
	"rim/internal/trrs"
)

// AblationResult is a generic two-arm comparison.
type AblationResult struct {
	Report *Report
	// With / Without are the metric values with the design choice enabled
	// and disabled (lower is better unless stated otherwise in the
	// report).
	With, Without float64
}

// AblationSanitize quantifies the linear phase sanitization (§5): distance
// error with and without detrending under realistic SFO/STO jitter.
func AblationSanitize(scale Scale) *AblationResult {
	setup := NewSetup(scale, 0, 3001)
	arr := array.NewLinear3(Spacing)
	reps := scale.Pick(3, 5)
	var withErrs, withoutErrs []float64
	for r := 0; r < reps; r++ {
		tr := cartTrace(scale, setup.Area, 30+float64(r*70), scale.PickF(2, 5), int64(r))
		// Pronounced symbol-timing jitter so the effect is visible even
		// on the short fast-scale traces (the realistic level already
		// destroys alignment on paper-scale traces).
		rcfg := csi.RealisticReceiver(3002 + int64(r))
		rcfg.STOSlopeMax = 0.15
		raw := csi.Collect(setup.Env, arr, tr, rcfg)
		run := func(sanitize bool) float64 {
			s, err := raw.Process(sanitize)
			if err != nil {
				panic(err)
			}
			res, err := core.ProcessSeries(s, CoreConfig(scale, arr))
			if err != nil {
				panic(err)
			}
			return math.Abs(res.Distance-tr.TotalDistance()) * 100
		}
		withErrs = append(withErrs, run(true))
		withoutErrs = append(withoutErrs, run(false))
	}
	out := &AblationResult{
		With:    sigproc.Median(withErrs),
		Without: sigproc.Median(withoutErrs),
	}
	rep := &Report{
		ID:         "Ablation A",
		Title:      "Linear phase sanitization (SpotFi-style calibration)",
		PaperClaim: "the paper calibrates SFO/STO linear offsets before TRRS; without it, per-packet slope jitter destroys alignment",
		Columns:    []string{"variant", "distance err (cm)"},
	}
	rep.AddRow("with sanitization", fmt.Sprintf("%.1f", out.With))
	rep.AddRow("without sanitization", fmt.Sprintf("%.1f", out.Without))
	out.Report = rep
	return out
}

// AblationDP quantifies the dynamic-programming peak tracker (Eq. 6–8)
// against per-column argmax under packet loss and noise: the fraction of
// steady-state slots whose tracked lag deviates from the ground truth by
// more than 2 slots (outlier rate — exactly what the jump cost suppresses).
func AblationDP(scale Scale) *AblationResult {
	setup := NewSetup(scale, 0, 3101)
	rate := scale.Rate()
	speed := 0.4
	arr := array.NewLinear3(Spacing)
	tr := traj.Line(rate, setup.Area, 0, 0, scale.PickF(1.5, 3), speed)
	s, err := setup.AcquireWith(arr, tr, StressedReceiver(3102))
	if err != nil {
		panic(err)
	}
	e := trrs.NewEngine(s)
	w := int(0.3 * rate)
	// Single-snapshot matrix (V=1): the DP's jump cost is the only thing
	// standing between measurement noise and the lag estimate here, which
	// isolates its contribution from the virtual-massive averaging.
	m := e.PairMatrix(0, 2, w, 1)
	trueLag := 2 * Spacing / speed * rate
	start := int(math.Ceil(trueLag)) + 5
	end := m.NumSlots() - 5

	outlierRate := func(lags []int) float64 {
		bad := 0
		for _, l := range lags {
			if math.Abs(float64(l)-trueLag) > 2 {
				bad++
			}
		}
		if len(lags) == 0 {
			return 1
		}
		return float64(bad) / float64(len(lags))
	}
	dp := align.TrackPeaks(m, start, end, align.DefaultTrackConfig())
	naiveAll, _ := m.ColumnMax()
	out := &AblationResult{
		With:    outlierRate(dp.Lags),
		Without: outlierRate(naiveAll[start:end]),
	}
	rep := &Report{
		ID:         "Ablation B",
		Title:      "DP peak tracking vs per-column argmax (lag outlier rate)",
		PaperClaim: "maximum values deviate from true delays under noise/packet loss; the DP tracker (Eq. 6–8) is needed",
		Columns:    []string{"variant", "lag outliers (>2 slots)"},
	}
	rep.AddRow("DP tracker", fmt.Sprintf("%.3f", out.With))
	rep.AddRow("naive argmax", fmt.Sprintf("%.3f", out.Without))
	out.Report = rep
	return out
}

// AblationPairAvg quantifies the §4.2 parallel-isometric pair matrix
// averaging on the hexagonal array.
func AblationPairAvg(scale Scale) *AblationResult {
	setup := NewSetup(scale, 0, 3201)
	arr := array.NewHexagonal(Spacing)
	reps := scale.Pick(3, 5)
	var withErrs, withoutErrs []float64
	for r := 0; r < reps; r++ {
		rcfg := csi.RealisticReceiver(3202 + int64(r))
		rcfg.SNRdB = 12
		b := traj.NewBuilder(scale.Rate(), geom.Pose{Pos: setup.Area.Add(geom.FromPolar(0.4, float64(r)))})
		b.Pause(0.5)
		b.MoveDir(geom.Rad(60), scale.PickF(1.5, 3), 0.4)
		b.Pause(0.5)
		tr := b.Build()
		s, err := csi.Collect(setup.Env, arr, tr, rcfg).Process(true)
		if err != nil {
			panic(err)
		}
		run := func(disable bool) float64 {
			cfg := CoreConfig(scale, arr)
			cfg.DisablePairAveraging = disable
			res, err := core.ProcessSeries(s, cfg)
			if err != nil {
				panic(err)
			}
			return math.Abs(res.Distance-tr.TotalDistance()) * 100
		}
		withErrs = append(withErrs, run(false))
		withoutErrs = append(withoutErrs, run(true))
	}
	out := &AblationResult{
		With:    sigproc.Median(withErrs),
		Without: sigproc.Median(withoutErrs),
	}
	rep := &Report{
		ID:         "Ablation C",
		Title:      "Parallel-isometric pair matrix averaging (§4.2)",
		PaperClaim: "averaging alignment matrices of parallel isometric pairs augments alignment since they share delays",
		Columns:    []string{"variant", "distance err (cm)"},
	}
	rep.AddRow("with pair averaging", fmt.Sprintf("%.1f", out.With))
	rep.AddRow("without", fmt.Sprintf("%.1f", out.Without))
	out.Report = rep
	return out
}

// AblationAmplitude compares the complex TRRS against an amplitude-only
// similarity by alignment-peak prominence. Amplitude profiles are
// all-positive vectors, so even unrelated locations correlate near
// E[|h|]²/E[|h|²] ≈ π/4 — the similarity floor sits at ~0.7 and the
// alignment peak barely rises above it, which starves pre-detection and
// robust tracking. The complex TRRS (time-reversal focusing) keeps a deep
// floor and a prominent peak.
func AblationAmplitude(scale Scale) *AblationResult {
	setup := NewSetup(scale, 0, 3301)
	rate := scale.Rate()
	speed := 0.4
	arr := array.NewLinear3(Spacing)
	tr := traj.Line(rate, setup.Area, 0, 0, scale.PickF(1.5, 3), speed)
	s, err := setup.AcquireWith(arr, tr, StressedReceiver(3302))
	if err != nil {
		panic(err)
	}
	trueLag := 2 * Spacing / speed * rate
	w := int(0.3 * rate)
	v := scale.Pick(16, 30)

	prominence := func(e *trrs.Engine) float64 {
		m := e.PairMatrix(0, 2, w, v)
		start := int(math.Ceil(trueLag)) + 5
		prom := align.Prominence(m, 0)
		return sigproc.Median(prom[start : m.NumSlots()-5])
	}
	out := &AblationResult{
		With:    prominence(trrs.NewEngine(s)),
		Without: prominence(trrs.NewAmplitudeEngine(s)),
	}
	rep := &Report{
		ID:         "Ablation D",
		Title:      "TRRS (time-reversal) vs amplitude-only similarity",
		PaperClaim: "TRRS exploits time-reversal focusing for location distinction; heuristic amplitude metrics lack the resolution",
		Columns:    []string{"similarity", "median peak prominence"},
	}
	rep.AddRow("complex TRRS", fmt.Sprintf("%.3f", out.With))
	rep.AddRow("amplitude only", fmt.Sprintf("%.3f", out.Without))
	out.Report = rep
	return out
}
