package experiments

import (
	"math"
	"strings"
	"testing"

	"rim/internal/apps/tracking"
	"rim/internal/array"
	"rim/internal/camera"
	"rim/internal/fusion"
	"rim/internal/geom"
	"rim/internal/imu"
	"rim/internal/sigproc"
	"rim/internal/traj"
)

// The experiment tests assert the paper's qualitative shapes at Fast scale:
// who wins, by roughly what factor, where crossovers fall. Absolute numbers
// differ from the paper (simulated substrate), which is expected.

func TestReportString(t *testing.T) {
	r := &Report{
		ID: "Fig. X", Title: "demo", PaperClaim: "c",
		Columns: []string{"a", "bb"},
	}
	r.AddRow("1", "2")
	r.AddNote("n=%d", 3)
	s := r.String()
	for _, want := range []string{"Fig. X", "demo", "paper: c", "a", "bb", "note: n=3"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

func TestScaleHelpers(t *testing.T) {
	if Fast.Rate() != 100 || Full.Rate() != 200 {
		t.Error("rates")
	}
	if Fast.Pick(1, 2) != 1 || Full.Pick(1, 2) != 2 {
		t.Error("Pick")
	}
	if Fast.PickF(1, 2) != 1 || Full.PickF(1, 2) != 2 {
		t.Error("PickF")
	}
	if Fast.RF().NumSubcarriers >= Full.RF().NumSubcarriers {
		t.Error("fast RF should be smaller")
	}
	d := DistanceErrors{0.01, 0.02}
	cm := d.Centimeters()
	if cm[0] != 1 || cm[1] != 2 {
		t.Error("Centimeters")
	}
}

func TestSetupPanicsOnBadAP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unknown AP id")
		}
	}()
	NewSetup(Fast, 99, 1)
}

func TestFig4Shape(t *testing.T) {
	r := Fig4(Fast)
	if len(r.DistancesMM) < 5 {
		t.Fatal("too few points")
	}
	// Self-TRRS starts at 1 and decays.
	if r.SelfTRRS[0] < 0.95 {
		t.Errorf("self-TRRS at 0 mm = %v", r.SelfTRRS[0])
	}
	// Find values near 5 mm and near 30+ mm.
	at := func(series []float64, mm float64) float64 {
		best, bi := math.Inf(1), 0
		for i, d := range r.DistancesMM {
			if v := math.Abs(d - mm); v < best {
				best, bi = v, i
			}
		}
		return series[bi]
	}
	if at(r.SelfTRRS, 5) <= at(r.SelfTRRS, 35) {
		t.Errorf("self-TRRS not decaying: 5mm=%v 35mm=%v", at(r.SelfTRRS, 5), at(r.SelfTRRS, 35))
	}
	if at(r.SelfTRRS, 35) > 0.85 {
		t.Errorf("self-TRRS at 35 mm = %v, want clear decay", at(r.SelfTRRS, 35))
	}
	// Cross-TRRS peaks where the following antenna reaches the leading
	// antenna's footprint (relative distance 0) and decays away from it.
	atRel := func(rel float64) float64 {
		best, bi := math.Inf(1), 0
		for i, d := range r.CrossRelMM {
			if v := math.Abs(d - rel); v < best {
				best, bi = v, i
			}
		}
		return r.CrossTRRS[bi]
	}
	if atRel(0) <= atRel(-20) || atRel(0) <= atRel(40) {
		t.Errorf("cross-TRRS not peaked at alignment: -20mm=%v 0=%v +40mm=%v",
			atRel(-20), atRel(0), atRel(40))
	}
}

func TestFig5Shape(t *testing.T) {
	r := Fig5(Fast)
	if len(r.LegHeadings) != 4 {
		t.Fatalf("legs resolved = %d, want 4\n%s", len(r.LegHeadings), r.Report)
	}
	for i, want := range r.TrueHeadings {
		diff := math.Abs(r.LegHeadings[i] - want)
		for diff > 180 {
			diff = math.Abs(diff - 360)
		}
		if diff > 15 {
			t.Errorf("leg %d heading %v, want %v", i+1, r.LegHeadings[i], want)
		}
	}
}

func TestFig6Shape(t *testing.T) {
	r := Fig6(Fast)
	p0, p15, p40 := r.PromByDeviation[0], r.PromByDeviation[15], r.PromByDeviation[40]
	// Peak prominence weakens with deviation but survives at 15° (within
	// the arcsin(0.2λ/Δd) ≈ 24° tolerance) and collapses beyond it.
	if !(p0 > p15) {
		t.Errorf("prominence at 0° (%v) not above 15° (%v)", p0, p15)
	}
	if p15 < 0.05 {
		t.Errorf("15° deviation prominence %v too weak — paper says still evident", p15)
	}
	if !(p15 > p40) {
		t.Errorf("prominence at 15° (%v) not above 40° (%v)", p15, p40)
	}
}

func TestFig7Shape(t *testing.T) {
	r := Fig7(Fast)
	if r.StopsDetectedRIM != r.NumStops {
		t.Errorf("RIM detected %d/%d transient stops", r.StopsDetectedRIM, r.NumStops)
	}
	if r.StopsDetectedIMU >= r.NumStops {
		t.Errorf("IMU detector resolved %d/%d stops — expected it to miss them",
			r.StopsDetectedIMU, r.NumStops)
	}
}

func TestFig8Shape(t *testing.T) {
	r := Fig8(Fast)
	if r.HitRate < 0.6 {
		t.Errorf("lag hit rate %v too low", r.HitRate)
	}
	if !r.SignFlip {
		t.Error("lag sign did not flip on back-and-forth")
	}
}

func TestFig11Shape(t *testing.T) {
	r := Fig11(Fast)
	desk := sigproc.Median(r.Desktop.Centimeters())
	los := sigproc.Median(r.CartLOS.Centimeters())
	nlos := sigproc.Median(r.CartNLOS.Centimeters())
	// Desktop (stable, short) beats carts; all stay in the tens of cm at
	// worst; LOS and NLOS comparable (within 3x either way).
	if desk > 15 {
		t.Errorf("desktop median %v cm too large\n%s", desk, r.Report)
	}
	if los > 40 || nlos > 40 {
		t.Errorf("cart medians too large: LOS %v, NLOS %v cm\n%s", los, nlos, r.Report)
	}
	if nlos > 3*los+5 {
		t.Errorf("NLOS (%v cm) collapsed relative to LOS (%v cm)", nlos, los)
	}
}

func TestFig12Shape(t *testing.T) {
	r := Fig12(Fast)
	if r.MeanErrDeg > 12 {
		t.Errorf("mean heading error %v°, paper reports 6.1°\n%s", r.MeanErrDeg, r.Report)
	}
	if r.FracWithin10 < 0.6 {
		t.Errorf("only %.0f%% within 10°\n%s", r.FracWithin10*100, r.Report)
	}
}

func TestFig13Shape(t *testing.T) {
	r := Fig13(Fast)
	rim := sigproc.Median(r.RIMErrDeg)
	gyro := sigproc.Median(r.GyroErrDeg)
	// The paper's crossover: gyroscope clearly beats RIM on rotation.
	if gyro >= rim {
		t.Errorf("gyro median %v° not better than RIM %v°", gyro, rim)
	}
	if rim > 60 {
		t.Errorf("RIM rotation error %v° too large (paper ~30°)", rim)
	}
}

func TestFig14Shape(t *testing.T) {
	r := Fig14(Fast)
	if len(r.MedianCmByAP) != 6 {
		t.Fatalf("AP locations covered = %d", len(r.MedianCmByAP))
	}
	for ap, med := range r.MedianCmByAP {
		if med > 30 {
			t.Errorf("AP #%d median %v cm — location should barely matter\n%s", ap, med, r.Report)
		}
	}
}

func TestFig15Shape(t *testing.T) {
	r := Fig15(Fast)
	if len(r.ErrCmAtMeter) < 3 {
		t.Fatal("too few meter marks")
	}
	last := r.ErrCmAtMeter[len(r.ErrCmAtMeter)-1]
	// No blow-up: error at the end stays bounded (paper: 3–14 cm over
	// 10 m; allow generous slack at fast scale).
	if last > 40 {
		t.Errorf("error accumulated to %v cm\n%s", last, r.Report)
	}
}

func TestFig16Shape(t *testing.T) {
	r := Fig16(Fast)
	e200 := r.MedianCmByRate[200]
	e20 := r.MedianCmByRate[20]
	if e20 < 2*e200 {
		t.Errorf("20 Hz (%v cm) should be much worse than 200 Hz (%v cm)\n%s",
			e20, e200, r.Report)
	}
	if e200 > 25 {
		t.Errorf("200 Hz median %v cm too large", e200)
	}
}

func TestFig17Shape(t *testing.T) {
	r := Fig17(Fast)
	e1 := r.MedianCmByV[1]
	eMax := r.MedianCmByV[r.Vs[len(r.Vs)-1]]
	if e1 < eMax {
		t.Errorf("V=1 (%v cm) should be worse than V=%d (%v cm)\n%s",
			e1, r.Vs[len(r.Vs)-1], eMax, r.Report)
	}
}

func TestDynShape(t *testing.T) {
	r := Dyn(Fast)
	// Dynamics must not collapse accuracy: within 3x of static plus slack.
	if r.DynamicErrCm > 3*r.StaticErrCm+10 {
		t.Errorf("dynamics collapsed accuracy: static %v cm, dynamic %v cm",
			r.StaticErrCm, r.DynamicErrCm)
	}
}

func TestFig18Shape(t *testing.T) {
	r := Fig18(Fast)
	// Paper: 2.4 cm mean on 20 cm letters; we use 40 cm glyphs on the fast
	// channel, accept < 8 cm.
	if r.OverallMeanCm > 8 {
		t.Errorf("handwriting mean error %v cm\n%s", r.OverallMeanCm, r.Report)
	}
}

func TestFig19Shape(t *testing.T) {
	r := Fig19(Fast)
	if r.DetectionRate < 0.7 {
		t.Errorf("detection rate %.0f%%\n%s", r.DetectionRate*100, r.Report)
	}
	if r.Detected > 0 && float64(r.Correct)/float64(r.Detected) < 0.9 {
		t.Errorf("recognition accuracy %d/%d\n%s", r.Correct, r.Detected, r.Report)
	}
	if r.FalseTriggers > r.Total/4 {
		t.Errorf("false triggers %d of %d\n%s", r.FalseTriggers, r.Total, r.Report)
	}
}

func TestFig20Shape(t *testing.T) {
	r := Fig20(Fast)
	if len(r.MedianErrM) != 2 {
		t.Fatal("want 2 traces")
	}
	for i, e := range r.MedianErrM {
		if e > 0.5 {
			t.Errorf("trace %d median error %v m\n%s", i+1, e, r.Report)
		}
	}
	for i, rel := range r.DistRelErr {
		if math.Abs(rel) > 20 {
			t.Errorf("trace %d distance off by %v%%", i+1, rel)
		}
	}
}

func TestFig21Shape(t *testing.T) {
	r := Fig21(Fast)
	// The PF must not be worse than raw dead reckoning (and usually wins
	// when the gyro drifts).
	if r.PFMedianErrM > r.RawMedianErrM+0.1 {
		t.Errorf("PF (%v m) worse than raw (%v m)\n%s",
			r.PFMedianErrM, r.RawMedianErrM, r.Report)
	}
	// Cross-backend golden: the ESKF has no floorplan, but ZUPT + mag
	// pseudo-measurements must keep it within the documented budget of the
	// particle-filter golden (DESIGN.md "Fusion backends & ZUPT": median
	// error within 0.5 m on the Fig. 21 walk) and no worse than raw dead
	// reckoning beyond noise.
	if r.ESKFMedianErrM > r.PFMedianErrM+0.5 {
		t.Errorf("ESKF (%v m) outside the 0.5 m budget of the PF golden (%v m)\n%s",
			r.ESKFMedianErrM, r.PFMedianErrM, r.Report)
	}
	if r.ESKFMedianErrM > r.RawMedianErrM+0.25 {
		t.Errorf("ESKF (%v m) clearly worse than raw dead reckoning (%v m)\n%s",
			r.ESKFMedianErrM, r.RawMedianErrM, r.Report)
	}
}

// TestESKFBeatsRawOnLongDriftWalk pins the point of the ESKF backend: on a
// long walk with an aggressively drifting gyro, the ZUPT pauses let the
// filter learn the gyro bias, so it must end up strictly better than raw
// dead reckoning of the same inputs.
func TestESKFBeatsRawOnLongDriftWalk(t *testing.T) {
	setup := NewSetupAt(Fast, 0, geom.Vec2{X: 9.5, Y: 12}, 7201)
	rate := Fast.Rate()
	arr := array.NewLinear3(Spacing)
	start := geom.Vec2{X: 8.75, Y: 5.5}
	// Four corridor legs separated by standing pauses: the pauses are the
	// ZUPT intervals that expose the biases.
	b := traj.NewBuilder(rate, geom.Pose{Pos: start, Theta: geom.Rad(90)})
	b.Pause(1)
	for i := 0; i < 4; i++ {
		b.MoveBody(0, 3, 0.5)
		b.Pause(1.2)
	}
	tr := b.Build()
	s, err := setup.Acquire(arr, tr, 7210)
	if err != nil {
		t.Fatal(err)
	}
	icfg := imu.DefaultConfig(7211)
	icfg.GyroBiasWalk = 1e-2 // drifts hard over ~30 s
	readings := imu.Simulate(tr, icfg)
	camCfg := camera.DefaultConfig(7212)
	cfg := CoreConfig(Fast, arr)
	initial := geom.Pose{Pos: start, Theta: geom.Rad(90)}

	raw, err := tracking.Fused(s, cfg, readings, tracking.FusedConfig{}, initial, tr, camCfg)
	if err != nil {
		t.Fatal(err)
	}
	eskfCfg := fusion.DefaultConfig(7213)
	eskfCfg.Backend = fusion.BackendESKF
	eskf, err := tracking.Fused(s, cfg, readings, tracking.FusedConfig{
		UsePF: true,
		PF:    eskfCfg,
	}, initial, tr, camCfg)
	if err != nil {
		t.Fatal(err)
	}
	if eskf.MedianError >= raw.MedianError {
		t.Errorf("ESKF median %.3f m not strictly better than raw dead reckoning %.3f m",
			eskf.MedianError, raw.MedianError)
	}
}

func TestAblationShapes(t *testing.T) {
	if r := AblationSanitize(Fast); r.Without < r.With {
		t.Errorf("sanitization off (%v cm) beat on (%v cm)\n%s", r.Without, r.With, r.Report)
	}
	if r := AblationDP(Fast); r.Without <= r.With {
		t.Errorf("argmax outlier rate (%v) not above DP (%v)\n%s", r.Without, r.With, r.Report)
	}
	if r := AblationAmplitude(Fast); r.Without >= r.With {
		t.Errorf("amplitude prominence (%v) not below TRRS (%v)\n%s", r.Without, r.With, r.Report)
	}
	// Pair averaging: must not hurt (often a modest win).
	if r := AblationPairAvg(Fast); r.With > r.Without+5 {
		t.Errorf("pair averaging hurt: with %v cm vs without %v cm\n%s",
			r.With, r.Without, r.Report)
	}
}

func TestExtWiBallShape(t *testing.T) {
	r := ExtWiBall(Fast)
	// The paper's positioning: RIM is roughly an order of magnitude more
	// accurate than ACF-based speed estimation. Demand at least 2x here.
	if r.RIMErrCm*2 > r.WiBallErrCm {
		t.Errorf("RIM (%v cm) not clearly better than WiBall (%v cm)\n%s",
			r.RIMErrCm, r.WiBallErrCm, r.Report)
	}
}

func TestExtHeadingShape(t *testing.T) {
	r := ExtHeading(Fast)
	if r.ContinuousMeanDeg > r.DiscreteMeanDeg+1 {
		t.Errorf("continuous heading (%v°) worse than discrete (%v°)\n%s",
			r.ContinuousMeanDeg, r.DiscreteMeanDeg, r.Report)
	}
}

func TestPerfShape(t *testing.T) {
	r := Perf(Fast)
	// 9 throughput rows (batch serial/parallel, stream recompute/
	// incremental, symmetric dedup, batched bulk build, vector kernel,
	// float32 planes, incremental hop) plus one row per recorded stage
	// histogram.
	if want := 9 + len(r.Stages); len(r.Report.Rows) != want {
		t.Fatalf("want %d rows, got %d\n%s", want, len(r.Report.Rows), r.Report)
	}
	// Timings are machine-dependent; only assert they are measurements.
	if r.SerialNs <= 0 || r.ParallelNs <= 0 || r.HopNs <= 0 ||
		r.RecomputeSlotsPerSec <= 0 || r.IncrementalSlotsPerSec <= 0 {
		t.Fatalf("non-positive measurement: %+v", r)
	}
	if r.BatchSpeedup <= 0 || r.StreamSpeedup <= 0 || r.SymmetricSpeedup <= 0 ||
		r.BatchedSpeedup <= 0 || r.VectorSpeedup <= 0 || r.Float32Speedup <= 0 {
		t.Fatalf("non-positive speedup: %+v", r)
	}
	// The steady-state hop is allocation-free by contract.
	if r.HopAllocsPerOp != 0 {
		t.Errorf("steady-state hop allocates %.1f/op, want 0", r.HopAllocsPerOp)
	}
	// The instrumented replay must record every pipeline stage, with sane
	// (positive, ordered) percentiles.
	if len(r.Stages) != len(stageHistograms) {
		t.Fatalf("stages = %d, want %d: %+v", len(r.Stages), len(stageHistograms), r.Stages)
	}
	for _, sl := range r.Stages {
		if sl.Count == 0 || sl.P50 <= 0 || sl.P50 > sl.P90 || sl.P90 > sl.P99 {
			t.Errorf("degenerate stage latency: %+v", sl)
		}
	}
}
