// Package wiball implements the TRRS-autocorrelation speed estimator of
// WiBall (Zhang et al., "A Time-Reversal Focusing Ball Method for
// Decimeter-Accuracy Indoor Tracking", IEEE IoT Journal 2018) — the
// paper's reference [46] and its closest prior art. In a rich scattering
// field the time-autocorrelation of the CSI at a *single moving antenna*
// follows the Jakes model: ρ(τ) ≈ J0(2πvτ/λ), so the lag of the first
// minimum of the measured TRRS self-similarity reveals the speed v without
// any antenna array or direction knowledge.
//
// RIM's §7 suggests incorporating this estimator for motions outside the
// array plane; the evaluation here uses it as the baseline RIM's
// virtual-antenna alignment is compared against: WiBall reaches decimeter
// accuracy while RIM reaches centimeters (and heading, which WiBall cannot
// observe at all).
package wiball

import (
	"math"

	"rim/internal/csi"
	"rim/internal/sigproc"
	"rim/internal/trrs"
)

// j0FirstZero is the first zero of the Bessel function J0: the measured
// TRRS ρ(τ) = J0(2πvτ/λ)² has its first minimum where 2πvτ/λ equals it.
const j0FirstZero = 2.404826

// Config parameterizes the estimator.
type Config struct {
	// WavelengthM is the carrier wavelength (λ ≈ 5.79 cm at 5.18 GHz).
	WavelengthM float64
	// MaxLagSeconds bounds the autocorrelation lag searched for the first
	// minimum; it caps the slowest measurable speed at
	// 0.383·λ/MaxLagSeconds (default 0.5 s → ≈ 4.4 cm/s).
	MaxLagSeconds float64
	// V is the virtual-massive smoothing window applied to the self-TRRS
	// (default 10).
	V int
	// MinDipDepth is how far below the static level the first minimum
	// must sink to count as a genuine Jakes dip (default 0.25).
	MinDipDepth float64
}

// DefaultConfig returns the estimator settings for the paper's radio.
func DefaultConfig() Config {
	return Config{
		WavelengthM:   0.0579,
		MaxLagSeconds: 0.5,
		V:             10,
		MinDipDepth:   0.25,
	}
}

// Result carries the per-slot speed estimates and their integral.
type Result struct {
	// Speed[t] is the estimated speed at slot t in m/s (0 when no dip is
	// found — static or too slow).
	Speed []float64
	// Distance is the integrated path length in meters.
	Distance float64
	Rate     float64
}

// EstimateSpeed runs the WiBall estimator over a processed CSI series:
// for every slot it measures the self-TRRS of every antenna against lags
// 1..L, locates the first local minimum, converts its lag to speed via the
// Jakes relation, and averages over antennas.
func EstimateSpeed(s *csi.Series, cfg Config) *Result {
	if cfg.WavelengthM <= 0 {
		cfg.WavelengthM = 0.0579
	}
	if cfg.MaxLagSeconds <= 0 {
		cfg.MaxLagSeconds = 0.5
	}
	if cfg.V <= 0 {
		cfg.V = 10
	}
	if cfg.MinDipDepth <= 0 {
		cfg.MinDipDepth = 0.25
	}
	e := trrs.NewEngine(s)
	slots := e.NumSlots()
	maxLag := int(cfg.MaxLagSeconds * s.Rate)
	if maxLag >= slots {
		maxLag = slots - 1
	}
	res := &Result{Speed: make([]float64, slots), Rate: s.Rate}
	if maxLag < 2 {
		return res
	}

	// acf[a][lag] reused per slot.
	acf := make([]float64, maxLag+1)
	half := cfg.V / 2
	for t := 0; t < slots; t++ {
		var vSum float64
		vCnt := 0
		for a := 0; a < e.NumAntennas(); a++ {
			// Virtual-massive-averaged self-TRRS against each lag.
			for lag := 1; lag <= maxLag; lag++ {
				var sum float64
				n := 0
				for k := -half; k <= half; k++ {
					ti := t + k
					tj := t + k - lag
					if ti < 0 || tj < 0 || ti >= slots {
						continue
					}
					sum += e.Base(a, a, ti, tj)
					n++
				}
				if n > 0 {
					acf[lag] = sum / float64(n)
				} else {
					acf[lag] = 1
				}
			}
			lag0 := firstMinimum(acf[1:maxLag+1], cfg.MinDipDepth)
			if lag0 <= 0 {
				continue
			}
			tau := float64(lag0) / s.Rate
			vSum += j0FirstZero * cfg.WavelengthM / (2 * math.Pi * tau)
			vCnt++
		}
		if vCnt > 0 {
			res.Speed[t] = vSum / float64(vCnt)
		}
	}
	// The per-slot estimates are noisy; smooth like the paper's baseline.
	res.Speed = sigproc.MedianFilter(res.Speed, 3)
	res.Speed = sigproc.MovingAverage(res.Speed, int(s.Rate/20))
	dt := 1 / s.Rate
	for _, v := range res.Speed {
		res.Distance += v * dt
	}
	return res
}

// firstMinimum returns the 1-based index of the first local minimum of acf
// that sinks at least depth below 1, with sub-slot parabolic refinement
// folded into the integer index by rounding. Returns -1 when no qualifying
// dip exists (static antenna or dip beyond the window).
func firstMinimum(acf []float64, depth float64) int {
	for i := 1; i < len(acf)-1; i++ {
		if acf[i] <= acf[i-1] && acf[i] < acf[i+1] && acf[i] < 1-depth {
			return i + 1 // 1-based lag
		}
	}
	return -1
}
