package wiball

import (
	"math"
	"testing"

	"rim/internal/array"
	"rim/internal/csi"
	"rim/internal/geom"
	"rim/internal/rf"
	"rim/internal/traj"
)

func collect(t *testing.T, tr *traj.Trajectory, seed int64) *csi.Series {
	t.Helper()
	cfg := rf.FastConfig()
	env := rf.NewEnvironment(cfg, geom.Vec2{}, geom.Vec2{X: 10, Y: 0}, nil)
	arr := array.NewLinear3(0.029)
	s, err := csi.Collect(env, arr, tr, csi.RealisticReceiver(seed)).Process(true)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSpeedOnConstantMove(t *testing.T) {
	// 0.3 m/s: the Jakes dip sits at τ0 = 0.383·λ/v ≈ 74 ms ≈ 7 slots at
	// 100 Hz — well within the window. WiBall's lag quantization limits
	// accuracy to roughly one slot (~15%), which is exactly why the paper
	// calls its accuracy "decimeter-level".
	speed := 0.3
	tr := traj.Line(100, geom.Vec2{X: 10, Y: 0}, 0, 0, 1.2, speed)
	s := collect(t, tr, 1)
	res := EstimateSpeed(s, DefaultConfig())
	if len(res.Speed) != s.NumSlots() {
		t.Fatalf("speed slots = %d", len(res.Speed))
	}
	mid := res.Speed[len(res.Speed)/2]
	if math.Abs(mid-speed) > 0.12 {
		t.Errorf("mid-trace speed = %.3f, want %.3f ± 0.12", mid, speed)
	}
	if math.Abs(res.Distance-1.2) > 0.45 {
		t.Errorf("distance = %.2f, want 1.2 ± 0.45 (decimeter-level)", res.Distance)
	}
}

func TestStaticReportsZero(t *testing.T) {
	b := traj.NewBuilder(100, geom.Pose{Pos: geom.Vec2{X: 10, Y: 0}})
	b.Pause(1.5)
	s := collect(t, b.Build(), 2)
	res := EstimateSpeed(s, DefaultConfig())
	if res.Distance > 0.1 {
		t.Errorf("static distance = %.2f, want ~0", res.Distance)
	}
}

func TestSpeedScalesWithMotion(t *testing.T) {
	// Faster motion must produce a proportionally larger estimate — the
	// dip lag halves when the speed doubles.
	est := func(speed float64) float64 {
		tr := traj.Line(100, geom.Vec2{X: 10, Y: 0}, 0, 0, speed*2.5, speed)
		s := collect(t, tr, 3)
		res := EstimateSpeed(s, DefaultConfig())
		return res.Speed[len(res.Speed)/2]
	}
	v1 := est(0.2)
	v2 := est(0.4)
	if v2 < 1.5*v1 {
		t.Errorf("speed not scaling: est(0.2)=%.3f est(0.4)=%.3f", v1, v2)
	}
}

func TestDegenerateInputs(t *testing.T) {
	b := traj.NewBuilder(100, geom.Pose{Pos: geom.Vec2{X: 10, Y: 0}})
	b.Pause(0.05) // 5 slots: shorter than any usable lag window
	s := collect(t, b.Build(), 4)
	cfg := DefaultConfig()
	cfg.MaxLagSeconds = 0.01
	res := EstimateSpeed(s, cfg)
	if res.Distance != 0 {
		t.Errorf("degenerate window distance = %v", res.Distance)
	}
	// Zero-value config must be filled with defaults, not crash.
	res2 := EstimateSpeed(s, Config{})
	if res2 == nil {
		t.Fatal("nil result")
	}
}

func TestFirstMinimum(t *testing.T) {
	// A clean dip at index 3 (lag 4).
	acf := []float64{0.9, 0.7, 0.5, 0.3, 0.5, 0.7}
	if got := firstMinimum(acf, 0.25); got != 4 {
		t.Errorf("firstMinimum = %d, want 4", got)
	}
	// Monotone decay: no local minimum.
	if got := firstMinimum([]float64{0.9, 0.8, 0.7, 0.6}, 0.25); got != -1 {
		t.Errorf("monotone decay returned %d", got)
	}
	// Dip not deep enough.
	if got := firstMinimum([]float64{0.95, 0.9, 0.85, 0.9, 0.95}, 0.25); got != -1 {
		t.Errorf("shallow dip returned %d", got)
	}
}
