// Package rf simulates indoor WiFi propagation at the fidelity RIM needs:
// for any receive-antenna position it synthesizes the per-subcarrier Channel
// Frequency Response (CFR) of a multipath channel built from a line-of-sight
// ray plus single-bounce rays off a field of scatterers, with per-crossing
// wall attenuation taken from a floorplan.
//
// This package substitutes for the physical radio environment of the paper
// (see DESIGN.md): everything RIM exploits — the time-reversal focusing
// effect, the ~0.2λ spatial decorrelation of TRRS, LOS/NLOS behaviour, and
// environmental dynamics — emerges from this sum-of-paths model rather than
// being hard-coded.
package rf

import "math"

// SpeedOfLight in m/s.
const SpeedOfLight = 299792458.0

// Config describes the radio link.
type Config struct {
	// CarrierHz is the center frequency. The paper uses a 5 GHz channel;
	// default 5.18 GHz (channel 36).
	CarrierHz float64
	// BandwidthHz is the channel bandwidth (default 40 MHz).
	BandwidthHz float64
	// NumSubcarriers is the number of CSI tones reported per (rx, tx) pair.
	// Atheros 9k chips report 114 usable tones on a 40 MHz channel.
	NumSubcarriers int
	// NumTxAntennas on the AP (default 3, as in the paper's setup).
	NumTxAntennas int
	// NumScatterers controls multipath richness (default 40; indoor
	// environments expose tens of significant paths).
	NumScatterers int
	// ScatterRadius is the radius (m) around the area center within which
	// scatterers are placed (default 12 m).
	ScatterRadius float64
	// LOSGain scales the direct path relative to scattered paths.
	LOSGain float64
	// Seed drives scatterer placement and reflectivities.
	Seed int64
}

// DefaultConfig returns the configuration matching the paper's testbed.
func DefaultConfig() Config {
	return Config{
		CarrierHz:      5.18e9,
		BandwidthHz:    40e6,
		NumSubcarriers: 114,
		NumTxAntennas:  3,
		NumScatterers:  60,
		ScatterRadius:  8,
		LOSGain:        1.0,
		Seed:           1,
	}
}

// FastConfig returns a reduced configuration for unit tests: fewer
// subcarriers and scatterers cut CFR synthesis and TRRS cost by ~4x while
// preserving the spatial decorrelation behaviour.
func FastConfig() Config {
	c := DefaultConfig()
	c.NumSubcarriers = 30 // Intel 5300 grouping
	c.NumScatterers = 40
	return c
}

// Wavelength returns the carrier wavelength in meters (≈5.8 cm at 5.18 GHz).
func (c Config) Wavelength() float64 { return SpeedOfLight / c.CarrierHz }

// SubcarrierFreqs returns the absolute frequency of every CSI tone, spread
// uniformly across the bandwidth centered on the carrier.
func (c Config) SubcarrierFreqs() []float64 {
	n := c.NumSubcarriers
	out := make([]float64, n)
	if n == 1 {
		out[0] = c.CarrierHz
		return out
	}
	df := c.BandwidthHz / float64(n-1)
	f0 := c.CarrierHz - c.BandwidthHz/2
	for k := 0; k < n; k++ {
		out[k] = f0 + df*float64(k)
	}
	return out
}

// SubcarrierSpacing returns the tone spacing in Hz.
func (c Config) SubcarrierSpacing() float64 {
	if c.NumSubcarriers <= 1 {
		return 0
	}
	return c.BandwidthHz / float64(c.NumSubcarriers-1)
}

// validate fills zero fields with defaults so a partially specified Config
// is always usable.
func (c Config) validate() Config {
	d := DefaultConfig()
	if c.CarrierHz == 0 {
		c.CarrierHz = d.CarrierHz
	}
	if c.BandwidthHz == 0 {
		c.BandwidthHz = d.BandwidthHz
	}
	if c.NumSubcarriers == 0 {
		c.NumSubcarriers = d.NumSubcarriers
	}
	if c.NumTxAntennas == 0 {
		c.NumTxAntennas = d.NumTxAntennas
	}
	if c.NumScatterers == 0 {
		c.NumScatterers = d.NumScatterers
	}
	if c.ScatterRadius == 0 {
		c.ScatterRadius = d.ScatterRadius
	}
	if c.LOSGain == 0 {
		c.LOSGain = d.LOSGain
	}
	return c
}

// dbToAmplitude converts a power loss in dB to an amplitude factor.
func dbToAmplitude(db float64) float64 {
	return math.Pow(10, -db/20)
}
