package rf

import (
	"math"
	"math/rand"

	"rim/internal/floorplan"
	"rim/internal/geom"
)

// Scatterer is a point reflector: a wall edge, furniture, a metal cabinet, a
// person. Reflectivity is a complex gain (reflection coefficient times an
// arbitrary bounce phase). Velocity is non-zero for dynamic scatterers
// (walking humans, §6.2.8 of the paper).
type Scatterer struct {
	Pos          geom.Vec2
	Reflectivity complex128
	Velocity     geom.Vec2
}

// PosAt returns the scatterer position at time t.
func (s Scatterer) PosAt(t float64) geom.Vec2 {
	if s.Velocity == (geom.Vec2{}) {
		return s.Pos
	}
	return s.Pos.Add(s.Velocity.Scale(t))
}

// Environment is a static-or-slowly-varying propagation scene: one AP (with
// NumTxAntennas transmit antennas spaced λ/2 apart), a field of scatterers
// around an area of interest, and an optional floorplan whose walls
// attenuate crossing paths.
type Environment struct {
	cfg   Config
	freqs []float64
	apPos geom.Vec2
	txPos []geom.Vec2
	scat  []Scatterer
	plan  *floorplan.Plan
	// attCache memoizes wall attenuation between a static endpoint
	// (tx antenna or static scatterer, by id) and a quantized receiver
	// cell. Wall-crossing sets change on a scale of meters while the
	// receiver moves millimeters per packet, so caching at attCell
	// granularity removes the dominant cost of floorplan scenes without
	// observable error. Not safe for concurrent use (matching the rest
	// of Environment).
	attCache map[attKey]float64
}

// attCell is the receiver-position quantization for the attenuation cache.
const attCell = 0.25 // meters

type attKey struct {
	src    int // 0..len(txPos)-1 for tx antennas, len(txPos)+i for scatterer i
	cx, cy int32
}

// NewEnvironment builds an environment with scatterers distributed uniformly
// in a disc of cfg.ScatterRadius around areaCenter. plan may be nil for a
// free-space scene.
func NewEnvironment(cfg Config, apPos, areaCenter geom.Vec2, plan *floorplan.Plan) *Environment {
	cfg = cfg.validate()
	rng := rand.New(rand.NewSource(cfg.Seed))
	e := &Environment{
		cfg:      cfg,
		freqs:    cfg.SubcarrierFreqs(),
		apPos:    apPos,
		plan:     plan,
		attCache: make(map[attKey]float64),
	}
	// Tx antennas: a small linear array at the AP, λ/2 spacing.
	lam := cfg.Wavelength()
	for i := 0; i < cfg.NumTxAntennas; i++ {
		off := geom.Vec2{X: lam / 2 * float64(i), Y: 0}
		e.txPos = append(e.txPos, apPos.Add(off))
	}
	// Scatterers around the area of interest. Rayleigh-distributed
	// reflectivity magnitude with uniform bounce phase.
	for i := 0; i < cfg.NumScatterers; i++ {
		r := cfg.ScatterRadius * math.Sqrt(rng.Float64())
		th := rng.Float64() * 2 * math.Pi
		mag := math.Hypot(rng.NormFloat64(), rng.NormFloat64()) / math.Sqrt2
		ph := rng.Float64() * 2 * math.Pi
		s, c := math.Sincos(ph)
		e.scat = append(e.scat, Scatterer{
			Pos:          areaCenter.Add(geom.FromPolar(r, th)),
			Reflectivity: complex(mag*c, mag*s),
		})
	}
	return e
}

// illumSrc is the attCache source id of the diffuse-illumination endpoint.
const illumSrc = -1

// illumAt returns the diffuse illumination amplitude of the scatterer field
// around receiver position rx: the energy the AP delivers into that
// neighbourhood (direct-path spreading plus wall attenuation, cached per
// cell). Indoor NLOS-rich spaces behave like reverberant rooms whose
// diffuse field is quasi-isotropic — individual scatterers re-radiate
// energy that has bounced many times, so their excitation barely depends on
// their own bearing to the AP. Driving every scatterer with the local
// illumination level reproduces that isotropy (and with it the sharp,
// J0-like TRRS spatial decay the paper relies on) and keeps the
// diffuse-to-LOS ratio consistent as the receiver moves through wall
// shadows; the per-path delays keep the true AP→scatterer→receiver
// geometry.
func (e *Environment) illumAt(rx geom.Vec2) float64 {
	d := e.apPos.Dist(rx)
	if d < 1 {
		d = 1
	}
	return e.cachedWallAmplitude(illumSrc, e.apPos, rx) / d
}

// Config returns the environment configuration (with defaults filled in).
func (e *Environment) Config() Config { return e.cfg }

// APPos returns the AP position.
func (e *Environment) APPos() geom.Vec2 { return e.apPos }

// TxPositions returns the transmit antenna positions.
func (e *Environment) TxPositions() []geom.Vec2 { return e.txPos }

// Scatterers exposes the scatterer field (read-only by convention).
func (e *Environment) Scatterers() []Scatterer { return e.scat }

// SetDynamicScatterers gives the n scatterers closest to center a random
// walking velocity of the given speed, emulating people moving around the
// experiment (§6.2.8). Pass n=0 to freeze the scene again.
func (e *Environment) SetDynamicScatterers(n int, speed float64, center geom.Vec2, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	// Order scatterer indices by distance to center (selection by partial
	// sort is overkill for tens of scatterers).
	idx := make([]int, len(e.scat))
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < len(idx); i++ {
		for j := i + 1; j < len(idx); j++ {
			if e.scat[idx[j]].Pos.Dist(center) < e.scat[idx[i]].Pos.Dist(center) {
				idx[i], idx[j] = idx[j], idx[i]
			}
		}
	}
	for i := range e.scat {
		e.scat[i].Velocity = geom.Vec2{}
	}
	if n > len(idx) {
		n = len(idx)
	}
	for _, i := range idx[:n] {
		th := rng.Float64() * 2 * math.Pi
		e.scat[i].Velocity = geom.FromPolar(speed, th)
	}
}

// wallAmplitude returns the amplitude factor for wall crossings between a
// and b (1.0 when no floorplan is attached).
func (e *Environment) wallAmplitude(a, b geom.Vec2) float64 {
	if e.plan == nil {
		return 1
	}
	lossDB, _ := e.plan.PathLossDB(a, b)
	return dbToAmplitude(lossDB)
}

// cachedWallAmplitude memoizes wallAmplitude for a static source endpoint
// (identified by src) against the quantized cell containing rx.
func (e *Environment) cachedWallAmplitude(src int, srcPos, rx geom.Vec2) float64 {
	if e.plan == nil {
		return 1
	}
	k := attKey{
		src: src,
		cx:  int32(math.Floor(rx.X / attCell)),
		cy:  int32(math.Floor(rx.Y / attCell)),
	}
	if v, ok := e.attCache[k]; ok {
		return v
	}
	center := geom.Vec2{
		X: (float64(k.cx) + 0.5) * attCell,
		Y: (float64(k.cy) + 0.5) * attCell,
	}
	v := e.wallAmplitude(srcPos, center)
	e.attCache[k] = v
	return v
}

// IsLOS reports whether the direct path from the AP to p is unobstructed.
func (e *Environment) IsLOS(p geom.Vec2) bool {
	if e.plan == nil {
		return true
	}
	return e.plan.IsLOS(e.apPos, p)
}

// CFR synthesizes the channel frequency response between transmit antenna tx
// and a receive antenna at world position rx, at simulation time t, writing
// one complex value per subcarrier into out (len(out) must equal
// NumSubcarriers). The channel is
//
//	H_k = Σ_paths a_l · exp(-j 2π f_k τ_l)
//
// over the LOS path and one single-bounce path per scatterer, where a_l
// combines free-space spreading (1/d per segment), reflectivity, and wall
// attenuation, and τ_l is the path propagation delay.
//
// Implementation note: for each path the per-subcarrier phase advances by a
// constant step (uniform tone spacing), so the loop uses one complex
// multiply per tone instead of a trig call.
func (e *Environment) CFR(rx geom.Vec2, tx int, t float64, out []complex128) {
	if len(out) != e.cfg.NumSubcarriers {
		panic("rf: CFR output length mismatch")
	}
	for k := range out {
		out[k] = 0
	}
	txp := e.txPos[tx]
	f0 := e.freqs[0]
	df := e.cfg.SubcarrierSpacing()

	addPath := func(amp complex128, dist float64) {
		tau := dist / SpeedOfLight
		ph0 := -2 * math.Pi * f0 * tau
		s0, c0 := math.Sincos(ph0)
		rot := complex(c0, s0) * amp
		sd, cd := math.Sincos(-2 * math.Pi * df * tau)
		step := complex(cd, sd)
		for k := range out {
			out[k] += rot
			rot *= step
		}
	}

	// LOS path.
	dLOS := txp.Dist(rx)
	if dLOS < 0.1 {
		dLOS = 0.1
	}
	ampLOS := e.cfg.LOSGain / dLOS * e.cachedWallAmplitude(tx, txp, rx)
	addPath(complex(ampLOS, 0), dLOS)

	// Single-bounce scatterer paths.
	nTx := len(e.txPos)
	illum := e.illumAt(rx)
	for si, s := range e.scat {
		sp := s.PosAt(t)
		d1 := txp.Dist(sp)
		d2 := sp.Dist(rx)
		if d1 < 0.1 {
			d1 = 0.1
		}
		if d2 < 0.1 {
			d2 = 0.1
		}
		var att float64
		if s.Velocity == (geom.Vec2{}) {
			att = e.cachedWallAmplitude(nTx+si, sp, rx)
		} else {
			att = e.wallAmplitude(sp, rx)
		}
		// Diffuse illumination (see illumAt) times local walls between
		// scatterer and receiver, with a softened 1/sqrt(d2+2)
		// re-radiation term: the +2 m knee keeps a scatterer that happens
		// to sit right next to the receiver from dominating the profile.
		// The path *delay* still uses the full AP→scatterer→receiver
		// geometry, so the frequency-selective structure stays faithful.
		amp := s.Reflectivity * complex(illum*att/math.Sqrt(d2+2), 0)
		addPath(amp, d1+d2)
	}
}

// SnapshotAll synthesizes CFRs for every tx antenna at once, returning
// H[tx][k]. A convenience for tests and the CSI layer.
func (e *Environment) SnapshotAll(rx geom.Vec2, t float64) [][]complex128 {
	out := make([][]complex128, e.cfg.NumTxAntennas)
	for tx := range out {
		out[tx] = make([]complex128, e.cfg.NumSubcarriers)
		e.CFR(rx, tx, t, out[tx])
	}
	return out
}
