package rf

import (
	"math"
	"math/cmplx"
	"testing"

	"rim/internal/floorplan"
	"rim/internal/geom"
	"rim/internal/sigproc"
)

// trrs computes the normalized squared inner product between two CFRs —
// Eq. 2 of the paper — used here to probe the channel's spatial behaviour.
func trrs(a, b []complex128) float64 {
	ip := cmplx.Abs(sigproc.InnerProduct(a, b))
	return ip * ip / (sigproc.Energy(a) * sigproc.Energy(b))
}

func testEnv(t *testing.T, plan *floorplan.Plan, ap geom.Vec2) *Environment {
	t.Helper()
	cfg := FastConfig()
	return NewEnvironment(cfg, ap, geom.Vec2{X: 10, Y: 0}, plan)
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.validate()
	d := DefaultConfig()
	if c.CarrierHz != d.CarrierHz || c.NumSubcarriers != d.NumSubcarriers {
		t.Errorf("validate did not fill defaults: %+v", c)
	}
	if w := d.Wavelength(); math.Abs(w-0.0579) > 0.001 {
		t.Errorf("wavelength = %v, want ~5.79 cm", w)
	}
	fs := d.SubcarrierFreqs()
	if len(fs) != d.NumSubcarriers {
		t.Fatalf("freqs len = %d", len(fs))
	}
	if math.Abs(fs[0]-(d.CarrierHz-d.BandwidthHz/2)) > 1 {
		t.Errorf("first tone = %v", fs[0])
	}
	if math.Abs(fs[len(fs)-1]-(d.CarrierHz+d.BandwidthHz/2)) > 1 {
		t.Errorf("last tone = %v", fs[len(fs)-1])
	}
	one := Config{NumSubcarriers: 1}.validate()
	one.NumSubcarriers = 1
	if got := one.SubcarrierFreqs(); len(got) != 1 || got[0] != one.CarrierHz {
		t.Errorf("single-tone freqs = %v", got)
	}
	if one.SubcarrierSpacing() != 0 {
		t.Error("single-tone spacing != 0")
	}
}

func TestCFRDeterministic(t *testing.T) {
	e1 := testEnv(t, nil, geom.Vec2{X: 0, Y: 0})
	e2 := testEnv(t, nil, geom.Vec2{X: 0, Y: 0})
	p := geom.Vec2{X: 10, Y: 0.3}
	h1 := make([]complex128, e1.cfg.NumSubcarriers)
	h2 := make([]complex128, e2.cfg.NumSubcarriers)
	e1.CFR(p, 0, 0, h1)
	e2.CFR(p, 0, 0, h2)
	for k := range h1 {
		if h1[k] != h2[k] {
			t.Fatal("same seed must give identical channels")
		}
	}
}

func TestCFRPanicsOnBadOutput(t *testing.T) {
	e := testEnv(t, nil, geom.Vec2{})
	defer func() {
		if recover() == nil {
			t.Error("expected panic for wrong output length")
		}
	}()
	e.CFR(geom.Vec2{X: 10, Y: 0}, 0, 0, make([]complex128, 3))
}

func TestTRRSSelfIsOne(t *testing.T) {
	e := testEnv(t, nil, geom.Vec2{})
	h := make([]complex128, e.cfg.NumSubcarriers)
	e.CFR(geom.Vec2{X: 10, Y: 1}, 0, 0, h)
	if k := trrs(h, h); math.Abs(k-1) > 1e-9 {
		t.Errorf("self TRRS = %v", k)
	}
}

// TestSpatialDecorrelation is the load-bearing physics check: the TRRS
// between CFRs at two positions must decay as their separation grows from
// millimeters to centimeters (Fig. 4 of the paper), averaged over tx
// antennas and probe directions.
func TestSpatialDecorrelation(t *testing.T) {
	e := testEnv(t, nil, geom.Vec2{})
	base := geom.Vec2{X: 10, Y: 0.5}
	seps := []float64{0.001, 0.005, 0.02, 0.05}
	avg := make([]float64, len(seps))
	dirs := []float64{0, 1, 2, 3, 4, 5}
	h0 := make([]complex128, e.cfg.NumSubcarriers)
	h1 := make([]complex128, e.cfg.NumSubcarriers)
	for si, sep := range seps {
		var sum float64
		var n int
		for _, d := range dirs {
			off := geom.FromPolar(sep, d)
			for tx := 0; tx < e.cfg.NumTxAntennas; tx++ {
				e.CFR(base, tx, 0, h0)
				e.CFR(base.Add(off), tx, 0, h1)
				sum += trrs(h0, h1)
				n++
			}
		}
		avg[si] = sum / float64(n)
	}
	if avg[0] < 0.95 {
		t.Errorf("TRRS at 1 mm = %v, want near 1", avg[0])
	}
	if avg[1] < avg[3] {
		t.Errorf("TRRS should decay: 5mm=%v 50mm=%v", avg[1], avg[3])
	}
	if avg[3] > 0.75 {
		t.Errorf("TRRS at 5 cm = %v, want substantially below 1", avg[3])
	}
}

func TestNLOSStillDecorrelates(t *testing.T) {
	// Put a wall between the AP and the probe area: the LOS ray is
	// attenuated, the channel becomes Rayleigh-like, and TRRS still (in
	// fact more sharply) decorrelates — the paper's core NLOS claim.
	var plan floorplan.Plan
	plan.Bounds = geom.Rect{Min: geom.Vec2{X: -50, Y: -50}, Max: geom.Vec2{X: 50, Y: 50}}
	plan.AddWall(geom.Vec2{X: 5, Y: -50}, geom.Vec2{X: 5, Y: 50}, 12)
	e := testEnv(t, &plan, geom.Vec2{})
	if e.IsLOS(geom.Vec2{X: 10, Y: 0.5}) {
		t.Fatal("probe point should be NLOS")
	}
	base := geom.Vec2{X: 10, Y: 0.5}
	h0 := make([]complex128, e.cfg.NumSubcarriers)
	h1 := make([]complex128, e.cfg.NumSubcarriers)
	e.CFR(base, 0, 0, h0)
	e.CFR(base.Add(geom.Vec2{X: 0.05, Y: 0}), 0, 0, h1)
	if k := trrs(h0, h1); k > 0.7 {
		t.Errorf("NLOS TRRS at 5 cm = %v, want < 0.7", k)
	}
}

func TestWallAttenuationReducesEnergy(t *testing.T) {
	var plan floorplan.Plan
	plan.Bounds = geom.Rect{Min: geom.Vec2{X: -50, Y: -50}, Max: geom.Vec2{X: 50, Y: 50}}
	free := testEnv(t, nil, geom.Vec2{})
	plan.AddWall(geom.Vec2{X: 5, Y: -50}, geom.Vec2{X: 5, Y: 50}, 10)
	walled := testEnv(t, &plan, geom.Vec2{})
	p := geom.Vec2{X: 10, Y: 0.5}
	hf := make([]complex128, free.cfg.NumSubcarriers)
	hw := make([]complex128, walled.cfg.NumSubcarriers)
	free.CFR(p, 0, 0, hf)
	walled.CFR(p, 0, 0, hw)
	if sigproc.Energy(hw) >= sigproc.Energy(hf) {
		t.Errorf("wall did not reduce energy: %v >= %v",
			sigproc.Energy(hw), sigproc.Energy(hf))
	}
}

func TestDynamicScatterersChangeChannelOverTime(t *testing.T) {
	e := testEnv(t, nil, geom.Vec2{})
	p := geom.Vec2{X: 10, Y: 0.5}
	h0 := make([]complex128, e.cfg.NumSubcarriers)
	h1 := make([]complex128, e.cfg.NumSubcarriers)

	// Static scene: identical at different times.
	e.CFR(p, 0, 0, h0)
	e.CFR(p, 0, 1.0, h1)
	for k := range h0 {
		if h0[k] != h1[k] {
			t.Fatal("static scene must be time-invariant")
		}
	}

	e.SetDynamicScatterers(5, 1.2, p, 7)
	moving := 0
	for _, s := range e.Scatterers() {
		if s.Velocity != (geom.Vec2{}) {
			moving++
		}
	}
	if moving != 5 {
		t.Fatalf("moving scatterers = %d, want 5", moving)
	}
	e.CFR(p, 0, 0, h0)
	e.CFR(p, 0, 1.0, h1)
	if k := trrs(h0, h1); k > 0.999 {
		t.Errorf("dynamic scene TRRS over 1 s = %v, want < 1", k)
	}
	// But most multipath survives: TRRS should stay well above the fully
	// decorrelated floor — this is why RIM tolerates walking humans.
	if k := trrs(h0, h1); k < 0.3 {
		t.Errorf("dynamic scene TRRS = %v, want moderate (> 0.3)", k)
	}

	// Freeze again.
	e.SetDynamicScatterers(0, 0, p, 7)
	for _, s := range e.Scatterers() {
		if s.Velocity != (geom.Vec2{}) {
			t.Fatal("freeze failed")
		}
	}
}

func TestSnapshotAllShape(t *testing.T) {
	e := testEnv(t, nil, geom.Vec2{})
	h := e.SnapshotAll(geom.Vec2{X: 10, Y: 0}, 0)
	if len(h) != e.cfg.NumTxAntennas {
		t.Fatalf("tx dim = %d", len(h))
	}
	for _, row := range h {
		if len(row) != e.cfg.NumSubcarriers {
			t.Fatalf("subcarrier dim = %d", len(row))
		}
	}
}

func TestTxAntennaDiversity(t *testing.T) {
	// Different tx antennas see different channels (the spatial diversity
	// Eq. 3 averages over).
	e := testEnv(t, nil, geom.Vec2{})
	p := geom.Vec2{X: 10, Y: 0.5}
	h0 := make([]complex128, e.cfg.NumSubcarriers)
	h1 := make([]complex128, e.cfg.NumSubcarriers)
	e.CFR(p, 0, 0, h0)
	e.CFR(p, 1, 0, h1)
	if k := trrs(h0, h1); k > 0.999 {
		t.Errorf("tx antennas 0 and 1 identical (TRRS %v)", k)
	}
}

func TestScattererPosAt(t *testing.T) {
	s := Scatterer{Pos: geom.Vec2{X: 1, Y: 2}, Velocity: geom.Vec2{X: 0.5, Y: 0}}
	p := s.PosAt(2)
	if p.X != 2 || p.Y != 2 {
		t.Errorf("PosAt = %v", p)
	}
	static := Scatterer{Pos: geom.Vec2{X: 1, Y: 2}}
	if static.PosAt(5) != static.Pos {
		t.Error("static scatterer moved")
	}
}
