// Package core assembles RIM's motion reckoning (§4.4): it consumes a
// processed CSI series, detects movement, builds the per-pair-group TRRS
// alignment matrices, tracks alignment delays with the dynamic program,
// decides which antenna pairs are aligned (translation) or whether every
// adjacent pair is aligned (in-place rotation), and integrates speed,
// heading and rotation angle into motion estimates.
package core

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"time"

	"rim/internal/align"
	"rim/internal/array"
	"rim/internal/csi"
	"rim/internal/geom"
	"rim/internal/obs"
	"rim/internal/obs/quality"
	"rim/internal/obs/trace"
	"rim/internal/sigproc"
	"rim/internal/trrs"
)

// Config parameterizes the full RIM pipeline.
type Config struct {
	// Array describes the receive antenna geometry. Required.
	Array *array.Array
	// WindowSeconds is the one-sided lag window W of the alignment
	// matrices; it must exceed separation/speed for the slowest expected
	// motion (default 0.5 s, as in the paper).
	WindowSeconds float64
	// V is the number of virtual massive antennas (default 30; the paper
	// recommends ≥30 at 200 Hz).
	V int
	// Movement, Track, PreDetect and PostCheck tune the §4.1–4.3 stages.
	Movement  align.MovementConfig
	Track     align.TrackConfig
	PreDetect align.PreDetectConfig
	PostCheck align.PostCheckConfig
	// MinSegmentSeconds discards movement segments shorter than this.
	MinSegmentSeconds float64
	// ZUPTMinSeconds discards zero-velocity intervals shorter than this
	// (default 0.2 s): a static run must persist before it is trusted as a
	// zero-velocity pseudo-measurement (see zupt.go).
	ZUPTMinSeconds float64
	// HeadingWindowSeconds is the duration of the sub-windows within a
	// movement segment over which the winning pair group (and hence the
	// heading) is re-selected. Curved strokes and sideway course changes
	// switch aligned pairs mid-segment; shorter windows track them at the
	// cost of less DP context (default 0.8 s).
	HeadingWindowSeconds float64
	// SpeedSmoothHalf is the half-width (slots) of the speed moving
	// average (default rate/20).
	SpeedSmoothHalf int
	// RotationMinRingFrac is the fraction of adjacent-ring pairs that must
	// pass pre-detection simultaneously to declare an in-place rotation.
	RotationMinRingFrac float64
	// ContinuousHeading enables the §7 "angle resolution" extension: the
	// winning direction is refined between the array's discrete direction
	// set by comparing the alignment quality of the angularly adjacent
	// pair groups (TRRS decays with deviation angle, so the neighbours'
	// relative peak strengths locate the true heading inside the 30° bin).
	ContinuousHeading bool
	// DisablePairAveraging turns off the §4.2 parallel-pair matrix
	// averaging (ablation).
	DisablePairAveraging bool
	// NaivePeakPicking replaces the dynamic-programming tracker with the
	// per-column argmax (ablation).
	NaivePeakPicking bool
	// Parallelism is the worker count for TRRS base-matrix computation:
	// 0 (default) uses GOMAXPROCS, 1 forces the serial reference path —
	// the oracle the parallel and incremental engines are tested against —
	// and n > 1 uses exactly n workers. All settings produce bit-for-bit
	// identical matrices.
	Parallelism int
	// Kernel selects the TRRS inner-product kernel (see trrs.Kernel). The
	// zero value, trrs.KernelSequential, is bit-for-bit identical to the
	// reference arithmetic; trrs.KernelUnrolled4 opts into the pipelined
	// 4-accumulator kernel (1e-12-relative agreement); trrs.KernelVector
	// opts into the lag-sweep kernel (AVX2+FMA where supported).
	Kernel trrs.Kernel
	// Precision selects the TRRS plane storage precision (see
	// trrs.Precision). The zero value, trrs.PrecisionFloat64, is the
	// bit-exact reference; trrs.PrecisionFloat32 halves plane memory
	// traffic and doubles vector lanes at a ~1e-5 relative matrix error
	// (end-to-end error budget guarded by TestFloat32ErrorBudget).
	Precision trrs.Precision
	// Obs is the observability registry stage timers and counters report
	// into (see internal/obs and DESIGN.md "Observability"). nil — the
	// default — disables metrics; disabled instrumentation costs one nil
	// check per operation, guarded below 2% of a streaming hop by
	// TestObsOverheadGuard.
	Obs *obs.Registry
	// Logger receives structured pipeline events (log/slog): analysis
	// failures, dead-antenna transitions, sub-array fallbacks. nil uses
	// the package-level obs.Logger(), which discards records until the
	// embedding binary opts in via obs.SetLogger.
	Logger *slog.Logger
	// Trace is the causal event recorder the pipeline's stage spans,
	// segment decisions and estimate emissions report into (see
	// internal/obs/trace and DESIGN.md "Causal tracing"). nil — the
	// default — disables tracing at one nil check per event site.
	Trace *trace.Recorder
	// Flight is the flight recorder offered degradation triggers (degraded
	// estimates, analysis failures, dead antennas); it snapshots Trace's
	// recent past into a postmortem bundle. nil disables the offers.
	Flight *trace.Flight
	// Quality is the estimator-consistency engine (internal/obs/quality)
	// the pipeline's signal-quality telemetry reports into: per-slot
	// movement-indicator (κ) samples, segment peak-sharpness and
	// alignment residuals, and the confidence-calibration outcomes of
	// finalized moving estimates. nil — the default — disables the
	// telemetry at one nil check per hop.
	Quality *quality.Engine
	// arena, when non-nil, supplies recycled backings for the derived
	// (averaged, virtual-massive) matrices of one analysis pass. The
	// streaming front end threads a pooled arena through here so the
	// steady-state hop reuses hop-lifetime scratch instead of allocating
	// it; nil (batch runs) falls back to plain allocation. The matrices
	// of a pass become invalid at the arena's next Reset, which is fine:
	// Result retains no matrices.
	arena *trrs.MatrixArena
	// traceHop is the causal hop ID stamped on this pipeline's trace
	// events: 0 for batch runs, ≥ 1 for the streaming front end's hops
	// (core.Streamer threads it through before each re-analysis).
	traceHop int64
	// hopDeadline / hopCtx bound this analysis pass: Process checks them at
	// stage boundaries (before movement detection and before each segment)
	// and, once exceeded, stops analyzing and leaves the remaining slots as
	// degraded placeholders instead of stalling the caller. The zero values
	// (batch runs, streams without StreamConfig.HopDeadline) disable the
	// checks. Threaded by core.Streamer per hop.
	hopDeadline time.Time
	hopCtx      context.Context
}

// hopExpired reports whether the analysis deadline for this pass is gone:
// the hop context is done or the hop deadline has passed. Free when neither
// is set.
func (cfg *Config) hopExpired() bool {
	if cfg.hopCtx != nil {
		select {
		case <-cfg.hopCtx.Done():
			return true
		default:
		}
	}
	return !cfg.hopDeadline.IsZero() && time.Now().After(cfg.hopDeadline)
}

// logger resolves the configured logger (never nil).
func (cfg *Config) logger() *slog.Logger {
	if cfg.Logger != nil {
		return cfg.Logger
	}
	return obs.Logger()
}

// applyDefaults fills unset tuning fields with the paper's operating
// point. Both the batch and the streaming constructors run it, so the two
// paths analyze with identical parameters.
func (cfg *Config) applyDefaults(rate float64) {
	if cfg.WindowSeconds <= 0 {
		cfg.WindowSeconds = 0.5
	}
	if cfg.V <= 0 {
		cfg.V = 30
	}
	if cfg.MinSegmentSeconds <= 0 {
		cfg.MinSegmentSeconds = 0.25
	}
	if cfg.ZUPTMinSeconds <= 0 {
		cfg.ZUPTMinSeconds = 0.2
	}
	if cfg.HeadingWindowSeconds <= 0 {
		cfg.HeadingWindowSeconds = 0.8
	}
	if cfg.RotationMinRingFrac <= 0 {
		cfg.RotationMinRingFrac = 0.8
	}
	if cfg.SpeedSmoothHalf <= 0 {
		cfg.SpeedSmoothHalf = int(rate / 20)
	}
	// The align-layer sub-configs must not stay zero: a zero
	// MovementConfig.Threshold makes the movement trigger unreachable, so
	// every slot reads static and downstream consumers (ZUPT extraction,
	// fusion backends) see a device that never moves.
	if cfg.Movement == (align.MovementConfig{}) {
		cfg.Movement = align.DefaultMovementConfig()
	}
	if cfg.Track == (align.TrackConfig{}) {
		cfg.Track = align.DefaultTrackConfig()
	}
	if cfg.PreDetect == (align.PreDetectConfig{}) {
		cfg.PreDetect = align.DefaultPreDetectConfig()
	}
	if cfg.PostCheck == (align.PostCheckConfig{}) {
		cfg.PostCheck = align.DefaultPostCheckConfig()
	}
}

// windowSlots converts the one-sided lag window to slots (min 3).
func windowSlots(windowSeconds, rate float64) int {
	w := int(math.Round(windowSeconds * rate))
	if w < 3 {
		w = 3
	}
	return w
}

// DefaultConfig returns the paper's operating point for the given array.
func DefaultConfig(arr *array.Array) Config {
	return Config{
		Array:                arr,
		WindowSeconds:        0.5,
		V:                    30,
		Movement:             align.DefaultMovementConfig(),
		Track:                align.DefaultTrackConfig(),
		PreDetect:            align.DefaultPreDetectConfig(),
		PostCheck:            align.DefaultPostCheckConfig(),
		MinSegmentSeconds:    0.25,
		HeadingWindowSeconds: 0.8,
		RotationMinRingFrac:  0.8,
	}
}

// MotionKind classifies a movement segment.
type MotionKind int

const (
	// MotionNone means the device is static.
	MotionNone MotionKind = iota
	// MotionTranslate is a linear move along an identified direction.
	MotionTranslate
	// MotionRotate is an in-place rotation.
	MotionRotate
)

// String implements fmt.Stringer.
func (k MotionKind) String() string {
	switch k {
	case MotionNone:
		return "none"
	case MotionTranslate:
		return "translate"
	case MotionRotate:
		return "rotate"
	default:
		return "unknown"
	}
}

// SegmentResult summarizes one movement segment.
type SegmentResult struct {
	Start, End int // slot range [Start, End)
	Kind       MotionKind
	// Distance is the translation distance in meters (MotionTranslate).
	Distance float64
	// HeadingBody is the body-frame motion direction in radians
	// (MotionTranslate); the array resolves it to its discrete direction
	// set.
	HeadingBody float64
	// Angle is the signed in-place rotation in radians (MotionRotate,
	// CCW positive).
	Angle float64
	// Confidence is the post-check confidence of the chosen alignment.
	Confidence float64
	// GroupDir and GroupSep identify the winning pair group.
	GroupDir, GroupSep float64
}

// Estimate is the per-slot motion output.
type Estimate struct {
	T           float64
	Moving      bool
	Kind        MotionKind
	Speed       float64 // m/s (translation) or arc speed (rotation)
	HeadingBody float64 // body-frame heading, NaN when not translating
	AngVel      float64 // rad/s, CCW positive, non-zero when rotating
	// Confidence is the §4.3 post-check confidence of the alignment that
	// produced this slot's motion ([0,1]; 0 for static or unresolved
	// slots). Downstream consumers weight or skip low-confidence slots.
	Confidence float64
	// Degraded marks slots produced under data-quality trouble: a large
	// fraction of antennas missing, a dead-antenna sub-array fallback, or
	// an analysis failure placeholder. Degraded estimates are safe (never
	// NaN speeds) but should be weighted down by consumers.
	Degraded bool
}

// Result is the full pipeline output.
type Result struct {
	Rate      float64
	Estimates []Estimate
	Segments  []SegmentResult
	// Distance is the total translation distance.
	Distance float64
	// RotationAngle is the total absolute in-place rotation.
	RotationAngle float64
	// MovementIndicator is the §4.1 self-TRRS statistic (exposed for the
	// Fig. 7 experiment).
	MovementIndicator []float64
	// ZUPTs are the confirmed zero-velocity intervals of the pass, ordered
	// and non-overlapping (see zupt.go). Fusion backends consume them as
	// pseudo-measurements.
	ZUPTs []ZUPTInterval
	// DeadlineExceeded reports that the analysis deadline expired before
	// the pass completed: the slots of every unprocessed stage were emitted
	// as degraded placeholders (never stale or fabricated motion).
	DeadlineExceeded bool
}

// groupMatrices holds one alignment matrix per parallel-isometric group.
type groupMatrix struct {
	group array.ParallelGroup
	m     *trrs.Matrix
}

// Pipeline precomputes the expensive pieces (TRRS engine, group matrices)
// once per CSI series so that segment-level queries stay cheap.
type Pipeline struct {
	cfg    Config
	eng    *trrs.Engine
	w      int
	groups []groupMatrix
	// ring holds per-adjacent-pair matrices for rotation detection
	// (only for arrays with ≥ 4 antennas arranged in a ring).
	ring []groupMatrix
	// moving is the per-slot movement flag of the last Process call;
	// movingSoft is the permissive variant (indicator below the release
	// level) used to gate per-slot speed: a slot must look genuinely
	// static — not merely a hysteresis release flicker — before its
	// speed contribution is dropped.
	moving     []bool
	movingSoft []bool
	// fastInd is the fast-lag-only movement indicator: device motion
	// above ~0.2 m/s must decorrelate it, while environmental churn
	// (walking humans) barely touches it. Used to veto implausible
	// speed claims in churn-inflated segments.
	fastInd []float64
	// missFrac[t] is the fraction of antennas whose slot t sample was
	// interpolated (from the series' Missing mask); slots above
	// degradedMissFrac are marked Estimate.Degraded.
	missFrac []float64
	// po holds the resolved observability handles (all nil when
	// cfg.Obs is nil, making every use a no-op).
	po pipelineObs
}

// pipelineObs bundles the batch pipeline's metric handles, resolved once
// at construction so the processing path never touches the registry map.
type pipelineObs struct {
	// buildH times the TRRS base-matrix build/extend during pipeline
	// construction; movementH the §4.1 movement-detection stage; alignH
	// the per-segment alignment tracking + reckoning.
	buildH, movementH, alignH *obs.Histogram
	// estimates/degraded count window slots analyzed by Process (the
	// streamer re-analyzes overlapping windows, so for streams this is a
	// work measure; finalized emissions are counted by rim_stream_*).
	estimates, degraded *obs.Counter
	segments            *obs.Counter
	// zuptIntervals/zuptSlots count zero-velocity intervals resolved by
	// Process and the static slots they cover (work measure for streams,
	// like rim_estimates_total).
	zuptIntervals, zuptSlots *obs.Counter
}

func newPipelineObs(reg *obs.Registry) pipelineObs {
	if reg == nil {
		return pipelineObs{}
	}
	return pipelineObs{
		buildH:    reg.Timer("rim_trrs_build_seconds", "TRRS base-matrix build/extend latency per pipeline construction"),
		movementH: reg.Timer("rim_movement_seconds", "movement-detection stage latency per Process"),
		alignH:    reg.Timer("rim_align_seconds", "alignment tracking + reckoning latency per movement segment"),
		estimates: reg.Counter("rim_estimates_total", "window slots analyzed by pipeline Process"),
		degraded:  reg.Counter("rim_estimates_degraded_total", "analyzed window slots flagged degraded"),
		segments:  reg.Counter("rim_segments_total", "movement segments resolved"),
		zuptIntervals: reg.Counter("rim_zupt_intervals_total",
			"zero-velocity (ZUPT) intervals resolved by pipeline Process"),
		zuptSlots: reg.Counter("rim_zupt_slots_total",
			"window slots covered by resolved zero-velocity intervals"),
	}
}

// degradedMissFrac is the per-slot missing-antenna fraction above which an
// estimate is flagged degraded: with a third of the array interpolated the
// TRRS averages lean on fabricated data.
const degradedMissFrac = 1.0 / 3

// NewPipeline builds the pipeline for one CSI series.
func NewPipeline(s *csi.Series, cfg Config) (*Pipeline, error) {
	if cfg.Array == nil {
		return nil, fmt.Errorf("core: Config.Array is required")
	}
	if cfg.Array.NumAntennas() != s.NumAnts {
		return nil, fmt.Errorf("core: array has %d antennas but series has %d",
			cfg.Array.NumAntennas(), s.NumAnts)
	}
	cfg.applyDefaults(s.Rate)
	eng := trrs.NewEnginePrecision(s, cfg.Precision)
	eng.SetParallelism(cfg.Parallelism)
	eng.SetKernel(cfg.Kernel)
	eng.SetObs(cfg.Obs)
	eng.SetTrace(cfg.Trace)
	eng.SetHop(cfg.traceHop)
	return newPipelineFromEngine(eng, nil, missFracOf(s.Missing, s.NumAnts, s.NumSlots()), cfg)
}

// missFracOf computes the per-slot fraction of antennas whose sample was
// missing/interpolated. A nil mask yields nil (no degradation flagging).
func missFracOf(missing [][]bool, numAnts, slots int) []float64 {
	if missing == nil {
		return nil
	}
	out := make([]float64, slots)
	for t := range out {
		miss := 0
		for a := 0; a < numAnts && a < len(missing); a++ {
			if t < len(missing[a]) && missing[a][t] {
				miss++
			}
		}
		out[t] = float64(miss) / float64(numAnts)
	}
	return out
}

// pairGeometry derives the pipeline's pair structure from the array: the
// parallel-isometric groups (translation) and, for arrays with ≥ 4
// antennas arranged in a ring, the adjacent pairs (rotation detection).
func pairGeometry(arr *array.Array) ([]array.ParallelGroup, []array.Pair) {
	groups := arr.ParallelGroups(geom.Rad(2), 1e-6)
	var ring []array.Pair
	if arr.NumAntennas() >= 4 {
		ring = arr.AdjacentRing()
	}
	return groups, ring
}

// neededPairs collects the distinct base-matrix pairs the pipeline will
// request for the given geometry, deduplicated in request order: every
// pair of every parallel group (first pair only under
// DisablePairAveraging) plus the rotation ring. Both the batch bulk
// build and the streaming pre-warm use it, so the batched schedule
// covers exactly the pairs the per-pair lookups will ask for.
func neededPairs(groups []array.ParallelGroup, ring []array.Pair, disablePairAveraging bool) []trrs.PairSpec {
	var pairs []trrs.PairSpec
	seen := map[[2]int]bool{}
	addPair := func(i, j int) {
		if !seen[[2]int{i, j}] {
			seen[[2]int{i, j}] = true
			pairs = append(pairs, trrs.PairSpec{I: i, J: j})
		}
	}
	for _, g := range groups {
		for k, pr := range g.Pairs {
			if disablePairAveraging && k > 0 {
				break
			}
			addPair(pr.I, pr.J)
		}
	}
	for _, pr := range ring {
		addPair(pr.I, pr.J)
	}
	return pairs
}

// newPipelineFromEngine assembles a pipeline over an existing TRRS engine.
// baseFor supplies the per-pair base matrices (antenna indices local to
// the engine); nil selects the default bulk computation, which fans every
// needed pair out over one worker pool sharded by pair × time block. The
// streaming front end passes an incremental-engine source instead. cfg
// must already have defaults applied and an Array matching the engine's
// antenna count.
func newPipelineFromEngine(eng *trrs.Engine, baseFor func(i, j int) *trrs.Matrix, missFrac []float64, cfg Config) (*Pipeline, error) {
	if cfg.Array.NumAntennas() != eng.NumAntennas() {
		return nil, fmt.Errorf("core: array has %d antennas but engine has %d",
			cfg.Array.NumAntennas(), eng.NumAntennas())
	}
	p := &Pipeline{cfg: cfg, eng: eng, missFrac: missFrac, po: newPipelineObs(cfg.Obs)}
	p.w = windowSlots(cfg.WindowSeconds, eng.Rate())
	buildSpan := obs.StartSpan(p.po.buildH)
	defer buildSpan.End()
	buildTrace := cfg.Trace.Start(trace.KindBuild, cfg.traceHop, -1)
	defer buildTrace.End()

	// Base matrices are shared between translation groups and the
	// rotation ring; collect the distinct pairs first so the bulk source
	// computes each exactly once, in one cross-pair batched pool (every
	// time block's CSI planes are read once and feed all pairs sharing
	// it — see trrs.BaseMatrices). Reversed pairs and self-pairs need no
	// handling here: BaseMatrices derives them by the Hermitian
	// reflection instead of recomputing.
	groups, ring := pairGeometry(cfg.Array)
	if baseFor == nil {
		pairs := neededPairs(groups, ring, cfg.DisablePairAveraging)
		ms := eng.BaseMatrices(pairs, p.w)
		cache := make(map[[2]int]*trrs.Matrix, len(pairs))
		for k, spec := range pairs {
			cache[[2]int{spec.I, spec.J}] = ms[k]
		}
		baseFor = func(i, j int) *trrs.Matrix { return cache[[2]int{i, j}] }
	}

	for _, g := range groups {
		var ms []*trrs.Matrix
		for _, pr := range g.Pairs {
			ms = append(ms, baseFor(pr.I, pr.J))
			if cfg.DisablePairAveraging {
				break
			}
		}
		avg, err := trrs.AverageMatricesInto(cfg.arena, ms...)
		if err != nil {
			return nil, fmt.Errorf("core: group matrices: %w", err)
		}
		vm, err := trrs.VirtualMassiveInto(cfg.arena, avg, cfg.V)
		if err != nil {
			return nil, fmt.Errorf("core: group matrices: %w", err)
		}
		p.groups = append(p.groups, groupMatrix{group: g, m: vm})
	}
	for _, pr := range ring {
		vm, err := trrs.VirtualMassiveInto(cfg.arena, baseFor(pr.I, pr.J), cfg.V)
		if err != nil {
			return nil, fmt.Errorf("core: ring matrices: %w", err)
		}
		p.ring = append(p.ring, groupMatrix{
			group: array.ParallelGroup{
				Pairs:      []array.Pair{pr},
				Direction:  cfg.Array.Direction(pr),
				Separation: cfg.Array.Separation(pr),
			},
			m: vm,
		})
	}
	return p, nil
}

// Engine exposes the underlying TRRS engine (used by applications that need
// raw alignment matrices, e.g. gesture recognition).
func (p *Pipeline) Engine() *trrs.Engine { return p.eng }

// Window returns the one-sided lag window in slots.
func (p *Pipeline) Window() int { return p.w }

// NumGroups returns the number of parallel-isometric pair groups.
func (p *Pipeline) NumGroups() int { return len(p.groups) }

// Group returns the i-th pair group and its averaged alignment matrix
// (diagnostics and experiments).
func (p *Pipeline) Group(i int) (array.ParallelGroup, *trrs.Matrix) {
	return p.groups[i].group, p.groups[i].m
}

// GroupMatrix returns the averaged alignment matrix of the group whose
// direction is closest to bodyDir (radians, mod π).
func (p *Pipeline) GroupMatrix(bodyDir float64) (*trrs.Matrix, array.ParallelGroup) {
	best, bi := math.Inf(1), 0
	for i, gm := range p.groups {
		d := geom.AbsAngleDiff(gm.group.Direction, bodyDir)
		if d > math.Pi/2 {
			d = math.Pi - d
		}
		if d < best {
			best, bi = d, i
		}
	}
	return p.groups[bi].m, p.groups[bi].group
}

// Process runs the full pipeline and returns per-slot and per-segment
// motion estimates.
func (p *Pipeline) Process() *Result {
	rate := p.eng.Rate()
	slots := p.eng.NumSlots()
	res := &Result{Rate: rate}
	hop := p.cfg.traceHop
	var hopTrace trace.Span
	if hop == 0 {
		// Batch runs have no Streamer emitting the hop span; the whole
		// Process is the one "hop", covering every slot. The span is ended
		// explicitly before any flight-recorder offer so a postmortem
		// bundle always contains the hop span it needs for lineage.
		hopTrace = p.cfg.Trace.Start(trace.KindHop, 0, -1)
	}
	// Deadline gate: every stage boundary below re-checks it, and a pass
	// that runs out of budget finishes immediately with degraded
	// placeholders for everything it did not get to — a late answer that
	// says "I don't know" beats a stalled session.
	var moving []bool
	if p.cfg.hopExpired() {
		res.DeadlineExceeded = true
	} else {
		movementSpan := obs.StartSpan(p.po.movementH)
		movementTrace := p.cfg.Trace.Start(trace.KindMovement, hop, -1)
		res.MovementIndicator = align.MovementIndicator(p.eng, p.cfg.Movement)
		moving = align.ThresholdWithHysteresis(res.MovementIndicator, p.cfg.Movement)
		p.moving = moving
		release := p.cfg.Movement.ReleaseThreshold
		if release < p.cfg.Movement.Threshold {
			release = p.cfg.Movement.Threshold
		}
		p.movingSoft = make([]bool, len(res.MovementIndicator))
		for t, v := range res.MovementIndicator {
			p.movingSoft[t] = v < release
		}
		fastCfg := p.cfg.Movement
		fastCfg.SlowLagSeconds = 0
		p.fastInd = align.MovementIndicator(p.eng, fastCfg)
		movementSpan.End()
		movementTrace.End()
		res.ZUPTs = p.extractZUPTs(res.MovementIndicator, release,
			int(p.cfg.ZUPTMinSeconds*rate))
		p.emitZUPTs(res.ZUPTs, hop)
	}
	res.Estimates = make([]Estimate, slots)
	dt := 1 / rate
	for t := range res.Estimates {
		res.Estimates[t] = Estimate{T: float64(t) * dt, HeadingBody: math.NaN()}
		if p.missFrac != nil && t < len(p.missFrac) && p.missFrac[t] >= degradedMissFrac {
			res.Estimates[t].Degraded = true
		}
		if res.DeadlineExceeded {
			// No movement analysis ran at all: every slot is an unknown.
			res.Estimates[t].Degraded = true
		}
	}

	if !res.DeadlineExceeded {
		minLen := int(p.cfg.MinSegmentSeconds * rate)
		segs := align.Segments(moving, minLen, int(0.3*rate))
		// Trim each segment to the region where the indicator actually hit
		// the trigger level (plus a short pad): when the device stops in a
		// low-SNR spot the indicator may never climb back above the release
		// level, which would otherwise glue a long static tail onto the
		// segment and starve its final heading window.
		pad := int(0.08 * rate)
		indSm := sigproc.MedianFilter(res.MovementIndicator, 5)
		for si := range segs {
			start, end := segs[si][0], segs[si][1]
			for end-1 > start && indSm[end-1] >= p.cfg.Movement.Threshold {
				end--
			}
			end += pad
			if end > segs[si][1] {
				end = segs[si][1]
			}
			if end-start >= minLen {
				segs[si][1] = end
			}
		}
		// Split segments at sustained trigger-level-static runs: when the
		// device stops in a channel fade the indicator can sit between the
		// trigger and release levels, gluing two motions into one segment.
		// Genuine motion never holds the indicator above the trigger level
		// for long, so a ≥0.4 s run there marks an interior idle.
		segs = splitAtInteriorIdles(segs, indSm, p.cfg.Movement.Threshold, int(0.4*rate), minLen)
		for _, seg := range segs {
			if !res.DeadlineExceeded && p.cfg.hopExpired() {
				res.DeadlineExceeded = true
			}
			if res.DeadlineExceeded {
				// Out of budget: this segment's motion stays unresolved.
				// Its slots keep the static placeholder, flagged degraded.
				for t := seg[0]; t < seg[1] && t < len(res.Estimates); t++ {
					res.Estimates[t].Degraded = true
				}
				continue
			}
			alignSpan := obs.StartSpan(p.po.alignH)
			alignTrace := p.cfg.Trace.Start(trace.KindAlign, hop, int64(seg[0]))
			sr := p.processSegment(seg[0], seg[1], res)
			alignSpan.End()
			alignTrace.End()
			p.cfg.Trace.Emit(trace.KindSegment, hop, int64(sr.Start), int64(sr.End), int64(sr.Kind))
			res.Segments = append(res.Segments, sr)
			switch sr.Kind {
			case MotionTranslate:
				res.Distance += sr.Distance
			case MotionRotate:
				res.RotationAngle += math.Abs(sr.Angle)
			}
		}
	}
	p.po.segments.Add(uint64(len(res.Segments)))
	p.po.estimates.Add(uint64(len(res.Estimates)))
	if p.po.degraded != nil || (hop == 0 && (p.cfg.Trace != nil || p.cfg.Flight != nil)) {
		var deg uint64
		for i := range res.Estimates {
			if res.Estimates[i].Degraded {
				deg++
				if hop == 0 {
					// Batch slot IDs are absolute, so degraded emissions go
					// straight into the lineage (streams emit estimate events
					// from the Streamer, which knows the absolute slot).
					p.cfg.Trace.Emit(trace.KindEstimate, 0, int64(i), 1, int64(res.Estimates[i].Kind))
				}
			}
		}
		p.po.degraded.Add(deg)
		if hop == 0 {
			hopTrace.EndArgs(0, int64(slots))
			if deg > 0 {
				p.cfg.Flight.Offer(trace.ReasonDegradedEstimates, 0, nil)
			}
		}
	} else if hop == 0 {
		hopTrace.EndArgs(0, int64(slots))
	}
	return res
}

// ProcessSeries is the one-call convenience: build a pipeline and process.
func ProcessSeries(s *csi.Series, cfg Config) (*Result, error) {
	p, err := NewPipeline(s, cfg)
	if err != nil {
		return nil, err
	}
	return p.Process(), nil
}

// splitAtInteriorIdles cuts each segment wherever the (median-smoothed)
// movement indicator stays at or above the trigger threshold for at least
// idleLen consecutive slots; sub-segments shorter than minLen are dropped.
func splitAtInteriorIdles(segs [][2]int, indSm []float64, threshold float64, idleLen, minLen int) [][2]int {
	if idleLen < 1 {
		return segs
	}
	var out [][2]int
	for _, seg := range segs {
		start := seg[0]
		i := seg[0]
		for i < seg[1] {
			if indSm[i] < threshold {
				i++
				continue
			}
			j := i
			for j < seg[1] && indSm[j] >= threshold {
				j++
			}
			if j-i >= idleLen {
				if i-start >= minLen {
					out = append(out, [2]int{start, i})
				}
				start = j
			}
			i = j
		}
		if seg[1]-start >= minLen {
			out = append(out, [2]int{start, seg[1]})
		}
	}
	return out
}
