package core

import (
	"testing"

	"rim/internal/array"
	"rim/internal/geom"
	"rim/internal/obs"
	"rim/internal/obs/trace"
	"rim/internal/traj"
)

func TestZUPTSlotConfidence(t *testing.T) {
	cases := []struct {
		ind, release, want float64
	}{
		{1, 0.86, 1},
		{0.86, 0.86, 0},
		{0.93, 0.86, 0.5},
		{0.5, 0.86, 0}, // below release clamps to 0
		{1.2, 0.86, 1}, // above 1 clamps to 1
		{0.3, 1, 1},    // degenerate release >= 1: everything scores 1
		{0.9, 0.8, 0.5},
	}
	for _, c := range cases {
		got := zuptSlotConfidence(c.ind, c.release)
		if diff := got - c.want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("zuptSlotConfidence(%v, %v) = %v, want %v", c.ind, c.release, got, c.want)
		}
	}
}

func TestZUPTIntervalSeconds(t *testing.T) {
	z := ZUPTInterval{Start: 100, End: 150}
	if got := z.Seconds(100); got != 0.5 {
		t.Errorf("Seconds(100) = %v, want 0.5", got)
	}
	if got := z.Seconds(0); got != 0 {
		t.Errorf("Seconds(0) = %v, want 0", got)
	}
}

func TestZUPTFromEstimates(t *testing.T) {
	// 30 static, 40 moving, 10 static-but-degraded, 35 static: at 100 Hz
	// with a 0.2 s minimum, only the clean static runs survive, and the
	// degraded run neither counts nor merges with its neighbor.
	ests := make([]Estimate, 115)
	for i := 30; i < 70; i++ {
		ests[i].Moving = true
	}
	for i := 70; i < 80; i++ {
		ests[i].Degraded = true
	}
	got := ZUPTFromEstimates(ests, 100, 0.2)
	want := []ZUPTInterval{
		{Start: 0, End: 30, Confidence: 1},
		{Start: 80, End: 115, Confidence: 1},
	}
	if len(got) != len(want) {
		t.Fatalf("intervals = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("interval %d = %v, want %v", i, got[i], want[i])
		}
	}
	if out := ZUPTFromEstimates(nil, 100, 0.2); out != nil {
		t.Errorf("nil estimates produced %v", out)
	}
}

// checkZUPTInvariants enforces the interval contract shared by the batch
// extractor and the fuzz target: ordered, non-overlapping, at least minLen
// slots, within [0, slots), confidence in [0, 1].
func checkZUPTInvariants(t *testing.T, zupts []ZUPTInterval, slots, minLen int) {
	t.Helper()
	prevEnd := 0
	for i, z := range zupts {
		if z.Start < 0 || z.End > slots || z.Start >= z.End {
			t.Fatalf("interval %d out of range: %+v (slots=%d)", i, z, slots)
		}
		if z.Start < prevEnd {
			t.Fatalf("interval %d overlaps or disorders its predecessor: %v", i, zupts)
		}
		if z.End-z.Start < minLen {
			t.Fatalf("interval %d shorter than minLen %d: %+v", i, minLen, z)
		}
		if z.Confidence < 0 || z.Confidence > 1 {
			t.Fatalf("interval %d confidence out of [0,1]: %+v", i, z)
		}
		prevEnd = z.End
	}
}

// TestZUPTIntervalsOnPauseWalk runs a pause–move–pause walk through the
// pipeline and checks that the two pauses surface as zero-velocity
// intervals, that the moving leg does not, and that the intervals are
// mirrored on the rim_zupt_* counters and the trace stream.
func TestZUPTIntervalsOnPauseWalk(t *testing.T) {
	rate := 100.0
	arr := array.NewLinear3(spacing)
	b := traj.NewBuilder(rate, geom.Pose{Pos: geom.Vec2{X: 10, Y: 0}})
	b.Pause(0.8)
	b.MoveDir(0, 1.0, 0.4)
	b.Pause(0.8)
	tr := b.Build()
	s := buildSeries(t, tr, arr, 77)

	reg := obs.NewRegistry()
	rec := trace.NewRecorder(0)
	cfg := fastConfig(arr)
	cfg.Obs = reg
	cfg.Trace = rec
	res, err := ProcessSeries(s, cfg)
	if err != nil {
		t.Fatal(err)
	}

	slots := len(res.Estimates)
	minLen := int(cfg.ZUPTMinSeconds * rate)
	if minLen < 1 {
		minLen = 20 // applyDefaults: 0.2 s at 100 Hz
	}
	checkZUPTInvariants(t, res.ZUPTs, slots, minLen)
	if len(res.ZUPTs) < 2 {
		t.Fatalf("ZUPT intervals = %v, want the two pauses", res.ZUPTs)
	}
	// The walk is pause [0, 80), move [80, 330), pause [330, 410): the first
	// interval must cover part of the leading pause, the last part of the
	// trailing pause, and nothing may claim the middle of the moving leg.
	if res.ZUPTs[0].Start > 60 {
		t.Errorf("first interval misses the leading pause: %+v", res.ZUPTs[0])
	}
	if last := res.ZUPTs[len(res.ZUPTs)-1]; last.End < slots-40 {
		t.Errorf("last interval misses the trailing pause: %+v (slots=%d)", last, slots)
	}
	mid := int(0.8*rate) + int(2.5*rate)/2
	for _, z := range res.ZUPTs {
		if z.Start <= mid && mid < z.End {
			t.Errorf("interval %+v claims the middle of the moving leg (slot %d)", z, mid)
		}
	}

	// Counters mirror the extracted intervals exactly.
	var nIntervals, nSlots uint64
	for _, m := range reg.Snapshot() {
		switch m.Name {
		case "rim_zupt_intervals_total":
			nIntervals = uint64(m.Value)
		case "rim_zupt_slots_total":
			nSlots = uint64(m.Value)
		}
	}
	if nIntervals != uint64(len(res.ZUPTs)) {
		t.Errorf("rim_zupt_intervals_total = %d, want %d", nIntervals, len(res.ZUPTs))
	}
	var wantSlots uint64
	for _, z := range res.ZUPTs {
		wantSlots += uint64(z.End - z.Start)
	}
	if nSlots != wantSlots {
		t.Errorf("rim_zupt_slots_total = %d, want %d", nSlots, wantSlots)
	}

	// One KindZUPT trace event per interval, carrying its bounds and
	// permille confidence.
	var events []trace.Event
	for _, e := range rec.Snapshot() {
		if e.Kind == trace.KindZUPT {
			events = append(events, e)
		}
	}
	if len(events) != len(res.ZUPTs) {
		t.Fatalf("KindZUPT events = %d, want %d", len(events), len(res.ZUPTs))
	}
	for i, z := range res.ZUPTs {
		e := events[i]
		if e.Frame != int64(z.Start) || e.A != int64(z.End) || e.B != int64(z.Confidence*1000) {
			t.Errorf("event %d = {Frame:%d A:%d B:%d}, want {%d %d %d}",
				i, e.Frame, e.A, e.B, z.Start, z.End, int64(z.Confidence*1000))
		}
	}
}
