package core

import (
	"math"
	"testing"

	"rim/internal/array"
	"rim/internal/geom"
	"rim/internal/traj"
)

// TestContinuousHeadingRefinesOffGridDirections drives the §7 extension:
// for motions between the hexagon's 30°-spaced directions, the refined
// heading must on average beat the quantized one.
func TestContinuousHeadingRefinesOffGridDirections(t *testing.T) {
	rate := 100.0
	arr := array.NewHexagonal(spacing)
	dirs := []float64{10, 40, 75, 130}
	run := func(continuous bool) float64 {
		var sum float64
		for i, d := range dirs {
			b := traj.NewBuilder(rate, geom.Pose{Pos: geom.Vec2{X: 10, Y: 0}})
			b.Pause(0.4)
			b.MoveDir(geom.Rad(d), 0.8, 0.4)
			b.Pause(0.4)
			s := buildSeries(t, b.Build(), arr, 77+int64(i))
			cfg := fastConfig(arr)
			cfg.ContinuousHeading = continuous
			res, err := ProcessSeries(s, cfg)
			if err != nil {
				t.Fatal(err)
			}
			errDeg := 180.0
			for _, seg := range res.SegmentsOfKind(MotionTranslate) {
				errDeg = math.Abs(geom.Deg(geom.AngleDiff(seg.HeadingBody, geom.Rad(d))))
				break
			}
			sum += errDeg
		}
		return sum / float64(len(dirs))
	}
	discrete := run(false)
	continuous := run(true)
	t.Logf("mean heading error: discrete %.1f°, continuous %.1f°", discrete, continuous)
	if continuous > discrete+1 {
		t.Errorf("continuous heading (%.1f°) worse than discrete (%.1f°)", continuous, discrete)
	}
}

func TestContinuousHeadingNoopOnGrid(t *testing.T) {
	// On-grid motion must stay exact with the refinement enabled.
	rate := 100.0
	arr := array.NewHexagonal(spacing)
	b := traj.NewBuilder(rate, geom.Pose{Pos: geom.Vec2{X: 10, Y: 0}})
	b.Pause(0.4)
	b.MoveDir(geom.Rad(60), 0.7, 0.4)
	b.Pause(0.4)
	s := buildSeries(t, b.Build(), arr, 3)
	cfg := fastConfig(arr)
	cfg.ContinuousHeading = true
	res, err := ProcessSeries(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	segs := res.SegmentsOfKind(MotionTranslate)
	if len(segs) != 1 {
		t.Fatalf("segments = %+v", segs)
	}
	if got := math.Abs(geom.Deg(geom.AngleDiff(segs[0].HeadingBody, geom.Rad(60)))); got > 12 {
		t.Errorf("on-grid heading error %.1f° with refinement", got)
	}
}
