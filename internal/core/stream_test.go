package core

import (
	"math"
	"testing"

	"rim/internal/array"
	"rim/internal/geom"
	"rim/internal/traj"
)

func streamConfig(arr *array.Array) StreamConfig {
	cfg := fastConfig(arr)
	return StreamConfig{Core: cfg, SpanSeconds: 3, HopSeconds: 0.5}
}

func TestStreamerValidation(t *testing.T) {
	if _, err := NewStreamer(StreamConfig{}, 100, 3, 3, 30); err == nil {
		t.Error("missing array must error")
	}
	arr := array.NewLinear3(spacing)
	if _, err := NewStreamer(StreamConfig{Core: Config{Array: arr}}, 100, 6, 3, 30); err == nil {
		t.Error("antenna mismatch must error")
	}
	st, err := NewStreamer(streamConfig(arr), 100, 3, 3, 30)
	if err != nil {
		t.Fatal(err)
	}
	if st.Latency() <= 0 || st.Latency() > 2 {
		t.Errorf("latency = %v s", st.Latency())
	}
	// Shape errors on Push.
	if _, err := st.Push(make([][][]complex128, 2)); err == nil {
		t.Error("wrong antenna count must error")
	}
	bad := make([][][]complex128, 3)
	for a := range bad {
		bad[a] = make([][]complex128, 3)
		for tx := range bad[a] {
			bad[a][tx] = make([]complex128, 7) // wrong tone count
		}
	}
	if _, err := st.Push(bad); err == nil {
		t.Error("wrong tone count must error")
	}
}

func TestStreamMatchesBatchDistance(t *testing.T) {
	rate := 100.0
	arr := array.NewLinear3(spacing)
	b := traj.NewBuilder(rate, geom.Pose{Pos: geom.Vec2{X: 10, Y: 0}})
	b.Pause(0.5)
	b.MoveDir(0, 1.5, 0.4)
	b.Pause(0.5)
	s := buildSeries(t, b.Build(), arr, 42)

	batch, err := ProcessSeries(s, fastConfig(arr))
	if err != nil {
		t.Fatal(err)
	}
	stream, err := StreamSeries(s, streamConfig(arr))
	if err != nil {
		t.Fatal(err)
	}
	if len(stream) != s.NumSlots() {
		t.Fatalf("streamed estimates = %d, want %d", len(stream), s.NumSlots())
	}
	// Integrated streamed speed vs batch per-slot speed integral: both
	// omit the blind-start Δd compensation, so they are comparable.
	dt := 1 / rate
	var streamDist, batchDist float64
	for _, e := range stream {
		streamDist += e.Speed * dt
	}
	for _, e := range batch.Estimates {
		batchDist += e.Speed * dt
	}
	if math.Abs(streamDist-batchDist) > 0.15 {
		t.Errorf("streamed distance %.2f vs batch %.2f", streamDist, batchDist)
	}
	// Absolute: within ~15% of the truth (per-slot integrals lack the Δd
	// compensation).
	if math.Abs(streamDist-1.5) > 0.25 {
		t.Errorf("streamed distance %.2f, truth 1.5", streamDist)
	}
}

func TestStreamEstimatesMonotoneTime(t *testing.T) {
	rate := 100.0
	arr := array.NewLinear3(spacing)
	tr := traj.Line(rate, geom.Vec2{X: 10, Y: 0}, 0, 0, 0.8, 0.4)
	s := buildSeries(t, tr, arr, 7)
	stream, err := StreamSeries(s, streamConfig(arr))
	if err != nil {
		t.Fatal(err)
	}
	dt := 1 / rate
	for i, e := range stream {
		want := float64(i) * dt
		if math.Abs(e.T-want) > 1e-9 {
			t.Fatalf("estimate %d has T=%v, want %v (no gaps or duplicates)", i, e.T, want)
		}
	}
}

func TestStreamIncrementalLatency(t *testing.T) {
	// Estimates must arrive while the stream is still running, not only
	// at Flush.
	rate := 100.0
	arr := array.NewLinear3(spacing)
	tr := traj.Line(rate, geom.Vec2{X: 10, Y: 0}, 0, 0, 1.2, 0.4)
	s := buildSeries(t, tr, arr, 9)
	st, err := NewStreamer(streamConfig(arr), s.Rate, s.NumAnts, s.NumTx, s.NumSub)
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	snap := make([][][]complex128, s.NumAnts)
	for a := range snap {
		snap[a] = make([][]complex128, s.NumTx)
	}
	for ti := 0; ti < s.NumSlots(); ti++ {
		for a := 0; a < s.NumAnts; a++ {
			for tx := 0; tx < s.NumTx; tx++ {
				snap[a][tx] = s.H[a][tx][ti]
			}
		}
		es, err := st.Push(snap)
		if err != nil {
			t.Fatal(err)
		}
		got += len(es)
	}
	if got == 0 {
		t.Fatal("no estimates emitted before Flush")
	}
	rest := st.Flush()
	if got+len(rest) != s.NumSlots() {
		t.Errorf("total estimates %d, want %d", got+len(rest), s.NumSlots())
	}
	if st.Flush() != nil {
		// After a full flush the buffer may retain context; a second
		// flush must not re-emit already-finalized slots.
		t.Log("second flush returned estimates; verifying no duplicates is covered by the count check above")
	}
}

func TestStreamEmptyFlush(t *testing.T) {
	arr := array.NewLinear3(spacing)
	st, err := NewStreamer(streamConfig(arr), 100, 3, 3, 30)
	if err != nil {
		t.Fatal(err)
	}
	if st.Flush() != nil {
		t.Error("flush of an empty stream must be nil")
	}
}
