package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"rim/internal/array"
	"rim/internal/geom"
	"rim/internal/traj"
)

// TestCheckpointRestoreMatchesUninterrupted kills a streamer mid-walk,
// restores a fresh one from its checkpoint, feeds both the same remaining
// slots and requires the restored stream's estimates to match the
// uninterrupted golden run — the restore path replays the buffered window
// through the incremental engine, so the divergence bound is zero.
func TestCheckpointRestoreMatchesUninterrupted(t *testing.T) {
	rate := 100.0
	arr := array.NewLinear3(spacing)
	b := traj.NewBuilder(rate, geom.Pose{Pos: geom.Vec2{X: 10, Y: 0}})
	b.Pause(0.5)
	b.MoveDir(0, 1.2, 0.4)
	b.Pause(0.5)
	s := buildSeries(t, b.Build(), arr, 21)

	cfg := streamConfig(arr)
	golden, err := NewStreamer(cfg, s.Rate, s.NumAnts, s.NumTx, s.NumSub)
	if err != nil {
		t.Fatal(err)
	}

	cut := s.NumSlots() / 2
	snap := make([][][]complex128, s.NumAnts)
	for a := range snap {
		snap[a] = make([][]complex128, s.NumTx)
	}
	push := func(st *Streamer, ti int) []Estimate {
		for a := 0; a < s.NumAnts; a++ {
			for tx := 0; tx < s.NumTx; tx++ {
				snap[a][tx] = s.H[a][tx][ti]
			}
		}
		es, err := st.PushMaskedCtx(context.Background(), snap, nil)
		if err != nil {
			t.Fatal(err)
		}
		return es
	}

	var goldenTail []Estimate
	for ti := 0; ti < s.NumSlots(); ti++ {
		es := push(golden, ti)
		if ti >= cut {
			goldenTail = append(goldenTail, es...)
		}
	}
	goldenTail = append(goldenTail, golden.Flush()...)

	// Second run: same prefix, checkpoint at the cut, "crash", restore.
	victim, err := NewStreamer(cfg, s.Rate, s.NumAnts, s.NumTx, s.NumSub)
	if err != nil {
		t.Fatal(err)
	}
	for ti := 0; ti < cut; ti++ {
		push(victim, ti)
	}
	cp := victim.Checkpoint()
	restored, err := NewStreamerFromCheckpoint(cfg, cp)
	if err != nil {
		t.Fatal(err)
	}
	var tail []Estimate
	for ti := cut; ti < s.NumSlots(); ti++ {
		tail = append(tail, push(restored, ti)...)
	}
	tail = append(tail, restored.Flush()...)

	if len(tail) != len(goldenTail) {
		t.Fatalf("restored run emitted %d estimates after the cut, golden %d", len(tail), len(goldenTail))
	}
	for i := range tail {
		if math.Abs(tail[i].T-goldenTail[i].T) > 1e-9 {
			t.Fatalf("estimate %d: T %v vs golden %v", i, tail[i].T, goldenTail[i].T)
		}
		if math.Abs(tail[i].Speed-goldenTail[i].Speed) > 1e-9 {
			t.Fatalf("estimate %d: speed %v vs golden %v", i, tail[i].Speed, goldenTail[i].Speed)
		}
		if tail[i].Degraded != goldenTail[i].Degraded {
			t.Fatalf("estimate %d: degraded %v vs golden %v", i, tail[i].Degraded, goldenTail[i].Degraded)
		}
	}
}

// TestCheckpointHealthSurvivesRestore round-trips the failure counters.
func TestCheckpointHealthSurvivesRestore(t *testing.T) {
	arr := array.NewLinear3(spacing)
	cfg := streamConfig(arr)
	rate := 100.0
	tr := traj.Line(rate, geom.Vec2{X: 10, Y: 0}, 0, 0, 0.4, 0.4)
	s := buildSeries(t, tr, arr, 29)
	st, err := NewStreamer(cfg, s.Rate, s.NumAnts, s.NumTx, s.NumSub)
	if err != nil {
		t.Fatal(err)
	}
	snap := make([][][]complex128, s.NumAnts)
	for a := range snap {
		snap[a] = make([][]complex128, s.NumTx)
	}
	for ti := 0; ti < 7; ti++ {
		for a := 0; a < s.NumAnts; a++ {
			for tx := 0; tx < s.NumTx; tx++ {
				snap[a][tx] = s.H[a][tx][ti]
			}
		}
		if _, err := st.PushMaskedCtx(context.Background(), snap, nil); err != nil {
			t.Fatal(err)
		}
	}
	st.mu.Lock()
	st.failures = 3
	st.totalFails = 5
	st.lastErr = &healthError{msg: "synthetic", analysis: true}
	st.mu.Unlock()
	cp := st.Checkpoint()
	re, err := NewStreamerFromCheckpoint(cfg, cp)
	if err != nil {
		t.Fatal(err)
	}
	h := re.Health()
	if h.ConsecutiveFailures != 3 || h.TotalFailures != 5 {
		t.Errorf("failure counters = %d/%d, want 3/5", h.ConsecutiveFailures, h.TotalFailures)
	}
	if h.LastError == nil || !errors.Is(h.LastError, ErrAnalysis) {
		t.Errorf("restored LastError = %v, want an analysis error", h.LastError)
	}
}

func TestCheckpointValidationRejectsTampering(t *testing.T) {
	arr := array.NewLinear3(spacing)
	cfg := streamConfig(arr)
	rate := 100.0
	tr := traj.Line(rate, geom.Vec2{X: 10, Y: 0}, 0, 0, 0.8, 0.4)
	s := buildSeries(t, tr, arr, 23)
	st, err := NewStreamer(cfg, s.Rate, s.NumAnts, s.NumTx, s.NumSub)
	if err != nil {
		t.Fatal(err)
	}
	snap := make([][][]complex128, s.NumAnts)
	for a := range snap {
		snap[a] = make([][]complex128, s.NumTx)
	}
	for ti := 0; ti < s.NumSlots()/2; ti++ {
		for a := 0; a < s.NumAnts; a++ {
			for tx := 0; tx < s.NumTx; tx++ {
				snap[a][tx] = s.H[a][tx][ti]
			}
		}
		if _, err := st.PushMaskedCtx(context.Background(), snap, nil); err != nil {
			t.Fatal(err)
		}
	}

	cases := []struct {
		name   string
		mutate func(cp *StreamCheckpoint)
	}{
		{"nil", func(cp *StreamCheckpoint) { *cp = StreamCheckpoint{} }},
		{"negative rate", func(cp *StreamCheckpoint) { cp.Rate = -1 }},
		{"antenna mismatch", func(cp *StreamCheckpoint) { cp.NumAnts = 5 }},
		{"truncated buf row", func(cp *StreamCheckpoint) {
			if len(cp.Buf) > 0 && len(cp.Buf[0]) > 0 && len(cp.Buf[0][0]) > 0 {
				cp.Buf[0][0][0] = cp.Buf[0][0][0][:1]
			}
		}},
		{"frontier broken", func(cp *StreamCheckpoint) { cp.Dropped += 3 }},
		{"dead-window mismatch", func(cp *StreamCheckpoint) { cp.DeadWin = 1 }},
		{"recent index out of range", func(cp *StreamCheckpoint) { cp.RecentIdx = cp.DeadWin + 9 }},
	}
	for _, tc := range cases {
		cp := st.Checkpoint()
		tc.mutate(cp)
		if _, err := NewStreamerFromCheckpoint(cfg, cp); err == nil {
			t.Errorf("%s: tampered checkpoint accepted", tc.name)
		}
	}
}
