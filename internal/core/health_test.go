package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"rim/internal/array"
	"rim/internal/obs"
)

func TestHealthLastErrorDetached(t *testing.T) {
	arr := array.NewLinear3(spacing)
	st, err := NewStreamer(streamConfig(arr), 100, 3, 3, 30)
	if err != nil {
		t.Fatal(err)
	}
	if h := st.Health(); h.LastError != nil {
		t.Fatalf("fresh stream has LastError = %v", h.LastError)
	}
	st.mu.Lock()
	st.lastErr = fmt.Errorf("%w: boom", ErrAnalysis)
	st.mu.Unlock()
	h := st.Health()
	if h.LastError == nil {
		t.Fatal("LastError not surfaced")
	}
	if h.LastError == st.lastErr {
		t.Fatal("Health aliases the live error instead of copying it")
	}
	if !errors.Is(h.LastError, ErrAnalysis) {
		t.Error("detached copy lost the ErrAnalysis classification")
	}
	if h.LastError.Error() != st.lastErr.Error() {
		t.Errorf("detached message %q != original %q", h.LastError.Error(), st.lastErr.Error())
	}
	// Clearing the stream's error must not disturb the snapshot.
	st.mu.Lock()
	st.lastErr = nil
	st.mu.Unlock()
	if h.LastError.Error() == "" || !errors.Is(h.LastError, ErrAnalysis) {
		t.Error("snapshot invalidated by later stream mutation")
	}
}

func TestHealthJSONRoundTrip(t *testing.T) {
	cases := []Health{
		{},
		{
			Slots:               120,
			LossRate:            0.0625,
			CorruptSlots:        3,
			DeadAntennas:        []int{2},
			Fallback:            true,
			ConsecutiveFailures: 1,
			TotalFailures:       4,
			LastError:           fmt.Errorf("%w: only 1 live antenna(s)", ErrAnalysis),
		},
		{Slots: 7, LastError: errors.New("plain ingest trouble")},
	}
	for i, h := range cases {
		data, err := json.Marshal(h)
		if err != nil {
			t.Fatalf("case %d: marshal: %v", i, err)
		}
		var got Health
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatalf("case %d: unmarshal: %v", i, err)
		}
		if got.Slots != h.Slots || got.LossRate != h.LossRate ||
			got.CorruptSlots != h.CorruptSlots || got.Fallback != h.Fallback ||
			got.ConsecutiveFailures != h.ConsecutiveFailures ||
			got.TotalFailures != h.TotalFailures {
			t.Errorf("case %d: scalar fields mangled: got %+v want %+v", i, got, h)
		}
		if len(got.DeadAntennas) != len(h.DeadAntennas) {
			t.Errorf("case %d: DeadAntennas = %v, want %v", i, got.DeadAntennas, h.DeadAntennas)
		}
		switch {
		case h.LastError == nil:
			if got.LastError != nil {
				t.Errorf("case %d: nil error became %v", i, got.LastError)
			}
		default:
			if got.LastError == nil {
				t.Fatalf("case %d: error lost in round trip", i)
			}
			if got.LastError.Error() != h.LastError.Error() {
				t.Errorf("case %d: message %q != %q", i, got.LastError.Error(), h.LastError.Error())
			}
			if errors.Is(got.LastError, ErrAnalysis) != errors.Is(h.LastError, ErrAnalysis) {
				t.Errorf("case %d: ErrAnalysis classification lost", i)
			}
		}
	}
}

func TestHealthJSONKeys(t *testing.T) {
	h := Health{Slots: 5, LastError: fmt.Errorf("%w: x", ErrAnalysis)}
	data, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"slots", "loss_rate", "corrupt_slots", "fallback",
		"consecutive_failures", "total_failures", "last_error", "last_error_analysis"} {
		if _, ok := m[key]; !ok {
			t.Errorf("wire key %q missing from %s", key, data)
		}
	}
}

// TestHealthDuringFlushRace hammers Health() from one goroutine while
// another pushes and flushes a stream whose analysis keeps failing (only
// one live antenna), so the reader constantly snapshots a live, changing
// LastError. Run under -race this proves the snapshot shares no mutable
// state with the streamer.
func TestHealthDuringFlushRace(t *testing.T) {
	arr := array.NewLinear3(spacing)
	cfg := streamConfig(arr)
	cfg.SpanSeconds = 1
	cfg.HopSeconds = 0.1
	st, err := NewStreamer(cfg, 100, 3, 3, 30)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	mk := func() [][][]complex128 {
		snap := make([][][]complex128, 3)
		for a := range snap {
			snap[a] = make([][]complex128, 3)
			for tx := range snap[a] {
				row := make([]complex128, 30)
				for k := range row {
					row[k] = complex(rng.NormFloat64(), rng.NormFloat64())
				}
				snap[a][tx] = row
			}
		}
		return snap
	}
	// Antennas 1 and 2 never deliver a sample: the persistent-miss detector
	// declares them dead, leaving a single live antenna — every analysis
	// hop then fails with ErrAnalysis.
	mask := []bool{false, true, true}

	var wg sync.WaitGroup
	done := make(chan struct{})
	wg.Add(2)
	go func() {
		defer wg.Done()
		defer close(done)
		for ti := 0; ti < 400; ti++ {
			if _, err := st.PushMasked(mk(), mask); err != nil && !errors.Is(err, ErrAnalysis) {
				t.Errorf("push: %v", err)
				return
			}
			if ti%97 == 0 {
				st.Flush()
			}
		}
		st.Flush()
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			h := st.Health()
			if h.LastError != nil {
				_ = h.LastError.Error()
				_ = errors.Is(h.LastError, ErrAnalysis)
			}
		}
	}()
	wg.Wait()

	h := st.Health()
	if h.TotalFailures == 0 || h.LastError == nil {
		t.Fatalf("expected failing analyses (2 dead antennas): %+v", h)
	}
	if !errors.Is(h.LastError, ErrAnalysis) {
		t.Errorf("final LastError not classified ErrAnalysis: %v", h.LastError)
	}
}

// TestHealthzHTTPDuringStreamRace extends the Health-during-Flush race to
// the HTTP surface: obs.DebugMux's /healthz serializes the Streamer's
// Health plus the registry snapshot while another goroutine pushes,
// flushes, and mutates every counter the payload reads. Run under -race
// this proves the whole scrape path — snapshot, JSON encoding, metric
// iteration — shares no mutable state with the streamer.
func TestHealthzHTTPDuringStreamRace(t *testing.T) {
	arr := array.NewLinear3(spacing)
	cfg := streamConfig(arr)
	cfg.SpanSeconds = 1
	cfg.HopSeconds = 0.1
	reg := obs.NewRegistry()
	cfg.Core.Obs = reg
	st, err := NewStreamer(cfg, 100, 3, 3, 30)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(obs.DebugMux(reg, func() any { return st.Health() }))
	defer srv.Close()

	rng := rand.New(rand.NewSource(7))
	mk := func() [][][]complex128 {
		snap := make([][][]complex128, 3)
		for a := range snap {
			snap[a] = make([][]complex128, 3)
			for tx := range snap[a] {
				row := make([]complex128, 30)
				for k := range row {
					row[k] = complex(rng.NormFloat64(), rng.NormFloat64())
				}
				snap[a][tx] = row
			}
		}
		return snap
	}
	mask := []bool{false, true, true} // keeps analysis failing, Health churning

	var wg sync.WaitGroup
	done := make(chan struct{})
	wg.Add(2)
	go func() {
		defer wg.Done()
		defer close(done)
		for ti := 0; ti < 300; ti++ {
			if _, err := st.PushMasked(mk(), mask); err != nil && !errors.Is(err, ErrAnalysis) {
				t.Errorf("push: %v", err)
				return
			}
			if ti%89 == 0 {
				st.Flush()
			}
		}
		st.Flush()
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			resp, err := http.Get(srv.URL + "/healthz")
			if err != nil {
				t.Errorf("GET /healthz: %v", err)
				return
			}
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr != nil {
				t.Errorf("read /healthz: %v", rerr)
				return
			}
			if resp.StatusCode != http.StatusOK {
				t.Errorf("/healthz status %d: %s", resp.StatusCode, body)
				return
			}
			var payload struct {
				Health Health `json:"health"`
			}
			if err := json.Unmarshal(body, &payload); err != nil {
				t.Errorf("/healthz not JSON: %v in %s", err, body)
				return
			}
		}
	}()
	wg.Wait()

	// One last scrape after the writer stopped must see the final state.
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var payload struct {
		Health Health `json:"health"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	if payload.Health.Slots == 0 || payload.Health.TotalFailures == 0 {
		t.Fatalf("final /healthz payload missing stream state: %+v", payload.Health)
	}
}
