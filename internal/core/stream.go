package core

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"sync"
	"time"

	"rim/internal/csi"
	"rim/internal/obs"
	"rim/internal/obs/quality"
	"rim/internal/obs/trace"
	"rim/internal/sigproc"
	"rim/internal/trrs"
)

// StreamConfig parameterizes the real-time wrapper.
type StreamConfig struct {
	// Core is the pipeline configuration.
	Core Config
	// SpanSeconds is the sliding analysis window the pipeline reruns over
	// (default 4 s). It must comfortably exceed the lag window plus the
	// longest structure of interest (a movement segment boundary).
	SpanSeconds float64
	// HopSeconds is how often the window is re-analyzed (default 0.5 s):
	// the latency/CPU trade-off. Estimates are finalized once they are
	// older than the guard region, so output latency is roughly
	// Core.WindowSeconds + HopSeconds.
	HopSeconds float64
	// DeadMissFrac declares an antenna dead when the fraction of its
	// samples missing/rejected over the trailing detection window reaches
	// this level (default 0.9); it revives below half of it.
	DeadMissFrac float64
	// DeadEnergyFrac declares an antenna dead when its smoothed CSI power
	// falls below this fraction of the median power of the other antennas
	// (default 0.02, i.e. -17 dB — far below any AGC step, far above a
	// noise-only dead RF chain); it revives above 5x it.
	DeadEnergyFrac float64
	// DegradedMissFrac marks an emitted estimate degraded when the
	// fraction of antennas with missing samples at its slot reaches this
	// level (default 1/3).
	DegradedMissFrac float64
	// Recompute disables the incremental TRRS engine and rebuilds the
	// whole analysis window from scratch on every hop — the seed's
	// behavior, kept as the reference oracle. Combined with
	// Core.Parallelism = 1 it reproduces the fully serial pipeline; the
	// incremental default is bit-for-bit equivalent and much cheaper per
	// hop (see DESIGN.md, "Parallel & incremental TRRS engine").
	Recompute bool
	// HopDeadline bounds one sliding-window analysis hop. A hop that
	// exhausts its budget stops at the next stage boundary and emits
	// degraded placeholder estimates for the slots it did not resolve —
	// the stream never stalls on one slow window, it reports "unknown"
	// and keeps going. Exceeded deadlines are counted in
	// rim_hop_deadline_exceeded_total. Zero (the default) disables the
	// bound. PushMaskedCtx additionally honors its context's deadline,
	// whichever is sooner.
	HopDeadline time.Duration
}

// Health is the stream's data-quality surface: instead of silently
// swallowing trouble, the Streamer accounts for every lost sample,
// rejected frame, dead RF chain and failed analysis here.
type Health struct {
	// Slots is the number of snapshots ingested.
	Slots int
	// LossRate is the fraction of (antenna, slot) samples that arrived
	// missing or were rejected at ingest.
	LossRate float64
	// CorruptSlots counts snapshots with at least one NaN/Inf/garbage row
	// rejected at ingest.
	CorruptSlots int
	// DeadAntennas lists the antenna indices currently considered dead
	// (persistently missing or energy-starved RF chains).
	DeadAntennas []int
	// Fallback reports whether analysis currently runs on a reduced
	// sub-array because of dead antennas.
	Fallback bool
	// ConsecutiveFailures counts analysis failures since the last
	// successful window; TotalFailures counts them over the stream's life.
	ConsecutiveFailures int
	TotalFailures       int
	// LastError is the most recent analysis error (nil after a success).
	// Health hands out a detached copy — message plus ErrAnalysis
	// classification — never the live error chain, so the snapshot stays
	// valid however the stream mutates afterwards.
	LastError error
}

// ErrAnalysis tags errors originating in the sliding-window analysis, as
// opposed to ingest (shape) errors. The stream stays usable after one: the
// failed window is emitted as degraded placeholder estimates and the error
// is recorded in Health, so callers that want the stream to keep going can
// errors.Is(err, ErrAnalysis) and continue.
var ErrAnalysis = errors.New("core: stream analysis failed")

// Streamer is the incremental (real-time) front end of the pipeline, the
// equivalent of the paper's §5 C++ online system: CSI snapshots are pushed
// one packet at a time and finalized per-slot estimates come back with
// bounded latency. Internally it reruns the batch pipeline over a sliding
// window — one rerun costs a few milliseconds (see
// BenchmarkComplexityFullPipeline), far below the packet budget.
//
// The Streamer is built to degrade gracefully on commodity-CSI faults:
// missing samples are masked (not fabricated as present), NaN/corrupt
// snapshots are rejected at ingest, a dead RF chain is detected mid-stream
// and analysis falls back to the surviving antennas, and every incident is
// surfaced through Health.
//
// Streamer is goroutine-safe: Push, PushMasked, Flush and Health may be
// called concurrently (ingest is still serialized by the internal lock, so
// concurrent pushes interleave whole snapshots).
type Streamer struct {
	mu      sync.Mutex
	cfg     StreamConfig
	rate    float64
	numAnts int
	numTx   int
	numSub  int

	span, hop, guard int
	// wSlots is the one-sided TRRS lag window in slots, fixed so the
	// incremental engine maintains matrices at exactly the W the
	// per-window analysis asks for.
	wSlots int
	// inc is the incremental TRRS engine (nil when cfg.Recompute).
	inc *trrs.Incremental
	// incSnap is the reused per-push snapshot scratch handed to inc.Append
	// (which copies the rows), and remapHdr the reused per-pair Matrix
	// headers of analyzeAlive's index remapping — neither allocates on the
	// steady-state path.
	incSnap  [][][]complex128
	remapHdr map[[2]int]*trrs.Matrix
	// prewarm is the reused absolute-pair scratch of analyzeAlive's
	// batched ExtendMatrices pre-warm.
	prewarm []trrs.PairSpec
	// aliveScratch backs aliveAntennas' per-hop result.
	aliveScratch []int
	// buf[ant][tx] holds the windowed snapshots.
	buf [][][][]complex128
	// missing[ant] flags windowed slots whose sample was lost, rejected
	// or substituted; it trims in lockstep with buf and flows into
	// csi.Series.Missing instead of being fabricated as all-present.
	missing [][]bool
	// lastGood[ant][tx] is the last accepted row, substituted for missing
	// samples (zero rows before any sample arrived).
	lastGood [][][]complex128
	// dropped counts slots discarded from the front of buf.
	dropped int
	// finalized is the absolute slot index up to which estimates have
	// been emitted.
	finalized int
	// pending counts slots accumulated since the last analysis.
	pending int
	// hopFactor stretches the analysis hop to hopFactor×hop slots — the
	// load-shedding "coarser hop" degrade mode (see SetHopFactor).
	hopFactor int

	// Health accounting.
	samples      int
	missTotal    int
	corruptSlots int
	failures     int
	totalFails   int
	lastErr      error

	// Dead-antenna detection state: a ring buffer of the last deadWin
	// per-antenna missing flags plus an EMA of per-antenna CSI power.
	deadWin    int
	recentMiss [][]bool
	recentCnt  []int
	recentIdx  int
	recentN    int
	energyEMA  []float64
	emaAlpha   float64
	dead       []bool

	// log receives structured stream events (never nil; the no-op logger
	// when unconfigured). ob holds the resolved metric handles (all nil
	// when Core.Obs is nil).
	log *slog.Logger
	ob  streamObs

	// Causal tracing state: trc/flight mirror Core.Trace/Core.Flight,
	// hopSeq numbers the analysis hops (1-based; hop 0 is reserved for
	// batch runs), and ingestNs records each buffered slot's ingest
	// timestamp — trimmed in lockstep with buf — so the emit path can
	// measure ingest-to-emit lag. t0 anchors the timestamps when no
	// recorder supplies an epoch. lagOn gates the whole lag path.
	trc      *trace.Recorder
	flight   *trace.Flight
	qual     *quality.Engine
	hopSeq   int64
	ingestNs []int64
	t0       time.Time
	lagOn    bool

	// perObs holds per-entity metric children attached by the host (the
	// session layer resolves them from labeled families); all nil when
	// the stream is not attributed to an entity.
	perObs PerStreamObs
}

// PerStreamObs carries per-entity metric children a host resolves from
// labeled metric families and attaches to one streamer, so fleet daemons
// can attribute stream signals per session on top of the process-global
// streamObs counters. Zero value disables attribution.
type PerStreamObs struct {
	// Lag receives the same ingest-to-emit watermark samples as
	// rim_stream_lag_seconds, attributed to this stream.
	Lag *obs.Histogram
}

// SetPerStreamObs attaches per-entity metric children (see PerStreamObs).
// Safe to call mid-stream: enabling the lag path late backfills ingest
// timestamps for already-buffered slots (their lag reads near zero; the
// distribution is correct from the next slot on).
func (st *Streamer) SetPerStreamObs(po PerStreamObs) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.perObs = po
	wasOn := st.lagOn
	st.lagOn = st.trc != nil || st.ob.lagH != nil || po.Lag != nil
	if st.lagOn && !wasOn {
		now := st.nowNs()
		for len(st.ingestNs) < st.bufLen() {
			st.ingestNs = append(st.ingestNs, now)
		}
	}
}

// streamObs bundles the streamer's metric handles, resolved once in
// NewStreamer so the per-packet path never touches the registry map. All
// handles are nil (no-op) when StreamConfig.Core.Obs is nil.
type streamObs struct {
	frames   *obs.Counter   // rim_stream_frames_total
	missing  *obs.Counter   // rim_stream_samples_missing_total
	corrupt  *obs.Counter   // rim_stream_slots_corrupt_total
	emitted  *obs.Counter   // rim_stream_estimates_total
	degraded *obs.Counter   // rim_stream_estimates_degraded_total
	failures *obs.Counter   // rim_stream_analysis_failures_total
	fallback *obs.Counter   // rim_stream_fallback_hops_total
	deadline *obs.Counter   // rim_hop_deadline_exceeded_total
	dead     *obs.Gauge     // rim_stream_dead_antennas
	ingestH  *obs.Histogram // rim_ingest_seconds
	hopH     *obs.Histogram // rim_stream_hop_seconds
	lagH     *obs.Histogram // rim_stream_lag_seconds
	lagG     *obs.Gauge     // rim_stream_watermark_lag_seconds

	// Shared hop-scratch pool accounting (see scratch.go).
	scratchGets  *obs.Counter // rim_scratch_pool_gets_total
	scratchNews  *obs.Counter // rim_scratch_pool_news_total
	scratchBytes *obs.Gauge   // rim_scratch_pool_bytes
}

func newStreamObs(reg *obs.Registry) streamObs {
	if reg == nil {
		return streamObs{}
	}
	return streamObs{
		frames:   reg.Counter("rim_stream_frames_total", "CSI snapshots ingested by the streamer"),
		missing:  reg.Counter("rim_stream_samples_missing_total", "(antenna, slot) samples missing or rejected at ingest"),
		corrupt:  reg.Counter("rim_stream_slots_corrupt_total", "snapshots with at least one NaN/garbage row rejected"),
		emitted:  reg.Counter("rim_stream_estimates_total", "finalized per-slot estimates emitted"),
		degraded: reg.Counter("rim_stream_estimates_degraded_total", "finalized estimates emitted with the Degraded flag"),
		failures: reg.Counter("rim_stream_analysis_failures_total", "sliding-window analysis failures"),
		fallback: reg.Counter("rim_stream_fallback_hops_total", "analysis hops run on a reduced sub-array"),
		deadline: reg.Counter("rim_hop_deadline_exceeded_total", "analysis hops that exceeded their deadline and emitted degraded placeholders"),
		dead:     reg.Gauge("rim_stream_dead_antennas", "antennas currently considered dead"),
		ingestH:  reg.Timer("rim_ingest_seconds", "per-snapshot ingest (validate + commit) latency"),
		hopH:     reg.Timer("rim_stream_hop_seconds", "sliding-window analysis latency per hop"),
		lagH:     reg.Timer("rim_stream_lag_seconds", "ingest-to-emit latency of the newest slot finalized per hop"),
		lagG:     reg.Gauge("rim_stream_watermark_lag_seconds", "end-to-end lag of the emit watermark behind ingest"),
		scratchGets: reg.Counter("rim_scratch_pool_gets_total",
			"hop-scratch borrows from the process-wide streaming scratch pool"),
		scratchNews: reg.Counter("rim_scratch_pool_news_total",
			"hop-scratch borrows that had to allocate a fresh scratch (pool miss)"),
		scratchBytes: reg.Gauge("rim_scratch_pool_bytes",
			"backing bytes held by the hop scratch most recently returned to the pool"),
	}
}

// NewStreamer builds a streaming pipeline for CSI with the given shape.
// rate is the packet rate in Hz.
func NewStreamer(cfg StreamConfig, rate float64, numAnts, numTx, numSub int) (*Streamer, error) {
	if cfg.Core.Array == nil {
		return nil, fmt.Errorf("core: StreamConfig.Core.Array is required")
	}
	if rate <= 0 {
		return nil, fmt.Errorf("core: stream rate must be positive, got %v", rate)
	}
	if numAnts <= 0 || numTx <= 0 || numSub <= 0 {
		return nil, fmt.Errorf("core: stream shape (%d antennas, %d tx, %d tones) must be positive",
			numAnts, numTx, numSub)
	}
	if cfg.Core.Array.NumAntennas() != numAnts {
		return nil, fmt.Errorf("core: array has %d antennas but stream has %d",
			cfg.Core.Array.NumAntennas(), numAnts)
	}
	if cfg.SpanSeconds <= 0 {
		cfg.SpanSeconds = 4
	}
	if cfg.HopSeconds <= 0 {
		cfg.HopSeconds = 0.5
	}
	if cfg.DeadMissFrac <= 0 || cfg.DeadMissFrac > 1 {
		cfg.DeadMissFrac = 0.9
	}
	if cfg.DeadEnergyFrac <= 0 {
		cfg.DeadEnergyFrac = 0.02
	}
	if cfg.DegradedMissFrac <= 0 {
		cfg.DegradedMissFrac = 1.0 / 3
	}
	w := cfg.Core.WindowSeconds
	if w <= 0 {
		w = 0.5
	}
	// Pin the defaulted window so the streamer, the per-hop analysis and
	// the incremental engine all agree on W.
	cfg.Core.WindowSeconds = w
	if cfg.SpanSeconds < 3*w {
		cfg.SpanSeconds = 3 * w
	}
	st := &Streamer{
		cfg:       cfg,
		rate:      rate,
		numAnts:   numAnts,
		numTx:     numTx,
		numSub:    numSub,
		span:      int(cfg.SpanSeconds * rate),
		hop:       int(cfg.HopSeconds * rate),
		guard:     int(math.Ceil(w * rate)),
		wSlots:    windowSlots(w, rate),
		hopFactor: 1,
	}
	st.log = cfg.Core.logger()
	st.ob = newStreamObs(cfg.Core.Obs)
	st.trc = cfg.Core.Trace
	st.flight = cfg.Core.Flight
	st.qual = cfg.Core.Quality
	st.t0 = time.Now()
	st.lagOn = st.trc != nil || st.ob.lagH != nil
	if !cfg.Recompute {
		inc, err := trrs.NewIncrementalPrecision(rate, numAnts, numTx, st.wSlots, cfg.Core.Precision)
		if err != nil {
			return nil, err
		}
		inc.SetParallelism(cfg.Core.Parallelism)
		inc.SetKernel(cfg.Core.Kernel)
		inc.SetObs(cfg.Core.Obs)
		inc.SetTrace(cfg.Core.Trace)
		st.inc = inc
		st.incSnap = make([][][]complex128, numAnts)
		for a := range st.incSnap {
			st.incSnap[a] = make([][]complex128, numTx)
		}
		st.remapHdr = map[[2]int]*trrs.Matrix{}
	}
	st.aliveScratch = make([]int, 0, numAnts)
	st.buf = make([][][][]complex128, numAnts)
	st.missing = make([][]bool, numAnts)
	st.lastGood = make([][][]complex128, numAnts)
	for a := range st.buf {
		st.buf[a] = make([][][]complex128, numTx)
		st.lastGood[a] = make([][]complex128, numTx)
	}
	st.deadWin = int(rate)
	if st.deadWin < 20 {
		st.deadWin = 20
	}
	st.recentMiss = make([][]bool, numAnts)
	for a := range st.recentMiss {
		st.recentMiss[a] = make([]bool, st.deadWin)
	}
	st.recentCnt = make([]int, numAnts)
	st.energyEMA = make([]float64, numAnts)
	for a := range st.energyEMA {
		st.energyEMA[a] = -1 // unset
	}
	st.emaAlpha = 4 / rate
	if st.emaAlpha > 1 {
		st.emaAlpha = 1
	}
	st.dead = make([]bool, numAnts)
	return st, nil
}

// Latency returns the worst-case output latency in seconds.
func (st *Streamer) Latency() float64 {
	return (float64(st.guard) + float64(st.hop)) / st.rate
}

// Health returns a snapshot of the stream's data-quality state.
func (st *Streamer) Health() Health {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.healthLocked()
}

// healthLocked builds the Health snapshot with st.mu already held. The
// flight-recorder offer sites inside analyze and updateDeadDetection call
// this directly (calling Health there would self-deadlock).
func (st *Streamer) healthLocked() Health {
	h := Health{
		Slots:               st.samples,
		CorruptSlots:        st.corruptSlots,
		ConsecutiveFailures: st.failures,
		TotalFailures:       st.totalFails,
		LastError:           copyHealthErr(st.lastErr),
	}
	if st.samples > 0 {
		h.LossRate = float64(st.missTotal) / float64(st.samples*st.numAnts)
	}
	for a, d := range st.dead {
		if d {
			h.DeadAntennas = append(h.DeadAntennas, a)
		}
	}
	h.Fallback = len(h.DeadAntennas) > 0
	return h
}

// Push ingests one CSI snapshot with every antenna present (shape
// [ant][tx][tone]) and returns any newly finalized per-slot estimates,
// oldest first. The returned Estimate.T is the absolute time since the
// stream began. See PushMasked for the error contract.
func (st *Streamer) Push(snapshot [][][]complex128) ([]Estimate, error) {
	return st.PushMasked(snapshot, nil)
}

// PushMasked ingests one CSI snapshot with per-antenna availability:
// missing[a] marks antenna a's sample as lost or interpolated this slot,
// so the loss mask flows into the analysis instead of being fabricated as
// all-present. A missing antenna's rows may carry a caller-side
// interpolation (used as the substitute) or be nil (the last good row is
// held). Rows containing NaN/Inf or garbage amplitudes are rejected and
// treated as missing — a single NaN would otherwise poison every TRRS
// window that touches it.
//
// The snapshot is validated in full before any internal state changes, so
// a shape error never leaves a partially appended slot behind. Shape
// errors are returned as plain errors; analysis failures are returned
// wrapped in ErrAnalysis (with degraded placeholder estimates), recorded
// in Health, and leave the stream usable.
func (st *Streamer) PushMasked(snapshot [][][]complex128, missing []bool) ([]Estimate, error) {
	return st.PushMaskedCtx(context.Background(), snapshot, missing)
}

// SetHopFactor stretches (f > 1) or restores (f = 1) the analysis hop to
// f×HopSeconds — the "degrade to a coarser hop" overload response: an
// overloaded host halves a session's analysis CPU by hopping half as
// often, trading output latency for throughput while keeping the estimate
// stream contiguous. f is clamped to [1, 4] (beyond 4 the widened hop
// would outgrow the analysis span). Goroutine-safe.
func (st *Streamer) SetHopFactor(f int) {
	if f < 1 {
		f = 1
	}
	if f > 4 {
		f = 4
	}
	st.mu.Lock()
	st.hopFactor = f
	st.mu.Unlock()
}

// HopFactor returns the current hop stretch factor.
func (st *Streamer) HopFactor() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.hopFactor
}

// PushMaskedCtx is PushMasked with an analysis budget: when the snapshot
// completes a hop, the sliding-window analysis honors ctx's deadline (and
// StreamConfig.HopDeadline, whichever is sooner) at its stage boundaries,
// emitting degraded placeholders for whatever it could not resolve in
// time. ctx does not bound the ingest itself, which is O(antennas) cheap.
func (st *Streamer) PushMaskedCtx(ctx context.Context, snapshot [][][]complex128, missing []bool) ([]Estimate, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	// Phase 1: full validation, no mutation (a snapshot rejected at
	// antenna k must not have appended rows for antennas < k).
	if len(snapshot) != st.numAnts {
		return nil, fmt.Errorf("core: snapshot has %d antennas, want %d", len(snapshot), st.numAnts)
	}
	if missing != nil && len(missing) != st.numAnts {
		return nil, fmt.Errorf("core: missing mask has %d antennas, want %d", len(missing), st.numAnts)
	}
	absent := make([]bool, st.numAnts)
	corrupt := false
	for a := 0; a < st.numAnts; a++ {
		if missing != nil && missing[a] {
			absent[a] = true
			if snapshot[a] == nil {
				continue // hold-last substitution
			}
		}
		if len(snapshot[a]) != st.numTx {
			return nil, fmt.Errorf("core: snapshot antenna %d has %d tx, want %d",
				a, len(snapshot[a]), st.numTx)
		}
		for tx := 0; tx < st.numTx; tx++ {
			if len(snapshot[a][tx]) != st.numSub {
				return nil, fmt.Errorf("core: snapshot antenna %d tx %d has %d tones, want %d",
					a, tx, len(snapshot[a][tx]), st.numSub)
			}
			if !absent[a] && !csi.RowSane(snapshot[a][tx]) {
				// Corrupt sample: reject the whole antenna for this slot.
				absent[a] = true
				corrupt = true
			}
		}
	}

	// Phase 2: commit.
	ingestSpan := obs.StartSpan(st.ob.ingestH)
	slot := int64(st.samples) // absolute slot ID of this snapshot
	ingestTrace := st.trc.Start(trace.KindIngest, -1, slot)
	st.samples++
	st.ob.frames.Inc()
	corruptFlag := int64(0)
	if corrupt {
		st.corruptSlots++
		st.ob.corrupt.Inc()
		corruptFlag = 1
	}
	incSnap := st.incSnap // reused scratch; inc.Append copies the rows
	for a := 0; a < st.numAnts; a++ {
		var rows [][]complex128
		switch {
		case !absent[a]:
			rows = snapshot[a]
		case snapshot[a] != nil && len(snapshot[a]) == st.numTx && st.rowsShapedAndSane(snapshot[a]):
			// Caller-side interpolation: usable data, still flagged missing.
			rows = snapshot[a]
		default:
			rows = st.lastGood[a] // may hold nil entries before first sample
		}
		for tx := 0; tx < st.numTx; tx++ {
			row := rows[tx]
			if row == nil {
				row = make([]complex128, st.numSub) // zero row: TRRS-neutral
			}
			st.buf[a][tx] = append(st.buf[a][tx], row)
			if incSnap != nil {
				incSnap[a][tx] = row
			}
			if !absent[a] {
				st.lastGood[a][tx] = row
			}
		}
		st.missing[a] = append(st.missing[a], absent[a])
		if absent[a] {
			st.missTotal++
			st.ob.missing.Inc()
		}
	}
	absentCnt := int64(0)
	for _, m := range absent {
		if m {
			absentCnt++
		}
	}
	if st.inc != nil {
		// Mirror the exact committed rows (including substitutions) into
		// the incremental engine, so its window always equals buf.
		if err := st.inc.Append(incSnap); err != nil {
			return nil, err
		}
	}
	st.updateDeadDetection(absent, snapshot)
	ingestSpan.End()
	ingestTrace.EndArgs(absentCnt, corruptFlag)
	st.trc.Emit(trace.KindFrameIngest, -1, slot, absentCnt, corruptFlag)
	if st.lagOn {
		st.ingestNs = append(st.ingestNs, st.nowNs())
	}

	st.pending++
	if st.pending < st.hop*st.hopFactor || st.bufLen() < st.guard*2 {
		return nil, nil
	}
	st.pending = 0
	return st.analyze(false, ctx)
}

// rowsShapedAndSane reports whether a provided substitute has full shape
// and finite values.
func (st *Streamer) rowsShapedAndSane(rows [][]complex128) bool {
	for tx := 0; tx < st.numTx; tx++ {
		if len(rows[tx]) != st.numSub || !csi.RowSane(rows[tx]) {
			return false
		}
	}
	return true
}

// updateDeadDetection maintains the trailing missing-rate ring and the
// per-antenna power EMA, then applies the dead/revive hysteresis: an
// antenna is dead when nearly all its recent samples are missing (NIC
// stopped reporting) or when its power collapses relative to the other
// antennas (RF chain broke but still reports noise).
func (st *Streamer) updateDeadDetection(absent []bool, snapshot [][][]complex128) {
	for a := 0; a < st.numAnts; a++ {
		if st.recentMiss[a][st.recentIdx] {
			st.recentCnt[a]--
		}
		st.recentMiss[a][st.recentIdx] = absent[a]
		if absent[a] {
			st.recentCnt[a]++
		}
		if !absent[a] {
			var e float64
			for tx := 0; tx < st.numTx; tx++ {
				e += sigproc.Energy(snapshot[a][tx])
			}
			if st.energyEMA[a] < 0 {
				st.energyEMA[a] = e
			} else {
				st.energyEMA[a] += st.emaAlpha * (e - st.energyEMA[a])
			}
		}
	}
	st.recentIdx = (st.recentIdx + 1) % st.deadWin
	if st.recentN < st.deadWin {
		st.recentN++
	}
	if st.recentN < st.deadWin/2 {
		return // not enough history to judge
	}

	// Median power of the currently-live antennas, the reference level.
	var live []float64
	for a := 0; a < st.numAnts; a++ {
		if !st.dead[a] && st.energyEMA[a] >= 0 {
			live = append(live, st.energyEMA[a])
		}
	}
	medPower := 0.0
	if len(live) > 0 {
		medPower = sigproc.Median(live)
	}

	deadChanged := false
	for a := 0; a < st.numAnts; a++ {
		missFrac := float64(st.recentCnt[a]) / float64(st.recentN)
		starved := medPower > 0 && st.energyEMA[a] >= 0 &&
			st.energyEMA[a] < st.cfg.DeadEnergyFrac*medPower
		recovered := medPower > 0 && st.energyEMA[a] >= 5*st.cfg.DeadEnergyFrac*medPower
		if !st.dead[a] {
			if missFrac >= st.cfg.DeadMissFrac || starved {
				st.dead[a] = true
				deadChanged = true
				st.log.Warn("antenna declared dead",
					"antenna", a, "miss_frac", missFrac, "starved", starved)
				st.flight.Offer(trace.ReasonDeadAntenna, -1, st.healthLocked())
			}
		} else if missFrac < st.cfg.DeadMissFrac/2 && !starved && (recovered || medPower == 0) {
			st.dead[a] = false
			deadChanged = true
			st.log.Info("antenna revived", "antenna", a, "miss_frac", missFrac)
		}
	}
	if deadChanged && st.ob.dead != nil {
		n := 0
		for _, d := range st.dead {
			if d {
				n++
			}
		}
		st.ob.dead.Set(float64(n))
	}
}

// Flush finalizes everything buffered (end of stream). Analysis failures
// during a flush are recorded in Health (see Health.LastError) and yield
// degraded placeholder estimates, so the returned series stays contiguous.
func (st *Streamer) Flush() []Estimate {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.bufLen() == 0 {
		return nil
	}
	out, _ := st.analyze(true, context.Background())
	return out
}

func (st *Streamer) bufLen() int { return len(st.buf[0][0]) }

// nowNs is the tracing clock: the recorder's epoch when a recorder is
// wired, so lag samples share the trace's timeline, and the streamer's own
// start time otherwise (metrics-only lag instrumentation).
func (st *Streamer) nowNs() int64 {
	if st.trc != nil {
		return st.trc.Now()
	}
	return int64(time.Since(st.t0))
}

// aliveAntennas returns the indices of antennas not currently dead. The
// result aliases a per-Streamer scratch, overwritten by the next call.
func (st *Streamer) aliveAntennas() []int {
	out := st.aliveScratch[:0]
	for a := 0; a < st.numAnts; a++ {
		if !st.dead[a] {
			out = append(out, a)
		}
	}
	st.aliveScratch = out
	return out
}

// analyze reruns the batch pipeline over the buffered window and emits the
// estimates between the finalized frontier and the guard region (or the
// end, when flushing). When antennas have died it falls back to the
// surviving sub-array; when analysis is impossible or fails it emits
// degraded placeholders so the output stays contiguous, records the
// failure in Health, and returns the error wrapped in ErrAnalysis. The hop
// runs under a deadline (the sooner of cfg.HopDeadline from now and ctx's
// deadline, if either is set); a hop that exceeds it emits degraded
// placeholders for the unresolved slots instead of stalling the stream.
func (st *Streamer) analyze(flush bool, ctx context.Context) ([]Estimate, error) {
	hopSpan := obs.StartSpan(st.ob.hopH)
	defer hopSpan.End()
	n := st.bufLen()
	// Hops are numbered from 1; hop 0 is the batch pipeline's scope. The
	// hop span's args record the absolute slot window it analyzed, which
	// is what Lineage uses to attribute pre-hop frame events.
	st.hopSeq++
	hop := st.hopSeq
	winLo := int64(st.dropped)
	hopTrace := st.trc.Start(trace.KindHop, hop, winLo)
	defer hopTrace.EndArgs(winLo, winLo+int64(n))
	upTo := n - st.guard
	if flush {
		upTo = n
	}

	alive := st.aliveAntennas()
	fallback := len(alive) < st.numAnts
	if fallback {
		st.ob.fallback.Inc()
	}

	// Hop budget: the sooner of the configured per-hop deadline and the
	// caller context's deadline. Zero values leave the hop unbounded.
	var dl time.Time
	if st.cfg.HopDeadline > 0 {
		dl = time.Now().Add(st.cfg.HopDeadline)
	}
	if ctx != nil {
		if cdl, ok := ctx.Deadline(); ok && (dl.IsZero() || cdl.Before(dl)) {
			dl = cdl
		}
	}

	var res *Result
	var err error
	if len(alive) < 2 {
		err = fmt.Errorf("%w: only %d live antenna(s), need 2 for alignment", ErrAnalysis, len(alive))
	} else {
		res, err = st.analyzeAlive(alive, hop, ctx, dl)
		if err != nil {
			err = fmt.Errorf("%w: %v", ErrAnalysis, err)
		}
	}
	if res != nil && res.DeadlineExceeded {
		st.ob.deadline.Inc()
		st.log.Warn("hop deadline exceeded; emitted degraded placeholders",
			"hop", hop, "budget", st.cfg.HopDeadline)
		st.flight.Offer(trace.ReasonHopDeadline, hop, st.healthLocked())
	}
	if err != nil {
		st.failures++
		st.totalFails++
		st.lastErr = err
		st.ob.failures.Inc()
		st.log.Warn("stream analysis failed",
			"err", err, "consecutive", st.failures, "alive", len(alive))
		st.flight.Offer(trace.ReasonAnalysisFailure, hop, st.healthLocked())
	} else {
		st.failures = 0
		st.lastErr = nil
	}

	var out []Estimate
	var degCount int
	// Estimator-quality telemetry of the hop's newly finalized slots:
	// movement-indicator (κ) samples, calibration outcomes of moving
	// estimates — a moving slot whose indicator sits at or above the
	// hysteresis release level contradicts the zero-velocity evidence
	// (the static run the ZUPT extractor would trust) and counts as a
	// bad outcome — and alignment residuals of resolved slots.
	firstLocal := st.finalized - st.dropped
	release := st.cfg.Core.Movement.ReleaseThreshold
	if release < st.cfg.Core.Movement.Threshold {
		release = st.cfg.Core.Movement.Threshold
	}
	var kappaSum float64
	var kappaN, contradictions int
	dt := 1 / st.rate
	for local := firstLocal; local < upTo; local++ {
		if local < 0 {
			continue
		}
		var e Estimate
		switch {
		case res != nil && local < len(res.Estimates):
			e = res.Estimates[local]
		default:
			// Placeholder: no analysis for this slot — never fabricate
			// motion, never emit NaN speeds.
			e = Estimate{HeadingBody: math.NaN(), Degraded: true}
		}
		e.T = float64(st.dropped+local) * dt
		if fallback {
			e.Degraded = true
		}
		if st.slotMissFrac(local) >= st.cfg.DegradedMissFrac {
			e.Degraded = true
		}
		st.ob.emitted.Inc()
		var degFlag int64
		if e.Degraded {
			st.ob.degraded.Inc()
			degFlag = 1
			degCount++
		}
		if st.qual != nil && res != nil {
			if local < len(res.MovementIndicator) {
				k := res.MovementIndicator[local]
				st.qual.ObserveKappa(k)
				kappaSum += k
				kappaN++
			}
			if e.Moving {
				contra := release > 0 && local < len(res.MovementIndicator) &&
					res.MovementIndicator[local] >= release
				if contra {
					contradictions++
				}
				st.qual.ObserveOutcome(e.Confidence, !e.Degraded && !contra)
				if !e.Degraded && e.Confidence > 0 {
					st.qual.ObserveAlignResidual(1 - e.Confidence)
				}
			}
		}
		st.trc.Emit(trace.KindEstimate, hop, int64(st.dropped+local), degFlag, int64(e.Kind))
		out = append(out, e)
	}
	if st.qual != nil && res != nil {
		// Peak sharpness of segments finalized this hop (a segment is
		// observed once, when its end slot crosses the finalized frontier).
		for _, seg := range res.Segments {
			if seg.End > firstLocal && seg.End <= upTo && seg.Kind != MotionNone {
				st.qual.ObserveSharpness(seg.Confidence)
			}
		}
		if kappaN > 0 {
			// Per-hop quality event: A = ZUPT-contradiction count, B =
			// mean movement indicator of the hop's finalized slots in
			// permille.
			st.trc.Emit(trace.KindQuality, hop, winLo,
				int64(contradictions), int64(kappaSum/float64(kappaN)*1000))
		}
	}
	if upTo > st.finalized-st.dropped {
		st.finalized = st.dropped + upTo
	}
	// Ingest-to-emit lag of the newest slot this hop finalized: the
	// stream's watermark. One sample per hop keeps the histogram cheap
	// while still bounding the end-to-end latency distribution.
	if st.lagOn && len(out) > 0 {
		if local := upTo - 1; local >= 0 && local < len(st.ingestNs) {
			start := st.ingestNs[local]
			now := st.nowNs()
			lagSec := float64(now-start) / 1e9
			st.ob.lagH.Observe(lagSec)
			st.perObs.Lag.Observe(lagSec)
			st.ob.lagG.Set(lagSec)
			st.trc.EmitAt(trace.KindLag, hop, int64(st.dropped+local), 0, 0, start, now-start)
		}
	}
	if degCount > 0 {
		st.flight.Offer(trace.ReasonDegradedEstimates, hop, st.healthLocked())
	}
	// Trim the buffer to the span, but never past the finalized frontier
	// minus the guard (the next analysis still needs context).
	excess := n - st.span
	if keepFrom := st.finalized - st.dropped - 2*st.guard; excess > keepFrom {
		excess = keepFrom
	}
	if excess > 0 {
		for a := range st.buf {
			for tx := range st.buf[a] {
				st.buf[a][tx] = st.buf[a][tx][excess:]
			}
			st.missing[a] = st.missing[a][excess:]
		}
		if st.lagOn && excess <= len(st.ingestNs) {
			st.ingestNs = st.ingestNs[excess:]
		}
		st.dropped += excess
		if st.inc != nil {
			st.inc.DropFront(excess)
		}
	}
	return out, err
}

// analyzeAlive runs the batch pipeline over the buffered window restricted
// to the given live antennas, re-deriving the pair geometry from the
// surviving elements when some are dead. With the incremental engine it
// builds the pipeline from the maintained normalization and base matrices
// (only the rows invalidated since the last hop are recomputed); with
// Recompute it rebuilds everything from the raw buffer, the seed's
// reference behavior.
func (st *Streamer) analyzeAlive(alive []int, hop int64, ctx context.Context, dl time.Time) (*Result, error) {
	cfg := st.cfg.Core
	// Stamp every trace event the per-hop pipeline emits with this hop's
	// causal ID, and keep the incremental engine's row events in sync.
	cfg.traceHop = hop
	cfg.hopDeadline = dl
	cfg.hopCtx = ctx
	// Borrow hop-lifetime matrix scratch from the process-wide pool: the
	// derived (averaged, virtual-massive) matrices of this pass reuse the
	// backings a previous hop — possibly of another session — built. The
	// result retains none of them, so the scratch returns to the pool as
	// soon as the analysis is done.
	scr := getHopScratch(st.ob)
	defer putHopScratch(scr, st.ob)
	cfg.arena = &scr.arena
	if st.inc != nil {
		st.inc.SetHop(hop)
	}
	if len(alive) < st.numAnts {
		sub, err := cfg.Array.Subset(alive)
		if err != nil {
			return nil, err
		}
		cfg.Array = sub
	}
	if st.inc == nil {
		s := &csi.Series{
			Rate:    st.rate,
			NumAnts: len(alive),
			NumTx:   st.numTx,
			NumSub:  st.numSub,
			H:       make([][][][]complex128, len(alive)),
			Missing: make([][]bool, len(alive)),
		}
		for i, a := range alive {
			s.H[i] = st.buf[a]
			s.Missing[i] = st.missing[a]
		}
		return ProcessSeries(s, cfg)
	}

	cfg.applyDefaults(st.rate)
	eng, err := st.inc.EngineView(alive)
	if err != nil {
		return nil, err
	}
	// Pre-warm: refresh every pair this hop will request in one batched
	// ExtendMatrices pass, so the stale rows of all pairs are filled
	// block-major across pairs (each time block's planes read once) and
	// the per-pair baseFor lookups below hit the generation fast path.
	groups, ring := pairGeometry(cfg.Array)
	abs := st.prewarm[:0]
	for _, pr := range neededPairs(groups, ring, cfg.DisablePairAveraging) {
		abs = append(abs, trrs.PairSpec{I: alive[pr.I], J: alive[pr.J]})
	}
	st.prewarm = abs
	if _, err := st.inc.ExtendMatrices(abs); err != nil {
		return nil, err
	}
	// Base matrices come from the incrementally maintained per-pair state,
	// keyed by absolute antenna index; remap the identity so downstream
	// consumers see the same local pair indices the recompute path yields.
	var baseErr error
	baseFor := func(i, j int) *trrs.Matrix {
		m, err := st.inc.ExtendMatrix(alive[i], alive[j])
		if err != nil {
			baseErr = err
			return nil
		}
		if m.I == i && m.J == j {
			return m
		}
		// Remapped identity: reuse a cached header per local pair so the
		// steady-state fallback path does not allocate one every hop.
		hdr, ok := st.remapHdr[[2]int{i, j}]
		if !ok {
			hdr = &trrs.Matrix{}
			st.remapHdr[[2]int{i, j}] = hdr
		}
		*hdr = trrs.Matrix{I: i, J: j, W: m.W, Rate: m.Rate, Vals: m.Vals}
		return hdr
	}
	missing := make([][]bool, len(alive))
	for i, a := range alive {
		missing[i] = st.missing[a]
	}
	p, err := newPipelineFromEngine(eng, baseFor, missFracOf(missing, len(alive), st.bufLen()), cfg)
	if baseErr != nil {
		return nil, baseErr
	}
	if err != nil {
		return nil, err
	}
	return p.Process(), nil
}

// slotMissFrac returns the fraction of antennas whose sample at the given
// local slot was missing or rejected.
func (st *Streamer) slotMissFrac(local int) float64 {
	miss := 0
	for a := 0; a < st.numAnts; a++ {
		if local < len(st.missing[a]) && st.missing[a][local] {
			miss++
		}
	}
	return float64(miss) / float64(st.numAnts)
}

// StreamSeries is a convenience that replays a processed Series through a
// Streamer (testing and offline "as-if-live" analysis), feeding the
// series' Missing mask through PushMasked. Analysis failures degrade the
// affected slots instead of aborting the replay; ingest errors abort.
func StreamSeries(s *csi.Series, cfg StreamConfig) ([]Estimate, error) {
	st, err := NewStreamer(cfg, s.Rate, s.NumAnts, s.NumTx, s.NumSub)
	if err != nil {
		return nil, err
	}
	var out []Estimate
	snap := make([][][]complex128, s.NumAnts)
	miss := make([]bool, s.NumAnts)
	for a := range snap {
		snap[a] = make([][]complex128, s.NumTx)
	}
	for t := 0; t < s.NumSlots(); t++ {
		for a := 0; a < s.NumAnts; a++ {
			for tx := 0; tx < s.NumTx; tx++ {
				snap[a][tx] = s.H[a][tx][t]
			}
			miss[a] = s.Missing != nil && a < len(s.Missing) && t < len(s.Missing[a]) && s.Missing[a][t]
		}
		es, err := st.PushMasked(snap, miss)
		out = append(out, es...)
		if err != nil && !errors.Is(err, ErrAnalysis) {
			return nil, err
		}
	}
	return append(out, st.Flush()...), nil
}
