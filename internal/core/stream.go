package core

import (
	"fmt"
	"math"

	"rim/internal/csi"
)

// StreamConfig parameterizes the real-time wrapper.
type StreamConfig struct {
	// Core is the pipeline configuration.
	Core Config
	// SpanSeconds is the sliding analysis window the pipeline reruns over
	// (default 4 s). It must comfortably exceed the lag window plus the
	// longest structure of interest (a movement segment boundary).
	SpanSeconds float64
	// HopSeconds is how often the window is re-analyzed (default 0.5 s):
	// the latency/CPU trade-off. Estimates are finalized once they are
	// older than the guard region, so output latency is roughly
	// Core.WindowSeconds + HopSeconds.
	HopSeconds float64
}

// Streamer is the incremental (real-time) front end of the pipeline, the
// equivalent of the paper's §5 C++ online system: CSI snapshots are pushed
// one packet at a time and finalized per-slot estimates come back with
// bounded latency. Internally it reruns the batch pipeline over a sliding
// window — one rerun costs a few milliseconds (see
// BenchmarkComplexityFullPipeline), far below the packet budget.
type Streamer struct {
	cfg     StreamConfig
	rate    float64
	numAnts int
	numTx   int
	numSub  int

	span, hop, guard int
	// buf[ant][tx] holds the windowed snapshots.
	buf [][][][]complex128
	// dropped counts slots discarded from the front of buf.
	dropped int
	// finalized is the absolute slot index up to which estimates have
	// been emitted.
	finalized int
	// pending counts slots accumulated since the last analysis.
	pending int
}

// NewStreamer builds a streaming pipeline for CSI with the given shape.
// rate is the packet rate in Hz.
func NewStreamer(cfg StreamConfig, rate float64, numAnts, numTx, numSub int) (*Streamer, error) {
	if cfg.Core.Array == nil {
		return nil, fmt.Errorf("core: StreamConfig.Core.Array is required")
	}
	if cfg.Core.Array.NumAntennas() != numAnts {
		return nil, fmt.Errorf("core: array has %d antennas but stream has %d",
			cfg.Core.Array.NumAntennas(), numAnts)
	}
	if cfg.SpanSeconds <= 0 {
		cfg.SpanSeconds = 4
	}
	if cfg.HopSeconds <= 0 {
		cfg.HopSeconds = 0.5
	}
	w := cfg.Core.WindowSeconds
	if w <= 0 {
		w = 0.5
	}
	if cfg.SpanSeconds < 3*w {
		cfg.SpanSeconds = 3 * w
	}
	st := &Streamer{
		cfg:     cfg,
		rate:    rate,
		numAnts: numAnts,
		numTx:   numTx,
		numSub:  numSub,
		span:    int(cfg.SpanSeconds * rate),
		hop:     int(cfg.HopSeconds * rate),
		guard:   int(math.Ceil(w * rate)),
	}
	st.buf = make([][][][]complex128, numAnts)
	for a := range st.buf {
		st.buf[a] = make([][][]complex128, numTx)
	}
	return st, nil
}

// Latency returns the worst-case output latency in seconds.
func (st *Streamer) Latency() float64 {
	return (float64(st.guard) + float64(st.hop)) / st.rate
}

// Push ingests one CSI snapshot (shape [ant][tx][tone], already sanitized —
// use csi.Trace.Process or equivalent preprocessing) and returns any newly
// finalized per-slot estimates, oldest first. The returned Estimate.T is
// the absolute time since the stream began.
func (st *Streamer) Push(snapshot [][][]complex128) ([]Estimate, error) {
	if len(snapshot) != st.numAnts {
		return nil, fmt.Errorf("core: snapshot has %d antennas, want %d", len(snapshot), st.numAnts)
	}
	for a := 0; a < st.numAnts; a++ {
		if len(snapshot[a]) != st.numTx {
			return nil, fmt.Errorf("core: snapshot antenna %d has %d tx, want %d",
				a, len(snapshot[a]), st.numTx)
		}
		for tx := 0; tx < st.numTx; tx++ {
			if len(snapshot[a][tx]) != st.numSub {
				return nil, fmt.Errorf("core: snapshot antenna %d tx %d has %d tones, want %d",
					a, tx, len(snapshot[a][tx]), st.numSub)
			}
			st.buf[a][tx] = append(st.buf[a][tx], snapshot[a][tx])
		}
	}
	st.pending++
	if st.pending < st.hop || st.bufLen() < st.guard*2 {
		return nil, nil
	}
	st.pending = 0
	return st.analyze(false), nil
}

// Flush finalizes everything buffered (end of stream).
func (st *Streamer) Flush() []Estimate {
	if st.bufLen() == 0 {
		return nil
	}
	return st.analyze(true)
}

func (st *Streamer) bufLen() int { return len(st.buf[0][0]) }

// analyze reruns the batch pipeline over the buffered window and emits the
// estimates between the finalized frontier and the guard region (or the
// end, when flushing).
func (st *Streamer) analyze(flush bool) []Estimate {
	n := st.bufLen()
	s := &csi.Series{
		Rate:    st.rate,
		NumAnts: st.numAnts,
		NumTx:   st.numTx,
		NumSub:  st.numSub,
		H:       st.buf,
		Missing: make([][]bool, st.numAnts),
	}
	for a := range s.Missing {
		s.Missing[a] = make([]bool, n)
	}
	res, err := ProcessSeries(s, st.cfg.Core)
	if err != nil {
		return nil
	}
	upTo := n - st.guard
	if flush {
		upTo = n
	}
	var out []Estimate
	dt := 1 / st.rate
	for local := st.finalized - st.dropped; local < upTo; local++ {
		if local < 0 || local >= len(res.Estimates) {
			continue
		}
		e := res.Estimates[local]
		e.T = float64(st.dropped+local) * dt
		out = append(out, e)
	}
	if upTo > st.finalized-st.dropped {
		st.finalized = st.dropped + upTo
	}
	// Trim the buffer to the span, but never past the finalized frontier
	// minus the guard (the next analysis still needs context).
	excess := n - st.span
	if keepFrom := st.finalized - st.dropped - 2*st.guard; excess > keepFrom {
		excess = keepFrom
	}
	if excess > 0 {
		for a := range st.buf {
			for tx := range st.buf[a] {
				st.buf[a][tx] = st.buf[a][tx][excess:]
			}
		}
		st.dropped += excess
	}
	return out
}

// StreamSeries is a convenience that replays a processed Series through a
// Streamer (testing and offline "as-if-live" analysis).
func StreamSeries(s *csi.Series, cfg StreamConfig) ([]Estimate, error) {
	st, err := NewStreamer(cfg, s.Rate, s.NumAnts, s.NumTx, s.NumSub)
	if err != nil {
		return nil, err
	}
	var out []Estimate
	snap := make([][][]complex128, s.NumAnts)
	for a := range snap {
		snap[a] = make([][]complex128, s.NumTx)
	}
	for t := 0; t < s.NumSlots(); t++ {
		for a := 0; a < s.NumAnts; a++ {
			for tx := 0; tx < s.NumTx; tx++ {
				snap[a][tx] = s.H[a][tx][t]
			}
		}
		es, err := st.Push(snap)
		if err != nil {
			return nil, err
		}
		out = append(out, es...)
	}
	return append(out, st.Flush()...), nil
}
