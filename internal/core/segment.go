package core

import (
	"math"

	"rim/internal/align"
	"rim/internal/geom"
	"rim/internal/sigproc"
	"rim/internal/trrs"
)

// processSegment classifies and measures one movement segment, filling the
// per-slot estimates in res and returning the segment summary.
func (p *Pipeline) processSegment(start, end int, res *Result) SegmentResult {
	if rot, sr := p.tryRotation(start, end, res); rot {
		return sr
	}
	return p.translate(start, end, res)
}

// tryRotation implements the §4.4 rotation test: during an in-place
// rotation every adjacent ring pair aligns simultaneously (unlike a
// translation, which aligns only pairs parallel to the heading).
func (p *Pipeline) tryRotation(start, end int, res *Result) (bool, SegmentResult) {
	if len(p.ring) < 4 {
		return false, SegmentResult{}
	}
	// Rotation test (§4.4): during an in-place rotation EVERY adjacent
	// ring pair aligns simultaneously, and — unlike a translation, where
	// the two motion-parallel ring pairs align with opposite lag signs —
	// all of them share one consistent alignment delay (the time to
	// rotate by 2π/m). So: track every ring pair over the settled part of
	// the segment, keep those passing the post-check, and demand that at
	// least RotationMinRingFrac of the ring agrees on one lag.
	rate := p.eng.Rate()
	dt := 1 / rate
	n := end - start
	sumW := make([]float64, n)
	cntW := make([]int, n)
	r := p.cfg.Array.Radius()
	// Effective separation for rotation is the arc length between
	// adjacent ring elements: a regular m-ring subtends 2π/m per element,
	// so arc = 2πr/m (π/3·Δd for the hexagon, §4.4).
	arc := 2 * math.Pi * r / float64(len(p.ring))
	var medLags, confs []float64
	tracks := make([]*align.Track, 0, len(p.ring))
	settled := start + (end-start)/4 // skip the blind first quarter
	for _, gm := range p.ring {
		tr := p.trackMatrix(gm.m, start, end)
		conf := align.PostCheck(tr, p.cfg.PostCheck)
		if conf == 0 {
			continue
		}
		// Judge lag consistency on the settled region only.
		probe := p.trackMatrix(gm.m, settled, end)
		tracks = append(tracks, tr)
		medLags = append(medLags, probe.MedianLag())
		confs = append(confs, conf)
	}
	if len(tracks) == 0 {
		return false, SegmentResult{}
	}
	gmed := sigproc.Median(medLags)
	if math.Abs(gmed) < 2 {
		return false, SegmentResult{}
	}
	consistent := 0
	tol := math.Max(3, 0.3*math.Abs(gmed))
	keep := tracks[:0]
	var confSum float64
	for i, tr := range tracks {
		if math.Abs(medLags[i]-gmed) <= tol {
			consistent++
			keep = append(keep, tr)
			confSum += confs[i]
		}
	}
	if float64(consistent) < p.cfg.RotationMinRingFrac*float64(len(p.ring)) {
		return false, SegmentResult{}
	}
	tracks = keep
	conf := confSum / float64(consistent)
	// Blind start: no pair aligns before the body has rotated 2π/m, i.e.
	// before |gmed| slots; lags tracked there are spurious. Also reject
	// implausibly small lags anywhere (they would explode the speed).
	warm := int(math.Abs(gmed))
	minLag := math.Abs(gmed) / 2
	if minLag < 2 {
		minLag = 2
	}
	for _, tr := range tracks {
		for k, lag := range tr.Lags {
			rl := tr.Lag(k)
			if k < warm || math.Abs(rl) < minLag {
				continue
			}
			arcSpeed := arc / (math.Abs(rl) * dt)
			w := arcSpeed / r
			if lag < 0 {
				w = -w
			}
			sumW[k] += w
			cntW[k]++
		}
	}
	angVel := make([]float64, n)
	for k := range angVel {
		if cntW[k] > 0 {
			angVel[k] = sumW[k] / float64(cntW[k])
		}
	}
	angVel = sigproc.MedianFilter(angVel, 3)
	angVel = sigproc.MovingAverage(angVel, p.cfg.SpeedSmoothHalf)
	var angle float64
	for k := range angVel {
		if p.movingSoft != nil && !p.movingSoft[start+k] {
			angVel[k] = 0
		}
		angle += angVel[k] * dt
		e := &res.Estimates[start+k]
		e.Moving = true
		e.Kind = MotionRotate
		e.AngVel = angVel[k]
		e.Speed = math.Abs(angVel[k]) * r
		e.Confidence = conf
	}
	// Compensate the blind start (§5's minimum initial motion, rotation
	// form): the first alignment only happens after 2π/m of rotation.
	if angle > 0 {
		angle += 2 * math.Pi / float64(len(p.ring))
	} else if angle < 0 {
		angle -= 2 * math.Pi / float64(len(p.ring))
	}
	return true, SegmentResult{
		Start: start, End: end,
		Kind:       MotionRotate,
		Angle:      angle,
		Confidence: conf,
	}
}

// trackMatrix runs either the DP tracker or the naive argmax (ablation).
func (p *Pipeline) trackMatrix(m *trrs.Matrix, start, end int) *align.Track {
	if !p.cfg.NaivePeakPicking {
		return align.TrackPeaks(m, start, end, p.cfg.Track)
	}
	lags, vals := m.ColumnMax()
	tr := &align.Track{I: m.I, J: m.J, Start: start, End: end}
	tr.Lags = append(tr.Lags, lags[start:end]...)
	tr.Vals = append(tr.Vals, vals[start:end]...)
	for _, v := range tr.Vals {
		tr.Score += v
	}
	return tr
}

// candidate is one pair group's tracked alignment over a window.
type candidate struct {
	gm    groupMatrix
	track *align.Track
	conf  float64
}

// chooseCandidates pre-detects, tracks and post-checks every pair group
// over [w0, w1) and returns all surviving candidates keyed by group index.
func (p *Pipeline) chooseCandidates(w0, w1 int) map[int]*candidate {
	out := map[int]*candidate{}
	for gi, gm := range p.groups {
		if _, ok := align.PreDetect(gm.m, w0, w1, p.cfg.PreDetect); !ok {
			continue
		}
		tr := p.trackMatrix(gm.m, w0, w1)
		conf := align.PostCheck(tr, p.cfg.PostCheck)
		if conf == 0 {
			continue
		}
		out[gi] = &candidate{gm: gm, track: tr, conf: conf}
	}
	return out
}

// bestCandidate returns the highest-confidence candidate, or nil.
func bestCandidate(cands map[int]*candidate) (int, *candidate) {
	bi, best := -1, (*candidate)(nil)
	for gi, c := range cands {
		if best == nil || c.conf > best.conf {
			bi, best = gi, c
		}
	}
	return bi, best
}

// translate measures a linear movement segment. The segment is cut into
// heading windows; within each window the winning pair group determines the
// heading and its tracked lags determine the speed, so course changes
// (curved strokes, sideway moves) are followed without requiring a pause.
func (p *Pipeline) translate(start, end int, res *Result) SegmentResult {
	sr := SegmentResult{Start: start, End: end, Kind: MotionTranslate, HeadingBody: math.NaN()}
	rate := p.eng.Rate()
	dt := 1 / rate
	winLen := int(p.cfg.HeadingWindowSeconds * rate)
	if winLen < 4 {
		winLen = 4
	}

	type headStat struct{ dist, conf float64 }
	byHeading := map[int]*headStat{} // keyed by rounded degree
	var total float64
	var confSum, confW float64
	resolvedAny := false
	firstResolved := true

	// Pass 1: gather candidates per window and find the segment's dominant
	// group (confidence-weighted window wins). A warm-up window can
	// narrowly prefer a spurious ridge; cross-window consistency below
	// overrides it when the dominant group is also locally plausible.
	type window struct {
		w0, w1 int
		cands  map[int]*candidate
	}
	var windows []window
	domScore := map[int]float64{}
	for w0 := start; w0 < end; {
		w1 := w0 + winLen
		// Absorb a short tail into the final window.
		if w1 > end || end-w1 < winLen/2 {
			w1 = end
		}
		cands := p.chooseCandidates(w0, w1)
		windows = append(windows, window{w0: w0, w1: w1, cands: cands})
		if gi, best := bestCandidate(cands); best != nil {
			domScore[gi] += best.conf * float64(w1-w0)
		}
		w0 = w1
	}
	domGroup, domBest := -1, 0.0
	for gi, sc := range domScore {
		if sc > domBest {
			domGroup, domBest = gi, sc
		}
	}
	// Median implied speed of the dominant group's windows: the sanity
	// reference for the others.
	var domSpeeds []float64
	for _, win := range windows {
		if gi, best := bestCandidate(win.cands); best != nil && gi == domGroup {
			if l := best.track.MedianAbsLag(); l >= 1 {
				domSpeeds = append(domSpeeds, best.gm.group.Separation/(l*dt))
			}
		}
	}
	domSpeed := sigproc.Median(domSpeeds)

	for _, win := range windows {
		w0, w1 := win.w0, win.w1
		gi, best := bestCandidate(win.cands)
		if best == nil {
			// No alignment in this window (sub-minimum motion, plane
			// departure): leave those slots unresolved.
			continue
		}
		if gi != domGroup && domGroup >= 0 {
			// Consistency override: prefer the segment-dominant group
			// when it is also credible here — even if it narrowly missed
			// pre-detection in this window, a solid tracked path counts.
			dc, ok := win.cands[domGroup]
			if !ok {
				tr := p.trackMatrix(p.groups[domGroup].m, w0, w1)
				if conf := align.PostCheck(tr, p.cfg.PostCheck); conf > 0 {
					dc, ok = &candidate{gm: p.groups[domGroup], track: tr, conf: conf}, true
				}
			}
			if ok && dc.conf >= 0.6*best.conf {
				best = dc
			} else if domSpeed > 0 {
				// A window that disagrees with the dominant group AND
				// implies a wildly different speed is a spurious ridge:
				// leave it unresolved rather than corrupt the segment.
				l := best.track.MedianAbsLag()
				if l < 1 {
					continue
				}
				sp := best.gm.group.Separation / (l * dt)
				if sp > 2*domSpeed || sp < domSpeed/2 {
					continue
				}
			}
		}
		resolvedAny = true
		sep := best.gm.group.Separation
		dir := best.gm.group.Direction
		if p.cfg.ContinuousHeading {
			dir = geom.NormalizeAngle(dir + p.refineHeading(best, w0, w1))
		}
		if sr.GroupSep == 0 {
			sr.GroupSep = sep
		}
		n := w1 - w0

		// Minimum-initial-motion (§5): the follower only hits the
		// leader's first footprint after traveling Δd, so the first
		// "median |lag|" slots of the segment are blind — their tracked
		// lags are spurious. Skip them in the integral (compensated by
		// one Δd) and take no sign information from them. The magnitude
		// median (not the signed one) matters: a back-and-forth window
		// has a signed median near zero while its true delay is Δd/v.
		warm := 0
		if firstResolved {
			// Estimate the true delay from the settled second half of
			// the window: the warm-up region's spurious lags would bias
			// a whole-window median low.
			half := len(best.track.Lags) / 2
			absLags := make([]float64, 0, len(best.track.Lags)-half)
			for _, lag := range best.track.Lags[half:] {
				absLags = append(absLags, math.Abs(float64(lag)))
			}
			warm = int(sigproc.Median(absLags))
			if warm > n {
				warm = n
			}
		}

		speed := make([]float64, n)
		lagF := make([]float64, n)
		lastSpeed := 0.0
		for k, lag := range best.track.Lags {
			if rl := best.track.Lag(k); math.Abs(rl) >= 0.5 {
				lastSpeed = sep / (math.Abs(rl) * dt)
			}
			speed[k] = lastSpeed
			lagF[k] = float64(lag)
		}
		// Heading sign per slot from a median-smoothed lag: single-slot
		// tracker excursions must not flip the reported direction.
		lagSm := sigproc.MedianFilter(lagF, 7)
		headPos := make([]bool, n)
		for k := range headPos {
			kk := k
			if kk < warm {
				kk = warm
			}
			if kk >= n {
				kk = n - 1
			}
			headPos[k] = lagSm[kk] >= 0
		}
		speed = sigproc.MedianFilter(speed, 3)
		speed = sigproc.MovingAverage(speed, p.cfg.SpeedSmoothHalf)
		// Gate on the permissive movement flag: Segments bridges short
		// detector dropouts so tracking stays continuous, but a slot
		// that looks genuinely static must not accrue distance. Also
		// zero speeds wildly above the segment's dominant speed — those
		// come from spurious small lags in warm-up/turn regions.
		for k := range speed {
			if p.movingSoft != nil && !p.movingSoft[w0+k] {
				speed[k] = 0
			}
			if domSpeed > 0 && speed[k] > 1.6*domSpeed {
				speed[k] = 0
			}
			// Physical consistency: a speed above ~0.2 m/s displaces
			// the antennas by >1 cm within the fast detection lag, which
			// must visibly decorrelate the fast self-TRRS. A high
			// claimed speed with a pristine fast indicator is an
			// artifact of environmental churn, not motion.
			if p.fastInd != nil && speed[k] > 0.2 && p.fastInd[w0+k] > 0.93 {
				speed[k] = 0
			}
		}

		var winDist float64
		if firstResolved {
			winDist += sep
			firstResolved = false
		}
		for k := warm; k < n; k++ {
			winDist += speed[k] * dt
		}
		total += winDist
		confSum += best.conf * float64(n)
		confW += float64(n)

		// Per-slot outputs and per-heading distance bookkeeping.
		for k := 0; k < n; k++ {
			e := &res.Estimates[w0+k]
			e.Moving = true
			e.Kind = MotionTranslate
			e.Speed = speed[k]
			e.Confidence = best.conf
			h := dir
			if !headPos[k] {
				h = geom.NormalizeAngle(dir + math.Pi)
			}
			e.HeadingBody = h
			key := int(math.Round(geom.Deg(h)))
			st := byHeading[key]
			if st == nil {
				st = &headStat{}
				byHeading[key] = st
			}
			st.dist += speed[k] * dt
			st.conf = best.conf
		}
	}

	if !resolvedAny {
		sr.Kind = MotionNone
		return sr
	}
	// Dominant heading: the direction covering the most distance.
	bestKey, bestDist := 0, -1.0
	for k, st := range byHeading {
		if st.dist > bestDist {
			bestKey, bestDist = k, st.dist
		}
	}
	sr.Distance = total
	sr.HeadingBody = geom.NormalizeAngle(geom.Rad(float64(bestKey)))
	if confW > 0 {
		sr.Confidence = confSum / confW
	}
	sr.GroupDir = sr.HeadingBody
	return sr
}
