package core

import (
	"math"
	"testing"

	"rim/internal/array"
	"rim/internal/faults"
	"rim/internal/geom"
	"rim/internal/traj"
)

// FuzzZUPTIntervals drives ZUPT extraction over fault-injected walks: bursty
// packet loss, a dead RF chain and corrupt/NaN frames in fuzzer-chosen
// combinations. Whatever the faults do to the CSI, the pipeline must not
// panic and the extracted zero-velocity intervals must keep their contract —
// ordered, non-overlapping, minimum length, in range, confidence in [0, 1].
func FuzzZUPTIntervals(f *testing.F) {
	f.Add(int64(1), 0.0, uint8(0), int8(-1), 0.0)    // clean walk
	f.Add(int64(7), 0.3, uint8(20), int8(-1), 0.0)   // bursty loss
	f.Add(int64(3), 0.0, uint8(0), int8(1), 0.0)     // dead middle antenna
	f.Add(int64(11), 0.5, uint8(40), int8(2), 0.05)  // loss + dropout + corruption
	f.Add(int64(-4), 0.89, uint8(255), int8(0), 0.3) // near-total loss, antenna 0 dead
	f.Fuzz(func(t *testing.T, seed int64, loss float64, burst uint8, deadAnt int8, corrupt float64) {
		rate := 50.0
		arr := array.NewLinear3(spacing)
		b := traj.NewBuilder(rate, geom.Pose{Pos: geom.Vec2{X: 10, Y: 0}})
		b.Pause(0.6)
		b.MoveDir(0, 0.6, 0.4)
		b.Pause(0.6)
		tr := b.Build()

		fm := &faults.Model{Seed: seed}
		if loss > 0 && loss < 0.9 { // NaN/Inf/out-of-range fall through to no loss
			fm.Loss = faults.NewGilbertElliott(loss, float64(burst%50)+1)
		}
		if deadAnt >= 0 && int(deadAnt) < arr.NumAntennas() {
			fm.Dropouts = []faults.Dropout{{Antenna: int(deadAnt), Start: 0.8}}
		}
		if corrupt > 0 && corrupt <= 0.3 {
			fm.Corrupt = faults.Corruption{Prob: corrupt, NaN: seed%2 == 0}
		}
		series := buildFaultySeries(t, tr, arr, seed, fm)

		cfg := fastConfig(arr)
		cfg.ZUPTMinSeconds = 0.2
		res, err := ProcessSeries(series, cfg)
		if err != nil {
			// A fault combination the pipeline rejects outright is fine —
			// the property under test is "no panic, no malformed intervals".
			return
		}
		checkEstimatesSane(t, res.Estimates)
		minLen := int(cfg.ZUPTMinSeconds * rate)
		checkZUPTInvariants(t, res.ZUPTs, len(res.Estimates), minLen)
		for _, z := range res.ZUPTs {
			if math.IsNaN(z.Confidence) {
				t.Fatalf("NaN confidence: %+v", z)
			}
		}
	})
}
