package core

import (
	"math"
	"testing"

	"rim/internal/array"
	"rim/internal/geom"
	"rim/internal/traj"
)

func TestBackAndForthDistance(t *testing.T) {
	// Forward-then-backward within one trace: total distance is the sum
	// of both phases and the per-slot headings flip (Fig. 8's workload at
	// pipeline level).
	rate := 100.0
	arr := array.NewLinear3(spacing)
	tr := traj.BackAndForth(rate, geom.Vec2{X: 10, Y: 0}, 0, 0.8, 0.4)
	s := buildSeries(t, tr, arr, 19)
	res, err := ProcessSeries(s, fastConfig(arr))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Distance-1.6) > 0.25 {
		t.Errorf("round-trip distance = %v, want 1.6 ± 0.25", res.Distance)
	}
	// Both headings must appear in the per-slot estimates.
	sawFwd, sawBack := false, false
	for _, e := range res.Estimates {
		if e.Kind != MotionTranslate || math.IsNaN(e.HeadingBody) {
			continue
		}
		if geom.AbsAngleDiff(e.HeadingBody, 0) < geom.Rad(5) {
			sawFwd = true
		}
		if geom.AbsAngleDiff(e.HeadingBody, math.Pi) < geom.Rad(5) {
			sawBack = true
		}
	}
	if !sawFwd || !sawBack {
		t.Errorf("headings not both observed: fwd=%v back=%v", sawFwd, sawBack)
	}
}

func TestDownsampledSeriesProcessing(t *testing.T) {
	// The pipeline must run on a downsampled series with the lag window
	// re-derived from the new rate (Fig. 16's mechanism at unit level).
	rate := 200.0
	arr := array.NewLinear3(spacing)
	b := traj.NewBuilder(rate, geom.Pose{Pos: geom.Vec2{X: 10, Y: 0}})
	b.Pause(0.5)
	b.MoveDir(0, 1.0, 0.4)
	b.Pause(0.5)
	s := buildSeries(t, b.Build(), arr, 21)
	ds := s.Downsample(2) // 100 Hz
	res, err := ProcessSeries(ds, fastConfig(arr))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Distance-1.0) > 0.2 {
		t.Errorf("downsampled distance = %v, want 1.0 ± 0.2", res.Distance)
	}
}

func TestStaticTraceNoSegments(t *testing.T) {
	arr := array.NewLinear3(spacing)
	b := traj.NewBuilder(100, geom.Pose{Pos: geom.Vec2{X: 10, Y: 0}})
	b.Pause(2.0)
	s := buildSeries(t, b.Build(), arr, 25)
	res, err := ProcessSeries(s, fastConfig(arr))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Segments) != 0 || res.Distance != 0 || res.RotationAngle != 0 {
		t.Errorf("static trace produced motion: %+v", res.Segments)
	}
	for _, e := range res.Estimates {
		if e.Moving || e.Speed != 0 {
			t.Fatal("static slot marked moving")
		}
	}
}

func TestSplitAtInteriorIdles(t *testing.T) {
	ind := make([]float64, 100)
	for i := range ind {
		ind[i] = 0.4 // moving
	}
	// A 50-slot idle (≥ threshold) in the middle.
	for i := 40; i < 90; i++ {
		ind[i] = 0.95
	}
	segs := splitAtInteriorIdles([][2]int{{0, 100}}, ind, 0.8, 20, 5)
	if len(segs) != 2 || segs[0] != [2]int{0, 40} || segs[1] != [2]int{90, 100} {
		t.Errorf("split = %v", segs)
	}
	// A short idle (below idleLen) must NOT split.
	for i := range ind {
		ind[i] = 0.4
	}
	for i := 40; i < 50; i++ {
		ind[i] = 0.95
	}
	segs = splitAtInteriorIdles([][2]int{{0, 100}}, ind, 0.8, 20, 5)
	if len(segs) != 1 || segs[0] != [2]int{0, 100} {
		t.Errorf("short idle split: %v", segs)
	}
	// Sub-minimum fragments are dropped.
	for i := range ind {
		ind[i] = 0.95
	}
	for i := 0; i < 3; i++ {
		ind[i] = 0.4
	}
	for i := 60; i < 100; i++ {
		ind[i] = 0.4
	}
	segs = splitAtInteriorIdles([][2]int{{0, 100}}, ind, 0.8, 20, 5)
	if len(segs) != 1 || segs[0] != [2]int{60, 100} {
		t.Errorf("fragment filter: %v", segs)
	}
	// idleLen < 1 is a no-op.
	segs = splitAtInteriorIdles([][2]int{{0, 10}}, ind, 0.8, 0, 5)
	if len(segs) != 1 || segs[0] != [2]int{0, 10} {
		t.Errorf("no-op: %v", segs)
	}
}

func TestRefineHeadingDegenerate(t *testing.T) {
	// A linear array has no symmetric angular neighbors: the refinement
	// must be a no-op rather than an error.
	rate := 100.0
	arr := array.NewLinear3(spacing)
	tr := traj.Line(rate, geom.Vec2{X: 10, Y: 0}, 0, 0, 0.8, 0.4)
	s := buildSeries(t, tr, arr, 27)
	cfg := fastConfig(arr)
	cfg.ContinuousHeading = true
	res, err := ProcessSeries(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	segs := res.SegmentsOfKind(MotionTranslate)
	if len(segs) != 1 {
		t.Fatalf("segments = %+v", segs)
	}
	if math.Abs(geom.Deg(segs[0].HeadingBody)) > 5 {
		t.Errorf("linear-array refined heading = %v°", geom.Deg(segs[0].HeadingBody))
	}
}
