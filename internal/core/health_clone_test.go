package core

import (
	"errors"
	"sync"
	"testing"
)

func TestHealthCloneDetachesMutableState(t *testing.T) {
	orig := Health{
		Slots:               10,
		DeadAntennas:        []int{1, 2},
		ConsecutiveFailures: 3,
		LastError:           &healthError{msg: "boom", analysis: true},
	}
	c := orig.Clone()
	c.DeadAntennas[0] = 99
	if orig.DeadAntennas[0] != 1 {
		t.Error("mutating the clone's DeadAntennas reached the original")
	}
	if !errors.Is(c.LastError, ErrAnalysis) {
		t.Error("clone lost the ErrAnalysis classification")
	}
	if c.LastError == orig.LastError {
		t.Error("clone shares the original's error value")
	}
	var zero Health
	if z := zero.Clone(); z.DeadAntennas != nil || z.LastError != nil {
		t.Error("zero-value clone must stay zero")
	}
}

// TestHealthCloneConcurrentReaders is the race-fix regression: one
// goroutine serializes clones (the /healthz path) while another mutates
// the source under its own lock. Run under -race this fails if Clone ever
// shares mutable state.
func TestHealthCloneConcurrentReaders(t *testing.T) {
	var mu sync.Mutex
	h := Health{DeadAntennas: []int{0}}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			mu.Lock()
			h.DeadAntennas = append(h.DeadAntennas[:0], i%3)
			h.LastError = &healthError{msg: "x", analysis: i%2 == 0}
			mu.Unlock()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			mu.Lock()
			c := h.Clone()
			mu.Unlock()
			// Reads outside the lock must be safe on the clone.
			_ = len(c.DeadAntennas)
			if c.LastError != nil {
				_ = c.LastError.Error()
			}
		}
		close(stop)
	}()
	wg.Wait()
}
