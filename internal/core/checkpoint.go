package core

import (
	"errors"
	"fmt"
)

// StreamCheckpoint is a point-in-time capture of a Streamer's resumable
// state: the buffered CSI window, the loss mask, the emit frontier, the
// health counters and the dead-antenna detector. All fields are exported
// (and gob/encoding-friendly — complex128 rows included) so a host can
// serialize it with whatever framing it owns; internal/session wraps it in
// a versioned, checksummed file format.
//
// The checkpoint deliberately excludes derived state: the incremental TRRS
// engine is rebuilt on restore by replaying Buf through it, which PR 2's
// equivalence guarantee makes bit-for-bit identical to the engine that was
// running at capture time. Configuration is also excluded — the restoring
// host supplies the StreamConfig, and restore validates the checkpoint's
// shape against it.
type StreamCheckpoint struct {
	// Stream shape, used to validate the checkpoint against the restoring
	// configuration.
	Rate    float64
	NumAnts int
	NumTx   int
	NumSub  int

	// Buffered window: Buf[ant][tx][slot][tone] snapshots, the per-slot
	// loss mask, and the last accepted row per (ant, tx) for hold-last
	// substitution (entries may be nil before the first sample).
	Buf      [][][][]complex128
	Missing  [][]bool
	LastGood [][][]complex128

	// Frontier bookkeeping: slots trimmed from the front of Buf, the
	// absolute finalized-emit index, slots accumulated since the last
	// analysis, the hop stretch factor, and the causal hop sequence.
	Dropped   int
	Finalized int
	Pending   int
	HopFactor int
	HopSeq    int64

	// Health counters, with the last analysis error flattened to message
	// plus ErrAnalysis classification (same detachment as Health).
	Samples         int
	MissTotal       int
	CorruptSlots    int
	Failures        int
	TotalFails      int
	LastErr         string
	LastErrAnalysis bool

	// Dead-antenna detector: the trailing missing-flag ring, its
	// per-antenna counts, ring cursor and fill, the per-antenna power EMA
	// and the current dead flags.
	RecentMiss []bool // flattened [ant*deadWin + i]
	DeadWin    int
	RecentCnt  []int
	RecentIdx  int
	RecentN    int
	EnergyEMA  []float64
	Dead       []bool
}

// Checkpoint captures the streamer's resumable state. The outer slices are
// deep-copied so the checkpoint stays stable while the stream keeps
// ingesting; the complex128 row arrays are shared (the streamer never
// mutates a committed row), keeping a capture cheap enough to run on a
// periodic ticker. Goroutine-safe.
func (st *Streamer) Checkpoint() *StreamCheckpoint {
	st.mu.Lock()
	defer st.mu.Unlock()
	cp := &StreamCheckpoint{
		Rate:      st.rate,
		NumAnts:   st.numAnts,
		NumTx:     st.numTx,
		NumSub:    st.numSub,
		Dropped:   st.dropped,
		Finalized: st.finalized,
		Pending:   st.pending,
		HopFactor: st.hopFactor,
		HopSeq:    st.hopSeq,
		Samples:   st.samples,
		MissTotal: st.missTotal,

		CorruptSlots: st.corruptSlots,
		Failures:     st.failures,
		TotalFails:   st.totalFails,
		DeadWin:      st.deadWin,
		RecentIdx:    st.recentIdx,
		RecentN:      st.recentN,
		RecentCnt:    append([]int(nil), st.recentCnt...),
		EnergyEMA:    append([]float64(nil), st.energyEMA...),
		Dead:         append([]bool(nil), st.dead...),
	}
	if st.lastErr != nil {
		cp.LastErr = st.lastErr.Error()
		cp.LastErrAnalysis = errors.Is(st.lastErr, ErrAnalysis)
	}
	cp.Buf = make([][][][]complex128, st.numAnts)
	cp.Missing = make([][]bool, st.numAnts)
	cp.LastGood = make([][][]complex128, st.numAnts)
	cp.RecentMiss = make([]bool, st.numAnts*st.deadWin)
	for a := 0; a < st.numAnts; a++ {
		cp.Buf[a] = make([][][]complex128, st.numTx)
		cp.LastGood[a] = make([][]complex128, st.numTx)
		for tx := 0; tx < st.numTx; tx++ {
			cp.Buf[a][tx] = append([][]complex128(nil), st.buf[a][tx]...)
			cp.LastGood[a][tx] = st.lastGood[a][tx]
		}
		cp.Missing[a] = append([]bool(nil), st.missing[a]...)
		copy(cp.RecentMiss[a*st.deadWin:(a+1)*st.deadWin], st.recentMiss[a])
	}
	return cp
}

// NewStreamerFromCheckpoint rebuilds a Streamer from a checkpoint: the
// buffered window, frontier, health counters and dead-antenna detector are
// restored verbatim, and the incremental TRRS engine is reconstructed by
// replaying the buffered snapshots through it (bit-for-bit equivalent to
// the engine state at capture). The restored stream resumes exactly where
// the captured one stopped: the next PushMasked continues the same
// timeline.
//
// The checkpoint is validated in full against cfg before any state is
// built, so a corrupt or mismatched checkpoint never yields a half-restored
// stream. Ingest timestamps cannot survive a restart; when lag tracing is
// on, the buffered slots are re-stamped at restore time, so the first
// post-restore lag samples under-report by the downtime.
func NewStreamerFromCheckpoint(cfg StreamConfig, cp *StreamCheckpoint) (*Streamer, error) {
	if cp == nil {
		return nil, fmt.Errorf("core: nil checkpoint")
	}
	if err := cp.validate(); err != nil {
		return nil, err
	}
	st, err := NewStreamer(cfg, cp.Rate, cp.NumAnts, cp.NumTx, cp.NumSub)
	if err != nil {
		return nil, err
	}
	if st.deadWin != cp.DeadWin {
		return nil, fmt.Errorf("core: checkpoint dead-detection window is %d slots, config derives %d",
			cp.DeadWin, st.deadWin)
	}

	st.dropped = cp.Dropped
	st.finalized = cp.Finalized
	st.pending = cp.Pending
	st.hopFactor = cp.HopFactor
	if st.hopFactor < 1 {
		st.hopFactor = 1
	}
	st.hopSeq = cp.HopSeq
	st.samples = cp.Samples
	st.missTotal = cp.MissTotal
	st.corruptSlots = cp.CorruptSlots
	st.failures = cp.Failures
	st.totalFails = cp.TotalFails
	if cp.LastErr != "" {
		st.lastErr = &healthError{msg: cp.LastErr, analysis: cp.LastErrAnalysis}
	}
	st.recentIdx = cp.RecentIdx
	st.recentN = cp.RecentN
	copy(st.recentCnt, cp.RecentCnt)
	copy(st.energyEMA, cp.EnergyEMA)
	copy(st.dead, cp.Dead)
	for a := 0; a < cp.NumAnts; a++ {
		copy(st.recentMiss[a], cp.RecentMiss[a*cp.DeadWin:(a+1)*cp.DeadWin])
		for tx := 0; tx < cp.NumTx; tx++ {
			st.buf[a][tx] = append([][]complex128(nil), cp.Buf[a][tx]...)
			st.lastGood[a][tx] = cp.LastGood[a][tx]
		}
		st.missing[a] = append([]bool(nil), cp.Missing[a]...)
	}

	// Rebuild the incremental engine by replaying the buffered window
	// through it, slot by slot, exactly as ingest committed it.
	n := len(cp.Buf[0][0])
	if st.inc != nil {
		for s := 0; s < n; s++ {
			for a := 0; a < cp.NumAnts; a++ {
				for tx := 0; tx < cp.NumTx; tx++ {
					st.incSnap[a][tx] = st.buf[a][tx][s]
				}
			}
			if err := st.inc.Append(st.incSnap); err != nil {
				return nil, fmt.Errorf("core: checkpoint replay failed at slot %d: %w", s, err)
			}
		}
	}
	if st.lagOn {
		st.ingestNs = make([]int64, n)
		now := st.nowNs()
		for i := range st.ingestNs {
			st.ingestNs[i] = now
		}
	}
	if st.ob.dead != nil {
		nd := 0
		for _, d := range cp.Dead {
			if d {
				nd++
			}
		}
		st.ob.dead.Set(float64(nd))
	}
	return st, nil
}

// validate checks the checkpoint's internal consistency: every per-antenna
// structure present and every buffered slot fully shaped. A checkpoint
// that fails validation is rejected before any Streamer state exists.
func (cp *StreamCheckpoint) validate() error {
	if cp.Rate <= 0 || cp.NumAnts <= 0 || cp.NumTx <= 0 || cp.NumSub <= 0 {
		return fmt.Errorf("core: checkpoint shape (%v Hz, %d antennas, %d tx, %d tones) must be positive",
			cp.Rate, cp.NumAnts, cp.NumTx, cp.NumSub)
	}
	if len(cp.Buf) != cp.NumAnts || len(cp.Missing) != cp.NumAnts || len(cp.LastGood) != cp.NumAnts {
		return fmt.Errorf("core: checkpoint buffers cover %d/%d/%d antennas, want %d",
			len(cp.Buf), len(cp.Missing), len(cp.LastGood), cp.NumAnts)
	}
	if cp.DeadWin <= 0 || len(cp.RecentMiss) != cp.NumAnts*cp.DeadWin ||
		len(cp.RecentCnt) != cp.NumAnts || len(cp.EnergyEMA) != cp.NumAnts || len(cp.Dead) != cp.NumAnts {
		return fmt.Errorf("core: checkpoint dead-detection state inconsistent (win=%d)", cp.DeadWin)
	}
	if cp.RecentIdx < 0 || cp.RecentIdx >= cp.DeadWin || cp.RecentN < 0 || cp.RecentN > cp.DeadWin {
		return fmt.Errorf("core: checkpoint dead-detection cursor out of range")
	}
	n := -1
	for a := 0; a < cp.NumAnts; a++ {
		if len(cp.Buf[a]) != cp.NumTx || len(cp.LastGood[a]) != cp.NumTx {
			return fmt.Errorf("core: checkpoint antenna %d has %d/%d tx, want %d",
				a, len(cp.Buf[a]), len(cp.LastGood[a]), cp.NumTx)
		}
		for tx := 0; tx < cp.NumTx; tx++ {
			if n < 0 {
				n = len(cp.Buf[a][tx])
			}
			if len(cp.Buf[a][tx]) != n {
				return fmt.Errorf("core: checkpoint antenna %d tx %d holds %d slots, want %d",
					a, tx, len(cp.Buf[a][tx]), n)
			}
			for s, row := range cp.Buf[a][tx] {
				if len(row) != cp.NumSub {
					return fmt.Errorf("core: checkpoint antenna %d tx %d slot %d has %d tones, want %d",
						a, tx, s, len(row), cp.NumSub)
				}
			}
			if lg := cp.LastGood[a][tx]; lg != nil && len(lg) != cp.NumSub {
				return fmt.Errorf("core: checkpoint antenna %d tx %d last-good row has %d tones, want %d",
					a, tx, len(lg), cp.NumSub)
			}
		}
		if len(cp.Missing[a]) != n {
			return fmt.Errorf("core: checkpoint antenna %d loss mask covers %d slots, want %d",
				a, len(cp.Missing[a]), n)
		}
	}
	if cp.Samples < 0 || cp.Dropped < 0 || cp.Dropped+n != cp.Samples {
		return fmt.Errorf("core: checkpoint frontier inconsistent: %d dropped + %d buffered != %d ingested",
			cp.Dropped, n, cp.Samples)
	}
	return nil
}
