package core

import (
	"errors"
	"testing"

	"rim/internal/array"
	"rim/internal/csi"
	"rim/internal/geom"
	"rim/internal/obs"
	"rim/internal/rf"
	"rim/internal/traj"
)

// benchStreamSeries builds a 4 s stop-and-go walk for streaming benchmarks.
func benchStreamSeries(b *testing.B) *csi.Series {
	b.Helper()
	arr := array.NewLinear3(0.029)
	bld := traj.NewBuilder(100, geom.Pose{Pos: geom.Vec2{X: 10, Y: 0}})
	bld.Pause(1)
	bld.MoveDir(0, 2, 0.4)
	bld.Pause(1)
	env := rf.NewEnvironment(rf.FastConfig(), geom.Vec2{}, geom.Vec2{X: 10, Y: 0}, nil)
	s, err := csi.Collect(env, arr, bld.Build(), csi.RealisticReceiver(17)).Process(true)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func benchReplay(b *testing.B, s *csi.Series, cfg StreamConfig) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		st, err := NewStreamer(cfg, s.Rate, s.NumAnts, s.NumTx, s.NumSub)
		if err != nil {
			b.Fatal(err)
		}
		snap := make([][][]complex128, s.NumAnts)
		for a := range snap {
			snap[a] = make([][]complex128, s.NumTx)
		}
		for ti := 0; ti < s.NumSlots(); ti++ {
			for a := 0; a < s.NumAnts; a++ {
				for tx := 0; tx < s.NumTx; tx++ {
					snap[a][tx] = s.H[a][tx][ti]
				}
			}
			if _, err := st.Push(snap); err != nil && !errors.Is(err, ErrAnalysis) {
				b.Fatal(err)
			}
		}
		st.Flush()
	}
	// Slots per second of wall time: the streaming throughput headline.
	b.ReportMetric(float64(s.NumSlots())*float64(b.N)/b.Elapsed().Seconds(), "slots/s")
}

// BenchmarkStreamerRecompute replays a walk through the seed's serial
// full-window-recompute streamer (the oracle path).
func BenchmarkStreamerRecompute(b *testing.B) {
	s := benchStreamSeries(b)
	cfg := StreamConfig{Core: DefaultConfig(array.NewLinear3(0.029)), Recompute: true}
	cfg.Core.Parallelism = 1
	benchReplay(b, s, cfg)
}

// BenchmarkStreamerIncremental replays the same walk through the parallel
// incremental engine (the default).
func BenchmarkStreamerIncremental(b *testing.B) {
	s := benchStreamSeries(b)
	cfg := StreamConfig{Core: DefaultConfig(array.NewLinear3(0.029))}
	benchReplay(b, s, cfg)
}

// BenchmarkStreamerHop is the hot-path baseline for the observability
// overhead guard (TestObsOverheadGuard at the repo root): the default
// incremental streamer with a nil registry, i.e. every instrumentation
// hook reduced to its nil check.
func BenchmarkStreamerHop(b *testing.B) {
	s := benchStreamSeries(b)
	cfg := StreamConfig{Core: DefaultConfig(array.NewLinear3(0.029))}
	benchReplay(b, s, cfg)
}

// BenchmarkStreamerHopObserved is the same replay with a live metrics
// registry attached — the cost of observability when it is switched on.
func BenchmarkStreamerHopObserved(b *testing.B) {
	s := benchStreamSeries(b)
	cfg := StreamConfig{Core: DefaultConfig(array.NewLinear3(0.029))}
	cfg.Core.Obs = obs.NewRegistry()
	benchReplay(b, s, cfg)
}
