package core

import (
	"math"
	"sync"
	"testing"

	"rim/internal/array"
	"rim/internal/faults"
	"rim/internal/geom"
	"rim/internal/traj"
)

// floatsIdentical treats two floats as equal when bitwise equal or both
// NaN (HeadingBody is NaN on non-translating slots by contract).
func floatsIdentical(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}

// requireSameEstimates asserts two estimate streams are identical in every
// field — the streaming-level golden-equivalence check.
func requireSameEstimates(t *testing.T, want, got []Estimate) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("estimate count %d, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		same := floatsIdentical(w.T, g.T) &&
			w.Moving == g.Moving &&
			w.Kind == g.Kind &&
			floatsIdentical(w.Speed, g.Speed) &&
			floatsIdentical(w.HeadingBody, g.HeadingBody) &&
			floatsIdentical(w.AngVel, g.AngVel) &&
			floatsIdentical(w.Confidence, g.Confidence) &&
			w.Degraded == g.Degraded
		if !same {
			t.Fatalf("estimate %d differs:\nrecompute oracle: %+v\nincremental:      %+v", i, w, g)
		}
	}
}

// equivStreamConfigs returns the incremental config under test and the
// serial full-recompute oracle config, identical otherwise.
func equivStreamConfigs(arr *array.Array) (incCfg, oracleCfg StreamConfig) {
	core := DefaultConfig(arr)
	core.WindowSeconds = 0.3
	core.V = 12
	incCfg = StreamConfig{Core: core, SpanSeconds: 1.5, HopSeconds: 0.25}
	oracleCfg = incCfg
	oracleCfg.Recompute = true
	oracleCfg.Core.Parallelism = 1
	return incCfg, oracleCfg
}

// TestStreamIncrementalMatchesRecomputeClean: on a clean stop-and-go walk
// the parallel incremental streamer must emit exactly the estimates of the
// serial full-recompute oracle.
func TestStreamIncrementalMatchesRecomputeClean(t *testing.T) {
	arr := array.NewLinear3(0.029)
	b := traj.NewBuilder(100, geom.Pose{Pos: geom.Vec2{X: 10, Y: 0}})
	b.Pause(0.5)
	b.MoveDir(0, 0.8, 0.4)
	b.Pause(0.5)
	s := buildFaultySeries(t, b.Build(), arr, 11, nil)
	incCfg, oracleCfg := equivStreamConfigs(arr)

	want, _ := replayStream(t, s, oracleCfg)
	got, _ := replayStream(t, s, incCfg)
	requireSameEstimates(t, want, got)
}

// TestStreamIncrementalMatchesRecomputeFaulty: same equivalence under the
// PR 1 fault model — bursty loss (Missing-masked slots), a mid-stream dead
// antenna forcing the sub-array fallback, and corrupt frames. This pins
// the incremental engine's behavior across DropFront trims, engine-view
// subsets and degraded placeholders.
func TestStreamIncrementalMatchesRecomputeFaulty(t *testing.T) {
	arr := array.NewLinear3(0.029)
	b := traj.NewBuilder(100, geom.Pose{Pos: geom.Vec2{X: 10, Y: 0}})
	b.Pause(0.5)
	b.MoveDir(0, 1.0, 0.4)
	b.Pause(0.5)
	fm := &faults.Model{
		Loss: faults.NewGilbertElliott(0.1, 5),
		Dropouts: []faults.Dropout{
			{Antenna: 2, Start: 0.9}, // permanent mid-stream chain death
		},
		Corrupt: faults.Corruption{Prob: 0.01, NaN: true},
		Seed:    41,
	}
	s := buildFaultySeries(t, b.Build(), arr, 23, fm)
	incCfg, oracleCfg := equivStreamConfigs(arr)

	want, wantHealth := replayStream(t, s, oracleCfg)
	got, gotHealth := replayStream(t, s, incCfg)
	requireSameEstimates(t, want, got)
	if wantHealth.LossRate != gotHealth.LossRate ||
		wantHealth.CorruptSlots != gotHealth.CorruptSlots ||
		len(wantHealth.DeadAntennas) != len(gotHealth.DeadAntennas) {
		t.Fatalf("health diverged:\noracle:      %+v\nincremental: %+v", wantHealth, gotHealth)
	}
}

// TestConcurrentPushAndHealth exercises the streamer's lock under the race
// detector: one goroutine pushes snapshots (triggering analyses) while
// others poll Health and Latency concurrently.
func TestConcurrentPushAndHealth(t *testing.T) {
	arr := array.NewLinear3(0.029)
	b := traj.NewBuilder(100, geom.Pose{Pos: geom.Vec2{X: 10, Y: 0}})
	b.Pause(0.3)
	b.MoveDir(0, 0.5, 0.4)
	s := buildFaultySeries(t, b.Build(), arr, 5, nil)
	incCfg, _ := equivStreamConfigs(arr)
	st, err := NewStreamer(incCfg, s.Rate, s.NumAnts, s.NumTx, s.NumSub)
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				h := st.Health()
				if h.LossRate < 0 || h.LossRate > 1 {
					t.Errorf("inconsistent health snapshot: %+v", h)
					return
				}
				_ = st.Latency()
			}
		}()
	}

	snap := make([][][]complex128, s.NumAnts)
	for a := range snap {
		snap[a] = make([][]complex128, s.NumTx)
	}
	for ti := 0; ti < s.NumSlots(); ti++ {
		for a := 0; a < s.NumAnts; a++ {
			for tx := 0; tx < s.NumTx; tx++ {
				snap[a][tx] = s.H[a][tx][ti]
			}
		}
		if _, err := st.Push(snap); err != nil {
			t.Fatal(err)
		}
	}
	st.Flush()
	close(done)
	wg.Wait()
	if got := st.Health().Slots; got != s.NumSlots() {
		t.Fatalf("ingested %d slots, want %d", got, s.NumSlots())
	}
}

// TestConcurrentPushers: two goroutines interleave Push calls on one
// streamer; the lock must serialize whole snapshots so every slot is
// ingested exactly once (values interleave arbitrarily, counts must not).
func TestConcurrentPushers(t *testing.T) {
	arr := array.NewLinear3(0.029)
	b := traj.NewBuilder(100, geom.Pose{Pos: geom.Vec2{X: 10, Y: 0}})
	b.Pause(0.6)
	s := buildFaultySeries(t, b.Build(), arr, 6, nil)
	incCfg, _ := equivStreamConfigs(arr)
	st, err := NewStreamer(incCfg, s.Rate, s.NumAnts, s.NumTx, s.NumSub)
	if err != nil {
		t.Fatal(err)
	}
	half := s.NumSlots() / 2
	push := func(from, to int) {
		snap := make([][][]complex128, s.NumAnts)
		for a := range snap {
			snap[a] = make([][]complex128, s.NumTx)
		}
		for ti := from; ti < to; ti++ {
			for a := 0; a < s.NumAnts; a++ {
				for tx := 0; tx < s.NumTx; tx++ {
					snap[a][tx] = s.H[a][tx][ti]
				}
			}
			if _, err := st.Push(snap); err != nil {
				t.Error(err)
				return
			}
		}
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); push(0, half) }()
	go func() { defer wg.Done(); push(half, s.NumSlots()) }()
	wg.Wait()
	st.Flush()
	if got := st.Health().Slots; got != s.NumSlots() {
		t.Fatalf("ingested %d slots, want %d", got, s.NumSlots())
	}
}
