package core

import (
	"rim/internal/obs/trace"
)

// Zero-velocity (ZUPT) interval extraction. RIM's §4.1 movement detector is
// a robust zero-velocity detector: the self-TRRS indicator saturates near 1
// whenever the array is static, regardless of environmental churn that
// fools accelerometer-variance detectors. Promoting the static runs to
// first-class intervals turns them into pseudo-measurements — a confirmed
// zero-velocity interval pins the speed and gyro biases of an inertial
// filter (see internal/fusion's ESKF backend and DESIGN.md "Fusion
// backends & ZUPT").

// ZUPTInterval is one confirmed zero-velocity interval over the slot range
// [Start, End).
type ZUPTInterval struct {
	// Start and End bound the interval in slots, [Start, End).
	Start, End int
	// Confidence grades the interval in [0, 1]: how decisively the movement
	// indicator sat above the release level across the interval. Static
	// slots pinned at indicator 1 score 1; slots hovering at the release
	// boundary score near 0.
	Confidence float64
}

// Seconds returns the interval duration at the given slot rate.
func (z ZUPTInterval) Seconds(rate float64) float64 {
	if rate <= 0 {
		return 0
	}
	return float64(z.End-z.Start) / rate
}

// zuptStatic reports whether slot t is zero-velocity evidence: the
// hysteresis detector holds it static, the indicator actually sits at or
// above the release level (not a mid-hysteresis flicker), and the slot is
// not data-degraded — a slot whose antennas are mostly interpolated says
// nothing about motion and must not anchor a pseudo-measurement.
func (p *Pipeline) zuptStatic(t int) bool {
	if t >= len(p.moving) || p.moving[t] {
		return false
	}
	if t < len(p.movingSoft) && p.movingSoft[t] {
		return false // indicator below the release level: ambiguous
	}
	if p.missFrac != nil && t < len(p.missFrac) && p.missFrac[t] >= degradedMissFrac {
		return false
	}
	return true
}

// extractZUPTs scans the movement flags of the last Process pass and
// returns the confirmed zero-velocity intervals of at least minLen slots,
// ordered and non-overlapping. ind is the movement indicator used for
// confidence grading; release is the hysteresis release level.
func (p *Pipeline) extractZUPTs(ind []float64, release float64, minLen int) []ZUPTInterval {
	if minLen < 1 {
		minLen = 1
	}
	var out []ZUPTInterval
	n := len(p.moving)
	for t := 0; t < n; {
		if !p.zuptStatic(t) {
			t++
			continue
		}
		start := t
		conf := 0.0
		for t < n && p.zuptStatic(t) {
			if t < len(ind) {
				conf += zuptSlotConfidence(ind[t], release)
			}
			t++
		}
		if t-start >= minLen {
			out = append(out, ZUPTInterval{
				Start:      start,
				End:        t,
				Confidence: conf / float64(t-start),
			})
		}
	}
	return out
}

// zuptSlotConfidence grades one static slot's indicator value into [0, 1]:
// 0 at the release level, 1 when the indicator saturates at 1.
func zuptSlotConfidence(ind, release float64) float64 {
	if release >= 1 {
		return 1
	}
	c := (ind - release) / (1 - release)
	if c < 0 {
		return 0
	}
	if c > 1 {
		return 1
	}
	return c
}

// ZUPTFromEstimates extracts zero-velocity intervals from an estimate
// stream: maximal runs of non-moving, non-degraded slots at least
// minSeconds long. It is the consumer-side mirror of the pipeline's
// interval emission for callers that only hold finalized estimates (the
// streaming session fuser); confidence is fixed at 1 because finalized
// static slots have already passed the hysteresis and degradation gates.
func ZUPTFromEstimates(ests []Estimate, rate, minSeconds float64) []ZUPTInterval {
	minLen := int(minSeconds * rate)
	if minLen < 1 {
		minLen = 1
	}
	var out []ZUPTInterval
	for t := 0; t < len(ests); {
		if ests[t].Moving || ests[t].Degraded {
			t++
			continue
		}
		start := t
		for t < len(ests) && !ests[t].Moving && !ests[t].Degraded {
			t++
		}
		if t-start >= minLen {
			out = append(out, ZUPTInterval{Start: start, End: t, Confidence: 1})
		}
	}
	return out
}

// emitZUPTs publishes one Process pass's intervals to the trace recorder
// and metric counters. Like rim_estimates_total, the streaming front end
// re-analyzes overlapping windows, so for streams these counters measure
// analysis work, not distinct wall-clock intervals.
func (p *Pipeline) emitZUPTs(zupts []ZUPTInterval, hop int64) {
	for _, z := range zupts {
		p.cfg.Trace.Emit(trace.KindZUPT, hop, int64(z.Start), int64(z.End), int64(z.Confidence*1000))
		p.po.zuptSlots.Add(uint64(z.End - z.Start))
	}
	p.po.zuptIntervals.Add(uint64(len(zupts)))
}
