package core

import (
	"math"
	"testing"

	"rim/internal/array"
	"rim/internal/geom"
	"rim/internal/traj"
	"rim/internal/trrs"
)

// TestFloat32ErrorBudget is the end-to-end error budget of the float32
// plane mode: on a golden 1 m walk the float32 pipeline must reproduce
// the float64 segmentation exactly and land distance and heading within
// the documented budget (DESIGN.md, "TRRS kernel" — precision error
// budget). The budget is deliberately much tighter than the pipeline's
// physical accuracy (±0.12 m against ground truth), so float32 costs a
// negligible slice of the error allowance.
func TestFloat32ErrorBudget(t *testing.T) {
	rate := 100.0
	arr := array.NewLinear3(spacing)
	for _, walk := range []struct {
		name string
		dir  float64
		dist float64
		seed int64
	}{
		{name: "east", dir: 0, dist: 1.0, seed: 42},
		{name: "west", dir: math.Pi, dist: 0.8, seed: 7},
	} {
		t.Run(walk.name, func(t *testing.T) {
			b := traj.NewBuilder(rate, geom.Pose{Pos: geom.Vec2{X: 10, Y: 0}})
			b.Pause(0.5)
			b.MoveDir(walk.dir, walk.dist, 0.4)
			b.Pause(0.5)
			s := buildSeries(t, b.Build(), arr, walk.seed)

			ref, err := ProcessSeries(s, fastConfig(arr))
			if err != nil {
				t.Fatal(err)
			}
			cfg32 := fastConfig(arr)
			cfg32.Precision = trrs.PrecisionFloat32
			got, err := ProcessSeries(s, cfg32)
			if err != nil {
				t.Fatal(err)
			}

			if len(got.Segments) != len(ref.Segments) {
				t.Fatalf("float32 segments = %d, float64 = %d", len(got.Segments), len(ref.Segments))
			}
			for i := range ref.Segments {
				r, g := ref.Segments[i], got.Segments[i]
				if g.Kind != r.Kind {
					t.Fatalf("segment %d kind = %v, float64 %v", i, g.Kind, r.Kind)
				}
				// Budget: ≤ 2 mm distance drift and ≤ 0.5° heading drift per
				// segment (measured drift is ~0; the bound leaves headroom for
				// DP tie-breaks flipping on ~1e-5-relative matrix deltas).
				if d := math.Abs(g.Distance - r.Distance); d > 2e-3 {
					t.Errorf("segment %d distance drift = %v m, budget 2e-3", i, d)
				}
				if d := math.Abs(geom.AngleDiff(g.HeadingBody, r.HeadingBody)); d > geom.Rad(0.5) {
					t.Errorf("segment %d heading drift = %v deg, budget 0.5", i, geom.Deg(d))
				}
				t.Logf("segment %d: distance drift %.2e m, heading drift %.3f deg",
					i, math.Abs(g.Distance-r.Distance),
					geom.Deg(math.Abs(geom.AngleDiff(g.HeadingBody, r.HeadingBody))))
			}
			if d := math.Abs(got.Distance - ref.Distance); d > 2e-3 {
				t.Errorf("total distance drift = %v m, budget 2e-3", d)
			}
		})
	}
}

// TestVectorKernelEndToEnd runs the golden walk with the opt-in vector
// kernel selected through core.Config: the 1e-12-relative kernel must
// leave segmentation, distance and heading indistinguishable from the
// sequential reference at pipeline scale.
func TestVectorKernelEndToEnd(t *testing.T) {
	rate := 100.0
	arr := array.NewLinear3(spacing)
	b := traj.NewBuilder(rate, geom.Pose{Pos: geom.Vec2{X: 10, Y: 0}})
	b.Pause(0.5)
	b.MoveDir(0, 1.0, 0.4)
	b.Pause(0.5)
	s := buildSeries(t, b.Build(), arr, 42)

	ref, err := ProcessSeries(s, fastConfig(arr))
	if err != nil {
		t.Fatal(err)
	}
	cfgVec := fastConfig(arr)
	cfgVec.Kernel = trrs.KernelVector
	got, err := ProcessSeries(s, cfgVec)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Segments) != len(ref.Segments) {
		t.Fatalf("vector segments = %d, sequential = %d", len(got.Segments), len(ref.Segments))
	}
	for i := range ref.Segments {
		r, g := ref.Segments[i], got.Segments[i]
		if g.Kind != r.Kind {
			t.Fatalf("segment %d kind = %v, sequential %v", i, g.Kind, r.Kind)
		}
		if d := math.Abs(g.Distance - r.Distance); d > 1e-6 {
			t.Errorf("segment %d distance drift = %v m, want ≤ 1e-6", i, d)
		}
		if d := math.Abs(geom.AngleDiff(g.HeadingBody, r.HeadingBody)); d > 1e-9 {
			t.Errorf("segment %d heading drift = %v rad, want ≤ 1e-9", i, d)
		}
	}
}

// TestFloat32Streaming pushes the golden walk through a float32
// streaming session and checks the finalized estimates against the
// float64 stream: identical emission schedule, same per-slot motion
// classification on all but a vanishing fraction of boundary slots.
func TestFloat32Streaming(t *testing.T) {
	rate := 100.0
	arr := array.NewLinear3(spacing)
	b := traj.NewBuilder(rate, geom.Pose{Pos: geom.Vec2{X: 10, Y: 0}})
	b.Pause(0.5)
	b.MoveDir(0, 1.0, 0.4)
	b.Pause(0.5)
	s := buildSeries(t, b.Build(), arr, 42)

	mk := func(prec trrs.Precision) StreamConfig {
		cfg := StreamConfig{Core: fastConfig(arr)}
		cfg.Core.Parallelism = 1
		cfg.Core.Precision = prec
		return cfg
	}
	ref, err := StreamSeries(s, mk(trrs.PrecisionFloat64))
	if err != nil {
		t.Fatal(err)
	}
	got, err := StreamSeries(s, mk(trrs.PrecisionFloat32))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ref) {
		t.Fatalf("float32 stream emitted %d estimates, float64 %d", len(got), len(ref))
	}
	mismatched := 0
	for i := range ref {
		if got[i].Moving != ref[i].Moving || got[i].Kind != ref[i].Kind {
			mismatched++
		}
	}
	if frac := float64(mismatched) / float64(len(ref)); frac > 0.02 {
		t.Errorf("per-slot classification drift on %d/%d slots (%.1f%%), budget 2%%",
			mismatched, len(ref), 100*frac)
	}
}
