package core

import (
	"math"
	"testing"

	"rim/internal/align"
	"rim/internal/array"
	"rim/internal/csi"
	"rim/internal/geom"
	"rim/internal/rf"
	"rim/internal/traj"
)

// spacing is λ/2 at 5.18 GHz.
const spacing = 0.029

func buildSeries(t *testing.T, tr *traj.Trajectory, arr *array.Array, seed int64) *csi.Series {
	t.Helper()
	cfg := rf.FastConfig()
	env := rf.NewEnvironment(cfg, geom.Vec2{}, geom.Vec2{X: 10, Y: 0}, nil)
	s, err := csi.Collect(env, arr, tr, csi.RealisticReceiver(seed)).Process(true)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// fastConfig shrinks the lag window so unit tests stay quick: test motions
// run at ≥0.3 m/s, so lags stay below 0.25 s.
func fastConfig(arr *array.Array) Config {
	cfg := DefaultConfig(arr)
	cfg.WindowSeconds = 0.3
	cfg.V = 20
	return cfg
}

func TestConfigValidation(t *testing.T) {
	if _, err := ProcessSeries(&csi.Series{}, Config{}); err == nil {
		t.Error("nil array must error")
	}
	arr := array.NewLinear3(spacing)
	tr := traj.Line(100, geom.Vec2{X: 10, Y: 0}, 0, 0, 0.3, 0.4)
	s := buildSeries(t, tr, array.NewHexagonal(spacing), 1)
	if _, err := ProcessSeries(s, Config{Array: arr}); err == nil {
		t.Error("antenna count mismatch must error")
	}
}

func TestStraightLineDistance(t *testing.T) {
	rate := 100.0
	arr := array.NewLinear3(spacing)
	b := traj.NewBuilder(rate, geom.Pose{Pos: geom.Vec2{X: 10, Y: 0}})
	b.Pause(0.5)
	b.MoveDir(0, 1.0, 0.4)
	b.Pause(0.5)
	s := buildSeries(t, b.Build(), arr, 42)
	res, err := ProcessSeries(s, fastConfig(arr))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Segments) != 1 {
		t.Fatalf("segments = %d, want 1 (%+v)", len(res.Segments), res.Segments)
	}
	seg := res.Segments[0]
	if seg.Kind != MotionTranslate {
		t.Fatalf("kind = %v", seg.Kind)
	}
	if math.Abs(seg.Distance-1.0) > 0.12 {
		t.Errorf("distance = %v, want 1.0 ± 0.12", seg.Distance)
	}
	// Heading along body +X (lag positive on the canonical +X group).
	if math.Abs(geom.AngleDiff(seg.HeadingBody, 0)) > geom.Rad(5) {
		t.Errorf("heading = %v deg, want 0", geom.Deg(seg.HeadingBody))
	}
	if res.Distance != seg.Distance {
		t.Error("total distance != segment distance")
	}
}

func TestReverseDirectionHeading(t *testing.T) {
	rate := 100.0
	arr := array.NewLinear3(spacing)
	b := traj.NewBuilder(rate, geom.Pose{Pos: geom.Vec2{X: 10.8, Y: 0}})
	b.Pause(0.4)
	b.MoveDir(math.Pi, 0.8, 0.4) // move along body −X
	b.Pause(0.4)
	s := buildSeries(t, b.Build(), arr, 7)
	res, err := ProcessSeries(s, fastConfig(arr))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Segments) != 1 || res.Segments[0].Kind != MotionTranslate {
		t.Fatalf("segments = %+v", res.Segments)
	}
	if got := res.Segments[0].HeadingBody; math.Abs(geom.AngleDiff(got, math.Pi)) > geom.Rad(5) {
		t.Errorf("heading = %v deg, want 180", geom.Deg(got))
	}
}

func TestHexagonalHeadingResolution(t *testing.T) {
	// Move along body 60°: the hexagonal array must resolve exactly that
	// discrete direction.
	rate := 100.0
	arr := array.NewHexagonal(spacing)
	b := traj.NewBuilder(rate, geom.Pose{Pos: geom.Vec2{X: 10, Y: 0}})
	b.Pause(0.4)
	b.MoveDir(geom.Rad(60), 0.7, 0.35)
	b.Pause(0.4)
	s := buildSeries(t, b.Build(), arr, 3)
	res, err := ProcessSeries(s, fastConfig(arr))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Segments) != 1 || res.Segments[0].Kind != MotionTranslate {
		t.Fatalf("segments = %+v", res.Segments)
	}
	if got := res.Segments[0].HeadingBody; math.Abs(geom.AngleDiff(got, geom.Rad(60))) > geom.Rad(6) {
		t.Errorf("heading = %v deg, want 60", geom.Deg(got))
	}
	if math.Abs(res.Segments[0].Distance-0.7) > 0.12 {
		t.Errorf("distance = %v, want 0.7", res.Segments[0].Distance)
	}
}

func TestStopAndGoSegmentation(t *testing.T) {
	rate := 100.0
	arr := array.NewLinear3(spacing)
	tr := traj.StopAndGo(rate, geom.Vec2{X: 10, Y: 0}, 0, 0.5, 0.4, 1.0, 2)
	s := buildSeries(t, tr, arr, 11)
	res, err := ProcessSeries(s, fastConfig(arr))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Segments) != 2 {
		t.Fatalf("segments = %d, want 2", len(res.Segments))
	}
	for i, seg := range res.Segments {
		if seg.Kind != MotionTranslate {
			t.Errorf("segment %d kind = %v", i, seg.Kind)
		}
		if math.Abs(seg.Distance-0.5) > 0.1 {
			t.Errorf("segment %d distance = %v, want 0.5", i, seg.Distance)
		}
	}
	if math.Abs(res.Distance-1.0) > 0.2 {
		t.Errorf("total distance = %v, want 1.0", res.Distance)
	}
}

func TestInPlaceRotationDetected(t *testing.T) {
	rate := 100.0
	arr := array.NewHexagonal(spacing)
	b := traj.NewBuilder(rate, geom.Pose{Pos: geom.Vec2{X: 10, Y: 0}})
	b.Pause(0.4)
	b.RotateInPlace(geom.Rad(180), geom.Rad(180)) // half turn in 1 s
	b.Pause(0.4)
	s := buildSeries(t, b.Build(), arr, 23)
	// Rotation aligns adjacent antennas after arc/(ω·r) = 1/3 s here, so
	// the lag window must be wider than for brisk translations.
	cfg := fastConfig(arr)
	cfg.WindowSeconds = 0.6
	res, err := ProcessSeries(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Segments) != 1 {
		t.Fatalf("segments = %+v", res.Segments)
	}
	seg := res.Segments[0]
	if seg.Kind != MotionRotate {
		t.Fatalf("kind = %v, want rotate", seg.Kind)
	}
	if seg.Angle <= 0 {
		t.Errorf("CCW rotation angle = %v deg, want positive", geom.Deg(seg.Angle))
	}
	// The paper reports ~30° median error on rotation (17.6% relative);
	// allow a generous band around 180°.
	if math.Abs(geom.Deg(seg.Angle)-180) > 60 {
		t.Errorf("angle = %v deg, want 180 ± 60", geom.Deg(seg.Angle))
	}
	if res.RotationAngle != math.Abs(seg.Angle) {
		t.Error("total rotation angle mismatch")
	}
}

func TestRotationSignCW(t *testing.T) {
	rate := 100.0
	arr := array.NewHexagonal(spacing)
	b := traj.NewBuilder(rate, geom.Pose{Pos: geom.Vec2{X: 10, Y: 0}})
	b.Pause(0.4)
	b.RotateInPlace(geom.Rad(-150), geom.Rad(180))
	b.Pause(0.4)
	s := buildSeries(t, b.Build(), arr, 29)
	cfg := fastConfig(arr)
	cfg.WindowSeconds = 0.6
	res, err := ProcessSeries(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Segments) != 1 || res.Segments[0].Kind != MotionRotate {
		t.Fatalf("segments = %+v", res.Segments)
	}
	if res.Segments[0].Angle >= 0 {
		t.Errorf("CW rotation angle = %v deg, want negative", geom.Deg(res.Segments[0].Angle))
	}
}

func TestTranslationNotMistakenForRotation(t *testing.T) {
	rate := 100.0
	arr := array.NewHexagonal(spacing)
	b := traj.NewBuilder(rate, geom.Pose{Pos: geom.Vec2{X: 10, Y: 0}})
	b.Pause(0.4)
	b.MoveDir(0, 0.6, 0.35)
	b.Pause(0.4)
	s := buildSeries(t, b.Build(), arr, 31)
	res, err := ProcessSeries(s, fastConfig(arr))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Segments) != 1 || res.Segments[0].Kind != MotionTranslate {
		t.Fatalf("translation misclassified: %+v", res.Segments)
	}
}

func TestReckonStraightLine(t *testing.T) {
	rate := 100.0
	arr := array.NewLinear3(spacing)
	b := traj.NewBuilder(rate, geom.Pose{Pos: geom.Vec2{X: 10, Y: 0}})
	b.Pause(0.4)
	b.MoveDir(0, 0.8, 0.4)
	b.Pause(0.4)
	s := buildSeries(t, b.Build(), arr, 13)
	res, err := ProcessSeries(s, fastConfig(arr))
	if err != nil {
		t.Fatal(err)
	}
	initial := geom.Pose{Pos: geom.Vec2{X: 10, Y: 0}}
	pts := res.ReckonPositions(initial)
	if len(pts) != len(res.Estimates) {
		t.Fatal("reckon length mismatch")
	}
	final := pts[len(pts)-1]
	truth := geom.Vec2{X: 10.8, Y: 0}
	// Reckoning misses the blind-start Δd (compensated only in the
	// segment summary), so allow a slightly wider band.
	if final.Dist(truth) > 0.2 {
		t.Errorf("final reckoned position %v, want %v", final, truth)
	}
}

func TestHelpers(t *testing.T) {
	r := &Result{
		Rate: 100,
		Segments: []SegmentResult{
			{Kind: MotionTranslate}, {Kind: MotionRotate}, {Kind: MotionTranslate},
		},
		Estimates: []Estimate{{Speed: 1}, {Speed: 2}},
	}
	if got := r.SegmentsOfKind(MotionTranslate); len(got) != 2 {
		t.Errorf("translate segments = %d", len(got))
	}
	if got := r.SpeedSeries(); len(got) != 2 || got[1] != 2 {
		t.Errorf("speed series = %v", got)
	}
	if MotionNone.String() != "none" || MotionTranslate.String() != "translate" ||
		MotionRotate.String() != "rotate" || MotionKind(9).String() != "unknown" {
		t.Error("MotionKind strings wrong")
	}
}

func TestGroupMatrixSelection(t *testing.T) {
	arr := array.NewHexagonal(spacing)
	tr := traj.Line(100, geom.Vec2{X: 10, Y: 0}, 0, 0, 0.3, 0.4)
	s := buildSeries(t, tr, arr, 2)
	p, err := NewPipeline(s, fastConfig(arr))
	if err != nil {
		t.Fatal(err)
	}
	_, g := p.GroupMatrix(0)
	if math.Abs(geom.AngleDiff(g.Direction, 0)) > geom.Rad(5) {
		t.Errorf("group direction = %v deg, want 0", geom.Deg(g.Direction))
	}
	if p.Window() <= 0 {
		t.Error("window not set")
	}
	if p.Engine() == nil {
		t.Error("engine not exposed")
	}
}

// TestApplyDefaultsFillsAlignConfigs pins the defaulting of the align-layer
// sub-configs: a caller that hand-rolls Config{Array: ...} (as the daemon
// factory does) must still analyze at the paper's operating point. A zero
// MovementConfig in particular has Threshold 0, which makes the movement
// trigger unreachable — every slot reads static and fusion never moves.
func TestApplyDefaultsFillsAlignConfigs(t *testing.T) {
	var cfg Config
	cfg.applyDefaults(100)
	if cfg.Movement != align.DefaultMovementConfig() {
		t.Errorf("Movement = %+v, want defaults", cfg.Movement)
	}
	if cfg.Track != align.DefaultTrackConfig() {
		t.Errorf("Track = %+v, want defaults", cfg.Track)
	}
	if cfg.PreDetect != align.DefaultPreDetectConfig() {
		t.Errorf("PreDetect = %+v, want defaults", cfg.PreDetect)
	}
	if cfg.PostCheck != align.DefaultPostCheckConfig() {
		t.Errorf("PostCheck = %+v, want defaults", cfg.PostCheck)
	}

	// Explicit settings survive: only the fully-zero structs are filled.
	tuned := Config{Movement: align.MovementConfig{Threshold: 0.7, LagSeconds: 0.05}}
	tuned.applyDefaults(100)
	if tuned.Movement.Threshold != 0.7 {
		t.Errorf("explicit Movement overwritten: %+v", tuned.Movement)
	}
}
