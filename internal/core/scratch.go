package core

import (
	"sync"

	"rim/internal/trrs"
)

// hopScratch is the hop-lifetime scratch one sliding-window analysis
// borrows: the matrix arena backing the pass's derived (averaged,
// virtual-massive) matrices. One scratch serves one hop at a time;
// concurrent hops of different streams each borrow their own.
type hopScratch struct {
	arena trrs.MatrixArena
}

// hopScratchPool shares hop scratch across every core.Streamer in the
// process: a fleet daemon runs many sessions with similar hop
// geometries, so a scratch warmed by one session's hop serves another's
// without reallocating. Deliberately no New func — a Get that misses
// returns nil and the caller allocates, which is how pool misses are
// counted (rim_scratch_pool_news_total).
var hopScratchPool sync.Pool

// getHopScratch borrows a scratch from the shared pool (allocating on a
// miss) and resets its arena, reclaiming every matrix the previous
// borrower produced.
func getHopScratch(ob streamObs) *hopScratch {
	ob.scratchGets.Inc()
	s, _ := hopScratchPool.Get().(*hopScratch)
	if s == nil {
		ob.scratchNews.Inc()
		s = &hopScratch{}
	}
	s.arena.Reset()
	return s
}

// putHopScratch returns a scratch to the shared pool and samples its
// retained backing size into the rim_scratch_pool_bytes gauge (the pool
// itself is GC-managed, so the gauge tracks the most recently returned
// scratch — a per-hop watermark, not an exact pool total).
func putHopScratch(s *hopScratch, ob streamObs) {
	s.arena.Reset()
	ob.scratchBytes.Set(float64(s.arena.Bytes()))
	hopScratchPool.Put(s)
}
