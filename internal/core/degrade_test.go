package core

import (
	"errors"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"rim/internal/array"
	"rim/internal/csi"
	"rim/internal/faults"
	"rim/internal/geom"
	"rim/internal/rf"
	"rim/internal/traj"
)

// buildFaultySeries is buildSeries with a fault model layered on top of the
// realistic receiver impairments.
func buildFaultySeries(t *testing.T, tr *traj.Trajectory, arr *array.Array, seed int64, fm *faults.Model) *csi.Series {
	t.Helper()
	cfg := rf.FastConfig()
	env := rf.NewEnvironment(cfg, geom.Vec2{}, geom.Vec2{X: 10, Y: 0}, nil)
	rcv := csi.RealisticReceiver(seed)
	rcv.Faults = fm
	s, err := csi.Collect(env, arr, tr, rcv).Process(true)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// replayStream pushes a series through a Streamer slot by slot (like
// StreamSeries) but also returns the final Health, and fails the test on any
// non-analysis error.
func replayStream(t *testing.T, s *csi.Series, cfg StreamConfig) ([]Estimate, Health) {
	t.Helper()
	st, err := NewStreamer(cfg, s.Rate, s.NumAnts, s.NumTx, s.NumSub)
	if err != nil {
		t.Fatal(err)
	}
	var out []Estimate
	snap := make([][][]complex128, s.NumAnts)
	miss := make([]bool, s.NumAnts)
	for a := range snap {
		snap[a] = make([][]complex128, s.NumTx)
	}
	for ti := 0; ti < s.NumSlots(); ti++ {
		for a := 0; a < s.NumAnts; a++ {
			for tx := 0; tx < s.NumTx; tx++ {
				snap[a][tx] = s.H[a][tx][ti]
			}
			miss[a] = s.Missing != nil && s.Missing[a][ti]
		}
		es, err := st.PushMasked(snap, miss)
		out = append(out, es...)
		if err != nil && !errors.Is(err, ErrAnalysis) {
			t.Fatalf("slot %d: non-analysis error: %v", ti, err)
		}
	}
	return append(out, st.Flush()...), st.Health()
}

// checkEstimatesSane fails on any NaN/Inf in the numeric estimate fields.
// HeadingBody is allowed to be NaN only for slots that are not clean
// translations (static slots and degraded placeholders carry no heading).
func checkEstimatesSane(t *testing.T, es []Estimate) {
	t.Helper()
	for i, e := range es {
		if math.IsNaN(e.Speed) || math.IsInf(e.Speed, 0) {
			t.Fatalf("estimate %d: Speed = %v", i, e.Speed)
		}
		if math.IsNaN(e.AngVel) || math.IsInf(e.AngVel, 0) {
			t.Fatalf("estimate %d: AngVel = %v", i, e.AngVel)
		}
		if math.IsNaN(e.Confidence) || e.Confidence < 0 || e.Confidence > 1 {
			t.Fatalf("estimate %d: Confidence = %v", i, e.Confidence)
		}
		if e.Kind == MotionTranslate && !e.Degraded && math.IsNaN(e.HeadingBody) {
			t.Fatalf("estimate %d: clean translate slot with NaN heading", i)
		}
	}
}

func streamedDistance(es []Estimate, rate float64) float64 {
	var d float64
	for _, e := range es {
		if e.Kind == MotionTranslate {
			d += e.Speed / rate
		}
	}
	return d
}

func TestStreamerShapeValidation(t *testing.T) {
	arr := array.NewLinear3(spacing)
	cfg := streamConfig(arr)
	if _, err := NewStreamer(cfg, 0, 3, 3, 30); err == nil {
		t.Error("rate 0 must error")
	}
	if _, err := NewStreamer(cfg, -100, 3, 3, 30); err == nil {
		t.Error("negative rate must error")
	}
	if _, err := NewStreamer(cfg, 100, 0, 3, 30); err == nil {
		t.Error("0 antennas must error")
	}
	if _, err := NewStreamer(cfg, 100, 3, 0, 30); err == nil {
		t.Error("0 tx must error")
	}
	if _, err := NewStreamer(cfg, 100, 3, 3, 0); err == nil {
		t.Error("0 tones must error")
	}
}

func TestPushShapeErrorIsAtomic(t *testing.T) {
	arr := array.NewLinear3(spacing)
	st, err := NewStreamer(streamConfig(arr), 100, 3, 3, 30)
	if err != nil {
		t.Fatal(err)
	}
	// Antenna 0 is well-shaped, antenna 1 has a wrong tone count: the push
	// must fail without committing antenna 0's rows.
	snap := make([][][]complex128, 3)
	for a := range snap {
		snap[a] = make([][]complex128, 3)
		for tx := range snap[a] {
			n := 30
			if a == 1 {
				n = 7
			}
			snap[a][tx] = make([]complex128, n)
		}
	}
	if _, err := st.Push(snap); err == nil {
		t.Fatal("mis-shaped snapshot must error")
	}
	if st.bufLen() != 0 || st.samples != 0 {
		t.Fatalf("rejected push left state behind: bufLen=%d samples=%d", st.bufLen(), st.samples)
	}
	if h := st.Health(); h.Slots != 0 || h.LossRate != 0 {
		t.Fatalf("rejected push counted in health: %+v", h)
	}
	// A bad missing-mask length must also be atomic.
	good := make([][][]complex128, 3)
	for a := range good {
		good[a] = make([][]complex128, 3)
		for tx := range good[a] {
			good[a][tx] = make([]complex128, 30)
		}
	}
	if _, err := st.PushMasked(good, make([]bool, 5)); err == nil {
		t.Fatal("wrong mask length must error")
	}
	if st.bufLen() != 0 {
		t.Fatal("rejected mask left state behind")
	}
	if _, err := st.Push(good); err != nil {
		t.Fatalf("well-formed push after rejections: %v", err)
	}
	if st.bufLen() != 1 {
		t.Fatalf("bufLen = %d after one good push", st.bufLen())
	}
}

func TestPushRejectsNaNAndGarbage(t *testing.T) {
	arr := array.NewLinear3(spacing)
	st, err := NewStreamer(streamConfig(arr), 100, 3, 3, 30)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	mk := func() [][][]complex128 {
		snap := make([][][]complex128, 3)
		for a := range snap {
			snap[a] = make([][]complex128, 3)
			for tx := range snap[a] {
				row := make([]complex128, 30)
				for k := range row {
					row[k] = complex(rng.NormFloat64(), rng.NormFloat64())
				}
				snap[a][tx] = row
			}
		}
		return snap
	}
	if _, err := st.Push(mk()); err != nil {
		t.Fatal(err)
	}
	// NaN frame on antenna 1: ingested without error, rejected as missing.
	bad := mk()
	bad[1][0][4] = cmplx.NaN()
	if _, err := st.Push(bad); err != nil {
		t.Fatalf("NaN snapshot must be rejected, not errored: %v", err)
	}
	// Garbage amplitude on antenna 2.
	bad = mk()
	bad[2][1][0] = complex(1e9, 0)
	if _, err := st.Push(bad); err != nil {
		t.Fatalf("garbage snapshot must be rejected, not errored: %v", err)
	}
	h := st.Health()
	if h.Slots != 3 {
		t.Fatalf("Slots = %d, want 3", h.Slots)
	}
	if h.CorruptSlots != 2 {
		t.Fatalf("CorruptSlots = %d, want 2", h.CorruptSlots)
	}
	want := 2.0 / 9.0 // 2 rejected antenna-samples out of 3 slots x 3 antennas
	if math.Abs(h.LossRate-want) > 1e-9 {
		t.Fatalf("LossRate = %v, want %v", h.LossRate, want)
	}
	// The committed buffer must contain no NaN (substitution happened).
	for a := range st.buf {
		for tx := range st.buf[a] {
			for _, row := range st.buf[a][tx] {
				if !csi.RowSane(row) {
					t.Fatal("insane row committed to the buffer")
				}
			}
		}
	}
}

func TestStreamerDeadAntennaDetection(t *testing.T) {
	// Antenna 2's RF chain is broken: its packets still arrive but carry
	// ~zero power. The streamer must flag it dead and fall back.
	arr := array.NewLinear3(spacing)
	st, err := NewStreamer(streamConfig(arr), 100, 3, 3, 30)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for ti := 0; ti < 150; ti++ {
		snap := make([][][]complex128, 3)
		for a := range snap {
			snap[a] = make([][]complex128, 3)
			amp := 1.0
			if a == 2 {
				amp = 1e-4
			}
			for tx := range snap[a] {
				row := make([]complex128, 30)
				for k := range row {
					row[k] = complex(rng.NormFloat64()*amp, rng.NormFloat64()*amp)
				}
				snap[a][tx] = row
			}
		}
		if _, err := st.PushMasked(snap, nil); err != nil && !errors.Is(err, ErrAnalysis) {
			t.Fatal(err)
		}
	}
	h := st.Health()
	if len(h.DeadAntennas) != 1 || h.DeadAntennas[0] != 2 {
		t.Fatalf("DeadAntennas = %v, want [2]", h.DeadAntennas)
	}
	if !h.Fallback {
		t.Error("Fallback must be set with a dead antenna")
	}
}

func TestStreamDegradedBurstyLossAndDeadChain(t *testing.T) {
	// The issue's acceptance scenario: a 10 m walk measured under
	// Gilbert-Elliott loss at 30% mean and one antenna dead from t=2s. The
	// stream must complete without panic, emit no NaN estimates, mark the
	// affected slots degraded, and keep the integrated distance within 3x
	// the clean-run error.
	if testing.Short() {
		t.Skip("long fault-injection scenario")
	}
	rate := 100.0
	arr := array.NewHexagonal(spacing)
	b := traj.NewBuilder(rate, geom.Pose{Pos: geom.Vec2{X: 10, Y: 0}})
	b.Pause(0.5)
	b.MoveDir(0, 10, 1.0)
	b.Pause(0.5)
	tr := b.Build()

	clean := buildFaultySeries(t, tr, arr, 42, nil)
	cfg := streamConfig(arr)
	cleanEs, cleanHealth := replayStream(t, clean, cfg)
	checkEstimatesSane(t, cleanEs)
	if len(cleanHealth.DeadAntennas) != 0 {
		t.Fatalf("clean run reports dead antennas: %v", cleanHealth.DeadAntennas)
	}
	cleanErr := math.Abs(streamedDistance(cleanEs, rate) - 10)

	fm := &faults.Model{
		Loss:     faults.NewGilbertElliott(0.3, 20),
		Dropouts: []faults.Dropout{{Antenna: 4, Start: 2}},
		Seed:     42,
	}
	if err := fm.Validate(arr.NumAntennas(), 2); err != nil {
		t.Fatal(err)
	}
	faulty := buildFaultySeries(t, tr, arr, 42, fm)
	es, h := replayStream(t, faulty, cfg)
	if len(es) != faulty.NumSlots() {
		t.Fatalf("emitted %d estimates for %d slots (stream must stay contiguous)", len(es), faulty.NumSlots())
	}
	checkEstimatesSane(t, es)

	// Loss accounting: roughly the injected 30% (both NICs lose packets).
	if h.LossRate < 0.15 || h.LossRate > 0.5 {
		t.Errorf("LossRate = %.2f, injected 0.30", h.LossRate)
	}
	// The dead chain must be detected.
	found := false
	for _, a := range h.DeadAntennas {
		if a == 4 {
			found = true
		}
	}
	if !found {
		t.Errorf("DeadAntennas = %v, want antenna 4 flagged", h.DeadAntennas)
	}
	// Slots after the chain death (plus detection lag) must be degraded.
	degradedLate := 0
	lateTotal := 0
	for _, e := range es {
		if e.T > 4 {
			lateTotal++
			if e.Degraded {
				degradedLate++
			}
		}
	}
	if lateTotal == 0 || float64(degradedLate)/float64(lateTotal) < 0.9 {
		t.Errorf("degraded %d/%d slots after t=4s (dead antenna active)", degradedLate, lateTotal)
	}
	// Bounded distance: within 3x the clean-run error (floored so a lucky
	// clean run cannot make the bound vacuous).
	faultyErr := math.Abs(streamedDistance(es, rate) - 10)
	bound := 3 * math.Max(cleanErr, 0.5)
	if faultyErr > bound {
		t.Errorf("distance error %.2f m under faults, clean %.2f m (bound %.2f m)", faultyErr, cleanErr, bound)
	}
	t.Logf("distance error: clean %.2f m, faulty %.2f m; loss %.2f; dead %v; failures %d",
		cleanErr, faultyErr, h.LossRate, h.DeadAntennas, h.TotalFailures)
}

func TestStreamInterferenceBurst(t *testing.T) {
	// A wideband interference burst crushes SNR mid-walk: the stream must
	// survive it and keep the overall distance bounded.
	rate := 100.0
	arr := array.NewLinear3(spacing)
	b := traj.NewBuilder(rate, geom.Pose{Pos: geom.Vec2{X: 10, Y: 0}})
	b.Pause(0.5)
	b.MoveDir(0, 2, 0.5)
	b.Pause(0.5)
	tr := b.Build()

	fm := &faults.Model{
		Bursts: []faults.Burst{{Start: 2, Duration: 0.5, SNRDropDB: 30}},
		Seed:   7,
	}
	s := buildFaultySeries(t, tr, arr, 7, fm)
	es, _ := replayStream(t, s, streamConfig(arr))
	if len(es) != s.NumSlots() {
		t.Fatalf("emitted %d estimates for %d slots", len(es), s.NumSlots())
	}
	checkEstimatesSane(t, es)
	d := streamedDistance(es, rate)
	if d < 0.5 || d > 4 {
		t.Errorf("distance %.2f m under a 0.5 s burst, truth 2 m", d)
	}
}
