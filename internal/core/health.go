package core

import (
	"encoding/json"
	"errors"

	"rim/internal/csi"
)

// healthError is the detached copy of an analysis error handed out by
// Streamer.Health. The live error chain held in Streamer.lastErr may wrap
// values the next analysis pass replaces; snapshotting the message and the
// ErrAnalysis classification severs that aliasing while keeping
// errors.Is(err, ErrAnalysis) working on the copy.
type healthError struct {
	msg      string
	analysis bool
}

func (e *healthError) Error() string { return e.msg }

func (e *healthError) Unwrap() error {
	if e.analysis {
		return ErrAnalysis
	}
	return nil
}

// copyHealthErr detaches err from the streamer's mutable state (nil-safe).
func copyHealthErr(err error) error {
	if err == nil {
		return nil
	}
	return &healthError{msg: err.Error(), analysis: errors.Is(err, ErrAnalysis)}
}

// Clone returns a deep copy of the snapshot: the DeadAntennas slice and
// the error value are detached, so a cached copy (a health endpoint, a
// session registry) can be read and re-handed-out concurrently however the
// original's holder mutates or republishes it. Health snapshots returned
// by Streamer.Health are already detached from the stream; Clone is for
// the second hop, where one snapshot fans out to multiple readers.
func (h Health) Clone() Health {
	c := h
	if h.DeadAntennas != nil {
		c.DeadAntennas = append([]int(nil), h.DeadAntennas...)
	}
	c.LastError = copyHealthErr(h.LastError)
	return c
}

// HealthOfSeries derives a batch-mode health surface from a collected
// series: slot count and the fraction of (antenna, slot) samples the
// receiver lost or rejected. Batch binaries without a Streamer serve this
// on /healthz so the endpoint shape is identical in both modes.
func HealthOfSeries(s *csi.Series) Health {
	h := Health{Slots: s.NumSlots()}
	miss := 0
	for a := range s.Missing {
		for _, m := range s.Missing[a] {
			if m {
				miss++
			}
		}
	}
	if h.Slots > 0 && s.NumAnts > 0 {
		h.LossRate = float64(miss) / float64(h.Slots*s.NumAnts)
	}
	return h
}

// healthJSON is the wire shape of Health: stable snake_case keys and the
// error flattened to a string plus its ErrAnalysis classification, so the
// /healthz endpoint and any remote consumer round-trip the full surface.
type healthJSON struct {
	Slots               int     `json:"slots"`
	LossRate            float64 `json:"loss_rate"`
	CorruptSlots        int     `json:"corrupt_slots"`
	DeadAntennas        []int   `json:"dead_antennas,omitempty"`
	Fallback            bool    `json:"fallback"`
	ConsecutiveFailures int     `json:"consecutive_failures"`
	TotalFailures       int     `json:"total_failures"`
	LastError           string  `json:"last_error,omitempty"`
	LastErrorAnalysis   bool    `json:"last_error_analysis,omitempty"`
}

// MarshalJSON encodes the health snapshot with the error as a string.
func (h Health) MarshalJSON() ([]byte, error) {
	j := healthJSON{
		Slots:               h.Slots,
		LossRate:            h.LossRate,
		CorruptSlots:        h.CorruptSlots,
		DeadAntennas:        h.DeadAntennas,
		Fallback:            h.Fallback,
		ConsecutiveFailures: h.ConsecutiveFailures,
		TotalFailures:       h.TotalFailures,
	}
	if h.LastError != nil {
		j.LastError = h.LastError.Error()
		j.LastErrorAnalysis = errors.Is(h.LastError, ErrAnalysis)
	}
	return json.Marshal(j)
}

// UnmarshalJSON decodes a snapshot produced by MarshalJSON; a non-empty
// last_error becomes an error value that still satisfies
// errors.Is(err, ErrAnalysis) when it was classified as one.
func (h *Health) UnmarshalJSON(data []byte) error {
	var j healthJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	*h = Health{
		Slots:               j.Slots,
		LossRate:            j.LossRate,
		CorruptSlots:        j.CorruptSlots,
		DeadAntennas:        j.DeadAntennas,
		Fallback:            j.Fallback,
		ConsecutiveFailures: j.ConsecutiveFailures,
		TotalFailures:       j.TotalFailures,
	}
	if j.LastError != "" {
		h.LastError = &healthError{msg: j.LastError, analysis: j.LastErrorAnalysis}
	}
	return nil
}
