package core

import (
	"errors"
	"math/rand"
	"testing"

	"rim/internal/array"
	"rim/internal/geom"
	"rim/internal/obs"
	"rim/internal/obs/trace"
	"rim/internal/traj"
)

// TestStreamTraceLineage drives a degraded stream (two antennas never
// deliver, so analysis fails every hop) with a recorder and flight
// recorder wired in, then verifies the causal trace end to end: ingest
// events carry absolute frame IDs, each hop span records its slot window,
// estimate events are tagged with their hop, trace.Lineage reconstructs a
// hop's frame→estimate chain, the flight recorder captured a bundle whose
// events contain that lineage, and the lag instrumentation fired.
func TestStreamTraceLineage(t *testing.T) {
	arr := array.NewLinear3(spacing)
	cfg := streamConfig(arr)
	cfg.SpanSeconds = 1
	cfg.HopSeconds = 0.1
	reg := obs.NewRegistry()
	rec := trace.NewRecorder(1 << 12)
	cfg.Core.Obs = reg
	cfg.Core.Trace = rec
	var st *Streamer
	flight := trace.NewFlight(trace.FlightConfig{
		Recorder:    rec,
		Registry:    reg,
		MinInterval: -1, // capture every offer
	})
	cfg.Core.Flight = flight
	st, err := NewStreamer(cfg, 100, 3, 3, 30)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(11))
	mk := func() [][][]complex128 {
		snap := make([][][]complex128, 3)
		for a := range snap {
			snap[a] = make([][]complex128, 3)
			for tx := range snap[a] {
				row := make([]complex128, 30)
				for k := range row {
					row[k] = complex(rng.NormFloat64(), rng.NormFloat64())
				}
				snap[a][tx] = row
			}
		}
		return snap
	}
	mask := []bool{false, true, true}
	const pushes = 200
	for i := 0; i < pushes; i++ {
		if _, err := st.PushMasked(mk(), mask); err != nil && !errors.Is(err, ErrAnalysis) {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	st.Flush()

	events := rec.Snapshot()
	var ingests, hops, estimates, lags int
	var maxHop int64
	hopWin := map[int64][2]int64{}
	for _, e := range events {
		switch e.Kind {
		case trace.KindFrameIngest:
			ingests++
			if e.Hop != -1 {
				t.Fatalf("ingest event tagged with hop %d, want -1 (pre-hop)", e.Hop)
			}
			if e.Frame < 0 || e.Frame >= pushes {
				t.Fatalf("ingest frame %d outside [0,%d)", e.Frame, pushes)
			}
		case trace.KindHop:
			hops++
			if e.Hop < 1 {
				t.Fatalf("stream hop span has hop %d, want >= 1", e.Hop)
			}
			if e.B <= e.A || e.A < 0 {
				t.Fatalf("hop %d window [%d,%d) malformed", e.Hop, e.A, e.B)
			}
			hopWin[e.Hop] = [2]int64{e.A, e.B}
			if e.Hop > maxHop {
				maxHop = e.Hop
			}
		case trace.KindEstimate:
			estimates++
			if e.Hop < 1 {
				t.Fatalf("estimate event has hop %d, want >= 1", e.Hop)
			}
			if e.A != 1 {
				t.Errorf("estimate at frame %d not degraded (analysis fails every hop)", e.Frame)
			}
		case trace.KindLag:
			lags++
			if e.Dur < 0 {
				t.Errorf("lag span with negative duration %d", e.Dur)
			}
		}
	}
	if ingests != pushes {
		t.Errorf("frame-ingest events = %d, want %d", ingests, pushes)
	}
	if hops == 0 || estimates == 0 || lags == 0 {
		t.Fatalf("missing event kinds: %d hops, %d estimates, %d lags", hops, estimates, lags)
	}

	// Lineage of the last hop: its frame events must fall inside the hop's
	// recorded slot window, and the hop's own span and estimates must be
	// included.
	lin := trace.Lineage(events, maxHop)
	if len(lin) == 0 {
		t.Fatalf("empty lineage for hop %d", maxHop)
	}
	win := hopWin[maxHop]
	var linHopSpan, linEst, linFrames bool
	for _, e := range lin {
		switch e.Kind {
		case trace.KindHop:
			linHopSpan = true
		case trace.KindEstimate:
			linEst = true
		case trace.KindFrameIngest, trace.KindIngest:
			linFrames = true
			if e.Frame < win[0] || e.Frame >= win[1] {
				t.Errorf("lineage frame %d outside hop %d window [%d,%d)",
					e.Frame, maxHop, win[0], win[1])
			}
		case trace.KindTrigger:
			// flight triggers tagged with this hop ride along; fine.
		}
		if e.Hop >= 0 && e.Hop != maxHop {
			t.Errorf("lineage contains foreign hop %d event (kind %v)", e.Hop, e.Kind)
		}
	}
	if !linHopSpan || !linEst || !linFrames {
		t.Fatalf("lineage incomplete: hop span %v, estimates %v, frames %v",
			linHopSpan, linEst, linFrames)
	}

	// The failing analyses and degraded estimates must have produced
	// postmortem bundles whose events cover the same lineage.
	if flight.Captures() == 0 {
		t.Fatal("flight recorder captured nothing despite failing hops")
	}
	pm := flight.Last()
	if pm == nil {
		t.Fatal("no last postmortem")
	}
	if pm.Reason != trace.ReasonAnalysisFailure && pm.Reason != trace.ReasonDegradedEstimates {
		t.Errorf("postmortem reason = %q", pm.Reason)
	}
	if len(pm.Events) == 0 || len(pm.Metrics) == 0 {
		t.Fatalf("postmortem bundle empty: %d events, %d metrics", len(pm.Events), len(pm.Metrics))
	}
	if bl := trace.Lineage(pm.Events, pm.Hop); pm.Hop >= 1 && len(bl) == 0 {
		t.Errorf("postmortem bundle cannot reconstruct lineage of its own hop %d", pm.Hop)
	}
	if h, ok := pm.Detail.(Health); !ok {
		t.Errorf("postmortem detail is %T, want core.Health", pm.Detail)
	} else if h.TotalFailures == 0 {
		t.Errorf("postmortem health snapshot shows no failures: %+v", h)
	}

	// Lag instrumentation: one histogram sample per analysis hop.
	var lagCount uint64
	for _, m := range reg.Snapshot() {
		if m.Name == "rim_stream_lag_seconds" {
			lagCount = m.Count
		}
	}
	if lagCount == 0 {
		t.Error("rim_stream_lag_seconds recorded no samples")
	}
}

// TestBatchTraceHopZero verifies the batch pipeline's trace scope: one hop-0
// span covering every slot, movement/align spans and segment events tagged
// hop 0, so batch and stream traces share one lineage convention.
func TestBatchTraceHopZero(t *testing.T) {
	rate := 100.0
	arr := array.NewLinear3(spacing)
	b := traj.NewBuilder(rate, geom.Pose{Pos: geom.Vec2{X: 10, Y: 0}})
	b.Pause(0.5)
	b.MoveDir(0, 1.0, 0.4)
	b.Pause(0.5)
	s := buildSeries(t, b.Build(), arr, 42)
	rec := trace.NewRecorder(1 << 12)
	cfg := fastConfig(arr)
	cfg.Trace = rec
	if _, err := ProcessSeries(s, cfg); err != nil {
		t.Fatal(err)
	}
	events := rec.Snapshot()
	var hopSpans, movement, aligns, segments int
	for _, e := range events {
		if e.Hop != 0 && e.Hop != -1 {
			t.Fatalf("batch event with hop %d (kind %v), want 0 or -1", e.Hop, e.Kind)
		}
		switch e.Kind {
		case trace.KindHop:
			hopSpans++
			if e.A != 0 || e.B != int64(s.NumSlots()) {
				t.Errorf("batch hop window [%d,%d), want [0,%d)", e.A, e.B, s.NumSlots())
			}
			if e.Dur <= 0 {
				t.Error("batch hop span has no duration")
			}
		case trace.KindMovement:
			movement++
		case trace.KindAlign:
			aligns++
		case trace.KindSegment:
			segments++
		}
	}
	if hopSpans != 1 {
		t.Fatalf("batch run emitted %d hop spans, want 1", hopSpans)
	}
	if movement == 0 || aligns == 0 || segments == 0 {
		t.Errorf("missing stage events: %d movement, %d align, %d segment",
			movement, aligns, segments)
	}
}
