package core

import (
	"context"
	"testing"
	"time"

	"rim/internal/array"
	"rim/internal/csi"
	"rim/internal/geom"
	"rim/internal/obs"
	"rim/internal/traj"
)

// pushSeries drives every slot of s through st with PushMaskedCtx and a
// final Flush, returning all estimates.
func pushSeries(t *testing.T, st *Streamer, s *csi.Series, ctx context.Context) []Estimate {
	t.Helper()
	var out []Estimate
	snap := make([][][]complex128, s.NumAnts)
	for a := range snap {
		snap[a] = make([][]complex128, s.NumTx)
	}
	for ti := 0; ti < s.NumSlots(); ti++ {
		for a := 0; a < s.NumAnts; a++ {
			for tx := 0; tx < s.NumTx; tx++ {
				snap[a][tx] = s.H[a][tx][ti]
			}
		}
		es, err := st.PushMaskedCtx(ctx, snap, nil)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, es...)
	}
	return append(out, st.Flush()...)
}

func TestHopDeadlineExpiredEmitsDegraded(t *testing.T) {
	rate := 100.0
	arr := array.NewLinear3(spacing)
	tr := traj.Line(rate, geom.Vec2{X: 10, Y: 0}, 0, 0, 0.8, 0.4)
	s := buildSeries(t, tr, arr, 11)

	reg := obs.NewRegistry()
	cfg := streamConfig(arr)
	cfg.Core.Obs = reg
	cfg.HopDeadline = time.Nanosecond // every hop is already over budget
	st, err := NewStreamer(cfg, s.Rate, s.NumAnts, s.NumTx, s.NumSub)
	if err != nil {
		t.Fatal(err)
	}
	ests := pushSeries(t, st, s, context.Background())
	if len(ests) != s.NumSlots() {
		t.Fatalf("got %d estimates, want %d (deadline must not drop slots)", len(ests), s.NumSlots())
	}
	for i, e := range ests {
		if !e.Degraded {
			t.Fatalf("estimate %d not degraded despite expired hop deadline", i)
		}
	}
	if got := reg.Counter("rim_hop_deadline_exceeded_total", "").Value(); got == 0 {
		t.Error("rim_hop_deadline_exceeded_total not incremented")
	}
}

func TestHopDeadlineGenerousIsHarmless(t *testing.T) {
	rate := 100.0
	arr := array.NewLinear3(spacing)
	tr := traj.Line(rate, geom.Vec2{X: 10, Y: 0}, 0, 0, 0.8, 0.4)
	s := buildSeries(t, tr, arr, 11)

	reg := obs.NewRegistry()
	cfg := streamConfig(arr)
	cfg.Core.Obs = reg
	cfg.HopDeadline = time.Hour
	st, err := NewStreamer(cfg, s.Rate, s.NumAnts, s.NumTx, s.NumSub)
	if err != nil {
		t.Fatal(err)
	}
	ests := pushSeries(t, st, s, context.Background())
	if len(ests) != s.NumSlots() {
		t.Fatalf("got %d estimates, want %d", len(ests), s.NumSlots())
	}
	healthy := 0
	for _, e := range ests {
		if !e.Degraded {
			healthy++
		}
	}
	if healthy == 0 {
		t.Error("a generous deadline must not degrade the stream")
	}
	if got := reg.Counter("rim_hop_deadline_exceeded_total", "").Value(); got != 0 {
		t.Errorf("counter = %d with an hour of budget", got)
	}
}

func TestPushMaskedCtxHonorsContextDeadline(t *testing.T) {
	rate := 100.0
	arr := array.NewLinear3(spacing)
	tr := traj.Line(rate, geom.Vec2{X: 10, Y: 0}, 0, 0, 0.8, 0.4)
	s := buildSeries(t, tr, arr, 11)

	reg := obs.NewRegistry()
	cfg := streamConfig(arr)
	cfg.Core.Obs = reg // HopDeadline stays zero: only the ctx bounds the hop
	st, err := NewStreamer(cfg, s.Rate, s.NumAnts, s.NumTx, s.NumSub)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	snap := make([][][]complex128, s.NumAnts)
	for a := range snap {
		snap[a] = make([][]complex128, s.NumTx)
	}
	for ti := 0; ti < s.NumSlots(); ti++ {
		for a := 0; a < s.NumAnts; a++ {
			for tx := 0; tx < s.NumTx; tx++ {
				snap[a][tx] = s.H[a][tx][ti]
			}
		}
		if _, err := st.PushMaskedCtx(ctx, snap, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Counter("rim_hop_deadline_exceeded_total", "").Value(); got == 0 {
		t.Error("expired ctx deadline must count hop overruns even with HopDeadline=0")
	}
}
