package core

import (
	"math"

	"rim/internal/geom"
)

// ReckonedPoint is one point of a dead-reckoned trajectory.
type ReckonedPoint struct {
	T    float64
	Pose geom.Pose
}

// Reckon integrates the per-slot estimates into a world-frame trajectory,
// given the initial body pose (RIM is a relative tracker: absolute position
// and orientation come from the caller, exactly as in the paper's tracking
// demos). Translation advances the position along the body-frame heading
// rotated into the world; rotation advances the body orientation.
func (r *Result) Reckon(initial geom.Pose) []ReckonedPoint {
	out := make([]ReckonedPoint, 0, len(r.Estimates))
	pose := initial
	dt := 1 / r.Rate
	for _, e := range r.Estimates {
		switch e.Kind {
		case MotionTranslate:
			if !math.IsNaN(e.HeadingBody) {
				world := pose.DirToWorld(e.HeadingBody)
				pose.Pos = pose.Pos.Add(geom.FromPolar(e.Speed*dt, world))
			}
		case MotionRotate:
			pose.Theta = geom.NormalizeAngle(pose.Theta + e.AngVel*dt)
		}
		out = append(out, ReckonedPoint{T: e.T, Pose: pose})
	}
	return out
}

// ReckonPositions is Reckon reduced to the position sequence.
func (r *Result) ReckonPositions(initial geom.Pose) []geom.Vec2 {
	pts := r.Reckon(initial)
	out := make([]geom.Vec2, len(pts))
	for i, p := range pts {
		out[i] = p.Pose.Pos
	}
	return out
}

// SegmentsOfKind filters the segment summaries by kind.
func (r *Result) SegmentsOfKind(k MotionKind) []SegmentResult {
	var out []SegmentResult
	for _, s := range r.Segments {
		if s.Kind == k {
			out = append(out, s)
		}
	}
	return out
}

// SpeedSeries returns the per-slot speed estimates.
func (r *Result) SpeedSeries() []float64 {
	out := make([]float64, len(r.Estimates))
	for i, e := range r.Estimates {
		out[i] = e.Speed
	}
	return out
}

// QualitySeries returns a per-slot reliability weight in (0,1] for fusion
// and downstream consumers: the alignment confidence where the slot is
// moving and resolved, 1 for clean static slots, and capped at 0.3 for
// degraded slots (loss bursts, dead antennas, analysis fallbacks).
func (r *Result) QualitySeries() []float64 {
	out := make([]float64, len(r.Estimates))
	for i, e := range r.Estimates {
		q := 1.0
		if e.Moving && e.Confidence > 0 {
			q = e.Confidence
		}
		if e.Degraded && q > 0.3 {
			q = 0.3
		}
		out[i] = q
	}
	return out
}

// DegradedFraction returns the fraction of slots flagged degraded.
func (r *Result) DegradedFraction() float64 {
	if len(r.Estimates) == 0 {
		return 0
	}
	n := 0
	for _, e := range r.Estimates {
		if e.Degraded {
			n++
		}
	}
	return float64(n) / float64(len(r.Estimates))
}
