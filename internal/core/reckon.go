package core

import (
	"math"

	"rim/internal/geom"
)

// ReckonedPoint is one point of a dead-reckoned trajectory.
type ReckonedPoint struct {
	T    float64
	Pose geom.Pose
}

// Reckon integrates the per-slot estimates into a world-frame trajectory,
// given the initial body pose (RIM is a relative tracker: absolute position
// and orientation come from the caller, exactly as in the paper's tracking
// demos). Translation advances the position along the body-frame heading
// rotated into the world; rotation advances the body orientation.
func (r *Result) Reckon(initial geom.Pose) []ReckonedPoint {
	out := make([]ReckonedPoint, 0, len(r.Estimates))
	pose := initial
	dt := 1 / r.Rate
	for _, e := range r.Estimates {
		switch e.Kind {
		case MotionTranslate:
			if !math.IsNaN(e.HeadingBody) {
				world := pose.DirToWorld(e.HeadingBody)
				pose.Pos = pose.Pos.Add(geom.FromPolar(e.Speed*dt, world))
			}
		case MotionRotate:
			pose.Theta = geom.NormalizeAngle(pose.Theta + e.AngVel*dt)
		}
		out = append(out, ReckonedPoint{T: e.T, Pose: pose})
	}
	return out
}

// ReckonPositions is Reckon reduced to the position sequence.
func (r *Result) ReckonPositions(initial geom.Pose) []geom.Vec2 {
	pts := r.Reckon(initial)
	out := make([]geom.Vec2, len(pts))
	for i, p := range pts {
		out[i] = p.Pose.Pos
	}
	return out
}

// SegmentsOfKind filters the segment summaries by kind.
func (r *Result) SegmentsOfKind(k MotionKind) []SegmentResult {
	var out []SegmentResult
	for _, s := range r.Segments {
		if s.Kind == k {
			out = append(out, s)
		}
	}
	return out
}

// SpeedSeries returns the per-slot speed estimates.
func (r *Result) SpeedSeries() []float64 {
	out := make([]float64, len(r.Estimates))
	for i, e := range r.Estimates {
		out[i] = e.Speed
	}
	return out
}
