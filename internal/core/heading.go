package core

import (
	"math"

	"rim/internal/geom"
	"rim/internal/sigproc"
)

// refineHeading implements the §7 "angle resolution" extension: the TRRS
// alignment peak weakens as the motion deviates from a pair group's axis,
// so comparing the winning group's alignment quality with that of its two
// angularly adjacent groups locates the true heading inside the discrete
// direction bin. Each group's quality is its (floor-normalized) TRRS at the
// lag where it would align given the winner's speed — evaluating at the
// physically expected delay keeps junk ridges out of the comparison. A
// parabola through the three qualities over axis angle gives the offset,
// clamped to half the bin.
//
// The offset is defined on the group axis (mod π); the caller applies it
// before resolving the ±π lag-sign ambiguity.
func (p *Pipeline) refineHeading(best *candidate, w0, w1 int) float64 {
	med := best.track.MedianLag()
	if math.Abs(med) < 1 {
		return 0
	}
	// Implied speed and lag sign of the winner.
	dt := 1 / p.eng.Rate()
	speed := best.gm.group.Separation / (math.Abs(med) * dt)
	sign := 1.0
	if med < 0 {
		sign = -1
	}
	dir := best.gm.group.Direction
	giMinus, giPlus, step, ok := p.neighborGroups(dir)
	if !ok {
		return 0
	}
	q0 := p.qualityAtSpeed(bestIndexOf(p, best), speed, sign, w0, w1)
	qMinus := p.qualityAtSpeed(giMinus, speed, sign, w0, w1)
	qPlus := p.qualityAtSpeed(giPlus, speed, sign, w0, w1)
	den := qMinus - 2*q0 + qPlus
	if den >= 0 {
		// The winner is not a local quality maximum over angle — the
		// neighbours carry no usable gradient.
		return 0
	}
	delta := 0.5 * (qMinus - qPlus) / den * step
	limit := step / 2
	if delta > limit {
		delta = limit
	} else if delta < -limit {
		delta = -limit
	}
	return delta
}

// bestIndexOf locates the group index of a candidate (groups are few).
func bestIndexOf(p *Pipeline, c *candidate) int {
	for gi := range p.groups {
		if p.groups[gi].m == c.gm.m {
			return gi
		}
	}
	return -1
}

// neighborGroups finds the pair groups angularly adjacent to dir, one on
// each side and symmetric in axis angle.
func (p *Pipeline) neighborGroups(dir float64) (giMinus, giPlus int, step float64, ok bool) {
	giMinus, giPlus = -1, -1
	var offMinus, offPlus float64
	for gi := range p.groups {
		g := p.groups[gi].group
		off := geom.AngleDiff(g.Direction, dir)
		// Fold to the axis (mod π).
		if off > math.Pi/2 {
			off -= math.Pi
		} else if off < -math.Pi/2 {
			off += math.Pi
		}
		if math.Abs(off) < 1e-6 {
			continue
		}
		// Prefer the angularly nearest group; among groups at the same
		// offset prefer the smallest separation — its deviation tolerance
		// arcsin(0.2λ/Δd) is the widest, so it carries gradient signal
		// furthest into the bin.
		if off < 0 {
			if giMinus < 0 || off > offMinus+1e-9 ||
				(math.Abs(off-offMinus) < 1e-9 && p.groups[gi].group.Separation < p.groups[giMinus].group.Separation) {
				giMinus, offMinus = gi, off
			}
		} else {
			if giPlus < 0 || off < offPlus-1e-9 ||
				(math.Abs(off-offPlus) < 1e-9 && p.groups[gi].group.Separation < p.groups[giPlus].group.Separation) {
				giPlus, offPlus = gi, off
			}
		}
	}
	if giMinus < 0 || giPlus < 0 {
		return 0, 0, 0, false
	}
	if math.Abs(offMinus+offPlus) > geom.Rad(5) {
		// Asymmetric bracket (irregular direction set): no refinement.
		return 0, 0, 0, false
	}
	return giMinus, giPlus, offPlus, true
}

// qualityAtSpeed returns group gi's floor-normalized mean TRRS at the lag
// its separation implies for the given speed and lag sign, over [w0, w1).
func (p *Pipeline) qualityAtSpeed(gi int, speed, sign float64, w0, w1 int) float64 {
	if gi < 0 || speed <= 0 {
		return 0
	}
	gm := p.groups[gi]
	m := gm.m
	dt := 1 / p.eng.Rate()
	lag := int(math.Round(gm.group.Separation / (speed * dt) * sign))
	if w1 > m.NumSlots() {
		w1 = m.NumSlots()
	}
	var at, floor []float64
	for t := w0; t < w1; t += 2 {
		if t < 0 {
			continue
		}
		at = append(at, m.At(t, lag))
		row := m.Vals[t]
		for c := 0; c < len(row); c += 7 {
			floor = append(floor, row[c])
		}
	}
	if len(at) == 0 {
		return 0
	}
	return sigproc.Mean(at) - sigproc.Median(floor)
}
