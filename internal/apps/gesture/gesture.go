// Package gesture implements the pointer gesture recognition of §6.3.2: a
// compact L-shaped 3-antenna unit detects short out-and-back hand strokes
// and classifies them as left/right/up/down from the aligned antenna pair
// and the alignment-lag sign pattern (Fig. 19).
package gesture

import (
	"math"

	"rim/internal/core"
	"rim/internal/csi"
	"rim/internal/geom"
	"rim/internal/traj"
)

// Detection is one recognized gesture.
type Detection struct {
	// Start and End bound the gesture in CSI slots.
	Start, End int
	// Kind is the recognized gesture.
	Kind traj.GestureKind
	// Confidence is the alignment confidence of the underlying segment.
	Confidence float64
}

// Config tunes the recognizer.
type Config struct {
	// Core is the underlying RIM pipeline configuration; gestures are
	// fast, short motions, so small lag windows work best.
	Core core.Config
	// MaxGapSeconds is the maximum idle gap between an out-stroke and a
	// return stroke that arrive as separate movement segments
	// (default 0.5 s).
	MaxGapSeconds float64
}

// DefaultConfig returns gesture-tuned settings for the given core config.
// A gesture's out-and-back strokes share one antenna pair whose alignment
// lag flips sign at the turn (Fig. 8), so the pipeline should track each
// movement segment as a single window and let the per-slot lag sign carry
// the stroke direction — fixed sub-windows would straddle the turn.
func DefaultConfig(ccfg core.Config) Config {
	ccfg.MinSegmentSeconds = 0.2
	ccfg.HeadingWindowSeconds = 30 // one window per gesture segment
	return Config{Core: ccfg, MaxGapSeconds: 0.5}
}

// headingToKind maps a body-frame heading to the nearest gesture kind.
// The pointer unit's body X axis points right and Y up.
func headingToKind(h float64) (traj.GestureKind, bool) {
	type cand struct {
		kind traj.GestureKind
		ang  float64
	}
	cands := []cand{
		{traj.GestureRight, 0},
		{traj.GestureUp, math.Pi / 2},
		{traj.GestureLeft, math.Pi},
		{traj.GestureDown, -math.Pi / 2},
	}
	best, bi := math.Inf(1), -1
	for i, c := range cands {
		if d := geom.AbsAngleDiff(h, c.ang); d < best {
			best, bi = d, i
		}
	}
	// Within 30°: the L-shape also exposes a diagonal pair whose heading
	// (±45°) must not be force-mapped onto an axis gesture.
	if bi < 0 || best > geom.Rad(30) {
		return 0, false
	}
	return cands[bi].kind, true
}

// Recognize runs the RIM pipeline on a CSI recording of the pointer unit
// and extracts gestures: each gesture is a movement along one axis whose
// axis-projected velocity flips sign exactly once (the out-and-back
// signature). The two phases may arrive as one movement segment (dwell
// bridged) or as two adjacent segments.
func Recognize(s *csi.Series, cfg Config) ([]Detection, error) {
	res, err := core.ProcessSeries(s, cfg.Core)
	if err != nil {
		return nil, err
	}
	return fromResult(res, s.Rate, cfg), nil
}

// half is a single-direction movement phase awaiting its return stroke.
type half struct {
	start, end int
	heading    float64
	conf       float64
}

// analyzeSegment projects per-slot velocity onto the segment's dominant
// axis and looks for the out-and-back signature: a contiguous positive
// phase followed by a contiguous negative phase (or vice versa) of
// comparable travel. It returns the detection, or the segment as a single
// half-stroke, or neither (unclassifiable).
func analyzeSegment(res *core.Result, seg core.SegmentResult, rate float64) (*Detection, *half) {
	if math.IsNaN(seg.HeadingBody) {
		return nil, nil
	}
	axis := seg.HeadingBody
	n := seg.End - seg.Start
	x := make([]float64, n)
	var absTotal float64
	for k := 0; k < n; k++ {
		e := res.Estimates[seg.Start+k]
		if e.Kind != core.MotionTranslate || math.IsNaN(e.HeadingBody) {
			continue
		}
		switch {
		case geom.AbsAngleDiff(e.HeadingBody, axis) < geom.Rad(30):
			x[k] = e.Speed
		case geom.AbsAngleDiff(e.HeadingBody, geom.NormalizeAngle(axis+math.Pi)) < geom.Rad(30):
			x[k] = -e.Speed
		}
		absTotal += math.Abs(x[k])
	}
	if absTotal == 0 {
		return nil, nil
	}
	prefix := make([]float64, n+1)
	for k := 0; k < n; k++ {
		prefix[k+1] = prefix[k] + x[k]
	}
	total := prefix[n]
	minPhase := int(0.15 * rate)
	bestB, bestScore := -1, 0.0
	for b := minPhase; b <= n-minPhase; b++ {
		s1 := prefix[b]
		s2 := total - prefix[b]
		if s1*s2 >= 0 {
			continue
		}
		if score := math.Abs(s1) + math.Abs(s2); score > bestScore {
			bestScore, bestB = score, b
		}
	}
	if bestB >= 0 {
		s1 := prefix[bestB]
		s2 := total - prefix[bestB]
		lo := math.Min(math.Abs(s1), math.Abs(s2))
		hi := math.Max(math.Abs(s1), math.Abs(s2))
		// A genuine out-and-back travels comparably in both phases and
		// the split explains most of the motion energy.
		if lo >= 0.25*hi && bestScore >= 0.45*absTotal {
			h := axis
			if s1 < 0 {
				h = geom.NormalizeAngle(axis + math.Pi)
			}
			if kind, ok := headingToKind(h); ok {
				return &Detection{
					Start: seg.Start, End: seg.End,
					Kind: kind, Confidence: seg.Confidence,
				}, nil
			}
			return nil, nil
		}
	}
	// Single-direction phase: half a gesture (its return stroke may be a
	// separate segment). Require the motion to be genuinely one-way —
	// a near-balanced segment that failed the flip test is an unresolved
	// wiggle and must not masquerade as a stroke.
	if math.Abs(total) < 0.5*absTotal {
		return nil, nil
	}
	h := axis
	if total < 0 {
		h = geom.NormalizeAngle(axis + math.Pi)
	}
	return nil, &half{start: seg.Start, end: seg.End, heading: h, conf: seg.Confidence}
}

func fromResult(res *core.Result, rate float64, cfg Config) []Detection {
	if cfg.MaxGapSeconds <= 0 {
		cfg.MaxGapSeconds = 0.5
	}
	var out []Detection
	var halves []half
	for _, seg := range res.SegmentsOfKind(core.MotionTranslate) {
		det, hf := analyzeSegment(res, seg, rate)
		if det != nil {
			out = append(out, *det)
		} else if hf != nil {
			halves = append(halves, *hf)
		}
	}
	// Pair an out-stroke half with the next opposite-heading half.
	maxGap := int(cfg.MaxGapSeconds * rate)
	for i := 0; i+1 < len(halves); i++ {
		a, b := halves[i], halves[i+1]
		if b.start-a.end > maxGap {
			continue
		}
		if geom.AbsAngleDiff(geom.NormalizeAngle(a.heading+math.Pi), b.heading) > geom.Rad(25) {
			continue
		}
		kind, ok := headingToKind(a.heading)
		if !ok {
			continue
		}
		out = append(out, Detection{Start: a.start, End: b.end, Kind: kind, Confidence: a.conf})
		i++ // consume the return stroke
	}
	// Restore chronological order (flip-detections and paired halves may
	// interleave).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Start < out[j-1].Start; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
