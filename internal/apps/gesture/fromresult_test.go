package gesture

import (
	"math"
	"testing"

	"rim/internal/core"
	"rim/internal/traj"
)

// synthResult builds a core.Result with translate segments whose per-slot
// estimates move at the given headings and speed.
func synthResult(rate float64, slots int, segs []core.SegmentResult, headings map[int]float64) *core.Result {
	res := &core.Result{Rate: rate}
	res.Estimates = make([]core.Estimate, slots)
	for t := range res.Estimates {
		res.Estimates[t] = core.Estimate{T: float64(t) / rate, HeadingBody: math.NaN()}
	}
	for _, s := range segs {
		for t := s.Start; t < s.End; t++ {
			h, ok := headings[t]
			if !ok {
				h = s.HeadingBody
			}
			res.Estimates[t] = core.Estimate{
				T: float64(t) / rate, Moving: true,
				Kind: core.MotionTranslate, Speed: 0.4, HeadingBody: h,
			}
		}
	}
	res.Segments = segs
	return res
}

func seg(start, end int, heading float64) core.SegmentResult {
	return core.SegmentResult{
		Start: start, End: end,
		Kind: core.MotionTranslate, HeadingBody: heading, Confidence: 0.8,
	}
}

func TestFromResultPairsSeparateHalves(t *testing.T) {
	// Out-stroke and return stroke arrive as two separate segments with a
	// short gap: they must pair into one gesture.
	rate := 100.0
	res := synthResult(rate, 300,
		[]core.SegmentResult{seg(20, 80, 0), seg(110, 170, math.Pi)}, nil)
	dets := fromResult(res, rate, Config{MaxGapSeconds: 0.5})
	if len(dets) != 1 || dets[0].Kind != traj.GestureRight {
		t.Fatalf("dets = %+v", dets)
	}
	if dets[0].Start != 20 || dets[0].End != 170 {
		t.Errorf("span = [%d,%d)", dets[0].Start, dets[0].End)
	}
}

func TestFromResultGapTooLarge(t *testing.T) {
	rate := 100.0
	res := synthResult(rate, 600,
		[]core.SegmentResult{seg(20, 80, 0), seg(300, 360, math.Pi)}, nil)
	if dets := fromResult(res, rate, Config{MaxGapSeconds: 0.5}); len(dets) != 0 {
		t.Errorf("far-apart halves paired: %+v", dets)
	}
}

func TestFromResultHeadingMismatch(t *testing.T) {
	// Two strokes along different axes must not pair.
	rate := 100.0
	res := synthResult(rate, 300,
		[]core.SegmentResult{seg(20, 80, 0), seg(110, 170, math.Pi/2)}, nil)
	if dets := fromResult(res, rate, Config{MaxGapSeconds: 0.5}); len(dets) != 0 {
		t.Errorf("orthogonal halves paired: %+v", dets)
	}
}

func TestFromResultDiagonalAxisRejected(t *testing.T) {
	// A 45° axis cannot be any of the four gestures.
	rate := 100.0
	res := synthResult(rate, 300,
		[]core.SegmentResult{seg(20, 80, math.Pi/4), seg(110, 170, math.Pi/4+math.Pi)}, nil)
	if dets := fromResult(res, rate, Config{MaxGapSeconds: 0.5}); len(dets) != 0 {
		t.Errorf("diagonal gesture accepted: %+v", dets)
	}
}

func TestFromResultFlipInsideSegment(t *testing.T) {
	// One segment whose per-slot headings flip halfway: the flip detector
	// must fire with the out-stroke's direction.
	rate := 100.0
	headings := map[int]float64{}
	for tSlot := 20; tSlot < 90; tSlot++ {
		headings[tSlot] = math.Pi / 2 // up
	}
	for tSlot := 90; tSlot < 160; tSlot++ {
		headings[tSlot] = -math.Pi / 2 // back down
	}
	res := synthResult(rate, 200,
		[]core.SegmentResult{seg(20, 160, math.Pi/2)}, headings)
	dets := fromResult(res, rate, Config{MaxGapSeconds: 0.5})
	if len(dets) != 1 || dets[0].Kind != traj.GestureUp {
		t.Fatalf("dets = %+v", dets)
	}
}

func TestFromResultUnbalancedWiggleDropped(t *testing.T) {
	// A segment with a tiny counter-phase (flip test fails, and it is not
	// one-way enough to be a half) must be dropped entirely.
	rate := 100.0
	headings := map[int]float64{}
	for tSlot := 20; tSlot < 50; tSlot++ {
		headings[tSlot] = 0
	}
	for tSlot := 50; tSlot < 76; tSlot++ {
		headings[tSlot] = math.Pi
	}
	res := synthResult(rate, 120,
		[]core.SegmentResult{seg(20, 76, 0)}, headings)
	dets := fromResult(res, rate, Config{MaxGapSeconds: 0.5})
	// This IS a near-balanced out-and-back (30 vs 26 slots at equal
	// speed): the flip detector should accept it as a right gesture.
	if len(dets) != 1 || dets[0].Kind != traj.GestureRight {
		t.Fatalf("balanced flip not detected: %+v", dets)
	}
	// Now a clearly lopsided segment: 50 slots forward, 8 reverse. The
	// flip test rejects it (phases not comparable), and the one-way check
	// classifies it as a half-stroke with no partner: no detection.
	headings2 := map[int]float64{}
	for tSlot := 20; tSlot < 70; tSlot++ {
		headings2[tSlot] = 0
	}
	for tSlot := 70; tSlot < 78; tSlot++ {
		headings2[tSlot] = math.Pi
	}
	res2 := synthResult(rate, 120,
		[]core.SegmentResult{seg(20, 78, 0)}, headings2)
	if dets := fromResult(res2, rate, Config{MaxGapSeconds: 0.5}); len(dets) != 0 {
		t.Errorf("lopsided segment produced detections: %+v", dets)
	}
}

func TestFromResultDefaultGap(t *testing.T) {
	// Zero MaxGapSeconds falls back to the default.
	rate := 100.0
	res := synthResult(rate, 300,
		[]core.SegmentResult{seg(20, 80, 0), seg(100, 160, math.Pi)}, nil)
	if dets := fromResult(res, rate, Config{}); len(dets) != 1 {
		t.Errorf("default gap pairing failed: %+v", dets)
	}
}

func TestFromResultChronologicalOrder(t *testing.T) {
	rate := 100.0
	headings := map[int]float64{}
	// Segment B (later) is a flip gesture; A+C pair across it... keep it
	// simple: two flip segments out of order of construction.
	for tSlot := 200; tSlot < 240; tSlot++ {
		headings[tSlot] = 0
	}
	for tSlot := 240; tSlot < 280; tSlot++ {
		headings[tSlot] = math.Pi
	}
	for tSlot := 20; tSlot < 60; tSlot++ {
		headings[tSlot] = math.Pi / 2
	}
	for tSlot := 60; tSlot < 100; tSlot++ {
		headings[tSlot] = -math.Pi / 2
	}
	res := synthResult(rate, 400, []core.SegmentResult{
		seg(20, 100, math.Pi/2),
		seg(200, 280, 0),
	}, headings)
	dets := fromResult(res, rate, Config{MaxGapSeconds: 0.5})
	if len(dets) != 2 {
		t.Fatalf("dets = %+v", dets)
	}
	if dets[0].Start > dets[1].Start {
		t.Error("detections not chronological")
	}
	if dets[0].Kind != traj.GestureUp || dets[1].Kind != traj.GestureRight {
		t.Errorf("kinds = %v, %v", dets[0].Kind, dets[1].Kind)
	}
}
