package gesture

import (
	"testing"

	"rim/internal/array"
	"rim/internal/core"
	"rim/internal/csi"
	"rim/internal/geom"
	"rim/internal/rf"
	"rim/internal/traj"
)

func collectSeries(t *testing.T, tr *traj.Trajectory, arr *array.Array, seed int64) *csi.Series {
	t.Helper()
	env := rf.NewEnvironment(rf.FastConfig(), geom.Vec2{}, geom.Vec2{X: 10, Y: 0}, nil)
	s, err := csi.Collect(env, arr, tr, csi.RealisticReceiver(seed)).Process(true)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func gestureConfig(arr *array.Array) Config {
	ccfg := core.DefaultConfig(arr)
	ccfg.WindowSeconds = 0.25
	ccfg.V = 16
	return DefaultConfig(ccfg)
}

func TestRecognizeSession(t *testing.T) {
	arr := array.NewLShape(0.029)
	kinds := []traj.GestureKind{traj.GestureRight, traj.GestureUp, traj.GestureLeft, traj.GestureDown}
	tr, _ := traj.GestureSession(100, kinds, geom.Vec2{X: 10, Y: 0}, 0.3, 0.4)
	s := collectSeries(t, tr, arr, 41)
	dets, err := Recognize(s, gestureConfig(arr))
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) < 3 {
		t.Fatalf("detected %d of 4 gestures: %+v", len(dets), dets)
	}
	if len(dets) > 4 {
		t.Fatalf("false triggers: %d detections", len(dets))
	}
	// Every detection must match the ground-truth gesture overlapping it.
	correct := 0
	for _, d := range dets {
		mid := (d.Start + d.End) / 2
		// Find which gesture span contains mid.
		_, spans := traj.GestureSession(100, kinds, geom.Vec2{X: 10, Y: 0}, 0.3, 0.4)
		for gi, sp := range spans {
			if mid >= sp[0] && mid < sp[1] {
				if d.Kind == kinds[gi] {
					correct++
				} else {
					t.Errorf("gesture %d recognized as %v, want %v", gi, d.Kind, kinds[gi])
				}
			}
		}
	}
	if correct < 3 {
		t.Errorf("only %d correctly recognized", correct)
	}
}

func TestNoGestureWhenStatic(t *testing.T) {
	arr := array.NewLShape(0.029)
	b := traj.NewBuilder(100, geom.Pose{Pos: geom.Vec2{X: 10, Y: 0}})
	b.Pause(2.5)
	s := collectSeries(t, b.Build(), arr, 43)
	dets, err := Recognize(s, gestureConfig(arr))
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) != 0 {
		t.Errorf("false triggers on a static trace: %+v", dets)
	}
}

func TestHeadingToKind(t *testing.T) {
	cases := []struct {
		h    float64
		kind traj.GestureKind
		ok   bool
	}{
		{0, traj.GestureRight, true},
		{geom.Rad(90), traj.GestureUp, true},
		{geom.Rad(180), traj.GestureLeft, true},
		{geom.Rad(-90), traj.GestureDown, true},
		{geom.Rad(10), traj.GestureRight, true},
		{geom.Rad(45), 0, false}, // diagonal: rejected
	}
	for _, c := range cases {
		kind, ok := headingToKind(c.h)
		if ok != c.ok || (ok && kind != c.kind) {
			t.Errorf("headingToKind(%v deg) = %v, %v; want %v, %v",
				geom.Deg(c.h), kind, ok, c.kind, c.ok)
		}
	}
}

func TestDefaultConfig(t *testing.T) {
	ccfg := core.DefaultConfig(array.NewLShape(0.029))
	cfg := DefaultConfig(ccfg)
	if cfg.MaxGapSeconds <= 0 {
		t.Error("MaxGapSeconds not set")
	}
	// Gestures are tracked as one window per segment so the lag-sign flip
	// at the turn carries the stroke structure.
	if cfg.Core.HeadingWindowSeconds <= ccfg.HeadingWindowSeconds {
		t.Error("gesture config should widen heading windows to cover whole segments")
	}
}
