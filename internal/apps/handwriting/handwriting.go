// Package handwriting implements the desktop handwriting case study of
// §6.3.1: the antenna array is slid over a desk to write letters; RIM
// reconstructs the strokes, and the reconstruction error is the minimum
// projection distance from each estimated point to the ground-truth
// trajectory (Fig. 18).
package handwriting

import (
	"fmt"

	"rim/internal/core"
	"rim/internal/csi"
	"rim/internal/geom"
	"rim/internal/traj"
)

// Result is one reconstructed letter.
type Result struct {
	Letter rune
	// Estimated is the reconstructed pen trajectory.
	Estimated []geom.Vec2
	// Truth is the ground-truth glyph polyline.
	Truth []geom.Vec2
	// MeanError is the §6.3.1 metric: the mean minimum projection
	// distance from estimated points to the truth polyline, meters.
	MeanError float64
	// Core is the underlying pipeline result.
	Core *core.Result
}

// Reconstruct runs RIM on the CSI of a handwriting motion and evaluates the
// recovered trajectory against the glyph polyline. initial is the pen-down
// pose (the paper synchronizes at the initial point). Only slots where the
// pipeline reports motion contribute points, matching how the pen trace is
// rendered.
func Reconstruct(s *csi.Series, cfg core.Config, letter rune, initial geom.Pose, truth []geom.Vec2) (*Result, error) {
	if len(truth) == 0 {
		return nil, fmt.Errorf("handwriting: empty truth polyline")
	}
	res, err := core.ProcessSeries(s, cfg)
	if err != nil {
		return nil, err
	}
	pts := res.Reckon(initial)
	var est []geom.Vec2
	for i, p := range pts {
		if res.Estimates[i].Moving {
			est = append(est, p.Pose.Pos)
		}
	}
	if len(est) == 0 {
		est = []geom.Vec2{initial.Pos}
	}
	return &Result{
		Letter:    letter,
		Estimated: est,
		Truth:     truth,
		MeanError: traj.PolylineError(est, truth),
		Core:      res,
	}, nil
}

// WriteAndReconstruct is the end-to-end convenience used by experiments:
// generate the letter trajectory, collect CSI through the given collector,
// and reconstruct. The collector indirection keeps this package free of the
// RF substrate (tests inject it).
func WriteAndReconstruct(
	letter rune,
	origin geom.Vec2,
	size, speed, rate float64,
	collect func(tr *traj.Trajectory) (*csi.Series, error),
	cfg core.Config,
) (*Result, error) {
	tr, err := traj.Letter(rate, letter, origin, size, speed)
	if err != nil {
		return nil, err
	}
	s, err := collect(tr)
	if err != nil {
		return nil, err
	}
	truth, err := traj.LetterPolyline(letter, origin, size)
	if err != nil {
		return nil, err
	}
	initial := geom.Pose{Pos: truth[0]}
	return Reconstruct(s, cfg, letter, initial, truth)
}
