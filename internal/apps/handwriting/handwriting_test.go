package handwriting

import (
	"testing"

	"rim/internal/array"
	"rim/internal/core"
	"rim/internal/csi"
	"rim/internal/geom"
	"rim/internal/rf"
	"rim/internal/traj"
)

func collector(t *testing.T, arr *array.Array, seed int64) func(tr *traj.Trajectory) (*csi.Series, error) {
	t.Helper()
	env := rf.NewEnvironment(rf.FastConfig(), geom.Vec2{}, geom.Vec2{X: 10, Y: 0}, nil)
	return func(tr *traj.Trajectory) (*csi.Series, error) {
		return csi.Collect(env, arr, tr, csi.RealisticReceiver(seed)).Process(true)
	}
}

func writeConfig(arr *array.Array) core.Config {
	cfg := core.DefaultConfig(arr)
	cfg.WindowSeconds = 0.35
	cfg.V = 16
	cfg.HeadingWindowSeconds = 0.5
	return cfg
}

func TestReconstructLetterL(t *testing.T) {
	arr := array.NewHexagonal(0.029)
	res, err := WriteAndReconstruct('L', geom.Vec2{X: 10, Y: 0}, 0.4, 0.25, 100,
		collector(t, arr, 51), writeConfig(arr))
	if err != nil {
		t.Fatal(err)
	}
	if res.Letter != 'L' {
		t.Error("letter identity lost")
	}
	if len(res.Estimated) == 0 {
		t.Fatal("no reconstructed points")
	}
	// The paper reports ~2.4 cm mean trajectory error for ~20 cm letters;
	// accept up to 8 cm for a 40 cm glyph on the fast test channel.
	if res.MeanError > 0.08 {
		t.Errorf("mean trajectory error = %.3f m, want < 0.08", res.MeanError)
	}
}

func TestReconstructRejectsEmptyTruth(t *testing.T) {
	if _, err := Reconstruct(nil, core.Config{}, 'X', geom.Pose{}, nil); err == nil {
		t.Error("empty truth must error")
	}
}

func TestUnknownLetterPropagates(t *testing.T) {
	arr := array.NewHexagonal(0.029)
	_, err := WriteAndReconstruct('@', geom.Vec2{}, 0.4, 0.25, 100,
		collector(t, arr, 1), writeConfig(arr))
	if err == nil {
		t.Error("unknown letter must error")
	}
}

func TestStaticPenProducesFallbackPoint(t *testing.T) {
	// A recording with no motion must not crash: it degrades to the
	// initial point with the corresponding (large but finite) error.
	arr := array.NewHexagonal(0.029)
	env := rf.NewEnvironment(rf.FastConfig(), geom.Vec2{}, geom.Vec2{X: 10, Y: 0}, nil)
	b := traj.NewBuilder(100, geom.Pose{Pos: geom.Vec2{X: 10, Y: 0}})
	b.Pause(1.0)
	s, err := csi.Collect(env, arr, b.Build(), csi.RealisticReceiver(2)).Process(true)
	if err != nil {
		t.Fatal(err)
	}
	truth := []geom.Vec2{{X: 10, Y: 0}, {X: 10.4, Y: 0}}
	res, err := Reconstruct(s, writeConfig(arr), 'I', geom.Pose{Pos: geom.Vec2{X: 10, Y: 0}}, truth)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Estimated) != 1 {
		t.Errorf("fallback points = %d, want 1", len(res.Estimated))
	}
}
