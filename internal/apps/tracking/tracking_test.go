package tracking

import (
	"math"
	"testing"

	"rim/internal/array"
	"rim/internal/camera"
	"rim/internal/core"
	"rim/internal/csi"
	"rim/internal/faults"
	"rim/internal/floorplan"
	"rim/internal/fusion"
	"rim/internal/geom"
	"rim/internal/imu"
	"rim/internal/rf"
	"rim/internal/traj"
)

func collectSeries(t *testing.T, tr *traj.Trajectory, arr *array.Array, seed int64) *csi.Series {
	t.Helper()
	env := rf.NewEnvironment(rf.FastConfig(), geom.Vec2{}, geom.Vec2{X: 10, Y: 0}, nil)
	s, err := csi.Collect(env, arr, tr, csi.RealisticReceiver(seed)).Process(true)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func trackConfig(arr *array.Array) core.Config {
	cfg := core.DefaultConfig(arr)
	cfg.WindowSeconds = 0.3
	cfg.V = 16
	return cfg
}

func TestPureRIMSidewayPath(t *testing.T) {
	// An L-path with a sideway move (no turning): +X then +Y with fixed
	// body orientation — the Fig. 20 scenario in miniature.
	rate := 100.0
	start := geom.Vec2{X: 10, Y: 0}
	arr := array.NewHexagonal(0.029)
	b := traj.NewBuilder(rate, geom.Pose{Pos: start})
	b.Pause(0.5)
	b.MoveDir(0, 1.0, 0.4)
	b.Pause(0.6)
	b.MoveDir(geom.Rad(90), 1.0, 0.4) // sideway: heading changes, body does not
	b.Pause(0.5)
	tr := b.Build()
	s := collectSeries(t, tr, arr, 61)
	camCfg := camera.DefaultConfig(1)
	res, err := PureRIM(s, trackConfig(arr), geom.Pose{Pos: start}, tr, camCfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MedianError > 0.25 {
		t.Errorf("median tracking error = %.3f m, want < 0.25", res.MedianError)
	}
	final := res.Estimated[len(res.Estimated)-1]
	truth := geom.Vec2{X: 11, Y: 1}
	if final.Dist(truth) > 0.35 {
		t.Errorf("endpoint = %v, want near %v", final, truth)
	}
	// Both legs must be recognized as translations with distinct headings.
	segs := res.Core.SegmentsOfKind(core.MotionTranslate)
	if len(segs) != 2 {
		t.Fatalf("translate segments = %d, want 2", len(segs))
	}
	if geom.AbsAngleDiff(segs[0].HeadingBody, 0) > geom.Rad(10) ||
		geom.AbsAngleDiff(segs[1].HeadingBody, geom.Rad(90)) > geom.Rad(10) {
		t.Errorf("headings = %v, %v deg",
			geom.Deg(segs[0].HeadingBody), geom.Deg(segs[1].HeadingBody))
	}
}

func TestFusedDeadReckoning(t *testing.T) {
	rate := 100.0
	start := geom.Vec2{X: 10, Y: 0}
	arr := array.NewLinear3(0.029)
	b := traj.NewBuilder(rate, geom.Pose{Pos: start})
	b.Pause(0.5)
	b.MoveDir(0, 1.2, 0.4)
	b.Pause(0.5)
	tr := b.Build()
	s := collectSeries(t, tr, arr, 67)
	readings := imu.Simulate(tr, imu.DefaultConfig(3))
	camCfg := camera.DefaultConfig(2)
	res, err := Fused(s, trackConfig(arr), readings, FusedConfig{}, geom.Pose{Pos: start}, tr, camCfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MedianError > 0.25 {
		t.Errorf("fused median error = %.3f m", res.MedianError)
	}
	if res.Core == nil {
		t.Error("core result not attached")
	}
}

func TestFusedWithParticleFilterStaysInCorridor(t *testing.T) {
	rate := 100.0
	// Corridor along X at y in [9.25, 10.75] (the cart moves at y=10).
	var plan floorplan.Plan
	plan.Bounds = geom.Rect{Min: geom.Vec2{X: 0, Y: 0}, Max: geom.Vec2{X: 30, Y: 20}}
	plan.AddWall(geom.Vec2{X: 5, Y: 9.25}, geom.Vec2{X: 25, Y: 9.25}, 8)
	plan.AddWall(geom.Vec2{X: 5, Y: 10.75}, geom.Vec2{X: 25, Y: 10.75}, 8)

	start := geom.Vec2{X: 10, Y: 10}
	arr := array.NewLinear3(0.029)
	env := rf.NewEnvironment(rf.FastConfig(), geom.Vec2{X: 1, Y: 1}, start, nil)
	b := traj.NewBuilder(rate, geom.Pose{Pos: start})
	b.Pause(0.5)
	b.MoveDir(0, 2.0, 0.5)
	b.Pause(0.5)
	tr := b.Build()
	s, err := csi.Collect(env, arr, tr, csi.RealisticReceiver(71)).Process(true)
	if err != nil {
		t.Fatal(err)
	}
	// A gyro with aggressive drift: raw dead reckoning bends the path.
	icfg := imu.DefaultConfig(5)
	icfg.GyroBiasWalk = 3e-3
	readings := imu.Simulate(tr, icfg)
	camCfg := camera.DefaultConfig(3)

	raw, err := Fused(s, trackConfig(arr), readings, FusedConfig{}, geom.Pose{Pos: start}, tr, camCfg)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := Fused(s, trackConfig(arr), readings, FusedConfig{
		UsePF: true,
		PF:    fusion.DefaultConfig(9),
		Plan:  &plan,
	}, geom.Pose{Pos: start}, tr, camCfg)
	if err != nil {
		t.Fatal(err)
	}
	// The PF estimate must stay inside the corridor.
	for _, p := range pf.Estimated {
		if p.X > 5 && p.X < 25 && (p.Y < 9.2 || p.Y > 10.8) {
			t.Fatalf("PF estimate left the corridor: %v", p)
		}
	}
	if pf.MedianError > raw.MedianError+0.05 {
		t.Errorf("PF (%.3f m) should not be clearly worse than raw (%.3f m)",
			pf.MedianError, raw.MedianError)
	}
}

func TestEvaluateDistances(t *testing.T) {
	fixes := []camera.Fix{
		{T: 0, Pos: geom.Vec2{X: 0}},
		{T: 1, Pos: geom.Vec2{X: 1}},
	}
	est := []geom.Vec2{{X: 0}, {X: 0.5}, {X: 1}}
	r := evaluate(est, fixes, 2) // slots at t=0, 0.5, 1
	if r.MedianError > 1e-9 {
		t.Errorf("median error = %v, want 0", r.MedianError)
	}
	if r.EstimatedDistance != 1 || r.TruthDistance != 1 {
		t.Errorf("distances = %v / %v", r.EstimatedDistance, r.TruthDistance)
	}
}

// TestFusedBackendsDegradeGracefullyOnFaultyWalk drives the same
// fault-injected walk (bursty loss + a dead chain mid-walk) through both
// fusion backends: estimates must stay finite and the error bounded — a
// degraded walk may cost accuracy, never sanity.
func TestFusedBackendsDegradeGracefullyOnFaultyWalk(t *testing.T) {
	rate := 100.0
	start := geom.Vec2{X: 10, Y: 0}
	arr := array.NewLinear3(0.029)
	env := rf.NewEnvironment(rf.FastConfig(), geom.Vec2{}, start, nil)
	b := traj.NewBuilder(rate, geom.Pose{Pos: start})
	b.Pause(0.6)
	b.MoveDir(0, 1.5, 0.5)
	b.Pause(0.8)
	b.MoveDir(0, 1.0, 0.5)
	b.Pause(0.6)
	tr := b.Build()
	rcv := csi.RealisticReceiver(83)
	rcv.Faults = &faults.Model{
		Seed:     83,
		Loss:     faults.NewGilbertElliott(0.3, 20),
		Dropouts: []faults.Dropout{{Antenna: 2, Start: 2.5}},
	}
	s, err := csi.Collect(env, arr, tr, rcv).Process(true)
	if err != nil {
		t.Fatal(err)
	}
	readings := imu.Simulate(tr, imu.DefaultConfig(7))
	camCfg := camera.DefaultConfig(4)
	for _, backend := range []fusion.BackendKind{fusion.BackendParticle, fusion.BackendESKF} {
		fcfg := fusion.DefaultConfig(11)
		fcfg.Backend = backend
		res, err := Fused(s, trackConfig(arr), readings, FusedConfig{
			UsePF: true,
			PF:    fcfg,
		}, geom.Pose{Pos: start}, tr, camCfg)
		if err != nil {
			t.Fatalf("%v: %v", backend, err)
		}
		for i, p := range res.Estimated {
			if math.IsNaN(p.X) || math.IsNaN(p.Y) || math.IsInf(p.X, 0) || math.IsInf(p.Y, 0) {
				t.Fatalf("%v: non-finite estimate at slot %d: %v", backend, i, p)
			}
		}
		if res.MedianError > 1.0 {
			t.Errorf("%v: faulty-walk median error %.3f m, want <= 1.0", backend, res.MedianError)
		}
	}
}
