// Package tracking implements the indoor-tracking case studies of §6.3.3:
// pure-RIM tracking (hexagonal array, sideway movements, Fig. 20) and
// RIM-distance + gyroscope-heading fusion with an optional map-constrained
// particle filter (Fig. 21).
package tracking

import (
	"rim/internal/camera"
	"rim/internal/core"
	"rim/internal/csi"
	"rim/internal/floorplan"
	"rim/internal/fusion"
	"rim/internal/geom"
	"rim/internal/imu"
	"rim/internal/sigproc"
	"rim/internal/traj"
)

// Result is a tracked trajectory with its evaluation against ground truth.
type Result struct {
	// Estimated positions, one per CSI slot.
	Estimated []geom.Vec2
	// Truth positions resampled at the same instants (camera reference).
	Truth []geom.Vec2
	// Errors is the per-slot position error in meters.
	Errors []float64
	// MedianError / P90Error / MaxError summarize Errors.
	MedianError, P90Error, MaxError float64
	// EstimatedDistance and TruthDistance compare total path lengths.
	EstimatedDistance, TruthDistance float64
	// Core is the underlying RIM result (nil for fused tracking without a
	// full pipeline).
	Core *core.Result
}

func evaluate(est []geom.Vec2, fixes []camera.Fix, rate float64) *Result {
	r := &Result{Estimated: est}
	for i, p := range est {
		t := float64(i) / rate
		truth := camera.PositionAt(fixes, t)
		r.Truth = append(r.Truth, truth)
		r.Errors = append(r.Errors, p.Dist(truth))
	}
	r.MedianError = sigproc.Median(r.Errors)
	r.P90Error = sigproc.Percentile(r.Errors, 90)
	r.MaxError = sigproc.Max(r.Errors)
	for i := 1; i < len(est); i++ {
		r.EstimatedDistance += est[i].Dist(est[i-1])
	}
	r.TruthDistance = camera.PathLength(fixes)
	return r
}

// PureRIM tracks a motion with RIM alone: the pipeline's per-slot speed,
// heading and rotation estimates are dead-reckoned from the known initial
// pose and compared against the camera ground truth of the trajectory.
func PureRIM(s *csi.Series, cfg core.Config, initial geom.Pose, truth *traj.Trajectory, camCfg camera.Config) (*Result, error) {
	res, err := core.ProcessSeries(s, cfg)
	if err != nil {
		return nil, err
	}
	est := res.ReckonPositions(initial)
	fixes := camera.Track(truth, camCfg)
	out := evaluate(est, fixes, s.Rate)
	out.Core = res
	return out, nil
}

// FusedConfig selects the fusion variant of Fig. 21.
type FusedConfig struct {
	// UsePF enables a fusion backend; without it the output is raw dead
	// reckoning of RIM distance + gyro heading. The name predates the
	// backend split: which backend runs is PF.Backend (particle filter by
	// default, ESKF via fusion.BackendESKF).
	UsePF bool
	// PF parameterizes the fusion backend (used when UsePF).
	PF fusion.Config
	// Plan is the floorplan for the particle filter's wall constraint
	// (ignored by the ESKF backend).
	Plan *floorplan.Plan
}

// Fused tracks a motion by fusing RIM's distance estimates with gyroscope
// heading (the single-NIC integration of §6.3.3), optionally corrected by
// the particle filter.
func Fused(s *csi.Series, cfg core.Config, readings []imu.Reading, fcfg FusedConfig, initial geom.Pose, truth *traj.Trajectory, camCfg camera.Config) (*Result, error) {
	res, err := core.ProcessSeries(s, cfg)
	if err != nil {
		return nil, err
	}
	speeds := res.SpeedSeries()
	quality := res.QualitySeries()
	n := len(speeds)
	if len(readings) < n {
		n = len(readings)
	}
	dt := 1 / s.Rate

	var est []geom.Vec2
	if fcfg.UsePF {
		pcfg := fcfg.PF
		if pcfg.StepSeconds <= 0 {
			pcfg.StepSeconds = dt
		}
		f, err := fusion.New(fcfg.Plan, initial, pcfg)
		if err != nil {
			return nil, err
		}
		// Confirmed zero-velocity slots become ZUPT-flagged steps; the
		// magnetometer heading rides along as a weak absolute reference.
		// The particle filter ignores both (its floorplan is the absolute
		// reference), so pre-split runs are bitwise unchanged.
		zupt := make([]bool, n)
		for _, z := range res.ZUPTs {
			for t := z.Start; t < z.End && t < n; t++ {
				zupt[t] = true
			}
		}
		inputs := make([]fusion.Input, n)
		for i := 0; i < n; i++ {
			inputs[i] = fusion.Input{
				DistDelta:  speeds[i] * dt,
				ThetaDelta: readings[i].Gyro * dt,
				Quality:    quality[i],
				ZUPT:       zupt[i],
				MagHeading: readings[i].MagHeading,
				HasMag:     true,
			}
		}
		for _, pose := range f.TrackAll(inputs) {
			est = append(est, pose.Pos)
		}
	} else {
		est = imu.DeadReckon(readings[:n], speeds[:n], s.Rate, initial)
	}
	fixes := camera.Track(truth, camCfg)
	out := evaluate(est, fixes, s.Rate)
	out.Core = res
	return out, nil
}
