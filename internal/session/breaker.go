package session

import (
	"sync"
	"time"
)

// BreakerState is the circuit breaker's tri-state.
type BreakerState int

const (
	// BreakerClosed: normal operation, failures are being counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the failure rate tripped the breaker; the daemon is in
	// degraded mode (new sessions shed, existing ones coarsened) until the
	// cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: the cooldown elapsed; the next outcome decides —
	// a success re-closes the breaker, a failure re-opens it.
	BreakerHalfOpen
)

// String returns the state's metric/log spelling.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig parameterizes the global circuit breaker.
type BreakerConfig struct {
	// Window is the sliding interval failures are counted over (default 10s).
	Window time.Duration
	// FailureThreshold opens the breaker when this many failures land
	// inside Window (default 8).
	FailureThreshold int
	// Cooldown is how long the breaker stays open before probing
	// half-open (default 5s).
	Cooldown time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window <= 0 {
		c.Window = 10 * time.Second
	}
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 8
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	return c
}

// Breaker is the daemon-wide circuit breaker: session-level failures
// (restarts, quarantines) feed it, and when too many land inside the
// window it flips the daemon into degraded mode — admission sheds new
// sessions and Degrade-policy sessions coarsen their hop — until a
// cooldown plus one clean probe closes it again. Goroutine-safe; the zero
// value is unusable, construct with NewBreaker. A nil *Breaker is valid
// everywhere and reports permanently-closed.
type Breaker struct {
	cfg BreakerConfig
	now func() time.Time // test seam

	mu       sync.Mutex
	state    BreakerState
	fails    []time.Time // failure timestamps inside the window (ring-ish, pruned on use)
	openedAt time.Time
	onChange func(BreakerState) // metric hook, may be nil
}

// NewBreaker builds a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults(), now: time.Now}
}

// SetOnChange installs a state-transition hook (e.g. a gauge setter). Must
// be called before the breaker is shared.
func (b *Breaker) SetOnChange(fn func(BreakerState)) {
	if b == nil {
		return
	}
	b.onChange = fn
}

// Failure records one failure, possibly tripping the breaker.
func (b *Breaker) Failure() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	b.tickLocked(now)
	switch b.state {
	case BreakerHalfOpen:
		// The probe failed: straight back to open.
		b.transitionLocked(BreakerOpen, now)
	case BreakerClosed:
		b.fails = append(b.fails, now)
		b.pruneLocked(now)
		if len(b.fails) >= b.cfg.FailureThreshold {
			b.transitionLocked(BreakerOpen, now)
		}
	}
}

// Success records one healthy outcome; in half-open it closes the breaker.
func (b *Breaker) Success() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tickLocked(b.now())
	if b.state == BreakerHalfOpen {
		b.transitionLocked(BreakerClosed, b.now())
	}
}

// State returns the current state, applying any due open→half-open
// transition first.
func (b *Breaker) State() BreakerState {
	if b == nil {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tickLocked(b.now())
	return b.state
}

// Degraded reports whether the daemon should run in degraded mode (the
// breaker is open).
func (b *Breaker) Degraded() bool { return b.State() == BreakerOpen }

// tickLocked advances time-driven transitions: an open breaker whose
// cooldown elapsed becomes half-open.
func (b *Breaker) tickLocked(now time.Time) {
	if b.state == BreakerOpen && now.Sub(b.openedAt) >= b.cfg.Cooldown {
		b.transitionLocked(BreakerHalfOpen, now)
	}
}

func (b *Breaker) pruneLocked(now time.Time) {
	cut := now.Add(-b.cfg.Window)
	i := 0
	for i < len(b.fails) && b.fails[i].Before(cut) {
		i++
	}
	if i > 0 {
		b.fails = append(b.fails[:0], b.fails[i:]...)
	}
}

func (b *Breaker) transitionLocked(s BreakerState, now time.Time) {
	if b.state == s {
		return
	}
	b.state = s
	if s == BreakerOpen {
		b.openedAt = now
		b.fails = b.fails[:0]
	}
	if b.onChange != nil {
		b.onChange(s)
	}
}
