package session

import (
	"hash/fnv"
	"math"
	"math/rand"
	"sync"

	"rim/internal/core"
	"rim/internal/fusion"
	"rim/internal/geom"
)

// Per-session fusion: when Config.Fusion is set, every session runs one
// fusion.Backend over its finalized estimate stream and exposes the fused
// pose via Session.Pose / the /sessions listing. The fuser mirrors
// core.Result.Reckon's kinematics — body heading integrated from AngVel,
// world course = body heading + body-frame motion direction — but feeds
// the increments through the configured backend instead of summing them,
// so ZUPT-confirmed static slots discharge accumulated bias (ESKF) or
// the particle cloud's spread (particle backend with a floorplan).

// fuser drives one session's fusion backend. The worker goroutine is the
// only writer (recordEstimates); Pose is read concurrently by the
// /sessions listing, hence the mutex.
type fuser struct {
	mu     sync.Mutex
	b      fusion.Backend
	dt     float64
	theta  float64 // integrated body heading, rad
	course float64 // last world-frame course fed to the backend
	pose   geom.Pose

	// Mistune fault injection (quality self-test): when noiseStd > 0,
	// zero-mean Gaussian noise is added to every step's distance and
	// heading increments. The backend's tuned measurement noise no longer
	// matches what it is fed, so its NIS leaves the chi-square band and
	// the quality monitor must notice.
	noiseStd float64
	noise    *rand.Rand
}

// newFuser builds a session's backend from the registry-level template,
// fixing the step duration to the session's slot rate. Sessions track from
// the origin: the wire protocol carries no absolute start pose, so fused
// poses are relative to the session's first frame. noiseStd > 0 arms the
// mistune fault injector with a deterministic per-session noise stream
// derived from id.
func newFuser(cfg fusion.Config, rate float64, noiseStd float64, id string) (*fuser, error) {
	if cfg.StepSeconds <= 0 {
		cfg.StepSeconds = 1 / rate
	}
	b, err := fusion.New(nil, geom.Pose{}, cfg)
	if err != nil {
		return nil, err
	}
	f := &fuser{b: b, dt: cfg.StepSeconds}
	if noiseStd > 0 {
		h := fnv.New64a()
		h.Write([]byte(id))
		f.noiseStd = noiseStd
		f.noise = rand.New(rand.NewSource(int64(h.Sum64())))
	}
	return f, nil
}

// feed advances the backend by one finalized estimate batch.
func (f *fuser) feed(ests []core.Estimate) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := range ests {
		e := &ests[i]
		f.theta = geom.NormalizeAngle(f.theta + e.AngVel*f.dt)
		in := fusion.Input{ZUPT: !e.Moving && !e.Degraded}
		// Quality mirrors core.Result.QualitySeries: static slots are fully
		// trusted (zero motion is RIM's most reliable call), moving slots
		// carry their alignment confidence, degraded slots are capped low.
		switch {
		case !e.Moving:
			in.Quality = 1
		case e.Confidence > 0:
			in.Quality = e.Confidence
		default:
			in.Quality = 0.5
		}
		if e.Degraded && in.Quality > 0.3 {
			in.Quality = 0.3
		}
		if e.Moving && e.Kind == core.MotionTranslate && !math.IsNaN(e.HeadingBody) {
			course := geom.NormalizeAngle(f.theta + e.HeadingBody)
			in.DistDelta = e.Speed * f.dt
			in.ThetaDelta = geom.NormalizeAngle(course - f.course)
			f.course = course
		}
		if f.noise != nil {
			// Mistune injection: the noise hits ZUPT steps too — a static
			// slot with a non-zero distance increment is exactly the
			// inconsistency NIS is built to expose (innovation std ≈
			// noiseStd/dt against the filter's tuned ZUPTSpeedStd).
			in.DistDelta += f.noise.NormFloat64() * f.noiseStd
			in.ThetaDelta += f.noise.NormFloat64() * f.noiseStd
		}
		f.pose = f.b.Step(in)
	}
}

// Pose returns the latest fused pose.
func (f *fuser) Pose() geom.Pose {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.pose
}
