package session

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rim/internal/obs"
)

func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func newTestRegistry(t *testing.T, m *Metrics, mutate func(*RegistryConfig)) *Registry {
	t.Helper()
	d := &fakeDriver{}
	cfg := RegistryConfig{
		Shards: 2,
		Session: Config{
			Factory:         d.factory,
			Queue:           16,
			BackoffMin:      time.Millisecond,
			BackoffMax:      4 * time.Millisecond,
			HealthyAfter:    time.Millisecond,
			Metrics:         m,
			ConfidenceFloor: 0.5,
		},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	r, err := NewRegistry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Shutdown)
	return r
}

func TestInfosHandlerEnrichment(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	r := newTestRegistry(t, m, nil)

	if _, err := r.Open("idle", testSpec()); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Open("busy", testSpec()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := r.Ingest("busy", testFrame(), nil); err != nil {
			t.Fatal(err)
		}
	}
	waitCond(t, "busy session estimates", func() bool {
		s := r.Get("busy")
		return s != nil && s.Estimates() >= 4
	})

	rec := httptest.NewRecorder()
	r.InfosHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/sessions", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	// State marshals as a string, so decode generically.
	var infos []map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("got %d sessions, want 2", len(infos))
	}
	// ID-sorted: busy < idle.
	busy, idle := infos[0], infos[1]
	if busy["id"] != "busy" || idle["id"] != "idle" {
		t.Fatalf("order wrong: %v, %v", busy["id"], idle["id"])
	}
	if age := idle["last_estimate_age_seconds"].(float64); age != -1 {
		t.Fatalf("idle session age = %v, want -1 sentinel", age)
	}
	if age := busy["last_estimate_age_seconds"].(float64); age < 0 {
		t.Fatalf("busy session age = %v, want >= 0", age)
	}
	if n := busy["estimates"].(float64); n < 4 {
		t.Fatalf("busy estimates = %v, want >= 4", n)
	}
	// The raw JSON must carry the pinned field names rimtop parses.
	for _, field := range []string{`"queue_depth"`, `"estimates_degraded"`, `"last_estimate_age_seconds"`, `"restarts_total"`, `"state"`} {
		if !strings.Contains(rec.Body.String(), field) {
			t.Fatalf("payload missing %s:\n%s", field, rec.Body.String())
		}
	}
}

func TestPerSessionMetricsAttributed(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	r := newTestRegistry(t, m, nil)

	for _, id := range []string{"w1", "w2"} {
		if _, err := r.Open(id, testSpec()); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := r.Ingest("w1", testFrame(), nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Ingest("w2", testFrame(), nil); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "frames drained", func() bool {
		return r.Get("w1").Estimates() >= 3 && r.Get("w2").Estimates() >= 1
	})

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`rim_session_frames_total{session="w1"} 3`,
		`rim_session_frames_total{session="w2"} 1`,
		`rim_session_estimates_total{session="w1"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}
	if got := m.Frames.Total(); got != 4 {
		t.Fatalf("Frames.Total = %d, want 4", got)
	}

	// Closing w1 folds its children into the overflow child: totals are
	// conserved, the label disappears.
	if err := r.Close("w1"); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	reg.WritePrometheus(&sb)
	out = sb.String()
	if strings.Contains(out, `rim_session_frames_total{session="w1"}`) {
		t.Fatalf("closed session still labeled:\n%s", out)
	}
	if !strings.Contains(out, `rim_session_frames_total{session="other"} 3`) {
		t.Fatalf("closed session's counts not folded into other:\n%s", out)
	}
	if got := m.Frames.Total(); got != 4 {
		t.Fatalf("Frames.Total = %d after close, want 4 (counts conserved)", got)
	}
}

func TestShedAttributedByReasonAndShard(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	r := newTestRegistry(t, m, func(cfg *RegistryConfig) { cfg.MaxSessions = 1 })

	if _, err := r.Open("only", testSpec()); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Open("refused", testSpec()); err == nil {
		t.Fatal("open past watermark accepted")
	}
	if got := m.Shed.Total(); got != 1 {
		t.Fatalf("Shed.Total = %d, want 1", got)
	}
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), `rim_shed_total{reason="watermark",shard=`) {
		t.Fatalf("shed not attributed by reason+shard:\n%s", sb.String())
	}
}

func TestMetricsCapBoundsSessionFlood(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetricsCap(reg, 8)
	for i := 0; i < 100; i++ {
		sm := m.children(fmt.Sprintf("flood-%03d", i))
		sm.frames.Inc()
		sm.queueWait.Observe(0.001)
	}
	if m.Frames.Len() != 8 || m.QueueWait.Len() != 8 {
		t.Fatalf("family sizes %d/%d, want 8 (cap)", m.Frames.Len(), m.QueueWait.Len())
	}
	if got := m.Frames.Total(); got != 100 {
		t.Fatalf("Frames.Total = %d, want 100 — flood lost counts", got)
	}
	if got := m.QueueWait.Other().Count(); got != 92 {
		t.Fatalf("overflow wait count = %d, want 92", got)
	}
}

// TestSessionChurnScrapeRace opens, drives, and closes sessions from
// several goroutines while /metrics and /sessions are scraped; run under
// -race this pins the labeled-family integration.
func TestSessionChurnScrapeRace(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetricsCap(reg, 16)
	r := newTestRegistry(t, m, func(cfg *RegistryConfig) { cfg.Shards = 4 })

	const churners = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for c := 0; c < churners; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				id := fmt.Sprintf("churn-%d-%d", c, i%10)
				if _, err := r.Open(id, testSpec()); err != nil {
					continue
				}
				r.Ingest(id, testFrame(), nil)
				if i%3 == 0 {
					r.Close(id)
				}
			}
		}(c)
	}
	var scrapeWg sync.WaitGroup
	scrapeWg.Add(1)
	go func() {
		defer scrapeWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var sb strings.Builder
			if err := reg.WritePrometheus(&sb); err != nil {
				t.Error(err)
				return
			}
			rec := httptest.NewRecorder()
			r.InfosHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/sessions", nil))
		}
	}()
	wg.Wait()
	close(stop)
	scrapeWg.Wait()
	if got, want := m.Frames.Total(), m.Estimates.Total(); got < want {
		t.Fatalf("frames %d < estimates %d: impossible accounting", got, want)
	}
}
