// Package session is the multi-session substrate of the rimserved daemon:
// a striped-shard registry of supervised tracking sessions, each owning a
// core.Streamer behind a bounded frame queue with an explicit overload
// policy. Sessions that panic or flap are restarted with capped
// exponential backoff and quarantined when restarts stop helping; a global
// circuit breaker sheds new sessions when the daemon itself is unhealthy;
// periodic checkpoints make a daemon kill recoverable.
package session

import "rim/internal/obs"

// Metrics bundles the session layer's metric handles, resolved once so the
// per-frame path never touches the registry map. Fleet-attributable
// signals are labeled families (per session, per shard, per shed reason);
// the rest stay plain process-global handles. Every handle is nil-safe
// (obs no-ops on nil receivers and nil families hand out nil children), so
// a zero Metrics disables the whole surface.
type Metrics struct {
	Active *obs.Gauge   // rim_sessions_active
	Opened *obs.Counter // rim_sessions_opened_total
	Closed *obs.Counter // rim_sessions_closed_total
	Panics *obs.Counter // rim_session_panics_total

	// Shed attributes refused opens by {reason, shard}: reason is
	// "breaker" or "watermark".
	Shed *obs.CounterFamily // rim_shed_total{reason,shard}

	// Per-session families. Children are resolved once per session (see
	// sessionMetrics) and folded into the "other" overflow child when the
	// session closes or the cardinality cap evicts them.
	Restarts    *obs.CounterFamily   // rim_session_restarts_total{session}
	Quarantined *obs.CounterFamily   // rim_session_quarantined_total{session}
	Frames      *obs.CounterFamily   // rim_session_frames_total{session}
	Dropped     *obs.CounterFamily   // rim_session_frames_dropped_total{session}
	Rejected    *obs.CounterFamily   // rim_session_frames_rejected_total{session}
	Degraded    *obs.CounterFamily   // rim_session_degrade_transitions_total{session}
	QueueWait   *obs.HistogramFamily // rim_session_queue_wait_seconds{session}
	Lag         *obs.HistogramFamily // rim_session_lag_seconds{session}
	Estimates   *obs.CounterFamily   // rim_session_estimates_total{session}
	EstDegraded *obs.CounterFamily   // rim_session_estimates_degraded_total{session}
	LowConf     *obs.CounterFamily   // rim_session_low_confidence_total{session}

	// Per-shard occupancy gauges, refreshed by the registry ticker.
	ShardDepth    *obs.GaugeFamily // rim_shard_queue_depth{shard}
	ShardSessions *obs.GaugeFamily // rim_shard_sessions{shard}

	QueueDepth     *obs.Gauge   // rim_session_queue_depth (fleet aggregate)
	BreakerState   *obs.Gauge   // rim_breaker_state
	Checkpoints    *obs.Counter // rim_checkpoints_total
	CheckpointErrs *obs.Counter // rim_checkpoint_errors_total
	Restores       *obs.Counter // rim_session_restores_total
}

// NewMetrics registers the session-layer metrics on reg with the default
// per-family cardinality cap (nil reg yields a fully no-op bundle).
func NewMetrics(reg *obs.Registry) *Metrics { return NewMetricsCap(reg, 0) }

// NewMetricsCap registers the session-layer metrics with an explicit
// per-family cardinality cap: at most maxChildren sessions hold live
// labeled children at once; colder sessions fold into the reserved
// {session="other"} child (counts are conserved). 0 selects
// obs.DefMaxChildren.
func NewMetricsCap(reg *obs.Registry, maxChildren int) *Metrics {
	bySession := obs.FamilyOpts{Labels: []string{"session"}, MaxChildren: maxChildren}
	byShard := obs.FamilyOpts{Labels: []string{"shard"}, MaxChildren: maxChildren}
	return &Metrics{
		Active: reg.Gauge("rim_sessions_active", "sessions currently admitted or running"),
		Opened: reg.Counter("rim_sessions_opened_total", "sessions admitted by the registry"),
		Closed: reg.Counter("rim_sessions_closed_total", "sessions closed (graceful or quarantine)"),
		Panics: reg.Counter("rim_session_panics_total", "panics recovered inside session workers"),

		Shed: reg.CounterFamily("rim_shed_total",
			"session opens shed by admission control or the circuit breaker",
			obs.FamilyOpts{Labels: []string{"reason", "shard"}, MaxChildren: maxChildren}),

		Restarts: reg.CounterFamily("rim_session_restarts_total",
			"supervisor restarts of failed sessions", bySession),
		Quarantined: reg.CounterFamily("rim_session_quarantined_total",
			"sessions quarantined after restarts stopped helping", bySession),
		Frames: reg.CounterFamily("rim_session_frames_total",
			"frames accepted into session queues", bySession),
		Dropped: reg.CounterFamily("rim_session_frames_dropped_total",
			"frames dropped from the front of full queues (drop-oldest)", bySession),
		Rejected: reg.CounterFamily("rim_session_frames_rejected_total",
			"frames rejected at full queues (reject policy)", bySession),
		Degraded: reg.CounterFamily("rim_session_degrade_transitions_total",
			"queue-pressure transitions into coarser-hop degraded mode", bySession),
		QueueWait: reg.HistogramFamily("rim_session_queue_wait_seconds",
			"time frames spend queued before the worker picks them up", bySession),
		Lag: reg.HistogramFamily("rim_session_lag_seconds",
			"per-session ingest-to-emit latency of the newest slot finalized per hop", bySession),
		Estimates: reg.CounterFamily("rim_session_estimates_total",
			"finalized estimates emitted per session", bySession),
		EstDegraded: reg.CounterFamily("rim_session_estimates_degraded_total",
			"finalized estimates emitted with the Degraded flag per session", bySession),
		LowConf: reg.CounterFamily("rim_session_low_confidence_total",
			"moving estimates below the configured confidence floor per session", bySession),

		ShardDepth: reg.GaugeFamily("rim_shard_queue_depth",
			"frames buffered across one shard's session queues", byShard),
		ShardSessions: reg.GaugeFamily("rim_shard_sessions",
			"sessions resident in one shard", byShard),

		QueueDepth:     reg.Gauge("rim_session_queue_depth", "frames buffered across all session queues"),
		BreakerState:   reg.Gauge("rim_breaker_state", "global circuit breaker state (0 closed, 1 open, 2 half-open)"),
		Checkpoints:    reg.Counter("rim_checkpoints_total", "session checkpoints captured"),
		CheckpointErrs: reg.Counter("rim_checkpoint_errors_total", "session checkpoint captures or writes that failed"),
		Restores:       reg.Counter("rim_session_restores_total", "sessions restored from a checkpoint"),
	}
}

// sessionMetrics is one session's resolved child handles — one family
// lookup per counter at session construction, zero lookups per frame.
// All nil (no-op) when the bundle is disabled.
type sessionMetrics struct {
	restarts    *obs.Counter
	quarantined *obs.Counter
	frames      *obs.Counter
	dropped     *obs.Counter
	rejected    *obs.Counter
	degraded    *obs.Counter
	queueWait   *obs.Histogram
	lag         *obs.Histogram
	estimates   *obs.Counter
	estDegraded *obs.Counter
	lowConf     *obs.Counter
}

// children resolves the per-session child handles for id.
func (m *Metrics) children(id string) sessionMetrics {
	if m == nil {
		return sessionMetrics{}
	}
	return sessionMetrics{
		restarts:    m.Restarts.With(id),
		quarantined: m.Quarantined.With(id),
		frames:      m.Frames.With(id),
		dropped:     m.Dropped.With(id),
		rejected:    m.Rejected.With(id),
		degraded:    m.Degraded.With(id),
		queueWait:   m.QueueWait.With(id),
		lag:         m.Lag.With(id),
		estimates:   m.Estimates.With(id),
		estDegraded: m.EstDegraded.With(id),
		lowConf:     m.LowConf.With(id),
	}
}

// forgetSession folds a closed session's children into the overflow child
// so the label space tracks the live fleet, not its whole history.
func (m *Metrics) forgetSession(id string) {
	if m == nil {
		return
	}
	m.Restarts.Forget(id)
	m.Quarantined.Forget(id)
	m.Frames.Forget(id)
	m.Dropped.Forget(id)
	m.Rejected.Forget(id)
	m.Degraded.Forget(id)
	m.QueueWait.Forget(id)
	m.Lag.Forget(id)
	m.Estimates.Forget(id)
	m.EstDegraded.Forget(id)
	m.LowConf.Forget(id)
}
