// Package session is the multi-session substrate of the rimserved daemon:
// a striped-shard registry of supervised tracking sessions, each owning a
// core.Streamer behind a bounded frame queue with an explicit overload
// policy. Sessions that panic or flap are restarted with capped
// exponential backoff and quarantined when restarts stop helping; a global
// circuit breaker sheds new sessions when the daemon itself is unhealthy;
// periodic checkpoints make a daemon kill recoverable.
package session

import "rim/internal/obs"

// Metrics bundles the session layer's metric handles, resolved once so the
// per-frame path never touches the registry map. Every handle is nil-safe
// (obs no-ops on nil receivers), so a zero Metrics disables the whole
// surface.
type Metrics struct {
	Active      *obs.Gauge   // rim_sessions_active
	Opened      *obs.Counter // rim_sessions_opened_total
	Closed      *obs.Counter // rim_sessions_closed_total
	Shed        *obs.Counter // rim_shed_total
	Restarts    *obs.Counter // rim_session_restarts_total
	Quarantined *obs.Counter // rim_session_quarantined_total
	Panics      *obs.Counter // rim_session_panics_total

	Frames     *obs.Counter   // rim_session_frames_total
	Dropped    *obs.Counter   // rim_session_frames_dropped_total
	Rejected   *obs.Counter   // rim_session_frames_rejected_total
	Degraded   *obs.Counter   // rim_session_degrade_transitions_total
	QueueDepth *obs.Gauge     // rim_session_queue_depth
	QueueWait  *obs.Histogram // rim_session_queue_wait_seconds

	BreakerState   *obs.Gauge   // rim_breaker_state
	Checkpoints    *obs.Counter // rim_checkpoints_total
	CheckpointErrs *obs.Counter // rim_checkpoint_errors_total
	Restores       *obs.Counter // rim_session_restores_total
}

// NewMetrics registers the session-layer metrics on reg (nil reg yields a
// fully no-op bundle).
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Active:      reg.Gauge("rim_sessions_active", "sessions currently admitted or running"),
		Opened:      reg.Counter("rim_sessions_opened_total", "sessions admitted by the registry"),
		Closed:      reg.Counter("rim_sessions_closed_total", "sessions closed (graceful or quarantine)"),
		Shed:        reg.Counter("rim_shed_total", "session opens shed by admission control or the circuit breaker"),
		Restarts:    reg.Counter("rim_session_restarts_total", "supervisor restarts of failed sessions"),
		Quarantined: reg.Counter("rim_session_quarantined_total", "sessions quarantined after restarts stopped helping"),
		Panics:      reg.Counter("rim_session_panics_total", "panics recovered inside session workers"),

		Frames:     reg.Counter("rim_session_frames_total", "frames accepted into session queues"),
		Dropped:    reg.Counter("rim_session_frames_dropped_total", "frames dropped from the front of full queues (drop-oldest)"),
		Rejected:   reg.Counter("rim_session_frames_rejected_total", "frames rejected at full queues (reject policy)"),
		Degraded:   reg.Counter("rim_session_degrade_transitions_total", "queue-pressure transitions into coarser-hop degraded mode"),
		QueueDepth: reg.Gauge("rim_session_queue_depth", "frames buffered across all session queues"),
		QueueWait:  reg.Timer("rim_session_queue_wait_seconds", "time frames spend queued before the worker picks them up"),

		BreakerState:   reg.Gauge("rim_breaker_state", "global circuit breaker state (0 closed, 1 open, 2 half-open)"),
		Checkpoints:    reg.Counter("rim_checkpoints_total", "session checkpoints captured"),
		CheckpointErrs: reg.Counter("rim_checkpoint_errors_total", "session checkpoint captures or writes that failed"),
		Restores:       reg.Counter("rim_session_restores_total", "sessions restored from a checkpoint"),
	}
}
