package session

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"rim/internal/core"
	"rim/internal/obs"
	"rim/internal/obs/trace"
)

// errInjectedPanic makes the scripted fake panic instead of returning.
var errInjectedPanic = errors.New("panic please")

// fakeDriver scripts the behavior of every stream a session's factory
// builds, across restarts. script is called with the 1-based build number
// and the 1-based push number within that build.
type fakeDriver struct {
	mu     sync.Mutex
	builds int
	script func(build, push int) error
}

func (d *fakeDriver) factory(id string, spec Spec, cp *core.StreamCheckpoint) (Stream, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.builds++
	return &fakeStream{d: d, build: d.builds, restored: cp != nil}, nil
}

func (d *fakeDriver) buildCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.builds
}

// fakeStream is one scripted incarnation. Analysis failures bump
// ConsecutiveFailures the way core.Streamer does; any other error resets
// nothing and is returned as-is.
type fakeStream struct {
	d        *fakeDriver
	build    int
	restored bool

	mu     sync.Mutex
	pushes int
	consec int
}

func (f *fakeStream) PushMaskedCtx(ctx context.Context, snap [][][]complex128, missing []bool) ([]core.Estimate, error) {
	f.mu.Lock()
	f.pushes++
	n := f.pushes
	f.mu.Unlock()
	var err error
	if f.d.script != nil {
		err = f.d.script(f.build, n)
	}
	if errors.Is(err, errInjectedPanic) {
		panic("injected worker panic")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if errors.Is(err, core.ErrAnalysis) {
		f.consec++
	} else if err == nil {
		f.consec = 0
	}
	if err != nil {
		return nil, err
	}
	return []core.Estimate{{T: float64(n)}}, nil
}

func (f *fakeStream) Flush() []core.Estimate { return nil }

func (f *fakeStream) Health() core.Health {
	f.mu.Lock()
	defer f.mu.Unlock()
	return core.Health{Slots: f.pushes, ConsecutiveFailures: f.consec}
}

func (f *fakeStream) Checkpoint() *core.StreamCheckpoint {
	return &core.StreamCheckpoint{Rate: 100, NumAnts: 3, NumTx: 1, NumSub: 4}
}

func testSpec() Spec { return Spec{Rate: 100, NumAnts: 3, NumTx: 1, NumSub: 4} }

func testFrame() [][][]complex128 {
	snap := make([][][]complex128, 3)
	for a := range snap {
		snap[a] = [][]complex128{make([]complex128, 4)}
	}
	return snap
}

func fastSupervisor(d *fakeDriver, m *Metrics) Config {
	return Config{
		Factory:          d.factory,
		Queue:            64,
		FailureThreshold: 2,
		MaxRestarts:      2,
		BackoffMin:       time.Millisecond,
		BackoffMax:       4 * time.Millisecond,
		HealthyAfter:     time.Millisecond,
		Metrics:          m,
	}
}

func waitState(t *testing.T, s *Session, want State) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.State() == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("session stuck in %v, want %v", s.State(), want)
}

func TestSupervisorRecoversPanicAndRestarts(t *testing.T) {
	d := &fakeDriver{}
	d.script = func(build, push int) error {
		if build == 1 && push == 3 {
			return errInjectedPanic
		}
		return nil
	}
	m := NewMetrics(obs.NewRegistry())
	s, err := newSession("p1", testSpec(), fastSupervisor(d, m), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.ingest(testFrame(), nil); err != nil {
			t.Fatal(err)
		}
	}
	// The panic on push 3 must not kill the session: a second incarnation
	// processes the rest.
	deadline := time.Now().Add(5 * time.Second)
	for d.buildCount() < 2 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if d.buildCount() < 2 {
		t.Fatal("no restart after worker panic")
	}
	waitState(t, s, StateRunning)
	s.close()
	<-s.Done()
	if got := m.Panics.Value(); got != 1 {
		t.Errorf("panic counter = %d, want 1", got)
	}
	if got := m.Restarts.Total(); got != 1 {
		t.Errorf("restart counter = %d, want 1", got)
	}
	if s.State() != StateClosed {
		t.Errorf("final state = %v", s.State())
	}
	if s.Estimates() == 0 {
		t.Error("no estimates recorded after recovery")
	}
}

func TestSupervisorQuarantinesFlappingSession(t *testing.T) {
	d := &fakeDriver{}
	analysisErr := fmt.Errorf("%w: synthetic hop failure", core.ErrAnalysis)
	d.script = func(build, push int) error { return analysisErr }

	m := NewMetrics(obs.NewRegistry())
	rec := trace.NewRecorder(16)
	pmDir := t.TempDir()
	flight := trace.NewFlight(trace.FlightConfig{Recorder: rec, Dir: pmDir})

	cfg := fastSupervisor(d, m)
	cfg.Flight = flight
	var hookMu sync.Mutex
	hooked := 0
	cfg.onQuarantine = func(qs *Session) {
		// The registry's hook consumes the exit credit; mirror that here.
		if qs.takeExit() {
			hookMu.Lock()
			hooked++
			hookMu.Unlock()
		}
	}

	s, err := newSession("q1", testSpec(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Every push fails analysis; FailureThreshold=2 flaps each incarnation
	// after 2 pushes, MaxRestarts=2 allows 2 restarts, the third failure
	// quarantines. 3 incarnations × 2 pushes = 6 frames minimum.
	for i := 0; i < 20; i++ {
		_ = s.ingest(testFrame(), nil)
	}
	waitState(t, s, StateQuarantined)
	<-s.Done()

	if got := d.buildCount(); got != 3 {
		t.Errorf("stream built %d times, want 3 (initial + 2 restarts)", got)
	}
	if got := m.Restarts.Total(); got != 3 {
		t.Errorf("restart counter = %d, want 3 (each failure counts)", got)
	}
	if got := m.Quarantined.Total(); got != 1 {
		t.Errorf("quarantine counter = %d, want 1", got)
	}
	hookMu.Lock()
	h := hooked
	hookMu.Unlock()
	if h != 1 {
		t.Errorf("onQuarantine hook fired %d times, want 1", h)
	}
	// Quarantine must leave a postmortem bundle behind.
	ents, err := os.ReadDir(pmDir)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range ents {
		if strings.Contains(e.Name(), trace.ReasonSessionQuarantined) {
			found = true
		}
	}
	if !found {
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name()
		}
		t.Errorf("no quarantine postmortem bundle in %v", names)
	}
	// Frames for a quarantined session are refused.
	if err := s.ingest(testFrame(), nil); err == nil {
		t.Error("ingest into a quarantined session must error")
	}
	// The exit credit is handed out exactly once.
	if s.takeExit() {
		t.Error("quarantine must have consumed the exit credit")
	}
}

func TestSupervisorRestartRestoresFromCheckpoint(t *testing.T) {
	d := &fakeDriver{}
	var restoredMu sync.Mutex
	restored := false
	d.script = func(build, push int) error {
		if build == 1 && push == 2 {
			return errInjectedPanic
		}
		return nil
	}
	base := d.factory
	m := NewMetrics(obs.NewRegistry())
	cfg := fastSupervisor(d, m)
	cfg.CheckpointEveryFrames = 1 // refresh lastCp on every frame
	cfg.Factory = func(id string, spec Spec, cp *core.StreamCheckpoint) (Stream, error) {
		if cp != nil {
			restoredMu.Lock()
			restored = true
			restoredMu.Unlock()
		}
		return base(id, spec, cp)
	}
	s, err := newSession("r1", testSpec(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		_ = s.ingest(testFrame(), nil)
	}
	deadline := time.Now().Add(5 * time.Second)
	for d.buildCount() < 2 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	s.close()
	<-s.Done()
	restoredMu.Lock()
	defer restoredMu.Unlock()
	if !restored {
		t.Error("restarted factory never saw the in-memory checkpoint")
	}
	if got := m.Restores.Value(); got == 0 {
		t.Error("restore counter not incremented")
	}
}

func TestSupervisorHealthyRunForgivesRestarts(t *testing.T) {
	d := &fakeDriver{}
	d.script = func(build, push int) error {
		if build == 1 {
			return fmt.Errorf("%w: early flap", core.ErrAnalysis)
		}
		return nil // second incarnation is clean
	}
	m := NewMetrics(obs.NewRegistry())
	s, err := newSession("h1", testSpec(), fastSupervisor(d, m), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Enough clean frames after the restart to cross the 16-frame healthy
	// check with HealthyAfter=1ms.
	for i := 0; i < 60; i++ {
		_ = s.ingest(testFrame(), nil)
		time.Sleep(time.Millisecond)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cur, total := s.Restarts(); cur == 0 && total == 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	cur, total := s.Restarts()
	if cur != 0 || total != 1 {
		t.Errorf("restarts = %d (total %d), want 0 (total 1) after a healthy run", cur, total)
	}
	s.close()
	<-s.Done()
}

func TestSessionRejectPolicyRefusesOverflow(t *testing.T) {
	d := &fakeDriver{}
	block := make(chan struct{})
	var once sync.Once
	d.script = func(build, push int) error {
		<-block // wedge the worker so the queue fills
		return nil
	}
	m := NewMetrics(obs.NewRegistry())
	cfg := fastSupervisor(d, m)
	cfg.Queue = 2
	cfg.Policy = Reject
	s, err := newSession("rej1", testSpec(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		once.Do(func() { close(block) })
		s.close()
		<-s.Done()
	}()
	// First frame wedges in the worker; wait until it is picked up so the
	// queue is empty again, then two more fill it.
	if err := s.ingest(testFrame(), nil); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.QueueDepth() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 2; i++ {
		if err := s.ingest(testFrame(), nil); err != nil {
			t.Fatalf("frame %d refused early: %v", i, err)
		}
	}
	if err := s.ingest(testFrame(), nil); err == nil {
		t.Fatal("overflow frame accepted under Reject policy")
	}
	if got := m.Rejected.Total(); got != 1 {
		t.Errorf("rejected counter = %d, want 1", got)
	}
}

func TestSessionDropOldestEvicts(t *testing.T) {
	d := &fakeDriver{}
	block := make(chan struct{})
	var once sync.Once
	d.script = func(build, push int) error {
		<-block
		return nil
	}
	m := NewMetrics(obs.NewRegistry())
	cfg := fastSupervisor(d, m)
	cfg.Queue = 2
	cfg.Policy = DropOldest
	s, err := newSession("drop1", testSpec(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		once.Do(func() { close(block) })
		s.close()
		<-s.Done()
	}()
	for i := 0; i < 3; i++ {
		if err := s.ingest(testFrame(), nil); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.QueueDepth() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := s.ingest(testFrame(), nil); err != nil {
		t.Fatalf("drop-oldest ingest errored: %v", err)
	}
	if got := m.Dropped.Total(); got == 0 {
		t.Error("dropped counter not incremented")
	}
}

func TestSessionCloseIsGraceful(t *testing.T) {
	d := &fakeDriver{}
	m := NewMetrics(obs.NewRegistry())
	s, err := newSession("c1", testSpec(), fastSupervisor(d, m), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		_ = s.ingest(testFrame(), nil)
	}
	s.close()
	select {
	case <-s.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("close did not stop the worker")
	}
	if s.State() != StateClosed {
		t.Errorf("state = %v, want closed", s.State())
	}
	// close is idempotent.
	s.close()
}
