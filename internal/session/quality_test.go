package session

import (
	"testing"
	"time"

	"rim/internal/fusion"
	"rim/internal/obs/quality"
)

// qualitySessionConfig wires a fast supervisor with an ESKF backend and a
// shared consistency engine; sessions named bad-* get the mistune fault
// injector armed.
func qualitySessionConfig(d *fakeDriver, eng *quality.Engine) Config {
	fc := fusion.DefaultConfig(1)
	fc.Backend = fusion.BackendESKF
	cfg := fastSupervisor(d, &Metrics{})
	cfg.Fusion = &fc
	cfg.Quality = eng
	cfg.MistunePrefix = "bad"
	cfg.MistuneNoiseStd = 0.01
	return cfg
}

func waitQuality(t *testing.T, s *Session, pred func(QualityInfo) bool) QualityInfo {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		q, ok := s.Quality()
		if !ok {
			t.Fatalf("session %q has no quality monitor", s.ID)
		}
		if pred(q) {
			return q
		}
		if time.Now().After(deadline) {
			t.Fatalf("session %q quality never converged: %+v", s.ID, q)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestMistunedSessionTripsQualityAlert is the session-level half of the
// detection story: two identical sessions, one with the mistune injector
// armed. The injected noise violates the ESKF's tuned ZUPT measurement
// noise, so ONLY the mistuned session's NIS leaves the chi-square band and
// reaches alert; the clean twin must stay ok on the same estimate stream.
func TestMistunedSessionTripsQualityAlert(t *testing.T) {
	eng := quality.New(quality.Config{Window: 32})
	d := &fakeDriver{}
	cfg := qualitySessionConfig(d, eng)

	good, err := newSession("good-1", testSpec(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer good.close()
	bad, err := newSession("bad-1", testSpec(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer bad.close()

	// The fake stream emits one static (ZUPT) estimate per frame: each
	// push is one scalar speed + one gyro update through the backend.
	for i := 0; i < 200; i++ {
		if err := good.ingest(testFrame(), nil); err != nil {
			t.Fatal(err)
		}
		if err := bad.ingest(testFrame(), nil); err != nil {
			t.Fatal(err)
		}
	}

	bq := waitQuality(t, bad, func(q QualityInfo) bool { return q.State == "alert" })
	if bq.OutsideFrac < 0.5 {
		t.Errorf("mistuned outside_frac = %.2f, want >= 0.5", bq.OutsideFrac)
	}
	gq := waitQuality(t, good, func(q QualityInfo) bool { return q.Samples >= 64 })
	if gq.State != "ok" {
		t.Errorf("clean session state = %q, want ok (outside_frac %.2f)", gq.State, gq.OutsideFrac)
	}
}

// TestQualityInfoInListing: the /sessions row must carry the quality
// verdict when an engine is configured, and closing the session must
// retire its entity from the engine snapshot.
func TestQualityInfoInListing(t *testing.T) {
	eng := quality.New(quality.Config{Window: 32})
	d := &fakeDriver{}
	r := newTestRegistry(t, &Metrics{}, func(rc *RegistryConfig) {
		rc.Session = qualitySessionConfig(d, eng)
	})
	if _, err := r.Open("bad-listing", testSpec()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := r.Ingest("bad-listing", testFrame(), nil); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		infos := r.Infos()
		if len(infos) == 1 && infos[0].Quality != nil && infos[0].Quality.State == "alert" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("listing never carried an alert verdict: %+v", infos)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := r.Close("bad-listing"); err != nil {
		t.Fatal(err)
	}
	if snap := eng.Snapshot(); len(snap.Entities) != 0 {
		t.Fatalf("engine still tracks %d entities after close", len(snap.Entities))
	}
}
