package session

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"
)

func wireFrame(ants, tx, tones int) [][][]complex128 {
	snap := make([][][]complex128, ants)
	v := 0.0
	for a := range snap {
		snap[a] = make([][]complex128, tx)
		for t := range snap[a] {
			snap[a][t] = make([]complex128, tones)
			for k := range snap[a][t] {
				snap[a][t][k] = complex(v, -v)
				v++
			}
		}
	}
	return snap
}

func TestWireRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	spec := Spec{Rate: 100, NumAnts: 3, NumTx: 2, NumSub: 4}
	snap := wireFrame(3, 2, 4)
	missing := []bool{false, true, false}
	if err := WriteWirePreamble(&buf); err != nil {
		t.Fatal(err)
	}
	if err := WriteOpen(&buf, "walker-1", spec); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, "walker-1", snap, missing); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, "walker-1", snap, nil); err != nil {
		t.Fatal(err)
	}
	if err := WriteClose(&buf, "walker-1"); err != nil {
		t.Fatal(err)
	}

	if err := ReadWirePreamble(&buf); err != nil {
		t.Fatal(err)
	}
	wr := NewWireReader(&buf)
	m, err := wr.Read()
	if err != nil || m.Type != MsgOpen || m.ID != "walker-1" || m.Spec != spec {
		t.Fatalf("open: %+v err=%v", m, err)
	}
	m, err = wr.Read()
	if err != nil || m.Type != MsgFrame {
		t.Fatalf("frame: %+v err=%v", m, err)
	}
	if len(m.Missing) != 3 || !m.Missing[1] || m.Missing[0] {
		t.Fatalf("missing flags = %v", m.Missing)
	}
	for a := range snap {
		for tx := range snap[a] {
			for k := range snap[a][tx] {
				if m.Snap[a][tx][k] != snap[a][tx][k] {
					t.Fatalf("snap[%d][%d][%d] = %v, want %v", a, tx, k, m.Snap[a][tx][k], snap[a][tx][k])
				}
			}
		}
	}
	m, err = wr.Read()
	if err != nil || m.Missing != nil {
		t.Fatalf("all-present frame must decode nil Missing, got %v err=%v", m.Missing, err)
	}
	m, err = wr.Read()
	if err != nil || m.Type != MsgClose || m.ID != "walker-1" {
		t.Fatalf("close: %+v err=%v", m, err)
	}
	if _, err = wr.Read(); !errors.Is(err, io.EOF) {
		t.Fatalf("clean hangup must be io.EOF, got %v", err)
	}
}

func TestWireRejectsBadPreamble(t *testing.T) {
	if err := ReadWirePreamble(strings.NewReader("NOTRIM!!")); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestWireRejectsOversizedClaims(t *testing.T) {
	// A header claiming a payload beyond the cap must fail before any
	// allocation of that size.
	var buf bytes.Buffer
	buf.WriteByte(MsgFrame)
	var lenb [4]byte
	binary.LittleEndian.PutUint32(lenb[:], wireMaxPayload+1)
	buf.Write(lenb[:])
	if _, err := NewWireReader(&buf).Read(); err == nil {
		t.Fatal("oversized payload claim accepted")
	}

	// Absurd dimensions inside a well-framed message are also refused.
	var fb bytes.Buffer
	if err := WriteOpen(&fb, "x", Spec{Rate: 1, NumAnts: 30000, NumTx: 1, NumSub: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := NewWireReader(&fb).Read(); err == nil {
		t.Fatal("out-of-range antenna count accepted")
	}
}

func TestWireRejectsWriterMisuse(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteOpen(&buf, strings.Repeat("x", wireMaxID+1), Spec{}); err == nil {
		t.Fatal("oversized id accepted")
	}
	ragged := wireFrame(2, 2, 4)
	ragged[1][1] = ragged[1][1][:2]
	if err := WriteFrame(&buf, "id", ragged, nil); err == nil {
		t.Fatal("ragged frame accepted")
	}
	if err := WriteFrame(&buf, "id", nil, nil); err == nil {
		t.Fatal("empty frame accepted")
	}
}

func TestWireTruncatedPayloadIsError(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, "id", wireFrame(2, 1, 3), nil); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if _, err := NewWireReader(bytes.NewReader(b[:len(b)-5])).Read(); err == nil {
		t.Fatal("truncated payload accepted")
	}
}
