package session

import (
	"sync"
	"time"
)

// Policy selects what a session does with a new frame when its bounded
// queue is full. See DESIGN.md, "Session lifecycle & overload".
type Policy int

const (
	// DropOldest evicts the oldest queued frame to admit the new one:
	// freshest-data-wins, the right default for live tracking where a
	// stale CSI snapshot is worth less than the current one. The evicted
	// slot reaches the streamer as a missing sample, so the loss is
	// accounted, not silent.
	DropOldest Policy = iota
	// Reject refuses the new frame and tells the producer, for transports
	// that can retransmit or back off at the source.
	Reject
	// Degrade admits like DropOldest but additionally stretches the
	// session's analysis hop (core.Streamer.SetHopFactor) while the queue
	// stays above its high watermark, shedding analysis CPU instead of
	// data until pressure clears.
	Degrade
)

// String returns the policy's flag spelling.
func (p Policy) String() string {
	switch p {
	case DropOldest:
		return "drop-oldest"
	case Reject:
		return "reject"
	case Degrade:
		return "degrade"
	}
	return "unknown"
}

// ParsePolicy parses the flag spelling of a Policy.
func ParsePolicy(s string) (Policy, bool) {
	switch s {
	case "drop-oldest":
		return DropOldest, true
	case "reject":
		return Reject, true
	case "degrade":
		return Degrade, true
	}
	return DropOldest, false
}

// frame is one queued CSI snapshot. The slices are owned by the queue once
// pushed (producers must not reuse them).
type frame struct {
	snap    [][][]complex128
	missing []bool
	enq     time.Time
}

// frameQueue is a bounded MPSC ring of frames: producers push under the
// overload policy, one session worker blocks on pop. Closing wakes the
// worker after the remaining frames drain.
type frameQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    []frame
	head   int // index of the oldest frame
	n      int // frames queued
	closed bool
}

func newFrameQueue(capacity int) *frameQueue {
	if capacity < 1 {
		capacity = 1
	}
	q := &frameQueue{buf: make([]frame, capacity)}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues f. When the queue is full: with dropOldest it evicts the
// oldest frame (returning evicted=true), otherwise it refuses f
// (accepted=false). Pushing to a closed queue refuses.
func (q *frameQueue) push(f frame, dropOldest bool) (accepted, evicted bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false, false
	}
	if q.n == len(q.buf) {
		if !dropOldest {
			return false, false
		}
		q.buf[q.head] = frame{}
		q.head = (q.head + 1) % len(q.buf)
		q.n--
		evicted = true
	}
	q.buf[(q.head+q.n)%len(q.buf)] = f
	q.n++
	q.cond.Signal()
	return true, evicted
}

// pop blocks until a frame is available or the queue is closed and
// drained, in which case ok is false.
func (q *frameQueue) pop() (f frame, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.n == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.n == 0 {
		return frame{}, false
	}
	f = q.buf[q.head]
	q.buf[q.head] = frame{}
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return f, true
}

// close marks the queue closed; queued frames remain poppable. Idempotent.
func (q *frameQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// drain discards all queued frames (quarantine path: the worker is gone,
// nobody will pop) and returns how many were discarded.
func (q *frameQueue) drain() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := q.n
	for i := 0; i < n; i++ {
		q.buf[(q.head+i)%len(q.buf)] = frame{}
	}
	q.head, q.n = 0, 0
	return n
}

// depth returns the current queue occupancy.
func (q *frameQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

// capacity returns the fixed queue size.
func (q *frameQueue) capacity() int { return len(q.buf) }
