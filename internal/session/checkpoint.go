package session

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"

	"rim/internal/core"
)

// Checkpoint file format (little-endian):
//
//	offset  size  field
//	0       8     magic "RIMCKPT1"
//	8       2     version (currently 1)
//	10      8     payload length
//	18      4     CRC-32 (IEEE) of the payload
//	22      n     payload: gob-encoded Checkpoint
//
// The magic rejects foreign files, the version gates format evolution, and
// the checksum rejects torn or bit-rotted writes — a truncated or corrupt
// checkpoint must fail loudly at load, never restore a half-session.
const (
	checkpointMagic   = "RIMCKPT1"
	checkpointVersion = 1
	// checkpointMaxBytes caps the declared payload length so a corrupt
	// header cannot make the loader allocate unbounded memory.
	checkpointMaxBytes = 1 << 30
)

// Checkpoint is one session's durable state: identity, stream shape, and
// the captured streamer state. SavedUnixNs stamps the capture so restore
// can report staleness.
type Checkpoint struct {
	ID          string
	Spec        Spec
	SavedUnixNs int64
	Stream      *core.StreamCheckpoint
}

// EncodeCheckpoint writes cp to w in the versioned, checksummed format.
func EncodeCheckpoint(w io.Writer, cp *Checkpoint) error {
	if cp == nil {
		return fmt.Errorf("session: nil checkpoint")
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(cp); err != nil {
		return fmt.Errorf("session: encode checkpoint %q: %w", cp.ID, err)
	}
	var hdr [22]byte
	copy(hdr[:8], checkpointMagic)
	binary.LittleEndian.PutUint16(hdr[8:10], checkpointVersion)
	binary.LittleEndian.PutUint64(hdr[10:18], uint64(payload.Len()))
	binary.LittleEndian.PutUint32(hdr[18:22], crc32.ChecksumIEEE(payload.Bytes()))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload.Bytes())
	return err
}

// DecodeCheckpoint reads one checkpoint from r, rejecting bad magic,
// unknown versions, truncation and checksum mismatches.
func DecodeCheckpoint(r io.Reader) (*Checkpoint, error) {
	var hdr [22]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("session: checkpoint header: %w", err)
	}
	if string(hdr[:8]) != checkpointMagic {
		return nil, fmt.Errorf("session: not a checkpoint file (bad magic %q)", hdr[:8])
	}
	if v := binary.LittleEndian.Uint16(hdr[8:10]); v != checkpointVersion {
		return nil, fmt.Errorf("session: checkpoint version %d, want %d", v, checkpointVersion)
	}
	n := binary.LittleEndian.Uint64(hdr[10:18])
	if n > checkpointMaxBytes {
		return nil, fmt.Errorf("session: checkpoint payload claims %d bytes, cap is %d", n, checkpointMaxBytes)
	}
	want := binary.LittleEndian.Uint32(hdr[18:22])
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("session: checkpoint truncated: %w", err)
	}
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("session: checkpoint checksum mismatch (got %08x, want %08x)", got, want)
	}
	cp := &Checkpoint{}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(cp); err != nil {
		return nil, fmt.Errorf("session: decode checkpoint: %w", err)
	}
	return cp, nil
}

// checkpointFile returns the on-disk name for a session's checkpoint, with
// the ID sanitized so a hostile session name cannot traverse directories.
func checkpointFile(dir, id string) string {
	safe := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		}
		return '_'
	}, id)
	if safe == "" || safe == "." || safe == ".." {
		safe = "_"
	}
	return filepath.Join(dir, "ckpt-"+safe+".rimckpt")
}

// SaveCheckpoint atomically writes cp under dir (tmp file + rename, so a
// crash mid-write leaves the previous checkpoint intact) and returns the
// final path.
func SaveCheckpoint(dir string, cp *Checkpoint) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := checkpointFile(dir, cp.ID)
	tmp, err := os.CreateTemp(dir, ".ckpt-*.tmp")
	if err != nil {
		return "", err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := EncodeCheckpoint(tmp, cp); err != nil {
		tmp.Close()
		return "", err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return "", err
	}
	if err := tmp.Close(); err != nil {
		return "", err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return "", err
	}
	return path, nil
}

// LoadCheckpoint reads and validates one checkpoint file.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeCheckpoint(f)
}

// LoadCheckpointDir loads every checkpoint under dir, skipping (and
// reporting) files that fail validation — one rotten checkpoint must not
// block the rest of the fleet from restoring. A missing dir yields no
// checkpoints and no error.
func LoadCheckpointDir(dir string) ([]*Checkpoint, []error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, []error{err}
	}
	var out []*Checkpoint
	var errs []error
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".rimckpt") {
			continue
		}
		cp, err := LoadCheckpoint(filepath.Join(dir, e.Name()))
		if err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", e.Name(), err))
			continue
		}
		out = append(out, cp)
	}
	return out, errs
}

// RemoveCheckpoint deletes a session's checkpoint file (after a graceful
// close, so a later restart does not resurrect it). Missing files are fine.
func RemoveCheckpoint(dir, id string) error {
	err := os.Remove(checkpointFile(dir, id))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}
