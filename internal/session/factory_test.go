package session

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"rim/internal/array"
	"rim/internal/core"
	"rim/internal/trrs"
)

func testArrayFor(numAnts int) (*array.Array, error) {
	if numAnts != 3 {
		return nil, fmt.Errorf("no array with %d antennas", numAnts)
	}
	return array.NewLinear3(0.029), nil
}

// TestNewCoreFactory exercises the canonical daemon factory: template
// knobs (including the TRRS kernel and plane precision) reach every
// session, the cold and checkpoint-restore paths both produce working
// streams, and an unresolvable antenna count surfaces as an error.
func TestNewCoreFactory(t *testing.T) {
	if _, err := NewCoreFactory(CoreFactoryConfig{}); err == nil {
		t.Fatal("nil ArrayFor must error")
	}
	tmpl := core.StreamConfig{SpanSeconds: 2, HopSeconds: 0.25}
	tmpl.Core.WindowSeconds = 0.3
	tmpl.Core.Parallelism = 1
	tmpl.Core.Kernel = trrs.KernelVector
	tmpl.Core.Precision = trrs.PrecisionFloat32
	factory, err := NewCoreFactory(CoreFactoryConfig{Template: tmpl, ArrayFor: testArrayFor})
	if err != nil {
		t.Fatal(err)
	}

	spec := Spec{Rate: 100, NumAnts: 3, NumTx: 1, NumSub: 16}
	stream, err := factory("s1", spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, bad := factory("s2", Spec{Rate: 100, NumAnts: 5, NumTx: 1, NumSub: 16}, nil); bad == nil {
		t.Fatal("unresolvable antenna count must error")
	}

	// Feed enough random frames to cross a hop boundary; the stream must
	// ingest and analyze without error on the float32 vector path.
	rng := rand.New(rand.NewSource(9))
	snap := make([][][]complex128, spec.NumAnts)
	for a := range snap {
		snap[a] = make([][]complex128, spec.NumTx)
		for tx := range snap[a] {
			snap[a][tx] = make([]complex128, spec.NumSub)
		}
	}
	for f := 0; f < 220; f++ {
		for a := range snap {
			for tx := range snap[a] {
				for k := range snap[a][tx] {
					snap[a][tx][k] = complex(rng.NormFloat64(), rng.NormFloat64())
				}
			}
		}
		if _, err := stream.PushMaskedCtx(context.Background(), snap, nil); err != nil {
			t.Fatalf("frame %d: %v", f, err)
		}
	}
	if h := stream.Health(); h.Slots != 220 {
		t.Fatalf("health slots = %d, want 220", h.Slots)
	}

	// Restore from the live stream's checkpoint: the factory must route
	// through NewStreamerFromCheckpoint and resume the same timeline.
	cp := stream.Checkpoint()
	if cp == nil {
		t.Fatal("nil checkpoint from live stream")
	}
	restored, err := factory("s1", spec, cp)
	if err != nil {
		t.Fatal(err)
	}
	if h := restored.Health(); h.Slots != 220 {
		t.Fatalf("restored health slots = %d, want 220", h.Slots)
	}
	restored.Flush()
}
