package session

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"strings"
	"sync"
	"time"

	"rim/internal/core"
	"rim/internal/fusion"
	"rim/internal/geom"
	"rim/internal/obs"
	"rim/internal/obs/quality"
	"rim/internal/obs/trace"
)

// Spec is the CSI shape of one session's stream.
type Spec struct {
	Rate    float64
	NumAnts int
	NumTx   int
	NumSub  int
}

func (s Spec) validate() error {
	if s.Rate <= 0 || s.NumAnts <= 0 || s.NumTx <= 0 || s.NumSub <= 0 {
		return fmt.Errorf("session: spec (%v Hz, %d antennas, %d tx, %d tones) must be positive",
			s.Rate, s.NumAnts, s.NumTx, s.NumSub)
	}
	return nil
}

// Stream is the per-session analysis engine the supervisor drives —
// core.Streamer in production, fakes in the supervisor tests.
type Stream interface {
	PushMaskedCtx(ctx context.Context, snapshot [][][]complex128, missing []bool) ([]core.Estimate, error)
	Flush() []core.Estimate
	Health() core.Health
	Checkpoint() *core.StreamCheckpoint
}

// hopStretcher is the optional degrade-to-coarser-hop hook (implemented by
// core.Streamer; fakes may omit it).
type hopStretcher interface{ SetHopFactor(int) }

// perStreamObserver is the optional per-entity metric attachment hook
// (implemented by core.Streamer): when the metrics bundle carries labeled
// families, each session hands its own lag child to its stream.
type perStreamObserver interface{ SetPerStreamObs(core.PerStreamObs) }

// StreamFactory builds a session's Stream, restoring from cp when non-nil
// (a supervisor restart or a daemon-level restore).
type StreamFactory func(id string, spec Spec, cp *core.StreamCheckpoint) (Stream, error)

// State is a session's lifecycle state. Transitions:
//
//	admitted → running → closed            (graceful)
//	running → backoff → running            (supervised restart)
//	backoff → quarantined                  (restarts stopped helping)
type State int32

const (
	StateAdmitted State = iota
	StateRunning
	StateBackoff
	StateQuarantined
	StateClosed
)

// String returns the state's log/JSON spelling.
func (s State) String() string {
	switch s {
	case StateAdmitted:
		return "admitted"
	case StateRunning:
		return "running"
	case StateBackoff:
		return "backoff"
	case StateQuarantined:
		return "quarantined"
	case StateClosed:
		return "closed"
	}
	return "unknown"
}

// MarshalText makes the state JSON-friendly in health payloads.
func (s State) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// Config parameterizes every session a Registry owns.
type Config struct {
	// Factory builds each session's Stream (required).
	Factory StreamFactory
	// Queue is the per-session frame queue capacity (default 64).
	Queue int
	// Policy selects the full-queue behavior (default DropOldest).
	Policy Policy
	// HighWater/LowWater are queue-occupancy fractions bounding the
	// Degrade policy's hysteresis: above HighWater the session coarsens
	// its hop, below LowWater it restores it (defaults 0.75 / 0.25).
	HighWater float64
	LowWater  float64
	// PushDeadline bounds each ingest→hop→emit step through the stream; a
	// hop that overruns emits degraded placeholders (see
	// core.StreamConfig.HopDeadline). Zero disables.
	PushDeadline time.Duration
	// FailureThreshold restarts the stream after this many consecutive
	// ErrAnalysis failures (transient failures below it just degrade the
	// affected windows; default 5).
	FailureThreshold int
	// MaxRestarts quarantines a session after this many consecutive
	// restarts without a healthy run (default 3).
	MaxRestarts int
	// BackoffMin/BackoffMax bound the exponential restart backoff
	// (defaults 50ms / 2s); each wait gets ±25% jitter.
	BackoffMin time.Duration
	BackoffMax time.Duration
	// HealthyAfter resets the consecutive-restart count once a restarted
	// session has run cleanly this long (default 5s).
	HealthyAfter time.Duration
	// CheckpointEveryFrames refreshes the session's in-memory restart
	// checkpoint every N accepted frames (default 128; the registry's
	// ticker persists it to disk).
	CheckpointEveryFrames int
	// Emit, when non-nil, receives every batch of finalized estimates.
	Emit func(id string, ests []core.Estimate)
	// Fusion, when non-nil, runs a fusion backend (fusion.Config.Backend
	// selects particle filter or ESKF) over every session's finalized
	// estimates; the fused pose is exposed via Session.Pose and the
	// /sessions listing. The config is a template: each session gets its
	// own backend instance with StepSeconds fixed to its slot rate.
	Fusion *fusion.Config
	// ConfidenceFloor counts moving estimates whose alignment confidence
	// falls below this threshold into rim_session_low_confidence_total
	// and the /sessions listing (0 disables the accounting).
	ConfidenceFloor float64
	// Quality, when non-nil alongside Fusion, attaches one estimator-
	// consistency monitor per session: ESKF innovations and particle-filter
	// degeneracy stats flow into per-channel NIS windows, and the session's
	// verdict is exposed via Session.Quality and the /sessions listing.
	Quality *quality.Engine
	// MistunePrefix/MistuneNoiseStd are the quality self-test fault
	// injector: sessions whose id starts with MistunePrefix get zero-mean
	// Gaussian noise (std MistuneNoiseStd, metres / radians per step,
	// deterministic per-session stream) added to their fusion inputs. The
	// filter's noise model no longer matches its inputs, so its NIS leaves
	// the chi-square band — the e2e proof that the monitor detects a
	// mis-tuned estimator. Empty prefix disables injection.
	MistunePrefix   string
	MistuneNoiseStd float64
	// Metrics receives the session-layer counters (nil = no-op bundle).
	Metrics *Metrics
	// Breaker is the daemon-wide circuit breaker fed by session failures
	// (nil = no breaker).
	Breaker *Breaker
	// Flight captures postmortem bundles on quarantine (nil = no-op).
	Flight *trace.Flight
	// Log receives supervisor events (nil = no-op logger).
	Log *slog.Logger
	// Seed seeds the backoff jitter (0 = fixed default seed).
	Seed int64
	// onQuarantine notifies the owning registry that the session retired
	// itself (set by Registry, not callers).
	onQuarantine func(s *Session)
}

func (c Config) withDefaults() Config {
	if c.Queue <= 0 {
		c.Queue = 64
	}
	if c.HighWater <= 0 || c.HighWater > 1 {
		c.HighWater = 0.75
	}
	if c.LowWater <= 0 || c.LowWater >= c.HighWater {
		c.LowWater = c.HighWater / 3
	}
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.MaxRestarts <= 0 {
		c.MaxRestarts = 3
	}
	if c.BackoffMin <= 0 {
		c.BackoffMin = 50 * time.Millisecond
	}
	if c.BackoffMax < c.BackoffMin {
		c.BackoffMax = 2 * time.Second
	}
	if c.HealthyAfter <= 0 {
		c.HealthyAfter = 5 * time.Second
	}
	if c.CheckpointEveryFrames <= 0 {
		c.CheckpointEveryFrames = 128
	}
	if c.Metrics == nil {
		c.Metrics = &Metrics{}
	}
	if c.Log == nil {
		c.Log = obs.NopLogger()
	}
	return c
}

// Session is one device's supervised tracking stream: a bounded frame
// queue in front of a worker goroutine that drives the Stream, wrapped in
// a supervisor that recovers panics, classifies failures, restarts with
// capped exponential backoff, and quarantines the session when restarting
// stops helping.
type Session struct {
	ID   string
	Spec Spec

	cfg  Config
	q    *frameQueue
	rng  *rand.Rand       // backoff jitter; worker-goroutine only
	fus  *fuser           // per-session fusion backend (nil = fusion off)
	qmon *quality.Monitor // per-session consistency monitor (nil = off)
	sm   sessionMetrics   // per-session metric children, resolved once

	mu        sync.Mutex
	state     State
	stream    Stream
	lastCp    *core.StreamCheckpoint // latest known-good restart point
	restarts  int                    // consecutive, since last healthy run
	totalRst  int
	health    core.Health // cached last-read stream health
	estimates int
	estDeg    int       // estimates emitted with the Degraded flag
	lowConf   int       // moving estimates below ConfidenceFloor
	lastEst   time.Time // when the session last emitted estimates
	degraded  bool      // coarser-hop mode engaged
	closing   bool
	woken     bool // wake already closed
	exitTaken bool // registry consumed this session's exit exactly once
	lastErr   error

	done chan struct{} // closed when the supervisor goroutine exits
	wake chan struct{} // interrupts backoff sleeps on close
}

// newSession builds and starts a session. cp, when non-nil, restores the
// stream from a checkpoint.
func newSession(id string, spec Spec, cfg Config, cp *core.StreamCheckpoint) (*Session, error) {
	if cfg.Factory == nil {
		return nil, fmt.Errorf("session: Config.Factory is required")
	}
	if err := spec.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x52494d // deterministic default
	}
	s := &Session{
		ID:     id,
		Spec:   spec,
		cfg:    cfg,
		q:      newFrameQueue(cfg.Queue),
		rng:    rand.New(rand.NewSource(seed ^ int64(len(id)))),
		sm:     cfg.Metrics.children(id),
		state:  StateAdmitted,
		lastCp: cp,
		done:   make(chan struct{}),
		wake:   make(chan struct{}),
	}
	if cfg.Fusion != nil {
		fc := *cfg.Fusion
		if mon := cfg.Quality.Monitor(id); mon != nil {
			// The per-session backend reports into the per-session monitor:
			// scalar innovations land in per-channel NIS windows, particle
			// stats in the degeneracy gauges.
			s.qmon = mon
			fc.Innovations = func(ch int, nu, sVar float64) {
				mon.Innovation(ch, fusion.ChannelName(ch), nu, sVar)
			}
			fc.PFStats = mon.PFStep
		}
		var noiseStd float64
		if cfg.MistunePrefix != "" && strings.HasPrefix(id, cfg.MistunePrefix) {
			noiseStd = cfg.MistuneNoiseStd
		}
		fus, err := newFuser(fc, spec.Rate, noiseStd, id)
		if err != nil {
			return nil, fmt.Errorf("session %q fusion backend: %w", id, err)
		}
		s.fus = fus
	}
	go s.run()
	return s, nil
}

// Pose returns the latest fused pose (relative to the session's first
// frame) and whether fusion is enabled for this session.
func (s *Session) Pose() (geom.Pose, bool) {
	if s.fus == nil {
		return geom.Pose{}, false
	}
	return s.fus.Pose(), true
}

// QualityInfo is a session's estimator-consistency verdict in the
// /sessions listing.
type QualityInfo struct {
	// State is the monitor verdict: "ok", "warn" or "alert".
	State string `json:"state"`
	// OutsideFrac is the worst per-channel windowed fraction of NIS
	// samples outside the chi-square acceptance band.
	OutsideFrac float64 `json:"outside_frac"`
	// Samples counts innovation samples folded into the monitor.
	Samples uint64 `json:"samples"`
}

// Quality returns the session's estimator-consistency verdict and whether
// a quality monitor is attached.
func (s *Session) Quality() (QualityInfo, bool) {
	if s.qmon == nil {
		return QualityInfo{}, false
	}
	st, frac, n := s.qmon.Summary()
	return QualityInfo{State: st.String(), OutsideFrac: frac, Samples: n}, true
}

// State returns the session's lifecycle state.
func (s *Session) State() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Health returns a detached copy of the last stream health observed by the
// worker (safe to serialize concurrently).
func (s *Session) Health() core.Health {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.health.Clone()
}

// Restarts returns (consecutive, lifetime) supervisor restarts.
func (s *Session) Restarts() (int, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.restarts, s.totalRst
}

// Estimates returns how many finalized estimates the session has emitted.
func (s *Session) Estimates() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.estimates
}

// QueueDepth returns the frames currently buffered.
func (s *Session) QueueDepth() int { return s.q.depth() }

// Checkpoint captures the session's durable state from the live stream
// (falling back to the last known-good restart point when the stream is
// mid-restart). Returns nil when there is nothing to checkpoint yet.
func (s *Session) Checkpoint() *Checkpoint {
	s.mu.Lock()
	stream := s.stream
	cp := s.lastCp
	s.mu.Unlock()
	if stream != nil {
		if fresh := stream.Checkpoint(); fresh != nil {
			cp = fresh
			s.mu.Lock()
			s.lastCp = fresh
			s.mu.Unlock()
		}
	}
	if cp == nil {
		return nil
	}
	return &Checkpoint{ID: s.ID, Spec: s.Spec, SavedUnixNs: time.Now().UnixNano(), Stream: cp}
}

// ingest enqueues one frame under the overload policy. The slices become
// queue-owned. Returns an error only for Reject-policy overflow or a
// closed/quarantined session.
func (s *Session) ingest(snap [][][]complex128, missing []bool) error {
	f := frame{snap: snap, missing: missing, enq: time.Now()}
	accepted, evicted := s.q.push(f, s.cfg.Policy != Reject)
	if !accepted {
		s.sm.rejected.Inc()
		if st := s.State(); st == StateQuarantined || st == StateClosed {
			return fmt.Errorf("session %q is %s", s.ID, st)
		}
		return fmt.Errorf("session %q queue full (reject policy)", s.ID)
	}
	s.sm.frames.Inc()
	if evicted {
		s.sm.dropped.Inc()
	}
	if s.cfg.Policy == Degrade {
		s.adjustDegrade()
	}
	return nil
}

// adjustDegrade applies the coarser-hop hysteresis for the Degrade policy:
// queue above HighWater (or the breaker open) → stretch the hop; below
// LowWater with the breaker closed → restore it.
func (s *Session) adjustDegrade() {
	occ := float64(s.q.depth()) / float64(s.q.capacity())
	pressured := occ >= s.cfg.HighWater || s.cfg.Breaker.Degraded()
	relieved := occ <= s.cfg.LowWater && !s.cfg.Breaker.Degraded()

	s.mu.Lock()
	stream := s.stream
	var flip int
	if pressured && !s.degraded {
		s.degraded, flip = true, 2
	} else if relieved && s.degraded {
		s.degraded, flip = false, 1
	}
	s.mu.Unlock()
	if flip == 0 {
		return
	}
	if hs, ok := stream.(hopStretcher); ok && stream != nil {
		hs.SetHopFactor(flip)
	}
	if flip == 2 {
		s.sm.degraded.Inc()
		s.cfg.Log.Info("session degraded to coarser hop", "session", s.ID, "queue_occupancy", occ)
	} else {
		s.cfg.Log.Info("session restored normal hop", "session", s.ID, "queue_occupancy", occ)
	}
}

// close begins a graceful shutdown: the queue stops accepting, the worker
// drains what is buffered, flushes the stream and exits. Done() closes
// when the worker is gone.
func (s *Session) close() {
	s.mu.Lock()
	s.closing = true
	wake := !s.woken
	s.woken = true
	s.mu.Unlock()
	s.q.close()
	if wake {
		close(s.wake)
	}
}

// Done returns a channel closed when the supervisor goroutine has exited.
func (s *Session) Done() <-chan struct{} { return s.done }

// run is the supervisor loop: drive the worker until it exits cleanly, or
// classify its failure, back off, and restart — quarantining once
// MaxRestarts consecutive restarts pass without a healthy run.
func (s *Session) run() {
	defer close(s.done)
	m := s.cfg.Metrics
	for {
		quit, err := s.runOnce()
		if quit {
			s.setState(StateClosed)
			m.Closed.Inc()
			return
		}

		// The worker failed (panic, fatal push error, or flapping
		// analysis). Classify toward restart or quarantine.
		s.mu.Lock()
		s.restarts++
		s.totalRst++
		s.lastErr = err
		restarts := s.restarts
		s.stream = nil // rebuilt from lastCp on the next runOnce
		s.mu.Unlock()
		s.sm.restarts.Inc()
		s.cfg.Breaker.Failure()

		if restarts > s.cfg.MaxRestarts {
			s.quarantine(err)
			return
		}

		s.setState(StateBackoff)
		d := s.backoff(restarts)
		s.cfg.Log.Warn("session restarting after failure",
			"session", s.ID, "err", err, "restart", restarts, "backoff", d)
		select {
		case <-time.After(d):
		case <-s.wake:
			// Closing mid-backoff: run once more to drain + flush.
		}
		if s.State() == StateClosed {
			return
		}
	}
}

// backoff returns the capped exponential wait before restart attempt n
// (1-based) with ±25% jitter.
func (s *Session) backoff(n int) time.Duration {
	d := s.cfg.BackoffMin << uint(n-1)
	if d > s.cfg.BackoffMax || d <= 0 {
		d = s.cfg.BackoffMax
	}
	j := 0.75 + 0.5*s.rng.Float64()
	return time.Duration(float64(d) * j)
}

// quarantine retires a flapping session: postmortem bundle, metrics, queue
// drained so producers stop accumulating frames nobody will pop.
func (s *Session) quarantine(err error) {
	s.setState(StateQuarantined)
	s.sm.quarantined.Inc()
	s.cfg.Metrics.Closed.Inc()
	s.q.close()
	s.q.drain()
	s.cfg.Log.Error("session quarantined: restarts stopped helping",
		"session", s.ID, "err", err, "restarts", s.cfg.MaxRestarts)
	s.cfg.Flight.Offer(trace.ReasonSessionQuarantined, -1, map[string]any{
		"session":  s.ID,
		"restarts": s.cfg.MaxRestarts,
		"error":    fmt.Sprint(err),
		"health":   s.Health(),
	})
	if s.cfg.onQuarantine != nil {
		s.cfg.onQuarantine(s)
	}
}

// takeExit consumes the session's single live-count exit credit; the first
// caller (quarantine hook or registry Close) gets true.
func (s *Session) takeExit() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.exitTaken {
		return false
	}
	s.exitTaken = true
	return true
}

// runOnce drives one incarnation of the worker: (re)build the stream
// (restoring from the last checkpoint on restarts), then pump frames from
// the queue through it until the queue closes (quit=true) or a failure
// demands supervision (quit=false, err != nil). Panics anywhere inside are
// recovered and classified as failures.
func (s *Session) runOnce() (quit bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.cfg.Metrics.Panics.Inc()
			quit, err = false, fmt.Errorf("session %q worker panic: %v", s.ID, r)
		}
	}()

	s.mu.Lock()
	stream := s.stream
	cp := s.lastCp
	closing := s.closing
	s.mu.Unlock()
	if stream == nil {
		if closing && cp == nil {
			return true, nil // closed before ever starting
		}
		stream, err = s.cfg.Factory(s.ID, s.Spec, cp)
		if err != nil {
			return false, fmt.Errorf("session %q stream factory: %w", s.ID, err)
		}
		if cp != nil {
			s.cfg.Metrics.Restores.Inc()
		}
		s.mu.Lock()
		s.stream = stream
		degraded := s.degraded
		s.mu.Unlock()
		if po, ok := stream.(perStreamObserver); ok && s.sm.lag != nil {
			po.SetPerStreamObs(core.PerStreamObs{Lag: s.sm.lag})
		}
		if hs, ok := stream.(hopStretcher); ok && degraded {
			hs.SetHopFactor(2)
		}
	}
	s.setState(StateRunning)

	healthySince := time.Now()
	frames := 0
	for {
		f, ok := s.q.pop()
		if !ok {
			if ests := stream.Flush(); len(ests) > 0 {
				s.recordEstimates(ests)
			}
			s.snapshotHealth(stream)
			return true, nil
		}
		s.sm.queueWait.Observe(time.Since(f.enq).Seconds())

		ctx := context.Background()
		var cancel context.CancelFunc
		if s.cfg.PushDeadline > 0 {
			ctx, cancel = context.WithTimeout(ctx, s.cfg.PushDeadline)
		}
		ests, perr := stream.PushMaskedCtx(ctx, f.snap, f.missing)
		if cancel != nil {
			cancel()
		}
		if len(ests) > 0 {
			s.recordEstimates(ests)
		}
		s.snapshotHealth(stream)

		if perr != nil {
			if !errors.Is(perr, core.ErrAnalysis) {
				// Ingest/shape error: the frame is corrupt beyond the
				// stream's own tolerance. Fatal for this incarnation.
				return false, perr
			}
			// Transient analysis failure: the stream already emitted
			// degraded placeholders and stays usable. Only a flapping
			// streak (the stream cannot recover on its own) escalates to
			// a restart.
			if stream.Health().ConsecutiveFailures >= s.cfg.FailureThreshold {
				return false, fmt.Errorf("session %q flapping: %w", s.ID, perr)
			}
		}

		// A sustained clean run forgives past restarts.
		frames++
		if frames%16 == 0 && time.Since(healthySince) >= s.cfg.HealthyAfter {
			s.mu.Lock()
			hadRestarts := s.restarts > 0
			s.restarts = 0
			s.mu.Unlock()
			if hadRestarts {
				s.cfg.Breaker.Success()
				s.cfg.Log.Info("session healthy again", "session", s.ID)
			}
			healthySince = time.Now()
		}
		// Refresh the in-memory restart point so a failure resumes near
		// the frontier instead of replaying the whole window.
		if frames%s.cfg.CheckpointEveryFrames == 0 {
			if fresh := stream.Checkpoint(); fresh != nil {
				s.mu.Lock()
				s.lastCp = fresh
				s.mu.Unlock()
			}
		}
	}
}

func (s *Session) recordEstimates(ests []core.Estimate) {
	deg, low := 0, 0
	for _, e := range ests {
		if e.Degraded {
			deg++
		}
		if floor := s.cfg.ConfidenceFloor; floor > 0 && e.Moving && e.Confidence < floor {
			low++
		}
	}
	s.mu.Lock()
	s.estimates += len(ests)
	s.estDeg += deg
	s.lowConf += low
	s.lastEst = time.Now()
	s.mu.Unlock()
	s.sm.estimates.Add(uint64(len(ests)))
	if deg > 0 {
		s.sm.estDegraded.Add(uint64(deg))
	}
	if low > 0 {
		s.sm.lowConf.Add(uint64(low))
	}
	if s.fus != nil {
		s.fus.feed(ests)
	}
	if s.cfg.Emit != nil {
		s.cfg.Emit(s.ID, ests)
	}
}

// EstimateStats returns (total, degraded, low-confidence) finalized
// estimate counts and the time the session last emitted (zero when never).
func (s *Session) EstimateStats() (total, degraded, lowConf int, last time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.estimates, s.estDeg, s.lowConf, s.lastEst
}

func (s *Session) snapshotHealth(stream Stream) {
	h := stream.Health()
	s.mu.Lock()
	s.health = h
	s.mu.Unlock()
}

func (s *Session) setState(st State) {
	s.mu.Lock()
	if s.state != StateClosed && s.state != StateQuarantined {
		s.state = st
	}
	s.mu.Unlock()
}
