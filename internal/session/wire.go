package session

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Wire protocol between CSI producers and rimserved, little-endian:
//
//	connection preamble: 8 bytes magic "RIMWIRE1"
//	then framed messages:
//	  1 byte  type (MsgOpen | MsgFrame | MsgClose)
//	  4 bytes payload length
//	  n bytes payload
//
//	MsgOpen payload:  id string, rate float64, ants/tx/tones uint16
//	MsgFrame payload: id string, ants/tx/tones uint16,
//	                  ceil(ants/8) bytes missing bitmap,
//	                  ants*tx*tones complex128 rows (re, im float64 pairs)
//	MsgClose payload: id string
//
//	strings: uint16 length + UTF-8 bytes
//
// Every length is validated against a hard cap before allocation, so a
// corrupt or hostile peer cannot OOM the daemon; a malformed message is a
// connection-fatal error (the framing is not self-resynchronizing).
const (
	wireMagic = "RIMWIRE1"

	MsgOpen  byte = 1
	MsgFrame byte = 2
	MsgClose byte = 3

	// wireMaxPayload caps one message (64 MiB admits ~500 antennas of
	// 114-tone 4-tx frames, far beyond any real deployment).
	wireMaxPayload = 64 << 20
	wireMaxID      = 256
	wireMaxDim     = 1024
)

// Msg is one decoded wire message.
type Msg struct {
	Type    byte
	ID      string
	Spec    Spec             // MsgOpen (Rate + shape) and MsgFrame (shape, Rate 0)
	Snap    [][][]complex128 // MsgFrame rows [ant][tx][tone]
	Missing []bool           // MsgFrame per-antenna missing flags
}

// WriteWirePreamble sends the connection magic.
func WriteWirePreamble(w io.Writer) error {
	_, err := io.WriteString(w, wireMagic)
	return err
}

// ReadWirePreamble consumes and verifies the connection magic.
func ReadWirePreamble(r io.Reader) error {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return fmt.Errorf("session: wire preamble: %w", err)
	}
	if string(b[:]) != wireMagic {
		return fmt.Errorf("session: not a RIM wire connection (magic %q)", b[:])
	}
	return nil
}

func putString(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

func writeMsg(w io.Writer, typ byte, payload []byte) error {
	var hdr [5]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// WriteOpen frames a MsgOpen.
func WriteOpen(w io.Writer, id string, spec Spec) error {
	if len(id) > wireMaxID {
		return fmt.Errorf("session: id %d bytes exceeds %d", len(id), wireMaxID)
	}
	buf := make([]byte, 0, 2+len(id)+8+6)
	buf = putString(buf, id)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(spec.Rate))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(spec.NumAnts))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(spec.NumTx))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(spec.NumSub))
	return writeMsg(w, MsgOpen, buf)
}

// WriteFrame frames a MsgFrame. snap is [ant][tx][tone]; missing may be
// nil (all present).
func WriteFrame(w io.Writer, id string, snap [][][]complex128, missing []bool) error {
	if len(id) > wireMaxID {
		return fmt.Errorf("session: id %d bytes exceeds %d", len(id), wireMaxID)
	}
	ants := len(snap)
	if ants == 0 {
		return fmt.Errorf("session: empty frame")
	}
	tx := len(snap[0])
	if tx == 0 {
		return fmt.Errorf("session: frame has no tx rows")
	}
	tones := len(snap[0][0])
	bm := (ants + 7) / 8
	buf := make([]byte, 0, 2+len(id)+6+bm+ants*tx*tones*16)
	buf = putString(buf, id)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(ants))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(tx))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(tones))
	bits := make([]byte, bm)
	for a := 0; a < ants; a++ {
		if missing != nil && a < len(missing) && missing[a] {
			bits[a/8] |= 1 << (a % 8)
		}
	}
	buf = append(buf, bits...)
	for a := 0; a < ants; a++ {
		if len(snap[a]) != tx {
			return fmt.Errorf("session: ragged frame at antenna %d", a)
		}
		for t := 0; t < tx; t++ {
			row := snap[a][t]
			if len(row) != tones {
				return fmt.Errorf("session: ragged frame at antenna %d tx %d", a, t)
			}
			for _, c := range row {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(real(c)))
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(imag(c)))
			}
		}
	}
	return writeMsg(w, MsgFrame, buf)
}

// WriteClose frames a MsgClose.
func WriteClose(w io.Writer, id string) error {
	if len(id) > wireMaxID {
		return fmt.Errorf("session: id %d bytes exceeds %d", len(id), wireMaxID)
	}
	buf := make([]byte, 0, 2+len(id))
	buf = putString(buf, id)
	return writeMsg(w, MsgClose, buf)
}

// WireReader decodes framed wire messages with bounded allocation. Not
// goroutine-safe; decoded Msg slices are freshly allocated and safe to
// hand off to session queues.
type WireReader struct {
	r   *bufio.Reader
	buf []byte // reused payload buffer
}

// NewWireReader wraps r (after its preamble has been consumed) for message
// decoding.
func NewWireReader(r io.Reader) *WireReader {
	if br, ok := r.(*bufio.Reader); ok {
		return &WireReader{r: br}
	}
	return &WireReader{r: bufio.NewReaderSize(r, 1<<16)}
}

// Read decodes the next message. io.EOF at a frame boundary means the peer
// hung up cleanly.
func (wr *WireReader) Read() (*Msg, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(wr.r, hdr[:1]); err != nil {
		return nil, err // io.EOF here = clean hangup
	}
	if _, err := io.ReadFull(wr.r, hdr[1:]); err != nil {
		return nil, fmt.Errorf("session: wire header: %w", err)
	}
	typ := hdr[0]
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > wireMaxPayload {
		return nil, fmt.Errorf("session: wire payload claims %d bytes, cap is %d", n, wireMaxPayload)
	}
	if cap(wr.buf) < int(n) {
		wr.buf = make([]byte, n)
	}
	p := wr.buf[:n]
	if _, err := io.ReadFull(wr.r, p); err != nil {
		return nil, fmt.Errorf("session: wire payload: %w", err)
	}
	switch typ {
	case MsgOpen:
		return parseOpen(p)
	case MsgFrame:
		return parseFrame(p)
	case MsgClose:
		id, _, err := parseString(p)
		if err != nil {
			return nil, err
		}
		return &Msg{Type: MsgClose, ID: id}, nil
	}
	return nil, fmt.Errorf("session: unknown wire message type %d", typ)
}

func parseString(p []byte) (string, []byte, error) {
	if len(p) < 2 {
		return "", nil, fmt.Errorf("session: wire string truncated")
	}
	n := int(binary.LittleEndian.Uint16(p))
	if n > wireMaxID || len(p) < 2+n {
		return "", nil, fmt.Errorf("session: wire string length %d invalid", n)
	}
	return string(p[2 : 2+n]), p[2+n:], nil
}

func parseOpen(p []byte) (*Msg, error) {
	id, p, err := parseString(p)
	if err != nil {
		return nil, err
	}
	if len(p) != 8+6 {
		return nil, fmt.Errorf("session: MsgOpen payload %d bytes, want %d", len(p), 14)
	}
	m := &Msg{Type: MsgOpen, ID: id}
	m.Spec.Rate = math.Float64frombits(binary.LittleEndian.Uint64(p))
	m.Spec.NumAnts = int(binary.LittleEndian.Uint16(p[8:]))
	m.Spec.NumTx = int(binary.LittleEndian.Uint16(p[10:]))
	m.Spec.NumSub = int(binary.LittleEndian.Uint16(p[12:]))
	if err := checkDims(m.Spec.NumAnts, m.Spec.NumTx, m.Spec.NumSub); err != nil {
		return nil, err
	}
	return m, nil
}

func parseFrame(p []byte) (*Msg, error) {
	id, p, err := parseString(p)
	if err != nil {
		return nil, err
	}
	if len(p) < 6 {
		return nil, fmt.Errorf("session: MsgFrame header truncated")
	}
	ants := int(binary.LittleEndian.Uint16(p))
	tx := int(binary.LittleEndian.Uint16(p[2:]))
	tones := int(binary.LittleEndian.Uint16(p[4:]))
	if err := checkDims(ants, tx, tones); err != nil {
		return nil, err
	}
	p = p[6:]
	bm := (ants + 7) / 8
	want := bm + ants*tx*tones*16
	if len(p) != want {
		return nil, fmt.Errorf("session: MsgFrame payload %d bytes, want %d", len(p), want)
	}
	m := &Msg{Type: MsgFrame, ID: id, Spec: Spec{NumAnts: ants, NumTx: tx, NumSub: tones}}
	m.Missing = make([]bool, ants)
	anyMissing := false
	for a := 0; a < ants; a++ {
		if p[a/8]&(1<<(a%8)) != 0 {
			m.Missing[a] = true
			anyMissing = true
		}
	}
	if !anyMissing {
		m.Missing = nil
	}
	p = p[bm:]
	m.Snap = make([][][]complex128, ants)
	// One backing array for all rows keeps a frame at three allocations.
	flat := make([]complex128, ants*tx*tones)
	for a := 0; a < ants; a++ {
		m.Snap[a] = make([][]complex128, tx)
		for t := 0; t < tx; t++ {
			row := flat[:tones:tones]
			flat = flat[tones:]
			for k := 0; k < tones; k++ {
				re := math.Float64frombits(binary.LittleEndian.Uint64(p))
				im := math.Float64frombits(binary.LittleEndian.Uint64(p[8:]))
				p = p[16:]
				row[k] = complex(re, im)
			}
			m.Snap[a][t] = row
		}
	}
	return m, nil
}

func checkDims(ants, tx, tones int) error {
	if ants <= 0 || ants > wireMaxDim || tx <= 0 || tx > wireMaxDim || tones <= 0 || tones > wireMaxDim {
		return fmt.Errorf("session: wire dims (%d antennas, %d tx, %d tones) out of range (0, %d]",
			ants, tx, tones, wireMaxDim)
	}
	return nil
}
