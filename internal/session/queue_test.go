package session

import (
	"testing"
	"time"
)

func qframe(n int) frame {
	return frame{snap: make([][][]complex128, n), enq: time.Now()}
}

func TestQueueFIFO(t *testing.T) {
	q := newFrameQueue(4)
	for i := 1; i <= 3; i++ {
		if ok, ev := q.push(qframe(i), false); !ok || ev {
			t.Fatalf("push %d: accepted=%v evicted=%v", i, ok, ev)
		}
	}
	for i := 1; i <= 3; i++ {
		f, ok := q.pop()
		if !ok || len(f.snap) != i {
			t.Fatalf("pop %d: ok=%v len=%d", i, ok, len(f.snap))
		}
	}
}

func TestQueueRejectWhenFull(t *testing.T) {
	q := newFrameQueue(2)
	q.push(qframe(1), false)
	q.push(qframe(2), false)
	if ok, _ := q.push(qframe(3), false); ok {
		t.Fatal("push into a full queue without drop-oldest must be rejected")
	}
	if d := q.depth(); d != 2 {
		t.Fatalf("depth = %d after rejected push", d)
	}
}

func TestQueueDropOldestEvictsFront(t *testing.T) {
	q := newFrameQueue(2)
	q.push(qframe(1), true)
	q.push(qframe(2), true)
	if ok, ev := q.push(qframe(3), true); !ok || !ev {
		t.Fatalf("drop-oldest push: accepted=%v evicted=%v", ok, ev)
	}
	f, _ := q.pop()
	if len(f.snap) != 2 {
		t.Fatalf("front is frame %d, want 2 (frame 1 evicted)", len(f.snap))
	}
}

func TestQueueCloseUnblocksPop(t *testing.T) {
	q := newFrameQueue(2)
	done := make(chan bool)
	go func() {
		_, ok := q.pop()
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	q.close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("pop on a closed empty queue must report !ok")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pop did not unblock on close")
	}
	// close is idempotent and push after close is refused.
	q.close()
	if ok, _ := q.push(qframe(1), true); ok {
		t.Fatal("push after close must be refused")
	}
}

func TestQueueDrainAfterClose(t *testing.T) {
	q := newFrameQueue(8)
	for i := 0; i < 5; i++ {
		q.push(qframe(1), false)
	}
	q.close()
	// A closed queue still pops its backlog before reporting !ok.
	got := 0
	for {
		_, ok := q.pop()
		if !ok {
			break
		}
		got++
	}
	if got != 5 {
		t.Fatalf("drained %d frames after close, want 5", got)
	}
	if n := q.drain(); n != 0 {
		t.Fatalf("drain on emptied queue = %d", n)
	}
}
