package session

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"rim/internal/core"
	"rim/internal/geom"
	"rim/internal/obs"
)

// ErrUnknownSession reports ingest for a session the registry does not
// hold (never opened, already closed, or shed at admission).
var ErrUnknownSession = fmt.Errorf("session: unknown session")

// ErrShed reports an open refused by admission control: the registry is at
// its session watermark or the circuit breaker has the daemon degraded.
var ErrShed = fmt.Errorf("session: shed by admission control")

// RegistryConfig parameterizes a Registry.
type RegistryConfig struct {
	// Shards stripes the session map to keep ingest lock contention off
	// the daemon's hot path (default 8).
	Shards int
	// MaxSessions is the admission watermark: opens beyond it are shed
	// (0 = unlimited).
	MaxSessions int
	// Session is the per-session configuration template.
	Session Config
	// Breaker is the daemon-wide circuit breaker (nil = none). It is also
	// handed to every session.
	Breaker *Breaker
	// CheckpointDir, when non-empty, persists session checkpoints for
	// crash-restart; CheckpointEvery is the persistence cadence
	// (default 5s).
	CheckpointDir   string
	CheckpointEvery time.Duration
	// Log receives registry events (nil = no-op).
	Log *slog.Logger
}

// shard is one stripe of the session map.
type shard struct {
	mu       sync.Mutex
	sessions map[string]*Session
}

// Registry owns the daemon's sessions: admission control in front, a
// striped-shard map in the middle, supervised sessions underneath, and a
// checkpoint ticker persisting restart state. All methods are
// goroutine-safe.
type Registry struct {
	cfg     RegistryConfig
	m       *Metrics
	breaker *Breaker
	log     *slog.Logger
	shards  []*shard

	// override pins migrated sessions to a non-hash shard.
	ovMu     sync.Mutex
	override map[string]int

	live   atomic.Int64 // admitted/running/backoff sessions
	closed atomic.Bool
	stop   chan struct{}
	wg     sync.WaitGroup
}

// NewRegistry builds a registry and starts its checkpoint ticker (when a
// checkpoint dir is configured).
func NewRegistry(cfg RegistryConfig) (*Registry, error) {
	if cfg.Session.Factory == nil {
		return nil, fmt.Errorf("session: RegistryConfig.Session.Factory is required")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 8
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 5 * time.Second
	}
	if cfg.Log == nil {
		cfg.Log = obs.NopLogger()
	}
	cfg.Session = cfg.Session.withDefaults()
	if cfg.Breaker != nil && cfg.Session.Breaker == nil {
		cfg.Session.Breaker = cfg.Breaker
	}
	r := &Registry{
		cfg:      cfg,
		m:        cfg.Session.Metrics,
		breaker:  cfg.Breaker,
		log:      cfg.Log,
		shards:   make([]*shard, cfg.Shards),
		override: make(map[string]int),
		stop:     make(chan struct{}),
	}
	if r.breaker != nil {
		r.breaker.SetOnChange(func(s BreakerState) {
			r.m.BreakerState.Set(float64(s))
			r.log.Warn("circuit breaker state change", "state", s.String())
		})
	}
	r.cfg.Session.onQuarantine = func(s *Session) {
		if s.takeExit() {
			r.live.Add(-1)
			r.m.Active.Set(float64(r.live.Load()))
		}
	}
	for i := range r.shards {
		r.shards[i] = &shard{sessions: make(map[string]*Session)}
	}
	// The ticker always runs: it refreshes the fleet and per-shard gauges
	// even when checkpointing is off (CheckpointAll no-ops without a dir).
	r.wg.Add(1)
	go r.checkpointLoop()
	return r, nil
}

// shardIndex maps a session ID to its stripe index, honoring migrations.
func (r *Registry) shardIndex(id string) int {
	r.ovMu.Lock()
	if i, ok := r.override[id]; ok {
		r.ovMu.Unlock()
		return i
	}
	r.ovMu.Unlock()
	h := fnv.New32a()
	h.Write([]byte(id))
	return int(h.Sum32() % uint32(len(r.shards)))
}

// shardFor maps a session ID to its stripe.
func (r *Registry) shardFor(id string) *shard { return r.shards[r.shardIndex(id)] }

// Open admits a new session (idempotent: an existing live session is
// returned as-is). Opens are shed — ErrShed — past the MaxSessions
// watermark or while the circuit breaker has the daemon degraded.
func (r *Registry) Open(id string, spec Spec) (*Session, error) {
	return r.open(id, spec, nil)
}

func (r *Registry) open(id string, spec Spec, cp *core.StreamCheckpoint) (*Session, error) {
	if r.closed.Load() {
		return nil, fmt.Errorf("session: registry shut down")
	}
	if id == "" {
		return nil, fmt.Errorf("session: empty session id")
	}
	si := r.shardIndex(id)
	sh := r.shards[si]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if s, ok := sh.sessions[id]; ok {
		return s, nil
	}
	// Admission control: shed rather than sink under overload, and shed
	// everything new while the breaker says the daemon itself is failing.
	if r.breaker.Degraded() {
		r.m.Shed.With("breaker", strconv.Itoa(si)).Inc()
		return nil, fmt.Errorf("%w: circuit breaker open", ErrShed)
	}
	if max := r.cfg.MaxSessions; max > 0 && int(r.live.Load()) >= max {
		r.m.Shed.With("watermark", strconv.Itoa(si)).Inc()
		return nil, fmt.Errorf("%w: %d sessions at watermark %d", ErrShed, r.live.Load(), max)
	}
	s, err := newSession(id, spec, r.cfg.Session, cp)
	if err != nil {
		return nil, err
	}
	sh.sessions[id] = s
	r.live.Add(1)
	r.m.Opened.Inc()
	r.m.Active.Set(float64(r.live.Load()))
	if cp != nil {
		r.log.Info("session restored", "session", id)
	}
	return s, nil
}

// Get returns the live session for id, or nil.
func (r *Registry) Get(id string) *Session {
	sh := r.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.sessions[id]
}

// Ingest routes one frame to its session's queue under the overload
// policy. The slices become session-owned.
func (r *Registry) Ingest(id string, snap [][][]complex128, missing []bool) error {
	s := r.Get(id)
	if s == nil {
		return fmt.Errorf("%w: %q", ErrUnknownSession, id)
	}
	return s.ingest(snap, missing)
}

// Close gracefully ends a session: the queue drains, the stream flushes,
// and — the walk being over — its checkpoint file is removed.
func (r *Registry) Close(id string) error {
	sh := r.shardFor(id)
	sh.mu.Lock()
	s, ok := sh.sessions[id]
	if ok {
		delete(sh.sessions, id)
	}
	sh.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownSession, id)
	}
	r.ovMu.Lock()
	delete(r.override, id)
	r.ovMu.Unlock()
	s.close()
	<-s.Done()
	if s.takeExit() {
		r.live.Add(-1)
		r.m.Active.Set(float64(r.live.Load()))
	}
	if r.cfg.CheckpointDir != "" {
		if err := RemoveCheckpoint(r.cfg.CheckpointDir, id); err != nil {
			r.log.Warn("checkpoint removal failed", "session", id, "err", err)
		}
	}
	// The walk is over: fold the session's labeled children into the
	// overflow child so live cardinality tracks the live fleet.
	r.m.forgetSession(id)
	// Retire the session's consistency monitor the same way — quality
	// state is per-incarnation, not per-id.
	r.cfg.Session.Quality.Forget(id)
	return nil
}

// Migrate moves a session to an explicit shard: checkpoint, stop the old
// incarnation, restore the new one in the target stripe. The session keeps
// its identity and resumes from the checkpointed frontier (frames queued
// but not yet analyzed at migration time are flushed through the old
// incarnation first).
func (r *Registry) Migrate(id string, targetShard int) error {
	if targetShard < 0 || targetShard >= len(r.shards) {
		return fmt.Errorf("session: shard %d out of range [0,%d)", targetShard, len(r.shards))
	}
	from := r.shardFor(id)
	if from == r.shards[targetShard] {
		return nil
	}
	from.mu.Lock()
	s, ok := from.sessions[id]
	if ok {
		delete(from.sessions, id)
	}
	from.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownSession, id)
	}
	s.close()
	<-s.Done()
	cp := s.Checkpoint()
	var scp *core.StreamCheckpoint
	if cp != nil {
		scp = cp.Stream
	}
	r.ovMu.Lock()
	r.override[id] = targetShard
	r.ovMu.Unlock()
	ns, err := newSession(id, s.Spec, r.cfg.Session, scp)
	if err != nil {
		if s.takeExit() {
			r.live.Add(-1)
			r.m.Active.Set(float64(r.live.Load()))
		}
		return fmt.Errorf("session: migrate %q: %w", id, err)
	}
	if scp != nil {
		r.m.Restores.Inc()
	}
	to := r.shards[targetShard]
	to.mu.Lock()
	to.sessions[id] = ns
	to.mu.Unlock()
	r.log.Info("session migrated", "session", id, "shard", targetShard)
	return nil
}

// Restore reloads every checkpoint under the configured dir into live
// sessions — the daemon's crash-restart path. Corrupt checkpoints are
// skipped and reported; they never block the healthy rest.
func (r *Registry) Restore() (int, []error) {
	if r.cfg.CheckpointDir == "" {
		return 0, nil
	}
	cps, errs := LoadCheckpointDir(r.cfg.CheckpointDir)
	n := 0
	for _, cp := range cps {
		if _, err := r.open(cp.ID, cp.Spec, cp.Stream); err != nil {
			errs = append(errs, fmt.Errorf("restore %q: %w", cp.ID, err))
			continue
		}
		r.m.Restores.Inc()
		n++
	}
	for _, err := range errs {
		r.log.Warn("checkpoint restore problem", "err", err)
	}
	return n, errs
}

// CheckpointAll persists every live session's checkpoint to the configured
// dir, returning how many were written.
func (r *Registry) CheckpointAll() int {
	if r.cfg.CheckpointDir == "" {
		return 0
	}
	n := 0
	for _, s := range r.Sessions() {
		st := s.State()
		if st == StateClosed || st == StateQuarantined {
			continue
		}
		cp := s.Checkpoint()
		if cp == nil {
			continue
		}
		if _, err := SaveCheckpoint(r.cfg.CheckpointDir, cp); err != nil {
			r.m.CheckpointErrs.Inc()
			r.log.Warn("checkpoint write failed", "session", s.ID, "err", err)
			continue
		}
		r.m.Checkpoints.Inc()
		n++
	}
	return n
}

// checkpointLoop is the persistence ticker, also refreshing the aggregate
// queue-depth gauge.
func (r *Registry) checkpointLoop() {
	defer r.wg.Done()
	t := time.NewTicker(r.cfg.CheckpointEvery)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			r.CheckpointAll()
			r.updateGauges()
		}
	}
}

// updateGauges refreshes the registry-level gauges, including the
// per-shard occupancy families rimtop uses to spot skewed stripes.
func (r *Registry) updateGauges() {
	depth := 0
	for i, sh := range r.shards {
		shardDepth, shardSessions := 0, 0
		sh.mu.Lock()
		for _, s := range sh.sessions {
			shardDepth += s.QueueDepth()
			shardSessions++
		}
		sh.mu.Unlock()
		lbl := strconv.Itoa(i)
		r.m.ShardDepth.With(lbl).Set(float64(shardDepth))
		r.m.ShardSessions.With(lbl).Set(float64(shardSessions))
		depth += shardDepth
	}
	r.m.QueueDepth.Set(float64(depth))
	r.m.Active.Set(float64(r.live.Load()))
	if r.breaker != nil {
		r.m.BreakerState.Set(float64(r.breaker.State()))
	}
}

// Sessions returns the current sessions, ID-sorted.
func (r *Registry) Sessions() []*Session {
	var out []*Session
	for _, sh := range r.shards {
		sh.mu.Lock()
		for _, s := range sh.sessions {
			out = append(out, s)
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Shutdown gracefully closes every session (draining queues and flushing
// streams), persists final checkpoints so a restart can resume, and stops
// the ticker. Safe to call once.
func (r *Registry) Shutdown() {
	if !r.closed.CompareAndSwap(false, true) {
		return
	}
	close(r.stop)
	sessions := r.Sessions()
	var wg sync.WaitGroup
	for _, s := range sessions {
		wg.Add(1)
		go func(s *Session) {
			defer wg.Done()
			s.close()
			<-s.Done()
		}(s)
	}
	wg.Wait()
	// Persist final state for crash-style resume (kill -9 loses at most
	// one checkpoint interval; graceful shutdown loses nothing).
	for _, s := range sessions {
		if r.cfg.CheckpointDir == "" {
			break
		}
		if s.State() == StateQuarantined {
			continue
		}
		if cp := s.Checkpoint(); cp != nil {
			if _, err := SaveCheckpoint(r.cfg.CheckpointDir, cp); err != nil {
				r.m.CheckpointErrs.Inc()
				r.log.Warn("final checkpoint failed", "session", s.ID, "err", err)
			} else {
				r.m.Checkpoints.Inc()
			}
		}
	}
	for _, sh := range r.shards {
		sh.mu.Lock()
		sh.sessions = make(map[string]*Session)
		sh.mu.Unlock()
	}
	r.wg.Wait()
}

// DaemonHealth is the registry's /healthz surface.
type DaemonHealth struct {
	Sessions    int            `json:"sessions"`
	ByState     map[string]int `json:"by_state,omitempty"`
	Breaker     string         `json:"breaker"`
	Degraded    bool           `json:"degraded"`
	MaxSessions int            `json:"max_sessions,omitempty"`
	QueueDepth  int            `json:"queue_depth"`
}

// Health assembles the daemon-level health snapshot.
func (r *Registry) Health() DaemonHealth {
	h := DaemonHealth{
		ByState:     make(map[string]int),
		Breaker:     r.breaker.State().String(),
		Degraded:    r.breaker.Degraded(),
		MaxSessions: r.cfg.MaxSessions,
	}
	for _, s := range r.Sessions() {
		h.Sessions++
		h.ByState[s.State().String()]++
		h.QueueDepth += s.QueueDepth()
	}
	return h
}

// SessionInfo is one session's row in the /sessions listing.
type SessionInfo struct {
	ID         string      `json:"id"`
	State      State       `json:"state"`
	QueueDepth int         `json:"queue_depth"`
	Restarts   int         `json:"restarts_total"`
	Estimates  int         `json:"estimates"`
	Health     core.Health `json:"health"`
	// EstimatesDegraded / LowConfidence attribute estimate quality per
	// session: degraded-flagged emissions and moving estimates below the
	// configured confidence floor.
	EstimatesDegraded int `json:"estimates_degraded"`
	LowConfidence     int `json:"low_confidence,omitempty"`
	// LastEstimateAgeSeconds is how long ago the session last emitted
	// estimates (-1 when it never has) — the staleness signal rimtop
	// sorts on.
	LastEstimateAgeSeconds float64 `json:"last_estimate_age_seconds"`
	// Pose is the session's latest fused pose (present only when the
	// registry runs with a fusion backend configured).
	Pose *geom.Pose `json:"pose,omitempty"`
	// Quality is the session's estimator-consistency verdict (present only
	// when a quality engine is configured alongside fusion).
	Quality *QualityInfo `json:"quality,omitempty"`
}

// Infos returns the /sessions listing.
func (r *Registry) Infos() []SessionInfo {
	sessions := r.Sessions()
	now := time.Now()
	out := make([]SessionInfo, 0, len(sessions))
	for _, s := range sessions {
		_, total := s.Restarts()
		ests, deg, low, last := s.EstimateStats()
		info := SessionInfo{
			ID:                     s.ID,
			State:                  s.State(),
			QueueDepth:             s.QueueDepth(),
			Restarts:               total,
			Estimates:              ests,
			Health:                 s.Health(),
			EstimatesDegraded:      deg,
			LowConfidence:          low,
			LastEstimateAgeSeconds: -1,
		}
		if !last.IsZero() {
			info.LastEstimateAgeSeconds = now.Sub(last).Seconds()
		}
		if pose, ok := s.Pose(); ok {
			p := pose
			info.Pose = &p
		}
		if q, ok := s.Quality(); ok {
			info.Quality = &q
		}
		out = append(out, info)
	}
	return out
}

// InfosHandler serves the /sessions JSON listing.
func (r *Registry) InfosHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(r.Infos()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
