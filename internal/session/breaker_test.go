package session

import (
	"testing"
	"time"
)

// testBreaker returns a breaker on a fake clock the test controls.
func testBreaker(cfg BreakerConfig) (*Breaker, *time.Time) {
	b := NewBreaker(cfg)
	now := time.Unix(1000, 0)
	b.now = func() time.Time { return now }
	return b, &now
}

func TestBreakerTripsOnWindowedFailures(t *testing.T) {
	b, now := testBreaker(BreakerConfig{Window: 10 * time.Second, FailureThreshold: 3, Cooldown: 5 * time.Second})
	if b.State() != BreakerClosed || b.Degraded() {
		t.Fatal("fresh breaker must be closed")
	}
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatal("below threshold must stay closed")
	}
	b.Failure()
	if b.State() != BreakerOpen || !b.Degraded() {
		t.Fatal("threshold failures inside the window must open the breaker")
	}
	_ = now
}

func TestBreakerWindowPrunesOldFailures(t *testing.T) {
	b, now := testBreaker(BreakerConfig{Window: 10 * time.Second, FailureThreshold: 3, Cooldown: 5 * time.Second})
	b.Failure()
	b.Failure()
	*now = now.Add(11 * time.Second) // both slide out of the window
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatal("failures outside the window must not count")
	}
}

func TestBreakerCooldownAndProbe(t *testing.T) {
	b, now := testBreaker(BreakerConfig{Window: 10 * time.Second, FailureThreshold: 1, Cooldown: 5 * time.Second})
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("breaker must open")
	}
	*now = now.Add(6 * time.Second)
	if b.State() != BreakerHalfOpen {
		t.Fatal("cooldown elapsed must probe half-open")
	}
	// A failed probe goes straight back to open…
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("half-open failure must reopen")
	}
	// …and a clean probe after the next cooldown closes it.
	*now = now.Add(6 * time.Second)
	if b.State() != BreakerHalfOpen {
		t.Fatal("second cooldown must probe half-open again")
	}
	b.Success()
	if b.State() != BreakerClosed || b.Degraded() {
		t.Fatal("half-open success must close")
	}
}

func TestBreakerStateChangeHook(t *testing.T) {
	b, now := testBreaker(BreakerConfig{Window: 10 * time.Second, FailureThreshold: 1, Cooldown: 5 * time.Second})
	var seen []BreakerState
	b.SetOnChange(func(s BreakerState) { seen = append(seen, s) })
	b.Failure()
	*now = now.Add(6 * time.Second)
	b.Success() // ticks to half-open, then closes
	want := []BreakerState{BreakerOpen, BreakerHalfOpen, BreakerClosed}
	if len(seen) != len(want) {
		t.Fatalf("transitions = %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("transition %d = %v, want %v", i, seen[i], want[i])
		}
	}
}

func TestNilBreakerIsPermanentlyClosed(t *testing.T) {
	var b *Breaker
	b.Failure()
	b.Success()
	b.SetOnChange(func(BreakerState) {})
	if b.State() != BreakerClosed || b.Degraded() {
		t.Fatal("nil breaker must report closed")
	}
}
