package session

import (
	"math"
	"testing"

	"rim/internal/core"
	"rim/internal/fusion"
)

// TestFuserPoseFollowsMovingEstimates is the regression test for the
// frozen-daemon-pose bug: a fuser fed a stream of translate estimates must
// advance its pose along the walk, and a trailing static run must leave it
// where the walk stopped (ZUPT steps carry no distance).
func TestFuserPoseFollowsMovingEstimates(t *testing.T) {
	for _, kind := range []fusion.BackendKind{fusion.BackendParticle, fusion.BackendESKF} {
		t.Run(kind.String(), func(t *testing.T) {
			cfg := fusion.DefaultConfig(5)
			cfg.Backend = kind
			f, err := newFuser(cfg, 100, 0, "t")
			if err != nil {
				t.Fatal(err)
			}

			ests := make([]core.Estimate, 300)
			for i := range ests {
				e := &ests[i]
				e.HeadingBody = math.NaN()
				if i >= 50 && i < 250 { // 2 s straight walk at 1 m/s
					e.Moving = true
					e.Kind = core.MotionTranslate
					e.Speed = 1
					e.HeadingBody = 0
					e.Confidence = 0.9
				}
			}
			f.feed(ests)

			pose := f.Pose()
			dist := math.Hypot(pose.Pos.X, pose.Pos.Y)
			if dist < 1.5 || dist > 2.5 {
				t.Errorf("fused pose %.3f m from origin, want ~2 m: %+v", dist, pose)
			}

			// The trailing pause is all ZUPT: the pose must not drift.
			f.feed(make([]core.Estimate, 100))
			after := f.Pose()
			if moved := math.Hypot(after.Pos.X-pose.Pos.X, after.Pos.Y-pose.Pos.Y); moved > 0.1 {
				t.Errorf("pose drifted %.3f m across a static run", moved)
			}
		})
	}
}

// TestNewFuserDefaultsStepToRate pins the dt fallback: a template config
// without StepSeconds inherits the session's slot rate.
func TestNewFuserDefaultsStepToRate(t *testing.T) {
	f, err := newFuser(fusion.DefaultConfig(1), 50, 0, "t")
	if err != nil {
		t.Fatal(err)
	}
	if f.dt != 0.02 {
		t.Errorf("dt = %v, want 0.02", f.dt)
	}
}
