package session

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rim/internal/core"
)

func sampleCheckpoint(id string) *Checkpoint {
	return &Checkpoint{
		ID:          id,
		Spec:        Spec{Rate: 100, NumAnts: 3, NumTx: 3, NumSub: 30},
		SavedUnixNs: 12345,
		Stream: &core.StreamCheckpoint{
			Rate: 100, NumAnts: 3, NumTx: 3, NumSub: 30,
		},
	}
}

func TestCheckpointEncodeDecodeRoundTrip(t *testing.T) {
	cp := sampleCheckpoint("walker-7")
	var buf bytes.Buffer
	if err := EncodeCheckpoint(&buf, cp); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != cp.ID || got.Spec != cp.Spec || got.SavedUnixNs != cp.SavedUnixNs {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, cp)
	}
	if got.Stream == nil || got.Stream.NumAnts != 3 {
		t.Fatalf("stream state lost: %+v", got.Stream)
	}
}

func TestCheckpointDecodeRejectsCorruption(t *testing.T) {
	cp := sampleCheckpoint("walker-7")
	var buf bytes.Buffer
	if err := EncodeCheckpoint(&buf, cp); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	flip := append([]byte(nil), good...)
	flip[len(flip)-1] ^= 0xFF // payload corruption → checksum mismatch
	if _, err := DecodeCheckpoint(bytes.NewReader(flip)); err == nil {
		t.Error("corrupted payload accepted")
	}

	if _, err := DecodeCheckpoint(bytes.NewReader(good[:len(good)-3])); err == nil {
		t.Error("truncated payload accepted")
	}
	if _, err := DecodeCheckpoint(bytes.NewReader(good[:10])); err == nil {
		t.Error("truncated header accepted")
	}

	magic := append([]byte(nil), good...)
	magic[0] = 'X'
	if _, err := DecodeCheckpoint(bytes.NewReader(magic)); err == nil {
		t.Error("bad magic accepted")
	}

	ver := append([]byte(nil), good...)
	ver[8] = 0xEE // version field
	if _, err := DecodeCheckpoint(bytes.NewReader(ver)); err == nil {
		t.Error("unknown version accepted")
	}
}

func TestSaveLoadCheckpointDir(t *testing.T) {
	dir := t.TempDir()
	for _, id := range []string{"a", "b", "weird/../id"} {
		if _, err := SaveCheckpoint(dir, sampleCheckpoint(id)); err != nil {
			t.Fatal(err)
		}
	}
	// Sanitized names stay inside dir.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if !strings.HasSuffix(e.Name(), ".rimckpt") {
			t.Errorf("unexpected file %q", e.Name())
		}
	}

	// A corrupt file is skipped with a reported error, not fatal.
	if err := os.WriteFile(filepath.Join(dir, "ckpt-junk.rimckpt"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	cps, errs := LoadCheckpointDir(dir)
	if len(cps) != 3 {
		t.Fatalf("loaded %d checkpoints, want 3", len(cps))
	}
	if len(errs) != 1 {
		t.Fatalf("corrupt file errors = %v, want exactly one", errs)
	}

	if err := RemoveCheckpoint(dir, "a"); err != nil {
		t.Fatal(err)
	}
	cps, _ = LoadCheckpointDir(dir)
	if len(cps) != 2 {
		t.Fatalf("after remove, %d checkpoints remain, want 2", len(cps))
	}

	// A missing directory is an empty result, not an error.
	cps, errs = LoadCheckpointDir(filepath.Join(dir, "nope"))
	if len(cps) != 0 || len(errs) != 0 {
		t.Fatalf("missing dir: cps=%v errs=%v", cps, errs)
	}
}
