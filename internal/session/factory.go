package session

import (
	"fmt"

	"rim/internal/array"
	"rim/internal/core"
)

// CoreFactoryConfig parameterizes NewCoreFactory, the canonical
// StreamFactory for production daemons running core.Streamer sessions.
type CoreFactoryConfig struct {
	// Template is the stream configuration every session starts from —
	// analysis knobs (window, span, hop, deadline), engine knobs
	// (Parallelism, Kernel, Precision) and observability wiring are all
	// shared fleet-wide. Template.Core.Array is ignored; each session's
	// geometry comes from ArrayFor.
	Template core.StreamConfig
	// ArrayFor maps a session's antenna count to its receive geometry
	// (required): the wire protocol carries only the CSI shape, so the
	// host decides which array a given element count means.
	ArrayFor func(numAnts int) (*array.Array, error)
}

// NewCoreFactory builds a StreamFactory from a shared configuration
// template: each session gets the template with its own array resolved
// from the spec's antenna count, and sessions carrying a checkpoint are
// restored instead of started cold. Daemons that used to hand-roll this
// closure (resolve array, copy config, branch on checkpoint) call this
// instead, so new engine knobs — the TRRS kernel and plane precision —
// reach every session the moment they land in core.Config.
func NewCoreFactory(cfg CoreFactoryConfig) (StreamFactory, error) {
	if cfg.ArrayFor == nil {
		return nil, fmt.Errorf("session: CoreFactoryConfig.ArrayFor is required")
	}
	return func(id string, spec Spec, cp *core.StreamCheckpoint) (Stream, error) {
		arr, err := cfg.ArrayFor(spec.NumAnts)
		if err != nil {
			return nil, err
		}
		scfg := cfg.Template
		scfg.Core.Array = arr
		if cp != nil {
			return core.NewStreamerFromCheckpoint(scfg, cp)
		}
		return core.NewStreamer(scfg, spec.Rate, spec.NumAnts, spec.NumTx, spec.NumSub)
	}, nil
}
