package session

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"rim/internal/core"
	"rim/internal/obs"
)

func testRegistry(t *testing.T, d *fakeDriver, mutate func(*RegistryConfig)) (*Registry, *Metrics) {
	t.Helper()
	m := NewMetrics(obs.NewRegistry())
	cfg := RegistryConfig{
		Shards: 4,
		Session: Config{
			Factory:          d.factory,
			Queue:            32,
			FailureThreshold: 2,
			MaxRestarts:      2,
			BackoffMin:       time.Millisecond,
			BackoffMax:       4 * time.Millisecond,
			HealthyAfter:     time.Millisecond,
			Metrics:          m,
		},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	r, err := NewRegistry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Shutdown)
	return r, m
}

func TestRegistryOpenIngestClose(t *testing.T) {
	d := &fakeDriver{}
	r, m := testRegistry(t, d, nil)

	s, err := r.Open("w1", testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if again, err := r.Open("w1", testSpec()); err != nil || again != s {
		t.Fatal("re-open of a live session must be idempotent")
	}
	if r.Get("w1") != s {
		t.Fatal("Get lost the session")
	}
	if err := r.Ingest("w1", testFrame(), nil); err != nil {
		t.Fatal(err)
	}
	if err := r.Ingest("ghost", testFrame(), nil); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("unknown-session ingest error = %v", err)
	}
	if err := r.Close("w1"); err != nil {
		t.Fatal(err)
	}
	if r.Get("w1") != nil {
		t.Fatal("closed session still resolvable")
	}
	if err := r.Close("w1"); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("double close error = %v", err)
	}
	if got := m.Opened.Value(); got != 1 {
		t.Errorf("opened counter = %d", got)
	}
	if live := r.live.Load(); live != 0 {
		t.Errorf("live count = %d after close", live)
	}
}

func TestRegistryShedsAtWatermark(t *testing.T) {
	d := &fakeDriver{}
	r, m := testRegistry(t, d, func(c *RegistryConfig) { c.MaxSessions = 2 })
	for i := 0; i < 2; i++ {
		if _, err := r.Open(fmt.Sprintf("w%d", i), testSpec()); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Open("overflow", testSpec()); !errors.Is(err, ErrShed) {
		t.Fatalf("open past watermark = %v, want ErrShed", err)
	}
	if got := m.Shed.Total(); got != 1 {
		t.Errorf("shed counter = %d", got)
	}
	// Closing one frees a slot.
	if err := r.Close("w0"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Open("overflow", testSpec()); err != nil {
		t.Fatalf("open after a slot freed = %v", err)
	}
}

func TestRegistryShedsWhileBreakerOpen(t *testing.T) {
	d := &fakeDriver{}
	br := NewBreaker(BreakerConfig{FailureThreshold: 1, Window: time.Hour, Cooldown: time.Hour})
	r, m := testRegistry(t, d, func(c *RegistryConfig) { c.Breaker = br })
	br.Failure()
	if _, err := r.Open("w1", testSpec()); !errors.Is(err, ErrShed) {
		t.Fatalf("open with open breaker = %v, want ErrShed", err)
	}
	if got := m.Shed.Total(); got == 0 {
		t.Error("shed counter not incremented")
	}
}

func TestRegistryQuarantineFreesLiveSlot(t *testing.T) {
	d := &fakeDriver{}
	d.script = func(build, push int) error {
		return fmt.Errorf("%w: always failing", core.ErrAnalysis)
	}
	r, _ := testRegistry(t, d, func(c *RegistryConfig) { c.MaxSessions = 1 })
	s, err := r.Open("flappy", testSpec())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		_ = r.Ingest("flappy", testFrame(), nil)
	}
	waitState(t, s, StateQuarantined)
	// The quarantined session no longer occupies a live slot, so a new
	// session is admitted despite MaxSessions=1.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if _, err = r.Open("fresh", testSpec()); err == nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("open after quarantine freed the slot = %v", err)
	}
}

func TestRegistryCheckpointRestoreCycle(t *testing.T) {
	dir := t.TempDir()
	d := &fakeDriver{}
	r1, m1 := testRegistry(t, d, func(c *RegistryConfig) {
		c.CheckpointDir = dir
		c.CheckpointEvery = time.Hour // only explicit CheckpointAll/Shutdown persist
	})
	for i := 0; i < 3; i++ {
		s, err := r1.Open(fmt.Sprintf("w%d", i), testSpec())
		if err != nil {
			t.Fatal(err)
		}
		if err := r1.Ingest(fmt.Sprintf("w%d", i), testFrame(), nil); err != nil {
			t.Fatal(err)
		}
		waitState(t, s, StateRunning) // worker up, stream built
	}
	if n := r1.CheckpointAll(); n != 3 {
		t.Fatalf("checkpointed %d sessions, want 3", n)
	}
	if got := m1.Checkpoints.Value(); got != 3 {
		t.Errorf("checkpoint counter = %d", got)
	}
	r1.Shutdown()

	// A new registry (the restarted daemon) restores all three.
	d2 := &fakeDriver{}
	r2, m2 := testRegistry(t, d2, func(c *RegistryConfig) { c.CheckpointDir = dir })
	n, errs := r2.Restore()
	if len(errs) != 0 {
		t.Fatalf("restore errors: %v", errs)
	}
	if n != 3 {
		t.Fatalf("restored %d sessions, want 3", n)
	}
	for i := 0; i < 3; i++ {
		if r2.Get(fmt.Sprintf("w%d", i)) == nil {
			t.Fatalf("session w%d missing after restore", i)
		}
	}
	if got := m2.Restores.Value(); got == 0 {
		t.Error("restore counter not incremented")
	}
	// Closing a restored session removes its checkpoint file for good.
	if err := r2.Close("w0"); err != nil {
		t.Fatal(err)
	}
	cps, _ := LoadCheckpointDir(dir)
	for _, cp := range cps {
		if cp.ID == "w0" {
			t.Error("closed session's checkpoint still on disk")
		}
	}
}

func TestRegistryMigrate(t *testing.T) {
	d := &fakeDriver{}
	r, _ := testRegistry(t, d, nil)
	if _, err := r.Open("mover", testSpec()); err != nil {
		t.Fatal(err)
	}
	if err := r.Ingest("mover", testFrame(), nil); err != nil {
		t.Fatal(err)
	}
	// Move it to whichever shard it is NOT on.
	home := r.shardFor("mover")
	target := -1
	for i, sh := range r.shards {
		if sh != home {
			target = i
			break
		}
	}
	if err := r.Migrate("mover", target); err != nil {
		t.Fatal(err)
	}
	if r.shardFor("mover") != r.shards[target] {
		t.Fatal("override did not pin the migrated session")
	}
	s := r.Get("mover")
	if s == nil {
		t.Fatal("migrated session unresolvable")
	}
	if err := r.Ingest("mover", testFrame(), nil); err != nil {
		t.Fatalf("ingest after migration = %v", err)
	}
	if live := r.live.Load(); live != 1 {
		t.Errorf("live count = %d after migration, want 1", live)
	}
	// Pick a target that is not the ghost's hash shard, so the unknown-ID
	// path is actually exercised (same-shard migrations are no-ops).
	ghostTarget := -1
	for i, sh := range r.shards {
		if sh != r.shardFor("ghost") {
			ghostTarget = i
			break
		}
	}
	if err := r.Migrate("ghost", ghostTarget); !errors.Is(err, ErrUnknownSession) {
		t.Errorf("migrating a ghost = %v", err)
	}
	if err := r.Migrate("mover", 99); err == nil {
		t.Error("out-of-range shard accepted")
	}
}

// TestRegistryChaosSoak is the in-process miniature of the acceptance
// soak: many concurrent sessions, a fifth of them intentionally flapping,
// concurrent ingest, one registry "restart" mid-run, and a goroutine-leak
// check at the end. Run with -race.
func TestRegistryChaosSoak(t *testing.T) {
	before := runtime.NumGoroutine()

	dir := t.TempDir()
	const sessions = 50
	const faulty = 10 // sessions 0..9 flap into quarantine
	newDriver := func() *fakeDriver {
		d := &fakeDriver{}
		d.script = func(build, push int) error {
			return nil
		}
		return d
	}
	faultyID := func(id string) bool {
		var n int
		if _, err := fmt.Sscanf(id, "w%d", &n); err != nil {
			return false
		}
		return n < faulty
	}
	driver := newDriver()
	factory := func(id string, spec Spec, cp *core.StreamCheckpoint) (Stream, error) {
		st, err := driver.factory(id, spec, cp)
		if err != nil {
			return nil, err
		}
		if faultyID(id) {
			return &flappingStream{inner: st.(*fakeStream)}, nil
		}
		return st, nil
	}

	m := NewMetrics(obs.NewRegistry())
	mkRegistry := func() *Registry {
		r, err := NewRegistry(RegistryConfig{
			Shards:        8,
			CheckpointDir: dir,
			Session: Config{
				Factory:          factory,
				Queue:            16,
				Policy:           DropOldest,
				FailureThreshold: 2,
				MaxRestarts:      2,
				BackoffMin:       time.Millisecond,
				BackoffMax:       4 * time.Millisecond,
				HealthyAfter:     time.Millisecond,
				Metrics:          m,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	run := func(r *Registry, rounds int) {
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < sessions; i += 4 {
					id := fmt.Sprintf("w%d", i)
					if _, err := r.Open(id, testSpec()); err != nil {
						continue
					}
					for f := 0; f < rounds; f++ {
						_ = r.Ingest(id, testFrame(), nil)
					}
				}
			}(w)
		}
		wg.Wait()
	}

	r := mkRegistry()
	run(r, 30)
	r.CheckpointAll()
	r.Shutdown() // "kill" the daemon…

	r = mkRegistry() // …and restart it from checkpoints
	if n, _ := r.Restore(); n == 0 {
		t.Fatal("nothing restored after the mid-run restart")
	}
	run(r, 30)

	// Every flapper quarantines; no healthy session does.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		q := 0
		for _, s := range r.Sessions() {
			if s.State() == StateQuarantined {
				q++
			}
		}
		if q >= faulty {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, s := range r.Sessions() {
		if faultyID(s.ID) {
			if st := s.State(); st != StateQuarantined {
				t.Errorf("faulty %s state = %v, want quarantined", s.ID, st)
			}
		} else if st := s.State(); st == StateQuarantined {
			t.Errorf("healthy %s was quarantined", s.ID)
		}
	}
	if got := m.Quarantined.Total(); got == 0 {
		t.Error("no quarantines recorded")
	}
	r.Shutdown()

	// No goroutine leaks once everything is shut down.
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Errorf("goroutines: %d before, %d after shutdown", before, runtime.NumGoroutine())
}

// flappingStream fails analysis on every push, like a stream whose array
// lost too many antennas to align.
type flappingStream struct {
	inner *fakeStream
	mu    sync.Mutex
	n     int
}

func (f *flappingStream) PushMaskedCtx(ctx context.Context, snap [][][]complex128, missing []bool) ([]core.Estimate, error) {
	f.mu.Lock()
	f.n++
	f.mu.Unlock()
	return nil, fmt.Errorf("%w: flapping stream", core.ErrAnalysis)
}

func (f *flappingStream) Flush() []core.Estimate { return nil }

func (f *flappingStream) Health() core.Health {
	f.mu.Lock()
	defer f.mu.Unlock()
	return core.Health{ConsecutiveFailures: f.n}
}

func (f *flappingStream) Checkpoint() *core.StreamCheckpoint { return f.inner.Checkpoint() }
