// Package imu simulates the MEMS inertial sensors RIM is compared against
// (a Bosch BNO055-class unit): an accelerometer with bias and vibration
// noise, a gyroscope with white noise plus random-walk bias drift, and a
// magnetometer with location-dependent soft-iron distortion. It also
// provides the classical dead-reckoning baselines built on them — exactly
// the erroneous estimates the paper's Figs. 7, 13 and 21 contrast RIM with.
package imu

import (
	"math"
	"math/rand"

	"rim/internal/geom"
	"rim/internal/sigproc"
	"rim/internal/traj"
)

// Config holds the sensor error model.
type Config struct {
	// AccelNoiseStd is white accelerometer noise, m/s² (vibration makes
	// this large on carts; default 0.12).
	AccelNoiseStd float64
	// AccelBiasMax bounds the constant accelerometer bias per axis, m/s²
	// (default 0.08 — typical uncalibrated MEMS).
	AccelBiasMax float64
	// GyroNoiseStd is white gyroscope noise, rad/s (default 0.004).
	GyroNoiseStd float64
	// GyroBiasWalk is the random-walk step of the gyro bias per sample,
	// rad/s (default 2e-5; integrates into the classic heading drift).
	GyroBiasWalk float64
	// VibrationAccel is motion-induced vibration noise, m/s² per m/s of
	// speed (default 0.5): rolling carts and hands shake, which is what
	// energy-based movement detectors actually key on.
	VibrationAccel float64
	// MagNoiseStd is magnetometer heading noise, rad (default 0.03).
	MagNoiseStd float64
	// MagDistortion is the amplitude of the location-dependent heading
	// distortion, rad (default 0.35 — indoor steel warps the field by
	// tens of degrees, §1 of the paper).
	MagDistortion float64
	// Seed drives all sensor randomness.
	Seed int64
}

// DefaultConfig returns a BNO055-like error model.
func DefaultConfig(seed int64) Config {
	return Config{
		AccelNoiseStd:  0.12,
		AccelBiasMax:   0.08,
		VibrationAccel: 0.5,
		GyroNoiseStd:   0.004,
		GyroBiasWalk:   2e-5,
		MagNoiseStd:    0.03,
		MagDistortion:  0.35,
		Seed:           seed,
	}
}

// Reading is one IMU sample.
type Reading struct {
	T float64
	// Accel is the body-frame linear acceleration (gravity-compensated),
	// m/s².
	Accel geom.Vec2
	// Gyro is the z angular velocity, rad/s.
	Gyro float64
	// MagHeading is the magnetometer-derived absolute device orientation,
	// rad.
	MagHeading float64
}

// Simulate produces IMU readings along a ground-truth trajectory at the
// trajectory's sample rate.
func Simulate(tr *traj.Trajectory, cfg Config) []Reading {
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := len(tr.Samples)
	out := make([]Reading, n)
	if n == 0 {
		return out
	}
	dt := 1 / tr.Rate
	biasX := (rng.Float64()*2 - 1) * cfg.AccelBiasMax
	biasY := (rng.Float64()*2 - 1) * cfg.AccelBiasMax
	gyroBias := 0.0
	// Random but fixed spatial phase for the magnetic distortion field.
	magPhase := rng.Float64() * 2 * math.Pi
	for i := 0; i < n; i++ {
		s := tr.Samples[i]
		// True world-frame acceleration by central difference of velocity.
		var accW geom.Vec2
		switch {
		case i == 0 && n > 1:
			accW = tr.Samples[1].Vel.Sub(tr.Samples[0].Vel).Scale(1 / dt)
		case i == n-1:
			accW = tr.Samples[i].Vel.Sub(tr.Samples[i-1].Vel).Scale(1 / dt)
		default:
			accW = tr.Samples[i+1].Vel.Sub(tr.Samples[i-1].Vel).Scale(1 / (2 * dt))
		}
		accB := accW.Rotate(-s.Pose.Theta)
		vib := cfg.VibrationAccel * s.Vel.Norm()
		accB.X += biasX + rng.NormFloat64()*(cfg.AccelNoiseStd+vib)
		accB.Y += biasY + rng.NormFloat64()*(cfg.AccelNoiseStd+vib)

		gyroBias += rng.NormFloat64() * cfg.GyroBiasWalk
		gyro := s.AngVel + gyroBias + rng.NormFloat64()*cfg.GyroNoiseStd

		// Magnetometer: true orientation plus a smooth location-dependent
		// distortion field and noise.
		p := s.Pose.Pos
		dist := cfg.MagDistortion * math.Sin(0.4*p.X+0.7*p.Y+magPhase)
		mag := geom.NormalizeAngle(s.Pose.Theta + dist + rng.NormFloat64()*cfg.MagNoiseStd)

		out[i] = Reading{T: s.T, Accel: accB, Gyro: gyro, MagHeading: mag}
	}
	return out
}

// IntegrateGyro returns the cumulative rotation angle (rad) from gyroscope
// readings — the baseline for the Fig. 13 rotation comparison. It inherits
// the bias-drift error of the gyro.
func IntegrateGyro(readings []Reading, rate float64) []float64 {
	out := make([]float64, len(readings))
	dt := 1 / rate
	var angle float64
	for i, r := range readings {
		angle += r.Gyro * dt
		out[i] = angle
	}
	return out
}

// AccelDistance double-integrates the accelerometer magnitude along the
// body X axis into travelled distance — the classical (and notoriously
// divergent) inertial distance estimate: bias integrates quadratically.
func AccelDistance(readings []Reading, rate float64) []float64 {
	out := make([]float64, len(readings))
	dt := 1 / rate
	var v, d float64
	for i, r := range readings {
		v += r.Accel.X * dt
		d += math.Abs(v) * dt
		out[i] = d
	}
	return out
}

// MovementIndicator returns the normalized moving-window standard deviation
// of the combined accel/gyro energy — the conventional sensor-based
// movement detector of Fig. 7. windowSeconds is the detection window; MEMS
// noise forces it to be long, which is exactly why transient stops are
// missed.
func MovementIndicator(readings []Reading, rate, windowSeconds float64) []float64 {
	n := len(readings)
	energy := make([]float64, n)
	for i, r := range readings {
		energy[i] = math.Hypot(r.Accel.X, r.Accel.Y) + 2*math.Abs(r.Gyro)
	}
	// Winsorize: single-sample jerk spikes at starts/stops would otherwise
	// dominate the windowed deviation of every window they touch.
	cap := sigproc.Percentile(energy, 95)
	for i := range energy {
		if energy[i] > cap {
			energy[i] = cap
		}
	}
	half := int(windowSeconds * rate / 2)
	if half < 1 {
		half = 1
	}
	out := make([]float64, n)
	for i := range energy {
		lo, hi := i-half, i+half
		if lo < 0 {
			lo = 0
		}
		if hi >= n {
			hi = n - 1
		}
		out[i] = sigproc.Std(energy[lo : hi+1])
	}
	// Normalize to [0, 1] for threshold comparability. Use a high
	// percentile rather than the max so the start/stop acceleration
	// spikes do not crush the scale, and clamp the remainder.
	ref := sigproc.Percentile(out, 90)
	if ref > 0 {
		for i := range out {
			out[i] /= ref
			if out[i] > 1 {
				out[i] = 1
			}
		}
	}
	return out
}

// DeadReckon integrates gyro heading plus an external per-sample speed
// (e.g. from RIM) into a trajectory — the fusion of §6.3.3. initial is the
// starting pose; speeds must have the same length as readings.
func DeadReckon(readings []Reading, speeds []float64, rate float64, initial geom.Pose) []geom.Vec2 {
	n := len(readings)
	if len(speeds) < n {
		n = len(speeds)
	}
	out := make([]geom.Vec2, n)
	pose := initial
	dt := 1 / rate
	for i := 0; i < n; i++ {
		pose.Theta = geom.NormalizeAngle(pose.Theta + readings[i].Gyro*dt)
		pose.Pos = pose.Pos.Add(geom.FromPolar(speeds[i]*dt, pose.Theta))
		out[i] = pose.Pos
	}
	return out
}
