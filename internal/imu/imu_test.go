package imu

import (
	"math"
	"testing"

	"rim/internal/geom"
	"rim/internal/traj"
)

func TestSimulateShapes(t *testing.T) {
	tr := traj.Line(100, geom.Vec2{}, 0, 0, 1.0, 0.5)
	r := Simulate(tr, DefaultConfig(1))
	if len(r) != len(tr.Samples) {
		t.Fatalf("readings = %d, want %d", len(r), len(tr.Samples))
	}
	if len(Simulate(&traj.Trajectory{Rate: 100}, DefaultConfig(1))) != 0 {
		t.Error("empty trajectory must produce no readings")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	tr := traj.Line(100, geom.Vec2{}, 0, 0, 0.5, 0.5)
	a := Simulate(tr, DefaultConfig(7))
	b := Simulate(tr, DefaultConfig(7))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce identical readings")
		}
	}
}

func TestGyroIntegrationTracksRotation(t *testing.T) {
	b := traj.NewBuilder(100, geom.Pose{})
	b.RotateInPlace(geom.Rad(90), geom.Rad(90))
	tr := b.Build()
	r := Simulate(tr, DefaultConfig(2))
	angles := IntegrateGyro(r, tr.Rate)
	final := geom.Deg(angles[len(angles)-1])
	// Gyroscope rotation tracking is good short-term: within a few degrees
	// over one second (the paper's Fig. 13 baseline).
	if math.Abs(final-90) > 5 {
		t.Errorf("gyro-integrated angle = %v deg, want ~90", final)
	}
}

func TestGyroDriftsLongTerm(t *testing.T) {
	// A long static period: integrated gyro angle must wander away from
	// zero (bias random walk) — the drift RIM does not suffer from.
	b := traj.NewBuilder(100, geom.Pose{})
	b.Pause(120)
	tr := b.Build()
	cfg := DefaultConfig(3)
	cfg.GyroBiasWalk = 2e-4 // accelerate the walk so the test stays short
	r := Simulate(tr, cfg)
	angles := IntegrateGyro(r, tr.Rate)
	if math.Abs(geom.Deg(angles[len(angles)-1])) < 1 {
		t.Errorf("gyro did not drift over 2 minutes: %v deg", geom.Deg(angles[len(angles)-1]))
	}
}

func TestAccelDistanceDiverges(t *testing.T) {
	// The paper: "an accelerometer is hardly capable of measuring moving
	// distance". A static minute must accumulate meters of phantom
	// distance through double integration of bias+noise.
	b := traj.NewBuilder(100, geom.Pose{})
	b.Pause(60)
	tr := b.Build()
	r := Simulate(tr, DefaultConfig(4))
	d := AccelDistance(r, tr.Rate)
	if d[len(d)-1] < 1 {
		t.Errorf("accelerometer distance after 60 s static = %v m, expected phantom meters", d[len(d)-1])
	}
}

func TestMagnetometerDistorted(t *testing.T) {
	// Move through the floor: the magnetometer heading error must exceed
	// several degrees somewhere (soft-iron distortion).
	tr := traj.Line(50, geom.Vec2{}, 0, 0, 20, 1.0)
	r := Simulate(tr, DefaultConfig(5))
	worst := 0.0
	for i, rd := range r {
		err := math.Abs(geom.AngleDiff(rd.MagHeading, tr.Samples[i].Pose.Theta))
		if err > worst {
			worst = err
		}
	}
	if geom.Deg(worst) < 5 {
		t.Errorf("worst magnetometer error = %v deg, want > 5", geom.Deg(worst))
	}
}

func TestMovementIndicatorMissesTransientStop(t *testing.T) {
	// Fig. 7's point: the sensor-energy detector smooths over a short
	// stop, while it clearly separates long static from moving periods.
	rate := 100.0
	b := traj.NewBuilder(rate, geom.Pose{})
	b.Pause(3)
	b.MoveDir(0, 1.5, 0.75)
	b.Pause(0.6) // transient stop
	b.MoveDir(0, 1.5, 0.75)
	b.Pause(3)
	tr := b.Build()
	r := Simulate(tr, DefaultConfig(6))
	ind := MovementIndicator(r, rate, 1.0)

	longStatic := ind[100]
	transient := ind[int(3*rate)+200+30] // middle of the 0.6 s stop
	moving := ind[int(3*rate)+100]
	if longStatic > 0.35 {
		t.Errorf("long-static indicator = %v, want low", longStatic)
	}
	if moving < 0.3 {
		t.Errorf("moving indicator = %v, want high", moving)
	}
	// The transient stop stays indistinguishable from motion.
	if transient < 0.3 {
		t.Errorf("transient-stop indicator = %v; expected the detector to miss the stop", transient)
	}
}

func TestDeadReckonStraight(t *testing.T) {
	rate := 100.0
	tr := traj.Line(rate, geom.Vec2{}, 0, 0, 2.0, 0.5)
	cfg := DefaultConfig(8)
	cfg.GyroNoiseStd = 0 // isolate the integration logic
	cfg.GyroBiasWalk = 0
	r := Simulate(tr, cfg)
	speeds := make([]float64, len(r))
	for i := range speeds {
		speeds[i] = 0.5
	}
	pts := DeadReckon(r, speeds, rate, geom.Pose{})
	final := pts[len(pts)-1]
	if math.Abs(final.X-2.0) > 0.05 || math.Abs(final.Y) > 0.05 {
		t.Errorf("dead-reckoned endpoint = %v, want (2, 0)", final)
	}
	// Mismatched lengths are clamped.
	if got := DeadReckon(r, speeds[:10], rate, geom.Pose{}); len(got) != 10 {
		t.Errorf("clamped length = %d", len(got))
	}
}
