package align

import (
	"math"

	"rim/internal/sigproc"
	"rim/internal/trrs"
)

// TrackConfig parameterizes the §4.2 dynamic-programming peak tracker.
type TrackConfig struct {
	// JumpCost is the penalty (in TRRS units) per slot of lag change
	// between consecutive time steps — the ω·C(q,q') term of Eq. 7 with
	// the cost expressed per slot. Physically the alignment delay varies
	// slowly (it is Δd divided by the speed), so lag jumps should cost a
	// noticeable fraction of a TRRS peak. Crucially the penalty must NOT
	// scale with the window width: normalizing by 2W (as a literal
	// reading of Eq. 7 suggests) makes jumps nearly free in wide windows
	// and lets the tracker wander.
	JumpCost float64
	// MedianHalf smooths the tracked lag sequence with a running median of
	// this half-width (0 disables), absorbing single-slot outliers from
	// packet loss.
	MedianHalf int
}

// DefaultTrackConfig returns the tracker settings used by the experiments.
func DefaultTrackConfig() TrackConfig {
	return TrackConfig{JumpCost: 0.067, MedianHalf: 3}
}

// Track is the result of peak tracking on one alignment matrix over a
// segment [Start, End).
type Track struct {
	I, J       int
	Start, End int
	// Lags[t-Start] is the tracked signed lag (slots) at slot t.
	Lags []int
	// Refined[t-Start] is the sub-slot lag obtained by parabolic
	// interpolation of the TRRS around the tracked peak. Integer lags
	// quantize speed to Δd/(k·dt) steps — ~8% at the paper's operating
	// point — so the centimeter-level distance accuracy depends on this
	// refinement. Empty when refinement was not possible.
	Refined []float64
	// Vals[t-Start] is the TRRS value along the tracked path.
	Vals []float64
	// Score is the total DP score of the optimal path (Eq. 6).
	Score float64
}

// Lag returns the best available lag estimate at index k: the refined
// sub-slot value when present, the integer lag otherwise.
func (tr *Track) Lag(k int) float64 {
	if k < len(tr.Refined) {
		return tr.Refined[k]
	}
	return float64(tr.Lags[k])
}

// MeanVal returns the average TRRS along the path.
func (tr *Track) MeanVal() float64 { return sigproc.Mean(tr.Vals) }

// Smoothness returns the mean absolute lag step along the path (slots);
// small values mean a physically plausible, slowly varying delay.
func (tr *Track) Smoothness() float64 {
	if len(tr.Lags) < 2 {
		return 0
	}
	var s float64
	for i := 1; i < len(tr.Lags); i++ {
		s += math.Abs(float64(tr.Lags[i] - tr.Lags[i-1]))
	}
	return s / float64(len(tr.Lags)-1)
}

// MedianLag returns the median tracked lag in slots.
func (tr *Track) MedianLag() float64 {
	l := make([]float64, len(tr.Lags))
	for i, v := range tr.Lags {
		l[i] = float64(v)
	}
	return sigproc.Median(l)
}

// MedianAbsLag returns the median lag magnitude in slots. Unlike the
// signed median it stays meaningful for back-and-forth tracks, whose
// positive and negative phases cancel in MedianLag.
func (tr *Track) MedianAbsLag() float64 {
	l := make([]float64, len(tr.Lags))
	for i, v := range tr.Lags {
		l[i] = math.Abs(float64(v))
	}
	return sigproc.Median(l)
}

// TrackPeaks runs the Eq. 6–8 dynamic program on matrix m restricted to
// slots [start, end): it finds the lag path maximizing the sum of per-slot
// TRRS values minus the per-slot jump costs between consecutive slots,
// then traces it back and median-smooths it.
func TrackPeaks(m *trrs.Matrix, start, end int, cfg TrackConfig) *Track {
	if start < 0 {
		start = 0
	}
	if end > m.NumSlots() {
		end = m.NumSlots()
	}
	if end <= start {
		return &Track{I: m.I, J: m.J, Start: start, End: start}
	}
	width := 2*m.W + 1
	n := end - start
	// score[c] is the best path score ending at column c of the current
	// slot; back[t][c] is the predecessor column.
	score := make([]float64, width)
	next := make([]float64, width)
	back := make([][]int32, n)
	copy(score, m.Vals[start])
	costUnit := cfg.JumpCost // positive penalty per slot of lag jump
	if costUnit <= 0 {
		costUnit = 0.067
	}
	for t := 1; t < n; t++ {
		row := m.Vals[start+t]
		back[t] = make([]int32, width)
		// The transition max_l { score[l] − costUnit·|l−n| } is computed
		// in O(width) total via two directional passes instead of
		// O(width²): a forward pass carries the best "from the left"
		// candidate, a backward pass the best "from the right".
		bestFrom := make([]float64, width)
		bestIdx := make([]int32, width)
		// Left-to-right.
		run, runIdx := math.Inf(-1), int32(0)
		for c := 0; c < width; c++ {
			if score[c] >= run {
				run, runIdx = score[c], int32(c)
			}
			bestFrom[c], bestIdx[c] = run, runIdx
			run -= costUnit // penalty grows as we move away
		}
		// Right-to-left.
		run, runIdx = math.Inf(-1), int32(width-1)
		for c := width - 1; c >= 0; c-- {
			if score[c] >= run {
				run, runIdx = score[c], int32(c)
			}
			if run > bestFrom[c] {
				bestFrom[c], bestIdx[c] = run, runIdx
			}
			run -= costUnit
		}
		for c := 0; c < width; c++ {
			next[c] = bestFrom[c] + row[c]
			back[t][c] = bestIdx[c]
		}
		score, next = next, score
	}
	// Find the best terminal column (Eq. 8) and trace back.
	bestC, bestS := 0, math.Inf(-1)
	for c, s := range score {
		if s > bestS {
			bestC, bestS = c, s
		}
	}
	lags := make([]int, n)
	vals := make([]float64, n)
	c := int32(bestC)
	for t := n - 1; t >= 0; t-- {
		lags[t] = int(c) - m.W
		vals[t] = m.Vals[start+t][c]
		if t > 0 {
			c = back[t][c]
		}
	}
	if cfg.MedianHalf > 0 {
		f := make([]float64, n)
		for i, l := range lags {
			f[i] = float64(l)
		}
		sm := sigproc.MedianFilter(f, cfg.MedianHalf)
		for i := range lags {
			lags[i] = int(math.Round(sm[i]))
		}
	}
	// Sub-slot refinement: fit a parabola through the TRRS at the tracked
	// lag and its neighbours; the vertex offset resolves the alignment
	// delay below the sampling grid.
	refined := make([]float64, n)
	for t := 0; t < n; t++ {
		refined[t] = refineLag(m, start+t, lags[t])
	}
	return &Track{
		I: m.I, J: m.J, Start: start, End: end,
		Lags: lags, Refined: refined, Vals: vals, Score: bestS,
	}
}

// refineLag interpolates the TRRS peak position around integer lag.
func refineLag(m *trrs.Matrix, t, lag int) float64 {
	fl := float64(lag)
	if lag <= -m.W || lag >= m.W {
		return fl
	}
	y0 := m.At(t, lag-1)
	y1 := m.At(t, lag)
	y2 := m.At(t, lag+1)
	den := y0 - 2*y1 + y2
	if den >= 0 {
		// Not a local maximum (flat or valley): keep the integer lag.
		return fl
	}
	delta := 0.5 * (y0 - y2) / den
	if delta > 0.5 {
		delta = 0.5
	} else if delta < -0.5 {
		delta = -0.5
	}
	return fl + delta
}

// PostCheckConfig holds the §4.3 post-detection thresholds.
type PostCheckConfig struct {
	// MinMeanVal is the minimum average TRRS along the path.
	MinMeanVal float64
	// MaxSmoothness is the maximum mean absolute lag step (slots).
	MaxSmoothness float64
	// MinAbsLag rejects paths that hug lag 0 (an antenna cannot be
	// aligned with another at zero delay unless they are co-located).
	MinAbsLag float64
}

// DefaultPostCheckConfig returns the post-detection thresholds.
func DefaultPostCheckConfig() PostCheckConfig {
	return PostCheckConfig{MinMeanVal: 0.3, MaxSmoothness: 3.0, MinAbsLag: 1.0}
}

// PostCheck examines a tracked path for continuity, TRRS level and
// smoothness (§4.3) and returns a confidence in [0, 1] (0 when rejected).
// Confidence blends the normalized TRRS level with a smoothness bonus so
// that, among accepted pairs, better-aligned ones rank higher.
func PostCheck(tr *Track, cfg PostCheckConfig) float64 {
	if len(tr.Lags) == 0 {
		return 0
	}
	mean := tr.MeanVal()
	if mean < cfg.MinMeanVal {
		return 0
	}
	sm := tr.Smoothness()
	if sm > cfg.MaxSmoothness {
		return 0
	}
	if tr.MedianAbsLag() < cfg.MinAbsLag {
		return 0
	}
	conf := mean * (1 - sm/(2*cfg.MaxSmoothness))
	if conf < 0 {
		conf = 0
	}
	if conf > 1 {
		conf = 1
	}
	return conf
}
