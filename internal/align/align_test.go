package align

import (
	"math"
	"testing"

	"rim/internal/array"
	"rim/internal/csi"
	"rim/internal/geom"
	"rim/internal/rf"
	"rim/internal/traj"
	"rim/internal/trrs"
)

func buildEngine(t *testing.T, tr *traj.Trajectory, arr *array.Array, rcfg csi.ReceiverConfig) *trrs.Engine {
	t.Helper()
	cfg := rf.FastConfig()
	env := rf.NewEnvironment(cfg, geom.Vec2{}, geom.Vec2{X: 10, Y: 0}, nil)
	s, err := csi.Collect(env, arr, tr, rcfg).Process(true)
	if err != nil {
		t.Fatal(err)
	}
	return trrs.NewEngine(s)
}

func TestMovementDetectionStopAndGo(t *testing.T) {
	rate := 100.0
	arr := array.NewLinear3(0.029)
	tr := traj.StopAndGo(rate, geom.Vec2{X: 10, Y: 0}, 0, 0.4, 0.5, 1.0, 2)
	e := buildEngine(t, tr, arr, csi.RealisticReceiver(17))
	cfg := DefaultMovementConfig()
	moving := DetectMovement(e, cfg)

	check := func(slot int, want bool, what string) {
		t.Helper()
		if moving[slot] != want {
			ind := MovementIndicator(e, cfg)
			t.Errorf("%s: slot %d moving=%v want %v (indicator %.3f)",
				what, slot, moving[slot], want, ind[slot])
		}
	}
	// Trace layout at 100 Hz: pause 0-100, move 100-180, pause 180-280,
	// move 280-360, pause 360-460.
	check(50, false, "first pause")
	check(140, true, "first move")
	check(240, false, "middle pause")
	check(320, true, "second move")
	check(430, false, "final pause")
}

func TestSegments(t *testing.T) {
	f := []bool{false, true, true, true, false, false, true, true, false}
	segs := Segments(f, 2, 0)
	if len(segs) != 2 || segs[0] != [2]int{1, 4} || segs[1] != [2]int{6, 8} {
		t.Errorf("segments = %v", segs)
	}
	// minLen filters the short run.
	segs = Segments(f, 4, 0)
	if len(segs) != 0 {
		t.Errorf("minLen filter failed: %v", segs)
	}
	// maxGap bridges the two runs.
	segs = Segments(f, 2, 2)
	if len(segs) != 1 || segs[0] != [2]int{1, 8} {
		t.Errorf("gap bridge = %v", segs)
	}
	if Segments(nil, 1, 0) != nil {
		t.Error("empty input must yield nil")
	}
	// All true.
	segs = Segments([]bool{true, true}, 1, 0)
	if len(segs) != 1 || segs[0] != [2]int{0, 2} {
		t.Errorf("all-true = %v", segs)
	}
}

// syntheticMatrix builds a matrix with a clean peak ridge at the given lag
// path, plus uniform noise floor.
func syntheticMatrix(w int, lagPath []int, peak, floor float64) *trrs.Matrix {
	m := &trrs.Matrix{W: w, Rate: 100}
	for _, lag := range lagPath {
		row := make([]float64, 2*w+1)
		for c := range row {
			row[c] = floor
		}
		if lag >= -w && lag <= w {
			row[lag+w] = peak
			// Soft shoulders.
			if lag+w-1 >= 0 {
				row[lag+w-1] = (peak + floor) / 2
			}
			if lag+w+1 < len(row) {
				row[lag+w+1] = (peak + floor) / 2
			}
		}
		m.Vals = append(m.Vals, row)
	}
	return m
}

func TestTrackPeaksFollowsRidge(t *testing.T) {
	w := 20
	path := make([]int, 60)
	for i := range path {
		path[i] = 5 + i/12 // slow drift from 5 to 9
	}
	m := syntheticMatrix(w, path, 0.9, 0.2)
	tr := TrackPeaks(m, 0, m.NumSlots(), DefaultTrackConfig())
	for i, lag := range tr.Lags {
		if d := math.Abs(float64(lag - path[i])); d > 1 {
			t.Fatalf("slot %d: tracked %d, truth %d", i, lag, path[i])
		}
	}
	if tr.MeanVal() < 0.8 {
		t.Errorf("path TRRS %v too low", tr.MeanVal())
	}
}

func TestTrackPeaksRejectsOutlierColumns(t *testing.T) {
	// A few columns have a spurious larger peak far away; the DP's jump
	// cost plus median smoothing must keep the path on the ridge, where
	// naive argmax jumps.
	w := 20
	path := make([]int, 50)
	for i := range path {
		path[i] = -6
	}
	m := syntheticMatrix(w, path, 0.8, 0.2)
	for _, bad := range []int{10, 25, 40} {
		m.Vals[bad][m.Col(15)] = 0.95 // outlier peak
	}
	tr := TrackPeaks(m, 0, m.NumSlots(), DefaultTrackConfig())
	for i, lag := range tr.Lags {
		if lag != -6 {
			t.Fatalf("slot %d: tracked %d, want -6", i, lag)
		}
	}
	// The naive column max does jump (sanity check of the ablation).
	lags, _ := m.ColumnMax()
	jumped := false
	for _, l := range lags {
		if l == 15 {
			jumped = true
		}
	}
	if !jumped {
		t.Error("outliers did not affect naive argmax; test is vacuous")
	}
}

func TestTrackPeaksSegmentBounds(t *testing.T) {
	w := 5
	path := make([]int, 30)
	for i := range path {
		path[i] = 2
	}
	m := syntheticMatrix(w, path, 0.9, 0.1)
	tr := TrackPeaks(m, 10, 20, TrackConfig{JumpCost: 0.067})
	if tr.Start != 10 || tr.End != 20 || len(tr.Lags) != 10 {
		t.Fatalf("segment track = %+v", tr)
	}
	// Degenerate segment.
	empty := TrackPeaks(m, 20, 20, DefaultTrackConfig())
	if len(empty.Lags) != 0 {
		t.Error("empty segment must produce empty track")
	}
	// Clamping.
	tr2 := TrackPeaks(m, -5, 999, DefaultTrackConfig())
	if tr2.Start != 0 || tr2.End != 30 {
		t.Errorf("clamping failed: %d..%d", tr2.Start, tr2.End)
	}
}

func TestTrackOnRealAlignment(t *testing.T) {
	// End-to-end: linear array moving along its axis; the DP track on pair
	// (0,2) must hover at lag = separation/speed.
	rate, speed := 100.0, 0.4
	arr := array.NewLinear3(0.029)
	tr := traj.Line(rate, geom.Vec2{X: 10, Y: 0}, 0, 0, 0.8, speed)
	e := buildEngine(t, tr, arr, csi.RealisticReceiver(5))
	m := e.PairMatrix(0, 2, 30, 20)
	wantLag := 0.058 / speed * rate // 14.5 slots
	track := TrackPeaks(m, 20, m.NumSlots()-5, DefaultTrackConfig())
	if d := math.Abs(track.MedianLag() - wantLag); d > 2 {
		t.Errorf("median tracked lag %v, want %v", track.MedianLag(), wantLag)
	}
	if conf := PostCheck(track, DefaultPostCheckConfig()); conf <= 0 {
		t.Error("aligned pair rejected by post-check")
	}
}

func TestPreDetectSeparatesAlignedFromOrthogonal(t *testing.T) {
	// Hexagonal array moving along body +X: the diameter pair (3,0) points
	// along the motion and is aligned; the chord pair (1,5) points along
	// −90° (perpendicular to the motion) and never aligns.
	rate, speed := 100.0, 0.4
	arr := array.NewHexagonal(0.029)
	tr := traj.Line(rate, geom.Vec2{X: 10, Y: 0}, 0, 0, 0.6, speed)
	e := buildEngine(t, tr, arr, csi.RealisticReceiver(29))
	w := 30
	aligned := e.PairMatrix(3, 0, w, 20)
	ortho := e.PairMatrix(1, 5, w, 20)
	cfg := DefaultPreDetectConfig()
	start, end := 20, e.NumSlots()-5
	fa, okA := PreDetect(aligned, start, end, cfg)
	fo, _ := PreDetect(ortho, start, end, cfg)
	if !okA {
		t.Errorf("aligned pair failed pre-detection (frac %.2f)", fa)
	}
	// Pre-detection is a permissive screen (borderline pairs are settled
	// by the post-check and cross-window consistency); the aligned pair
	// must still dominate the orthogonal one by a wide margin.
	if fo > fa/2 {
		t.Errorf("orthogonal frac %.2f not well below aligned %.2f", fo, fa)
	}
}

func TestPreDetectDegenerate(t *testing.T) {
	m := syntheticMatrix(5, []int{1, 1, 1}, 0.9, 0.1)
	if _, ok := PreDetect(m, 2, 2, DefaultPreDetectConfig()); ok {
		t.Error("empty range must fail")
	}
	if frac, ok := PreDetect(m, -10, 99, DefaultPreDetectConfig()); !ok || frac < 0.9 {
		t.Errorf("clamped range: frac=%v ok=%v", frac, ok)
	}
}

func TestPostCheckRejections(t *testing.T) {
	cfg := DefaultPostCheckConfig()
	mk := func(lags []int, vals []float64) *Track {
		return &Track{Lags: lags, Vals: vals}
	}
	// Too weak.
	weak := mk([]int{5, 5, 5}, []float64{0.1, 0.1, 0.1})
	if PostCheck(weak, cfg) != 0 {
		t.Error("weak path accepted")
	}
	// Too jumpy.
	jumpy := mk([]int{-10, 10, -10, 10}, []float64{0.9, 0.9, 0.9, 0.9})
	if PostCheck(jumpy, cfg) != 0 {
		t.Error("jumpy path accepted")
	}
	// Hugging zero lag.
	zero := mk([]int{0, 0, 0}, []float64{0.9, 0.9, 0.9})
	if PostCheck(zero, cfg) != 0 {
		t.Error("zero-lag path accepted")
	}
	// Good path.
	good := mk([]int{6, 6, 7, 7}, []float64{0.8, 0.8, 0.8, 0.8})
	if c := PostCheck(good, cfg); c <= 0 || c > 1 {
		t.Errorf("good path confidence = %v", c)
	}
	// Empty.
	if PostCheck(&Track{}, cfg) != 0 {
		t.Error("empty track accepted")
	}
}

func TestTrackHelpers(t *testing.T) {
	tr := &Track{Lags: []int{2, 4, 6}, Vals: []float64{0.5, 0.7, 0.9}}
	if math.Abs(tr.MeanVal()-0.7) > 1e-12 {
		t.Errorf("MeanVal = %v", tr.MeanVal())
	}
	if tr.Smoothness() != 2 {
		t.Errorf("Smoothness = %v", tr.Smoothness())
	}
	if tr.MedianLag() != 4 {
		t.Errorf("MedianLag = %v", tr.MedianLag())
	}
	single := &Track{Lags: []int{3}}
	if single.Smoothness() != 0 {
		t.Error("single-point smoothness != 0")
	}
}
