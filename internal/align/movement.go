// Package align implements the motion-measurement middle layer of RIM
// (§4.1–4.3): movement detection from self-TRRS, dynamic-programming peak
// tracking over alignment matrices, and the pre/post detection of which
// antenna pairs are actually aligned.
package align

import (
	"rim/internal/trrs"
)

// MovementConfig parameterizes §4.1 movement detection.
type MovementConfig struct {
	// LagSeconds is l_mv, the primary self-comparison lag. Chosen so that
	// brisk motion displaces the antenna by millimeters within it
	// (default 0.05 s: 5 mm at 0.1 m/s).
	LagSeconds float64
	// SlowLagSeconds is a second, longer lag that catches slow motions
	// (in-place rotation moves each antenna at only ω·r m/s) which barely
	// displace the antenna within LagSeconds (default 0.25 s).
	SlowLagSeconds float64
	// V is the virtual-massive window for the self-TRRS.
	V int
	// Threshold on the self-TRRS below which movement triggers.
	Threshold float64
	// ReleaseThreshold is the hysteresis release level: once moving, the
	// device is considered moving until the indicator rises above it.
	// Slow motions hover between the two levels without splitting a
	// segment, while static noise dips (which stay above Threshold)
	// never trigger.
	ReleaseThreshold float64
}

// DefaultMovementConfig returns the settings used by the experiments.
func DefaultMovementConfig() MovementConfig {
	return MovementConfig{
		LagSeconds:       0.05,
		SlowLagSeconds:   0.25,
		V:                4,
		Threshold:        0.8,
		ReleaseThreshold: 0.86,
	}
}

// MovementIndicator returns the per-slot movement statistic. For each lag
// the per-slot value is max(κ(t, t−lag), κ(t+lag, t)) — the device is
// considered static at t if the channel matches on either side of t, which
// keeps the indicator from smearing movement into the pause that follows a
// stop. The final indicator is the minimum over the fast and slow lags
// (the slow lag catches slow motions the fast lag cannot resolve) averaged
// over antennas. Values near 1 mean static; clear drops mean motion.
func MovementIndicator(e *trrs.Engine, cfg MovementConfig) []float64 {
	slots := e.NumSlots()
	lags := []float64{cfg.LagSeconds}
	if cfg.SlowLagSeconds > cfg.LagSeconds {
		lags = append(lags, cfg.SlowLagSeconds)
	}
	acc := make([]float64, slots)
	for t := range acc {
		acc[t] = 1
	}
	for _, lagSec := range lags {
		lag := int(lagSec * e.Rate())
		if lag < 1 {
			lag = 1
		}
		perLag := make([]float64, slots)
		for a := 0; a < e.NumAntennas(); a++ {
			s := e.SelfSeries(a, lag, cfg.V)
			for t := range perLag {
				fwd := s[t]
				bi := t + lag
				if bi >= slots {
					bi = slots - 1
				}
				bwd := s[bi]
				v := fwd
				if bwd > v {
					v = bwd
				}
				perLag[t] += v
			}
		}
		inv := 1 / float64(e.NumAntennas())
		for t := range perLag {
			perLag[t] *= inv
			if perLag[t] < acc[t] {
				acc[t] = perLag[t]
			}
		}
	}
	return acc
}

// DetectMovement thresholds the movement indicator into a per-slot flag
// with hysteresis (see MovementConfig).
func DetectMovement(e *trrs.Engine, cfg MovementConfig) []bool {
	return ThresholdWithHysteresis(MovementIndicator(e, cfg), cfg)
}

// ThresholdWithHysteresis converts an indicator series into moving flags:
// trigger when the value drops below Threshold, release when it rises above
// ReleaseThreshold (which defaults to Threshold when unset or inverted).
func ThresholdWithHysteresis(ind []float64, cfg MovementConfig) []bool {
	release := cfg.ReleaseThreshold
	if release < cfg.Threshold {
		release = cfg.Threshold
	}
	out := make([]bool, len(ind))
	moving := false
	for t, v := range ind {
		if moving {
			if v > release {
				moving = false
			}
		} else if v < cfg.Threshold {
			moving = true
		}
		out[t] = moving
	}
	// The trigger threshold delays the onset slightly; pull each run's
	// start back to where the indicator first left the fully static
	// level, so the segment boundary matches the physical start of
	// motion.
	for t := 1; t < len(out); t++ {
		if out[t] && !out[t-1] {
			for b := t - 1; b >= 0 && !out[b] && ind[b] < release; b-- {
				out[b] = true
			}
		}
	}
	return out
}

// Segments groups a boolean flag sequence into [start, end) runs of true at
// least minLen slots long; shorter runs are discarded, and gaps of up to
// maxGap false slots inside a run are bridged (transient detector dropouts
// should not split one physical movement).
func Segments(flags []bool, minLen, maxGap int) [][2]int {
	var out [][2]int
	i := 0
	n := len(flags)
	for i < n {
		if !flags[i] {
			i++
			continue
		}
		start := i
		end := i + 1
		gap := 0
		for j := i + 1; j < n; j++ {
			if flags[j] {
				end = j + 1
				gap = 0
			} else {
				gap++
				if gap > maxGap {
					break
				}
			}
		}
		if end-start >= minLen {
			out = append(out, [2]int{start, end})
		}
		i = end + maxGap
	}
	return out
}

// Prominence returns, per slot, how sharply the matrix row peaks: the
// maximum minus the best value outside a guard band of ±guard columns
// around the argmax. A genuine alignment peak is narrow (its width is the
// TRRS focusing width divided by the speed), so excluding the guard band
// leaves only the floor; the broad proximity bump of an unaligned pair
// survives just outside any reasonable guard and scores near 0. Used by
// pre-detection (§4.3). guard < 1 defaults to a fifth of the lag window.
func Prominence(m *trrs.Matrix, guard int) []float64 {
	if guard < 1 {
		// The physical peak width is set by the TRRS focusing distance
		// over the speed, not by the window, so wide windows must not
		// demand implausibly narrow peaks: clamp the default guard.
		guard = m.W / 5
		if guard < 2 {
			guard = 2
		}
		if guard > 10 {
			guard = 10
		}
	}
	out := make([]float64, m.NumSlots())
	for t, row := range m.Vals {
		mx, mi := -1.0, 0
		for c, v := range row {
			if v > mx {
				mx, mi = v, c
			}
		}
		second := 0.0
		for c, v := range row {
			if (c < mi-guard || c > mi+guard) && v > second {
				second = v
			}
		}
		out[t] = mx - second
	}
	return out
}

// PreDetectConfig controls candidate-pair screening.
type PreDetectConfig struct {
	// MinProminence is the per-slot peak prominence to count a slot as
	// "peaked".
	MinProminence float64
	// MinFraction is the fraction of slots (within the segment) that must
	// be peaked for the pair to remain a candidate.
	MinFraction float64
}

// DefaultPreDetectConfig returns the screening thresholds.
func DefaultPreDetectConfig() PreDetectConfig {
	return PreDetectConfig{MinProminence: 0.07, MinFraction: 0.3}
}

// PreDetect reports whether the matrix shows prominent peaks most of the
// time within [start, end) — the §4.3 pre-check that excludes obviously
// unaligned pairs before the expensive peak tracking. It returns the
// fraction of peaked slots and the pass/fail decision.
func PreDetect(m *trrs.Matrix, start, end int, cfg PreDetectConfig) (float64, bool) {
	if start < 0 {
		start = 0
	}
	if end > m.NumSlots() {
		end = m.NumSlots()
	}
	if end <= start {
		return 0, false
	}
	prom := Prominence(m, 0)
	peaked := 0
	for t := start; t < end; t++ {
		if prom[t] >= cfg.MinProminence {
			peaked++
		}
	}
	frac := float64(peaked) / float64(end-start)
	return frac, frac >= cfg.MinFraction
}
