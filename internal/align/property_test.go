package align

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rim/internal/trrs"
)

// randomMatrix builds a TRRS matrix with values in [0, 1].
func randomMatrix(rng *rand.Rand, slots, w int) *trrs.Matrix {
	m := &trrs.Matrix{W: w, Rate: 100}
	for t := 0; t < slots; t++ {
		row := make([]float64, 2*w+1)
		for c := range row {
			row[c] = rng.Float64()
		}
		m.Vals = append(m.Vals, row)
	}
	return m
}

// Property: the tracked path always stays within the lag window and has
// exactly one lag per slot of the requested range.
func TestTrackPeaksPathBoundsProperty(t *testing.T) {
	f := func(seed int64, slotsRaw, wRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		slots := 2 + int(slotsRaw%40)
		w := 1 + int(wRaw%12)
		m := randomMatrix(rng, slots, w)
		tr := TrackPeaks(m, 0, slots, DefaultTrackConfig())
		if len(tr.Lags) != slots || len(tr.Refined) != slots {
			return false
		}
		for k, lag := range tr.Lags {
			if lag < -w || lag > w {
				return false
			}
			if math.Abs(tr.Lag(k)-float64(lag)) > 0.5+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: with zero jump cost disabled fallback and a huge jump cost, the
// tracked path is (almost) constant — the DP must respect its own penalty.
func TestTrackPeaksHugeCostFreezesPath(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomMatrix(rng, 30, 8)
		tr := TrackPeaks(m, 0, 30, TrackConfig{JumpCost: 1e6})
		for i := 1; i < len(tr.Lags); i++ {
			if tr.Lags[i] != tr.Lags[0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the DP score never decreases when every matrix value is raised
// by a constant (monotonicity in the data).
func TestTrackPeaksScoreMonotoneProperty(t *testing.T) {
	f := func(seed int64, liftRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomMatrix(rng, 25, 6)
		lift := float64(liftRaw) / 512 // up to ~0.5
		m2 := &trrs.Matrix{W: m.W, Rate: m.Rate}
		for _, row := range m.Vals {
			r2 := make([]float64, len(row))
			for c, v := range row {
				r2[c] = v + lift
			}
			m2.Vals = append(m2.Vals, r2)
		}
		s1 := TrackPeaks(m, 0, 25, DefaultTrackConfig()).Score
		s2 := TrackPeaks(m2, 0, 25, DefaultTrackConfig()).Score
		return s2 >= s1-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: Segments output is sorted, non-overlapping, within bounds, and
// every reported run respects minLen.
func TestSegmentsInvariantsProperty(t *testing.T) {
	f := func(seed int64, nRaw, minRaw, gapRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%100) + 1
		minLen := int(minRaw%5) + 1
		maxGap := int(gapRaw % 5)
		flags := make([]bool, n)
		for i := range flags {
			flags[i] = rng.Float64() < 0.5
		}
		segs := Segments(flags, minLen, maxGap)
		prevEnd := -1
		for _, s := range segs {
			if s[0] < 0 || s[1] > n || s[1]-s[0] < minLen {
				return false
			}
			if s[0] <= prevEnd {
				return false
			}
			// Boundary slots must be genuine movement.
			if !flags[s[0]] || !flags[s[1]-1] {
				return false
			}
			prevEnd = s[1]
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: ThresholdWithHysteresis never reports movement when the
// indicator sits entirely above the trigger threshold, and always reports
// movement for indicators entirely below it.
func TestHysteresisExtremesProperty(t *testing.T) {
	cfg := DefaultMovementConfig()
	f := func(seed int64, high bool) bool {
		rng := rand.New(rand.NewSource(seed))
		ind := make([]float64, 50)
		for i := range ind {
			if high {
				ind[i] = cfg.ReleaseThreshold + 0.01 + 0.05*rng.Float64()
			} else {
				ind[i] = cfg.Threshold - 0.011 - 0.05*rng.Float64()
			}
		}
		flags := ThresholdWithHysteresis(ind, cfg)
		for _, m := range flags {
			if m == high {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: PostCheck confidence is always within [0, 1].
func TestPostCheckRangeProperty(t *testing.T) {
	cfg := DefaultPostCheckConfig()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(30)
		tr := &Track{}
		for i := 0; i < n; i++ {
			tr.Lags = append(tr.Lags, rng.Intn(21)-10)
			tr.Vals = append(tr.Vals, rng.Float64())
		}
		c := PostCheck(tr, cfg)
		return c >= 0 && c <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
