package sigproc

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostF(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func randVec(rng *rand.Rand, n int) []complex128 {
	v := make([]complex128, n)
	for i := range v {
		v[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return v
}

func TestInnerProductMatchesDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randVec(rng, 33)
	b := randVec(rng, 33)
	var want complex128
	for i := range a {
		want += cmplx.Conj(a[i]) * b[i]
	}
	got := InnerProduct(a, b)
	if cmplx.Abs(got-want) > 1e-9 {
		t.Errorf("InnerProduct = %v, want %v", got, want)
	}
}

func TestInnerProductPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on mismatched lengths")
		}
	}()
	InnerProduct(make([]complex128, 2), make([]complex128, 3))
}

func TestEnergyAndNormalize(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randVec(rng, 64)
	e := Energy(a)
	if e <= 0 {
		t.Fatal("energy must be positive")
	}
	n := Normalize(a)
	if !almostF(n, math.Sqrt(e), 1e-9) {
		t.Errorf("Normalize returned %v, want %v", n, math.Sqrt(e))
	}
	if !almostF(Energy(a), 1, 1e-9) {
		t.Errorf("post-normalize energy = %v", Energy(a))
	}
	var zero []complex128
	if Normalize(zero) != 0 {
		t.Error("Normalize(nil) != 0")
	}
	z := make([]complex128, 4)
	if Normalize(z) != 0 {
		t.Error("Normalize(zero vector) != 0")
	}
}

func TestInnerProductCauchySchwarz(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randVec(rng, 16)
		b := randVec(rng, 16)
		lhs := cmplx.Abs(InnerProduct(a, b))
		rhs := math.Sqrt(Energy(a) * Energy(b))
		return lhs <= rhs*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTimeReverseConj(t *testing.T) {
	a := []complex128{1 + 2i, 3 - 1i, -2 + 0.5i}
	g := TimeReverseConj(a)
	want := []complex128{-2 - 0.5i, 3 + 1i, 1 - 2i}
	for i := range want {
		if cmplx.Abs(g[i]-want[i]) > 1e-12 {
			t.Errorf("g[%d] = %v, want %v", i, g[i], want[i])
		}
	}
}

func TestConvolveKnown(t *testing.T) {
	a := []complex128{1, 2}
	b := []complex128{3, 4, 5}
	got := Convolve(a, b)
	want := []complex128{3, 10, 13, 10}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if cmplx.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("conv[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if Convolve(nil, b) != nil {
		t.Error("Convolve(nil, b) should be nil")
	}
}

func TestMaxAbs(t *testing.T) {
	a := []complex128{1, 3i, -2 - 2i}
	m, i := MaxAbs(a)
	if i != 1 || !almostF(m, 3, 1e-12) {
		t.Errorf("MaxAbs = %v at %d", m, i)
	}
	if _, i := MaxAbs(nil); i != -1 {
		t.Error("MaxAbs(nil) index != -1")
	}
}

func TestApplyPhaseRamp(t *testing.T) {
	n := 32
	a := make([]complex128, n)
	for i := range a {
		a[i] = 1
	}
	offset, slope := 0.7, 0.05
	ApplyPhaseRamp(a, offset, slope)
	for k := range a {
		wantPh := offset + slope*float64(k)
		if !almostF(cmplx.Phase(a[k]), math.Mod(wantPh+math.Pi, 2*math.Pi)-math.Pi, 1e-6) {
			t.Fatalf("phase[%d] = %v, want %v", k, cmplx.Phase(a[k]), wantPh)
		}
		if !almostF(cmplx.Abs(a[k]), 1, 1e-9) {
			t.Fatalf("ramp changed magnitude at %d", k)
		}
	}
}

func TestUnwrap(t *testing.T) {
	// A linear phase with slope 0.9 rad/sample wraps several times over 30
	// samples; unwrapping must recover the line.
	n := 30
	truth := make([]float64, n)
	wrapped := make([]float64, n)
	for i := 0; i < n; i++ {
		truth[i] = 0.9 * float64(i)
		wrapped[i] = math.Mod(truth[i]+math.Pi, 2*math.Pi) - math.Pi
	}
	got := Unwrap(wrapped)
	for i := range got {
		if !almostF(got[i], truth[i], 1e-9) {
			t.Fatalf("Unwrap[%d] = %v, want %v", i, got[i], truth[i])
		}
	}
	if len(Unwrap(nil)) != 0 {
		t.Error("Unwrap(nil) not empty")
	}
}

func TestConjAndHelpers(t *testing.T) {
	a := []complex128{1 + 1i, 2 - 3i}
	c := Conj(a)
	if c[0] != 1-1i || c[1] != 2+3i {
		t.Errorf("Conj = %v", c)
	}
	ph := Phases(a)
	if !almostF(ph[0], math.Pi/4, 1e-12) {
		t.Errorf("Phases[0] = %v", ph[0])
	}
	mg := Magnitudes(a)
	if !almostF(mg[0], math.Sqrt2, 1e-12) {
		t.Errorf("Magnitudes[0] = %v", mg[0])
	}
}

// TRRS identity: the frequency-domain normalized inner product equals the
// time-domain max-convolution definition for equal-length vectors.
func TestTimeFreqTRRSEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h1 := randVec(rng, 16)
	h2 := randVec(rng, 16)
	// Time domain (Eq. 1): kappa = max|h1*g2|^2 / (<h1,h1><g2,g2>).
	g2 := TimeReverseConj(h2)
	conv := Convolve(h1, g2)
	peak, _ := MaxAbs(conv)
	kTime := peak * peak / (Energy(h1) * Energy(g2))
	// Frequency domain (Eq. 2) on the DFTs of h1, h2.
	H1 := FFT(h1)
	H2 := FFT(h2)
	ip := cmplx.Abs(InnerProduct(H1, H2))
	kFreq := ip * ip / (Energy(H1) * Energy(H2))
	// The time-domain max over lags is >= the zero-lag (frequency) value,
	// and equals it when the peak is at zero lag. Check the invariant and
	// the exact equality of the zero-lag term.
	zeroLag := cmplx.Abs(conv[len(h1)-1]) // lag 0 index in full convolution
	kZero := zeroLag * zeroLag / (Energy(h1) * Energy(g2))
	if kTime < kZero-1e-12 {
		t.Errorf("max-lag TRRS %v < zero-lag %v", kTime, kZero)
	}
	if !almostF(kZero, kFreq, 1e-9) {
		t.Errorf("zero-lag time TRRS %v != freq TRRS %v", kZero, kFreq)
	}
}
