//go:build !amd64

package sigproc

// Non-amd64 builds have no vector sweep backend; the portable scalar
// sweeps are the implementation.
const vecSupported = false

func dotSqSweep(out, ar, ai, br, bi []float64, off, stride, tones int) {
	dotSqSweepGeneric(out, ar, ai, br, bi, off, stride, tones)
}

func dotSqSweep32(out []float64, ar, ai, br, bi []float32, off, stride, tones int) {
	dotSqSweep32Generic(out, ar, ai, br, bi, off, stride, tones)
}
