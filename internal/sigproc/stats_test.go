package sigproc

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMeanVarianceStd(t *testing.T) {
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !almostF(Mean(x), 5, 1e-12) {
		t.Errorf("Mean = %v", Mean(x))
	}
	if !almostF(Variance(x), 4, 1e-12) {
		t.Errorf("Variance = %v", Variance(x))
	}
	if !almostF(Std(x), 2, 1e-12) {
		t.Errorf("Std = %v", Std(x))
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("degenerate stats not zero")
	}
}

func TestMedianPercentile(t *testing.T) {
	x := []float64{5, 1, 3}
	if Median(x) != 3 {
		t.Errorf("Median = %v", Median(x))
	}
	y := []float64{1, 2, 3, 4}
	if !almostF(Median(y), 2.5, 1e-12) {
		t.Errorf("even Median = %v", Median(y))
	}
	if Percentile(y, 0) != 1 || Percentile(y, 100) != 4 {
		t.Error("extreme percentiles wrong")
	}
	if !almostF(Percentile(y, 75), 3.25, 1e-12) {
		t.Errorf("P75 = %v", Percentile(y, 75))
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile not 0")
	}
	// Percentile must not reorder the caller's slice.
	z := []float64{9, 1, 5}
	Percentile(z, 50)
	if z[0] != 9 {
		t.Error("Percentile mutated input")
	}
}

func TestPercentileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, 20)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := Percentile(x, p)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCDF(t *testing.T) {
	x := []float64{3, 1, 2}
	cdf := CDF(x)
	if len(cdf) != 3 {
		t.Fatalf("len = %d", len(cdf))
	}
	if !sort.SliceIsSorted(cdf, func(i, j int) bool { return cdf[i].Value < cdf[j].Value }) {
		t.Error("CDF values not sorted")
	}
	if cdf[2].P != 1 {
		t.Errorf("last P = %v", cdf[2].P)
	}
	if CDF(nil) != nil {
		t.Error("empty CDF not nil")
	}
	if got := CDFAt(x, 2); !almostF(got, 2.0/3, 1e-12) {
		t.Errorf("CDFAt = %v", got)
	}
	if CDFAt(nil, 1) != 0 {
		t.Error("CDFAt(nil) != 0")
	}
}

func TestMinMax(t *testing.T) {
	x := []float64{3, -1, 7}
	if Min(x) != -1 || Max(x) != 7 {
		t.Error("Min/Max wrong")
	}
	if !math.IsInf(Max(nil), -1) || !math.IsInf(Min(nil), 1) {
		t.Error("empty Min/Max not infinite")
	}
}

func TestSummarize(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	s := Summarize(x)
	if s.N != 10 || !almostF(s.Mean, 5.5, 1e-12) || !almostF(s.Median, 5.5, 1e-12) {
		t.Errorf("Summary = %+v", s)
	}
	if s.Min != 1 || s.Max != 10 {
		t.Error("Summary min/max wrong")
	}
	if s.P90 < s.Median || s.P95 < s.P90 {
		t.Error("Summary percentiles not ordered")
	}
	if Summarize(nil).N != 0 {
		t.Error("empty Summarize not zero")
	}
}
