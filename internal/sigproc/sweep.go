package sigproc

// Lag-sweep TRRS kernels. A base-matrix row evaluates |<a, b_k>|² for one
// fixed snapshot a against a run of consecutive snapshots b_k — in the SoA
// planes those b_k are adjacent tones-sized blocks, so the whole sweep is
// one strided walk over contiguous memory. The sweep entry points below
// amortize the per-call cost (prologue, tail-mask setup) over the entire
// lag band instead of paying it once per matrix entry, which is where the
// AVX2 build gets most of its headroom over per-entry vector calls.
//
// On amd64 with AVX2+FMA (runtime-detected, see VecSupported) the sweeps
// dispatch to hand-written assembly: 4 float64 or 8 float32 lanes, four
// FMA accumulator registers per slot, masked tail loads from a static
// table so no tail element is ever touched out of bounds. Everywhere else
// they fall back to the scalar kernels. Both paths accumulate lanewise and
// reduce pairwise, so they agree with the sequential kernels only to
// rounding — the trrs vector kernel that consumes them is opt-in and gated
// at 1e-12 relative (float64) by the equivalence suite, never the
// bit-exact default.

// VecSupported reports whether the vectorized sweep kernels are backed by
// AVX2+FMA assembly on this machine. When false the sweeps still work
// (scalar fallback), but trrs.KernelVector buys nothing over the default;
// callers gating benchmarks or kernel selection on real SIMD should check
// this.
func VecSupported() bool { return vecSupported }

// checkSweep validates one sweep call: a must hold tones elements, and
// every b_k block [off+k*stride, off+k*stride+tones) for k in [0, count)
// must lie inside the b planes. The offsets are monotonic in k, so the two
// end blocks bound them all.
func checkSweep(name string, count, na, nai, nbr, nbi, off, stride, tones int) {
	if tones < 0 || na < tones || nai < tones {
		panic("sigproc: " + name + " a-plane shorter than tones")
	}
	if count == 0 {
		return
	}
	lo, hi := off, off+(count-1)*stride
	if hi < lo {
		lo, hi = hi, lo
	}
	if lo < 0 || hi+tones > nbr || hi+tones > nbi {
		panic("sigproc: " + name + " b-plane range out of bounds")
	}
}

// DotSqSweepSoA accumulates out[k] += |<a, b_k>|² for k in [0, len(out)),
// where a is (ar, ai)[0:tones] and b_k is (br, bi)[off+k*stride :
// off+k*stride+tones]. stride may be negative (the TRRS lag sweep walks
// earlier slots as the lag grows). Out-of-bounds geometry panics.
func DotSqSweepSoA(out, ar, ai, br, bi []float64, off, stride, tones int) {
	checkSweep("DotSqSweepSoA", len(out), len(ar), len(ai), len(br), len(bi), off, stride, tones)
	if len(out) == 0 || tones == 0 {
		return
	}
	dotSqSweep(out, ar, ai, br, bi, off, stride, tones)
}

// DotSqSweepSoA32 is DotSqSweepSoA over float32 planes, accumulating each
// inner product in float32 (8 lanes on AVX2) and adding the float64 |·|²
// into out.
func DotSqSweepSoA32(out []float64, ar, ai, br, bi []float32, off, stride, tones int) {
	checkSweep("DotSqSweepSoA32", len(out), len(ar), len(ai), len(br), len(bi), off, stride, tones)
	if len(out) == 0 || tones == 0 {
		return
	}
	dotSqSweep32(out, ar, ai, br, bi, off, stride, tones)
}

// dotSqSweepGeneric is the portable sweep: one scalar kernel call per
// slot. It is the non-amd64 implementation and the oracle the assembly is
// tested against (to rounding; the lane reduction differs).
func dotSqSweepGeneric(out, ar, ai, br, bi []float64, off, stride, tones int) {
	ar, ai = ar[:tones], ai[:tones]
	for k := range out {
		o := off + k*stride
		out[k] += DotSqSoA(ar, ai, br[o:o+tones], bi[o:o+tones])
	}
}

// dotSqSweep32Generic is the portable float32 sweep.
func dotSqSweep32Generic(out []float64, ar, ai, br, bi []float32, off, stride, tones int) {
	ar, ai = ar[:tones], ai[:tones]
	for k := range out {
		o := off + k*stride
		out[k] += DotSqSoA32(ar, ai, br[o:o+tones], bi[o:o+tones])
	}
}
