package sigproc

import (
	"math"
	"math/rand"
	"testing"
)

// splitSoA32 converts an AoS complex vector to float32 SoA planes.
func splitSoA32(a []complex128) (re, im []float32) {
	re = make([]float32, len(a))
	im = make([]float32, len(a))
	for k, c := range a {
		re[k] = float32(real(c))
		im[k] = float32(imag(c))
	}
	return re, im
}

// sweepPlanes builds SoA planes holding `slots` consecutive snapshots of
// `tones` tones each, exactly the layout the TRRS engine sweeps.
func sweepPlanes(rng *rand.Rand, slots, tones int) (re, im []float64) {
	re = make([]float64, slots*tones)
	im = make([]float64, slots*tones)
	for k := range re {
		re[k] = rng.NormFloat64()
		im[k] = rng.NormFloat64()
	}
	return re, im
}

// TestDotSqSweepSoAMatchesScalar compares the sweep (assembly on amd64,
// generic elsewhere) against per-slot DotSqSoA across every tail class and
// both stride signs, including the engine's lag-sweep stride of -tones.
// The vector reduction reassociates, so the gate is 1e-12 relative — the
// same bound the opt-in trrs kernels carry.
func TestDotSqSweepSoAMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const slots = 9
	for tones := 0; tones <= 33; tones++ {
		ar, ai := sweepPlanes(rng, 1, tones)
		br, bi := sweepPlanes(rng, slots, tones)
		for _, stride := range []int{tones, -tones} {
			off := 0
			if stride < 0 {
				off = (slots - 1) * tones
			}
			out := make([]float64, slots)
			DotSqSweepSoA(out, ar, ai, br, bi, off, stride, tones)
			for k := 0; k < slots; k++ {
				o := off + k*stride
				want := DotSqSoA(ar, ai, br[o:o+tones], bi[o:o+tones])
				tol := 1e-12 * math.Max(math.Abs(want), 1)
				if math.Abs(out[k]-want) > tol {
					t.Fatalf("tones=%d stride=%d k=%d: sweep %v vs scalar %v",
						tones, stride, k, out[k], want)
				}
			}
		}
	}
}

// TestDotSqSweepSoAAccumulates verifies the += contract: the sweep adds
// into out, it does not overwrite. The per-tx TRRS accumulation depends on
// this.
func TestDotSqSweepSoAAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	const slots, tones = 5, 30
	ar, ai := sweepPlanes(rng, 1, tones)
	br, bi := sweepPlanes(rng, slots, tones)
	base := make([]float64, slots)
	for k := range base {
		base[k] = float64(k + 1)
	}
	out := append([]float64(nil), base...)
	DotSqSweepSoA(out, ar, ai, br, bi, 0, tones, tones)
	for k := 0; k < slots; k++ {
		want := base[k] + DotSqSoA(ar, ai, br[k*tones:(k+1)*tones], bi[k*tones:(k+1)*tones])
		tol := 1e-12 * math.Max(math.Abs(want), 1)
		if math.Abs(out[k]-want) > tol {
			t.Fatalf("k=%d: %v, want %v", k, out[k], want)
		}
	}
}

// TestDotSqSweepSoA32Tolerance bounds the float32 sweep against the
// float64 scalar oracle. A unit-normalized 30-tone inner product carries
// ~1e-7 relative error in float32; the gate here is 1e-5 on normalized
// snapshots, the same budget the trrs precision suite enforces at matrix
// level.
func TestDotSqSweepSoA32Tolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const slots = 7
	for tones := 1; tones <= 33; tones++ {
		a := randVec(rng, tones)
		ar, ai := splitSoA(a)
		NormalizeSoA(ar, ai)
		br := make([]float64, slots*tones)
		bi := make([]float64, slots*tones)
		for s := 0; s < slots; s++ {
			b := randVec(rng, tones)
			sr, si := splitSoA(b)
			NormalizeSoA(sr, si)
			copy(br[s*tones:], sr)
			copy(bi[s*tones:], si)
		}
		ar32 := make([]float32, tones)
		ai32 := make([]float32, tones)
		for k := 0; k < tones; k++ {
			ar32[k], ai32[k] = float32(ar[k]), float32(ai[k])
		}
		br32 := make([]float32, slots*tones)
		bi32 := make([]float32, slots*tones)
		for k := range br {
			br32[k], bi32[k] = float32(br[k]), float32(bi[k])
		}
		out := make([]float64, slots)
		off := (slots - 1) * tones
		DotSqSweepSoA32(out, ar32, ai32, br32, bi32, off, -tones, tones)
		for k := 0; k < slots; k++ {
			o := off - k*tones
			want := DotSqSoA(ar, ai, br[o:o+tones], bi[o:o+tones])
			tol := 1e-5 * math.Max(math.Abs(want), 1)
			if math.Abs(out[k]-want) > tol {
				t.Fatalf("tones=%d k=%d: f32 sweep %v vs f64 %v (diff %g)",
					tones, k, out[k], want, out[k]-want)
			}
		}
	}
}

// TestDotSqSweepMatchesGeneric cross-checks the dispatched implementation
// (assembly where available) against the portable generic directly on the
// same inputs.
func TestDotSqSweepMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	const slots, tones = 11, 29
	ar, ai := sweepPlanes(rng, 1, tones)
	br, bi := sweepPlanes(rng, slots, tones)
	got := make([]float64, slots)
	want := make([]float64, slots)
	off := (slots - 1) * tones
	dotSqSweep(got, ar, ai, br, bi, off, -tones, tones)
	dotSqSweepGeneric(want, ar, ai, br, bi, off, -tones, tones)
	for k := range got {
		tol := 1e-12 * math.Max(math.Abs(want[k]), 1)
		if math.Abs(got[k]-want[k]) > tol {
			t.Fatalf("k=%d: dispatch %v vs generic %v", k, got[k], want[k])
		}
	}
	if VecSupported() {
		t.Logf("vector sweep backend active (AVX2+FMA)")
	} else {
		t.Logf("scalar sweep fallback active")
	}
}

// TestDotSqSweepBoundsPanic checks the geometry contract: any b_k block
// escaping the planes must panic rather than read out of bounds.
func TestDotSqSweepBoundsPanic(t *testing.T) {
	const slots, tones = 4, 8
	ar := make([]float64, tones)
	ai := make([]float64, tones)
	br := make([]float64, slots*tones)
	bi := make([]float64, slots*tones)
	out := make([]float64, slots)
	cases := []struct {
		name        string
		off, stride int
		count       int
	}{
		{"negative off", -1, tones, slots},
		{"tail past end", 1, tones, slots},
		{"negative stride underflow", 0, -tones, 2},
		{"count past end", 0, tones, slots + 1},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", tc.name)
				}
			}()
			DotSqSweepSoA(out[:tc.count], ar, ai, br, bi, tc.off, tc.stride, tones)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("short a plane: expected panic")
			}
		}()
		DotSqSweepSoA(out, ar[:tones-1], ai, br, bi, 0, tones, tones)
	}()
}

// TestDotSqSoA8Tolerance bounds the 8-way unrolled kernel at the same
// 1e-12 relative gate as DotSqSoA4, across every remainder class.
func TestDotSqSoA8Tolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	for n := 0; n <= 130; n++ {
		a, b := randVec(rng, n), randVec(rng, n)
		ar, ai := splitSoA(a)
		br, bi := splitSoA(b)
		want := DotSqSoA(ar, ai, br, bi)
		got := DotSqSoA8(ar, ai, br, bi)
		tol := 1e-12 * math.Max(math.Abs(want), 1)
		if math.Abs(got-want) > tol {
			t.Fatalf("n=%d: unrolled8 %v vs sequential %v", n, got, want)
		}
	}
}

// TestDotSqSoA32Tolerance bounds the scalar float32 kernel on normalized
// inputs and checks the shape contract.
func TestDotSqSoA32Tolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	for n := 1; n <= 64; n++ {
		a, b := randVec(rng, n), randVec(rng, n)
		ar, ai := splitSoA(a)
		br, bi := splitSoA(b)
		NormalizeSoA(ar, ai)
		NormalizeSoA(br, bi)
		ar32, ai32 := make([]float32, n), make([]float32, n)
		br32, bi32 := make([]float32, n), make([]float32, n)
		for k := 0; k < n; k++ {
			ar32[k], ai32[k] = float32(ar[k]), float32(ai[k])
			br32[k], bi32[k] = float32(br[k]), float32(bi[k])
		}
		want := DotSqSoA(ar, ai, br, bi)
		got := DotSqSoA32(ar32, ai32, br32, bi32)
		tol := 1e-5 * math.Max(math.Abs(want), 1)
		if math.Abs(got-want) > tol {
			t.Fatalf("n=%d: f32 %v vs f64 %v", n, got, want)
		}
	}
	if DotSqSoA32(nil, nil, nil, nil) != 0 {
		t.Fatal("empty float32 dot must be 0")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("DotSqSoA32 must panic on length mismatch")
			}
		}()
		DotSqSoA32(make([]float32, 3), make([]float32, 3), make([]float32, 3), make([]float32, 2))
	}()
}

// TestNormalizeSoA32 checks unit energy after normalization, the returned
// norm against the float64 path, and the zero-vector no-op.
func TestNormalizeSoA32(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	for n := 1; n <= 40; n++ {
		a := randVec(rng, n)
		ar, ai := splitSoA(a)
		ar32, ai32 := splitSoA32(a)
		wantNorm := NormalizeSoA(ar, ai)
		gotNorm := NormalizeSoA32(ar32, ai32)
		if math.Abs(gotNorm-wantNorm) > 1e-5*math.Max(wantNorm, 1) {
			t.Fatalf("n=%d: norm %v vs %v", n, gotNorm, wantNorm)
		}
		if e := EnergySoA32(ar32, ai32); math.Abs(e-1) > 1e-5 {
			t.Fatalf("n=%d: post-normalize energy %v", n, e)
		}
	}
	zr, zi := make([]float32, 5), make([]float32, 5)
	if NormalizeSoA32(zr, zi) != 0 {
		t.Fatal("zero vector must return norm 0")
	}
	if EnergySoA32(zr, zi) != 0 {
		t.Fatal("zero vector energy must stay 0")
	}
}
