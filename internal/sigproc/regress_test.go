package sigproc

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestLinearFitExact(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = 2.5 + 0.7*v
	}
	b, m := LinearFit(x, y)
	if !almostF(b, 2.5, 1e-9) || !almostF(m, 0.7, 1e-9) {
		t.Errorf("fit = (%v, %v)", b, m)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	if b, m := LinearFit(nil, nil); b != 0 || m != 0 {
		t.Error("empty fit not zero")
	}
	if b, m := LinearFit([]float64{2}, []float64{5}); b != 5 || m != 0 {
		t.Error("single-point fit wrong")
	}
	// All x identical: slope must be 0, intercept the mean.
	b, m := LinearFit([]float64{1, 1, 1}, []float64{2, 4, 6})
	if m != 0 || !almostF(b, 4, 1e-12) {
		t.Errorf("vertical fit = (%v, %v)", b, m)
	}
}

func TestLinearFitIndexedMatchesGeneral(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	y := make([]float64, 40)
	for i := range y {
		y[i] = 3 - 0.2*float64(i) + 0.01*rng.NormFloat64()
	}
	x := make([]float64, len(y))
	for i := range x {
		x[i] = float64(i)
	}
	b1, m1 := LinearFit(x, y)
	b2, m2 := LinearFitIndexed(y)
	if !almostF(b1, b2, 1e-9) || !almostF(m1, m2, 1e-9) {
		t.Errorf("indexed fit (%v,%v) != general (%v,%v)", b2, m2, b1, m1)
	}
}

func TestDetrendPhaseRemovesRamp(t *testing.T) {
	// Build a flat spectrum, inject a known linear phase ramp, detrend, and
	// verify the phases return to (approximately) constant.
	n := 56
	a := make([]complex128, n)
	for i := range a {
		a[i] = complex(1, 0)
	}
	ApplyPhaseRamp(a, 1.2, 0.4)
	intercept, slope := DetrendPhase(a)
	if !almostF(slope, 0.4, 1e-6) {
		t.Errorf("recovered slope = %v, want 0.4", slope)
	}
	_ = intercept
	for k := 1; k < n; k++ {
		d := cmplx.Phase(a[k] * cmplx.Conj(a[k-1]))
		if math.Abs(d) > 1e-6 {
			t.Fatalf("residual phase step %v at %d", d, k)
		}
	}
}

func TestDetrendPhasePreservesMultipathStructure(t *testing.T) {
	// A two-path channel has non-linear phase; sanitization must keep the
	// magnitude profile intact (it only rotates phases).
	n := 30
	a := make([]complex128, n)
	for k := 0; k < n; k++ {
		ph1 := -2 * math.Pi * 0.1 * float64(k)
		ph2 := -2 * math.Pi * 0.31 * float64(k)
		a[k] = cmplx.Rect(1, ph1) + cmplx.Rect(0.6, ph2)
	}
	before := Magnitudes(a)
	DetrendPhase(a)
	after := Magnitudes(a)
	for i := range before {
		if !almostF(before[i], after[i], 1e-9) {
			t.Fatalf("sanitization changed magnitude at %d", i)
		}
	}
}

func TestDetrendPhaseEmpty(t *testing.T) {
	if b, m := DetrendPhase(nil); b != 0 || m != 0 {
		t.Error("empty detrend not zero")
	}
}
