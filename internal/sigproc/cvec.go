// Package sigproc implements the signal-processing kernels used across RIM:
// complex vector operations, FFT, phase unwrapping and linear detrending,
// smoothing filters, interpolation, and summary statistics.
//
// The package is dependency-free and allocation-conscious: the inner-product
// kernels here sit on the hot path of the TRRS computation (every CSI sample
// against every lag in the alignment window), so they operate on plain
// slices and avoid interface indirection.
package sigproc

import (
	"errors"
	"math"
	"math/cmplx"
)

// ErrLengthMismatch is returned by kernels that require equal-length inputs.
var ErrLengthMismatch = errors.New("sigproc: vector length mismatch")

// InnerProduct returns the complex inner product <a, b> = sum_i conj(a[i])*b[i].
// It panics if the lengths differ; on the hot path callers guarantee shape.
func InnerProduct(a, b []complex128) complex128 {
	if len(a) != len(b) {
		panic("sigproc: InnerProduct length mismatch")
	}
	// Accumulate real and imaginary parts separately; this lets the
	// compiler keep the accumulators in registers.
	var re, im float64
	for i := range a {
		ar, ai := real(a[i]), imag(a[i])
		br, bi := real(b[i]), imag(b[i])
		re += ar*br + ai*bi
		im += ar*bi - ai*br
	}
	return complex(re, im)
}

// Energy returns <a, a> as a real number.
func Energy(a []complex128) float64 {
	var e float64
	for _, v := range a {
		re, im := real(v), imag(v)
		e += re*re + im*im
	}
	return e
}

// Normalize scales a in place to unit energy and returns the original
// Euclidean norm. A zero vector is left unchanged and 0 is returned.
func Normalize(a []complex128) float64 {
	n := math.Sqrt(Energy(a))
	if n == 0 {
		return 0
	}
	inv := complex(1/n, 0)
	for i := range a {
		a[i] *= inv
	}
	return n
}

// Conj returns the element-wise conjugate of a in a new slice.
func Conj(a []complex128) []complex128 {
	out := make([]complex128, len(a))
	for i, v := range a {
		out[i] = cmplx.Conj(v)
	}
	return out
}

// TimeReverseConj returns g with g[k] = conj(a[T-1-k]), the time-reversed
// conjugate used in the time-domain TRRS definition (Eq. 1 of the paper).
func TimeReverseConj(a []complex128) []complex128 {
	n := len(a)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		out[k] = cmplx.Conj(a[n-1-k])
	}
	return out
}

// Convolve returns the full linear convolution of a and b
// (length len(a)+len(b)-1). Used by the time-domain TRRS reference
// implementation; the production path works in the frequency domain.
func Convolve(a, b []complex128) []complex128 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := make([]complex128, len(a)+len(b)-1)
	for i, av := range a {
		for j, bv := range b {
			out[i+j] += av * bv
		}
	}
	return out
}

// MaxAbs returns the maximum magnitude over a and its index.
// For an empty slice it returns (0, -1).
func MaxAbs(a []complex128) (float64, int) {
	best, idx := 0.0, -1
	for i, v := range a {
		m := cmplx.Abs(v)
		if m > best {
			best, idx = m, i
		}
	}
	return best, idx
}

// Phases returns the element-wise phase of a in radians.
func Phases(a []complex128) []float64 {
	out := make([]float64, len(a))
	for i, v := range a {
		out[i] = cmplx.Phase(v)
	}
	return out
}

// Magnitudes returns the element-wise magnitude of a.
func Magnitudes(a []complex128) []float64 {
	out := make([]float64, len(a))
	for i, v := range a {
		out[i] = cmplx.Abs(v)
	}
	return out
}

// ApplyPhaseRamp multiplies a[k] by exp(i*(offset + slope*k)) in place.
// It is the building block for injecting and removing linear phase errors
// (CFO/SFO/STO) across subcarriers.
func ApplyPhaseRamp(a []complex128, offset, slope float64) {
	s0, c0 := math.Sincos(offset)
	rot := complex(c0, s0)
	ds, dc := math.Sincos(slope)
	step := complex(dc, ds)
	for i := range a {
		a[i] *= rot
		rot *= step
	}
}

// Unwrap returns the phase sequence with 2π jumps removed.
func Unwrap(ph []float64) []float64 {
	out := make([]float64, len(ph))
	if len(ph) == 0 {
		return out
	}
	out[0] = ph[0]
	for i := 1; i < len(ph); i++ {
		d := ph[i] - ph[i-1]
		for d > math.Pi {
			d -= 2 * math.Pi
		}
		for d < -math.Pi {
			d += 2 * math.Pi
		}
		out[i] = out[i-1] + d
	}
	return out
}
