package sigproc

import "math"

// Float32 SoA kernels — the precision-mode counterparts of the float64
// primitives in soa.go. The TRRS engine's opt-in float32 plane mode
// (trrs.PrecisionFloat32) stores normalized CSI as re/im float32 planes:
// half the memory traffic per lag sweep and twice the SIMD lane count for
// the vector kernels, at ~1e-7 relative error per inner product (the
// engine's matrix-level error budget is pinned by the property suite and
// the bench guard).
//
// Accumulation runs in float32 — that is the point of the mode; a float64
// accumulator would serialize the conversion on the hot path — but the
// |·|² composition at the end is taken in float64, matching the assembly
// sweep kernels, so callers always receive float64 TRRS values.
// Normalization energy is accumulated in float64 (ingest-time only, and
// it halves the normalization's rounding error for free).

// DotSqSoA32 returns |<a, b>|² for complex vectors given as separate
// real/imag float32 slices, accumulating in float32 in DotSqSoA's element
// order. All four slices must have equal length; mismatch panics.
func DotSqSoA32(ar, ai, br, bi []float32) float64 {
	n := len(ar)
	if len(ai) != n || len(br) != n || len(bi) != n {
		panic("sigproc: DotSqSoA32 length mismatch")
	}
	if n == 0 {
		return 0
	}
	ai = ai[:n]
	br = br[:n]
	bi = bi[:n]
	var re, im float32
	for k := 0; k < n; k++ {
		re += ar[k]*br[k] + ai[k]*bi[k]
		im += ar[k]*bi[k] - ai[k]*br[k]
	}
	return float64(re)*float64(re) + float64(im)*float64(im)
}

// EnergySoA32 returns <a, a> for a complex vector given as separate re/im
// float32 slices. The sum is accumulated in float64 (this runs at ingest,
// once per snapshot, where accuracy is worth more than lane count).
func EnergySoA32(ar, ai []float32) float64 {
	n := len(ar)
	if len(ai) != n {
		panic("sigproc: EnergySoA32 length mismatch")
	}
	ai = ai[:n]
	var e float64
	for k := 0; k < n; k++ {
		re, im := float64(ar[k]), float64(ai[k])
		e += re*re + im*im
	}
	return e
}

// NormalizeSoA32 scales (ar, ai) in place to unit energy and returns the
// original Euclidean norm; a zero vector is left unchanged and 0 returned.
// The norm is computed in float64 and the scale applied as one float32
// multiply per component — the float32-plane analogue of NormalizeSoA.
func NormalizeSoA32(ar, ai []float32) float64 {
	n := len(ar)
	if len(ai) != n {
		panic("sigproc: NormalizeSoA32 length mismatch")
	}
	ai = ai[:n]
	norm := math.Sqrt(EnergySoA32(ar, ai))
	if norm == 0 {
		return 0
	}
	inv := float32(1 / norm)
	for k := 0; k < n; k++ {
		ar[k] *= inv
		ai[k] *= inv
	}
	return norm
}
