package sigproc

import (
	"math"
	"math/rand"
	"testing"
)

// splitSoA converts an AoS complex vector to SoA planes.
func splitSoA(a []complex128) (re, im []float64) {
	re = make([]float64, len(a))
	im = make([]float64, len(a))
	for k, c := range a {
		re[k] = real(c)
		im[k] = imag(c)
	}
	return re, im
}

// TestDotSqSoAMatchesInnerProductBitwise pins the default SoA kernel to
// the seed arithmetic: for every length (including the empty vector and
// all small tails) the SoA result must be bit-for-bit the squared
// magnitude InnerProduct yields.
func TestDotSqSoAMatchesInnerProductBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for n := 0; n <= 130; n++ {
		a, b := randVec(rng, n), randVec(rng, n)
		ar, ai := splitSoA(a)
		br, bi := splitSoA(b)
		ip := InnerProduct(a, b)
		re, im := real(ip), imag(ip)
		want := re*re + im*im
		got := DotSqSoA(ar, ai, br, bi)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("n=%d: DotSqSoA=%x InnerProduct|.|²=%x", n, got, want)
		}
	}
}

// TestDotSqSoA4Tolerance bounds the unrolled kernel's reassociation error:
// 1e-12 relative against the sequential kernel across lengths covering
// every remainder class, plus exactness on vectors where reassociation
// cannot round (powers of two).
func TestDotSqSoA4Tolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for n := 0; n <= 130; n++ {
		a, b := randVec(rng, n), randVec(rng, n)
		ar, ai := splitSoA(a)
		br, bi := splitSoA(b)
		want := DotSqSoA(ar, ai, br, bi)
		got := DotSqSoA4(ar, ai, br, bi)
		tol := 1e-12 * math.Max(math.Abs(want), 1)
		if math.Abs(got-want) > tol {
			t.Fatalf("n=%d: unrolled %v vs sequential %v (diff %g > %g)",
				n, got, want, got-want, tol)
		}
	}
	// Exactness sanity: all-ones inputs sum without rounding.
	for _, n := range []int{1, 3, 4, 7, 8, 64, 114} {
		ones := make([]float64, n)
		zero := make([]float64, n)
		for k := range ones {
			ones[k] = 1
		}
		want := float64(n) * float64(n)
		if got := DotSqSoA4(ones, zero, ones, zero); got != want {
			t.Fatalf("n=%d: DotSqSoA4 on ones = %v, want %v", n, got, want)
		}
	}
}

// TestDotSqSoA4Deterministic verifies the unrolled reduction order is
// fixed: repeated calls on the same input return identical bits.
func TestDotSqSoA4Deterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a, b := randVec(rng, 113), randVec(rng, 113)
	ar, ai := splitSoA(a)
	br, bi := splitSoA(b)
	first := DotSqSoA4(ar, ai, br, bi)
	for r := 0; r < 10; r++ {
		if got := DotSqSoA4(ar, ai, br, bi); math.Float64bits(got) != math.Float64bits(first) {
			t.Fatalf("run %d: %x != %x", r, got, first)
		}
	}
}

// TestNormalizeSoAMatchesNormalizeBitwise pins the SoA normalization to
// the seed's complex-scalar multiply, including the returned norm and the
// zero-vector no-op.
func TestNormalizeSoAMatchesNormalizeBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for n := 0; n <= 40; n++ {
		a := randVec(rng, n)
		ar, ai := splitSoA(a)
		wantNorm := Normalize(a)
		gotNorm := NormalizeSoA(ar, ai)
		if math.Float64bits(wantNorm) != math.Float64bits(gotNorm) {
			t.Fatalf("n=%d: norm %x != %x", n, gotNorm, wantNorm)
		}
		for k := range a {
			if math.Float64bits(real(a[k])) != math.Float64bits(ar[k]) ||
				math.Float64bits(imag(a[k])) != math.Float64bits(ai[k]) {
				t.Fatalf("n=%d k=%d: normalized (%x,%x) != (%x,%x)",
					n, k, ar[k], ai[k], real(a[k]), imag(a[k]))
			}
		}
	}
	zr, zi := make([]float64, 5), make([]float64, 5)
	if NormalizeSoA(zr, zi) != 0 {
		t.Fatal("zero vector must return norm 0")
	}
	if got := EnergySoA(zr, zi); got != 0 {
		t.Fatalf("zero vector energy %v", got)
	}
}

// TestEnergySoAMatchesEnergyBitwise pins EnergySoA to Energy.
func TestEnergySoAMatchesEnergyBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for n := 0; n <= 40; n++ {
		a := randVec(rng, n)
		ar, ai := splitSoA(a)
		if w, g := Energy(a), EnergySoA(ar, ai); math.Float64bits(w) != math.Float64bits(g) {
			t.Fatalf("n=%d: %x != %x", n, g, w)
		}
	}
}

// TestSoAKernelsPanicOnMismatch checks the shape contract.
func TestSoAKernelsPanicOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("DotSqSoA must panic on length mismatch")
		}
	}()
	DotSqSoA(make([]float64, 3), make([]float64, 3), make([]float64, 3), make([]float64, 2))
}
