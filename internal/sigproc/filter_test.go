package sigproc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMovingAverageBasic(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	got := MovingAverage(x, 1)
	want := []float64{1.5, 2, 3, 4, 4.5}
	for i := range want {
		if !almostF(got[i], want[i], 1e-12) {
			t.Errorf("MA[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMovingAverageZeroWindowIsCopy(t *testing.T) {
	x := []float64{3, 1, 4}
	got := MovingAverage(x, 0)
	for i := range x {
		if got[i] != x[i] {
			t.Fatal("half=0 must copy")
		}
	}
	got[0] = 99
	if x[0] == 99 {
		t.Error("output aliases input")
	}
}

func TestMovingAveragePreservesConstant(t *testing.T) {
	f := func(c float64, halfRaw uint8) bool {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return true
		}
		c = math.Mod(c, 1e6) // keep prefix sums finite
		half := int(halfRaw % 10)
		x := make([]float64, 25)
		for i := range x {
			x[i] = c
		}
		out := MovingAverage(x, half)
		for _, v := range out {
			if math.Abs(v-c) > 1e-9*(1+math.Abs(c)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMedianFilterRemovesImpulse(t *testing.T) {
	x := []float64{1, 1, 1, 100, 1, 1, 1}
	got := MedianFilter(x, 1)
	for i, v := range got {
		if v != 1 {
			t.Errorf("median[%d] = %v, want 1", i, v)
		}
	}
}

func TestMedianFilterEvenWindowEdges(t *testing.T) {
	x := []float64{2, 4, 6, 8}
	got := MedianFilter(x, 1)
	// Edge windows have 2 elements -> mean of the two order stats.
	if !almostF(got[0], 3, 1e-12) || !almostF(got[3], 7, 1e-12) {
		t.Errorf("edges = %v", got)
	}
}

func TestBoxFilterColumnsMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	T, L, half := 23, 7, 3
	src := make([][]float64, T)
	for i := range src {
		src[i] = make([]float64, L)
		for j := range src[i] {
			src[i][j] = rng.NormFloat64()
		}
	}
	dst := make([][]float64, T)
	for i := range dst {
		dst[i] = make([]float64, L)
	}
	BoxFilterColumns(dst, src, half)
	for i := 0; i < T; i++ {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half
		if hi >= T {
			hi = T - 1
		}
		for j := 0; j < L; j++ {
			var s float64
			for k := lo; k <= hi; k++ {
				s += src[k][j]
			}
			want := s / float64(hi-lo+1)
			if !almostF(dst[i][j], want, 1e-9) {
				t.Fatalf("dst[%d][%d] = %v, want %v", i, j, dst[i][j], want)
			}
		}
	}
}

func TestBoxFilterColumnsZeroHalf(t *testing.T) {
	src := [][]float64{{1, 2}, {3, 4}}
	dst := [][]float64{make([]float64, 2), make([]float64, 2)}
	BoxFilterColumns(dst, src, 0)
	if dst[1][1] != 4 {
		t.Error("half=0 must copy")
	}
	BoxFilterColumns(nil, nil, 3) // must not panic on empty input
}

func TestExponentialSmooth(t *testing.T) {
	x := []float64{1, 0, 0, 0}
	got := ExponentialSmooth(x, 0.5)
	want := []float64{1, 0.5, 0.25, 0.125}
	for i := range want {
		if !almostF(got[i], want[i], 1e-12) {
			t.Errorf("[%d] = %v", i, got[i])
		}
	}
	if len(ExponentialSmooth(nil, 0.5)) != 0 {
		t.Error("nil input must give empty output")
	}
	// alpha=1 is identity.
	id := ExponentialSmooth([]float64{2, 7, -1}, 1)
	if id[1] != 7 || id[2] != -1 {
		t.Error("alpha=1 must be identity")
	}
}
