package sigproc

import "math"

// Structure-of-arrays (SoA) complex kernels. The TRRS hot path stores
// normalized CSI as separate re/im float64 planes (one contiguous slab per
// antenna×tx, slot t at [t*tones, (t+1)*tones)) instead of []complex128
// rows, so the lag sweep of a base-matrix row walks memory sequentially.
// These kernels are the SoA counterparts of InnerProduct/Energy/Normalize.
//
// DotSqSoA keeps InnerProduct's exact per-element summation order, so the
// default TRRS path is bit-for-bit identical to the seed arithmetic (Go
// never reassociates floating-point expressions). The explicit reslices
// after the length checks let the compiler prove every index in bounds —
// CI spot-checks the package with -gcflags=-d=checkbce.

// DotSqSoA returns |<a, b>|² for complex vectors given as separate
// real/imag slices: the squared magnitude of sum_k conj(a[k])*b[k].
// All four slices must have equal length; mismatch panics (hot-path
// callers guarantee shape). The accumulation order matches
// InnerProduct(a, b) element for element.
func DotSqSoA(ar, ai, br, bi []float64) float64 {
	n := len(ar)
	if len(ai) != n || len(br) != n || len(bi) != n {
		panic("sigproc: DotSqSoA length mismatch")
	}
	if n == 0 {
		return 0
	}
	ai = ai[:n]
	br = br[:n]
	bi = bi[:n]
	var re, im float64
	for k := 0; k < n; k++ {
		re += ar[k]*br[k] + ai[k]*bi[k]
		im += ar[k]*bi[k] - ai[k]*br[k]
	}
	return re*re + im*im
}

// DotSqSoA4 is the 4-accumulator unrolled variant of DotSqSoA. Splitting
// the dependency chain over four partial sums lets the FPU pipeline
// overlap independent adds; the price is a fixed but different reduction
// order, so results agree with DotSqSoA only to rounding (callers select
// it explicitly via trrs.Kernel; the equivalence suite bounds the
// difference at 1e-12 relative). The partial sums are reduced pairwise —
// (s0+s1) + (s2+s3) — and the scalar tail is folded into s0 last, so the
// result is deterministic for a given length.
func DotSqSoA4(ar, ai, br, bi []float64) float64 {
	n := len(ar)
	if len(ai) != n || len(br) != n || len(bi) != n {
		panic("sigproc: DotSqSoA4 length mismatch")
	}
	if n == 0 {
		return 0
	}
	ai = ai[:n]
	br = br[:n]
	bi = bi[:n]
	var re0, re1, re2, re3 float64
	var im0, im1, im2, im3 float64
	k := 0
	for ; k+4 <= n; k += 4 {
		re0 += ar[k]*br[k] + ai[k]*bi[k]
		im0 += ar[k]*bi[k] - ai[k]*br[k]
		re1 += ar[k+1]*br[k+1] + ai[k+1]*bi[k+1]
		im1 += ar[k+1]*bi[k+1] - ai[k+1]*br[k+1]
		re2 += ar[k+2]*br[k+2] + ai[k+2]*bi[k+2]
		im2 += ar[k+2]*bi[k+2] - ai[k+2]*br[k+2]
		re3 += ar[k+3]*br[k+3] + ai[k+3]*bi[k+3]
		im3 += ar[k+3]*bi[k+3] - ai[k+3]*br[k+3]
	}
	for ; k < n; k++ {
		re0 += ar[k]*br[k] + ai[k]*bi[k]
		im0 += ar[k]*bi[k] - ai[k]*br[k]
	}
	re := (re0 + re1) + (re2 + re3)
	im := (im0 + im1) + (im2 + im3)
	return re*re + im*im
}

// EnergySoA returns <a, a> for a complex vector given as separate re/im
// slices, in Energy's element order (re²+im² per element, summed in
// index order). The slices must have equal length.
func EnergySoA(ar, ai []float64) float64 {
	n := len(ar)
	if len(ai) != n {
		panic("sigproc: EnergySoA length mismatch")
	}
	ai = ai[:n]
	var e float64
	for k := 0; k < n; k++ {
		e += ar[k]*ar[k] + ai[k]*ai[k]
	}
	return e
}

// NormalizeSoA scales (ar, ai) in place to unit energy and returns the
// original Euclidean norm; a zero vector is left unchanged and 0 returned.
// Scaling re and im by the scalar 1/n is bit-identical to Normalize's
// multiplication by complex(1/n, 0): for finite inputs the complex product
// degenerates to the same two scalar multiplies (the ±0 imaginary terms it
// adds cannot change a finite product's bits).
func NormalizeSoA(ar, ai []float64) float64 {
	n := len(ar)
	if len(ai) != n {
		panic("sigproc: NormalizeSoA length mismatch")
	}
	ai = ai[:n]
	norm := math.Sqrt(EnergySoA(ar, ai))
	if norm == 0 {
		return 0
	}
	inv := 1 / norm
	for k := 0; k < n; k++ {
		ar[k] *= inv
		ai[k] *= inv
	}
	return norm
}
