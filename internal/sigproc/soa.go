package sigproc

import "math"

// Structure-of-arrays (SoA) complex kernels. The TRRS hot path stores
// normalized CSI as separate re/im float64 planes (one contiguous slab per
// antenna×tx, slot t at [t*tones, (t+1)*tones)) instead of []complex128
// rows, so the lag sweep of a base-matrix row walks memory sequentially.
// These kernels are the SoA counterparts of InnerProduct/Energy/Normalize.
//
// DotSqSoA keeps InnerProduct's exact per-element summation order, so the
// default TRRS path is bit-for-bit identical to the seed arithmetic (Go
// never reassociates floating-point expressions). The explicit reslices
// after the length checks let the compiler prove every index in bounds —
// CI spot-checks the package with -gcflags=-d=checkbce.

// DotSqSoA returns |<a, b>|² for complex vectors given as separate
// real/imag slices: the squared magnitude of sum_k conj(a[k])*b[k].
// All four slices must have equal length; mismatch panics (hot-path
// callers guarantee shape). The accumulation order matches
// InnerProduct(a, b) element for element.
func DotSqSoA(ar, ai, br, bi []float64) float64 {
	n := len(ar)
	if len(ai) != n || len(br) != n || len(bi) != n {
		panic("sigproc: DotSqSoA length mismatch")
	}
	if n == 0 {
		return 0
	}
	ai = ai[:n]
	br = br[:n]
	bi = bi[:n]
	var re, im float64
	for k := 0; k < n; k++ {
		re += ar[k]*br[k] + ai[k]*bi[k]
		im += ar[k]*bi[k] - ai[k]*br[k]
	}
	return re*re + im*im
}

// DotSqSoA4 is the 4-accumulator unrolled variant of DotSqSoA. Splitting
// the dependency chain over four partial sums lets the FPU pipeline
// overlap independent adds; the price is a fixed but different reduction
// order, so results agree with DotSqSoA only to rounding (callers select
// it explicitly via trrs.Kernel; the equivalence suite bounds the
// difference at 1e-12 relative). The partial sums are reduced pairwise —
// (s0+s1) + (s2+s3) — and the scalar tail is folded into s0 last, so the
// result is deterministic for a given length.
func DotSqSoA4(ar, ai, br, bi []float64) float64 {
	n := len(ar)
	if len(ai) != n || len(br) != n || len(bi) != n {
		panic("sigproc: DotSqSoA4 length mismatch")
	}
	if n == 0 {
		return 0
	}
	ai = ai[:n]
	br = br[:n]
	bi = bi[:n]
	var re0, re1, re2, re3 float64
	var im0, im1, im2, im3 float64
	k := 0
	for ; k+4 <= n; k += 4 {
		re0 += ar[k]*br[k] + ai[k]*bi[k]
		im0 += ar[k]*bi[k] - ai[k]*br[k]
		re1 += ar[k+1]*br[k+1] + ai[k+1]*bi[k+1]
		im1 += ar[k+1]*bi[k+1] - ai[k+1]*br[k+1]
		re2 += ar[k+2]*br[k+2] + ai[k+2]*bi[k+2]
		im2 += ar[k+2]*bi[k+2] - ai[k+2]*br[k+2]
		re3 += ar[k+3]*br[k+3] + ai[k+3]*bi[k+3]
		im3 += ar[k+3]*bi[k+3] - ai[k+3]*br[k+3]
	}
	for ; k < n; k++ {
		re0 += ar[k]*br[k] + ai[k]*bi[k]
		im0 += ar[k]*bi[k] - ai[k]*br[k]
	}
	re := (re0 + re1) + (re2 + re3)
	im := (im0 + im1) + (im2 + im3)
	return re*re + im*im
}

// DotSqSoA8 is the 8-accumulator unrolled variant of DotSqSoA, the widest
// accumulation shape a 256-bit FMA unit could consume directly (the
// trrs.KernelUnrolled8 selector). The partial sums are reduced pairwise in
// two rounds — ((s0+s1)+(s2+s3)) + ((s4+s5)+(s6+s7)) — with the scalar
// tail folded into s0 last, so the result is deterministic for a given
// length and agrees with DotSqSoA to rounding (the equivalence suite
// bounds it at 1e-12 relative). Note the measured caveat: on scalar FP
// ports the 16 live accumulators spill, so this kernel is *slower* than
// the sequential one on current hardware (see BENCH_trrs.json); it exists
// as the vector-shaped reference the assembly sweep kernels are derived
// from and is gated opt-in.
func DotSqSoA8(ar, ai, br, bi []float64) float64 {
	n := len(ar)
	if len(ai) != n || len(br) != n || len(bi) != n {
		panic("sigproc: DotSqSoA8 length mismatch")
	}
	if n == 0 {
		return 0
	}
	ai = ai[:n]
	br = br[:n]
	bi = bi[:n]
	var re0, re1, re2, re3, re4, re5, re6, re7 float64
	var im0, im1, im2, im3, im4, im5, im6, im7 float64
	k := 0
	for ; k+8 <= n; k += 8 {
		re0 += ar[k]*br[k] + ai[k]*bi[k]
		im0 += ar[k]*bi[k] - ai[k]*br[k]
		re1 += ar[k+1]*br[k+1] + ai[k+1]*bi[k+1]
		im1 += ar[k+1]*bi[k+1] - ai[k+1]*br[k+1]
		re2 += ar[k+2]*br[k+2] + ai[k+2]*bi[k+2]
		im2 += ar[k+2]*bi[k+2] - ai[k+2]*br[k+2]
		re3 += ar[k+3]*br[k+3] + ai[k+3]*bi[k+3]
		im3 += ar[k+3]*bi[k+3] - ai[k+3]*br[k+3]
		re4 += ar[k+4]*br[k+4] + ai[k+4]*bi[k+4]
		im4 += ar[k+4]*bi[k+4] - ai[k+4]*br[k+4]
		re5 += ar[k+5]*br[k+5] + ai[k+5]*bi[k+5]
		im5 += ar[k+5]*bi[k+5] - ai[k+5]*br[k+5]
		re6 += ar[k+6]*br[k+6] + ai[k+6]*bi[k+6]
		im6 += ar[k+6]*bi[k+6] - ai[k+6]*br[k+6]
		re7 += ar[k+7]*br[k+7] + ai[k+7]*bi[k+7]
		im7 += ar[k+7]*bi[k+7] - ai[k+7]*br[k+7]
	}
	for ; k < n; k++ {
		re0 += ar[k]*br[k] + ai[k]*bi[k]
		im0 += ar[k]*bi[k] - ai[k]*br[k]
	}
	re := ((re0 + re1) + (re2 + re3)) + ((re4 + re5) + (re6 + re7))
	im := ((im0 + im1) + (im2 + im3)) + ((im4 + im5) + (im6 + im7))
	return re*re + im*im
}

// EnergySoA returns <a, a> for a complex vector given as separate re/im
// slices, in Energy's element order (re²+im² per element, summed in
// index order). The slices must have equal length.
func EnergySoA(ar, ai []float64) float64 {
	n := len(ar)
	if len(ai) != n {
		panic("sigproc: EnergySoA length mismatch")
	}
	ai = ai[:n]
	var e float64
	for k := 0; k < n; k++ {
		e += ar[k]*ar[k] + ai[k]*ai[k]
	}
	return e
}

// NormalizeSoA scales (ar, ai) in place to unit energy and returns the
// original Euclidean norm; a zero vector is left unchanged and 0 returned.
// Scaling re and im by the scalar 1/n is bit-identical to Normalize's
// multiplication by complex(1/n, 0): for finite inputs the complex product
// degenerates to the same two scalar multiplies (the ±0 imaginary terms it
// adds cannot change a finite product's bits).
func NormalizeSoA(ar, ai []float64) float64 {
	n := len(ar)
	if len(ai) != n {
		panic("sigproc: NormalizeSoA length mismatch")
	}
	ai = ai[:n]
	norm := math.Sqrt(EnergySoA(ar, ai))
	if norm == 0 {
		return 0
	}
	inv := 1 / norm
	for k := 0; k < n; k++ {
		ar[k] *= inv
		ai[k] *= inv
	}
	return norm
}
