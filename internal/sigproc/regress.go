package sigproc

// LinearFit returns the least-squares line y = intercept + slope*x fitted to
// the points (x[i], y[i]). With fewer than two points it returns (y0, 0).
func LinearFit(x, y []float64) (intercept, slope float64) {
	n := len(x)
	if n != len(y) {
		panic("sigproc: LinearFit length mismatch")
	}
	if n == 0 {
		return 0, 0
	}
	if n == 1 {
		return y[0], 0
	}
	var sx, sy, sxx, sxy float64
	for i := 0; i < n; i++ {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	fn := float64(n)
	den := fn*sxx - sx*sx
	if den == 0 {
		return sy / fn, 0
	}
	slope = (fn*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / fn
	return intercept, slope
}

// LinearFitIndexed fits y = intercept + slope*i over i = 0..len(y)-1.
func LinearFitIndexed(y []float64) (intercept, slope float64) {
	n := len(y)
	if n == 0 {
		return 0, 0
	}
	if n == 1 {
		return y[0], 0
	}
	// Closed form with x = 0..n-1: sx = n(n-1)/2, sxx = (n-1)n(2n-1)/6.
	fn := float64(n)
	sx := fn * (fn - 1) / 2
	sxx := (fn - 1) * fn * (2*fn - 1) / 6
	var sy, sxy float64
	for i, v := range y {
		sy += v
		sxy += float64(i) * v
	}
	den := fn*sxx - sx*sx
	slope = (fn*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / fn
	return intercept, slope
}

// DetrendPhase removes the best-fit linear phase ramp (intercept + slope*k)
// from the complex vector a in place and returns the removed intercept and
// slope. This is the CSI phase sanitization of Kotaru et al. (SpotFi) that
// the paper adopts for calibrating SFO/STO-induced linear offsets: the
// unwrapped per-subcarrier phase is detrended so only the multipath
// structure remains.
func DetrendPhase(a []complex128) (intercept, slope float64) {
	if len(a) == 0 {
		return 0, 0
	}
	ph := Unwrap(Phases(a))
	intercept, slope = LinearFitIndexed(ph)
	ApplyPhaseRamp(a, -intercept, -slope)
	return intercept, slope
}
