package sigproc

import "sort"

// MovingAverage returns the centered moving average of x with the given
// window half-width. Element i averages x[max(0,i-half) .. min(n-1,i+half)],
// shrinking the window at the edges. half <= 0 returns a copy.
func MovingAverage(x []float64, half int) []float64 {
	n := len(x)
	out := make([]float64, n)
	if half <= 0 {
		copy(out, x)
		return out
	}
	// Prefix sums for O(n).
	prefix := make([]float64, n+1)
	for i, v := range x {
		prefix[i+1] = prefix[i] + v
	}
	for i := 0; i < n; i++ {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half
		if hi >= n {
			hi = n - 1
		}
		out[i] = (prefix[hi+1] - prefix[lo]) / float64(hi-lo+1)
	}
	return out
}

// MedianFilter returns the centered running median of x with the given
// window half-width, shrinking the window at the edges. Robust to the
// impulsive outliers that packet loss produces in lag sequences.
func MedianFilter(x []float64, half int) []float64 {
	n := len(x)
	out := make([]float64, n)
	if half <= 0 {
		copy(out, x)
		return out
	}
	buf := make([]float64, 0, 2*half+1)
	for i := 0; i < n; i++ {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half
		if hi >= n {
			hi = n - 1
		}
		buf = buf[:0]
		buf = append(buf, x[lo:hi+1]...)
		sort.Float64s(buf)
		m := len(buf)
		if m%2 == 1 {
			out[i] = buf[m/2]
		} else {
			out[i] = 0.5 * (buf[m/2-1] + buf[m/2])
		}
	}
	return out
}

// BoxFilterColumns smooths a T x L matrix along the first (time) axis with a
// centered window of half-width half, writing the result into dst (same
// shape). It is the moving-average factorization of the virtual-massive-
// antenna TRRS (Eq. 4): averaging base TRRS values over V consecutive
// samples equals a box filter with half = V/2.
//
// dst and src may not alias. Rows are []float64 of equal length L.
func BoxFilterColumns(dst, src [][]float64, half int) {
	t := len(src)
	if t == 0 {
		return
	}
	l := len(src[0])
	if half <= 0 {
		for i := range src {
			copy(dst[i], src[i])
		}
		return
	}
	// Running column sums.
	sums := make([]float64, l)
	count := 0
	// Initialize window [0, half].
	for i := 0; i <= half && i < t; i++ {
		for j := 0; j < l; j++ {
			sums[j] += src[i][j]
		}
		count++
	}
	for i := 0; i < t; i++ {
		inv := 1 / float64(count)
		for j := 0; j < l; j++ {
			dst[i][j] = sums[j] * inv
		}
		// Slide: add row i+half+1, remove row i-half.
		add := i + half + 1
		if add < t {
			row := src[add]
			for j := 0; j < l; j++ {
				sums[j] += row[j]
			}
			count++
		}
		rem := i - half
		if rem >= 0 {
			row := src[rem]
			for j := 0; j < l; j++ {
				sums[j] -= row[j]
			}
			count--
		}
	}
}

// ExponentialSmooth returns the exponentially smoothed series with
// coefficient alpha in (0, 1]: y[0]=x[0], y[i]=alpha*x[i]+(1-alpha)*y[i-1].
func ExponentialSmooth(x []float64, alpha float64) []float64 {
	out := make([]float64, len(x))
	if len(x) == 0 {
		return out
	}
	out[0] = x[0]
	for i := 1; i < len(x); i++ {
		out[i] = alpha*x[i] + (1-alpha)*out[i-1]
	}
	return out
}
