package sigproc

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of x, or 0 for an empty slice.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Variance returns the population variance of x, or 0 for len(x) < 2.
func Variance(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	m := Mean(x)
	var s float64
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return s / float64(len(x))
}

// Std returns the population standard deviation of x.
func Std(x []float64) float64 { return math.Sqrt(Variance(x)) }

// Median returns the median of x, or 0 for an empty slice.
func Median(x []float64) float64 { return Percentile(x, 50) }

// Percentile returns the p-th percentile (0..100) of x using linear
// interpolation between order statistics. x is not modified.
func Percentile(x []float64, p float64) float64 {
	n := len(x)
	if n == 0 {
		return 0
	}
	s := make([]float64, n)
	copy(s, x)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[n-1]
	}
	pos := p / 100 * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Max returns the maximum of x, or -Inf for an empty slice.
func Max(x []float64) float64 {
	best := math.Inf(-1)
	for _, v := range x {
		if v > best {
			best = v
		}
	}
	return best
}

// Min returns the minimum of x, or +Inf for an empty slice.
func Min(x []float64) float64 {
	best := math.Inf(1)
	for _, v := range x {
		if v < best {
			best = v
		}
	}
	return best
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	Value float64 // sample value
	P     float64 // cumulative probability in (0, 1]
}

// CDF returns the empirical CDF of x as sorted (value, probability) points.
func CDF(x []float64) []CDFPoint {
	n := len(x)
	if n == 0 {
		return nil
	}
	s := make([]float64, n)
	copy(s, x)
	sort.Float64s(s)
	out := make([]CDFPoint, n)
	for i, v := range s {
		out[i] = CDFPoint{Value: v, P: float64(i+1) / float64(n)}
	}
	return out
}

// CDFAt returns the empirical probability P(X <= v) for sample x.
func CDFAt(x []float64, v float64) float64 {
	if len(x) == 0 {
		return 0
	}
	count := 0
	for _, s := range x {
		if s <= v {
			count++
		}
	}
	return float64(count) / float64(len(x))
}

// Summary holds the descriptive statistics the experiment tables report.
type Summary struct {
	N         int
	Mean, Std float64
	Median    float64
	P90, P95  float64
	Min, Max  float64
}

// Summarize computes a Summary of x.
func Summarize(x []float64) Summary {
	if len(x) == 0 {
		return Summary{}
	}
	return Summary{
		N:      len(x),
		Mean:   Mean(x),
		Std:    Std(x),
		Median: Median(x),
		P90:    Percentile(x, 90),
		P95:    Percentile(x, 95),
		Min:    Min(x),
		Max:    Max(x),
	}
}
