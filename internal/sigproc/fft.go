package sigproc

import "math"

// FFT returns the discrete Fourier transform of x. The input length may be
// arbitrary: power-of-two lengths use an in-place iterative radix-2
// Cooley-Tukey transform; other lengths fall back to Bluestein's algorithm.
// The input slice is not modified.
func FFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	copy(out, x)
	if n <= 1 {
		return out
	}
	if n&(n-1) == 0 {
		fftRadix2(out, false)
		return out
	}
	return bluestein(out, false)
}

// IFFT returns the inverse DFT of x (normalized by 1/N).
func IFFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	copy(out, x)
	if n <= 1 {
		return out
	}
	if n&(n-1) == 0 {
		fftRadix2(out, true)
	} else {
		out = bluestein(out, true)
	}
	inv := complex(1/float64(n), 0)
	for i := range out {
		out[i] *= inv
	}
	return out
}

// fftRadix2 transforms x in place. len(x) must be a power of two.
func fftRadix2(x []complex128, inverse bool) {
	n := len(x)
	// Bit-reversal permutation.
	for i, j := 0, 0; i < n; i++ {
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
		mask := n >> 1
		for j&mask != 0 {
			j &^= mask
			mask >>= 1
		}
		j |= mask
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		ang := sign * 2 * math.Pi / float64(size)
		ws, wc := math.Sincos(ang)
		wstep := complex(wc, ws)
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wstep
			}
		}
	}
}

// bluestein computes a DFT of arbitrary length via the chirp-z transform.
func bluestein(x []complex128, inverse bool) []complex128 {
	n := len(x)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// Chirp: w[k] = exp(sign * i*pi*k^2/n). Use k^2 mod 2n to avoid
	// precision loss for large k.
	chirp := make([]complex128, n)
	for k := 0; k < n; k++ {
		kk := (int64(k) * int64(k)) % int64(2*n)
		s, c := math.Sincos(sign * math.Pi * float64(kk) / float64(n))
		chirp[k] = complex(c, s)
	}
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * chirp[k]
		bc := complex(real(chirp[k]), -imag(chirp[k]))
		b[k] = bc
		if k > 0 {
			b[m-k] = bc
		}
	}
	fftRadix2(a, false)
	fftRadix2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	fftRadix2(a, true)
	invM := complex(1/float64(m), 0)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		out[k] = a[k] * invM * chirp[k]
	}
	return out
}
