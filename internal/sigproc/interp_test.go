package sigproc

import (
	"math/cmplx"
	"testing"
)

func TestInterpolateMissingMidGap(t *testing.T) {
	frames := [][]complex128{
		{1 + 0i, 2 + 0i},
		nil,
		nil,
		{4 + 0i, 8 + 0i},
	}
	out := InterpolateMissing(frames)
	if out[1] == nil || out[2] == nil {
		t.Fatal("gaps not filled")
	}
	if cmplx.Abs(out[1][0]-2) > 1e-12 || cmplx.Abs(out[2][0]-3) > 1e-12 {
		t.Errorf("interp[1][0]=%v interp[2][0]=%v", out[1][0], out[2][0])
	}
	if cmplx.Abs(out[1][1]-4) > 1e-12 || cmplx.Abs(out[2][1]-6) > 1e-12 {
		t.Errorf("interp[1][1]=%v interp[2][1]=%v", out[1][1], out[2][1])
	}
}

func TestInterpolateMissingEdges(t *testing.T) {
	frames := [][]complex128{nil, {5 + 1i}, nil}
	out := InterpolateMissing(frames)
	if out[0] == nil || out[2] == nil {
		t.Fatal("edge gaps not filled")
	}
	if out[0][0] != 5+1i || out[2][0] != 5+1i {
		t.Error("edge fill should copy nearest valid frame")
	}
	// Edge fills must be copies, not aliases.
	out[0][0] = 0
	if frames[1][0] != 5+1i {
		t.Error("edge fill aliases source frame")
	}
}

func TestInterpolateMissingAllNilOrAllValid(t *testing.T) {
	allNil := [][]complex128{nil, nil}
	if out := InterpolateMissing(allNil); out[0] != nil || out[1] != nil {
		t.Error("all-nil input should be returned unchanged")
	}
	full := [][]complex128{{1}, {2}}
	out := InterpolateMissing(full)
	if out[0][0] != 1 || out[1][0] != 2 {
		t.Error("fully valid input should pass through")
	}
}

func TestResample(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4, 5, 6}
	got := Resample(x, 3)
	want := []float64{0, 3, 6}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("[%d] = %v", i, got[i])
		}
	}
	cp := Resample(x, 1)
	cp[0] = 99
	if x[0] == 99 {
		t.Error("factor=1 output aliases input")
	}
}

func TestLinearInterpAt(t *testing.T) {
	xs := []float64{0, 1, 3}
	ys := []float64{0, 10, 30}
	if got := LinearInterpAt(xs, ys, 2); !almostF(got, 20, 1e-12) {
		t.Errorf("mid = %v", got)
	}
	if LinearInterpAt(xs, ys, -5) != 0 || LinearInterpAt(xs, ys, 9) != 30 {
		t.Error("clamping failed")
	}
	if LinearInterpAt(nil, nil, 1) != 0 {
		t.Error("empty interp not 0")
	}
}
