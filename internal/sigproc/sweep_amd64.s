#include "textflag.h"

// AVX2+FMA lag-sweep kernels (see sweep.go for the contract). Layout per
// slot: four FMA accumulators — re = Σ ar·br, re' = Σ ai·bi, im = Σ ar·bi,
// im' = −Σ ai·br — combined and reduced pairwise after the tone loop, then
// |re|²+|im|² added into the float64 out slot. Tails shorter than a vector
// are loaded through VMASKMOV with a mask from the static tables below, so
// the kernels never read past tones elements.

// Masked-tail load tables: maskTab64 yields, at offset (4-r)*8, a 4-lane
// qword mask with the first r lanes set; maskTab32 likewise for 8 dword
// lanes at offset (8-r)*4.
GLOBL maskTab64<>(SB), RODATA, $64
DATA maskTab64<>+0(SB)/8, $0xFFFFFFFFFFFFFFFF
DATA maskTab64<>+8(SB)/8, $0xFFFFFFFFFFFFFFFF
DATA maskTab64<>+16(SB)/8, $0xFFFFFFFFFFFFFFFF
DATA maskTab64<>+24(SB)/8, $0xFFFFFFFFFFFFFFFF
DATA maskTab64<>+32(SB)/8, $0x0000000000000000
DATA maskTab64<>+40(SB)/8, $0x0000000000000000
DATA maskTab64<>+48(SB)/8, $0x0000000000000000
DATA maskTab64<>+56(SB)/8, $0x0000000000000000

GLOBL maskTab32<>(SB), RODATA, $64
DATA maskTab32<>+0(SB)/8, $0xFFFFFFFFFFFFFFFF
DATA maskTab32<>+8(SB)/8, $0xFFFFFFFFFFFFFFFF
DATA maskTab32<>+16(SB)/8, $0xFFFFFFFFFFFFFFFF
DATA maskTab32<>+24(SB)/8, $0xFFFFFFFFFFFFFFFF
DATA maskTab32<>+32(SB)/8, $0x0000000000000000
DATA maskTab32<>+40(SB)/8, $0x0000000000000000
DATA maskTab32<>+48(SB)/8, $0x0000000000000000
DATA maskTab32<>+56(SB)/8, $0x0000000000000000

// func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func dotSqSweepAVX2(out, ar, ai, br, bi *float64, tones, count, stride int)
// out[k] += |<a, b_k>|² for k in [0, count); b_k starts at (br, bi) plus
// k*stride elements (stride may be negative).
TEXT ·dotSqSweepAVX2(SB), NOSPLIT, $0-64
	MOVQ out+0(FP), DI
	MOVQ ar+8(FP), SI
	MOVQ ai+16(FP), BX
	MOVQ br+24(FP), R8
	MOVQ bi+32(FP), R9
	MOVQ tones+40(FP), R11
	MOVQ count+48(FP), R12
	MOVQ stride+56(FP), R13
	SHLQ $3, R13             // element stride -> byte stride
	TESTQ R12, R12
	JE   sweepDone

	// Tail mask for r = tones & 3 (loaded even when r == 0; unused then).
	MOVQ R11, CX
	ANDQ $3, CX
	MOVQ $4, DX
	SUBQ CX, DX
	LEAQ maskTab64<>(SB), R10
	VMOVUPD (R10)(DX*8), Y8
	MOVQ R11, DX
	ANDQ $-4, DX             // tones rounded down to whole vectors

sweepSlot:
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7
	XORQ AX, AX
	CMPQ AX, DX
	JGE  sweepTail

sweepLoop4:
	VMOVUPD (SI)(AX*8), Y0
	VMOVUPD (BX)(AX*8), Y1
	VMOVUPD (R8)(AX*8), Y2
	VMOVUPD (R9)(AX*8), Y3
	VFMADD231PD Y2, Y0, Y4   // re  += ar*br
	VFMADD231PD Y3, Y1, Y5   // re' += ai*bi
	VFMADD231PD Y3, Y0, Y6   // im  += ar*bi
	VFNMADD231PD Y2, Y1, Y7  // im' -= ai*br
	ADDQ $4, AX
	CMPQ AX, DX
	JLT  sweepLoop4

sweepTail:
	TESTQ CX, CX
	JE   sweepReduce
	VMASKMOVPD (SI)(AX*8), Y8, Y0
	VMASKMOVPD (BX)(AX*8), Y8, Y1
	VMASKMOVPD (R8)(AX*8), Y8, Y2
	VMASKMOVPD (R9)(AX*8), Y8, Y3
	VFMADD231PD Y2, Y0, Y4
	VFMADD231PD Y3, Y1, Y5
	VFMADD231PD Y3, Y0, Y6
	VFNMADD231PD Y2, Y1, Y7

sweepReduce:
	VADDPD Y5, Y4, Y4
	VADDPD Y7, Y6, Y6
	VEXTRACTF128 $1, Y4, X1
	VADDPD X1, X4, X4
	VHADDPD X4, X4, X4       // re scalar
	VEXTRACTF128 $1, Y6, X2
	VADDPD X2, X6, X6
	VHADDPD X6, X6, X6       // im scalar
	VMULSD X4, X4, X4
	VFMADD231SD X6, X6, X4   // re² + im²
	VADDSD (DI), X4, X4
	MOVSD X4, (DI)
	ADDQ $8, DI
	ADDQ R13, R8
	ADDQ R13, R9
	DECQ R12
	JNE  sweepSlot

sweepDone:
	VZEROUPPER
	RET

// func dotSqSweep32AVX2(out *float64, ar, ai, br, bi *float32, tones, count, stride int)
TEXT ·dotSqSweep32AVX2(SB), NOSPLIT, $0-64
	MOVQ out+0(FP), DI
	MOVQ ar+8(FP), SI
	MOVQ ai+16(FP), BX
	MOVQ br+24(FP), R8
	MOVQ bi+32(FP), R9
	MOVQ tones+40(FP), R11
	MOVQ count+48(FP), R12
	MOVQ stride+56(FP), R13
	SHLQ $2, R13
	TESTQ R12, R12
	JE   sweep32Done

	MOVQ R11, CX
	ANDQ $7, CX
	MOVQ $8, DX
	SUBQ CX, DX
	LEAQ maskTab32<>(SB), R10
	VMOVUPS (R10)(DX*4), Y8
	MOVQ R11, DX
	ANDQ $-8, DX

sweep32Slot:
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7
	XORQ AX, AX
	CMPQ AX, DX
	JGE  sweep32Tail

sweep32Loop8:
	VMOVUPS (SI)(AX*4), Y0
	VMOVUPS (BX)(AX*4), Y1
	VMOVUPS (R8)(AX*4), Y2
	VMOVUPS (R9)(AX*4), Y3
	VFMADD231PS Y2, Y0, Y4
	VFMADD231PS Y3, Y1, Y5
	VFMADD231PS Y3, Y0, Y6
	VFNMADD231PS Y2, Y1, Y7
	ADDQ $8, AX
	CMPQ AX, DX
	JLT  sweep32Loop8

sweep32Tail:
	TESTQ CX, CX
	JE   sweep32Reduce
	VMASKMOVPS (SI)(AX*4), Y8, Y0
	VMASKMOVPS (BX)(AX*4), Y8, Y1
	VMASKMOVPS (R8)(AX*4), Y8, Y2
	VMASKMOVPS (R9)(AX*4), Y8, Y3
	VFMADD231PS Y2, Y0, Y4
	VFMADD231PS Y3, Y1, Y5
	VFMADD231PS Y3, Y0, Y6
	VFNMADD231PS Y2, Y1, Y7

sweep32Reduce:
	VADDPS Y5, Y4, Y4
	VADDPS Y7, Y6, Y6
	VEXTRACTF128 $1, Y4, X1
	VADDPS X1, X4, X4
	VHADDPS X4, X4, X4
	VHADDPS X4, X4, X4
	VEXTRACTF128 $1, Y6, X2
	VADDPS X2, X6, X6
	VHADDPS X6, X6, X6
	VHADDPS X6, X6, X6
	VCVTSS2SD X4, X4, X4     // promote before |·|², matching DotSqSoA32
	VCVTSS2SD X6, X6, X6
	VMULSD X4, X4, X4
	VFMADD231SD X6, X6, X4
	VADDSD (DI), X4, X4
	MOVSD X4, (DI)
	ADDQ $8, DI
	ADDQ R13, R8
	ADDQ R13, R9
	DECQ R12
	JNE  sweep32Slot

sweep32Done:
	VZEROUPPER
	RET
