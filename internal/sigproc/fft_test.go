package sigproc

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// dftNaive is the O(n^2) reference DFT.
func dftNaive(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(k) * float64(j) / float64(n)
			sn, cs := math.Sincos(ang)
			s += x[j] * complex(cs, sn)
		}
		out[k] = s
	}
	return out
}

func maxErr(a, b []complex128) float64 {
	var m float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 4, 8, 16, 64, 3, 5, 7, 12, 30, 114} {
		x := randVec(rng, n)
		got := FFT(x)
		want := dftNaive(x)
		if e := maxErr(got, want); e > 1e-7 {
			t.Errorf("n=%d: max error %v", n, e)
		}
	}
}

func TestIFFTInvertsFFT(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{1, 2, 8, 32, 114, 57, 13} {
		x := randVec(rng, n)
		back := IFFT(FFT(x))
		if e := maxErr(back, x); e > 1e-8 {
			t.Errorf("n=%d: round-trip error %v", n, e)
		}
	}
}

func TestFFTDoesNotMutateInput(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := randVec(rng, 16)
	orig := make([]complex128, 16)
	copy(orig, x)
	FFT(x)
	if maxErr(x, orig) != 0 {
		t.Error("FFT mutated its input")
	}
	IFFT(x)
	if maxErr(x, orig) != 0 {
		t.Error("IFFT mutated its input")
	}
}

func TestFFTParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, n := range []int{8, 30, 114} {
		x := randVec(rng, n)
		X := FFT(x)
		if !almostF(Energy(X), float64(n)*Energy(x), 1e-6*float64(n)) {
			t.Errorf("n=%d: Parseval violated: %v vs %v", n, Energy(X), float64(n)*Energy(x))
		}
	}
}

func TestFFTImpulse(t *testing.T) {
	// DFT of a unit impulse is all ones.
	x := make([]complex128, 8)
	x[0] = 1
	X := FFT(x)
	for k, v := range X {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Errorf("X[%d] = %v, want 1", k, v)
		}
	}
}

func TestFFTLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randVec(rng, 30)
	b := randVec(rng, 30)
	sum := make([]complex128, 30)
	for i := range sum {
		sum[i] = 2*a[i] + 3i*b[i]
	}
	A, B, S := FFT(a), FFT(b), FFT(sum)
	for i := range S {
		want := 2*A[i] + 3i*B[i]
		if cmplx.Abs(S[i]-want) > 1e-7 {
			t.Fatalf("linearity violated at %d", i)
		}
	}
}
