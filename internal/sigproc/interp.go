package sigproc

// InterpolateMissing fills nil entries of a sequence of complex vectors by
// linear interpolation between the nearest non-nil neighbors. Leading and
// trailing gaps are filled by copying the nearest valid vector. This is the
// packet-loss repair described in §5 of the paper: a lost broadcast packet
// leaves a null CSI slot that is reconstructed before TRRS computation.
//
// All non-nil vectors must share one length; the filled vectors are newly
// allocated. If every entry is nil the input is returned unchanged.
func InterpolateMissing(frames [][]complex128) [][]complex128 {
	n := len(frames)
	// Collect indices of valid frames.
	valid := make([]int, 0, n)
	for i, f := range frames {
		if f != nil {
			valid = append(valid, i)
		}
	}
	if len(valid) == 0 || len(valid) == n {
		return frames
	}
	out := make([][]complex128, n)
	copy(out, frames)
	first, last := valid[0], valid[len(valid)-1]
	for i := 0; i < first; i++ {
		out[i] = cloneC(frames[first])
	}
	for i := last + 1; i < n; i++ {
		out[i] = cloneC(frames[last])
	}
	for vi := 0; vi+1 < len(valid); vi++ {
		lo, hi := valid[vi], valid[vi+1]
		if hi == lo+1 {
			continue
		}
		a, b := frames[lo], frames[hi]
		span := float64(hi - lo)
		for i := lo + 1; i < hi; i++ {
			t := complex(float64(i-lo)/span, 0)
			v := make([]complex128, len(a))
			for k := range a {
				v[k] = a[k] + (b[k]-a[k])*t
			}
			out[i] = v
		}
	}
	return out
}

func cloneC(a []complex128) []complex128 {
	out := make([]complex128, len(a))
	copy(out, a)
	return out
}

// Resample returns x decimated by an integer factor (keeping every factor-th
// sample starting at index 0). factor <= 1 returns a copy. It models
// downsampling the CSI stream for the sampling-rate study (Fig. 16).
func Resample(x []float64, factor int) []float64 {
	if factor <= 1 {
		out := make([]float64, len(x))
		copy(out, x)
		return out
	}
	out := make([]float64, 0, (len(x)+factor-1)/factor)
	for i := 0; i < len(x); i += factor {
		out = append(out, x[i])
	}
	return out
}

// LinearInterpAt evaluates the piecewise-linear function through points
// (xs[i], ys[i]) at x, clamping outside the domain. xs must be ascending.
func LinearInterpAt(xs, ys []float64, x float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	if n != len(ys) {
		panic("sigproc: LinearInterpAt length mismatch")
	}
	if x <= xs[0] {
		return ys[0]
	}
	if x >= xs[n-1] {
		return ys[n-1]
	}
	// Binary search for the bracketing interval.
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if xs[mid] <= x {
			lo = mid
		} else {
			hi = mid
		}
	}
	span := xs[hi] - xs[lo]
	if span == 0 {
		return ys[lo]
	}
	t := (x - xs[lo]) / span
	return ys[lo]*(1-t) + ys[hi]*t
}
