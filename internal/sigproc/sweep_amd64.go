package sigproc

// Runtime CPU feature detection for the AVX2+FMA sweep kernels. The
// repository is dependency-free, so the CPUID/XGETBV probes are the two
// tiny assembly stubs in sweep_amd64.s rather than x/sys/cpu.

// cpuid executes CPUID with the given leaf/subleaf.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (requires OSXSAVE).
func xgetbv() (eax, edx uint32)

// vecSupported is fixed at startup: AVX2 and FMA present, and the OS has
// enabled XMM+YMM state saving (XCR0 bits 1 and 2), so the 256-bit
// register file is actually usable.
var vecSupported = detectVec()

func detectVec() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c, _ := cpuid(1, 0)
	const (
		fma     = 1 << 12
		osxsave = 1 << 27
		avx     = 1 << 28
	)
	if c&fma == 0 || c&osxsave == 0 || c&avx == 0 {
		return false
	}
	if lo, _ := xgetbv(); lo&6 != 6 {
		return false
	}
	_, b, _, _ := cpuid(7, 0)
	const avx2 = 1 << 5
	return b&avx2 != 0
}

// The assembly entry points. The Go wrappers in sweep.go have already
// bounds-checked the full strided range, so the kernels receive raw base
// pointers; noescape keeps the hot path allocation-free.

//go:noescape
func dotSqSweepAVX2(out, ar, ai, br, bi *float64, tones, count, stride int)

//go:noescape
func dotSqSweep32AVX2(out *float64, ar, ai, br, bi *float32, tones, count, stride int)

func dotSqSweep(out, ar, ai, br, bi []float64, off, stride, tones int) {
	if !vecSupported {
		dotSqSweepGeneric(out, ar, ai, br, bi, off, stride, tones)
		return
	}
	dotSqSweepAVX2(&out[0], &ar[0], &ai[0], &br[off], &bi[off], tones, len(out), stride)
}

func dotSqSweep32(out []float64, ar, ai, br, bi []float32, off, stride, tones int) {
	if !vecSupported {
		dotSqSweep32Generic(out, ar, ai, br, bi, off, stride, tones)
		return
	}
	dotSqSweep32AVX2(&out[0], &ar[0], &ai[0], &br[off], &bi[off], tones, len(out), stride)
}
