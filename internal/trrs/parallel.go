package trrs

import (
	"sync"
	"sync/atomic"
)

// PairSpec names one antenna pair for bulk matrix computation.
type PairSpec struct {
	I, J int
}

// shard is one unit of worker-pool work: a block of consecutive rows of
// one pair's base matrix.
type shard struct {
	pair   int // index into the pairs/out slices
	t0, t1 int // row range [t0, t1)
}

// BaseMatrices computes the base TRRS matrices of several antenna pairs in
// one worker pool, sharded by pair × time block. Each matrix entry is an
// independent pure function of the normalized snapshots and every shard
// writes a disjoint row range of a preallocated buffer, so the output is
// deterministic and bit-for-bit identical to BaseMatrixSerial regardless
// of worker count or scheduling. With one worker (Parallelism = 1, or a
// single-CPU GOMAXPROCS) it degenerates to the serial loop.
func (e *Engine) BaseMatrices(pairs []PairSpec, w int) []*Matrix {
	out := make([]*Matrix, len(pairs))
	if len(pairs) == 0 {
		return out
	}
	e.rowsFilled.Add(uint64(len(pairs) * e.slots))
	workers := e.workers()
	if workers == 1 || e.slots == 0 {
		e.poolGauge.Set(1)
		for k, p := range pairs {
			out[k] = e.BaseMatrixSerial(p.I, p.J, w)
		}
		return out
	}

	width := 2*w + 1
	for k, p := range pairs {
		m := &Matrix{I: p.I, J: p.J, W: w, Rate: e.rate}
		m.Vals = make([][]float64, e.slots)
		flat := make([]float64, e.slots*width)
		for t := 0; t < e.slots; t++ {
			m.Vals[t] = flat[t*width : (t+1)*width]
		}
		out[k] = m
	}

	// Block size balances scheduling overhead against load balance: small
	// enough that every worker gets several blocks, never below 16 rows.
	block := e.slots / (workers * 4)
	if block < 16 {
		block = 16
	}
	var shards []shard
	for k := range pairs {
		for t0 := 0; t0 < e.slots; t0 += block {
			t1 := t0 + block
			if t1 > e.slots {
				t1 = e.slots
			}
			shards = append(shards, shard{pair: k, t0: t0, t1: t1})
		}
	}
	if workers > len(shards) {
		workers = len(shards)
	}
	e.poolGauge.Set(float64(workers))

	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for g := 0; g < workers; g++ {
		go func() {
			defer wg.Done()
			for {
				n := int(next.Add(1)) - 1
				if n >= len(shards) {
					return
				}
				sh := shards[n]
				p, m := pairs[sh.pair], out[sh.pair]
				for t := sh.t0; t < sh.t1; t++ {
					e.fillRow(m.Vals[t], p.I, p.J, w, t)
				}
			}
		}()
	}
	wg.Wait()
	return out
}

// fillRowsSharded recomputes an explicit set of rows of one pair's matrix
// using the engine's worker pool (the incremental engine's refresh path).
// rows holds local row indices into m.Vals; every listed row must already
// be allocated at width 2W+1.
func (e *Engine) fillRowsSharded(m *Matrix, rows []int) {
	e.rowsFilled.Add(uint64(len(rows)))
	workers := e.workers()
	if workers > len(rows) {
		workers = len(rows)
	}
	if workers <= 1 {
		for _, t := range rows {
			e.fillRow(m.Vals[t], m.I, m.J, m.W, t)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for g := 0; g < workers; g++ {
		go func() {
			defer wg.Done()
			for {
				n := int(next.Add(1)) - 1
				if n >= len(rows) {
					return
				}
				t := rows[n]
				e.fillRow(m.Vals[t], m.I, m.J, m.W, t)
			}
		}()
	}
	wg.Wait()
}
