package trrs

import (
	"sync"
	"sync/atomic"

	"rim/internal/obs/trace"
)

// PairSpec names one antenna pair for bulk matrix computation.
type PairSpec struct {
	I, J int
}

// shard is one unit of worker-pool work: a block of consecutive rows of
// one pair's base matrix.
type shard struct {
	pair   int // index into the compute/out slices
	t0, t1 int // row range [t0, t1)
}

// batchPlan is the cross-pair batched schedule of a multi-pair build: the
// shards are ordered time-block-major (all pairs of block [t0, t1), then
// all pairs of the next block) instead of pair-major. Rows t ∈ [t0, t1)
// of every pair sweep the same slot range [t0−W, t1) of the CSI planes,
// and distinct pairs share antenna planes, so one pass over each time
// block feeds every pair sharing it: the block's plane data is read from
// memory once and reused from cache across pairs, rather than streamed
// from memory once per pair. The schedule is a pure reordering of
// independent row fills, so the output is bit-for-bit unchanged.
type batchPlan struct {
	block  int
	shards []shard
}

// planBatches builds the block-major schedule for the given computed-pair
// indices. The block size balances scheduling overhead against load
// balance and cache footprint: every worker gets several blocks, never
// below 16 rows.
func (e *Engine) planBatches(compute []int, workers int) batchPlan {
	block := e.slots / (workers * 4)
	if block < 16 {
		block = 16
	}
	plan := batchPlan{block: block}
	for t0 := 0; t0 < e.slots; t0 += block {
		t1 := t0 + block
		if t1 > e.slots {
			t1 = e.slots
		}
		for _, k := range compute {
			plan.shards = append(plan.shards, shard{pair: k, t0: t0, t1: t1})
		}
	}
	return plan
}

// Hermitian symmetry of the TRRS (Eq. 2/3): κ̄(Hᵢ(t), Hⱼ(t′)) =
// κ̄(Hⱼ(t′), Hᵢ(t)), because swapping the arguments conjugates the inner
// product and |·|² discards the sign of the imaginary part. In base-matrix
// coordinates that is the reflection
//
//	base_{j,i}[t][l] = base_{i,j}[t−l][−l]
//
// and it holds bit-for-bit, not just mathematically: the swapped kernel
// accumulates the same real products in the same order (a·b = b·a exactly)
// and an imaginary part of exactly opposite sign (IEEE-754 subtraction
// satisfies −(x−y) = (y−x) bitwise), whose square is identical. So
// BaseMatrices computes one matrix per unordered pair and derives the
// reversed twin by reflection, and computes self-pairs (i, i) over the
// non-negative lag half-band only — with results identical to computing
// every entry from scratch (pinned by the symmetry property suite).

// pairPlan is the symmetry-deduplication plan for one requested pair:
// exactly one of compute / aliasOf / reflectOf applies.
type pairPlan struct {
	aliasOf   int // index of an identical earlier pair (-1 = none)
	reflectOf int // index of the reversed earlier pair (-1 = none)
}

// planPairs assigns each requested pair to compute, alias or reflect.
func planPairs(pairs []PairSpec) (plans []pairPlan, compute []int) {
	plans = make([]pairPlan, len(pairs))
	first := make(map[PairSpec]int, len(pairs))
	for k, p := range pairs {
		plans[k] = pairPlan{aliasOf: -1, reflectOf: -1}
		if m, ok := first[p]; ok {
			plans[k].aliasOf = m
			continue
		}
		if m, ok := first[PairSpec{I: p.J, J: p.I}]; ok {
			plans[k].reflectOf = m
			continue
		}
		first[p] = k
		compute = append(compute, k)
	}
	return plans, compute
}

// reflectInto derives columns [cFrom, cTo) of dst from src by the κ̄
// reflection base_dst[t][l] = base_src[t−l][−l] (column 2w−c holds lag −l).
// Rows whose source slot t−l falls outside the series get the same zero
// fillRow would have written. Self-pair half-band completion passes
// dst == src with cTo = w: the sweep then only reads columns > w, which
// phase 1 computed, and only writes columns < w.
func reflectInto(dst, src [][]float64, w, cFrom, cTo int) {
	slots := len(dst)
	for t := 0; t < slots; t++ {
		row := dst[t]
		for c := cFrom; c < cTo; c++ {
			srcT := t - (c - w) // t − l
			if srcT >= 0 && srcT < slots {
				row[c] = src[srcT][2*w-c]
			} else {
				row[c] = 0
			}
		}
	}
}

// newFlatMatrix allocates a slots×(2w+1) matrix with flat backing.
func (e *Engine) newFlatMatrix(i, j, w int) *Matrix {
	m := &Matrix{I: i, J: j, W: w, Rate: e.rate}
	m.Vals = make([][]float64, e.slots)
	width := 2*w + 1
	flat := make([]float64, e.slots*width)
	for t := 0; t < e.slots; t++ {
		m.Vals[t] = flat[t*width : (t+1)*width]
	}
	return m
}

// BaseMatrices computes the base TRRS matrices of several antenna pairs in
// one worker pool, sharded by pair × time block. Symmetry deduplication
// runs first: of a reversed pair {(i,j), (j,i)} only the first is computed
// and the twin is derived by the κ̄ reflection above; exact duplicates
// share one matrix; a self-pair (i,i) computes only its non-negative lags
// and reflects the rest. Each computed entry is an independent pure
// function of the normalized snapshots and every shard writes a disjoint
// row range of a preallocated buffer, so the output is deterministic and
// bit-for-bit identical to BaseMatrixSerial regardless of worker count,
// scheduling, or which of the symmetry paths produced it. With one worker
// (Parallelism = 1, or a single-CPU GOMAXPROCS) the fill degenerates to
// the serial loop.
func (e *Engine) BaseMatrices(pairs []PairSpec, w int) []*Matrix {
	out := make([]*Matrix, len(pairs))
	if len(pairs) == 0 {
		return out
	}
	plans, compute := planPairs(pairs)
	for _, k := range compute {
		out[k] = e.newFlatMatrix(pairs[k].I, pairs[k].J, w)
	}
	e.rowsFilled.Add(uint64(len(compute) * e.slots))
	if e.trc != nil {
		// Bulk multi-pair build: Frame = -1, A = rows computed from
		// scratch, B = pairs requested (aliases/reflections included).
		e.trc.Emit(trace.KindTRRSFill, e.hop, -1, int64(len(compute)*e.slots), int64(len(pairs)))
	}

	// Phase 1: fill the computed matrices (self-pairs: half band only),
	// cross-pair batched: the batchPlan orders the work time-block-major so
	// each block of the CSI planes is read once and reused across every
	// pair sharing it (see batchPlan).
	fill := func(k, t int) {
		p, m := pairs[k], out[k]
		if p.I == p.J {
			e.fillRowFrom(m.Vals[t], p.I, p.J, w, t, w)
		} else {
			e.fillRow(m.Vals[t], p.I, p.J, w, t)
		}
	}
	workers := e.workers()
	if workers == 1 || e.slots == 0 {
		e.poolGauge.Set(1)
		plan := e.planBatches(compute, 1)
		for _, sh := range plan.shards {
			for t := sh.t0; t < sh.t1; t++ {
				fill(sh.pair, t)
			}
		}
	} else {
		plan := e.planBatches(compute, workers)
		if workers > len(plan.shards) {
			workers = len(plan.shards)
		}
		e.poolGauge.Set(float64(workers))

		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for g := 0; g < workers; g++ {
			go func() {
				defer wg.Done()
				for {
					n := int(next.Add(1)) - 1
					if n >= len(plan.shards) {
						return
					}
					sh := plan.shards[n]
					for t := sh.t0; t < sh.t1; t++ {
						fill(sh.pair, t)
					}
				}
			}()
		}
		wg.Wait()
	}

	// Phase 2 (after the barrier — reflections read computed rows at other
	// time indices): complete self-pair negative lags, derive reversed
	// twins, alias exact duplicates.
	for _, k := range compute {
		if pairs[k].I == pairs[k].J {
			reflectInto(out[k].Vals, out[k].Vals, w, 0, w)
		}
	}
	for k := range pairs {
		switch {
		case plans[k].aliasOf >= 0:
			out[k] = out[plans[k].aliasOf]
		case plans[k].reflectOf >= 0:
			src := out[plans[k].reflectOf]
			m := e.newFlatMatrix(pairs[k].I, pairs[k].J, w)
			reflectInto(m.Vals, src.Vals, w, 0, 2*w+1)
			out[k] = m
		}
	}
	return out
}

// fillRowsSharded recomputes an explicit set of rows of one pair's matrix
// using the engine's worker pool (the incremental engine's refresh path).
// rows holds local row indices into m.Vals; every listed row must already
// be allocated at width 2W+1.
func (e *Engine) fillRowsSharded(m *Matrix, rows []int) {
	e.rowsFilled.Add(uint64(len(rows)))
	if e.trc != nil {
		e.trc.Emit(trace.KindTRRSFill, e.hop, trace.PairCode(m.I, m.J), int64(len(rows)), 0)
	}
	workers := e.workers()
	if workers > len(rows) {
		workers = len(rows)
	}
	if workers <= 1 {
		for _, t := range rows {
			e.fillRow(m.Vals[t], m.I, m.J, m.W, t)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for g := 0; g < workers; g++ {
		go func() {
			defer wg.Done()
			for {
				n := int(next.Add(1)) - 1
				if n >= len(rows) {
					return
				}
				t := rows[n]
				e.fillRow(m.Vals[t], m.I, m.J, m.W, t)
			}
		}()
	}
	wg.Wait()
}

// batchItem is one row fill of a multi-pair batched refresh.
type batchItem struct {
	m *Matrix
	t int
}

// fillRowsBatch recomputes an explicit set of (matrix, row) items using
// the engine's worker pool — the cross-pair batched counterpart of
// fillRowsSharded, used by Incremental.ExtendMatrices. The caller orders
// the items row-major across pairs so consecutive items sweep the same
// slot range of the CSI planes; with one worker that order is executed
// exactly, with more it is the pool's pickup order. Emits one bulk
// trace.KindTRRSFill event (Frame −1) like a multi-pair build.
func (e *Engine) fillRowsBatch(items []batchItem, pairsTouched int) {
	e.rowsFilled.Add(uint64(len(items)))
	if e.trc != nil {
		e.trc.Emit(trace.KindTRRSFill, e.hop, -1, int64(len(items)), int64(pairsTouched))
	}
	workers := e.workers()
	if workers > len(items) {
		workers = len(items)
	}
	if workers <= 1 {
		for _, it := range items {
			e.fillRow(it.m.Vals[it.t], it.m.I, it.m.J, it.m.W, it.t)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for g := 0; g < workers; g++ {
		go func() {
			defer wg.Done()
			for {
				n := int(next.Add(1)) - 1
				if n >= len(items) {
					return
				}
				it := items[n]
				e.fillRow(it.m.Vals[it.t], it.m.I, it.m.J, it.m.W, it.t)
			}
		}()
	}
	wg.Wait()
}
