package trrs

import (
	"math"
	"math/rand"
	"testing"
)

// FuzzBatchPlan fuzzes the cross-pair batched build: an arbitrary pair
// set (duplicates, reversals and self-pairs included) over an arbitrary
// window/lag geometry must produce exactly the rows the per-pair serial
// build produces — bit for bit, since the batch schedule is a pure
// reordering of independent row fills. The raw fuzz bytes drive the
// geometry and the pair list; the CSI itself is seeded random data.
func FuzzBatchPlan(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(40), uint8(5), uint8(4), []byte{0x01, 0x12, 0x21})
	f.Add(int64(2), uint8(2), uint8(7), uint8(9), uint8(1), []byte{0x00, 0x10, 0x01})
	f.Add(int64(3), uint8(4), uint8(70), uint8(3), uint8(2), []byte{0x23, 0x32, 0x23, 0x11})
	f.Fuzz(func(t *testing.T, seed int64, antsB, slotsB, wB, parB uint8, pairBytes []byte) {
		ants := 1 + int(antsB%4)     // 1..4 antennas
		slots := 1 + int(slotsB%80)  // 1..80 slots (covers w > slots clipping)
		w := int(wB % 12)            // 0..11 lag window
		par := int(parB % 5)         // 0..4 workers
		if len(pairBytes) == 0 || len(pairBytes) > 12 {
			t.Skip()
		}
		pairs := make([]PairSpec, 0, len(pairBytes))
		for _, b := range pairBytes {
			pairs = append(pairs, PairSpec{I: int(b>>4) % ants, J: int(b&0xF) % ants})
		}
		rng := rand.New(rand.NewSource(seed))
		s := randomSeries(rng, ants, 1, 9, slots)
		e := NewEngine(s)
		e.SetParallelism(par)
		got := e.BaseMatrices(pairs, w)
		for k, p := range pairs {
			want := e.BaseMatrixSerial(p.I, p.J, w)
			if len(got[k].Vals) != len(want.Vals) {
				t.Fatalf("pair %d (%d,%d): %d slots, want %d", k, p.I, p.J, len(got[k].Vals), len(want.Vals))
			}
			for ti := range want.Vals {
				for c := range want.Vals[ti] {
					wv, gv := want.Vals[ti][c], got[k].Vals[ti][c]
					if math.Float64bits(wv) != math.Float64bits(gv) {
						t.Fatalf("pair %d (%d,%d) [%d][%d]: batched %x, want serial %x",
							k, p.I, p.J, ti, c, math.Float64bits(gv), math.Float64bits(wv))
					}
				}
			}
		}
	})
}
