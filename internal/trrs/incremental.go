package trrs

import (
	"fmt"

	"rim/internal/obs"
	"rim/internal/sigproc"
)

// Incremental is the streaming counterpart of Engine: a ring buffer of
// unit-normalized CSI snapshots over a sliding window, plus per-pair base
// matrices that are extended in place as slots arrive instead of being
// recomputed from scratch every analysis hop.
//
// The window is a contiguous absolute slot range [start, end): Append
// grows the tail by one slot, DropFront advances the head. ExtendMatrix
// returns a pair's base matrix over the current window, recomputing only
// the rows whose value can have changed since the last call:
//
//   - the new rows themselves, plus the trailing W rows, whose forward
//     references (t − l with l < 0) now land on freshly appended slots
//     that were out of range — and therefore zero — before;
//   - after a DropFront, the leading W rows, whose backward references
//     now fall off the head of the window.
//
// All other rows are carried over untouched, so a steady-state hop of h
// slots costs O((2W+h)·(2W+1)) TRRS values per pair instead of the full
// window's O(T·(2W+1)). Because every row is produced by the same
// fillRow arithmetic the batch engine uses, the result is bit-for-bit
// identical to Engine.BaseMatrixSerial over a series holding exactly the
// window's snapshots.
//
// Carried-over rows alias the previous generation's storage; a dropped
// generation is garbage-collected once the sliding window has fully
// turned over. Incremental is not goroutine-safe; callers serialize
// access (core.Streamer holds it under its own lock).
type Incremental struct {
	rate   float64
	numTx  int
	numAnt int
	w      int
	par    int
	// norm[ant][tx] is the window of unit-norm snapshots; DropFront
	// reslices, so the backing arrays stay bounded by append's growth
	// policy (~2× the window).
	norm       [][][][]complex128
	start, end int
	mats       map[PairSpec]*incMat

	// Observability handles (nil = unobserved): per-ExtendMatrix rows
	// carried over untouched vs invalidated-and-recomputed, plus the
	// engine-level handles propagated into every EngineView.
	rowsReused, rowsStale *obs.Counter
	rowsFilled            *obs.Counter
	poolGauge             *obs.Gauge
}

// incMat is one maintained pair matrix plus the absolute window
// [start, end) its rows were computed for.
type incMat struct {
	m          *Matrix
	start, end int
}

// NewIncremental builds an empty incremental engine for CSI with the given
// shape. w is the one-sided lag window of the maintained matrices, in
// slots; it must match the W the analysis will ask for.
func NewIncremental(rate float64, numAnts, numTx, w int) (*Incremental, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("trrs: incremental rate must be positive, got %v", rate)
	}
	if numAnts <= 0 || numTx <= 0 {
		return nil, fmt.Errorf("trrs: incremental shape (%d antennas, %d tx) must be positive", numAnts, numTx)
	}
	if w < 0 {
		return nil, fmt.Errorf("trrs: incremental lag window W=%d must be non-negative", w)
	}
	inc := &Incremental{
		rate:   rate,
		numAnt: numAnts,
		numTx:  numTx,
		w:      w,
		norm:   make([][][][]complex128, numAnts),
		mats:   map[PairSpec]*incMat{},
	}
	for a := range inc.norm {
		inc.norm[a] = make([][][]complex128, numTx)
	}
	return inc, nil
}

// SetParallelism sets the worker count used when refreshing matrices
// (same semantics as Engine.SetParallelism).
func (inc *Incremental) SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	inc.par = n
}

// SetObs points the incremental engine's utilization counters at a
// registry: rows reused vs invalidated per ExtendMatrix
// (rim_trrs_rows_reused_total / rim_trrs_rows_stale_total) plus the
// engine-level fill/pool handles inherited by every EngineView. A nil
// registry detaches them.
func (inc *Incremental) SetObs(reg *obs.Registry) {
	if reg == nil {
		inc.rowsReused, inc.rowsStale, inc.rowsFilled, inc.poolGauge = nil, nil, nil, nil
		return
	}
	inc.rowsReused = reg.Counter("rim_trrs_rows_reused_total",
		"base-matrix rows carried over untouched by the incremental engine")
	inc.rowsStale = reg.Counter("rim_trrs_rows_stale_total",
		"base-matrix rows invalidated (head drop / tail extension) and recomputed")
	inc.rowsFilled = reg.Counter("rim_trrs_rows_filled_total",
		"TRRS base-matrix rows computed from scratch")
	inc.poolGauge = reg.Gauge("rim_trrs_pool_workers",
		"worker count of the most recent TRRS pool build")
}

// NumSlots returns the current window length.
func (inc *Incremental) NumSlots() int { return inc.end - inc.start }

// W returns the one-sided lag window of the maintained matrices.
func (inc *Incremental) W() int { return inc.w }

// Rate returns the sample rate in Hz.
func (inc *Incremental) Rate() float64 { return inc.rate }

// Append ingests one snapshot (shape [ant][tx][tone]); the rows are copied
// and normalized exactly as Engine's constructor does, so later matrix
// queries match a batch engine built over the same window.
func (inc *Incremental) Append(snapshot [][][]complex128) error {
	if len(snapshot) != inc.numAnt {
		return fmt.Errorf("trrs: incremental snapshot has %d antennas, want %d", len(snapshot), inc.numAnt)
	}
	for a := range snapshot {
		if len(snapshot[a]) != inc.numTx {
			return fmt.Errorf("trrs: incremental snapshot antenna %d has %d tx, want %d",
				a, len(snapshot[a]), inc.numTx)
		}
	}
	for a := range snapshot {
		for tx := 0; tx < inc.numTx; tx++ {
			v := make([]complex128, len(snapshot[a][tx]))
			copy(v, snapshot[a][tx])
			sigproc.Normalize(v)
			inc.norm[a][tx] = append(inc.norm[a][tx], v)
		}
	}
	inc.end++
	return nil
}

// DropFront advances the window head by n slots (ring-buffer trim). The
// leading W rows of every maintained matrix become stale and are refreshed
// on the next ExtendMatrix call.
func (inc *Incremental) DropFront(n int) {
	if n <= 0 {
		return
	}
	if n > inc.NumSlots() {
		n = inc.NumSlots()
	}
	for a := range inc.norm {
		for tx := range inc.norm[a] {
			inc.norm[a][tx] = inc.norm[a][tx][n:]
		}
	}
	inc.start += n
}

// EngineView returns a batch Engine aliasing the window's normalized
// snapshots, restricted to the given antennas (nil means all, in order).
// The view shares storage with the incremental engine and is invalidated
// by the next Append/DropFront; it exists so window-scoped consumers
// (movement detection, self-TRRS) run on the incrementally maintained
// normalization instead of renormalizing the window every hop.
func (inc *Incremental) EngineView(ants []int) (*Engine, error) {
	if ants == nil {
		ants = make([]int, inc.numAnt)
		for a := range ants {
			ants[a] = a
		}
	}
	e := &Engine{
		rate:       inc.rate,
		numAnts:    len(ants),
		numTx:      inc.numTx,
		slots:      inc.NumSlots(),
		norm:       make([][][][]complex128, len(ants)),
		par:        inc.par,
		rowsFilled: inc.rowsFilled,
		poolGauge:  inc.poolGauge,
	}
	for k, a := range ants {
		if a < 0 || a >= inc.numAnt {
			return nil, fmt.Errorf("trrs: EngineView antenna %d out of range [0,%d)", a, inc.numAnt)
		}
		e.norm[k] = inc.norm[a]
	}
	return e, nil
}

// ExtendMatrix returns the base TRRS matrix of antenna pair (i, j) over
// the current window, extending the maintained matrix with only the rows
// invalidated since the last call (see the type comment for the scheme).
// Antenna indices are absolute. Rows of the returned matrix are immutable;
// callers must not modify them.
func (inc *Incremental) ExtendMatrix(i, j int) (*Matrix, error) {
	if i < 0 || i >= inc.numAnt || j < 0 || j >= inc.numAnt {
		return nil, fmt.Errorf("trrs: ExtendMatrix pair (%d,%d) out of range [0,%d)", i, j, inc.numAnt)
	}
	e, err := inc.EngineView(nil)
	if err != nil {
		return nil, err
	}
	key := PairSpec{I: i, J: j}
	im, ok := inc.mats[key]
	if !ok {
		m := e.BaseMatrices([]PairSpec{key}, inc.w)[0]
		inc.mats[key] = &incMat{m: m, start: inc.start, end: inc.end}
		return m, nil
	}
	if im.start == inc.start && im.end == inc.end {
		return im.m, nil
	}

	tSlots := inc.NumSlots()
	width := 2*inc.w + 1
	vals := make([][]float64, tSlots)
	var stale []int
	for t := 0; t < tSlots; t++ {
		r := inc.start + t // absolute slot of this row
		valid := r < im.end
		// A head advance zeroes backward references of the leading W rows.
		if valid && inc.start > im.start && r < inc.start+inc.w {
			valid = false
		}
		// A tail extension unzeroes forward references of rows within W of
		// the old end.
		if valid && inc.end > im.end && r >= im.end-inc.w {
			valid = false
		}
		if valid {
			vals[t] = im.m.Vals[r-im.start]
		} else {
			vals[t] = make([]float64, width)
			stale = append(stale, t)
		}
	}
	m := &Matrix{I: i, J: j, W: inc.w, Rate: inc.rate, Vals: vals}
	inc.rowsReused.Add(uint64(tSlots - len(stale)))
	inc.rowsStale.Add(uint64(len(stale)))
	e.fillRowsSharded(m, stale)
	im.m, im.start, im.end = m, inc.start, inc.end
	return m, nil
}
