package trrs

import (
	"fmt"

	"rim/internal/obs"
	"rim/internal/obs/trace"
	"rim/internal/sigproc"
)

// Incremental is the streaming counterpart of Engine: a ring of
// unit-normalized CSI snapshots over a sliding window, plus per-pair base
// matrices that are extended in place as slots arrive instead of being
// recomputed from scratch every analysis hop.
//
// The window is a contiguous absolute slot range [start, end): Append
// grows the tail by one slot, DropFront advances the head. ExtendMatrix
// returns a pair's base matrix over the current window, recomputing only
// the rows whose value can have changed since the last call:
//
//   - the new rows themselves, plus the trailing W rows, whose forward
//     references (t − l with l < 0) now land on freshly appended slots
//     that were out of range — and therefore zero — before;
//   - after a DropFront, the leading W rows, whose backward references
//     now fall off the head of the window.
//
// All other rows are carried over untouched, so a steady-state hop of h
// slots costs O((2W+h)·(2W+1)) TRRS values per pair instead of the full
// window's O(T·(2W+1)). Because every row is produced by the same
// fillRow arithmetic the batch engine uses, the result is bit-for-bit
// identical to Engine.BaseMatrixSerial over a series holding exactly the
// window's snapshots.
//
// Storage is structure-of-arrays and steady-state allocation-free: the
// normalized snapshots live in per-(antenna, tx) re/im planes whose live
// region is slots [head, head+n); Append normalizes into the tail in
// place and, when the tail reaches capacity, compacts the live region to
// the front instead of growing. Each maintained pair matrix ping-pongs
// between two preallocated backings: a refresh copies carried rows from
// the previous generation's buffer and recomputes the stale ones, so once
// the window geometry stabilizes no hop allocates (measured at 0 allocs/op
// by the bench guard with Parallelism 1; the worker pool's goroutine
// fan-out allocates by nature).
//
// Consequently a matrix returned by ExtendMatrix stays valid only until
// the pair's next refresh-producing call (the generation after next
// overwrites its storage); callers must not modify or retain rows across
// hops. Incremental is not goroutine-safe; callers serialize access
// (core.Streamer holds it under its own lock).
type Incremental struct {
	rate   float64
	numTx  int
	numAnt int
	w      int
	par    int
	kernel Kernel
	// tones is the uniform per-snapshot vector length, learned from the
	// first Append (-1 before).
	tones int
	// prec selects the ring-plane precision; in float32 mode the
	// rePlane32/imPlane32 planes hold the window and the float64 planes
	// stay nil (conversion happens once, in Append).
	prec Precision
	// rePlane[ant][tx] / imPlane[ant][tx] are the SoA ring planes; the
	// live window occupies [head·tones, (head+n)·tones) where
	// n = end − start. len(plane) is always (head+n)·tones.
	rePlane, imPlane     [][][]float64
	rePlane32, imPlane32 [][][]float32
	head                 int
	start, end           int
	mats                 map[PairSpec]*incMat

	// view is the cached full-array engine ExtendMatrix refreshes in
	// place every call (EngineView allocates fresh ones for external
	// callers); viewAnts is its identity antenna list. staleScratch is
	// the reused stale-row index buffer.
	view         *Engine
	viewAnts     []int
	staleScratch []int

	// ExtendMatrices scratch, reused across hops so the batched refresh
	// stays allocation-free in steady state: the returned matrices, the
	// pair-major stale work list with per-pair segment offsets, and the
	// row-major interleaved fill order.
	batchOut   []*Matrix
	batchWork  []batchItem
	batchSeg   []int
	batchOrder []batchItem

	// Observability handles (nil = unobserved): per-ExtendMatrix rows
	// carried over untouched vs invalidated-and-recomputed, plus the
	// engine-level handles propagated into every EngineView.
	rowsReused, rowsStale *obs.Counter
	rowsFilled            *obs.Counter
	poolGauge             *obs.Gauge
	// trc/hop feed per-ExtendMatrix reuse/stale decisions into the causal
	// trace (propagated into every EngineView); nil = no tracing.
	trc *trace.Recorder
	hop int64
}

// incMat is one maintained pair matrix plus the absolute window
// [start, end) its rows were computed for. Generations ping-pong between
// the two flat backings so a refresh never allocates once both are sized:
// generation g builds in flats[g&1]/rows[g&1] while copying carried rows
// out of the other buffer, and hdr[g&1] is the reused Matrix header.
type incMat struct {
	m          *Matrix
	start, end int
	flats      [2][]float64
	rows       [2][][]float64
	hdr        [2]Matrix
	cur        int
}

// NewIncremental builds an empty incremental engine for CSI with the given
// shape. w is the one-sided lag window of the maintained matrices, in
// slots; it must match the W the analysis will ask for.
func NewIncremental(rate float64, numAnts, numTx, w int) (*Incremental, error) {
	return NewIncrementalPrecision(rate, numAnts, numTx, w, PrecisionFloat64)
}

// NewIncrementalPrecision is NewIncremental with an explicit ring-plane
// precision. PrecisionFloat32 converts snapshots to float32 once in
// Append and runs every row fill through the float32 sweep kernels; see
// Precision for the error budget.
func NewIncrementalPrecision(rate float64, numAnts, numTx, w int, prec Precision) (*Incremental, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("trrs: incremental rate must be positive, got %v", rate)
	}
	if numAnts <= 0 || numTx <= 0 {
		return nil, fmt.Errorf("trrs: incremental shape (%d antennas, %d tx) must be positive", numAnts, numTx)
	}
	if w < 0 {
		return nil, fmt.Errorf("trrs: incremental lag window W=%d must be non-negative", w)
	}
	inc := &Incremental{
		rate:   rate,
		numAnt: numAnts,
		numTx:  numTx,
		w:      w,
		prec:   prec,
		tones:  -1,
		mats:   map[PairSpec]*incMat{},
	}
	if prec == PrecisionFloat32 {
		inc.rePlane32 = make([][][]float32, numAnts)
		inc.imPlane32 = make([][][]float32, numAnts)
		for a := 0; a < numAnts; a++ {
			inc.rePlane32[a] = make([][]float32, numTx)
			inc.imPlane32[a] = make([][]float32, numTx)
		}
		return inc, nil
	}
	inc.rePlane = make([][][]float64, numAnts)
	inc.imPlane = make([][][]float64, numAnts)
	for a := 0; a < numAnts; a++ {
		inc.rePlane[a] = make([][]float64, numTx)
		inc.imPlane[a] = make([][]float64, numTx)
	}
	return inc, nil
}

// Precision returns the ring-plane precision.
func (inc *Incremental) Precision() Precision { return inc.prec }

// SetParallelism sets the worker count used when refreshing matrices
// (same semantics as Engine.SetParallelism).
func (inc *Incremental) SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	inc.par = n
}

// SetKernel selects the inner-product kernel used by matrix refreshes and
// every EngineView (same semantics as Engine.SetKernel).
func (inc *Incremental) SetKernel(k Kernel) { inc.kernel = k }

// Kernel returns the selected inner-product kernel.
func (inc *Incremental) Kernel() Kernel { return inc.kernel }

// SetObs points the incremental engine's utilization counters at a
// registry: rows reused vs invalidated per ExtendMatrix
// (rim_trrs_rows_reused_total / rim_trrs_rows_stale_total) plus the
// engine-level fill/pool handles inherited by every EngineView. A nil
// registry detaches them.
func (inc *Incremental) SetObs(reg *obs.Registry) {
	if reg == nil {
		inc.rowsReused, inc.rowsStale, inc.rowsFilled, inc.poolGauge = nil, nil, nil, nil
		return
	}
	inc.rowsReused = reg.Counter("rim_trrs_rows_reused_total",
		"base-matrix rows carried over untouched by the incremental engine")
	inc.rowsStale = reg.Counter("rim_trrs_rows_stale_total",
		"base-matrix rows invalidated (head drop / tail extension) and recomputed")
	inc.rowsFilled = reg.Counter("rim_trrs_rows_filled_total",
		"TRRS base-matrix rows computed from scratch")
	inc.poolGauge = reg.Gauge("rim_trrs_pool_workers",
		"worker count of the most recent TRRS pool build")
}

// SetTrace attaches an event recorder: every ExtendMatrix emits a
// trace.KindTRRSExtend event carrying its reuse/stale row split, and the
// recorder is inherited by every EngineView (whose builds emit
// trace.KindTRRSFill). A nil recorder (the default) disables tracing.
func (inc *Incremental) SetTrace(rec *trace.Recorder) { inc.trc = rec }

// SetHop stamps subsequently emitted trace events with the causal hop ID
// of the analysis hop driving this engine.
func (inc *Incremental) SetHop(hop int64) { inc.hop = hop }

// NumSlots returns the current window length.
func (inc *Incremental) NumSlots() int { return inc.end - inc.start }

// W returns the one-sided lag window of the maintained matrices.
func (inc *Incremental) W() int { return inc.w }

// Rate returns the sample rate in Hz.
func (inc *Incremental) Rate() float64 { return inc.rate }

// ensureTail guarantees every plane has room for one more slot after the
// current live region of n slots: extend in place when capacity allows,
// else compact the live region to the front (no allocation), else grow.
// The planes share one growth history, so a single policy decision (taken
// from the first plane) applies to all of them.
func (inc *Incremental) ensureTail(n int) {
	tones := inc.tones
	if tones <= 0 || inc.numAnt == 0 || inc.numTx == 0 {
		return
	}
	need := (inc.head + n + 1) * tones
	var c int
	if inc.prec == PrecisionFloat32 {
		c = cap(inc.rePlane32[0][0])
	} else {
		c = cap(inc.rePlane[0][0])
	}
	if c >= need {
		return
	}
	if inc.head > 0 && (n+1)*tones <= c {
		// Compact: move the live region to the front of each plane.
		liveLo, liveHi := inc.head*tones, (inc.head+n)*tones
		for a := 0; a < inc.numAnt; a++ {
			for tx := 0; tx < inc.numTx; tx++ {
				if inc.prec == PrecisionFloat32 {
					p := inc.rePlane32[a][tx]
					copy(p[:n*tones], p[liveLo:liveHi])
					inc.rePlane32[a][tx] = p[:n*tones]
					p = inc.imPlane32[a][tx]
					copy(p[:n*tones], p[liveLo:liveHi])
					inc.imPlane32[a][tx] = p[:n*tones]
					continue
				}
				p := inc.rePlane[a][tx]
				copy(p[:n*tones], p[liveLo:liveHi])
				inc.rePlane[a][tx] = p[:n*tones]
				p = inc.imPlane[a][tx]
				copy(p[:n*tones], p[liveLo:liveHi])
				inc.imPlane[a][tx] = p[:n*tones]
			}
		}
		inc.head = 0
		return
	}
	// Grow: ~2× the live window, so steady sliding settles into the
	// extend/compact cycle and never grows again.
	newCap := 2 * (n + 1) * tones
	liveLo, liveHi := inc.head*tones, (inc.head+n)*tones
	for a := 0; a < inc.numAnt; a++ {
		for tx := 0; tx < inc.numTx; tx++ {
			if inc.prec == PrecisionFloat32 {
				np := make([]float32, n*tones, newCap)
				copy(np, inc.rePlane32[a][tx][liveLo:liveHi])
				inc.rePlane32[a][tx] = np
				np = make([]float32, n*tones, newCap)
				copy(np, inc.imPlane32[a][tx][liveLo:liveHi])
				inc.imPlane32[a][tx] = np
				continue
			}
			np := make([]float64, n*tones, newCap)
			copy(np, inc.rePlane[a][tx][liveLo:liveHi])
			inc.rePlane[a][tx] = np
			np = make([]float64, n*tones, newCap)
			copy(np, inc.imPlane[a][tx][liveLo:liveHi])
			inc.imPlane[a][tx] = np
		}
	}
	inc.head = 0
}

// Append ingests one snapshot (shape [ant][tx][tone]); the rows are copied
// into the SoA ring and normalized with exactly Engine's constructor
// arithmetic, so later matrix queries match a batch engine built over the
// same window. The tone count is learned from the first snapshot; every
// later snapshot must match it (the SoA planes are uniform slabs).
func (inc *Incremental) Append(snapshot [][][]complex128) error {
	if len(snapshot) != inc.numAnt {
		return fmt.Errorf("trrs: incremental snapshot has %d antennas, want %d", len(snapshot), inc.numAnt)
	}
	for a := range snapshot {
		if len(snapshot[a]) != inc.numTx {
			return fmt.Errorf("trrs: incremental snapshot antenna %d has %d tx, want %d",
				a, len(snapshot[a]), inc.numTx)
		}
	}
	if inc.tones < 0 {
		inc.tones = len(snapshot[0][0])
	}
	for a := range snapshot {
		for tx := 0; tx < inc.numTx; tx++ {
			if len(snapshot[a][tx]) != inc.tones {
				return fmt.Errorf("trrs: incremental snapshot antenna %d tx %d has %d tones, want uniform %d",
					a, tx, len(snapshot[a][tx]), inc.tones)
			}
		}
	}
	n := inc.NumSlots()
	inc.ensureTail(n)
	o := (inc.head + n) * inc.tones
	for a := range snapshot {
		for tx := 0; tx < inc.numTx; tx++ {
			if inc.prec == PrecisionFloat32 {
				reP := inc.rePlane32[a][tx][:o+inc.tones]
				imP := inc.imPlane32[a][tx][:o+inc.tones]
				dstRe, dstIm := reP[o:], imP[o:]
				for k, c := range snapshot[a][tx] {
					dstRe[k] = float32(real(c))
					dstIm[k] = float32(imag(c))
				}
				sigproc.NormalizeSoA32(dstRe, dstIm)
				inc.rePlane32[a][tx] = reP
				inc.imPlane32[a][tx] = imP
				continue
			}
			reP := inc.rePlane[a][tx][:o+inc.tones]
			imP := inc.imPlane[a][tx][:o+inc.tones]
			dstRe, dstIm := reP[o:], imP[o:]
			for k, c := range snapshot[a][tx] {
				dstRe[k] = real(c)
				dstIm[k] = imag(c)
			}
			sigproc.NormalizeSoA(dstRe, dstIm)
			inc.rePlane[a][tx] = reP
			inc.imPlane[a][tx] = imP
		}
	}
	inc.end++
	return nil
}

// DropFront advances the window head by n slots (ring-buffer trim; the
// slots' storage is reclaimed by a later Append's compaction). The leading
// W rows of every maintained matrix become stale and are refreshed on the
// next ExtendMatrix call.
func (inc *Incremental) DropFront(n int) {
	if n <= 0 {
		return
	}
	if n > inc.NumSlots() {
		n = inc.NumSlots()
	}
	inc.head += n
	inc.start += n
}

// viewInto points e at the current window: plane slices covering slots
// [head, head+n), plus the incremental engine's rate/shape/tuning.
func (inc *Incremental) viewInto(e *Engine, ants []int) error {
	tones := inc.tones
	if tones < 0 {
		tones = 0
	}
	e.rate = inc.rate
	e.numAnts = len(ants)
	e.numTx = inc.numTx
	e.slots = inc.NumSlots()
	e.tones = tones
	e.prec = inc.prec
	e.kernel = inc.kernel
	e.par = inc.par
	e.rowsFilled = inc.rowsFilled
	e.poolGauge = inc.poolGauge
	e.trc = inc.trc
	e.hop = inc.hop
	lo, hi := inc.head*tones, (inc.head+e.slots)*tones
	for k, a := range ants {
		if a < 0 || a >= inc.numAnt {
			return fmt.Errorf("trrs: EngineView antenna %d out of range [0,%d)", a, inc.numAnt)
		}
		for tx := 0; tx < inc.numTx; tx++ {
			if inc.prec == PrecisionFloat32 {
				e.re32[k][tx] = inc.rePlane32[a][tx][lo:hi]
				e.im32[k][tx] = inc.imPlane32[a][tx][lo:hi]
				continue
			}
			e.re[k][tx] = inc.rePlane[a][tx][lo:hi]
			e.im[k][tx] = inc.imPlane[a][tx][lo:hi]
		}
	}
	return nil
}

// EngineView returns a batch Engine aliasing the window's normalized
// snapshots, restricted to the given antennas (nil means all, in order).
// The view shares storage with the incremental engine and is invalidated
// by the next Append/DropFront (an Append may compact the ring under it);
// it exists so window-scoped consumers (movement detection, self-TRRS)
// run on the incrementally maintained normalization instead of
// renormalizing the window every hop.
func (inc *Incremental) EngineView(ants []int) (*Engine, error) {
	if ants == nil {
		ants = make([]int, inc.numAnt)
		for a := range ants {
			ants[a] = a
		}
	}
	e := inc.newViewShell(len(ants))
	if err := inc.viewInto(e, ants); err != nil {
		return nil, err
	}
	return e, nil
}

// newViewShell allocates an engine shell with the right plane precision
// for viewInto to point at the window.
func (inc *Incremental) newViewShell(numAnts int) *Engine {
	e := &Engine{}
	if inc.prec == PrecisionFloat32 {
		e.re32 = make([][][]float32, numAnts)
		e.im32 = make([][][]float32, numAnts)
		for k := range e.re32 {
			e.re32[k] = make([][]float32, inc.numTx)
			e.im32[k] = make([][]float32, inc.numTx)
		}
		return e
	}
	e.re = make([][][]float64, numAnts)
	e.im = make([][][]float64, numAnts)
	for k := range e.re {
		e.re[k] = make([][]float64, inc.numTx)
		e.im[k] = make([][]float64, inc.numTx)
	}
	return e
}

// fullView refreshes (lazily building) the cached all-antenna view used
// by ExtendMatrix, so the steady-state hop allocates nothing.
func (inc *Incremental) fullView() *Engine {
	if inc.view == nil {
		inc.view = inc.newViewShell(inc.numAnt)
		inc.viewAnts = make([]int, inc.numAnt)
		for a := range inc.viewAnts {
			inc.viewAnts[a] = a
		}
	}
	// The identity view can't fail: every antenna index is in range.
	if err := inc.viewInto(inc.view, inc.viewAnts); err != nil {
		panic(err)
	}
	return inc.view
}

// ExtendMatrix returns the base TRRS matrix of antenna pair (i, j) over
// the current window, extending the maintained matrix with only the rows
// invalidated since the last call (see the type comment for the scheme).
// Antenna indices are absolute. Rows of the returned matrix are owned by
// the engine: callers must not modify them, and the matrix is overwritten
// two refreshes later (see the type comment on storage reuse).
func (inc *Incremental) ExtendMatrix(i, j int) (*Matrix, error) {
	if i < 0 || i >= inc.numAnt || j < 0 || j >= inc.numAnt {
		return nil, fmt.Errorf("trrs: ExtendMatrix pair (%d,%d) out of range [0,%d)", i, j, inc.numAnt)
	}
	im := inc.matFor(i, j)
	if im.m != nil && im.start == inc.start && im.end == inc.end {
		return im.m, nil
	}
	stale := inc.staleScratch[:0]
	m, stale := inc.carry(im, i, j, stale)
	inc.staleScratch = stale
	inc.fullView().fillRowsSharded(m, stale)
	return m, nil
}

// matFor returns (creating on first use) the maintained state of a pair.
func (inc *Incremental) matFor(i, j int) *incMat {
	key := PairSpec{I: i, J: j}
	im, ok := inc.mats[key]
	if !ok {
		im = &incMat{}
		inc.mats[key] = im
	}
	return im
}

// carry advances pair (i, j)'s maintained matrix to the current window:
// it sizes the next-generation backing, copies every row still valid from
// the previous generation, appends the local indices of the stale rows to
// stale, commits the generation swap and the reuse/stale accounting, and
// returns the new matrix with its stale rows NOT yet computed — the
// caller fills them (fillRowsSharded for a single pair, fillRowsBatch for
// a cross-pair batch).
func (inc *Incremental) carry(im *incMat, i, j int, stale []int) (*Matrix, []int) {
	tSlots := inc.NumSlots()
	width := 2*inc.w + 1
	nxt := 1 - im.cur
	flat := im.flats[nxt]
	if cap(flat) < tSlots*width {
		flat = make([]float64, tSlots*width)
	}
	flat = flat[:tSlots*width]
	rows := im.rows[nxt]
	if cap(rows) < tSlots {
		rows = make([][]float64, tSlots)
	}
	rows = rows[:tSlots]

	nPrev := len(stale)
	for t := 0; t < tSlots; t++ {
		row := flat[t*width : (t+1)*width]
		rows[t] = row
		r := inc.start + t // absolute slot of this row
		valid := im.m != nil && r < im.end
		// A head advance zeroes backward references of the leading W rows.
		if valid && inc.start > im.start && r < inc.start+inc.w {
			valid = false
		}
		// A tail extension unzeroes forward references of rows within W of
		// the old end.
		if valid && inc.end > im.end && r >= im.end-inc.w {
			valid = false
		}
		if valid {
			copy(row, im.m.Vals[r-im.start])
		} else {
			stale = append(stale, t)
		}
	}
	nStale := len(stale) - nPrev

	m := &im.hdr[nxt]
	*m = Matrix{I: i, J: j, W: inc.w, Rate: inc.rate, Vals: rows}
	inc.rowsReused.Add(uint64(tSlots - nStale))
	inc.rowsStale.Add(uint64(nStale))
	if inc.trc != nil {
		inc.trc.Emit(trace.KindTRRSExtend, inc.hop, trace.PairCode(i, j),
			int64(tSlots-nStale), int64(nStale))
	}
	im.flats[nxt] = flat
	im.rows[nxt] = rows
	im.cur = nxt
	im.m, im.start, im.end = m, inc.start, inc.end
	return m, stale
}

// ExtendMatrices is the cross-pair batched form of ExtendMatrix: it
// advances every listed pair's matrix to the current window and fills all
// their stale rows in one batched pass, interleaved row-major across
// pairs — consecutive fills sweep the same slot range of the CSI planes,
// so each freshly appended time block is read once and feeds every pair
// sharing it (in steady state every pair is stale on exactly the same
// rows, making the interleave a perfect block-major walk). The result
// slice and the matrices obey ExtendMatrix's ownership rules (valid until
// the next refresh; the slice itself is reused by the next call).
// Duplicate pairs are served by the per-pair fast path. Row values are
// bit-for-bit what per-pair ExtendMatrix calls would produce.
func (inc *Incremental) ExtendMatrices(pairs []PairSpec) ([]*Matrix, error) {
	out := inc.batchOut[:0]
	work := inc.batchWork[:0]
	seg := inc.batchSeg[:0]
	seg = append(seg, 0)
	touched := 0
	for _, p := range pairs {
		if p.I < 0 || p.I >= inc.numAnt || p.J < 0 || p.J >= inc.numAnt {
			inc.batchOut, inc.batchWork, inc.batchSeg = out, work, seg
			return nil, fmt.Errorf("trrs: ExtendMatrices pair (%d,%d) out of range [0,%d)", p.I, p.J, inc.numAnt)
		}
		im := inc.matFor(p.I, p.J)
		if im.m != nil && im.start == inc.start && im.end == inc.end {
			out = append(out, im.m)
			seg = append(seg, len(work))
			continue
		}
		stale := inc.staleScratch[:0]
		m, stale := inc.carry(im, p.I, p.J, stale)
		inc.staleScratch = stale
		touched++
		for _, t := range stale {
			work = append(work, batchItem{m: m, t: t})
		}
		out = append(out, m)
		seg = append(seg, len(work))
	}
	// Interleave the pair-major segments row-major: position pos of every
	// pair's stale list, pair by pair, then pos+1.
	order := inc.batchOrder[:0]
	for pos := 0; len(order) < len(work); pos++ {
		for k := 0; k+1 < len(seg); k++ {
			s := work[seg[k]:seg[k+1]]
			if pos < len(s) {
				order = append(order, s[pos])
			}
		}
	}
	if len(order) > 0 {
		inc.fullView().fillRowsBatch(order, touched)
	}
	inc.batchOut, inc.batchWork, inc.batchSeg, inc.batchOrder = out, work, seg, order
	return out, nil
}
