//go:build !race

// The steady-state allocation guard is meaningless under the race
// detector (instrumentation allocates), hence the build tag.

package trrs

import (
	"math/rand"
	"testing"
)

// TestIncrementalHopAllocFree pins the zero-allocation contract of the
// streaming hot path: once the window geometry has stabilized, a full hop
// — append hop slots, drop hop slots, refresh the pair matrix — performs
// no allocation at Parallelism 1 (the single-core hot path; the worker
// pool's goroutine fan-out inherently allocates). This is what lets the
// 200 Hz steady state run GC-quiet.
func TestIncrementalHopAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s := randomSeries(rng, 3, 2, 30, 400)
	const w, hop = 50, 50
	inc, err := NewIncremental(s.Rate, s.NumAnts, s.NumTx, w)
	if err != nil {
		t.Fatal(err)
	}
	inc.SetParallelism(1)

	// Pre-extract the snapshots: the harness must not allocate either.
	snaps := make([][][][]complex128, s.NumSlots())
	for ti := range snaps {
		snaps[ti] = seriesSnapshot(s, ti)
	}
	for ti := 0; ti < s.NumSlots(); ti++ {
		if err := inc.Append(snaps[ti]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := inc.ExtendMatrix(0, 2); err != nil {
		t.Fatal(err)
	}

	k := 0
	hopOnce := func() {
		for n := 0; n < hop; n++ {
			if err := inc.Append(snaps[k%len(snaps)]); err != nil {
				t.Fatal(err)
			}
			k++
		}
		inc.DropFront(hop)
		if _, err := inc.ExtendMatrix(0, 2); err != nil {
			t.Fatal(err)
		}
	}
	// Warm-up: size both ping-pong generations, the ring's growth, and
	// the stale-row scratch; run past one ring compaction.
	for n := 0; n < 12; n++ {
		hopOnce()
	}
	if avg := testing.AllocsPerRun(20, hopOnce); avg != 0 {
		t.Fatalf("steady-state hop allocates %.1f times per op, want 0", avg)
	}
}

// TestExtendMatrixReusesBacking pins the satellite contract directly: with
// unchanged geometry ExtendMatrix returns the same matrix (no rebuild),
// and across a hop the refreshed matrix reuses one of the two ping-pong
// backings instead of allocating fresh rows.
func TestExtendMatrixReusesBacking(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := randomSeries(rng, 2, 1, 12, 120)
	const w, hop = 10, 20
	inc, err := NewIncremental(s.Rate, s.NumAnts, s.NumTx, w)
	if err != nil {
		t.Fatal(err)
	}
	inc.SetParallelism(1)
	for ti := 0; ti < s.NumSlots(); ti++ {
		if err := inc.Append(seriesSnapshot(s, ti)); err != nil {
			t.Fatal(err)
		}
	}
	m1, err := inc.ExtendMatrix(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	m1again, err := inc.ExtendMatrix(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m1again {
		t.Fatal("unchanged geometry must return the maintained matrix, not a rebuild")
	}

	// Two hops: generation 2 must land back in generation 0's backing.
	hopOnce := func() *Matrix {
		for n := 0; n < hop; n++ {
			if err := inc.Append(seriesSnapshot(s, n)); err != nil {
				t.Fatal(err)
			}
		}
		inc.DropFront(hop)
		m, err := inc.ExtendMatrix(0, 1)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	m2 := hopOnce()
	if &m2.Vals[0][0] == &m1.Vals[0][0] {
		t.Fatal("consecutive generations must not share backing (callers hold the previous one)")
	}
	m3 := hopOnce()
	if &m3.Vals[0][0] != &m1.Vals[0][0] {
		t.Fatal("generation n+2 must reuse generation n's backing (ping-pong)")
	}
	if m3 != m1 {
		t.Fatal("generation n+2 must reuse generation n's Matrix header")
	}
}

// TestExtendMatricesAllocFree extends the zero-allocation contract to the
// cross-pair batched refresh: once the window geometry and the batch
// scratch have warmed up, a hop that refreshes all three pairs through
// ExtendMatrices performs no allocation at Parallelism 1.
func TestExtendMatricesAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	s := randomSeries(rng, 3, 2, 30, 400)
	const w, hop = 50, 50
	inc, err := NewIncremental(s.Rate, s.NumAnts, s.NumTx, w)
	if err != nil {
		t.Fatal(err)
	}
	inc.SetParallelism(1)
	pairs := []PairSpec{{I: 0, J: 1}, {I: 0, J: 2}, {I: 1, J: 2}}

	snaps := make([][][][]complex128, s.NumSlots())
	for ti := range snaps {
		snaps[ti] = seriesSnapshot(s, ti)
	}
	for ti := 0; ti < s.NumSlots(); ti++ {
		if err := inc.Append(snaps[ti]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := inc.ExtendMatrices(pairs); err != nil {
		t.Fatal(err)
	}

	k := 0
	hopOnce := func() {
		for n := 0; n < hop; n++ {
			if err := inc.Append(snaps[k%len(snaps)]); err != nil {
				t.Fatal(err)
			}
			k++
		}
		inc.DropFront(hop)
		if _, err := inc.ExtendMatrices(pairs); err != nil {
			t.Fatal(err)
		}
	}
	for n := 0; n < 12; n++ {
		hopOnce()
	}
	if avg := testing.AllocsPerRun(20, hopOnce); avg != 0 {
		t.Fatalf("steady-state batched hop allocates %.1f times per op, want 0", avg)
	}
}
