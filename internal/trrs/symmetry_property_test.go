package trrs

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Independent oracles for the symmetry deduplication in BaseMatrices: the
// reflection identity κ̄(Hᵢ(t), Hⱼ(t−l)) == base_{j,i}[t−l][−l] and the
// self-pair lag symmetry, each checked against matrices computed entirely
// without shortcuts (BaseMatrixSerial sweeps every entry of every pair).

// TestReflectionIdentityProperty: for random CSI, the point-wise Hermitian
// identity holds bit for bit, and a reversed pair derived by reflection in
// BaseMatrices equals its from-scratch serial matrix bit for bit — at
// serial and parallel worker counts.
func TestReflectionIdentityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSeries(rng, 3, 2, 8+rng.Intn(9), 30+rng.Intn(40))
		e := NewEngine(s)
		w := 5 + rng.Intn(10)

		// Point-wise: κ̄(Hᵢ(t), Hⱼ(t′)) == κ̄(Hⱼ(t′), Hᵢ(t)), same bits.
		for n := 0; n < 50; n++ {
			i, j := rng.Intn(3), rng.Intn(3)
			ti, tj := rng.Intn(s.NumSlots()), rng.Intn(s.NumSlots())
			a, b := e.Base(i, j, ti, tj), e.Base(j, i, tj, ti)
			if math.Float64bits(a) != math.Float64bits(b) {
				t.Logf("seed %d: κ̄(%d@%d, %d@%d)=%x but reversed=%x", seed, i, j, ti, tj,
					math.Float64bits(a), math.Float64bits(b))
				return false
			}
		}

		// Matrix-level: the reflected twin from one BaseMatrices call must
		// be bitwise the reversed pair's full serial computation, and the
		// matrix entries must satisfy base_{j,i}[t][l] == base_{i,j}[t−l][−l].
		for _, par := range []int{1, 3} {
			e.SetParallelism(par)
			ms := e.BaseMatrices([]PairSpec{{I: 0, J: 2}, {I: 2, J: 0}}, w)
			requireIdentical(t, "forward", e.BaseMatrixSerial(0, 2, w), ms[0])
			requireIdentical(t, "reflected", e.BaseMatrixSerial(2, 0, w), ms[1])
			fwd, rev := ms[0], ms[1]
			for n := 0; n < 200; n++ {
				tt, l := rng.Intn(s.NumSlots()), rng.Intn(2*w+1)-w
				if math.Float64bits(rev.At(tt, l)) != math.Float64bits(fwd.At(tt-l, -l)) {
					t.Logf("seed %d par %d: base_ji[%d][%d]=%x base_ij[%d][%d]=%x", seed, par, tt, l,
						math.Float64bits(rev.At(tt, l)), tt-l, -l, math.Float64bits(fwd.At(tt-l, -l)))
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestSelfPairLagSymmetryProperty: a self-pair matrix from BaseMatrices
// (computed over the non-negative half-band and reflected) equals the
// shortcut-free serial computation bit for bit, and satisfies the lag
// symmetry m[t][l] == m[t−l][−l] wherever both slots are in range.
func TestSelfPairLagSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSeries(rng, 2, 1+rng.Intn(2), 6+rng.Intn(12), 25+rng.Intn(30))
		e := NewEngine(s)
		w := 4 + rng.Intn(12)
		for _, par := range []int{1, 3} {
			e.SetParallelism(par)
			m := e.BaseMatrices([]PairSpec{{I: 1, J: 1}}, w)[0]
			requireIdentical(t, "self", e.BaseMatrixSerial(1, 1, w), m)
			for tt := 0; tt < s.NumSlots(); tt++ {
				for l := -w; l <= w; l++ {
					if math.Float64bits(m.At(tt, l)) != math.Float64bits(m.At(tt-l, -l)) {
						t.Logf("seed %d par %d: self[%d][%d]=%x self[%d][%d]=%x", seed, par, tt, l,
							math.Float64bits(m.At(tt, l)), tt-l, -l, math.Float64bits(m.At(tt-l, -l)))
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestBaseMatricesDedupAliasing: exact duplicates in one request share one
// matrix; mixed requests (duplicates + reversals + self-pairs) all come
// back bitwise-correct in the requested order.
func TestBaseMatricesDedupAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	s := randomSeries(rng, 3, 2, 16, 60)
	e := NewEngine(s)
	const w = 9
	pairs := []PairSpec{{0, 1}, {1, 0}, {0, 1}, {2, 2}, {1, 2}, {2, 1}, {2, 2}}
	ms := e.BaseMatrices(pairs, w)
	if ms[0] != ms[2] || ms[3] != ms[6] {
		t.Fatal("exact duplicate pairs must alias one matrix")
	}
	for k, p := range pairs {
		if ms[k].I != p.I || ms[k].J != p.J {
			t.Fatalf("pair %d: identity (%d,%d), want (%d,%d)", k, ms[k].I, ms[k].J, p.I, p.J)
		}
		requireIdentical(t, "mixed", e.BaseMatrixSerial(p.I, p.J, w), ms[k])
	}
}
