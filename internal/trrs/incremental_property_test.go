package trrs

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rim/internal/csi"
)

// incFromSeries builds an Incremental and appends slots [0, upTo) of s.
func incFromSeries(t *testing.T, s *csi.Series, w, upTo int) *Incremental {
	t.Helper()
	inc, err := NewIncremental(s.Rate, s.NumAnts, s.NumTx, w)
	if err != nil {
		t.Fatal(err)
	}
	for ti := 0; ti < upTo; ti++ {
		if err := inc.Append(seriesSnapshot(s, ti)); err != nil {
			t.Fatal(err)
		}
	}
	return inc
}

// Property: extending in two batches is equivalent to one shot —
// Extend(a)+Extend(b) over a split point produces the same matrix as
// appending everything before the first query.
func TestIncrementalExtendSplitProperty(t *testing.T) {
	f := func(seed int64, splitRaw, wRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		const slots = 24
		s := randomSeries(rng, 2, 1, 8, slots)
		w := 2 + int(wRaw%8)
		split := 1 + int(splitRaw)%(slots-1)

		twoShot := incFromSeries(t, s, w, split)
		if _, err := twoShot.ExtendMatrix(0, 1); err != nil { // query mid-stream
			return false
		}
		for ti := split; ti < slots; ti++ {
			if err := twoShot.Append(seriesSnapshot(s, ti)); err != nil {
				return false
			}
		}
		got, err := twoShot.ExtendMatrix(0, 1)
		if err != nil {
			return false
		}

		oneShot := incFromSeries(t, s, w, slots)
		want, err := oneShot.ExtendMatrix(0, 1)
		if err != nil {
			return false
		}
		if len(got.Vals) != len(want.Vals) {
			return false
		}
		for ti := range want.Vals {
			for c := range want.Vals[ti] {
				if got.Vals[ti][c] != want.Vals[ti][c] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: incremental matrices keep the TRRS bounds — every entry in
// [0, 1], the zero-lag self column exactly 1 for in-range references —
// and the κ̄ symmetry κ(i,j,t,t−l) = κ(j,i,t−l,t) holds between the (i,j)
// and (j,i) maintained matrices.
func TestIncrementalBoundsAndSymmetryProperty(t *testing.T) {
	f := func(seed int64, dropRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		const slots, w = 20, 5
		s := randomSeries(rng, 2, 2, 8, slots)
		inc := incFromSeries(t, s, w, slots)
		inc.DropFront(int(dropRaw) % 10)
		mij, err := inc.ExtendMatrix(0, 1)
		if err != nil {
			return false
		}
		mji, err := inc.ExtendMatrix(1, 0)
		if err != nil {
			return false
		}
		mSelf, err := inc.ExtendMatrix(0, 0)
		if err != nil {
			return false
		}
		n := len(mij.Vals)
		for ti := 0; ti < n; ti++ {
			for c := 0; c <= 2*w; c++ {
				v := mij.Vals[ti][c]
				if v < -1e-12 || v > 1+1e-9 {
					return false
				}
				// κ̄(0@ti, 1@tj) must equal κ̄(1@tj, 0@ti): the same inner
				// product magnitude read from the transposed matrix cell.
				tj := ti - (c - w)
				if tj >= 0 && tj < n {
					if lag2 := tj - ti; lag2 >= -w && lag2 <= w {
						if absf(v-mji.Vals[tj][lag2+w]) > 1e-12 {
							return false
						}
					}
				}
			}
			if d := mSelf.Vals[ti][w]; absf(d-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: W/V window invariants — every maintained matrix row is
// exactly 2W+1 wide, the slot extent tracks the window through appends
// and drops, out-of-window references are exactly 0, and VirtualMassive
// over an incremental matrix stays within [0, 1] for any V.
func TestIncrementalWindowInvariantsProperty(t *testing.T) {
	f := func(seed int64, wRaw, vRaw, dropRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		const slots = 18
		w := 1 + int(wRaw%7)
		s := randomSeries(rng, 2, 1, 6, slots)
		inc := incFromSeries(t, s, w, slots)
		if inc.W() != w || inc.NumSlots() != slots {
			return false
		}
		drop := int(dropRaw) % slots
		inc.DropFront(drop)
		if inc.NumSlots() != slots-drop {
			return false
		}
		m, err := inc.ExtendMatrix(0, 1)
		if err != nil {
			return false
		}
		if len(m.Vals) != inc.NumSlots() {
			return false
		}
		for ti, row := range m.Vals {
			if len(row) != 2*w+1 {
				return false
			}
			for c := range row {
				tj := ti - (c - w)
				if (tj < 0 || tj >= inc.NumSlots()) && row[c] != 0 {
					return false // out-of-window references must be exactly 0
				}
			}
		}
		v := 1 + int(vRaw%12)
		boosted, err := VirtualMassive(m, v)
		if err != nil {
			return false
		}
		for _, row := range boosted.Vals {
			for _, val := range row {
				if val < -1e-12 || val > 1+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
