// Package trrs implements the Time-Reversal Resonating Strength machinery
// of the paper (§3.2): the TRRS similarity between channel snapshots
// (Eq. 1/2), its average over transmit antennas for effective-bandwidth
// expansion (Eq. 3), the virtual-massive-antenna boost that averages a
// window of consecutive snapshots (Eq. 4), and the sliding-window TRRS
// (alignment) matrices between antenna pairs (Eq. 5).
//
// Performance note: Eq. 4's virtual-massive TRRS over a window of V virtual
// antennas is a box filter in time applied to the pairwise "base" TRRS
// matrix base[t][l] = κ̄(H_i(t), H_j(t−l)). The engine therefore computes
// each pair's base matrix once — O(T·(2W+1)·N·S) — and derives any V by an
// O(T·(2W+1)) box filter, instead of the naive O(T·(2W+1)·V·N·S).
//
// The normalized snapshots are stored structure-of-arrays: one contiguous
// re plane and one im plane per (antenna, tx), with slot t occupying
// [t·tones, (t+1)·tones). A base-matrix row's lag sweep walks consecutive
// slots of one plane, so the kernel streams memory sequentially instead of
// chasing per-slot []complex128 pointers. The default kernel keeps the
// seed's summation order exactly (see sigproc.DotSqSoA), so every result
// is bit-for-bit identical to the original []complex128 arithmetic; see
// DESIGN.md, "TRRS kernel".
package trrs

import (
	"fmt"
	"math"
	"runtime"

	"rim/internal/csi"
	"rim/internal/obs"
	"rim/internal/obs/trace"
	"rim/internal/sigproc"
)

// Kernel selects the inner-product kernel used for TRRS evaluation.
type Kernel uint8

const (
	// KernelSequential (the default) accumulates in the seed's element
	// order: results are bit-for-bit identical to the reference
	// implementation and therefore to every committed golden suite.
	KernelSequential Kernel = iota
	// KernelUnrolled4 splits the accumulation over four partial sums to
	// overlap FPU latency (sigproc.DotSqSoA4). Its fixed reduction order
	// differs from the sequential kernel, so results agree only to
	// rounding — the equivalence suite bounds the difference at 1e-12
	// relative. Opt-in via Config.Kernel or SetKernel.
	KernelUnrolled4
	// KernelUnrolled8 widens the accumulation to eight partial sums —
	// the vector-shaped reference the assembly sweep kernels mirror
	// (sigproc.DotSqSoA8). Measured caveat: with 16 live accumulators the
	// scalar register file spills, so on current hardware this kernel is
	// slower than the sequential one (see BENCH_trrs.json); it exists for
	// shape documentation and as a portable stand-in where the real
	// vector path is unavailable. Same 1e-12-relative gate as unrolled4.
	KernelUnrolled8
	// KernelVector evaluates whole base-matrix rows through the lag-sweep
	// kernels (sigproc.DotSqSweepSoA): AVX2+FMA assembly on supporting
	// amd64 hardware, scalar sweep elsewhere (sigproc.VecSupported
	// reports which). Point queries (Base, SelfSeries) fall back to the
	// sequential kernel — the sweep only pays off across a row. Results
	// agree with the sequential kernel to 1e-12 relative.
	KernelVector
)

// String implements fmt.Stringer.
func (k Kernel) String() string {
	switch k {
	case KernelSequential:
		return "sequential"
	case KernelUnrolled4:
		return "unrolled4"
	case KernelUnrolled8:
		return "unrolled8"
	case KernelVector:
		return "vector"
	default:
		return fmt.Sprintf("kernel(%d)", uint8(k))
	}
}

// ParseKernel converts a kernel name (as printed by Kernel.String) back to
// the selector — the flag-parsing hook for rimtrack/rimserved/rimbench.
func ParseKernel(s string) (Kernel, error) {
	switch s {
	case "sequential", "":
		return KernelSequential, nil
	case "unrolled4":
		return KernelUnrolled4, nil
	case "unrolled8":
		return KernelUnrolled8, nil
	case "vector":
		return KernelVector, nil
	default:
		return 0, fmt.Errorf("trrs: unknown kernel %q (want sequential, unrolled4, unrolled8 or vector)", s)
	}
}

// Engine holds unit-normalized CSI vectors so that the TRRS of Eq. 2
// reduces to the squared magnitude of an inner product.
type Engine struct {
	rate    float64
	numAnts int
	numTx   int
	slots   int
	// tones is the per-snapshot vector length; every slot must share it
	// (the SoA planes are uniform slabs).
	tones int
	// re[ant][tx] / im[ant][tx] are the SoA planes of unit-norm CSI:
	// slot t occupies [t*tones, (t+1)*tones). In float32 plane mode
	// (prec == PrecisionFloat32) these are nil and re32/im32 hold the
	// planes instead — converted once at ingest, never per query.
	re, im     [][][]float64
	re32, im32 [][][]float32
	// prec selects the plane precision (see Precision).
	prec Precision
	// kernel selects the inner-product kernel (see Kernel).
	kernel Kernel
	// par is the worker count for matrix computation: 0 means GOMAXPROCS,
	// 1 means the serial reference path (see SetParallelism).
	par int
	// Observability handles (nil = unobserved, every use a no-op): rows of
	// base matrices computed from scratch, and the pool's effective worker
	// count on the most recent build.
	rowsFilled *obs.Counter
	poolGauge  *obs.Gauge
	// trc/hop feed per-build fill events into the causal trace (nil = no
	// tracing); hop is the causal hop ID stamped on emitted events.
	trc *trace.Recorder
	hop int64
}

// SetParallelism sets the worker count used by BaseMatrix/BaseMatrices:
// 0 (the default) uses GOMAXPROCS workers, 1 forces the serial reference
// path, n > 1 uses exactly n workers. Every entry of a base matrix is an
// independent pure function of the normalized snapshots, so the sharded
// computation is bit-for-bit identical to the serial one at any setting.
func (e *Engine) SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	e.par = n
}

// Parallelism returns the configured worker count (0 = GOMAXPROCS).
func (e *Engine) Parallelism() int { return e.par }

// SetKernel selects the inner-product kernel. The default
// KernelSequential is bit-for-bit identical to the reference arithmetic;
// KernelUnrolled4 trades that for pipelined accumulation (1e-12-relative
// agreement).
func (e *Engine) SetKernel(k Kernel) { e.kernel = k }

// Kernel returns the selected inner-product kernel.
func (e *Engine) Kernel() Kernel { return e.kernel }

// SetObs points the engine's utilization counters at a registry: the
// number of base-matrix rows computed from scratch
// (rim_trrs_rows_filled_total) and the worker-pool size of the most recent
// build (rim_trrs_pool_workers). A nil registry detaches them.
func (e *Engine) SetObs(reg *obs.Registry) {
	if reg == nil {
		e.rowsFilled, e.poolGauge = nil, nil
		return
	}
	e.rowsFilled = reg.Counter("rim_trrs_rows_filled_total",
		"TRRS base-matrix rows computed from scratch")
	e.poolGauge = reg.Gauge("rim_trrs_pool_workers",
		"worker count of the most recent TRRS pool build")
}

// SetTrace attaches an event recorder: base-matrix builds emit
// trace.KindTRRSFill events describing the rows computed from scratch. A
// nil recorder (the default) disables tracing at one nil check per build.
func (e *Engine) SetTrace(rec *trace.Recorder) { e.trc = rec }

// SetHop stamps subsequently emitted trace events with the causal hop ID
// of the analysis driving this engine (0 = batch).
func (e *Engine) SetHop(hop int64) { e.hop = hop }

// workers resolves the effective worker count.
func (e *Engine) workers() int {
	if e.par > 0 {
		return e.par
	}
	return runtime.GOMAXPROCS(0)
}

// newEngineShell allocates the SoA planes for the series' shape. tones is
// taken from the first snapshot; the fill loops enforce uniformity.
func newEngineShell(s *csi.Series) *Engine {
	e := &Engine{
		rate:    s.Rate,
		numAnts: s.NumAnts,
		numTx:   s.NumTx,
		slots:   s.NumSlots(),
		re:      make([][][]float64, s.NumAnts),
		im:      make([][][]float64, s.NumAnts),
	}
	if e.slots > 0 && e.numAnts > 0 && e.numTx > 0 {
		e.tones = len(s.H[0][0][0])
	}
	for a := 0; a < e.numAnts; a++ {
		e.re[a] = make([][]float64, e.numTx)
		e.im[a] = make([][]float64, e.numTx)
		for tx := 0; tx < e.numTx; tx++ {
			e.re[a][tx] = make([]float64, e.slots*e.tones)
			e.im[a][tx] = make([]float64, e.slots*e.tones)
		}
	}
	return e
}

// checkTones enforces the uniform-shape requirement of the SoA layout.
func (e *Engine) checkTones(a, tx, t, got int) {
	if got != e.tones {
		panic(fmt.Sprintf("trrs: snapshot (ant %d, tx %d, slot %d) has %d tones, want uniform %d",
			a, tx, t, got, e.tones))
	}
}

// NewEngine precomputes normalized snapshots from a processed CSI series.
// All snapshots must share one tone count (ragged series panic: the TRRS
// of differently-shaped snapshots was already a panic in the kernel).
func NewEngine(s *csi.Series) *Engine {
	e := newEngineShell(s)
	for a := 0; a < e.numAnts; a++ {
		for tx := 0; tx < e.numTx; tx++ {
			reP, imP := e.re[a][tx], e.im[a][tx]
			for t := 0; t < e.slots; t++ {
				src := s.H[a][tx][t]
				e.checkTones(a, tx, t, len(src))
				o := t * e.tones
				for k, c := range src {
					reP[o+k] = real(c)
					imP[o+k] = imag(c)
				}
				sigproc.NormalizeSoA(reP[o:o+e.tones], imP[o:o+e.tones])
			}
		}
	}
	return e
}

// NewAmplitudeEngine builds an engine whose similarity discards phase: the
// stored vectors are per-subcarrier magnitudes (normalized). This is the
// ablation baseline for the TRRS choice — amplitude-only profiles lose the
// time-reversal focusing effect, so their spatial resolution is far worse.
func NewAmplitudeEngine(s *csi.Series) *Engine {
	e := newEngineShell(s)
	for a := 0; a < e.numAnts; a++ {
		for tx := 0; tx < e.numTx; tx++ {
			reP, imP := e.re[a][tx], e.im[a][tx]
			for t := 0; t < e.slots; t++ {
				src := s.H[a][tx][t]
				e.checkTones(a, tx, t, len(src))
				o := t * e.tones
				for k, c := range src {
					re, im := real(c), imag(c)
					reP[o+k] = math.Sqrt(re*re + im*im)
					imP[o+k] = 0
				}
				sigproc.NormalizeSoA(reP[o:o+e.tones], imP[o:o+e.tones])
			}
		}
	}
	return e
}

// Rate returns the sample rate in Hz.
func (e *Engine) Rate() float64 { return e.rate }

// NumSlots returns the number of time slots.
func (e *Engine) NumSlots() int { return e.slots }

// NumAntennas returns the antenna count.
func (e *Engine) NumAntennas() int { return e.numAnts }

// Base returns the tx-averaged TRRS κ̄ (Eq. 3) between antenna i at slot ti
// and antenna j at slot tj. Out-of-range slots yield 0.
func (e *Engine) Base(i, j, ti, tj int) float64 {
	if ti < 0 || tj < 0 || ti >= e.slots || tj >= e.slots {
		return 0
	}
	return e.base(i, j, ti, tj)
}

// base is Base without the slot-range check — the hot path. fillRow hoists
// the range test out of its lag sweep and calls this directly, so each
// matrix entry costs exactly one kernel call (the seed re-validated both
// slot indices on every entry).
func (e *Engine) base(i, j, ti, tj int) float64 {
	if e.prec == PrecisionFloat32 {
		return e.base32(i, j, ti, tj)
	}
	oi, oj := ti*e.tones, tj*e.tones
	ri, ii := e.re[i], e.im[i]
	rj, ij := e.re[j], e.im[j]
	var sum float64
	switch e.kernel {
	case KernelUnrolled4:
		for tx := 0; tx < e.numTx; tx++ {
			sum += sigproc.DotSqSoA4(
				ri[tx][oi:oi+e.tones], ii[tx][oi:oi+e.tones],
				rj[tx][oj:oj+e.tones], ij[tx][oj:oj+e.tones])
		}
	case KernelUnrolled8:
		for tx := 0; tx < e.numTx; tx++ {
			sum += sigproc.DotSqSoA8(
				ri[tx][oi:oi+e.tones], ii[tx][oi:oi+e.tones],
				rj[tx][oj:oj+e.tones], ij[tx][oj:oj+e.tones])
		}
	default:
		// KernelSequential, and KernelVector's point queries: the sweep
		// only pays off across a row, so single-entry evaluation keeps the
		// bit-exact sequential arithmetic.
		for tx := 0; tx < e.numTx; tx++ {
			sum += sigproc.DotSqSoA(
				ri[tx][oi:oi+e.tones], ii[tx][oi:oi+e.tones],
				rj[tx][oj:oj+e.tones], ij[tx][oj:oj+e.tones])
		}
	}
	return sum / float64(e.numTx)
}

// base32 is base over float32 planes: float32 accumulation per tx, tx
// average in float64 (sigproc.DotSqSoA32 returns float64 |·|²).
func (e *Engine) base32(i, j, ti, tj int) float64 {
	oi, oj := ti*e.tones, tj*e.tones
	ri, ii := e.re32[i], e.im32[i]
	rj, ij := e.re32[j], e.im32[j]
	var sum float64
	for tx := 0; tx < e.numTx; tx++ {
		sum += sigproc.DotSqSoA32(
			ri[tx][oi:oi+e.tones], ii[tx][oi:oi+e.tones],
			rj[tx][oj:oj+e.tones], ij[tx][oj:oj+e.tones])
	}
	return sum / float64(e.numTx)
}

// Matrix is a TRRS (alignment) matrix between one antenna pair: Vals[t][c]
// holds the TRRS of antenna I at slot t against antenna J at slot t−lag,
// where lag = c − W ranges over [−W, W].
type Matrix struct {
	I, J int
	W    int
	Rate float64
	Vals [][]float64
}

// NumSlots returns the time extent of the matrix.
func (m *Matrix) NumSlots() int { return len(m.Vals) }

// Lag converts a column index to a signed lag in slots.
func (m *Matrix) Lag(col int) int { return col - m.W }

// Col converts a signed lag in slots to a column index.
func (m *Matrix) Col(lag int) int { return lag + m.W }

// LagSeconds converts a signed lag in slots to seconds.
func (m *Matrix) LagSeconds(lag int) float64 { return float64(lag) / m.Rate }

// At returns the TRRS at slot t and signed lag (0 outside the window).
func (m *Matrix) At(t, lag int) float64 {
	if t < 0 || t >= len(m.Vals) || lag < -m.W || lag > m.W {
		return 0
	}
	return m.Vals[t][lag+m.W]
}

// fillRow computes one row of the (i, j, w) base matrix into row (len
// 2w+1): row[c] = κ̄(H_i(t), H_j(t−(c−w))), 0 outside the series. It
// overwrites every entry, so rows may be reused.
func (e *Engine) fillRow(row []float64, i, j, w, t int) {
	e.fillRowFrom(row, i, j, w, t, 0)
}

// fillRowFrom computes columns c ∈ [cFrom, len(row)) of fillRow's sweep
// (cFrom = 0 is the full row). The in-range column band is hoisted out of
// the loop — tj = t−(c−w) lies in [0, slots) iff c ∈ [cLo, cHi) — so the
// sweep calls the unchecked kernel and the out-of-range fringes are plain
// zero fills. cFrom = w restricts the sweep to the non-negative lags, the
// self-pair half-band computation (see BaseMatrices).
func (e *Engine) fillRowFrom(row []float64, i, j, w, t, cFrom int) {
	cLo := t + w - e.slots + 1 // first c with t−(c−w) < slots
	if cLo < cFrom {
		cLo = cFrom
	}
	cHi := t + w + 1 // first c with t−(c−w) < 0
	if cHi > len(row) {
		cHi = len(row)
	}
	for c := cFrom; c < cLo; c++ {
		row[c] = 0
	}
	for c := cHi; c < len(row); c++ {
		row[c] = 0
	}
	if cLo >= cHi {
		return
	}
	// The in-range band is a lag sweep: column c evaluates slot t against
	// slot t−(c−w), one slot earlier per column. Float32 plane mode and the
	// opt-in vector kernel hand the whole band to the sigproc sweep
	// primitives (AVX2+FMA assembly where available) instead of one kernel
	// call per entry; the default path stays the bit-exact per-entry loop.
	switch {
	case e.prec == PrecisionFloat32:
		e.sweepRow32(row[cLo:cHi], i, j, t, t-(cLo-w))
	case e.kernel == KernelVector:
		e.sweepRow(row[cLo:cHi], i, j, t, t-(cLo-w))
	default:
		for c := cLo; c < cHi; c++ {
			row[c] = e.base(i, j, t, t-(c-w))
		}
	}
}

// sweepRow fills band[k] = κ̄(H_i(t), H_j(tjFirst−k)) via the float64 lag
// sweep: zero the band, accumulate one strided sweep per tx (stride
// −tones walks earlier slots as the lag grows), then divide by the tx
// count. tjFirst is the slot the band's first column references; the
// caller guarantees the whole band lies inside the series.
func (e *Engine) sweepRow(band []float64, i, j, t, tjFirst int) {
	for k := range band {
		band[k] = 0
	}
	oi := t * e.tones
	off := tjFirst * e.tones
	for tx := 0; tx < e.numTx; tx++ {
		sigproc.DotSqSweepSoA(band,
			e.re[i][tx][oi:oi+e.tones], e.im[i][tx][oi:oi+e.tones],
			e.re[j][tx], e.im[j][tx], off, -e.tones, e.tones)
	}
	if e.numTx > 1 {
		ntx := float64(e.numTx)
		for k := range band {
			band[k] /= ntx
		}
	}
}

// sweepRow32 is sweepRow over the float32 planes.
func (e *Engine) sweepRow32(band []float64, i, j, t, tjFirst int) {
	for k := range band {
		band[k] = 0
	}
	oi := t * e.tones
	off := tjFirst * e.tones
	for tx := 0; tx < e.numTx; tx++ {
		sigproc.DotSqSweepSoA32(band,
			e.re32[i][tx][oi:oi+e.tones], e.im32[i][tx][oi:oi+e.tones],
			e.re32[j][tx], e.im32[j][tx], off, -e.tones, e.tones)
	}
	if e.numTx > 1 {
		ntx := float64(e.numTx)
		for k := range band {
			band[k] /= ntx
		}
	}
}

// BaseMatrixSerial computes the single-snapshot TRRS matrix between
// antennas i and j over lags [−W, W] — base[t][l+W] = κ̄(H_i(t), H_j(t−l))
// — on one goroutine, row by row, with no symmetry shortcuts. This is the
// reference oracle the parallel, incremental and symmetry-deduplicated
// paths are tested against; select it pipeline-wide with Parallelism = 1.
func (e *Engine) BaseMatrixSerial(i, j, w int) *Matrix {
	m := &Matrix{I: i, J: j, W: w, Rate: e.rate}
	m.Vals = make([][]float64, e.slots)
	width := 2*w + 1
	flat := make([]float64, e.slots*width)
	for t := 0; t < e.slots; t++ {
		row := flat[t*width : (t+1)*width]
		e.fillRow(row, i, j, w, t)
		m.Vals[t] = row
	}
	return m
}

// BaseMatrix computes the single-snapshot TRRS matrix between antennas i
// and j over lags [−W, W], fanning the rows out over the engine's worker
// pool (see SetParallelism). The result is bit-for-bit identical to
// BaseMatrixSerial.
func (e *Engine) BaseMatrix(i, j, w int) *Matrix {
	return e.BaseMatrices([]PairSpec{{I: i, J: j}}, w)[0]
}

// VirtualMassive applies the Eq. 4 virtual-massive-antenna boost to a base
// matrix: each entry becomes the average of the same lag over a window of V
// consecutive snapshots (box filter along time, shrinking at the edges).
// V <= 1 returns a copy. A nil or ragged matrix (rows not 2W+1 wide) is a
// caller bug that would otherwise misindex the box filter; it is reported
// as an error.
func VirtualMassive(base *Matrix, v int) (*Matrix, error) {
	return VirtualMassiveInto(nil, base, v)
}

// PairMatrix is the convenience composition used everywhere: base matrix
// plus virtual-massive averaging with V virtual antennas.
func (e *Engine) PairMatrix(i, j, w, v int) *Matrix {
	m, err := VirtualMassive(e.BaseMatrix(i, j, w), v)
	if err != nil {
		// BaseMatrix always produces a well-formed matrix.
		panic(err)
	}
	return m
}

// AverageMatrices returns the element-wise mean of several equal-shape
// matrices — the §4.2 augmentation that merges parallel isometric antenna
// pairs, whose alignment delays are identical. The result borrows the
// identity of the first matrix. Matrices that disagree on W, Rate or slot
// count would silently misindex (or average physically incomparable lags),
// so any mismatch is reported as an error; an empty input is an error too.
func AverageMatrices(ms ...*Matrix) (*Matrix, error) {
	// Delegation note: AverageMatricesInto initializes each output row by
	// copying the first input instead of accumulating onto zeros. For the
	// non-negative values TRRS matrices hold, x and 0+x are bit-identical,
	// so the two formulations produce the same matrices (pinned by the
	// golden suites).
	return AverageMatricesInto(nil, ms...)
}

// SelfSeries returns the movement-detection series of §4.1 for antenna i:
// s[t] = virtual-massive TRRS between antenna i at slot t and itself
// lagSlots earlier, averaged over a window of v snapshots. Slots earlier
// than lagSlots copy the first computable value.
func (e *Engine) SelfSeries(i, lagSlots, v int) []float64 {
	raw := make([]float64, e.slots)
	for t := 0; t < e.slots; t++ {
		if t < lagSlots {
			raw[t] = math.NaN()
			continue
		}
		raw[t] = e.Base(i, i, t, t-lagSlots)
	}
	// Backfill the warm-up region.
	if lagSlots < e.slots {
		for t := 0; t < lagSlots; t++ {
			raw[t] = raw[lagSlots]
		}
	} else {
		for t := range raw {
			raw[t] = 1
		}
	}
	if v > 1 {
		return sigproc.MovingAverage(raw, v/2)
	}
	return raw
}

// ColumnMax returns, for each slot, the best lag and TRRS value in the
// matrix row — the naive per-column argmax peak picker used as the ablation
// baseline for the dynamic-programming tracker.
func (m *Matrix) ColumnMax() (lags []int, vals []float64) {
	lags = make([]int, len(m.Vals))
	vals = make([]float64, len(m.Vals))
	for t, row := range m.Vals {
		best, bi := -1.0, 0
		for c, v := range row {
			if v > best {
				best, bi = v, c
			}
		}
		lags[t] = bi - m.W
		vals[t] = best
	}
	return lags, vals
}
