package trrs

import (
	"math"
	"testing"

	"rim/internal/array"
	"rim/internal/csi"
	"rim/internal/geom"
	"rim/internal/rf"
	"rim/internal/traj"
)

// buildSeries runs a small end-to-end acquisition for tests.
func buildSeries(t *testing.T, tr *traj.Trajectory, arr *array.Array, rcfg csi.ReceiverConfig) *csi.Series {
	t.Helper()
	cfg := rf.FastConfig()
	env := rf.NewEnvironment(cfg, geom.Vec2{}, geom.Vec2{X: 10, Y: 0}, nil)
	s, err := csi.Collect(env, arr, tr, rcfg).Process(true)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBaseSelfIsOne(t *testing.T) {
	arr := array.NewLinear3(0.029)
	b := traj.NewBuilder(100, geom.Pose{Pos: geom.Vec2{X: 10, Y: 0}})
	b.Pause(0.2)
	e := NewEngine(buildSeries(t, b.Build(), arr, csi.ReceiverConfig{}))
	if k := e.Base(0, 0, 5, 5); math.Abs(k-1) > 1e-9 {
		t.Errorf("self TRRS = %v", k)
	}
	if e.Base(0, 0, -1, 5) != 0 || e.Base(0, 0, 5, 9999) != 0 {
		t.Error("out-of-range Base must be 0")
	}
	if e.Rate() != 100 || e.NumAntennas() != 3 {
		t.Error("engine metadata wrong")
	}
}

func TestBaseIsSymmetricInSnapshots(t *testing.T) {
	arr := array.NewLinear3(0.029)
	tr := traj.Line(100, geom.Vec2{X: 10, Y: 0}, 0, 0, 0.2, 0.4)
	e := NewEngine(buildSeries(t, tr, arr, csi.ReceiverConfig{}))
	// κ̄(i@t1, j@t2) = κ̄(j@t2, i@t1): inner-product magnitude symmetry.
	k1 := e.Base(0, 2, 10, 4)
	k2 := e.Base(2, 0, 4, 10)
	if math.Abs(k1-k2) > 1e-9 {
		t.Errorf("asymmetry: %v vs %v", k1, k2)
	}
}

func TestMatrixIndexing(t *testing.T) {
	m := &Matrix{W: 5, Rate: 100, Vals: make([][]float64, 3)}
	for i := range m.Vals {
		m.Vals[i] = make([]float64, 11)
	}
	m.Vals[1][m.Col(-2)] = 0.7
	if m.At(1, -2) != 0.7 {
		t.Error("At/Col disagree")
	}
	if m.Lag(0) != -5 || m.Lag(10) != 5 {
		t.Error("Lag conversion wrong")
	}
	if m.LagSeconds(10) != 0.1 {
		t.Errorf("LagSeconds = %v", m.LagSeconds(10))
	}
	if m.At(-1, 0) != 0 || m.At(0, 9) != 0 {
		t.Error("out-of-range At must be 0")
	}
	if m.NumSlots() != 3 {
		t.Error("NumSlots wrong")
	}
}

// TestAlignmentPeakAtExpectedLag is the central STAR check: moving a linear
// array along its axis, the TRRS matrix of the (leading, following) pair
// must peak at lag ≈ separation/speed.
func TestAlignmentPeakAtExpectedLag(t *testing.T) {
	rate := 100.0
	speed := 0.4
	sep := 0.058 // antenna 0 to antenna 2 of the linear array
	arr := array.NewLinear3(0.029)
	// Move along body +X: antenna 2 leads, antenna 0 follows antenna 2?
	// Pair (0,2): positive lag means antenna 0 retraces antenna 2 — the
	// array moves from 0 towards 2, i.e. along +X.
	tr := traj.Line(rate, geom.Vec2{X: 10, Y: 0}, 0, 0, 0.8, speed)
	e := NewEngine(buildSeries(t, tr, arr, csi.RealisticReceiver(21)))
	w := 30
	m := e.PairMatrix(0, 2, w, 20)
	wantLag := int(math.Round(sep / speed * rate)) // ≈ 15 slots

	// Vote over the steady-state region.
	hits, total := 0, 0
	lags, _ := m.ColumnMax()
	for ti := wantLag + 5; ti < m.NumSlots()-5; ti++ {
		total++
		if int(math.Abs(float64(lags[ti]-wantLag))) <= 2 {
			hits++
		}
	}
	if total == 0 {
		t.Fatal("no steady-state slots")
	}
	if frac := float64(hits) / float64(total); frac < 0.7 {
		t.Errorf("peak at expected lag %d in only %.0f%% of slots", wantLag, frac*100)
	}
}

func TestVirtualMassiveSharpensAlignment(t *testing.T) {
	// With noise, the V-averaged matrix should localize the true lag more
	// often than the single-snapshot matrix (Fig. 17's mechanism).
	rate := 100.0
	speed := 0.4
	arr := array.NewLinear3(0.029)
	tr := traj.Line(rate, geom.Vec2{X: 10, Y: 0}, 0, 0, 0.8, speed)
	rcfg := csi.ReceiverConfig{SNRdB: 12, PLLPhase: true, STOSlopeMax: 0.05, Seed: 33}
	e := NewEngine(buildSeries(t, tr, arr, rcfg))
	w := 30
	base := e.BaseMatrix(0, 2, w)
	boosted, err := VirtualMassive(base, 20)
	if err != nil {
		t.Fatal(err)
	}
	wantLag := int(math.Round(0.058 / speed * rate))

	score := func(m *Matrix) float64 {
		lags, _ := m.ColumnMax()
		hits, total := 0, 0
		for ti := wantLag + 5; ti < m.NumSlots()-5; ti++ {
			total++
			if int(math.Abs(float64(lags[ti]-wantLag))) <= 2 {
				hits++
			}
		}
		return float64(hits) / float64(total)
	}
	sBase, sBoost := score(base), score(boosted)
	if sBoost < sBase {
		t.Errorf("virtual massive did not help: base %.2f boosted %.2f", sBase, sBoost)
	}
	if sBoost < 0.6 {
		t.Errorf("boosted hit rate %.2f too low", sBoost)
	}
}

func TestVirtualMassiveVLE1IsCopy(t *testing.T) {
	m := &Matrix{W: 1, Rate: 10, Vals: [][]float64{{1, 2, 3}, {4, 5, 6}}}
	out, err := VirtualMassive(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	for t1 := range m.Vals {
		for c := range m.Vals[t1] {
			if out.Vals[t1][c] != m.Vals[t1][c] {
				t.Fatal("V=1 must copy")
			}
		}
	}
	out.Vals[0][0] = 99
	if m.Vals[0][0] == 99 {
		t.Error("copy aliases source")
	}
}

func TestAverageMatrices(t *testing.T) {
	a := &Matrix{W: 1, Rate: 10, Vals: [][]float64{{1, 2, 3}}}
	b := &Matrix{W: 1, Rate: 10, Vals: [][]float64{{3, 4, 5}}}
	avg, err := AverageMatrices(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, 4}
	for c, v := range want {
		if avg.Vals[0][c] != v {
			t.Errorf("avg[0][%d] = %v", c, avg.Vals[0][c])
		}
	}
	if _, err := AverageMatrices(); err == nil {
		t.Error("empty average must error")
	}
}

// TestAverageMatricesValidation covers the mismatch cases that previously
// misindexed silently: differing W, Rate, slot counts and ragged rows.
func TestAverageMatricesValidation(t *testing.T) {
	ok := &Matrix{W: 1, Rate: 10, Vals: [][]float64{{1, 2, 3}}}
	cases := map[string]*Matrix{
		"window mismatch":     {W: 2, Rate: 10, Vals: [][]float64{{1, 2, 3, 4, 5}}},
		"rate mismatch":       {W: 1, Rate: 20, Vals: [][]float64{{1, 2, 3}}},
		"slot-count mismatch": {W: 1, Rate: 10, Vals: [][]float64{{1, 2, 3}, {4, 5, 6}}},
		"ragged row":          {W: 1, Rate: 10, Vals: [][]float64{{1, 2}}},
		"nil input":           nil,
	}
	for name, bad := range cases {
		if _, err := AverageMatrices(ok, bad); err == nil {
			t.Errorf("%s: want error, got none", name)
		}
	}
	if _, err := AverageMatrices(ok, ok); err != nil {
		t.Errorf("matching inputs must not error: %v", err)
	}
}

// TestVirtualMassiveValidation covers the malformed-matrix cases.
func TestVirtualMassiveValidation(t *testing.T) {
	if _, err := VirtualMassive(nil, 4); err == nil {
		t.Error("nil matrix must error")
	}
	ragged := &Matrix{W: 1, Rate: 10, Vals: [][]float64{{1, 2, 3}, {4, 5}}}
	if _, err := VirtualMassive(ragged, 4); err == nil {
		t.Error("ragged matrix must error")
	}
	if _, err := VirtualMassive(&Matrix{W: -1, Rate: 10}, 4); err == nil {
		t.Error("negative window must error")
	}
}

func TestSelfSeriesMovementSensitivity(t *testing.T) {
	// Stop-and-go: self-TRRS must be ~1 while static and drop while moving.
	rate := 100.0
	arr := array.NewLinear3(0.029)
	b := traj.NewBuilder(rate, geom.Pose{Pos: geom.Vec2{X: 10, Y: 0}})
	b.Pause(1.0)
	b.MoveDir(0, 0.5, 0.5)
	b.Pause(1.0)
	tr := b.Build()
	e := NewEngine(buildSeries(t, tr, arr, csi.RealisticReceiver(13)))
	lagSlots := 5 // 50 ms at 0.5 m/s → 2.5 cm displacement when moving
	s := e.SelfSeries(0, lagSlots, 10)
	if len(s) != e.NumSlots() {
		t.Fatalf("series length %d", len(s))
	}
	staticVal := s[50]         // mid first pause
	movingVal := s[150]        // mid movement
	staticVal2 := s[len(s)-30] // mid last pause
	// Both static segments must sit high; the second may be slightly lower
	// when the stop position falls in a channel fade (noisy unwrapping
	// makes sanitization a little less stable there).
	if staticVal < 0.9 || staticVal2 < 0.8 {
		t.Errorf("static self-TRRS = %v / %v, want ~1", staticVal, staticVal2)
	}
	if movingVal > staticVal-0.2 {
		t.Errorf("moving self-TRRS %v not clearly below static %v", movingVal, staticVal)
	}
}

func TestSelfSeriesLagBeyondTrace(t *testing.T) {
	arr := array.NewLinear3(0.029)
	b := traj.NewBuilder(100, geom.Pose{Pos: geom.Vec2{X: 10, Y: 0}})
	b.Pause(0.05)
	e := NewEngine(buildSeries(t, b.Build(), arr, csi.ReceiverConfig{}))
	s := e.SelfSeries(0, 1000, 1)
	for _, v := range s {
		if v != 1 {
			t.Fatal("lag beyond trace must default to 1 (static)")
		}
	}
}

func TestPairMatrixShape(t *testing.T) {
	arr := array.NewLinear3(0.029)
	tr := traj.Line(100, geom.Vec2{X: 10, Y: 0}, 0, 0, 0.2, 0.4)
	e := NewEngine(buildSeries(t, tr, arr, csi.ReceiverConfig{}))
	m := e.PairMatrix(0, 1, 10, 6)
	if m.NumSlots() != e.NumSlots() {
		t.Errorf("slots = %d", m.NumSlots())
	}
	for _, row := range m.Vals {
		if len(row) != 21 {
			t.Fatal("row width != 2W+1")
		}
	}
	if m.I != 0 || m.J != 1 {
		t.Error("pair identity lost")
	}
}
