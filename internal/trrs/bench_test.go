package trrs

import (
	"math/rand"
	"testing"

	"rim/internal/csi"
)

// benchFixture is the Fast-scale fixture shared with the repo-root
// TestBenchGuard: 4 s at 100 Hz, W = 0.5 s, two tx chains, 30 tones.
func benchFixture(tb testing.TB) (*csi.Series, int) {
	tb.Helper()
	rng := rand.New(rand.NewSource(42))
	return randomSeries(rng, 3, 2, 30, 400), 50
}

// BenchmarkTRRSMatrixSerial is the seed's single-threaded base-matrix
// computation — the reference the parallel numbers are reported against.
func BenchmarkTRRSMatrixSerial(b *testing.B) {
	s, w := benchFixture(b)
	e := NewEngine(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkMatrix = e.BaseMatrixSerial(0, 2, w)
	}
}

// BenchmarkTRRSMatrixParallel is the same computation through the worker
// pool at GOMAXPROCS.
func BenchmarkTRRSMatrixParallel(b *testing.B) {
	s, w := benchFixture(b)
	e := NewEngine(s)
	e.SetParallelism(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkMatrix = e.BaseMatrix(0, 2, w)
	}
}

// BenchmarkTRRSMatricesBulk computes all three pairs of a linear array in
// one pool (the pipeline's construction pattern).
func BenchmarkTRRSMatricesBulk(b *testing.B) {
	s, w := benchFixture(b)
	e := NewEngine(s)
	e.SetParallelism(0)
	pairs := []PairSpec{{I: 0, J: 1}, {I: 0, J: 2}, {I: 1, J: 2}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkMatrices = e.BaseMatrices(pairs, w)
	}
}

// BenchmarkTRRSIncrementalHop measures one steady-state streaming hop:
// append hop slots, drop hop slots, refresh the pair matrix. Compare with
// BenchmarkTRRSRecomputeHop, the per-hop cost the seed paid.
func BenchmarkTRRSIncrementalHop(b *testing.B) {
	s, w := benchFixture(b)
	const hop = 50
	inc, err := NewIncremental(s.Rate, s.NumAnts, s.NumTx, w)
	if err != nil {
		b.Fatal(err)
	}
	for ti := 0; ti < s.NumSlots(); ti++ {
		if err := inc.Append(seriesSnapshot(s, ti)); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := inc.ExtendMatrix(0, 2); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < hop; k++ {
			if err := inc.Append(seriesSnapshot(s, (i*hop+k)%s.NumSlots())); err != nil {
				b.Fatal(err)
			}
		}
		inc.DropFront(hop)
		m, err := inc.ExtendMatrix(0, 2)
		if err != nil {
			b.Fatal(err)
		}
		sinkMatrix = m
	}
}

// BenchmarkTRRSRecomputeHop is the seed's per-hop cost: renormalize the
// window and rebuild the full base matrix from scratch.
func BenchmarkTRRSRecomputeHop(b *testing.B) {
	s, w := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := NewEngine(s)
		sinkMatrix = e.BaseMatrixSerial(0, 2, w)
	}
}

var (
	sinkMatrix   *Matrix
	sinkMatrices []*Matrix
)
