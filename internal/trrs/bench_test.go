package trrs

import (
	"math/rand"
	"testing"

	"rim/internal/csi"
)

// benchFixture is the Fast-scale fixture shared with the repo-root
// TestBenchGuard: 4 s at 100 Hz, W = 0.5 s, two tx chains, 30 tones.
func benchFixture(tb testing.TB) (*csi.Series, int) {
	tb.Helper()
	rng := rand.New(rand.NewSource(42))
	return randomSeries(rng, 3, 2, 30, 400), 50
}

// BenchmarkTRRSMatrixSerial is the single-threaded base-matrix computation
// with the default (sequential, bit-exact) SoA kernel — the reference the
// parallel and symmetry numbers are reported against.
func BenchmarkTRRSMatrixSerial(b *testing.B) {
	s, w := benchFixture(b)
	e := NewEngine(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkMatrix = e.BaseMatrixSerial(0, 2, w)
	}
}

// BenchmarkTRRSMatrixAoSRef is the seed's array-of-structs layout and
// []complex128 kernel, reimplemented via the same aosRef the equivalence
// suite pins against — the denominator for the SoA kernel's speedup.
func BenchmarkTRRSMatrixAoSRef(b *testing.B) {
	s, w := benchFixture(b)
	ref := newAoSRef(s, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkRows = ref.matrix(0, 2, w)
	}
}

// BenchmarkTRRSMatrixUnrolled is the serial build with the opt-in
// 4-accumulator kernel (1e-12-equivalent, not bit-exact).
func BenchmarkTRRSMatrixUnrolled(b *testing.B) {
	s, w := benchFixture(b)
	e := NewEngine(s)
	e.SetKernel(KernelUnrolled4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkMatrix = e.BaseMatrixSerial(0, 2, w)
	}
}

// BenchmarkTRRSMatrixParallel is the same computation through the worker
// pool at GOMAXPROCS.
func BenchmarkTRRSMatrixParallel(b *testing.B) {
	s, w := benchFixture(b)
	e := NewEngine(s)
	e.SetParallelism(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkMatrix = e.BaseMatrix(0, 2, w)
	}
}

// BenchmarkTRRSMatricesBulk computes all three pairs of a linear array in
// one pool (the pipeline's construction pattern).
func BenchmarkTRRSMatricesBulk(b *testing.B) {
	s, w := benchFixture(b)
	e := NewEngine(s)
	e.SetParallelism(0)
	pairs := []PairSpec{{I: 0, J: 1}, {I: 0, J: 2}, {I: 1, J: 2}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkMatrices = e.BaseMatrices(pairs, w)
	}
}

// symmetricPairs is a workload where Hermitian deduplication bites: a
// reversed pair plus a self-pair, as produced by bidirectional pair
// requests and the §4.1 self-TRRS. Three full matrices from ~1.5 matrices
// of kernel work.
var symmetricPairs = []PairSpec{{I: 0, J: 2}, {I: 2, J: 0}, {I: 1, J: 1}}

// BenchmarkTRRSMatricesSymmetric builds the symmetric pair set with
// deduplication (single core, so the gain is pure symmetry, not pool
// fan-out).
func BenchmarkTRRSMatricesSymmetric(b *testing.B) {
	s, w := benchFixture(b)
	e := NewEngine(s)
	e.SetParallelism(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkMatrices = e.BaseMatrices(symmetricPairs, w)
	}
}

// BenchmarkTRRSMatricesSymmetricNaive is the same pair set with every
// matrix computed from scratch — what the build cost before symmetry
// deduplication.
func BenchmarkTRRSMatricesSymmetricNaive(b *testing.B) {
	s, w := benchFixture(b)
	e := NewEngine(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range symmetricPairs {
			sinkMatrix = e.BaseMatrixSerial(p.I, p.J, w)
		}
	}
}

// BenchmarkTRRSIncrementalHop measures one steady-state streaming hop:
// append hop slots, drop hop slots, refresh the pair matrix — at
// Parallelism 1, the single-core hot path whose allocs/op must be 0
// (snapshots are pre-extracted so the harness stays out of the
// measurement). Compare with BenchmarkTRRSRecomputeHop, the per-hop cost
// the seed paid.
func BenchmarkTRRSIncrementalHop(b *testing.B) {
	s, w := benchFixture(b)
	const hop = 50
	inc, err := NewIncremental(s.Rate, s.NumAnts, s.NumTx, w)
	if err != nil {
		b.Fatal(err)
	}
	inc.SetParallelism(1)
	snaps := make([][][][]complex128, s.NumSlots())
	for ti := range snaps {
		snaps[ti] = seriesSnapshot(s, ti)
	}
	for ti := 0; ti < s.NumSlots(); ti++ {
		if err := inc.Append(snaps[ti]); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := inc.ExtendMatrix(0, 2); err != nil {
		b.Fatal(err)
	}
	// Settle the ring and both ping-pong generations before timing.
	k := 0
	hopOnce := func() {
		for n := 0; n < hop; n++ {
			if err := inc.Append(snaps[k%len(snaps)]); err != nil {
				b.Fatal(err)
			}
			k++
		}
		inc.DropFront(hop)
		m, err := inc.ExtendMatrix(0, 2)
		if err != nil {
			b.Fatal(err)
		}
		sinkMatrix = m
	}
	for n := 0; n < 12; n++ {
		hopOnce()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hopOnce()
	}
}

// BenchmarkTRRSRecomputeHop is the seed's per-hop cost: renormalize the
// window and rebuild the full base matrix from scratch.
func BenchmarkTRRSRecomputeHop(b *testing.B) {
	s, w := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := NewEngine(s)
		sinkMatrix = e.BaseMatrixSerial(0, 2, w)
	}
}

var (
	sinkMatrix   *Matrix
	sinkMatrices []*Matrix
	sinkRows     [][]float64
)

// BenchmarkTRRSMatrixVector is the serial build with the opt-in vector
// (lag-sweep) kernel — AVX2+FMA assembly where supported.
func BenchmarkTRRSMatrixVector(b *testing.B) {
	s, w := benchFixture(b)
	e := NewEngine(s)
	e.SetKernel(KernelVector)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkMatrix = e.BaseMatrixSerial(0, 2, w)
	}
}

// BenchmarkTRRSMatrixUnrolled8 is the serial build with the 8-accumulator
// scalar kernel (the vector-shaped reference; measured slower than
// sequential on scalar FP ports — kept honest in BENCH_trrs.json).
func BenchmarkTRRSMatrixUnrolled8(b *testing.B) {
	s, w := benchFixture(b)
	e := NewEngine(s)
	e.SetKernel(KernelUnrolled8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkMatrix = e.BaseMatrixSerial(0, 2, w)
	}
}

// BenchmarkTRRSMatrixFloat32 is the serial build on float32 planes (the
// float32 sweep kernel: half the memory traffic, twice the lanes).
func BenchmarkTRRSMatrixFloat32(b *testing.B) {
	s, w := benchFixture(b)
	e := NewEnginePrecision(s, PrecisionFloat32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkMatrix = e.BaseMatrixSerial(0, 2, w)
	}
}

// bulkPairs is the three-distinct-pair workload of a linear array, with
// no symmetry shortcuts — the cross-pair batching benchmark set.
var bulkPairs = []PairSpec{{I: 0, J: 1}, {I: 0, J: 2}, {I: 1, J: 2}}

// BenchmarkTRRSMatricesPerPair is the pre-batching build shape: each pair
// built in its own single-pair pass (sequential kernel, one core) — the
// denominator of the batched-build speedup.
func BenchmarkTRRSMatricesPerPair(b *testing.B) {
	s, w := benchFixture(b)
	e := NewEngine(s)
	e.SetParallelism(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range bulkPairs {
			sinkMatrix = e.BaseMatrixSerial(p.I, p.J, w)
		}
	}
}

// BenchmarkTRRSMatricesBatched is the same three pairs through the
// cross-pair batched schedule (sequential kernel, one core) — isolates
// the layout/ordering effect from the kernel change.
func BenchmarkTRRSMatricesBatched(b *testing.B) {
	s, w := benchFixture(b)
	e := NewEngine(s)
	e.SetParallelism(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkMatrices = e.BaseMatrices(bulkPairs, w)
	}
}

// BenchmarkTRRSMatricesBatchedVector is the batched build with the vector
// kernel — the new fast path for bulk construction.
func BenchmarkTRRSMatricesBatchedVector(b *testing.B) {
	s, w := benchFixture(b)
	e := NewEngine(s)
	e.SetParallelism(1)
	e.SetKernel(KernelVector)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkMatrices = e.BaseMatrices(bulkPairs, w)
	}
}

// BenchmarkTRRSMatricesBatchedFloat32 is the batched build on float32
// planes.
func BenchmarkTRRSMatricesBatchedFloat32(b *testing.B) {
	s, w := benchFixture(b)
	e := NewEnginePrecision(s, PrecisionFloat32)
	e.SetParallelism(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkMatrices = e.BaseMatrices(bulkPairs, w)
	}
}

// BenchmarkTRRSIncrementalHopBatched is the steady-state hop refreshing
// all three pairs through the batched ExtendMatrices (Parallelism 1,
// zero allocs — see TestExtendMatricesAllocFree).
func BenchmarkTRRSIncrementalHopBatched(b *testing.B) {
	s, w := benchFixture(b)
	const hop = 50
	inc, err := NewIncremental(s.Rate, s.NumAnts, s.NumTx, w)
	if err != nil {
		b.Fatal(err)
	}
	inc.SetParallelism(1)
	snaps := make([][][][]complex128, s.NumSlots())
	for ti := range snaps {
		snaps[ti] = seriesSnapshot(s, ti)
	}
	for ti := 0; ti < s.NumSlots(); ti++ {
		if err := inc.Append(snaps[ti]); err != nil {
			b.Fatal(err)
		}
	}
	k := 0
	hopOnce := func() {
		for n := 0; n < hop; n++ {
			if err := inc.Append(snaps[k%len(snaps)]); err != nil {
				b.Fatal(err)
			}
			k++
		}
		inc.DropFront(hop)
		ms, err := inc.ExtendMatrices(bulkPairs)
		if err != nil {
			b.Fatal(err)
		}
		sinkMatrices = ms
	}
	for n := 0; n < 12; n++ {
		hopOnce()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hopOnce()
	}
}
