package trrs

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rim/internal/csi"
)

// Tests for the cross-pair batched build, the opt-in vector-shaped
// kernels, and float32 plane mode. The contracts, in order of strictness:
// the batched schedule is a pure reordering (bit-exact, pinned here and
// by the golden suites); the vector and unrolled8 kernels agree with the
// sequential kernel to 1e-12 relative; float32 planes agree with float64
// to 1e-5 relative at matrix level, with matched argmax lags on
// non-degenerate rows.

// requireTolerance asserts two matrices agree within rel relative
// tolerance, element-wise.
func requireTolerance(t *testing.T, name string, want, got *Matrix, rel float64) {
	t.Helper()
	if len(got.Vals) != len(want.Vals) {
		t.Fatalf("%s: %d slots, want %d", name, len(got.Vals), len(want.Vals))
	}
	for ti := range want.Vals {
		for c := range want.Vals[ti] {
			wv, gv := want.Vals[ti][c], got.Vals[ti][c]
			tol := rel * math.Max(math.Abs(wv), 1)
			if math.Abs(wv-gv) > tol {
				t.Fatalf("%s: [%d][%d] = %v, want %v (|diff| %g > %g)",
					name, ti, c, gv, wv, math.Abs(wv-gv), tol)
			}
		}
	}
}

// TestVectorKernelTolerance verifies the opt-in vector (lag-sweep) kernel
// against the sequential serial oracle at 1e-12 relative, over full
// matrices on random and walk CSI covering every tail class, and that the
// vector-kernel incremental engine is bit-identical to the vector-kernel
// batch engine.
func TestVectorKernelTolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	const w = 15
	for _, tc := range []struct {
		name string
		s    *csi.Series
	}{
		{"random30", randomSeries(rng, 3, 2, 30, 90)},
		{"random7", randomSeries(rng, 2, 1, 7, 60)}, // tones%4 != 0: masked tail
		{"walk", walkSeries(t, false)},
	} {
		seq := NewEngine(tc.s)
		vec := NewEngine(tc.s)
		vec.SetKernel(KernelVector)
		if vec.Kernel() != KernelVector {
			t.Fatal("SetKernel did not stick")
		}
		for _, pair := range [][2]int{{0, 1}, {1, 1}} {
			want := seq.BaseMatrixSerial(pair[0], pair[1], w)
			got := vec.BaseMatrixSerial(pair[0], pair[1], w)
			requireTolerance(t, tc.name+"-vector", want, got, 1e-12)
		}
		// Point queries fall back to the sequential kernel: bit-exact.
		if a, b := seq.Base(0, 1, 7, 3), vec.Base(0, 1, 7, 3); math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("%s: vector point query %x, want sequential %x", tc.name, b, a)
		}
	}

	s := randomSeries(rng, 3, 2, 30, 80)
	inc, err := NewIncremental(s.Rate, s.NumAnts, s.NumTx, w)
	if err != nil {
		t.Fatal(err)
	}
	inc.SetKernel(KernelVector)
	inc.SetParallelism(1)
	for ti := 0; ti < s.NumSlots(); ti++ {
		if err := inc.Append(seriesSnapshot(s, ti)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := inc.ExtendMatrix(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	vec := NewEngine(s)
	vec.SetKernel(KernelVector)
	requireIdentical(t, "incremental-vector", vec.BaseMatrixSerial(0, 2, w), got)
}

// TestUnrolled8KernelTolerance verifies the 8-accumulator kernel at the
// same 1e-12 relative gate.
func TestUnrolled8KernelTolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	const w = 12
	for _, tc := range []struct {
		name string
		s    *csi.Series
	}{
		{"random30", randomSeries(rng, 3, 2, 30, 70)},
		{"random13", randomSeries(rng, 2, 1, 13, 50)}, // tones%8 != 0: scalar tail
	} {
		seq := NewEngine(tc.s)
		unr := NewEngine(tc.s)
		unr.SetKernel(KernelUnrolled8)
		want := seq.BaseMatrixSerial(0, 1, w)
		got := unr.BaseMatrixSerial(0, 1, w)
		requireTolerance(t, tc.name+"-unrolled8", want, got, 1e-12)
	}
}

// TestKernelPrecisionParseRoundTrip pins the flag-string surface: every
// selector round-trips through Parse(String()), and junk is rejected.
func TestKernelPrecisionParseRoundTrip(t *testing.T) {
	for _, k := range []Kernel{KernelSequential, KernelUnrolled4, KernelUnrolled8, KernelVector} {
		got, err := ParseKernel(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseKernel(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKernel("simd9000"); err == nil {
		t.Fatal("ParseKernel must reject unknown names")
	}
	if k, err := ParseKernel(""); err != nil || k != KernelSequential {
		t.Fatal("empty kernel must default to sequential")
	}
	for _, p := range []Precision{PrecisionFloat64, PrecisionFloat32} {
		got, err := ParsePrecision(p.String())
		if err != nil || got != p {
			t.Fatalf("ParsePrecision(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePrecision("float16"); err == nil {
		t.Fatal("ParsePrecision must reject unknown names")
	}
	if p, err := ParsePrecision("f32"); err != nil || p != PrecisionFloat32 {
		t.Fatal("f32 shorthand must parse")
	}
}

// TestPrecisionFloat32Property is the testing/quick property suite of the
// float32 plane mode: on random CSI the float32 engine's base matrix
// agrees with the float64 engine's to 1e-5 relative, and on rows whose
// peak is non-degenerate (clear of its runner-up by more than twice the
// tolerance) both engines pick the same argmax lag.
func TestPrecisionFloat32Property(t *testing.T) {
	const w = 8
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSeries(rng, 2, 2, 30, 40)
		e64 := NewEngine(s)
		e32 := NewEnginePrecision(s, PrecisionFloat32)
		if e32.Precision() != PrecisionFloat32 {
			return false
		}
		m64 := e64.BaseMatrixSerial(0, 1, w)
		m32 := e32.BaseMatrixSerial(0, 1, w)
		for ti := range m64.Vals {
			row64, row32 := m64.Vals[ti], m32.Vals[ti]
			best, second, bi := -1.0, -1.0, 0
			for c := range row64 {
				tol := 1e-5 * math.Max(math.Abs(row64[c]), 1)
				if math.Abs(row64[c]-row32[c]) > tol {
					return false
				}
				if row64[c] > best {
					best, second, bi = row64[c], best, c
				} else if row64[c] > second {
					second = row64[c]
				}
			}
			// Non-degenerate peak: the float32 row must elect the same lag.
			if best-second > 2e-5*math.Max(best, 1) {
				b32, bi32 := -1.0, 0
				for c, v := range row32 {
					if v > b32 {
						b32, bi32 = v, c
					}
				}
				if bi32 != bi {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestPrecisionFloat32Incremental pins the float32 incremental engine to
// the float32 batch engine bit for bit (same arithmetic, different
// bookkeeping), through a slide with head drops.
func TestPrecisionFloat32Incremental(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	s := randomSeries(rng, 3, 2, 30, 120)
	const w = 10
	inc, err := NewIncrementalPrecision(s.Rate, s.NumAnts, s.NumTx, w, PrecisionFloat32)
	if err != nil {
		t.Fatal(err)
	}
	if inc.Precision() != PrecisionFloat32 {
		t.Fatal("precision did not stick")
	}
	inc.SetParallelism(1)
	next, start := 0, 0
	for _, step := range []struct{ app, drop int }{{60, 0}, {30, 25}, {30, 28}} {
		for k := 0; k < step.app; k++ {
			if err := inc.Append(seriesSnapshot(s, next)); err != nil {
				t.Fatal(err)
			}
			next++
		}
		inc.DropFront(step.drop)
		start += step.drop
		got, err := inc.ExtendMatrix(0, 2)
		if err != nil {
			t.Fatal(err)
		}
		oracle := windowEngine32(s, start, next)
		requireIdentical(t, "incremental-f32", oracle.BaseMatrixSerial(0, 2, w), got)
		// EngineView must expose the float32 planes for point queries.
		view, err := inc.EngineView(nil)
		if err != nil {
			t.Fatal(err)
		}
		a, b := view.Base(0, 2, 3, 1), oracle.Base(0, 2, 3, 1)
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("f32 view Base %x, want %x", a, b)
		}
	}
}

// windowEngine32 is windowEngine at float32 precision.
func windowEngine32(s *csi.Series, from, to int) *Engine {
	sub := &csi.Series{
		Rate:    s.Rate,
		NumAnts: s.NumAnts,
		NumTx:   s.NumTx,
		NumSub:  s.NumSub,
		H:       make([][][][]complex128, s.NumAnts),
	}
	for a := 0; a < s.NumAnts; a++ {
		sub.H[a] = make([][][]complex128, s.NumTx)
		for tx := 0; tx < s.NumTx; tx++ {
			sub.H[a][tx] = s.H[a][tx][from:to]
		}
	}
	return NewEnginePrecision(sub, PrecisionFloat32)
}

// TestExtendMatricesMatchesPerPair drives two identical Incrementals
// through the Streamer's hop pattern, refreshing one with the batched
// ExtendMatrices and the other pair by pair, and requires bit-identical
// matrices at every hop — plus the serial batch oracle over the window.
// Also covers the fast path (repeat call returns the same matrices) and
// duplicate pairs in the request.
func TestExtendMatricesMatchesPerPair(t *testing.T) {
	s := walkSeries(t, false)
	const w = 12
	mk := func() *Incremental {
		inc, err := NewIncremental(s.Rate, s.NumAnts, s.NumTx, w)
		if err != nil {
			t.Fatal(err)
		}
		inc.SetParallelism(1)
		return inc
	}
	batched, perPair := mk(), mk()
	pairs := []PairSpec{{I: 0, J: 1}, {I: 0, J: 2}, {I: 1, J: 2}, {I: 0, J: 1}} // duplicate on purpose
	next, start := 0, 0
	for _, step := range []struct{ app, drop int }{{80, 0}, {25, 25}, {25, 25}, {10, 40}} {
		for k := 0; k < step.app && next < s.NumSlots(); k++ {
			snap := seriesSnapshot(s, next)
			if err := batched.Append(snap); err != nil {
				t.Fatal(err)
			}
			if err := perPair.Append(snap); err != nil {
				t.Fatal(err)
			}
			next++
		}
		batched.DropFront(step.drop)
		perPair.DropFront(step.drop)
		start += step.drop
		if start > next {
			start = next
		}

		got, err := batched.ExtendMatrices(pairs)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(pairs) {
			t.Fatalf("ExtendMatrices returned %d matrices for %d pairs", len(got), len(pairs))
		}
		oracle := windowEngine(s, start, next)
		for k, p := range pairs {
			want, err := perPair.ExtendMatrix(p.I, p.J)
			if err != nil {
				t.Fatal(err)
			}
			requireIdentical(t, "batched-vs-perpair", want, got[k])
			requireIdentical(t, "batched-vs-oracle", oracle.BaseMatrixSerial(p.I, p.J, w), got[k])
		}
		if got[0] != got[3] {
			t.Fatal("duplicate pair must share one matrix")
		}
		// Unchanged window: the fast path returns the same matrices.
		again, err := batched.ExtendMatrices(pairs[:3])
		if err != nil {
			t.Fatal(err)
		}
		for k := range again {
			if again[k] != got[k] {
				t.Fatalf("fast path rebuilt matrix %d", k)
			}
		}
	}

	// Out-of-range pair reports an error.
	if _, err := batched.ExtendMatrices([]PairSpec{{I: 0, J: 99}}); err == nil {
		t.Fatal("out-of-range pair must error")
	}
}
