package trrs

import (
	"math"
	"math/rand"
	"testing"

	"rim/internal/csi"
	"rim/internal/sigproc"
)

// aosRef is an independent reference implementation of the TRRS engine in
// the seed's array-of-structs layout: per-slot []complex128 vectors
// normalized by sigproc.Normalize, κ̄ evaluated with sigproc.InnerProduct.
// The SoA engine's default kernel must reproduce it bit for bit — this
// pins the layout conversion to the original arithmetic independently of
// the golden suites (which compare SoA paths against each other).
type aosRef struct {
	norm  [][][][]complex128
	slots int
	numTx int
}

func newAoSRef(s *csi.Series, amplitude bool) *aosRef {
	r := &aosRef{slots: s.NumSlots(), numTx: s.NumTx, norm: make([][][][]complex128, s.NumAnts)}
	for a := 0; a < s.NumAnts; a++ {
		r.norm[a] = make([][][]complex128, s.NumTx)
		for tx := 0; tx < s.NumTx; tx++ {
			r.norm[a][tx] = make([][]complex128, r.slots)
			for t := 0; t < r.slots; t++ {
				src := s.H[a][tx][t]
				v := make([]complex128, len(src))
				if amplitude {
					for k, c := range src {
						re, im := real(c), imag(c)
						v[k] = complex(math.Sqrt(re*re+im*im), 0)
					}
				} else {
					copy(v, src)
				}
				sigproc.Normalize(v)
				r.norm[a][tx][t] = v
			}
		}
	}
	return r
}

func (r *aosRef) base(i, j, ti, tj int) float64 {
	if ti < 0 || tj < 0 || ti >= r.slots || tj >= r.slots {
		return 0
	}
	var sum float64
	for tx := 0; tx < r.numTx; tx++ {
		ip := sigproc.InnerProduct(r.norm[i][tx][ti], r.norm[j][tx][tj])
		re, im := real(ip), imag(ip)
		sum += re*re + im*im
	}
	return sum / float64(r.numTx)
}

func (r *aosRef) matrix(i, j, w int) [][]float64 {
	out := make([][]float64, r.slots)
	for t := range out {
		row := make([]float64, 2*w+1)
		for c := range row {
			tj := t - (c - w)
			if tj >= 0 && tj < r.slots {
				row[c] = r.base(i, j, t, tj)
			}
		}
		out[t] = row
	}
	return out
}

// requireMatrixBits asserts a Matrix matches reference rows bit for bit.
func requireMatrixBits(t *testing.T, name string, want [][]float64, got *Matrix) {
	t.Helper()
	if len(got.Vals) != len(want) {
		t.Fatalf("%s: %d slots, want %d", name, len(got.Vals), len(want))
	}
	for ti := range want {
		for c := range want[ti] {
			w, g := want[ti][c], got.Vals[ti][c]
			if math.Float64bits(w) != math.Float64bits(g) {
				t.Fatalf("%s: [%d][%d] = %x, want %x (must be bit-identical)",
					name, ti, c, math.Float64bits(g), math.Float64bits(w))
			}
		}
	}
}

// TestSoAEngineMatchesSeedArithmetic pins the SoA engine's default kernel
// to the seed's []complex128 arithmetic, bit for bit: full base matrices
// (including self-pairs, exercising the half-band reflection), point Base
// queries including out-of-range slots, and the amplitude-ablation
// normalization.
func TestSoAEngineMatchesSeedArithmetic(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, tc := range []struct {
		name string
		s    *csi.Series
	}{
		{"random", randomSeries(rng, 3, 2, 30, 120)},
		{"walk", walkSeries(t, false)},
	} {
		ref := newAoSRef(tc.s, false)
		e := NewEngine(tc.s)
		w := 20
		for _, pair := range [][2]int{{0, 2}, {2, 0}, {1, 1}} {
			got := e.BaseMatrixSerial(pair[0], pair[1], w)
			want := ref.matrix(pair[0], pair[1], w)
			requireMatrixBits(t, tc.name, want, got)
		}
		for _, q := range [][4]int{{0, 1, 0, 0}, {1, 0, 5, 17}, {0, 2, 119, 3}, {0, 1, -1, 4}, {0, 1, 4, tc.s.NumSlots()}} {
			want := ref.base(q[0], q[1], q[2], q[3])
			got := e.Base(q[0], q[1], q[2], q[3])
			if math.Float64bits(want) != math.Float64bits(got) {
				t.Fatalf("%s: Base%v = %x, want %x", tc.name, q, math.Float64bits(got), math.Float64bits(want))
			}
		}
	}

	s := randomSeries(rng, 2, 2, 16, 40)
	ampRef := newAoSRef(s, true)
	ampEng := NewAmplitudeEngine(s)
	for ti := 0; ti < 40; ti += 7 {
		for tj := 0; tj < 40; tj += 5 {
			want := ampRef.base(0, 1, ti, tj)
			got := ampEng.Base(0, 1, ti, tj)
			if math.Float64bits(want) != math.Float64bits(got) {
				t.Fatalf("amplitude: Base(0,1,%d,%d) = %x, want %x", ti, tj, math.Float64bits(got), math.Float64bits(want))
			}
		}
	}
}

// TestUnrolledKernelTolerance verifies the opt-in unrolled kernel against
// the sequential serial oracle to 1e-12 relative tolerance, over full
// matrices on random and simulated-walk CSI (tone counts 30 and covering
// the remainder loop), and that the unrolled incremental engine is
// bit-identical to the unrolled batch engine (same arithmetic, different
// bookkeeping).
func TestUnrolledKernelTolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	const w = 15
	for _, tc := range []struct {
		name string
		s    *csi.Series
	}{
		{"random30", randomSeries(rng, 3, 2, 30, 90)},
		{"random7", randomSeries(rng, 2, 1, 7, 60)}, // tones%4 != 0: remainder tail
		{"walk", walkSeries(t, false)},
	} {
		seq := NewEngine(tc.s)
		unr := NewEngine(tc.s)
		unr.SetKernel(KernelUnrolled4)
		if unr.Kernel() != KernelUnrolled4 {
			t.Fatal("SetKernel did not stick")
		}
		want := seq.BaseMatrixSerial(0, 1, w)
		got := unr.BaseMatrixSerial(0, 1, w)
		for ti := range want.Vals {
			for c := range want.Vals[ti] {
				wv, gv := want.Vals[ti][c], got.Vals[ti][c]
				tol := 1e-12 * math.Max(math.Abs(wv), 1)
				if math.Abs(wv-gv) > tol {
					t.Fatalf("%s: [%d][%d] unrolled %v vs sequential %v (|diff| %g > %g)",
						tc.name, ti, c, gv, wv, math.Abs(wv-gv), tol)
				}
			}
		}
	}

	// Incremental with the unrolled kernel: bit-identical to the unrolled
	// batch engine over the same window.
	s := randomSeries(rng, 3, 2, 30, 80)
	inc, err := NewIncremental(s.Rate, s.NumAnts, s.NumTx, w)
	if err != nil {
		t.Fatal(err)
	}
	inc.SetKernel(KernelUnrolled4)
	if inc.Kernel() != KernelUnrolled4 {
		t.Fatal("Incremental.SetKernel did not stick")
	}
	inc.SetParallelism(1)
	for ti := 0; ti < s.NumSlots(); ti++ {
		if err := inc.Append(seriesSnapshot(s, ti)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := inc.ExtendMatrix(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	unr := NewEngine(s)
	unr.SetKernel(KernelUnrolled4)
	requireIdentical(t, "incremental-unrolled", unr.BaseMatrixSerial(0, 2, w), got)
}

// TestKernelString covers the Stringer (used in bench/report labels).
func TestKernelString(t *testing.T) {
	if KernelSequential.String() != "sequential" || KernelUnrolled4.String() != "unrolled4" {
		t.Fatalf("kernel names drifted: %v, %v", KernelSequential, KernelUnrolled4)
	}
	if Kernel(9).String() == "" {
		t.Fatal("unknown kernel must still render")
	}
}
