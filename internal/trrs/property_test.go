package trrs

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rim/internal/csi"
)

// randomSeries builds a Series with random complex CSI.
func randomSeries(rng *rand.Rand, ants, tx, sub, slots int) *csi.Series {
	s := &csi.Series{
		Rate: 100, NumAnts: ants, NumTx: tx, NumSub: sub,
		H:       make([][][][]complex128, ants),
		Missing: make([][]bool, ants),
	}
	for a := 0; a < ants; a++ {
		s.H[a] = make([][][]complex128, tx)
		s.Missing[a] = make([]bool, slots)
		for t := 0; t < tx; t++ {
			s.H[a][t] = make([][]complex128, slots)
			for sl := 0; sl < slots; sl++ {
				v := make([]complex128, sub)
				for k := range v {
					v[k] = complex(rng.NormFloat64(), rng.NormFloat64())
				}
				s.H[a][t][sl] = v
			}
		}
	}
	return s
}

// Property: the TRRS (Eq. 3) always lies in [0, 1] and equals 1 on the
// diagonal, for arbitrary CSI.
func TestBaseRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSeries(rng, 2, 2, 8, 6)
		e := NewEngine(s)
		for ti := 0; ti < 6; ti++ {
			for tj := 0; tj < 6; tj++ {
				k := e.Base(0, 1, ti, tj)
				if k < -1e-12 || k > 1+1e-9 {
					return false
				}
			}
			if d := e.Base(0, 0, ti, ti); d < 1-1e-9 || d > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: TRRS is invariant to a global complex scaling of either
// snapshot (the |·| in Eq. 2 and normalization remove gain and phase).
func TestBaseScaleInvarianceProperty(t *testing.T) {
	f := func(seed int64, reRaw, imRaw int8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSeries(rng, 2, 1, 8, 2)
		e1 := NewEngine(s)
		k1 := e1.Base(0, 1, 0, 1)
		// Scale antenna 0's snapshot by an arbitrary non-zero complex.
		c := complex(float64(reRaw)/16+2, float64(imRaw)/16)
		for k := range s.H[0][0][0] {
			s.H[0][0][0][k] *= c
		}
		e2 := NewEngine(s)
		k2 := e2.Base(0, 1, 0, 1)
		return absf(k1-k2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Property: virtual-massive averaging preserves the [0, 1] range and the
// average of averages equals the average of the underlying values (the box
// filter is linear).
func TestVirtualMassiveRangeProperty(t *testing.T) {
	f := func(seed int64, vRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSeries(rng, 2, 1, 6, 12)
		e := NewEngine(s)
		base := e.BaseMatrix(0, 1, 4)
		v := 1 + int(vRaw%10)
		boosted, err := VirtualMassive(base, v)
		if err != nil {
			return false
		}
		for _, row := range boosted.Vals {
			for _, val := range row {
				if val < -1e-12 || val > 1+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: AverageMatrices of k copies of one matrix is that matrix.
func TestAverageIdempotentProperty(t *testing.T) {
	f := func(seed int64, copies uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSeries(rng, 2, 1, 6, 8)
		e := NewEngine(s)
		m := e.BaseMatrix(0, 1, 3)
		n := 1 + int(copies%4)
		ms := make([]*Matrix, n)
		for i := range ms {
			ms[i] = m
		}
		avg, err := AverageMatrices(ms...)
		if err != nil {
			return false
		}
		for t1 := range m.Vals {
			for c := range m.Vals[t1] {
				if absf(avg.Vals[t1][c]-m.Vals[t1][c]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: the amplitude engine is invariant to per-snapshot phase ramps
// (it discards phase entirely).
func TestAmplitudeEnginePhaseBlindProperty(t *testing.T) {
	f := func(seed int64, slope int8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSeries(rng, 1, 1, 10, 2)
		k1 := NewAmplitudeEngine(s).Base(0, 0, 0, 1)
		// Rotate every tone of snapshot 1 by a tone-dependent phase.
		sl := float64(slope) / 40
		for k := range s.H[0][0][1] {
			ph := complex(0, sl*float64(k))
			s.H[0][0][1][k] *= cexp(ph)
		}
		k2 := NewAmplitudeEngine(s).Base(0, 0, 0, 1)
		return absf(k1-k2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func cexp(z complex128) complex128 {
	// exp(i·im) with re(z)=0
	s, c := math.Sincos(imag(z))
	return complex(c, s)
}
