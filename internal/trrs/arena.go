package trrs

import (
	"fmt"

	"rim/internal/sigproc"
)

// MatrixArena recycles the flat backings of derived matrices — the
// virtual-massive and pair-averaged matrices a streaming hop builds and
// discards every 500 ms. A hop takes an arena (core keeps them in a
// sync.Pool shared across streamers), Resets it, and routes its
// VirtualMassiveInto/AverageMatricesInto calls through it; matrices
// produced since the Reset stay valid until the next Reset, which
// reclaims all of them at once. The zero value is ready to use. An arena
// is not goroutine-safe; it serves one hop at a time.
type MatrixArena struct {
	free []*arenaSlab
	used []*arenaSlab
}

// arenaSlab is one reusable matrix backing plus its header, so a recycled
// matrix allocates nothing at all.
type arenaSlab struct {
	flat []float64
	rows [][]float64
	hdr  Matrix
}

// Reset reclaims every matrix handed out since the previous Reset. The
// caller must have dropped all references to them.
func (a *MatrixArena) Reset() {
	if a == nil {
		return
	}
	a.free = append(a.free, a.used...)
	a.used = a.used[:0]
}

// Bytes reports the total backing size held by the arena, for the
// scratch-pool gauge.
func (a *MatrixArena) Bytes() int {
	if a == nil {
		return 0
	}
	n := 0
	for _, s := range a.free {
		n += cap(s.flat) * 8
	}
	for _, s := range a.used {
		n += cap(s.flat) * 8
	}
	return n
}

// matrix returns a slots×(2w+1) matrix backed by a recycled slab when one
// is large enough (hop geometry is uniform, so after warm-up every
// request hits), else by a fresh allocation that joins the arena. The
// returned values are NOT zeroed; every caller fully overwrites them. A
// nil arena degenerates to plain allocation.
func (a *MatrixArena) matrix(i, j, w, slots int, rate float64) *Matrix {
	width := 2*w + 1
	if a == nil {
		m := &Matrix{I: i, J: j, W: w, Rate: rate}
		m.Vals = make([][]float64, slots)
		flat := make([]float64, slots*width)
		for t := 0; t < slots; t++ {
			m.Vals[t] = flat[t*width : (t+1)*width]
		}
		return m
	}
	var slab *arenaSlab
	for k := len(a.free) - 1; k >= 0; k-- {
		s := a.free[k]
		if cap(s.flat) >= slots*width && cap(s.rows) >= slots {
			last := len(a.free) - 1
			a.free[k] = a.free[last]
			a.free = a.free[:last]
			slab = s
			break
		}
	}
	if slab == nil {
		slab = &arenaSlab{
			flat: make([]float64, slots*width),
			rows: make([][]float64, slots),
		}
	}
	a.used = append(a.used, slab)
	flat := slab.flat[:slots*width]
	rows := slab.rows[:slots]
	for t := 0; t < slots; t++ {
		rows[t] = flat[t*width : (t+1)*width]
	}
	slab.flat, slab.rows = flat, rows
	slab.hdr = Matrix{I: i, J: j, W: w, Rate: rate, Vals: rows}
	return &slab.hdr
}

// VirtualMassiveInto is VirtualMassive allocating the result from the
// arena (nil arena = plain allocation, exactly VirtualMassive).
func VirtualMassiveInto(a *MatrixArena, base *Matrix, v int) (*Matrix, error) {
	if base == nil {
		return nil, fmt.Errorf("trrs: VirtualMassive of nil matrix")
	}
	if base.W < 0 {
		return nil, fmt.Errorf("trrs: VirtualMassive matrix has negative window W=%d", base.W)
	}
	width := 2*base.W + 1
	for t, row := range base.Vals {
		if len(row) != width {
			return nil, fmt.Errorf("trrs: VirtualMassive matrix row %d has %d columns, want 2W+1 = %d",
				t, len(row), width)
		}
	}
	out := a.matrix(base.I, base.J, base.W, len(base.Vals), base.Rate)
	// BoxFilterColumns fully overwrites dst, so a recycled dirty backing
	// is safe.
	sigproc.BoxFilterColumns(out.Vals, base.Vals, v/2)
	return out, nil
}

// AverageMatricesInto is AverageMatrices allocating the result from the
// arena (nil arena = plain allocation, exactly AverageMatrices).
func AverageMatricesInto(a *MatrixArena, ms ...*Matrix) (*Matrix, error) {
	if len(ms) == 0 {
		return nil, fmt.Errorf("trrs: AverageMatrices of no matrices")
	}
	first := ms[0]
	if first == nil {
		return nil, fmt.Errorf("trrs: AverageMatrices input 0 is nil")
	}
	slots := len(first.Vals)
	width := 2*first.W + 1
	for k, m := range ms {
		switch {
		case m == nil:
			return nil, fmt.Errorf("trrs: AverageMatrices input %d is nil", k)
		case m.W != first.W:
			return nil, fmt.Errorf("trrs: AverageMatrices window mismatch: input %d has W=%d, input 0 has W=%d",
				k, m.W, first.W)
		case m.Rate != first.Rate:
			return nil, fmt.Errorf("trrs: AverageMatrices rate mismatch: input %d has %v Hz, input 0 has %v Hz",
				k, m.Rate, first.Rate)
		case len(m.Vals) != slots:
			return nil, fmt.Errorf("trrs: AverageMatrices slot-count mismatch: input %d has %d slots, input 0 has %d",
				k, len(m.Vals), slots)
		}
		for t, row := range m.Vals {
			if len(row) != width {
				return nil, fmt.Errorf("trrs: AverageMatrices input %d row %d has %d columns, want 2W+1 = %d",
					k, t, len(row), width)
			}
		}
	}
	out := a.matrix(first.I, first.J, first.W, slots, first.Rate)
	inv := 1 / float64(len(ms))
	for t := 0; t < slots; t++ {
		row := out.Vals[t]
		// The backing may be recycled and dirty: initialize by copy of the
		// first input, then accumulate the rest.
		copy(row, ms[0].Vals[t])
		for _, m := range ms[1:] {
			src := m.Vals[t]
			for c := 0; c < width; c++ {
				row[c] += src[c]
			}
		}
		for c := 0; c < width; c++ {
			row[c] *= inv
		}
	}
	return out, nil
}
