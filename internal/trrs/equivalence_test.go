package trrs

import (
	"math/rand"
	"testing"

	"rim/internal/array"
	"rim/internal/csi"
	"rim/internal/faults"
	"rim/internal/geom"
	"rim/internal/rf"
	"rim/internal/traj"
)

// The golden-equivalence suite: the parallel worker pool and the
// incremental engine must reproduce the serial oracle (BaseMatrixSerial)
// element-wise EXACTLY — same bits, not just within tolerance — on random
// CSI, on simulated walks, and on fault-degraded inputs. Any drift here
// means the fast paths are computing different math, not just faster math.

// requireIdentical asserts two matrices are bitwise equal.
func requireIdentical(t *testing.T, name string, want, got *Matrix) {
	t.Helper()
	if got.W != want.W || got.Rate != want.Rate {
		t.Fatalf("%s: metadata mismatch: W %d vs %d, Rate %v vs %v",
			name, got.W, want.W, got.Rate, want.Rate)
	}
	if len(got.Vals) != len(want.Vals) {
		t.Fatalf("%s: %d slots, want %d", name, len(got.Vals), len(want.Vals))
	}
	for ti := range want.Vals {
		if len(got.Vals[ti]) != len(want.Vals[ti]) {
			t.Fatalf("%s: row %d has %d cols, want %d", name, ti, len(got.Vals[ti]), len(want.Vals[ti]))
		}
		for c := range want.Vals[ti] {
			if got.Vals[ti][c] != want.Vals[ti][c] {
				t.Fatalf("%s: [%d][%d] = %v, want %v (must be bit-identical)",
					name, ti, c, got.Vals[ti][c], want.Vals[ti][c])
			}
		}
	}
}

// walkSeries acquires a simulated stop-and-go walk, optionally with the
// PR 1 fault model layered on (bursty loss + a degraded antenna), so the
// equivalence check covers Missing-masked and fault-stressed inputs.
func walkSeries(t *testing.T, faulty bool) *csi.Series {
	t.Helper()
	arr := array.NewLinear3(0.029)
	b := traj.NewBuilder(100, geom.Pose{Pos: geom.Vec2{X: 10, Y: 0}})
	b.Pause(0.3)
	b.MoveDir(0, 0.4, 0.4)
	b.Pause(0.3)
	rcv := csi.RealisticReceiver(7)
	if faulty {
		rcv.Faults = &faults.Model{
			Loss: faults.NewGilbertElliott(0.15, 4),
			Dropouts: []faults.Dropout{
				{Antenna: 1, Start: 0.4, End: 0.7},
			},
			Seed: 99,
		}
	}
	env := rf.NewEnvironment(rf.FastConfig(), geom.Vec2{}, geom.Vec2{X: 10, Y: 0}, nil)
	s, err := csi.Collect(env, arr, b.Build(), rcv).Process(true)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestGoldenParallelEqualsSerialRandom(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		rng := rand.New(rand.NewSource(seed))
		s := randomSeries(rng, 3, 2, 16, 70)
		e := NewEngine(s)
		for _, par := range []int{0, 2, 3, 7} {
			e.SetParallelism(par)
			for _, w := range []int{3, 11, 80} { // w > slots exercises clipping
				want := e.BaseMatrixSerial(0, 2, w)
				requireIdentical(t, "parallel", want, e.BaseMatrix(0, 2, w))
			}
		}
	}
}

func TestGoldenParallelEqualsSerialWalk(t *testing.T) {
	for _, faulty := range []bool{false, true} {
		s := walkSeries(t, faulty)
		e := NewEngine(s)
		e.SetParallelism(4)
		pairs := []PairSpec{{I: 0, J: 1}, {I: 0, J: 2}, {I: 1, J: 2}}
		ms := e.BaseMatrices(pairs, 25)
		for k, p := range pairs {
			want := e.BaseMatrixSerial(p.I, p.J, 25)
			requireIdentical(t, "bulk walk", want, ms[k])
		}
	}
}

func TestGoldenAmplitudeEngineParallel(t *testing.T) {
	s := walkSeries(t, false)
	e := NewAmplitudeEngine(s)
	e.SetParallelism(3)
	requireIdentical(t, "amplitude", e.BaseMatrixSerial(0, 2, 15), e.BaseMatrix(0, 2, 15))
}

// seriesSnapshot extracts slot ti of a series in Streamer push shape.
func seriesSnapshot(s *csi.Series, ti int) [][][]complex128 {
	snap := make([][][]complex128, s.NumAnts)
	for a := 0; a < s.NumAnts; a++ {
		snap[a] = make([][]complex128, s.NumTx)
		for tx := 0; tx < s.NumTx; tx++ {
			snap[a][tx] = s.H[a][tx][ti]
		}
	}
	return snap
}

// windowEngine builds a batch engine over the sub-series [from, to) —
// the serial oracle for an incremental window.
func windowEngine(s *csi.Series, from, to int) *Engine {
	sub := &csi.Series{
		Rate:    s.Rate,
		NumAnts: s.NumAnts,
		NumTx:   s.NumTx,
		NumSub:  s.NumSub,
		H:       make([][][][]complex128, s.NumAnts),
	}
	for a := 0; a < s.NumAnts; a++ {
		sub.H[a] = make([][][]complex128, s.NumTx)
		for tx := 0; tx < s.NumTx; tx++ {
			sub.H[a][tx] = s.H[a][tx][from:to]
		}
	}
	return NewEngine(sub)
}

// TestGoldenIncrementalEqualsSerial drives an Incremental through a
// schedule of appends and front drops (the Streamer's access pattern) and
// asserts that after every step the maintained matrices are bit-identical
// to a serial batch engine built over exactly the current window.
func TestGoldenIncrementalEqualsSerial(t *testing.T) {
	for _, faulty := range []bool{false, true} {
		s := walkSeries(t, faulty)
		const w = 12
		inc, err := NewIncremental(s.Rate, s.NumAnts, s.NumTx, w)
		if err != nil {
			t.Fatal(err)
		}
		inc.SetParallelism(2)
		pairs := [][2]int{{0, 1}, {0, 2}, {1, 2}}
		start, next := 0, 0
		// Alternating appends and drops, with matrix queries interleaved
		// (including steps with no query, so a later query must catch up
		// across several invalidations at once).
		steps := []struct {
			app, drop int
			query     bool
		}{
			{app: 5, query: true},
			{app: 30, query: true},
			{app: 7, query: false},
			{app: 20, drop: 15, query: true},
			{app: 3, drop: 40, query: true}, // drop more than W past last query
			{app: 25, query: false},
			{app: 10, drop: 9, query: true},
			{drop: 5, query: true}, // drop-only step
		}
		for si, step := range steps {
			for k := 0; k < step.app && next < s.NumSlots(); k++ {
				if err := inc.Append(seriesSnapshot(s, next)); err != nil {
					t.Fatal(err)
				}
				next++
			}
			inc.DropFront(step.drop)
			start += step.drop
			if start > next {
				start = next
			}
			if !step.query {
				continue
			}
			oracle := windowEngine(s, start, next)
			for _, p := range pairs {
				got, err := inc.ExtendMatrix(p[0], p[1])
				if err != nil {
					t.Fatal(err)
				}
				want := oracle.BaseMatrixSerial(p[0], p[1], w)
				requireIdentical(t, "incremental step", want, got)
				_ = si
			}
		}
	}
}

// TestGoldenEngineViewEqualsSubsetSeries checks the degraded-antenna
// fallback path: an EngineView over a surviving-antenna subset must match
// a batch engine built over the subset series (what the recompute oracle
// analyzes after a dead-antenna fallback).
func TestGoldenEngineViewEqualsSubsetSeries(t *testing.T) {
	s := walkSeries(t, true)
	const w = 10
	inc, err := NewIncremental(s.Rate, s.NumAnts, s.NumTx, w)
	if err != nil {
		t.Fatal(err)
	}
	for ti := 0; ti < s.NumSlots(); ti++ {
		if err := inc.Append(seriesSnapshot(s, ti)); err != nil {
			t.Fatal(err)
		}
	}
	alive := []int{0, 2} // antenna 1 had the dropout
	view, err := inc.EngineView(alive)
	if err != nil {
		t.Fatal(err)
	}
	sub := &csi.Series{
		Rate: s.Rate, NumAnts: len(alive), NumTx: s.NumTx, NumSub: s.NumSub,
		H: make([][][][]complex128, len(alive)),
	}
	for k, a := range alive {
		sub.H[k] = s.H[a]
	}
	oracle := NewEngine(sub)
	requireIdentical(t, "subset view", oracle.BaseMatrixSerial(0, 1, w), view.BaseMatrixSerial(0, 1, w))
	// And the incremental matrix for the absolute pair matches too.
	got, err := inc.ExtendMatrix(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := oracle.BaseMatrixSerial(0, 1, w)
	if got.Vals[20][w] != want.Vals[20][w] {
		t.Fatalf("absolute-pair matrix disagrees with subset oracle: %v vs %v",
			got.Vals[20][w], want.Vals[20][w])
	}
}
