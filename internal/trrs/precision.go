package trrs

import (
	"fmt"

	"rim/internal/csi"
	"rim/internal/sigproc"
)

// Precision selects the storage precision of the engine's CSI planes.
//
// The default float64 planes preserve the seed arithmetic bit for bit.
// Float32 plane mode halves the memory traffic of every lag sweep and
// doubles the SIMD lane count of the vector kernels; the price is ~1e-7
// relative error per inner product. CSI is converted to float32 once at
// ingest (constructor or Append) and never per query; TRRS values,
// matrices and everything downstream stay float64. Matrix-level agreement
// with the float64 engine is pinned at 1e-5 relative by the precision
// property suite, and the end-to-end distance/heading drift on golden
// walks is bounded by the core error-budget test (see DESIGN.md, "TRRS
// kernel" for the measured budget).
type Precision uint8

const (
	// PrecisionFloat64 (the default) stores CSI as float64 planes:
	// bit-for-bit the seed arithmetic under KernelSequential.
	PrecisionFloat64 Precision = iota
	// PrecisionFloat32 stores CSI as float32 planes, converted at ingest.
	// Row fills always run through the float32 lag-sweep kernels (8 AVX2
	// lanes where supported); point queries use the scalar float32 kernel.
	PrecisionFloat32
)

// String implements fmt.Stringer.
func (p Precision) String() string {
	switch p {
	case PrecisionFloat64:
		return "float64"
	case PrecisionFloat32:
		return "float32"
	default:
		return fmt.Sprintf("precision(%d)", uint8(p))
	}
}

// ParsePrecision converts a precision name (as printed by
// Precision.String) back to the selector — the flag-parsing hook for
// rimtrack/rimserved/rimbench.
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "float64", "f64", "":
		return PrecisionFloat64, nil
	case "float32", "f32":
		return PrecisionFloat32, nil
	default:
		return 0, fmt.Errorf("trrs: unknown precision %q (want float64 or float32)", s)
	}
}

// Precision returns the engine's plane precision.
func (e *Engine) Precision() Precision { return e.prec }

// NewEnginePrecision is NewEngine with an explicit plane precision.
// PrecisionFloat64 is exactly NewEngine; PrecisionFloat32 converts each
// snapshot to float32 at ingest and normalizes in the float32 planes
// (norm accumulated in float64, see sigproc.NormalizeSoA32).
func NewEnginePrecision(s *csi.Series, prec Precision) *Engine {
	if prec != PrecisionFloat32 {
		return NewEngine(s)
	}
	e := newEngineShell32(s)
	for a := 0; a < e.numAnts; a++ {
		for tx := 0; tx < e.numTx; tx++ {
			reP, imP := e.re32[a][tx], e.im32[a][tx]
			for t := 0; t < e.slots; t++ {
				src := s.H[a][tx][t]
				e.checkTones(a, tx, t, len(src))
				o := t * e.tones
				for k, c := range src {
					reP[o+k] = float32(real(c))
					imP[o+k] = float32(imag(c))
				}
				sigproc.NormalizeSoA32(reP[o:o+e.tones], imP[o:o+e.tones])
			}
		}
	}
	return e
}

// newEngineShell32 allocates the float32 SoA planes for the series' shape.
func newEngineShell32(s *csi.Series) *Engine {
	e := &Engine{
		rate:    s.Rate,
		numAnts: s.NumAnts,
		numTx:   s.NumTx,
		slots:   s.NumSlots(),
		prec:    PrecisionFloat32,
		re32:    make([][][]float32, s.NumAnts),
		im32:    make([][][]float32, s.NumAnts),
	}
	if e.slots > 0 && e.numAnts > 0 && e.numTx > 0 {
		e.tones = len(s.H[0][0][0])
	}
	for a := 0; a < e.numAnts; a++ {
		e.re32[a] = make([][]float32, e.numTx)
		e.im32[a] = make([][]float32, e.numTx)
		for tx := 0; tx < e.numTx; tx++ {
			e.re32[a][tx] = make([]float32, e.slots*e.tones)
			e.im32[a][tx] = make([]float32, e.slots*e.tones)
		}
	}
	return e
}
