// Package floorplan models the indoor environment geometry RIM is evaluated
// in: wall segments with per-crossing RF attenuation, rectangular pillars,
// and the office testbed of the paper's Fig. 10 (a 36.5 m x 28 m floor with
// seven candidate AP locations). The RF substrate queries it for the number
// of obstructions along a propagation path, and the particle filter queries
// it for trajectory-wall collisions.
package floorplan

import (
	"fmt"

	"rim/internal/geom"
)

// Wall is an attenuating line segment. AttenuationDB is the one-way power
// loss added to any path crossing it (typical interior drywall 3-6 dB,
// concrete/pillar faces 10+ dB at 5 GHz).
type Wall struct {
	Seg           geom.Segment
	AttenuationDB float64
}

// Plan is a 2D floorplan: the outer bounds plus interior walls and pillars.
type Plan struct {
	Bounds  geom.Rect
	Walls   []Wall
	Pillars []geom.Rect
}

// AddWall appends an interior wall between a and b with the given
// attenuation in dB.
func (p *Plan) AddWall(a, b geom.Vec2, attdB float64) {
	p.Walls = append(p.Walls, Wall{Seg: geom.Segment{A: a, B: b}, AttenuationDB: attdB})
}

// AddPillar appends a rectangular pillar; its four faces attenuate like
// concrete.
func (p *Plan) AddPillar(r geom.Rect) {
	p.Pillars = append(p.Pillars, r)
}

// Contains reports whether the point lies within the floor bounds.
func (p *Plan) Contains(pt geom.Vec2) bool { return p.Bounds.Contains(pt) }

// PathLossDB returns the total wall/pillar attenuation in dB along the
// straight path from a to b, and the number of obstructions crossed.
func (p *Plan) PathLossDB(a, b geom.Vec2) (lossDB float64, crossings int) {
	seg := geom.Segment{A: a, B: b}
	for _, w := range p.Walls {
		if w.Seg.Intersects(seg) {
			lossDB += w.AttenuationDB
			crossings++
		}
	}
	const pillarFaceDB = 6 // diffraction fills in behind small obstacles
	for _, r := range p.Pillars {
		if r.IntersectsSegment(seg) {
			lossDB += pillarFaceDB
			crossings++
		}
	}
	return lossDB, crossings
}

// IsLOS reports whether the straight path from a to b crosses no obstruction.
func (p *Plan) IsLOS(a, b geom.Vec2) bool {
	_, n := p.PathLossDB(a, b)
	return n == 0
}

// SegmentHitsWall reports whether the motion segment from a to b crosses any
// wall or pillar. The particle filter uses this to kill particles that walk
// through walls (Fig. 21).
func (p *Plan) SegmentHitsWall(a, b geom.Vec2) bool {
	seg := geom.Segment{A: a, B: b}
	if !p.Bounds.Contains(b) {
		return true
	}
	for _, w := range p.Walls {
		if w.Seg.Intersects(seg) {
			return true
		}
	}
	for _, r := range p.Pillars {
		if r.IntersectsSegment(seg) {
			return true
		}
	}
	return false
}

// APLocation identifies one of the paper's AP placements (Fig. 10).
type APLocation struct {
	ID  int
	Pos geom.Vec2
}

// Office mirrors the evaluation testbed: outer shell, a corridor loop of
// office rooms along the edges, interior walls and pillars, and the seven AP
// locations marked in Fig. 10 (#0 is the default far-corner placement used
// for the headline NLOS results).
type Office struct {
	Plan
	APs []APLocation
}

// Floor dimensions from Fig. 10.
const (
	OfficeWidth  = 36.5 // meters, X extent
	OfficeHeight = 28.0 // meters, Y extent
)

// NewOffice builds the evaluation floorplan. The interior layout is a
// faithful-in-spirit reconstruction of Fig. 10: perimeter offices around an
// open middle area, dividing walls every few meters, four structural
// pillars, and AP locations #0..#6 spread from the far corner (#0) to the
// central open space.
func NewOffice() *Office {
	o := &Office{}
	o.Bounds = geom.Rect{Min: geom.Vec2{X: 0, Y: 0}, Max: geom.Vec2{X: OfficeWidth, Y: OfficeHeight}}

	const drywall = 4.0  // dB per crossing
	const concrete = 9.0 // dB per crossing (building core)

	v := func(x, y float64) geom.Vec2 { return geom.Vec2{X: x, Y: y} }

	// Perimeter office band: rooms of ~4.5 m depth along the south and
	// north edges, with dividing walls every 5 m and door gaps (walls do
	// not span the full corridor, leaving 1 m openings).
	for x := 5.0; x < OfficeWidth-4; x += 5 {
		o.AddWall(v(x, 0), v(x, 4.5), drywall)                         // south band dividers
		o.AddWall(v(x, OfficeHeight-4.5), v(x, OfficeHeight), drywall) // north band dividers
	}
	// Corridor walls separating the office bands from the open middle,
	// pierced by door gaps every 5 m.
	for x := 0.0; x < OfficeWidth; x += 5 {
		end := x + 4 // 1 m door gap
		if end > OfficeWidth {
			end = OfficeWidth
		}
		o.AddWall(v(x, 4.5), v(end, 4.5), drywall)
		o.AddWall(v(x, OfficeHeight-4.5), v(end, OfficeHeight-4.5), drywall)
	}
	// West and east room blocks.
	o.AddWall(v(5.5, 4.5), v(5.5, OfficeHeight-4.5), drywall)
	o.AddWall(v(OfficeWidth-5.5, 4.5), v(OfficeWidth-5.5, OfficeHeight-4.5), drywall)
	// Building core (elevators/stairs) near the center-west.
	o.AddWall(v(12, 11), v(17, 11), concrete)
	o.AddWall(v(17, 11), v(17, 17), concrete)
	o.AddWall(v(17, 17), v(12, 17), concrete)
	o.AddWall(v(12, 17), v(12, 11), concrete)
	// Structural pillars in the open area.
	o.AddPillar(geom.Rect{Min: v(22, 9.5), Max: v(22.8, 10.3)})
	o.AddPillar(geom.Rect{Min: v(28, 9.5), Max: v(28.8, 10.3)})
	o.AddPillar(geom.Rect{Min: v(22, 17.5), Max: v(22.8, 18.3)})
	o.AddPillar(geom.Rect{Min: v(28, 17.5), Max: v(28.8, 18.3)})

	// AP locations: #0 far corner (default, worst case, through many
	// walls), #1..#6 spread over the floor as in Fig. 10.
	o.APs = []APLocation{
		{ID: 0, Pos: v(1.0, 26.8)},  // far north-west corner
		{ID: 1, Pos: v(8.0, 20.0)},  // west open area
		{ID: 2, Pos: v(18.5, 21.5)}, // north of the core
		{ID: 3, Pos: v(24.0, 19.0)}, // north-central open space
		{ID: 4, Pos: v(32.0, 21.0)}, // north-east
		{ID: 5, Pos: v(31.0, 6.5)},  // south-east band
		{ID: 6, Pos: v(14.0, 6.0)},  // south-west band
	}
	return o
}

// AP returns the AP location with the given ID.
func (o *Office) AP(id int) (APLocation, error) {
	for _, ap := range o.APs {
		if ap.ID == id {
			return ap, nil
		}
	}
	return APLocation{}, fmt.Errorf("floorplan: no AP location #%d", id)
}

// OpenAreaCenter returns a point in the middle open space where the mobile
// experiments run.
func (o *Office) OpenAreaCenter() geom.Vec2 {
	return geom.Vec2{X: 25, Y: 14}
}
