package floorplan

import (
	"testing"

	"rim/internal/geom"
)

func TestPlanPathLoss(t *testing.T) {
	var p Plan
	p.Bounds = geom.Rect{Max: geom.Vec2{X: 10, Y: 10}}
	p.AddWall(geom.Vec2{X: 5, Y: 0}, geom.Vec2{X: 5, Y: 10}, 4)
	loss, n := p.PathLossDB(geom.Vec2{X: 1, Y: 5}, geom.Vec2{X: 9, Y: 5})
	if n != 1 || loss != 4 {
		t.Errorf("loss=%v crossings=%d", loss, n)
	}
	loss, n = p.PathLossDB(geom.Vec2{X: 1, Y: 5}, geom.Vec2{X: 4, Y: 5})
	if n != 0 || loss != 0 {
		t.Errorf("same-side loss=%v crossings=%d", loss, n)
	}
}

func TestPlanPillarLoss(t *testing.T) {
	var p Plan
	p.Bounds = geom.Rect{Max: geom.Vec2{X: 10, Y: 10}}
	p.AddPillar(geom.Rect{Min: geom.Vec2{X: 4, Y: 4}, Max: geom.Vec2{X: 6, Y: 6}})
	if p.IsLOS(geom.Vec2{X: 0, Y: 5}, geom.Vec2{X: 10, Y: 5}) {
		t.Error("path through pillar reported LOS")
	}
	if !p.IsLOS(geom.Vec2{X: 0, Y: 1}, geom.Vec2{X: 10, Y: 1}) {
		t.Error("clear path reported NLOS")
	}
}

func TestSegmentHitsWall(t *testing.T) {
	var p Plan
	p.Bounds = geom.Rect{Max: geom.Vec2{X: 10, Y: 10}}
	p.AddWall(geom.Vec2{X: 5, Y: 0}, geom.Vec2{X: 5, Y: 10}, 4)
	if !p.SegmentHitsWall(geom.Vec2{X: 4, Y: 1}, geom.Vec2{X: 6, Y: 1}) {
		t.Error("wall crossing not detected")
	}
	if p.SegmentHitsWall(geom.Vec2{X: 1, Y: 1}, geom.Vec2{X: 2, Y: 2}) {
		t.Error("clear move reported as hit")
	}
	// Leaving the bounds counts as hitting a wall.
	if !p.SegmentHitsWall(geom.Vec2{X: 1, Y: 1}, geom.Vec2{X: -1, Y: 1}) {
		t.Error("out-of-bounds move not detected")
	}
}

func TestNewOfficeGeometry(t *testing.T) {
	o := NewOffice()
	if o.Bounds.Max.X != OfficeWidth || o.Bounds.Max.Y != OfficeHeight {
		t.Errorf("bounds = %+v", o.Bounds)
	}
	if len(o.Walls) == 0 || len(o.Pillars) == 0 {
		t.Fatal("office must have walls and pillars")
	}
	if len(o.APs) != 7 {
		t.Fatalf("want 7 AP locations, got %d", len(o.APs))
	}
	for _, ap := range o.APs {
		if !o.Contains(ap.Pos) {
			t.Errorf("AP #%d outside bounds", ap.ID)
		}
	}
}

func TestOfficeAPLookup(t *testing.T) {
	o := NewOffice()
	ap, err := o.AP(0)
	if err != nil || ap.ID != 0 {
		t.Fatalf("AP(0) = %+v, %v", ap, err)
	}
	if _, err := o.AP(99); err == nil {
		t.Error("AP(99) should fail")
	}
}

func TestOfficeCornerAPIsNLOSFromCenter(t *testing.T) {
	// The headline experiments put the AP at corner location #0 and move in
	// the middle open space: that geometry must be through-the-wall.
	o := NewOffice()
	ap, _ := o.AP(0)
	center := o.OpenAreaCenter()
	if o.IsLOS(ap.Pos, center) {
		t.Error("corner AP #0 should be NLOS from the open-area center")
	}
	loss, crossings := o.PathLossDB(ap.Pos, center)
	if crossings < 1 || loss <= 0 {
		t.Errorf("expected attenuating crossings, got loss=%v n=%d", loss, crossings)
	}
}

func TestOfficeCentralAPIsLOSFromCenter(t *testing.T) {
	o := NewOffice()
	ap, _ := o.AP(3)
	// AP #3 sits in the central open space; a nearby point should be LOS.
	p := ap.Pos.Add(geom.Vec2{X: 1.5, Y: 1.0})
	if !o.IsLOS(ap.Pos, p) {
		t.Error("central AP should have LOS to nearby open-space point")
	}
}
