package fusion

import (
	"math"
	"math/rand"
	"testing"

	"rim/internal/floorplan"
	"rim/internal/geom"
)

// mixedInputs builds a deterministic input tape that exercises every Input
// field: clean motion, degraded-quality steps, confirmed zero-velocity
// (ZUPT) steps and magnetometer-carrying steps.
func mixedInputs(n int) []Input {
	rng := rand.New(rand.NewSource(17))
	out := make([]Input, n)
	for i := range out {
		in := Input{
			DistDelta:  rng.Float64() * 0.06,
			ThetaDelta: (rng.Float64() - 0.5) * 0.04,
			Quality:    0.3 + rng.Float64()*0.7,
		}
		if i%17 < 4 {
			in.ZUPT = true
			in.DistDelta = rng.Float64() * 0.002
		}
		if i%3 == 0 {
			in.HasMag = true
			in.MagHeading = (rng.Float64() - 0.5) * 2 * math.Pi
		}
		out[i] = in
	}
	return out
}

func corridorPlan() *floorplan.Plan {
	// A 2 m wide, 20 m long east-west corridor.
	var p floorplan.Plan
	p.Bounds = geom.Rect{Min: geom.Vec2{X: 0, Y: 0}, Max: geom.Vec2{X: 20, Y: 2}}
	p.AddWall(geom.Vec2{X: 0, Y: 0}, geom.Vec2{X: 20, Y: 0}, 10)
	p.AddWall(geom.Vec2{X: 0, Y: 2}, geom.Vec2{X: 20, Y: 2}, 10)
	return &p
}

func TestFilterFollowsCleanDeadReckoning(t *testing.T) {
	f := NewFilter(nil, geom.Pose{Pos: geom.Vec2{X: 1, Y: 1}}, DefaultConfig(1))
	var inputs []Input
	for i := 0; i < 100; i++ {
		inputs = append(inputs, Input{DistDelta: 0.05}) // 5 m east
	}
	poses := f.TrackAll(inputs)
	final := poses[len(poses)-1]
	if final.Pos.Dist(geom.Vec2{X: 6, Y: 1}) > 0.3 {
		t.Errorf("final = %v, want near (6, 1)", final.Pos)
	}
}

func TestWallConstraintCorrectsHeadingDrift(t *testing.T) {
	// Dead reckoning with a constant heading-drift error would leave the
	// corridor; the wall constraint must keep the estimate inside and
	// close to the true east-bound path.
	plan := corridorPlan()
	start := geom.Pose{Pos: geom.Vec2{X: 1, Y: 1}}
	drift := geom.Rad(0.3) // 0.3 deg/step: ~54 deg over 180 steps
	var inputs []Input
	for i := 0; i < 180; i++ {
		inputs = append(inputs, Input{DistDelta: 0.05, ThetaDelta: drift})
	}
	// Unconstrained reference: integrate the drifting heading directly.
	pose := start
	for _, in := range inputs {
		pose.Theta += in.ThetaDelta
		pose.Pos = pose.Pos.Add(geom.FromPolar(in.DistDelta, pose.Theta))
	}
	if pose.Pos.Y < 2 {
		t.Fatalf("drift reference stayed in corridor (y=%v); test is vacuous", pose.Pos.Y)
	}

	f := NewFilter(plan, start, DefaultConfig(2))
	poses := f.TrackAll(inputs)
	final := poses[len(poses)-1]
	if final.Pos.Y < 0 || final.Pos.Y > 2 {
		t.Errorf("estimate left the corridor: %v", final.Pos)
	}
	if final.Pos.X < 6 {
		t.Errorf("estimate did not progress down the corridor: %v", final.Pos)
	}
	if f.NumAlive() == 0 {
		t.Error("no particles alive at the end")
	}
}

func TestEstimateWeightedMean(t *testing.T) {
	f := &Filter{parts: []particle{
		{pos: geom.Vec2{X: 0, Y: 0}, theta: 0, weight: 0.5},
		{pos: geom.Vec2{X: 2, Y: 2}, theta: 0, weight: 0.5},
	}}
	e := f.Estimate()
	if e.Pos.Dist(geom.Vec2{X: 1, Y: 1}) > 1e-9 {
		t.Errorf("estimate = %v", e.Pos)
	}
	dead := &Filter{parts: []particle{{weight: 0}}}
	if dead.Estimate() != (geom.Pose{}) {
		t.Error("all-dead estimate must be zero pose")
	}
}

func TestReviveAfterTotalDeath(t *testing.T) {
	// Drive the whole cloud into a wall in one step: the filter must
	// revive rather than return NaNs.
	plan := corridorPlan()
	cfg := DefaultConfig(3)
	cfg.NumParticles = 50
	cfg.InitPosStd = 0
	cfg.InitThetaStd = 0
	f := NewFilter(plan, geom.Pose{Pos: geom.Vec2{X: 1, Y: 1}, Theta: math.Pi / 2}, cfg)
	pose := f.Step(Input{DistDelta: 5}) // 5 m north: through the wall for everyone
	if math.IsNaN(pose.Pos.X) || math.IsNaN(pose.Pos.Y) {
		t.Fatal("revive produced NaN")
	}
	if f.NumAlive() == 0 {
		t.Error("cloud not revived")
	}
}

func TestResamplePreservesCount(t *testing.T) {
	f := NewFilter(nil, geom.Pose{}, DefaultConfig(4))
	n := len(f.parts)
	// Skew the weights heavily.
	for i := range f.parts {
		f.parts[i].weight = 0
	}
	f.parts[0].weight = 1
	f.resample()
	if len(f.parts) != n {
		t.Fatalf("particle count changed: %d != %d", len(f.parts), n)
	}
	// All particles must now be copies of the surviving one.
	for _, p := range f.parts {
		if p.pos != f.parts[0].pos {
			t.Fatal("resample picked a zero-weight particle")
		}
	}
}

// TestBackendsBitwiseDeterministic pins the regression contract of the
// Backend interface: for a fixed seed and input tape — including ZUPT and
// magnetometer steps — every backend must reproduce the exact same
// trajectory, bit for bit, run after run. The particle filter earns this
// through its seeded RNG, the ESKF by being RNG-free.
func TestBackendsBitwiseDeterministic(t *testing.T) {
	inputs := mixedInputs(120)
	for _, kind := range []BackendKind{BackendParticle, BackendESKF} {
		run := func() []geom.Pose {
			cfg := DefaultConfig(9)
			cfg.Backend = kind
			b, err := New(corridorPlan(), geom.Pose{Pos: geom.Vec2{X: 1, Y: 1}}, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return b.TrackAll(inputs)
		}
		a, b := run(), run()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: same seed diverged at step %d: %v vs %v", kind, i, a[i], b[i])
			}
		}
	}
}

// TestParticleBackendIgnoresESKFOnlyFields pins the particle filter
// bitwise-unchanged across the Backend refactor: the Input fields added for
// the ESKF (ZUPT, MagHeading, HasMag) must not perturb the PF's RNG stream
// or dynamics in any way.
func TestParticleBackendIgnoresESKFOnlyFields(t *testing.T) {
	full := mixedInputs(80)
	stripped := make([]Input, len(full))
	for i, in := range full {
		stripped[i] = Input{DistDelta: in.DistDelta, ThetaDelta: in.ThetaDelta, Quality: in.Quality}
	}
	run := func(ins []Input) []geom.Pose {
		b, err := New(corridorPlan(), geom.Pose{Pos: geom.Vec2{X: 1, Y: 1}}, DefaultConfig(5))
		if err != nil {
			t.Fatal(err)
		}
		return b.TrackAll(ins)
	}
	a, b := run(full), run(stripped)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("ESKF-only input fields changed the PF at step %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	mk := func() geom.Pose {
		f := NewFilter(corridorPlan(), geom.Pose{Pos: geom.Vec2{X: 1, Y: 1}}, DefaultConfig(9))
		var last geom.Pose
		for i := 0; i < 50; i++ {
			last = f.Step(Input{DistDelta: 0.05})
		}
		return last
	}
	a, b := mk(), mk()
	if a != b {
		t.Errorf("same seed diverged: %v vs %v", a, b)
	}
}
