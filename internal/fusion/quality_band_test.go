package fusion

import (
	"math"
	"math/rand"
	"testing"

	"rim/internal/geom"
	"rim/internal/obs/quality"
)

// Chi-square band correctness against the real backends: a golden walk
// through a properly-tuned ESKF must keep its NIS inside the 95% band (the
// quality monitor stays quiet), and a deliberately mis-tuned run — input
// noise far above the configured measurement noise — must trip the alert
// within a bounded number of steps. These are the fusion-level halves of
// the detection story; internal/obs/quality tests the windows on synthetic
// chi-square draws, internal/session tests the daemon wiring.

// eskfWithMonitor builds an ESKF whose innovations feed a fresh monitor.
func eskfWithMonitor(t *testing.T, eng *quality.Engine) (*ESKF, *quality.Monitor) {
	t.Helper()
	mon := eng.Monitor(t.Name())
	cfg := DefaultConfig(7)
	cfg.Backend = BackendESKF
	cfg.StepSeconds = 0.01
	cfg.Innovations = func(ch int, nu, s float64) {
		mon.Innovation(ch, ChannelName(ch), nu, s)
	}
	return NewESKF(geom.Pose{}, cfg), mon
}

// TestESKFGoldenWalkKeepsNISInBand: ZUPT pseudo-measurements whose input
// noise matches the tuned ZUPT stds are exactly what the filter models, so
// the per-channel windowed outside-band fraction must stay near the band's
// nominal 5% leak and the monitor must stay ok.
func TestESKFGoldenWalkKeepsNISInBand(t *testing.T) {
	eng := quality.New(quality.Config{Window: 128})
	f, mon := eskfWithMonitor(t, eng)
	rng := rand.New(rand.NewSource(11))
	dt := 0.01
	sStd := f.cfg.ESKF.ZUPTSpeedStd * dt
	gStd := f.cfg.ESKF.ZUPTGyroStd * dt
	for i := 0; i < 1500; i++ {
		if i%300 < 100 { // walking stretch: clean dead reckoning
			f.Step(Input{DistDelta: 0.005, Quality: 1})
			continue
		}
		// Standing stretch: band-consistent measurement noise.
		f.Step(Input{
			ZUPT:       true,
			DistDelta:  rng.NormFloat64() * sStd,
			ThetaDelta: rng.NormFloat64() * gStd,
		})
	}
	st, frac, n := mon.Summary()
	if st != quality.StateOK {
		t.Fatalf("golden walk verdict = %v (worst frac %.2f), want ok", st, frac)
	}
	if n == 0 {
		t.Fatal("monitor saw no innovations")
	}
	// The windowed leak should hover near 5%; anything approaching the 20%
	// warn threshold would mean the band or the S term is wrong.
	if frac >= 0.2 {
		t.Fatalf("outside-band fraction %.2f on a consistent filter", frac)
	}
}

// TestESKFMistunedTripsAlertWithinBoundedSteps: ZUPT input noise 10x the
// tuned measurement noise makes NIS ~100x its expectation. The alert must
// fire, and within a bounded number of updates (MinSamples of an all-
// outside window, with slack).
func TestESKFMistunedTripsAlertWithinBoundedSteps(t *testing.T) {
	alertAt := -1
	step := 0
	eng := quality.New(quality.Config{
		Window: 32,
		OnTransition: func(entity string, from, to quality.State, channel string, frac float64) {
			if to == quality.StateAlert && alertAt < 0 {
				alertAt = step
			}
		},
	})
	f, mon := eskfWithMonitor(t, eng)
	rng := rand.New(rand.NewSource(12))
	dt := 0.01
	noise := 10 * f.cfg.ESKF.ZUPTSpeedStd * dt
	for step = 1; step <= 128; step++ {
		f.Step(Input{ZUPT: true, DistDelta: rng.NormFloat64() * noise})
		if alertAt >= 0 {
			break
		}
	}
	if alertAt < 0 {
		st, frac, _ := mon.Summary()
		t.Fatalf("mis-tuned ESKF never alerted (state %v, frac %.2f)", st, frac)
	}
	if alertAt > 64 {
		t.Fatalf("alert after %d steps, want bounded by 64", alertAt)
	}
}

// nees2 computes the position NEES e^T P^-1 e over the 2x2 position block.
func nees2(est, truth geom.Vec2, p [eskfDim][eskfDim]float64) float64 {
	ex, ey := est.X-truth.X, est.Y-truth.Y
	a, b, c, d := p[eX][eX], p[eX][eY], p[eY][eX], p[eY][eY]
	det := a*d - b*c
	if det <= 0 {
		return -1
	}
	return (ex*(d*ex-b*ey) + ey*(-c*ex+a*ey)) / det
}

// TestESKFNEESBandSeparatesHonestFromDishonest: on a clean walk the
// position error is ~zero, so NEES sits deep inside the chi-square(2)
// band; feeding unmodeled distance noise while the truth walks clean makes
// the real error far exceed what the covariance admits, and the NEES
// channel must reach alert.
func TestESKFNEESBandSeparatesHonestFromDishonest(t *testing.T) {
	eng := quality.New(quality.Config{Window: 32})
	dt := 0.01

	clean, cleanMon := eskfWithMonitor(t, eng)
	truth := geom.Vec2{}
	for i := 0; i < 200; i++ {
		est := clean.Step(Input{DistDelta: 0.005, Quality: 1})
		truth.X += 0.005 // heading 0 walk
		if v := nees2(est.Pos, truth, clean.Covariance()); v >= 0 {
			cleanMon.NEES(v, 2)
		}
	}
	if st, frac, _ := cleanMon.Summary(); st != quality.StateOK {
		t.Fatalf("clean-walk NEES verdict = %v (frac %.2f), want ok", st, frac)
	}

	dirtyEng := quality.New(quality.Config{Window: 32})
	dirtyMon := dirtyEng.Monitor("dirty")
	cfg := DefaultConfig(8)
	cfg.Backend = BackendESKF
	cfg.StepSeconds = dt
	dirty := NewESKF(geom.Pose{}, cfg)
	rng := rand.New(rand.NewSource(13))
	truth = geom.Vec2{}
	for i := 0; i < 200; i++ {
		est := dirty.Step(Input{DistDelta: 0.005 + rng.NormFloat64()*0.02, Quality: 1})
		truth.X += 0.005
		if v := nees2(est.Pos, truth, dirty.Covariance()); v >= 0 {
			dirtyMon.NEES(v, 2)
		}
	}
	if st, _, _ := dirtyMon.Summary(); st != quality.StateAlert {
		_, frac, _ := dirtyMon.Summary()
		t.Fatalf("dishonest-covariance NEES verdict = %v (frac %.2f), want alert", st, frac)
	}
}

// TestFilterReportsPFStats: the particle filter must report a sane
// (essFrac, entropyFrac) pair every step through Config.PFStats.
func TestFilterReportsPFStats(t *testing.T) {
	var calls int
	cfg := DefaultConfig(9)
	cfg.NumParticles = 200
	cfg.PFStats = func(essFrac, entropyFrac float64) {
		calls++
		if essFrac <= 0 || essFrac > 1+1e-9 {
			t.Fatalf("essFrac = %v out of (0,1]", essFrac)
		}
		if entropyFrac < 0 || entropyFrac > 1+1e-9 {
			t.Fatalf("entropyFrac = %v out of [0,1]", entropyFrac)
		}
	}
	f := NewFilter(nil, geom.Pose{}, cfg)
	for i := 0; i < 50; i++ {
		f.Step(Input{DistDelta: 0.01, Quality: 0.8})
	}
	if calls != 50 {
		t.Fatalf("PFStats called %d times, want 50", calls)
	}
}

// TestESKFInnovationHookCoversAllChannels: every measurement family the
// ESKF applies must surface on its own named channel with positive
// innovation variance.
func TestESKFInnovationHookCoversAllChannels(t *testing.T) {
	seen := map[string]bool{}
	cfg := DefaultConfig(10)
	cfg.Backend = BackendESKF
	cfg.StepSeconds = 0.01
	cfg.Innovations = func(ch int, nu, s float64) {
		if s <= 0 {
			t.Fatalf("channel %d innovation variance %v", ch, s)
		}
		if math.IsNaN(nu) {
			t.Fatalf("channel %d innovation NaN", ch)
		}
		seen[ChannelName(ch)] = true
	}
	f := NewESKF(geom.Pose{}, cfg)
	for i := 0; i < 20; i++ {
		f.Step(Input{ZUPT: true, DistDelta: 0.0001})
		f.Step(Input{DistDelta: 0.01, Quality: 1, HasMag: true, MagHeading: 0.1})
	}
	for _, want := range []string{"zupt_speed", "zupt_gyro", "slip", "mag"} {
		if !seen[want] {
			t.Fatalf("channel %q never reported (saw %v)", want, seen)
		}
	}
}
