package fusion

import (
	"testing"

	"rim/internal/geom"
)

var benchSink geom.Pose

// BenchmarkFusionStep measures one Step of each backend on the shared mixed
// input tape (motion + ZUPT + magnetometer steps). The committed baseline
// and the ≥5x ESKF-vs-particle guard live in BENCH_fusion.json /
// TestFusionBenchGuard at the repo root.
func BenchmarkFusionStep(b *testing.B) {
	inputs := mixedInputs(256)
	for _, kind := range []BackendKind{BackendParticle, BackendESKF} {
		b.Run(kind.String(), func(b *testing.B) {
			cfg := DefaultConfig(1)
			cfg.Backend = kind
			bk, err := New(nil, geom.Pose{Pos: geom.Vec2{X: 1, Y: 1}}, cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				benchSink = bk.Step(inputs[i%len(inputs)])
			}
		})
	}
}
