package fusion

import (
	"math"
	"testing"

	"rim/internal/geom"
	"rim/internal/obs"
)

// TestESKFCleanDeadReckoningExact: with no ZUPT/mag measurements and zero
// initial biases the ESKF's nominal state must be *exactly* dead reckoning —
// the no-lateral-slip update has an identically zero innovation, so it may
// condition the covariance but never move the state.
func TestESKFCleanDeadReckoningExact(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Backend = BackendESKF
	cfg.StepSeconds = 0.01
	f := NewESKF(geom.Pose{Pos: geom.Vec2{X: 2, Y: 3}, Theta: 0.5}, cfg)

	ref := geom.Pose{Pos: geom.Vec2{X: 2, Y: 3}, Theta: 0.5}
	for i := 0; i < 200; i++ {
		in := Input{DistDelta: 0.05, ThetaDelta: 0.01, Quality: 1}
		est := f.Step(in)
		ref.Theta = geom.NormalizeAngle(ref.Theta + in.ThetaDelta)
		ref.Pos = ref.Pos.Add(geom.FromPolar(in.DistDelta, ref.Theta))
		if est.Pos.Dist(ref.Pos) > 1e-12 {
			t.Fatalf("step %d: ESKF diverged from exact DR: %v vs %v", i, est.Pos, ref.Pos)
		}
		if geom.AbsAngleDiff(est.Theta, ref.Theta) > 1e-12 {
			t.Fatalf("step %d: heading diverged: %v vs %v", i, est.Theta, ref.Theta)
		}
	}
	if f.SpeedBias() != 0 || f.GyroBias() != 0 {
		t.Errorf("clean run grew biases: v=%v g=%v", f.SpeedBias(), f.GyroBias())
	}
}

// TestESKFZUPTLearnsBiases: during a confirmed zero-velocity interval the
// raw increments are pure bias observations. Feeding residual increments
// consistent with a 0.2 m/s speed bias and a 0.05 rad/s gyro bias, the
// filter must converge to both.
func TestESKFZUPTLearnsBiases(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Backend = BackendESKF
	cfg.StepSeconds = 0.01
	f := NewESKF(geom.Pose{}, cfg)

	const vBias, gBias = 0.2, 0.05
	for i := 0; i < 300; i++ {
		f.Step(Input{DistDelta: vBias * 0.01, ThetaDelta: gBias * 0.01, ZUPT: true})
	}
	if math.Abs(f.SpeedBias()-vBias) > 0.02 {
		t.Errorf("speed bias = %.4f, want ~%.2f", f.SpeedBias(), vBias)
	}
	if math.Abs(f.GyroBias()-gBias) > 0.01 {
		t.Errorf("gyro bias = %.4f, want ~%.2f", f.GyroBias(), gBias)
	}
	// ZUPT hard-gates integration: the pose must not have walked away.
	if d := f.Estimate().Pos.Dist(geom.Vec2{}); d > 0.05 {
		t.Errorf("pose drifted %.3f m during a zero-velocity interval", d)
	}
}

// TestESKFMagHeadingConverges: repeated (deliberately weak) magnetic heading
// updates must pull the nominal heading to the measured one.
func TestESKFMagHeadingConverges(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.Backend = BackendESKF
	f := NewESKF(geom.Pose{}, cfg) // heading 0
	for i := 0; i < 800; i++ {
		f.Step(Input{HasMag: true, MagHeading: 1.0})
	}
	if d := geom.AbsAngleDiff(f.Estimate().Theta, 1.0); d > 0.1 {
		t.Errorf("heading %.3f rad after mag updates, want ~1.0 (off by %.3f)", f.Estimate().Theta, d)
	}
}

// TestESKFMetrics: the backend reports steps and ZUPT updates on the shared
// fusion metric names.
func TestESKFMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := DefaultConfig(4)
	cfg.Backend = BackendESKF
	cfg.Obs = reg
	f := NewESKF(geom.Pose{}, cfg)
	for i := 0; i < 10; i++ {
		f.Step(Input{DistDelta: 0.01, ZUPT: i < 4})
	}
	var steps, zupts uint64
	for _, m := range reg.Snapshot() {
		switch m.Name {
		case "rim_fusion_steps_total":
			steps = uint64(m.Value)
		case "rim_fusion_zupt_updates_total":
			zupts = uint64(m.Value)
		}
	}
	if steps != 10 {
		t.Errorf("rim_fusion_steps_total = %d, want 10", steps)
	}
	if zupts != 4 {
		t.Errorf("rim_fusion_zupt_updates_total = %d, want 4", zupts)
	}
}

func TestParseBackend(t *testing.T) {
	cases := []struct {
		in   string
		kind BackendKind
		ok   bool
	}{
		{"particle", BackendParticle, true},
		{"pf", BackendParticle, true},
		{"eskf", BackendESKF, true},
		{"kalman", BackendESKF, true},
		{"bogus", BackendParticle, false},
		{"", BackendParticle, false},
	}
	for _, c := range cases {
		kind, ok := ParseBackend(c.in)
		if kind != c.kind || ok != c.ok {
			t.Errorf("ParseBackend(%q) = (%v, %v), want (%v, %v)", c.in, kind, ok, c.kind, c.ok)
		}
	}
	// String must round-trip through ParseBackend for both kinds.
	for _, k := range []BackendKind{BackendParticle, BackendESKF} {
		got, ok := ParseBackend(k.String())
		if !ok || got != k {
			t.Errorf("String/ParseBackend round trip broken for %v", k)
		}
	}
}

func TestNewRejectsUnknownBackend(t *testing.T) {
	cfg := DefaultConfig(5)
	cfg.Backend = BackendKind(99)
	if _, err := New(nil, geom.Pose{}, cfg); err == nil {
		t.Fatal("unknown backend kind must error")
	}
	for _, k := range []BackendKind{BackendParticle, BackendESKF} {
		cfg.Backend = k
		b, err := New(nil, geom.Pose{}, cfg)
		if err != nil || b == nil {
			t.Fatalf("New(%v) = (%v, %v)", k, b, err)
		}
	}
}
