package fusion

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rim/internal/geom"
)

// Property: after any step the estimate is finite and particle count is
// preserved.
func TestFilterStepFiniteProperty(t *testing.T) {
	f := func(seed int64, steps uint8) bool {
		cfg := DefaultConfig(seed)
		cfg.NumParticles = 60
		fl := NewFilter(corridorPlan(), geom.Pose{Pos: geom.Vec2{X: 1, Y: 1}}, cfg)
		rng := rand.New(rand.NewSource(seed + 1))
		n := int(steps%40) + 1
		for i := 0; i < n; i++ {
			in := Input{
				DistDelta:  rng.Float64() * 0.08,
				ThetaDelta: (rng.Float64() - 0.5) * 0.05,
			}
			pose := fl.Step(in)
			if math.IsNaN(pose.Pos.X) || math.IsNaN(pose.Pos.Y) || math.IsNaN(pose.Theta) {
				return false
			}
		}
		return len(fl.parts) == 60
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: particle weights are non-negative and (when any particle is
// alive) sum to ~1 after a step.
func TestFilterWeightsNormalizedProperty(t *testing.T) {
	f := func(seed int64) bool {
		cfg := DefaultConfig(seed)
		cfg.NumParticles = 50
		fl := NewFilter(nil, geom.Pose{}, cfg)
		rng := rand.New(rand.NewSource(seed + 7))
		for i := 0; i < 10; i++ {
			fl.Step(Input{DistDelta: rng.Float64() * 0.05})
		}
		var sum float64
		for _, p := range fl.parts {
			if p.weight < 0 {
				return false
			}
			sum += p.weight
		}
		return math.Abs(sum-1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: with no map and no noise, the filter's estimate tracks pure
// dead reckoning exactly (expectation over the symmetric diffusion).
func TestFilterUnbiasedProperty(t *testing.T) {
	f := func(seed int64) bool {
		cfg := DefaultConfig(seed)
		cfg.NumParticles = 400
		cfg.InitPosStd = 0
		cfg.InitThetaStd = 0
		cfg.PosStd = 0
		cfg.ThetaStd = 0
		fl := NewFilter(nil, geom.Pose{}, cfg)
		var pose geom.Pose
		for i := 0; i < 20; i++ {
			in := Input{DistDelta: 0.05, ThetaDelta: 0.02}
			est := fl.Step(in)
			pose.Theta += in.ThetaDelta
			pose.Pos = pose.Pos.Add(geom.FromPolar(in.DistDelta, pose.Theta))
			if est.Pos.Dist(pose.Pos) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
