package fusion

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rim/internal/geom"
)

// Property: after any step the estimate is finite and particle count is
// preserved.
func TestFilterStepFiniteProperty(t *testing.T) {
	f := func(seed int64, steps uint8) bool {
		cfg := DefaultConfig(seed)
		cfg.NumParticles = 60
		fl := NewFilter(corridorPlan(), geom.Pose{Pos: geom.Vec2{X: 1, Y: 1}}, cfg)
		rng := rand.New(rand.NewSource(seed + 1))
		n := int(steps%40) + 1
		for i := 0; i < n; i++ {
			in := Input{
				DistDelta:  rng.Float64() * 0.08,
				ThetaDelta: (rng.Float64() - 0.5) * 0.05,
			}
			pose := fl.Step(in)
			if math.IsNaN(pose.Pos.X) || math.IsNaN(pose.Pos.Y) || math.IsNaN(pose.Theta) {
				return false
			}
		}
		return len(fl.parts) == 60
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: particle weights are non-negative and (when any particle is
// alive) sum to ~1 after a step.
func TestFilterWeightsNormalizedProperty(t *testing.T) {
	f := func(seed int64) bool {
		cfg := DefaultConfig(seed)
		cfg.NumParticles = 50
		fl := NewFilter(nil, geom.Pose{}, cfg)
		rng := rand.New(rand.NewSource(seed + 7))
		for i := 0; i < 10; i++ {
			fl.Step(Input{DistDelta: rng.Float64() * 0.05})
		}
		var sum float64
		for _, p := range fl.parts {
			if p.weight < 0 {
				return false
			}
			sum += p.weight
		}
		return math.Abs(sum-1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// covSymmetricPSD reports whether the ESKF covariance is exactly symmetric,
// finite, and positive semidefinite. PSD is checked by a Cholesky
// factorization with a small negative-pivot tolerance: round-off may push a
// pivot a hair below zero, but any genuinely indefinite matrix fails.
func covSymmetricPSD(m [eskfDim][eskfDim]float64) bool {
	for i := 0; i < eskfDim; i++ {
		for j := 0; j < eskfDim; j++ {
			if math.IsNaN(m[i][j]) || math.IsInf(m[i][j], 0) {
				return false
			}
			if m[i][j] != m[j][i] {
				return false
			}
		}
	}
	const tol = 1e-9
	var l [eskfDim][eskfDim]float64
	for i := 0; i < eskfDim; i++ {
		for j := 0; j <= i; j++ {
			s := m[i][j]
			for k := 0; k < j; k++ {
				s -= l[i][k] * l[j][k]
			}
			if i == j {
				if s < -tol {
					return false
				}
				l[i][i] = math.Sqrt(math.Max(s, 0))
			} else if l[j][j] > 0 {
				l[i][j] = s / l[j][j]
			} else if math.Abs(s) > tol {
				return false // zero pivot with a nonzero off-diagonal: indefinite
			}
		}
	}
	return true
}

// Property: the ESKF covariance stays symmetric and positive semidefinite
// after every predict/update, whatever mix of motion, degraded quality,
// ZUPT and magnetometer steps it is fed. The Joseph-form updates and
// explicit re-symmetrization exist exactly to make this hold.
func TestESKFCovarianceSymmetricPSDProperty(t *testing.T) {
	f := func(seed int64, steps uint8) bool {
		cfg := DefaultConfig(seed)
		cfg.Backend = BackendESKF
		fl := NewESKF(geom.Pose{Pos: geom.Vec2{X: 1, Y: 1}}, cfg)
		rng := rand.New(rand.NewSource(seed + 3))
		n := int(steps%50) + 5
		for i := 0; i < n; i++ {
			in := Input{
				DistDelta:  rng.Float64() * 0.08,
				ThetaDelta: (rng.Float64() - 0.5) * 0.06,
				Quality:    rng.Float64(),
			}
			switch rng.Intn(4) {
			case 0: // zero-velocity step with a small residual increment
				in.ZUPT = true
				in.DistDelta = rng.Float64() * 0.002
			case 1: // magnetometer-carrying step
				in.HasMag = true
				in.MagHeading = (rng.Float64() - 0.5) * 6
			case 2: // ZUPT and mag together
				in.ZUPT = true
				in.DistDelta = 0
				in.HasMag = true
				in.MagHeading = rng.Float64()
			}
			fl.Step(in)
			if !covSymmetricPSD(fl.Covariance()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: a zero-velocity interval monotonically shrinks the speed-bias
// error. With DistDelta = 0 each ZUPT speed update contracts the bias by
// (1 - K) with K in (0, 1), so |vBias| may never grow and must end well
// below where it started.
func TestESKFZUPTShrinksSpeedBiasErrorProperty(t *testing.T) {
	f := func(seed int64, raw float64) bool {
		if math.IsNaN(raw) || math.IsInf(raw, 0) {
			return true
		}
		bias := math.Mod(raw, 0.5)
		if bias == 0 {
			bias = 0.25
		}
		cfg := DefaultConfig(seed)
		cfg.Backend = BackendESKF
		fl := NewESKF(geom.Pose{}, cfg)
		fl.vBias = bias // inject a wrong speed-bias estimate
		prev := math.Abs(fl.SpeedBias())
		for i := 0; i < 40; i++ {
			fl.Step(Input{ZUPT: true})
			cur := math.Abs(fl.SpeedBias())
			if cur > prev+1e-12 {
				return false
			}
			prev = cur
		}
		return prev <= math.Abs(bias)*0.1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: with no map and no noise, the filter's estimate tracks pure
// dead reckoning exactly (expectation over the symmetric diffusion).
func TestFilterUnbiasedProperty(t *testing.T) {
	f := func(seed int64) bool {
		cfg := DefaultConfig(seed)
		cfg.NumParticles = 400
		cfg.InitPosStd = 0
		cfg.InitThetaStd = 0
		cfg.PosStd = 0
		cfg.ThetaStd = 0
		fl := NewFilter(nil, geom.Pose{}, cfg)
		var pose geom.Pose
		for i := 0; i < 20; i++ {
			in := Input{DistDelta: 0.05, ThetaDelta: 0.02}
			est := fl.Step(in)
			pose.Theta += in.ThetaDelta
			pose.Pos = pose.Pos.Add(geom.FromPolar(in.DistDelta, pose.Theta))
			if est.Pos.Dist(pose.Pos) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
