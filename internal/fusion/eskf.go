package fusion

import (
	"math"

	"rim/internal/geom"
	"rim/internal/obs"
	"rim/internal/obs/trace"
)

// Error-state Kalman filter backend, after the RINS-W recipe: a robust
// zero-velocity detector (RIM's §4.1 movement stage, surfaced as
// core.ZUPTInterval) feeds ZUPT and no-lateral-slip pseudo-measurements
// into a Kalman filter over the *errors* of a dead-reckoned nominal state.
// The nominal state integrates RIM speed and gyro heading exactly as raw
// dead-reckoning would; the filter estimates how wrong that integration is
// — including the speed and gyro-rate biases that make pure dead-reckoning
// drift without bound — and folds the correction back after every update.
//
// The error state is 5-dimensional:
//
//	δ = [δx, δy, δθ, δv, δb]
//
// position error (m), heading error (rad), speed-bias error (m/s) and
// gyro-rate-bias error (rad/s). Updates use the Joseph form and re-
// symmetrization so the covariance stays symmetric positive-semidefinite
// (pinned by the property tests in property_test.go). The filter is
// RNG-free: identical inputs produce bitwise-identical trajectories.

// ESKFParams tunes the error-state Kalman backend. Zero fields take the
// documented defaults.
type ESKFParams struct {
	// SpeedBiasWalk is the random-walk density of the RIM speed bias,
	// m/s/√s (default 0.01).
	SpeedBiasWalk float64
	// GyroBiasWalk is the random-walk density of the gyro rate bias,
	// rad/s/√s (default 1e-3).
	GyroBiasWalk float64
	// InitSpeedBiasStd / InitGyroBiasStd spread the initial bias
	// uncertainty (defaults 0.05 m/s and 0.01 rad/s).
	InitSpeedBiasStd float64
	InitGyroBiasStd  float64
	// ZUPTSpeedStd is the measurement noise of the zero-velocity speed
	// pseudo-measurement, m/s (default 0.02).
	ZUPTSpeedStd float64
	// ZUPTGyroStd is the measurement noise of the zero-rotation gyro
	// pseudo-measurement, rad/s (default 0.01).
	ZUPTGyroStd float64
	// MagStd is the measurement noise of the absolute magnetic-heading
	// update, rad (default 0.35 — soft-iron distortion dominates indoors,
	// so the update is deliberately weak).
	MagStd float64
	// SlipStd is the measurement noise of the no-lateral-slip
	// pseudo-measurement, m (default 0.05): a walking device does not
	// translate sideways, which bounds cross-track error growth.
	SlipStd float64
}

func (p *ESKFParams) applyDefaults() {
	if p.SpeedBiasWalk <= 0 {
		p.SpeedBiasWalk = 0.01
	}
	if p.GyroBiasWalk <= 0 {
		p.GyroBiasWalk = 1e-3
	}
	if p.InitSpeedBiasStd <= 0 {
		p.InitSpeedBiasStd = 0.05
	}
	if p.InitGyroBiasStd <= 0 {
		p.InitGyroBiasStd = 0.01
	}
	if p.ZUPTSpeedStd <= 0 {
		p.ZUPTSpeedStd = 0.02
	}
	if p.ZUPTGyroStd <= 0 {
		p.ZUPTGyroStd = 0.01
	}
	if p.MagStd <= 0 {
		p.MagStd = 0.35
	}
	if p.SlipStd <= 0 {
		p.SlipStd = 0.05
	}
}

// eskfDim is the error-state dimension.
const eskfDim = 5

// Error-state component indices.
const (
	eX = iota
	eY
	eTheta
	eV
	eB
)

// ESKF is the error-state Kalman filter backend.
type ESKF struct {
	cfg Config
	dt  float64

	// Nominal state: pose plus the estimated sensor biases folded out of
	// the error state after each update.
	pos   geom.Vec2
	theta float64
	vBias float64 // RIM speed bias, m/s
	gBias float64 // gyro rate bias, rad/s

	// p is the error-state covariance.
	p [eskfDim][eskfDim]float64

	// Observability handles (nil = unobserved).
	steps, zuptUpdates *obs.Counter
	qualityH           *obs.Histogram
	trc                *trace.Recorder
}

// NewESKF initializes the filter at the known initial pose, mirroring
// NewFilter's contract (the tracking demo is given its start pose).
func NewESKF(initial geom.Pose, cfg Config) *ESKF {
	if cfg.StepSeconds <= 0 {
		cfg.StepSeconds = 0.01
	}
	if cfg.PosStd <= 0 {
		cfg.PosStd = 0.01
	}
	if cfg.ThetaStd <= 0 {
		cfg.ThetaStd = 0.01
	}
	cfg.ESKF.applyDefaults()
	f := &ESKF{cfg: cfg, dt: cfg.StepSeconds, pos: initial.Pos, theta: geom.NormalizeAngle(initial.Theta), trc: cfg.Trace}
	f.p[eX][eX] = cfg.InitPosStd * cfg.InitPosStd
	f.p[eY][eY] = cfg.InitPosStd * cfg.InitPosStd
	f.p[eTheta][eTheta] = cfg.InitThetaStd * cfg.InitThetaStd
	f.p[eV][eV] = cfg.ESKF.InitSpeedBiasStd * cfg.ESKF.InitSpeedBiasStd
	f.p[eB][eB] = cfg.ESKF.InitGyroBiasStd * cfg.ESKF.InitGyroBiasStd
	if cfg.Obs != nil {
		f.steps = cfg.Obs.Counter("rim_fusion_steps_total",
			"particle-filter dead-reckoning steps processed")
		f.zuptUpdates = cfg.Obs.Counter("rim_fusion_zupt_updates_total",
			"ESKF steps that applied zero-velocity pseudo-measurements")
		f.qualityH = cfg.Obs.Histogram("rim_fusion_quality_ratio",
			"per-step RIM input quality weight in (0,1]",
			[]float64{0.1, 0.25, 0.5, 0.75, 0.9, 1})
	}
	return f
}

// Step advances the nominal state by the dead-reckoning input, propagates
// the error covariance, applies the step's pseudo-measurements and returns
// the corrected pose estimate.
func (f *ESKF) Step(in Input) geom.Pose {
	q := in.Quality
	if q <= 0 || q > 1 {
		q = 1
	}
	f.steps.Inc()
	f.qualityH.Observe(q)
	spread := 1 + 2*(1-q)
	dt := f.dt

	// Predict: integrate the bias-corrected increments into the nominal
	// state. Inside a confirmed zero-velocity interval the true distance is
	// zero by definition, so integration is hard-gated instead of trusting
	// a residual increment.
	f.theta = geom.NormalizeAngle(f.theta + in.ThetaDelta - f.gBias*dt)
	d := in.DistDelta - f.vBias*dt
	if in.ZUPT {
		d = 0
	}
	sin, cos := math.Sincos(f.theta)
	f.pos.X += d * cos
	f.pos.Y += d * sin

	// Error propagation P ← F P Fᵀ + Q with the dead-reckoning Jacobian:
	// position error grows with heading error (lever arm d) and speed-bias
	// error; heading error grows with gyro-bias error.
	var fj [eskfDim][eskfDim]float64
	for i := 0; i < eskfDim; i++ {
		fj[i][i] = 1
	}
	fj[eX][eTheta] = -d * sin
	fj[eX][eV] = -dt * cos
	fj[eY][eTheta] = d * cos
	fj[eY][eV] = -dt * sin
	fj[eTheta][eB] = -dt
	f.p = matMulABAT(fj, f.p)
	// Process noise mirrors the particle filter's diffusion convention:
	// position noise scales with the step distance and the quality spread,
	// heading noise with the spread, and the biases random-walk with √dt.
	qp := f.cfg.PosStd * (math.Abs(d)*10 + dt) * spread
	qt := f.cfg.ThetaStd * spread
	f.p[eX][eX] += qp * qp
	f.p[eY][eY] += qp * qp
	f.p[eTheta][eTheta] += qt * qt
	f.p[eV][eV] += f.cfg.ESKF.SpeedBiasWalk * f.cfg.ESKF.SpeedBiasWalk * dt
	f.p[eB][eB] += f.cfg.ESKF.GyroBiasWalk * f.cfg.ESKF.GyroBiasWalk * dt
	f.symmetrize()

	// Updates. Each is a scalar Joseph-form KF update on the error state,
	// folded into the nominal state immediately (fold-and-reset).
	zupt := in.ZUPT
	if zupt {
		// Zero velocity: the raw increments are pure bias observations.
		f.update(ChanZUPTSpeed, [eskfDim]float64{eV: 1}, in.DistDelta/dt-f.vBias,
			f.cfg.ESKF.ZUPTSpeedStd*f.cfg.ESKF.ZUPTSpeedStd)
		f.update(ChanZUPTGyro, [eskfDim]float64{eB: 1}, in.ThetaDelta/dt-f.gBias,
			f.cfg.ESKF.ZUPTGyroStd*f.cfg.ESKF.ZUPTGyroStd)
		f.zuptUpdates.Inc()
	} else if d != 0 {
		// No lateral slip: a translating walker does not move cross-track,
		// so the cross-track position error is pseudo-measured as zero.
		// The innovation is identically zero (the nominal state trivially
		// satisfies the constraint), so this only conditions the
		// covariance, bounding heading-induced cross-track growth.
		sin, cos = math.Sincos(f.theta)
		f.update(ChanSlip, [eskfDim]float64{eX: -sin, eY: cos}, 0,
			f.cfg.ESKF.SlipStd*f.cfg.ESKF.SlipStd)
	}
	if in.HasMag {
		f.update(ChanMag, [eskfDim]float64{eTheta: 1},
			geom.NormalizeAngle(in.MagHeading-f.theta),
			f.cfg.ESKF.MagStd*f.cfg.ESKF.MagStd)
	}

	if f.trc != nil {
		// Same lane as the particle filter's steps (hop 0, see Filter.Step);
		// B distinguishes ZUPT-carrying steps instead of a particle count.
		b := int64(0)
		if zupt {
			b = 1
		}
		f.trc.Emit(trace.KindFusionStep, 0, -1, int64(q*1000), b)
	}
	return f.Estimate()
}

// update applies one scalar measurement on channel ch with row Jacobian h,
// innovation nu and noise variance r: Joseph-form covariance update, then
// the error estimate K·nu is folded into the nominal state and the error
// reset to zero. The (nu, S) pair is reported through Config.Innovations
// before the update so a consistency monitor sees the pre-update
// innovation statistics (NIS = nu²/S is chi-square(1) when the filter is
// consistent).
func (f *ESKF) update(ch int, h [eskfDim]float64, nu, r float64) {
	// S = h P hᵀ + r, K = P hᵀ / S.
	var ph [eskfDim]float64
	for i := 0; i < eskfDim; i++ {
		for j := 0; j < eskfDim; j++ {
			ph[i] += f.p[i][j] * h[j]
		}
	}
	s := r
	for i := 0; i < eskfDim; i++ {
		s += h[i] * ph[i]
	}
	if s <= 0 {
		return
	}
	if f.cfg.Innovations != nil {
		f.cfg.Innovations(ch, nu, s)
	}
	var k [eskfDim]float64
	for i := 0; i < eskfDim; i++ {
		k[i] = ph[i] / s
	}
	// Joseph form: P ← (I − K h) P (I − K h)ᵀ + K r Kᵀ, then force exact
	// symmetry so float round-off cannot accumulate into asymmetry.
	var ikh [eskfDim][eskfDim]float64
	for i := 0; i < eskfDim; i++ {
		for j := 0; j < eskfDim; j++ {
			ikh[i][j] = -k[i] * h[j]
		}
		ikh[i][i] += 1
	}
	f.p = matMulABAT(ikh, f.p)
	for i := 0; i < eskfDim; i++ {
		for j := 0; j < eskfDim; j++ {
			f.p[i][j] += k[i] * r * k[j]
		}
	}
	f.symmetrize()
	// Fold the error estimate into the nominal state (reset is implicit:
	// the error mean is zero again after folding).
	f.pos.X += k[eX] * nu
	f.pos.Y += k[eY] * nu
	f.theta = geom.NormalizeAngle(f.theta + k[eTheta]*nu)
	f.vBias += k[eV] * nu
	f.gBias += k[eB] * nu
}

// symmetrize forces the covariance exactly symmetric. A·B·Aᵀ is symmetric
// in exact arithmetic but its two triangles are summed in different orders
// in floating point; averaging them keeps round-off from accumulating.
func (f *ESKF) symmetrize() {
	for i := 0; i < eskfDim; i++ {
		for j := i + 1; j < eskfDim; j++ {
			m := (f.p[i][j] + f.p[j][i]) / 2
			f.p[i][j], f.p[j][i] = m, m
		}
	}
}

// matMulABAT returns A·B·Aᵀ for the filter's fixed-size matrices.
func matMulABAT(a, b [eskfDim][eskfDim]float64) [eskfDim][eskfDim]float64 {
	var ab, out [eskfDim][eskfDim]float64
	for i := 0; i < eskfDim; i++ {
		for j := 0; j < eskfDim; j++ {
			var s float64
			for l := 0; l < eskfDim; l++ {
				s += a[i][l] * b[l][j]
			}
			ab[i][j] = s
		}
	}
	for i := 0; i < eskfDim; i++ {
		for j := 0; j < eskfDim; j++ {
			var s float64
			for l := 0; l < eskfDim; l++ {
				s += ab[i][l] * a[j][l]
			}
			out[i][j] = s
		}
	}
	return out
}

// Estimate returns the current nominal pose.
func (f *ESKF) Estimate() geom.Pose {
	return geom.Pose{Pos: f.pos, Theta: f.theta}
}

// Covariance returns a copy of the 5×5 error-state covariance
// ([δx, δy, δθ, δv, δb] ordering) for tests and diagnostics.
func (f *ESKF) Covariance() [eskfDim][eskfDim]float64 { return f.p }

// SpeedBias returns the estimated RIM speed bias, m/s.
func (f *ESKF) SpeedBias() float64 { return f.vBias }

// GyroBias returns the estimated gyro rate bias, rad/s.
func (f *ESKF) GyroBias() float64 { return f.gBias }

// TrackAll runs the filter over a full input sequence and returns the pose
// estimate after every step.
func (f *ESKF) TrackAll(inputs []Input) []geom.Pose {
	out := make([]geom.Pose, len(inputs))
	for i, in := range inputs {
		out[i] = f.Step(in)
	}
	return out
}
