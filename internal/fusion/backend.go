package fusion

import (
	"fmt"

	"rim/internal/floorplan"
	"rim/internal/geom"
)

// Backend is the estimation backend shared by the map-constrained particle
// filter (Filter) and the error-state Kalman filter (ESKF): a sequential
// pose estimator fed one dead-reckoning Input per step. Both
// implementations are deterministic for a fixed Config and input sequence
// (the particle filter by its seeded RNG, the ESKF by being RNG-free),
// which the cross-backend regression tests pin bitwise.
type Backend interface {
	// Step advances the estimator by one input and returns the pose
	// estimate after the step.
	Step(in Input) geom.Pose
	// Estimate returns the current pose estimate without advancing.
	Estimate() geom.Pose
	// TrackAll runs the estimator over a full input sequence and returns
	// the pose estimate after every step.
	TrackAll(inputs []Input) []geom.Pose
}

var (
	_ Backend = (*Filter)(nil)
	_ Backend = (*ESKF)(nil)
)

// BackendKind selects which Backend New constructs.
type BackendKind int

const (
	// BackendParticle is the map-constrained particle filter (fusion.go):
	// heavier per step but able to exploit a floorplan for absolute
	// position correction. The zero value, so existing configurations keep
	// their behavior.
	BackendParticle BackendKind = iota
	// BackendESKF is the error-state Kalman filter (eskf.go): ~two orders
	// of magnitude cheaper per step (enforced ≥5x by TestFusionBenchGuard),
	// estimates speed/gyro biases from ZUPT pseudo-measurements, but does
	// not consume a floorplan.
	BackendESKF
)

// String implements fmt.Stringer with the names ParseBackend accepts.
func (k BackendKind) String() string {
	switch k {
	case BackendParticle:
		return "particle"
	case BackendESKF:
		return "eskf"
	default:
		return fmt.Sprintf("backend(%d)", int(k))
	}
}

// ParseBackend maps a flag value to its BackendKind.
func ParseBackend(s string) (BackendKind, bool) {
	switch s {
	case "particle", "pf":
		return BackendParticle, true
	case "eskf", "kalman":
		return BackendESKF, true
	}
	return BackendParticle, false
}

// New constructs the backend selected by cfg.Backend around the known
// initial pose. plan is the floorplan for the particle filter's wall
// constraint (nil disables it); the ESKF ignores it.
func New(plan *floorplan.Plan, initial geom.Pose, cfg Config) (Backend, error) {
	switch cfg.Backend {
	case BackendParticle:
		return NewFilter(plan, initial, cfg), nil
	case BackendESKF:
		return NewESKF(initial, cfg), nil
	default:
		return nil, fmt.Errorf("fusion: unknown backend kind %d", int(cfg.Backend))
	}
}
