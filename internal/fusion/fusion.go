// Package fusion integrates RIM with inertial sensors and a floorplan, as
// in the paper's §6.3.3 tracking case study: RIM supplies drift-free speed,
// the gyroscope supplies heading changes, and a map-constrained particle
// filter corrects heading drift by discarding particles that walk through
// walls (Fig. 21).
package fusion

import (
	"math"
	"math/rand"

	"rim/internal/floorplan"
	"rim/internal/geom"
	"rim/internal/obs"
	"rim/internal/obs/trace"
)

// Input is one fused dead-reckoning step: a travelled distance increment
// and a heading-change increment (from the gyro or from RIM's rotation
// estimate).
type Input struct {
	DistDelta  float64 // meters moved this step
	ThetaDelta float64 // heading change this step, radians
	// Quality weights the step's reliability in (0,1]: degraded RIM slots
	// (packet-loss bursts, dead antennas, low alignment confidence) pass
	// their confidence here so the filter widens its diffusion instead of
	// trusting the distance. <= 0 means unknown and is treated as 1.
	Quality float64
	// ZUPT marks the step as inside a confirmed zero-velocity interval
	// (core.ZUPTInterval): the device is known static, so the raw distance
	// and gyro increments measure pure sensor bias. The ESKF backend turns
	// the step into zero-velocity pseudo-measurements; the particle filter
	// ignores the flag (map constraints already absorb static drift).
	ZUPT bool
	// MagHeading is an absolute world-frame heading observation in radians
	// (e.g. a soft-iron-distorted magnetometer), valid only when HasMag is
	// set. Consumed by the ESKF backend as a weak absolute-heading update;
	// ignored by the particle filter, whose floorplan provides the absolute
	// reference instead.
	MagHeading float64
	HasMag     bool
}

// Measurement channels of the ESKF backend, identifying which
// pseudo-measurement produced an innovation reported through
// Config.Innovations. The ordinals are stable: consistency monitors key
// their per-channel acceptance windows on them.
const (
	// ChanZUPTSpeed is the zero-velocity speed pseudo-measurement.
	ChanZUPTSpeed = iota
	// ChanZUPTGyro is the zero-rotation gyro pseudo-measurement.
	ChanZUPTGyro
	// ChanSlip is the no-lateral-slip pseudo-measurement. Its innovation
	// is identically zero by construction (see ESKF.Step), so consumers
	// track it separately and must not let it dilute the other channels.
	ChanSlip
	// ChanMag is the absolute magnetic-heading update.
	ChanMag

	// NumChannels bounds the channel ordinals.
	NumChannels
)

// ChannelName returns the stable metric-label name of a measurement
// channel.
func ChannelName(ch int) string {
	switch ch {
	case ChanZUPTSpeed:
		return "zupt_speed"
	case ChanZUPTGyro:
		return "zupt_gyro"
	case ChanSlip:
		return "slip"
	case ChanMag:
		return "mag"
	}
	return "unknown"
}

// Config parameterizes the particle filter.
type Config struct {
	// NumParticles (default 400).
	NumParticles int
	// PosStd is per-step position diffusion in meters (default 0.01).
	PosStd float64
	// ThetaStd is per-step heading diffusion in radians (default 0.01).
	ThetaStd float64
	// InitPosStd / InitThetaStd spread the initial particle cloud.
	InitPosStd   float64
	InitThetaStd float64
	// ResampleFrac triggers systematic resampling when the effective
	// sample size falls below this fraction (default 0.5).
	ResampleFrac float64
	// Seed drives the filter randomness.
	Seed int64
	// Backend selects the estimation backend New constructs: the
	// map-constrained particle filter (the zero value, BackendParticle) or
	// the error-state Kalman filter (BackendESKF). See backend.go and
	// DESIGN.md "Fusion backends & ZUPT" for the trade-off.
	Backend BackendKind
	// StepSeconds is the wall-clock duration of one Input step (default
	// 0.01 s). The ESKF needs it to convert distance/heading increments
	// into rates for its bias states; the particle filter does not use it.
	StepSeconds float64
	// ESKF tunes the error-state Kalman backend; zero fields take the
	// defaults documented on ESKFParams. Ignored by the particle filter.
	ESKF ESKFParams
	// Obs, when non-nil, receives the filter's run metrics: steps and
	// resampling/revival events, the distribution of input quality, and a
	// live-particle gauge. Fully optional; a nil registry costs nothing.
	Obs *obs.Registry
	// Trace, when non-nil, receives one trace.KindFusionStep event per Step
	// (A = input quality in permille, B = particles alive afterwards) so
	// fused runs carry the filter's decisions in their causal trace.
	Trace *trace.Recorder
	// Innovations, when non-nil, receives every scalar measurement update
	// the ESKF backend applies: the channel ordinal (Chan* constants), the
	// innovation nu and the innovation variance S = h·P·hᵀ + r. nu²/S is
	// the per-update Normalized Innovation Squared a consistency monitor
	// (internal/obs/quality) checks against its chi-square band. The
	// particle filter has no innovations and ignores the hook. Called
	// synchronously from Step — keep it cheap and non-blocking.
	Innovations func(channel int, nu, s float64)
	// PFStats, when non-nil, receives the particle filter's per-step
	// health statistics: the effective sample size as a fraction of the
	// cloud (1 = uniform weights, →1/N = degenerate) and the weight
	// entropy as a fraction of the uniform-cloud maximum ln N. The ESKF
	// backend has no particle cloud and ignores the hook. Called
	// synchronously from Step.
	PFStats func(essFrac, entropyFrac float64)
}

// DefaultConfig returns the settings used for Fig. 21.
func DefaultConfig(seed int64) Config {
	return Config{
		NumParticles: 400,
		PosStd:       0.01,
		ThetaStd:     0.01,
		InitPosStd:   0.1,
		InitThetaStd: 0.05,
		ResampleFrac: 0.5,
		Seed:         seed,
	}
}

type particle struct {
	pos    geom.Vec2
	theta  float64
	weight float64
}

// Filter is the map-constrained particle filter.
type Filter struct {
	cfg   Config
	plan  *floorplan.Plan
	rng   *rand.Rand
	parts []particle

	// Observability handles (nil = unobserved).
	steps, resamples, revivals *obs.Counter
	qualityH                   *obs.Histogram
	aliveGauge                 *obs.Gauge
	trc                        *trace.Recorder
}

// NewFilter initializes the particle cloud around the known initial pose
// (the paper's tracking demo is given the initial location and direction).
func NewFilter(plan *floorplan.Plan, initial geom.Pose, cfg Config) *Filter {
	if cfg.NumParticles <= 0 {
		cfg.NumParticles = 400
	}
	if cfg.ResampleFrac <= 0 {
		cfg.ResampleFrac = 0.5
	}
	f := &Filter{cfg: cfg, plan: plan, rng: rand.New(rand.NewSource(cfg.Seed)), trc: cfg.Trace}
	if cfg.Obs != nil {
		f.steps = cfg.Obs.Counter("rim_fusion_steps_total",
			"particle-filter dead-reckoning steps processed")
		f.resamples = cfg.Obs.Counter("rim_fusion_resamples_total",
			"systematic resampling passes triggered by weight degeneracy")
		f.revivals = cfg.Obs.Counter("rim_fusion_revivals_total",
			"cloud revivals after every particle hit a wall")
		f.qualityH = cfg.Obs.Histogram("rim_fusion_quality_ratio",
			"per-step RIM input quality weight in (0,1]",
			[]float64{0.1, 0.25, 0.5, 0.75, 0.9, 1})
		f.aliveGauge = cfg.Obs.Gauge("rim_fusion_particles_alive",
			"particles with non-zero weight after the latest step")
	}
	w := 1 / float64(cfg.NumParticles)
	for i := 0; i < cfg.NumParticles; i++ {
		f.parts = append(f.parts, particle{
			pos: initial.Pos.Add(geom.Vec2{
				X: f.rng.NormFloat64() * cfg.InitPosStd,
				Y: f.rng.NormFloat64() * cfg.InitPosStd,
			}),
			theta:  initial.Theta + f.rng.NormFloat64()*cfg.InitThetaStd,
			weight: w,
		})
	}
	return f
}

// Step advances every particle by the dead-reckoning input plus diffusion,
// kills particles that cross a wall (weight 0), renormalizes, and resamples
// when the weights degenerate. It returns the weighted mean pose estimate.
func (f *Filter) Step(in Input) geom.Pose {
	// Degraded inputs widen the diffusion: a slot measured through packet
	// loss or on a reduced antenna set carries the same dead-reckoning
	// increment but much less certainty, so the cloud must spread rather
	// than commit.
	q := in.Quality
	if q <= 0 || q > 1 {
		q = 1
	}
	f.steps.Inc()
	f.qualityH.Observe(q)
	spread := 1 + 2*(1-q)
	var totalW float64
	for i := range f.parts {
		p := &f.parts[i]
		if p.weight == 0 {
			continue
		}
		p.theta = geom.NormalizeAngle(p.theta + in.ThetaDelta + f.rng.NormFloat64()*f.cfg.ThetaStd*spread)
		step := in.DistDelta + f.rng.NormFloat64()*f.cfg.PosStd*math.Abs(in.DistDelta)*10*spread
		next := p.pos.Add(geom.FromPolar(step, p.theta))
		if f.plan != nil && f.plan.SegmentHitsWall(p.pos, next) {
			p.weight = 0 // the paper: discard every particle that hits a wall
			continue
		}
		p.pos = next
		totalW += p.weight
	}
	if totalW == 0 {
		// All particles died (e.g. dead-reckoning drove the cloud into a
		// wall): revive by resampling around the surviving positions with
		// broad diffusion.
		f.revivals.Inc()
		f.revive()
	} else {
		inv := 1 / totalW
		for i := range f.parts {
			f.parts[i].weight *= inv
		}
	}
	if f.cfg.PFStats != nil {
		// Report the post-update, pre-resample statistics: degeneracy is
		// the signal; resampling deliberately erases it.
		entFrac := 0.0
		if n := float64(len(f.parts)); n > 1 {
			entFrac = f.weightEntropy() / math.Log(n)
		}
		f.cfg.PFStats(f.effectiveFraction(), entFrac)
	}
	if f.effectiveFraction() < f.cfg.ResampleFrac {
		f.resamples.Inc()
		f.resample()
	}
	if f.aliveGauge != nil {
		f.aliveGauge.Set(float64(f.NumAlive()))
	}
	if f.trc != nil {
		// Fusion consumes finalized estimates downstream of the hop loop,
		// so its steps belong to the batch scope (hop 0).
		f.trc.Emit(trace.KindFusionStep, 0, -1, int64(q*1000), int64(f.NumAlive()))
	}
	return f.Estimate()
}

// Estimate returns the weighted mean pose of the cloud.
func (f *Filter) Estimate() geom.Pose {
	var pos geom.Vec2
	var sx, sy, w float64
	for _, p := range f.parts {
		pos = pos.Add(p.pos.Scale(p.weight))
		sx += math.Cos(p.theta) * p.weight
		sy += math.Sin(p.theta) * p.weight
		w += p.weight
	}
	if w == 0 {
		return geom.Pose{}
	}
	return geom.Pose{Pos: pos.Scale(1 / w), Theta: math.Atan2(sy, sx)}
}

// NumAlive returns the number of particles with non-zero weight.
func (f *Filter) NumAlive() int {
	n := 0
	for _, p := range f.parts {
		if p.weight > 0 {
			n++
		}
	}
	return n
}

func (f *Filter) effectiveFraction() float64 {
	var sum2 float64
	for _, p := range f.parts {
		sum2 += p.weight * p.weight
	}
	if sum2 == 0 {
		return 0
	}
	return 1 / sum2 / float64(len(f.parts))
}

// weightEntropy returns the Shannon entropy of the (normalized) particle
// weights in nats: ln N for a uniform cloud, 0 for a fully degenerate one.
func (f *Filter) weightEntropy() float64 {
	var h float64
	for _, p := range f.parts {
		if p.weight > 0 {
			h -= p.weight * math.Log(p.weight)
		}
	}
	return h
}

// resample performs systematic resampling proportional to weights.
func (f *Filter) resample() {
	n := len(f.parts)
	out := make([]particle, 0, n)
	step := 1.0 / float64(n)
	u := f.rng.Float64() * step
	var cum float64
	idx := 0
	for i := 0; i < n; i++ {
		target := u + float64(i)*step
		for idx < n-1 && cum+f.parts[idx].weight < target {
			cum += f.parts[idx].weight
			idx++
		}
		p := f.parts[idx]
		p.weight = step
		out = append(out, p)
	}
	f.parts = out
}

// revive rebuilds a dead cloud around the last known positions.
func (f *Filter) revive() {
	// Find the centroid of the (dead) cloud and respawn with diffusion.
	var c geom.Vec2
	var sx, sy float64
	for _, p := range f.parts {
		c = c.Add(p.pos)
		sx += math.Cos(p.theta)
		sy += math.Sin(p.theta)
	}
	inv := 1 / float64(len(f.parts))
	c = c.Scale(inv)
	theta := math.Atan2(sy, sx)
	w := 1 / float64(len(f.parts))
	for i := range f.parts {
		f.parts[i] = particle{
			pos: c.Add(geom.Vec2{
				X: f.rng.NormFloat64() * 0.3,
				Y: f.rng.NormFloat64() * 0.3,
			}),
			theta:  theta + f.rng.NormFloat64()*0.2,
			weight: w,
		}
	}
}

// TrackAll runs the filter over a full input sequence and returns the pose
// estimate after every step.
func (f *Filter) TrackAll(inputs []Input) []geom.Pose {
	out := make([]geom.Pose, len(inputs))
	for i, in := range inputs {
		out[i] = f.Step(in)
	}
	return out
}
