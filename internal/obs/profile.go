package obs

import (
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// On-breach CPU profiling. A flight-recorder bundle explains *what* the
// pipeline decided around a breach; when the breach is an SLO page or an
// estimator-quality alert, the other half of the question is *where the
// CPU went*. The profiler captures a short pprof CPU profile into the
// postmortem bundle directory on demand, rate-limited so a flapping
// objective cannot turn the daemon into a profiling loop.

// CPUProfilerConfig parameterizes NewCPUProfiler.
type CPUProfilerConfig struct {
	// Dir is the directory profiles are written to (the postmortem
	// bundle directory, so profile and flight capture land side by
	// side). Empty disables the profiler.
	Dir string
	// Duration is the profile length (default 5s).
	Duration time.Duration
	// MinInterval rate-limits captures (default 60s).
	MinInterval time.Duration
	// Log receives capture/skip events. nil uses the package logger.
	Log *slog.Logger
}

// CPUProfiler captures rate-limited CPU profiles on breach transitions.
// The nil profiler is valid and inert, mirroring trace.Flight.
type CPUProfiler struct {
	cfg CPUProfilerConfig

	mu      sync.Mutex
	last    time.Time
	running bool
	seq     int

	captures atomic.Uint64
}

// NewCPUProfiler builds a profiler. Returns nil when cfg.Dir is empty —
// callers hold the nil handle and every Offer no-ops.
func NewCPUProfiler(cfg CPUProfilerConfig) *CPUProfiler {
	if cfg.Dir == "" {
		return nil
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 5 * time.Second
	}
	if cfg.MinInterval <= 0 {
		cfg.MinInterval = time.Minute
	}
	if cfg.Log == nil {
		cfg.Log = Logger()
	}
	return &CPUProfiler{cfg: cfg}
}

// Offer requests a capture tagged with the breach reason (the profile is
// written as profile-<seq>-<reason>.pprof next to the flight recorder's
// postmortem-<seq>-<reason>.json). Returns false when the profiler is
// nil, disabled, already profiling, or inside the rate-limit window; the
// capture itself runs on its own goroutine so the paging path never
// blocks for the profile duration.
func (p *CPUProfiler) Offer(reason string) bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	now := time.Now()
	if p.running || (!p.last.IsZero() && now.Sub(p.last) < p.cfg.MinInterval) {
		p.mu.Unlock()
		return false
	}
	p.running = true
	p.last = now
	p.seq++
	seq := p.seq
	p.mu.Unlock()
	go p.capture(seq, reason)
	return true
}

func (p *CPUProfiler) capture(seq int, reason string) {
	defer func() {
		p.mu.Lock()
		p.running = false
		p.mu.Unlock()
	}()
	path := filepath.Join(p.cfg.Dir, fmt.Sprintf("profile-%d-%s.pprof", seq, reason))
	f, err := os.Create(path)
	if err != nil {
		p.cfg.Log.Warn("cpu profile create failed", "path", path, "err", err)
		return
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		// Another profile is already running (e.g. an operator curl on
		// /debug/pprof/profile): theirs wins, ours is redundant.
		p.cfg.Log.Warn("cpu profile start failed", "err", err)
		f.Close()
		os.Remove(path)
		return
	}
	time.Sleep(p.cfg.Duration)
	pprof.StopCPUProfile()
	if err := f.Close(); err != nil {
		p.cfg.Log.Warn("cpu profile close failed", "path", path, "err", err)
		return
	}
	p.captures.Add(1)
	p.cfg.Log.Info("cpu profile captured", "path", path, "reason", reason,
		"duration", p.cfg.Duration)
}

// Captures returns the number of completed profile captures.
func (p *CPUProfiler) Captures() uint64 {
	if p == nil {
		return 0
	}
	return p.captures.Load()
}
