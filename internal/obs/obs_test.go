package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("rim_test_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	// Get-or-create returns the same handle.
	if r.Counter("rim_test_total", "a counter") != c {
		t.Error("Counter did not return the registered handle")
	}
	g := r.Gauge("rim_test_gauge", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %v, want 1.5", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("rim_x_total", "")
	g := r.Gauge("rim_x", "")
	h := r.Timer("rim_x_seconds", "")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil metric handles")
	}
	// All of these must be no-ops, not panics.
	c.Inc()
	c.Add(7)
	g.Set(1)
	g.Add(1)
	h.Observe(0.5)
	sp := StartSpan(h)
	sp.End()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil metric reads must be zero")
	}
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("nil histogram quantile must be NaN")
	}
	if r.Snapshot() != nil {
		t.Error("nil registry snapshot must be nil")
	}
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("rim_lat_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 5.56; math.Abs(got-want) > 1e-12 {
		t.Errorf("sum = %v, want %v", got, want)
	}
	// Snapshot buckets must be cumulative with the +Inf bucket = count.
	snap := r.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d metrics, want 1", len(snap))
	}
	m := snap[0]
	wantCum := []uint64{2, 3, 4, 5}
	if len(m.Buckets) != len(wantCum) {
		t.Fatalf("buckets = %d, want %d", len(m.Buckets), len(wantCum))
	}
	for i, b := range m.Buckets {
		if b.CumulativeCount != wantCum[i] {
			t.Errorf("bucket %d cumulative = %d, want %d", i, b.CumulativeCount, wantCum[i])
		}
	}
	if !math.IsInf(m.Buckets[3].UpperBound, 1) {
		t.Error("last bucket bound must be +Inf")
	}
	// Median lands in the (0.01, 0.1] bucket.
	q := h.Quantile(0.5)
	if q <= 0.01 || q > 0.1 {
		t.Errorf("P50 = %v, want in (0.01, 0.1]", q)
	}
	// P99 lands beyond the finite buckets and clamps to the top bound.
	if got := h.Quantile(0.99); got != 1 {
		t.Errorf("P99 = %v, want clamp to 1", got)
	}
}

// TestQuantileExplicitInfBucket is the regression test for quantile
// estimation on histograms registered with an explicit +Inf bound: the
// interpolation used to return +Inf (or NaN at frac 0) instead of clamping
// to the last finite boundary like the implicit overflow bucket does.
func TestQuantileExplicitInfBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("rim_inf_seconds", "explicit +Inf bound", []float64{0.1, 1, math.Inf(1)})
	for _, v := range []float64{0.05, 0.5, 50, 500} {
		h.Observe(v)
	}
	// Half the observations overflow the finite bounds; every upper
	// quantile must clamp to the last finite boundary, never +Inf or NaN.
	for _, q := range []float64{0.75, 0.9, 0.99, 1} {
		got := h.Quantile(q)
		if math.IsInf(got, 0) || math.IsNaN(got) {
			t.Fatalf("Quantile(%v) = %v, want finite clamp", q, got)
		}
		if got != 1 {
			t.Errorf("Quantile(%v) = %v, want clamp to last finite bound 1", q, got)
		}
	}
	// Lower quantiles still interpolate inside finite buckets.
	if p25 := h.Quantile(0.25); p25 <= 0 || p25 > 0.1 {
		t.Errorf("P25 = %v, want in (0, 0.1]", p25)
	}
	// The stripped bound must not double up the overflow bucket in the
	// exposition: snapshot ends with exactly one +Inf bucket.
	snap := r.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d metrics, want 1", len(snap))
	}
	bs := snap[0].Buckets
	if len(bs) != 3 { // 0.1, 1, +Inf
		t.Fatalf("buckets = %d, want 3 (trailing +Inf bound stripped)", len(bs))
	}
	if !math.IsInf(bs[2].UpperBound, 1) || bs[2].CumulativeCount != 4 {
		t.Errorf("overflow bucket = %+v, want +Inf with count 4", bs[2])
	}
	if math.IsInf(bs[1].UpperBound, 1) {
		t.Error("second bucket is +Inf: explicit bound not stripped")
	}
}

func TestSpanRecords(t *testing.T) {
	r := NewRegistry()
	h := r.Timer("rim_span_seconds", "")
	sp := StartSpan(h)
	time.Sleep(time.Millisecond)
	sp.End()
	if h.Count() != 1 {
		t.Fatalf("span count = %d, want 1", h.Count())
	}
	if h.Sum() < 0.0005 {
		t.Errorf("span sum = %v, want >= ~1ms", h.Sum())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("rim_dual", "")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("rim_dual", "")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Error("invalid metric name must panic")
		}
	}()
	r.Counter("rim metrics with spaces", "")
}

// TestConcurrentUse hammers one registry from many goroutines; run under
// -race in CI.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("rim_conc_total", "")
			h := r.Timer("rim_conc_seconds", "")
			ga := r.Gauge("rim_conc", "")
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i) * 1e-6)
				ga.Add(1)
				if i%100 == 0 {
					r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("rim_conc_total", "").Value(); got != 8000 {
		t.Errorf("concurrent counter = %d, want 8000", got)
	}
	if got := r.Timer("rim_conc_seconds", "").Count(); got != 8000 {
		t.Errorf("concurrent histogram count = %d, want 8000", got)
	}
}

func TestLoggerDefaults(t *testing.T) {
	if Logger() != NopLogger() {
		t.Error("default package logger must be the no-op logger")
	}
	l := NewTextLogger(nopWriter{}, -8)
	SetLogger(l)
	if Logger() != l {
		t.Error("SetLogger did not take")
	}
	SetLogger(nil)
	if Logger() != NopLogger() {
		t.Error("SetLogger(nil) must restore the no-op logger")
	}
	// The no-op logger must swallow records without panicking.
	NopLogger().Error("nothing to see", "k", "v")
}

type nopWriter struct{}

func (nopWriter) Write(p []byte) (int, error) { return len(p), nil }
