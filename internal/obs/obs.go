// Package obs is RIM's dependency-free observability substrate: a metrics
// registry of atomic counters, gauges and fixed-bucket latency histograms,
// lightweight stage-span timers, structured logging helpers (log/slog),
// and HTTP exposition in both expvar and Prometheus text format plus a
// pprof-equipped debug mux (see http.go).
//
// The package is built for hot paths: every metric handle is nil-safe, so
// un-instrumented runs (a nil *Registry) pay only a nil check per
// operation — no time.Now() calls, no allocation, no atomics. Pipelines
// resolve their handles once at construction and the per-packet cost of
// disabled observability stays far below 1% of a streaming hop (guarded by
// TestObsOverheadGuard and BENCH_obs.json at the repo root).
//
// Metric naming follows the Prometheus conventions: `rim_` prefix,
// `_total` suffix on counters, `_seconds` on latency histograms. The full
// metric table lives in DESIGN.md ("Observability").
package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"regexp"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// validName is the Prometheus metric name charset.
var validName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// Counter is a monotonically increasing counter. All methods are safe on a
// nil receiver (no-ops), so disabled instrumentation costs one nil check.
type Counter struct {
	name, help string
	v          atomic.Uint64
	// fwd, when set, redirects increments into a family's overflow child:
	// a label-set child evicted past its family's cardinality cap keeps
	// counting — into "other" — instead of silently losing live handles'
	// increments (see family.go).
	fwd atomic.Pointer[Counter]
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (n is unsigned: counters only go up).
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	if f := c.fwd.Load(); f != nil {
		f.v.Add(n)
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value. Nil-safe like Counter.
type Gauge struct {
	name, help string
	bits       atomic.Uint64
	// detached marks a gauge child evicted from its family: instantaneous
	// values cannot be meaningfully merged into an overflow child the way
	// counts can, so an evicted gauge's handle simply goes quiet.
	detached atomic.Bool
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil || g.detached.Load() {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta (CAS loop; gauges move both ways).
func (g *Gauge) Add(delta float64) {
	if g == nil || g.detached.Load() {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution (Prometheus semantics: bounds
// are inclusive upper edges, +Inf is implicit). Observations are atomic;
// snapshots are not a consistent cut across buckets/sum, which is the
// standard (and harmless) relaxation for monitoring. Nil-safe.
type Histogram struct {
	name, help string
	bounds     []float64 // ascending upper bounds, +Inf excluded
	counts     []atomic.Uint64
	infCount   atomic.Uint64
	sumBits    atomic.Uint64 // float64 bits, CAS-added
	count      atomic.Uint64
	// fwd redirects observations into a family's overflow child after
	// eviction, like Counter.fwd (the overflow child itself is never
	// evicted, so chains cannot form).
	fwd atomic.Pointer[Histogram]
}

// DefLatencyBuckets are the default stage-latency bucket bounds in
// seconds: 10 µs to 2.5 s, roughly ×2.5 apart — wide enough for a full
// batch rebuild, fine enough to resolve an incremental hop.
var DefLatencyBuckets = []float64{
	10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3,
	250e-3, 500e-3, 1, 2.5,
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if f := h.fwd.Load(); f != nil {
		f.Observe(v)
		return
	}
	// Binary search is overkill for <32 buckets; linear scan is
	// branch-predictor friendly and allocation-free.
	placed := false
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			placed = true
			break
		}
	}
	if !placed {
		h.infCount.Add(1)
	}
	h.count.Add(1)
	h.addSum(v)
}

// addSum CAS-adds v into the running sum.
func (h *Histogram) addSum(v float64) {
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// absorb drains src's buckets, counts and sum into h (family eviction:
// both histograms share bucket bounds, as children of one family always
// do). Observations racing the drain may be split across src and h for one
// snapshot, the usual monitoring relaxation; nothing is double-counted.
func (h *Histogram) absorb(src *Histogram) {
	for i := range src.counts {
		h.counts[i].Add(src.counts[i].Swap(0))
	}
	h.infCount.Add(src.infCount.Swap(0))
	h.count.Add(src.count.Swap(0))
	h.addSum(math.Float64frombits(src.sumBits.Swap(0)))
}

// CountAtOrBelow returns the number of observations recorded in buckets
// whose upper bound is <= le — the "good events" reading an SLO needs from
// a latency histogram (le should be one of the bucket bounds; an
// in-between le conservatively excludes the straddling bucket). A +Inf le
// returns Count(). Nil-safe (0).
func (h *Histogram) CountAtOrBelow(le float64) uint64 {
	if h == nil {
		return 0
	}
	if math.IsInf(le, 1) {
		return h.count.Load()
	}
	var cum uint64
	for i, b := range h.bounds {
		if b > le {
			break
		}
		cum += h.counts[i].Load()
	}
	return cum
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates the q-quantile (q in [0,1]) from the bucket counts by
// linear interpolation inside the located bucket, the same estimate
// Prometheus' histogram_quantile computes. Returns NaN when empty; values
// landing in the +Inf bucket clamp to the highest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || h.count.Load() == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	total := h.count.Load()
	rank := q * float64(total)
	var cum uint64
	lower := 0.0
	for i, b := range h.bounds {
		c := h.counts[i].Load()
		if float64(cum+c) >= rank && c > 0 {
			if math.IsInf(b, 1) {
				// Defensive: a +Inf bound (possible on histograms built
				// before registration-time stripping) cannot be
				// interpolated into; clamp to the last finite boundary,
				// matching the overflow bucket's behavior below.
				return lower
			}
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lower + (b-lower)*frac
		}
		cum += c
		lower = b
	}
	if len(h.bounds) > 0 {
		return h.bounds[len(h.bounds)-1]
	}
	return math.NaN()
}

// Span is a started stage timer; End records the elapsed seconds into the
// histogram. The zero Span (from a nil histogram) is a no-op and performs
// no clock reads, so spans on disabled registries cost two nil checks.
type Span struct {
	h  *Histogram
	t0 time.Time
}

// StartSpan begins timing into h (no-op Span when h is nil).
func StartSpan(h *Histogram) Span {
	if h == nil {
		return Span{}
	}
	return Span{h: h, t0: time.Now()}
}

// End records the elapsed time. Safe to call on the zero Span.
func (s Span) End() {
	if s.h == nil {
		return
	}
	s.h.Observe(time.Since(s.t0).Seconds())
}

// Registry is a named collection of metrics. The zero value is ready to
// use; a nil *Registry is valid everywhere and hands out nil metric
// handles, making every downstream operation a no-op.
//
// Registry contains a mutex and must not be copied after first use
// (enforced repo-wide by `go vet -copylocks`).
type Registry struct {
	mu      sync.Mutex
	metrics map[string]any // *Counter | *Gauge | *Histogram | *CounterFamily | *GaugeFamily | *HistogramFamily
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) lookup(name string) (any, bool) {
	if r.metrics == nil {
		r.metrics = make(map[string]any)
	}
	m, ok := r.metrics[name]
	if !ok && !validName.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	return m, ok
}

// Counter returns the counter registered under name, creating it on first
// use. Re-registering a name as a different metric kind panics (programmer
// error). A nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.lookup(name); ok {
		c, ok := m.(*Counter)
		if !ok {
			panic(fmt.Sprintf("obs: metric %q already registered as %T, not counter", name, m))
		}
		return c
	}
	c := &Counter{name: name, help: help}
	r.metrics[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.lookup(name); ok {
		g, ok := m.(*Gauge)
		if !ok {
			panic(fmt.Sprintf("obs: metric %q already registered as %T, not gauge", name, m))
		}
		return g
	}
	g := &Gauge{name: name, help: help}
	r.metrics[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket bounds on first use (nil bounds select
// DefLatencyBuckets). Bounds must be strictly ascending.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.lookup(name); ok {
		h, ok := m.(*Histogram)
		if !ok {
			panic(fmt.Sprintf("obs: metric %q already registered as %T, not histogram", name, m))
		}
		return h
	}
	if bounds == nil {
		bounds = DefLatencyBuckets
	}
	// The implicit overflow bucket is already +Inf; an explicit trailing
	// +Inf bound would both double it up and poison Quantile's
	// interpolation (lower + (Inf-lower)*frac is Inf, or NaN at frac 0).
	if n := len(bounds); n > 0 && math.IsInf(bounds[n-1], 1) {
		bounds = bounds[:n-1]
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bucket bounds not ascending at %d", name, i))
		}
	}
	h := &Histogram{name: name, help: help, bounds: bounds}
	h.counts = make([]atomic.Uint64, len(bounds))
	r.metrics[name] = h
	return h
}

// Timer is the convenience for stage-latency histograms: a histogram with
// the default latency buckets.
func (r *Registry) Timer(name, help string) *Histogram {
	return r.Histogram(name, help, nil)
}

// Bucket is one cumulative histogram bucket in a snapshot.
type Bucket struct {
	// UpperBound is the inclusive upper edge (+Inf for the last bucket).
	UpperBound float64 `json:"-"`
	// CumulativeCount counts observations <= UpperBound.
	CumulativeCount uint64 `json:"count"`
}

// bucketJSON is Bucket's wire form: encoding/json rejects +Inf, so the
// upper edge travels as a string — the same convention Prometheus uses for
// the le label.
type bucketJSON struct {
	UpperBound      string `json:"le"`
	CumulativeCount uint64 `json:"count"`
}

// MarshalJSON encodes the bucket with its upper edge as a string ("+Inf"
// for the overflow bucket).
func (b Bucket) MarshalJSON() ([]byte, error) {
	return json.Marshal(bucketJSON{
		UpperBound:      formatFloat(b.UpperBound),
		CumulativeCount: b.CumulativeCount,
	})
}

// UnmarshalJSON decodes the string upper edge back into a float64.
func (b *Bucket) UnmarshalJSON(data []byte) error {
	var j bucketJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	le, err := strconv.ParseFloat(j.UpperBound, 64)
	if err != nil {
		return fmt.Errorf("obs: bucket le %q: %w", j.UpperBound, err)
	}
	b.UpperBound = le
	b.CumulativeCount = j.CumulativeCount
	return nil
}

// Metric is one metric's point-in-time snapshot (JSON-marshalable for
// /healthz and expvar).
type Metric struct {
	Name string `json:"name"`
	Help string `json:"help,omitempty"`
	Type string `json:"type"` // "counter" | "gauge" | "histogram"
	// Labels identifies one child of a labeled family (nil on plain
	// metrics). Children of one family share Name and Type and appear as
	// consecutive snapshot entries.
	Labels map[string]string `json:"labels,omitempty"`
	// Value carries counter and gauge readings.
	Value float64 `json:"value,omitempty"`
	// Count/Sum/Buckets carry histogram readings.
	Count   uint64   `json:"count,omitempty"`
	Sum     float64  `json:"sum,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot returns every registered metric's current reading, sorted by
// name. Nil registries return nil.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.metrics))
	for n := range r.metrics {
		names = append(names, n)
	}
	handles := make([]any, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		handles = append(handles, r.metrics[n])
	}
	r.mu.Unlock()

	out := make([]Metric, 0, len(names))
	for i, n := range names {
		switch m := handles[i].(type) {
		case *Counter:
			out = append(out, Metric{Name: n, Help: m.help, Type: "counter", Value: float64(m.Value())})
		case *Gauge:
			out = append(out, Metric{Name: n, Help: m.help, Type: "gauge", Value: m.Value()})
		case *Histogram:
			out = append(out, snapshotHistogram(n, m.help, nil, m))
		case *CounterFamily:
			out = m.f.snapshotInto(out)
		case *GaugeFamily:
			out = m.f.snapshotInto(out)
		case *HistogramFamily:
			out = m.f.snapshotInto(out)
		}
	}
	return out
}

// snapshotHistogram builds one histogram Metric (cumulative buckets plus
// the mandatory +Inf overflow bucket).
func snapshotHistogram(name, help string, labels map[string]string, m *Histogram) Metric {
	sm := Metric{Name: name, Help: help, Type: "histogram", Labels: labels, Count: m.Count(), Sum: m.Sum()}
	var cum uint64
	for bi, b := range m.bounds {
		cum += m.counts[bi].Load()
		sm.Buckets = append(sm.Buckets, Bucket{UpperBound: b, CumulativeCount: cum})
	}
	cum += m.infCount.Load()
	sm.Buckets = append(sm.Buckets, Bucket{UpperBound: math.Inf(1), CumulativeCount: cum})
	return sm
}
