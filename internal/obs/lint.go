package obs

import (
	"fmt"
	"sort"
	"strings"
)

// LintMetricNames walks a registry snapshot and returns one violation
// string per metric that breaks the repo's Prometheus naming conventions:
//
//   - names match the Prometheus charset (validName)
//   - counters end in _total (and nothing else does)
//   - histograms carry a base-unit suffix: _seconds, _bytes, or _ratio
//     for unitless distributions in [0,1]
//   - label names match the charset and do not start with __ (reserved)
//
// An empty result means the exposition is clean. Tests assert on this so
// a new metric with a drive-by name breaks CI instead of dashboards.
func LintMetricNames(snap []Metric) []string {
	var bad []string
	seen := map[string]bool{}
	for _, m := range snap {
		for l := range m.Labels {
			if !validName.MatchString(l) || strings.HasPrefix(l, "__") {
				bad = append(bad, fmt.Sprintf("%s: invalid label name %q", m.Name, l))
			}
		}
		if seen[m.Name] {
			continue // one verdict per family, not per child
		}
		seen[m.Name] = true
		if !validName.MatchString(m.Name) {
			bad = append(bad, fmt.Sprintf("%s: invalid metric name charset", m.Name))
			continue
		}
		switch m.Type {
		case "counter":
			if !strings.HasSuffix(m.Name, "_total") {
				bad = append(bad, fmt.Sprintf("%s: counter must end in _total", m.Name))
			}
		case "gauge":
			if strings.HasSuffix(m.Name, "_total") {
				bad = append(bad, fmt.Sprintf("%s: gauge must not end in _total", m.Name))
			}
		case "histogram":
			if !strings.HasSuffix(m.Name, "_seconds") &&
				!strings.HasSuffix(m.Name, "_bytes") &&
				!strings.HasSuffix(m.Name, "_ratio") {
				bad = append(bad, fmt.Sprintf("%s: histogram must end in a base unit (_seconds, _bytes or _ratio)", m.Name))
			}
		default:
			bad = append(bad, fmt.Sprintf("%s: unknown metric type %q", m.Name, m.Type))
		}
	}
	sort.Strings(bad)
	return bad
}
