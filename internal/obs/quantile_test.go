package obs

import (
	"math"
	"testing"
)

// fixtureMetric builds a histogram snapshot from (bound, cumulative)
// pairs; the last pair should be the +Inf overflow bucket.
func fixtureMetric(count uint64, pairs ...float64) Metric {
	m := Metric{Type: "histogram", Count: count}
	for i := 0; i < len(pairs); i += 2 {
		m.Buckets = append(m.Buckets, Bucket{UpperBound: pairs[i], CumulativeCount: uint64(pairs[i+1])})
	}
	return m
}

func TestQuantileFromBuckets(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		name string
		m    Metric
		q    float64
		want float64
	}{
		// 100 obs uniform across (0,1]: p50 interpolates to the middle.
		{"uniform-p50", fixtureMetric(100, 0.5, 50, 1.0, 100, inf, 100), 0.50, 0.5},
		{"uniform-p99", fixtureMetric(100, 0.5, 50, 1.0, 100, inf, 100), 0.99, 0.99},
		{"uniform-p25", fixtureMetric(100, 0.5, 50, 1.0, 100, inf, 100), 0.25, 0.25},
		// All mass in the first bucket: interpolate inside (0, 0.1].
		{"first-bucket", fixtureMetric(10, 0.1, 10, 1.0, 10, inf, 10), 0.5, 0.05},
		// Mass in the overflow bucket clamps to the last finite bound.
		{"overflow-clamps", fixtureMetric(10, 0.1, 0, 1.0, 2, inf, 10), 0.99, 1.0},
		// Single observation: target 0.99 of one obs interpolates to 0.99.
		{"single", fixtureMetric(1, 1.0, 1, inf, 1), 0.99, 0.99},
		// Quantile clamping.
		{"q-below-0", fixtureMetric(4, 1.0, 4, inf, 4), -1, 0},
		{"q-above-1", fixtureMetric(4, 1.0, 4, inf, 4), 2, 1.0},
	}
	for _, c := range cases {
		got := QuantileFromBuckets(c.m, c.q)
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s: QuantileFromBuckets(q=%v) = %v, want %v", c.name, c.q, got, c.want)
		}
	}
}

func TestQuantileFromBucketsEmpty(t *testing.T) {
	if got := QuantileFromBuckets(Metric{}, 0.99); !math.IsNaN(got) {
		t.Fatalf("empty metric quantile = %v, want NaN", got)
	}
	if got := QuantileFromBuckets(Metric{Count: 5}, 0.99); !math.IsNaN(got) {
		t.Fatalf("bucketless metric quantile = %v, want NaN", got)
	}
}

// TestQuantileMatchesHistogram pins the scrape-side estimator to the
// live Histogram.Quantile it mirrors.
func TestQuantileMatchesHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("rim_test_q_seconds", "", []float64{0.01, 0.1, 0.5, 1, 2})
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i) / 700) // 0 .. ~1.43
	}
	snap := r.Snapshot()
	var m Metric
	for _, s := range snap {
		if s.Name == "rim_test_q_seconds" {
			m = s
		}
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		live, scraped := h.Quantile(q), QuantileFromBuckets(m, q)
		if math.Abs(live-scraped) > 1e-9 {
			t.Errorf("q=%v: live %v != scraped %v", q, live, scraped)
		}
	}
}

func TestLintMetricNames(t *testing.T) {
	clean := []Metric{
		{Name: "rim_frames_total", Type: "counter"},
		{Name: "rim_sessions_active", Type: "gauge"},
		{Name: "rim_stream_lag_seconds", Type: "histogram"},
		{Name: "rim_ckpt_bytes", Type: "histogram"},
		{Name: "rim_fusion_quality_ratio", Type: "histogram"},
		{Name: "rim_frames_total", Type: "counter", Labels: map[string]string{"session": "a"}},
	}
	if bad := LintMetricNames(clean); len(bad) != 0 {
		t.Fatalf("clean snapshot flagged: %v", bad)
	}
	dirty := []Metric{
		{Name: "rim-bad-name", Type: "counter"},
		{Name: "rim_frames", Type: "counter"},
		{Name: "rim_depth_total", Type: "gauge"},
		{Name: "rim_lag", Type: "histogram"},
		{Name: "rim_ok_total", Type: "counter", Labels: map[string]string{"__reserved": "x"}},
	}
	bad := LintMetricNames(dirty)
	if len(bad) != 5 {
		t.Fatalf("want 5 violations, got %d: %v", len(bad), bad)
	}
}

// TestRegistryNamesLint walks every metric the obs package itself
// registers in tests elsewhere; the repo-wide sweep lives in the root
// metrics lint test. Here: families inherit the same rules.
func TestRegistryNamesLint(t *testing.T) {
	r := NewRegistry()
	r.CounterFamily("rim_x_total", "", FamilyOpts{Labels: []string{"session"}}).With("a").Inc()
	r.HistogramFamily("rim_y_seconds", "", FamilyOpts{Labels: []string{"session"}}).With("a").Observe(1)
	if bad := LintMetricNames(r.Snapshot()); len(bad) != 0 {
		t.Fatalf("family snapshot flagged: %v", bad)
	}
}
