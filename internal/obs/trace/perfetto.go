package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"
)

// Perfetto/Chrome trace-event export. The recorder's events map onto the
// trace-event JSON format (the "JSON Array / Object" format accepted by
// chrome://tracing and ui.perfetto.dev): spans become ph=X complete
// events, instants become ph=i, and each pipeline stage gets its own tid
// lane inside one pid so the hop→stage nesting and the frame flow across
// lanes read at a glance.

// Lane tids. Perfetto sorts threads by tid, so the order below is the
// top-to-bottom display order: acquisition feeds ingest feeds analysis
// feeds emission.
const (
	laneAcquire = 1 + iota
	laneIngest
	laneAnalysis
	laneEmit
	laneLag
	laneTRRS
	laneFusion
	laneFlight
)

var laneNames = map[int]string{
	laneAcquire:  "acquire (csi)",
	laneIngest:   "ingest (streamer)",
	laneAnalysis: "analysis (hop)",
	laneEmit:     "emit (estimates)",
	laneLag:      "watermark lag",
	laneTRRS:     "trrs rows",
	laneFusion:   "fusion",
	laneFlight:   "flight recorder",
}

func lane(k Kind) int {
	switch k {
	case KindFrameAcquired, KindPacketLost, KindFault:
		return laneAcquire
	case KindIngest, KindFrameIngest:
		return laneIngest
	case KindHop, KindBuild, KindMovement, KindAlign, KindSegment, KindZUPT:
		return laneAnalysis
	case KindEstimate:
		return laneEmit
	case KindLag:
		return laneLag
	case KindTRRSFill, KindTRRSExtend:
		return laneTRRS
	case KindFusionStep:
		return laneFusion
	case KindTrigger:
		return laneFlight
	default:
		return laneAnalysis
	}
}

// traceEvent is one entry of the trace-event JSON format.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Cat  string         `json:"cat,omitempty"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the top-level trace-event JSON object.
type traceFile struct {
	TraceEvents     []traceEvent   `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

func faultName(code int64) string {
	switch code {
	case FaultLoss:
		return "packet_loss"
	case FaultCorrupt:
		return "corrupt_frame"
	case FaultDead:
		return "chain_dead"
	case FaultAGC:
		return "agc_gain"
	case FaultInterference:
		return "interference"
	default:
		return fmt.Sprintf("fault(%d)", code)
	}
}

// eventArgs renders an event's A/B payload under kind-specific names so
// the trace viewer's args pane is self-describing.
func eventArgs(e Event) map[string]any {
	args := map[string]any{"seq": e.Seq}
	if e.Hop >= 0 {
		args["hop"] = e.Hop
	}
	switch e.Kind {
	case KindFrameAcquired:
		args["frame"], args["nic"] = e.Frame, e.A
	case KindPacketLost:
		args["frame"], args["nic"], args["bursty"] = e.Frame, e.A, e.B != 0
	case KindFault:
		args["fault"], args["index"] = faultName(e.A), e.B
		if e.Frame >= 0 {
			args["frame"] = e.Frame
		}
	case KindIngest, KindFrameIngest:
		args["frame"], args["missing"], args["corrupt"] = e.Frame, e.A, e.B != 0
	case KindHop:
		args["slot_lo"], args["slot_hi"] = e.A, e.B
	case KindAlign:
		args["segment_start"] = e.Frame
	case KindSegment:
		args["start"], args["end"], args["motion"] = e.Frame, e.A, e.B
	case KindZUPT:
		args["start"], args["end"], args["confidence_permille"] = e.Frame, e.A, e.B
	case KindTRRSFill:
		if e.Frame >= 0 {
			i, j := PairFromCode(e.Frame)
			args["pair"] = fmt.Sprintf("%d-%d", i, j)
		}
		args["rows"] = e.A
	case KindTRRSExtend:
		i, j := PairFromCode(e.Frame)
		args["pair"] = fmt.Sprintf("%d-%d", i, j)
		args["reused"], args["stale"] = e.A, e.B
	case KindFusionStep:
		args["quality_permille"], args["alive"] = e.A, e.B
	case KindEstimate:
		args["frame"], args["degraded"], args["motion"] = e.Frame, e.A != 0, e.B
	case KindLag:
		args["frame"] = e.Frame
	case KindTrigger:
		if int(e.A) < len(Reasons) {
			args["reason"] = Reasons[e.A]
		} else {
			args["reason"] = e.A
		}
	default:
		if e.Frame >= 0 {
			args["frame"] = e.Frame
		}
		if e.A != 0 {
			args["a"] = e.A
		}
		if e.B != 0 {
			args["b"] = e.B
		}
	}
	return args
}

// WriteEvents writes the given events as trace-event JSON. wall is the
// wall-clock time of T = 0 (recorded as otherData); events are sorted by
// start time, which both viewers require within a (pid, tid) lane.
func WriteEvents(w io.Writer, events []Event, wall time.Time) error {
	sorted := make([]Event, len(events))
	copy(sorted, events)
	sort.SliceStable(sorted, func(a, b int) bool { return sorted[a].T < sorted[b].T })

	tf := traceFile{
		TraceEvents:     make([]traceEvent, 0, len(sorted)+len(laneNames)+1),
		DisplayTimeUnit: "ms",
	}
	if !wall.IsZero() {
		tf.OtherData = map[string]any{"wall_epoch": wall.Format(time.RFC3339Nano)}
	}
	tf.TraceEvents = append(tf.TraceEvents, traceEvent{
		Name: "process_name", Ph: "M", Pid: 1,
		Args: map[string]any{"name": "rim"},
	})
	for tid, name := range laneNames {
		tf.TraceEvents = append(tf.TraceEvents, traceEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
			Args: map[string]any{"name": name},
		})
	}
	for _, e := range sorted {
		te := traceEvent{
			Name: e.Kind.String(),
			Cat:  "rim",
			Ts:   float64(e.T) / 1e3,
			Pid:  1,
			Tid:  lane(e.Kind),
			Args: eventArgs(e),
		}
		if e.Dur > 0 {
			te.Ph = "X"
			te.Dur = float64(e.Dur) / 1e3
		} else {
			te.Ph = "i"
			te.S = "t"
		}
		tf.TraceEvents = append(tf.TraceEvents, te)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(tf)
}

// WriteJSON writes the recorder's current contents as Chrome/Perfetto
// trace-event JSON — the format behind the -trace-out flag and the
// /debug/rimtrace endpoint. A nil recorder writes an empty (but valid)
// trace.
func WriteJSON(w io.Writer, r *Recorder) error {
	return WriteEvents(w, r.Snapshot(), r.WallEpoch())
}

// Handler serves the recorder as trace-event JSON (mounted at
// /debug/rimtrace on the debug mux). Safe on a nil recorder.
func Handler(r *Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="rimtrace.json"`)
		if err := WriteJSON(w, r); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
