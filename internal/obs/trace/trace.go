// Package trace is RIM's causal frame-lineage layer: a lock-light,
// fixed-capacity ring-buffer event recorder that captures typed pipeline
// events — frame acquisition and ingest, fault injections, TRRS row
// fill/reuse decisions, analysis-stage spans, fusion steps and estimate
// emissions — each stamped with the causal hop ID of the sliding-window
// analysis that consumed it, so a full frame→estimate lineage can be
// reconstructed after the fact.
//
// The package sits on top of internal/obs and follows the same contract:
// a nil *Recorder is valid everywhere and makes every operation a no-op
// (one nil check — no clock reads, no atomics), so un-traced runs pay
// nothing (guarded by TestTraceOverheadGuard at the repo root). Recording
// is wait-free: an event claims a slot with one atomic increment and
// publishes with per-field atomic stores; when the ring is full the oldest
// events are overwritten (drop-oldest semantics — the recorder is a black
// box of the recent past, not a lossless log).
//
// Two consumers are built on the recorder: Chrome/Perfetto trace-event
// JSON export (WriteJSON, served at /debug/rimtrace and dumped by the
// -trace-out flag of rimtrack/rimsim) and the flight recorder (Flight),
// which snapshots the last window of events into a postmortem bundle when
// an estimate degrades, analysis fails, or an antenna dies.
package trace

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// Kind enumerates the typed events the pipeline records.
type Kind uint8

const (
	// KindNone is the zero Kind (an empty slot; never emitted).
	KindNone Kind = iota
	// KindFrameAcquired is one packet measured on one NIC during
	// acquisition (csi.Collect). Frame = slot, A = NIC.
	KindFrameAcquired
	// KindPacketLost is one packet lost during acquisition. Frame = slot,
	// A = NIC, B = 1 for injected bursty loss, 0 for baseline i.i.d. loss.
	KindPacketLost
	// KindFault is one injected fault event (faults.Injector). A = fault
	// code (FaultLoss..FaultInterference), B = antenna or NIC index.
	KindFault
	// KindIngest is the span of one snapshot commit into the streamer
	// (validate + substitute + dead detection). Frame = absolute slot.
	KindIngest
	// KindFrameIngest marks one snapshot committed into the streamer.
	// Frame = absolute slot, A = antennas missing/rejected this slot,
	// B = 1 when the slot carried a corrupt (NaN/garbage) row.
	KindFrameIngest
	// KindHop is the span of one sliding-window analysis hop. Hop is the
	// hop ID; A and B are the absolute slot range [A, B) the hop analyzed.
	KindHop
	// KindBuild is the TRRS base-matrix build/extend span of one pipeline
	// construction (within a hop for streams).
	KindBuild
	// KindMovement is the movement-detection stage span of one Process.
	KindMovement
	// KindAlign is the alignment-tracking + reckoning span of one movement
	// segment. Frame = segment start slot (window-local).
	KindAlign
	// KindSegment marks one resolved movement segment. Frame = start slot,
	// A = end slot (window-local), B = core.MotionKind.
	KindSegment
	// KindTRRSFill marks base-matrix rows computed from scratch.
	// Frame = PairCode (or -1 for a bulk multi-pair build), A = rows.
	KindTRRSFill
	// KindTRRSExtend marks one incremental ExtendMatrix decision.
	// Frame = PairCode, A = rows reused (carried over), B = rows stale
	// (invalidated and recomputed).
	KindTRRSExtend
	// KindFusionStep marks one fusion-backend dead-reckoning step.
	// A = input quality in permille; B = particles alive after the step
	// (particle backend) or 1 when the step carried zero-velocity
	// pseudo-measurements (ESKF backend).
	KindFusionStep
	// KindEstimate marks one finalized estimate emission. Frame = absolute
	// slot, A = 1 when degraded, B = core.MotionKind.
	KindEstimate
	// KindLag is the ingest→emit watermark span of one hop: it starts at
	// the ingest of the hop's oldest newly finalized slot and ends at
	// emission. Frame = that slot's absolute index.
	KindLag
	// KindTrigger marks a flight-recorder trigger. A = trigger reason
	// ordinal (index into Reasons).
	KindTrigger
	// KindZUPT marks one zero-velocity (ZUPT) interval resolved by the
	// movement detector. Frame = start slot, A = end slot (exclusive,
	// window-local like KindSegment), B = interval confidence in permille.
	KindZUPT
	// KindQuality marks one estimator-quality verdict: a per-hop streamer
	// quality summary or a quality-monitor state transition (see
	// internal/obs/quality). A = the monitor state ordinal (0 ok, 1 warn,
	// 2 alert), B = the windowed fraction-outside-band in permille.
	KindQuality

	numKinds
)

var kindNames = [numKinds]string{
	KindNone:          "none",
	KindFrameAcquired: "frame_acquired",
	KindPacketLost:    "packet_lost",
	KindFault:         "fault",
	KindIngest:        "ingest",
	KindFrameIngest:   "frame_ingest",
	KindHop:           "hop",
	KindBuild:         "trrs_build",
	KindMovement:      "movement",
	KindAlign:         "align",
	KindSegment:       "segment",
	KindTRRSFill:      "trrs_fill",
	KindTRRSExtend:    "trrs_extend",
	KindFusionStep:    "fusion_step",
	KindEstimate:      "estimate",
	KindLag:           "lag",
	KindTrigger:       "trigger",
	KindZUPT:          "zupt",
	KindQuality:       "quality",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// MarshalText encodes the kind as its name (JSON-friendly).
func (k Kind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText decodes a kind name back into its ordinal.
func (k *Kind) UnmarshalText(b []byte) error {
	s := string(b)
	for i, n := range kindNames {
		if n == s {
			*k = Kind(i)
			return nil
		}
	}
	return fmt.Errorf("trace: unknown event kind %q", s)
}

// Fault codes carried in KindFault's A argument.
const (
	FaultLoss int64 = iota + 1
	FaultCorrupt
	FaultDead
	FaultAGC
	FaultInterference
)

// PairCode packs an antenna pair into one int64 Frame argument (decoded by
// PairFromCode); it keeps TRRS events self-describing without a third arg.
func PairCode(i, j int) int64 { return int64(i)<<16 | int64(j)&0xffff }

// PairFromCode decodes PairCode.
func PairFromCode(c int64) (i, j int) { return int(c >> 16), int(c & 0xffff) }

// Event is one recorded event, the ring slot's point-in-time copy.
type Event struct {
	// Seq is the recorder-wide monotonic sequence number.
	Seq uint64 `json:"seq"`
	// Kind is the event type.
	Kind Kind `json:"kind"`
	// Hop is the causal hop ID of the analysis that the event belongs to
	// (-1 for events recorded before any hop claimed them, e.g. ingest).
	Hop int64 `json:"hop"`
	// Frame is the absolute frame/slot ID the event concerns (-1 = n/a).
	// TRRS events reuse it for the PairCode.
	Frame int64 `json:"frame"`
	// T is the event time in nanoseconds since the recorder's epoch; for
	// spans it is the start time.
	T int64 `json:"t_ns"`
	// Dur is the span duration in nanoseconds (0 = instant event).
	Dur int64 `json:"dur_ns"`
	// A, B are kind-specific arguments (see the Kind constants).
	A int64 `json:"a"`
	B int64 `json:"b"`
}

// Recorder is the fixed-capacity ring-buffer event recorder. Events are
// stored structure-of-arrays in atomic slots: a writer claims a sequence
// number with one atomic add, stores the fields, and publishes by storing
// seq+1 into the slot's commit cell. Readers (Snapshot) validate the
// commit cell before and after copying a slot, so a slot overwritten
// mid-read is skipped rather than returned torn.
//
// A nil *Recorder is valid everywhere: every method is a no-op (or returns
// a zero value) after one nil check, exactly like obs.Registry.
type Recorder struct {
	mask  int
	epoch time.Time
	wall  time.Time
	next  atomic.Uint64

	commit []atomic.Uint64
	kind   []atomic.Uint32
	hop    []atomic.Int64
	frame  []atomic.Int64
	t      []atomic.Int64
	dur    []atomic.Int64
	a      []atomic.Int64
	b      []atomic.Int64
}

// DefaultCapacity is the event capacity used when NewRecorder is given a
// non-positive one: at a few dozen events per streamed slot-hop cycle it
// holds minutes of history.
const DefaultCapacity = 1 << 16

// NewRecorder builds a recorder holding the most recent capacity events
// (rounded up to a power of two, minimum 16).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	n := 16
	for n < capacity {
		n <<= 1
	}
	now := time.Now()
	return &Recorder{
		mask:   n - 1,
		epoch:  now,
		wall:   now,
		commit: make([]atomic.Uint64, n),
		kind:   make([]atomic.Uint32, n),
		hop:    make([]atomic.Int64, n),
		frame:  make([]atomic.Int64, n),
		t:      make([]atomic.Int64, n),
		dur:    make([]atomic.Int64, n),
		a:      make([]atomic.Int64, n),
		b:      make([]atomic.Int64, n),
	}
}

// Cap returns the ring capacity (0 on nil).
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	return r.mask + 1
}

// TotalEmitted returns the number of events ever emitted (0 on nil);
// events beyond Cap have been dropped oldest-first.
func (r *Recorder) TotalEmitted() uint64 {
	if r == nil {
		return 0
	}
	return r.next.Load()
}

// WallEpoch returns the wall-clock time of the recorder's T = 0.
func (r *Recorder) WallEpoch() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.wall
}

// Now returns the current recorder time in nanoseconds since the epoch
// (0 on nil — callers must not emit timestamps from a nil recorder).
func (r *Recorder) Now() int64 {
	if r == nil {
		return 0
	}
	return time.Since(r.epoch).Nanoseconds()
}

// Emit records one instant event stamped now.
func (r *Recorder) Emit(k Kind, hop, frame, a, b int64) {
	if r == nil {
		return
	}
	r.EmitAt(k, hop, frame, a, b, r.Now(), 0)
}

// EmitAt records one event with an explicit start time (nanoseconds since
// the epoch) and duration (0 = instant). It is the primitive behind Emit
// and Span; callers use it to emit spans whose start predates the call
// (e.g. the ingest→emit lag span).
func (r *Recorder) EmitAt(k Kind, hop, frame, a, b, tns, dur int64) {
	if r == nil {
		return
	}
	seq := r.next.Add(1) - 1
	i := int(seq) & r.mask
	// Invalidate the slot first so a concurrent Snapshot never sees a mix
	// of the old event's fields and the new one's.
	r.commit[i].Store(0)
	r.kind[i].Store(uint32(k))
	r.hop[i].Store(hop)
	r.frame[i].Store(frame)
	r.t[i].Store(tns)
	r.dur[i].Store(dur)
	r.a[i].Store(a)
	r.b[i].Store(b)
	r.commit[i].Store(seq + 1)
}

// Span is a started duration event; End publishes it with the elapsed
// time. The zero Span (from a nil recorder) is a no-op and performs no
// clock reads.
type Span struct {
	r          *Recorder
	k          Kind
	hop, frame int64
	t0         int64
}

// Start begins a span of the given kind (no-op Span on a nil recorder).
func (r *Recorder) Start(k Kind, hop, frame int64) Span {
	if r == nil {
		return Span{}
	}
	return Span{r: r, k: k, hop: hop, frame: frame, t0: r.Now()}
}

// End publishes the span with zero args. Safe on the zero Span.
func (s Span) End() { s.EndArgs(0, 0) }

// EndArgs publishes the span with kind-specific args. Safe on the zero
// Span.
func (s Span) EndArgs(a, b int64) {
	if s.r == nil {
		return
	}
	s.r.EmitAt(s.k, s.hop, s.frame, a, b, s.t0, s.r.Now()-s.t0)
}

// Snapshot returns the committed events currently in the ring, oldest
// first. Slots being overwritten during the scan are skipped (the ring's
// drop-oldest semantics applied at read time). Nil recorders return nil.
func (r *Recorder) Snapshot() []Event {
	if r == nil {
		return nil
	}
	end := r.next.Load()
	n := r.mask + 1
	start := uint64(0)
	if end > uint64(n) {
		start = end - uint64(n)
	}
	out := make([]Event, 0, end-start)
	for seq := start; seq < end; seq++ {
		i := int(seq) & r.mask
		if r.commit[i].Load() != seq+1 {
			continue // overwritten or mid-write
		}
		ev := Event{
			Seq:   seq,
			Kind:  Kind(r.kind[i].Load()),
			Hop:   r.hop[i].Load(),
			Frame: r.frame[i].Load(),
			T:     r.t[i].Load(),
			Dur:   r.dur[i].Load(),
			A:     r.a[i].Load(),
			B:     r.b[i].Load(),
		}
		if r.commit[i].Load() != seq+1 {
			continue // torn: overwritten while copying
		}
		out = append(out, ev)
	}
	return out
}

// Since returns the committed events whose end time (T + Dur) is at or
// after tns, oldest first — the flight recorder's lookback filter.
func (r *Recorder) Since(tns int64) []Event {
	evs := r.Snapshot()
	lo := 0
	for lo < len(evs) && evs[lo].T+evs[lo].Dur < tns {
		lo++
	}
	return evs[lo:]
}

// Lineage reconstructs the causal chain of one hop from a snapshot: every
// event stamped with the hop ID, plus the pre-hop frame-scoped events
// (acquisition, loss, ingest) whose frame falls inside the hop's analyzed
// slot range (taken from the hop span's [A, B) args, widened by any
// frame-stamped event of the hop). The result is the frame→estimate story
// of that hop, in emission order.
func Lineage(events []Event, hop int64) []Event {
	lo, hi := int64(math.MaxInt64), int64(-1)
	for _, e := range events {
		if e.Hop != hop {
			continue
		}
		if e.Kind == KindHop {
			if e.A < lo {
				lo = e.A
			}
			if e.B > hi {
				hi = e.B
			}
		}
		if f := e.Frame; f >= 0 && e.Kind != KindTRRSFill && e.Kind != KindTRRSExtend {
			if f < lo {
				lo = f
			}
			if f+1 > hi {
				hi = f + 1
			}
		}
	}
	var out []Event
	for _, e := range events {
		switch {
		case e.Hop == hop:
			out = append(out, e)
		case e.Hop < 0 && e.Frame >= lo && e.Frame < hi &&
			(e.Kind == KindFrameAcquired || e.Kind == KindPacketLost ||
				e.Kind == KindFrameIngest || e.Kind == KindIngest):
			out = append(out, e)
		}
	}
	return out
}
