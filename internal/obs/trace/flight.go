package trace

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"rim/internal/obs"
)

// Trigger reasons. The ordinal (index into Reasons) travels as the A arg
// of the KindTrigger event the flight recorder emits on capture.
const (
	// ReasonAnalysisFailure: a streaming hop's analysis returned
	// ErrAnalysis and the streamer served stale results.
	ReasonAnalysisFailure = "analysis_failure"
	// ReasonDeadAntenna: dead-antenna detection crossed its hysteresis
	// threshold and declared a chain dead.
	ReasonDeadAntenna = "dead_antenna"
	// ReasonDegradedEstimates: an analysis window emitted degraded
	// (substituted/unreliable) estimates.
	ReasonDegradedEstimates = "degraded_estimates"
	// ReasonHopDeadline: a streaming hop exceeded its analysis deadline
	// and emitted degraded placeholders for the unresolved slots.
	ReasonHopDeadline = "hop_deadline"
	// ReasonSLOBreach: an SLO objective entered its paging state (fast
	// burn on both burn windows); the bundle is the postmortem seed.
	ReasonSLOBreach = "slo_breach"
	// ReasonSessionQuarantined: a session supervisor gave up restarting a
	// flapping session and quarantined it.
	ReasonSessionQuarantined = "session_quarantined"
	// ReasonQualityBreach: an estimator-quality monitor (NIS/NEES band
	// state machine, see internal/obs/quality) entered its alert state —
	// the filter is statistically inconsistent with its own covariance.
	ReasonQualityBreach = "quality_breach"
)

// Reasons lists the trigger reasons in ordinal order.
var Reasons = []string{
	ReasonAnalysisFailure, ReasonDeadAntenna, ReasonDegradedEstimates,
	ReasonHopDeadline, ReasonSessionQuarantined,
	// Appended, never inserted: ordinals are wire-stable in old bundles.
	ReasonSLOBreach,
	ReasonQualityBreach,
}

func reasonOrdinal(reason string) int64 {
	for i, r := range Reasons {
		if r == reason {
			return int64(i)
		}
	}
	return int64(len(Reasons)) // unknown: out-of-range ordinal, kept verbatim in the bundle
}

// Postmortem is one flight-recorder capture: the black-box bundle an
// engineer opens after a degraded run. Events hold the lookback window of
// the trace ring (oldest first); Lineage over them with the degraded hop
// ID reconstructs the frame→estimate story.
type Postmortem struct {
	// Reason is the trigger reason (one of the Reason* constants).
	Reason string `json:"reason"`
	// Seq numbers this capture within the process (1-based).
	Seq int `json:"seq"`
	// WallTime is the capture's wall-clock time.
	WallTime time.Time `json:"wall_time"`
	// WallEpoch anchors the events' t_ns to wall-clock time.
	WallEpoch time.Time `json:"wall_epoch"`
	// Hop is the causal hop ID the trigger concerns (-1 when the trigger
	// is not hop-scoped, e.g. a dead antenna between hops).
	Hop int64 `json:"hop"`
	// Detail is the trigger's free-form context — typically the
	// core.Health snapshot at capture time.
	Detail any `json:"detail,omitempty"`
	// Metrics is the obs registry snapshot at capture time.
	Metrics []obs.Metric `json:"metrics,omitempty"`
	// Events is the lookback window of trace events, oldest first.
	Events []Event `json:"events"`
}

// FlightConfig configures a Flight recorder.
type FlightConfig struct {
	// Recorder is the event ring to snapshot from (required; a nil
	// recorder yields a nil Flight from NewFlight).
	Recorder *Recorder
	// Lookback is how far back the bundle's event window reaches
	// (default 10s).
	Lookback time.Duration
	// MinInterval rate-limits captures: offers within MinInterval of the
	// previous capture are dropped (default 5s; the first offer always
	// fires). Use a negative value to disable rate limiting.
	MinInterval time.Duration
	// Trigger, when non-nil, filters offers: return false to veto a
	// capture for the given reason. The default accepts every reason.
	Trigger func(reason string) bool
	// Registry, when non-nil, is snapshotted into each bundle's Metrics.
	Registry *obs.Registry
	// Health, when non-nil, supplies each bundle's Detail when the offer
	// itself carries none.
	Health func() any
	// Dir, when non-empty, writes each bundle to
	// <Dir>/postmortem-<seq>-<reason>.json as it is captured.
	Dir string
	// Log receives capture and write-failure notices (nil = slog.Default).
	Log *slog.Logger
}

// Flight is the flight recorder: it watches for degradation triggers and
// snapshots the trace ring's recent past into Postmortem bundles. A nil
// *Flight is valid everywhere and ignores every offer, so un-wired
// pipelines pay one nil check per trigger site.
type Flight struct {
	cfg FlightConfig

	mu       sync.Mutex
	lastT    int64 // recorder time of the last accepted capture
	captured int
	last     *Postmortem
}

// NewFlight builds a flight recorder over cfg.Recorder. Returns nil (a
// valid no-op Flight) when the recorder is nil — wiring stays
// unconditional at call sites.
func NewFlight(cfg FlightConfig) *Flight {
	if cfg.Recorder == nil {
		return nil
	}
	if cfg.Lookback <= 0 {
		cfg.Lookback = 10 * time.Second
	}
	if cfg.MinInterval == 0 {
		cfg.MinInterval = 5 * time.Second
	}
	if cfg.Log == nil {
		cfg.Log = slog.Default()
	}
	return &Flight{cfg: cfg, lastT: -1 << 62}
}

// Offer proposes a capture for the given trigger reason and causal hop
// (-1 when not hop-scoped). detail overrides the configured Health
// supplier for this bundle (pass nil to use it). Returns true when a
// bundle was captured; false when vetoed by the trigger predicate,
// rate-limited, or offered to a nil Flight.
//
// Offer must not be called while holding a lock that the configured
// Health func also takes.
func (f *Flight) Offer(reason string, hop int64, detail any) bool {
	if f == nil {
		return false
	}
	if f.cfg.Trigger != nil && !f.cfg.Trigger(reason) {
		return false
	}
	now := f.cfg.Recorder.Now()

	f.mu.Lock()
	if f.cfg.MinInterval > 0 && now-f.lastT < f.cfg.MinInterval.Nanoseconds() {
		f.mu.Unlock()
		return false
	}
	f.lastT = now
	f.captured++
	seq := f.captured
	f.mu.Unlock()

	// Emit the trigger before snapshotting so the bundle records its own
	// cause as its newest event.
	f.cfg.Recorder.Emit(KindTrigger, hop, -1, reasonOrdinal(reason), int64(seq))

	if detail == nil && f.cfg.Health != nil {
		detail = f.cfg.Health()
	}
	pm := &Postmortem{
		Reason:    reason,
		Seq:       seq,
		WallTime:  time.Now(),
		WallEpoch: f.cfg.Recorder.WallEpoch(),
		Hop:       hop,
		Detail:    detail,
		Metrics:   f.cfg.Registry.Snapshot(),
		Events:    f.cfg.Recorder.Since(now - f.cfg.Lookback.Nanoseconds()),
	}

	f.mu.Lock()
	f.last = pm
	f.mu.Unlock()

	f.cfg.Log.Warn("flight recorder captured postmortem",
		"reason", reason, "seq", seq, "hop", hop, "events", len(pm.Events))
	if f.cfg.Dir != "" {
		f.write(pm)
	}
	return true
}

func (f *Flight) write(pm *Postmortem) {
	path := filepath.Join(f.cfg.Dir, fmt.Sprintf("postmortem-%d-%s.json", pm.Seq, pm.Reason))
	data, err := json.MarshalIndent(pm, "", "  ")
	if err == nil {
		err = os.WriteFile(path, data, 0o644)
	}
	if err != nil {
		f.cfg.Log.Error("flight recorder: writing postmortem bundle", "path", path, "err", err)
		return
	}
	f.cfg.Log.Warn("flight recorder wrote postmortem bundle", "path", path)
}

// Last returns the most recent capture (nil when none yet, or on a nil
// Flight).
func (f *Flight) Last() *Postmortem {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.last
}

// Captures returns the number of bundles captured so far (0 on nil).
func (f *Flight) Captures() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.captured
}

// Handler serves the latest postmortem bundle as JSON (mounted at
// /debug/postmortem; 404 until the first capture). Safe on a nil Flight.
func (f *Flight) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		pm := f.Last()
		if pm == nil {
			http.Error(w, "no postmortem captured", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(pm); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
