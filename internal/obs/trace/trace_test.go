package trace

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"rim/internal/obs"
)

func TestRecorderRoundTrip(t *testing.T) {
	r := NewRecorder(64)
	if got := r.Cap(); got != 64 {
		t.Fatalf("Cap = %d, want 64", got)
	}
	r.Emit(KindFrameAcquired, -1, 7, 2, 0)
	r.EmitAt(KindHop, 3, -1, 10, 20, 100, 50)
	sp := r.Start(KindMovement, 3, -1)
	sp.EndArgs(1, 2)

	evs := r.Snapshot()
	if len(evs) != 3 {
		t.Fatalf("Snapshot len = %d, want 3", len(evs))
	}
	e := evs[0]
	if e.Kind != KindFrameAcquired || e.Frame != 7 || e.A != 2 || e.Hop != -1 {
		t.Errorf("event 0 = %+v", e)
	}
	if evs[0].Seq != 0 || evs[1].Seq != 1 || evs[2].Seq != 2 {
		t.Errorf("sequence IDs not monotonic from 0: %d %d %d", evs[0].Seq, evs[1].Seq, evs[2].Seq)
	}
	if evs[1].T != 100 || evs[1].Dur != 50 || evs[1].A != 10 || evs[1].B != 20 {
		t.Errorf("EmitAt fields = %+v", evs[1])
	}
	if evs[2].Kind != KindMovement || evs[2].Dur < 0 || evs[2].A != 1 || evs[2].B != 2 {
		t.Errorf("span event = %+v", evs[2])
	}
	if r.TotalEmitted() != 3 {
		t.Errorf("TotalEmitted = %d, want 3", r.TotalEmitted())
	}
}

func TestRecorderCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, DefaultCapacity}, {-5, DefaultCapacity}, {1, 16}, {16, 16}, {17, 32}, {100, 128},
	} {
		if got := NewRecorder(tc.in).Cap(); got != tc.want {
			t.Errorf("NewRecorder(%d).Cap() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestRecorderDropOldest(t *testing.T) {
	r := NewRecorder(16)
	for i := 0; i < 40; i++ {
		r.Emit(KindEstimate, int64(i), int64(i), 0, 0)
	}
	evs := r.Snapshot()
	if len(evs) != 16 {
		t.Fatalf("Snapshot len = %d, want 16 (ring capacity)", len(evs))
	}
	if evs[0].Seq != 24 || evs[len(evs)-1].Seq != 39 {
		t.Errorf("kept window [%d, %d], want [24, 39]", evs[0].Seq, evs[len(evs)-1].Seq)
	}
	for i, e := range evs {
		if e.Hop != int64(24+i) {
			t.Fatalf("event %d has hop %d, want %d (torn or misordered)", i, e.Hop, 24+i)
		}
	}
	if r.TotalEmitted() != 40 {
		t.Errorf("TotalEmitted = %d, want 40", r.TotalEmitted())
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.Emit(KindFault, 0, 0, FaultLoss, 0)
	r.EmitAt(KindHop, 0, 0, 0, 0, 1, 2)
	sp := r.Start(KindBuild, 0, 0)
	sp.End()
	sp.EndArgs(1, 2)
	if r.Snapshot() != nil || r.Since(0) != nil {
		t.Error("nil recorder snapshot should be nil")
	}
	if r.Cap() != 0 || r.Now() != 0 || r.TotalEmitted() != 0 {
		t.Error("nil recorder accessors should return zero")
	}
	if !r.WallEpoch().IsZero() {
		t.Error("nil recorder WallEpoch should be zero")
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, r); err != nil {
		t.Fatalf("WriteJSON(nil recorder): %v", err)
	}
	var f struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("nil-recorder trace not valid JSON: %v", err)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(256)
	const writers, per = 8, 500
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent reader: must never see torn slots
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, e := range r.Snapshot() {
				// Writers store Hop == Frame == A; a torn read breaks it.
				if e.Hop != e.Frame || e.Hop != e.A {
					t.Errorf("torn event: %+v", e)
					return
				}
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				v := int64(w*per + i)
				r.Emit(KindFrameIngest, v, v, v, 0)
			}
		}(w)
	}
	// Wait for writers (all but the reader goroutine).
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	// Let writers finish, then stop the reader.
	for r.TotalEmitted() < writers*per {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	<-done
	if got := r.TotalEmitted(); got != writers*per {
		t.Fatalf("TotalEmitted = %d, want %d", got, writers*per)
	}
	evs := r.Snapshot()
	if len(evs) == 0 || len(evs) > 256 {
		t.Fatalf("Snapshot len = %d, want (0, 256]", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("snapshot not seq-ordered at %d", i)
		}
	}
}

func TestKindTextRoundTrip(t *testing.T) {
	for k := KindNone; k < numKinds; k++ {
		b, err := k.MarshalText()
		if err != nil {
			t.Fatalf("MarshalText(%d): %v", k, err)
		}
		var back Kind
		if err := back.UnmarshalText(b); err != nil {
			t.Fatalf("UnmarshalText(%q): %v", b, err)
		}
		if back != k {
			t.Errorf("round trip %d -> %q -> %d", k, b, back)
		}
	}
	var k Kind
	if err := k.UnmarshalText([]byte("nope")); err == nil {
		t.Error("UnmarshalText should reject unknown names")
	}
}

func TestPairCode(t *testing.T) {
	for _, tc := range [][2]int{{0, 1}, {2, 2}, {31, 0}, {100, 200}} {
		i, j := PairFromCode(PairCode(tc[0], tc[1]))
		if i != tc[0] || j != tc[1] {
			t.Errorf("PairCode(%d,%d) round trip = (%d,%d)", tc[0], tc[1], i, j)
		}
	}
}

func TestLineage(t *testing.T) {
	r := NewRecorder(128)
	// Pre-hop frame events: acquisition for slots 0..5, loss on slot 3,
	// ingest for all.
	for s := int64(0); s < 6; s++ {
		r.Emit(KindFrameAcquired, -1, s, 0, 0)
		r.Emit(KindFrameIngest, -1, s, 0, 0)
	}
	r.Emit(KindPacketLost, -1, 3, 1, 0)
	// Hop 1 analyzed slots [0, 4); hop 2 analyzed [2, 6).
	r.EmitAt(KindHop, 1, -1, 0, 4, r.Now(), 10)
	r.Emit(KindEstimate, 1, 3, 1, 0)
	r.Emit(KindFusionStep, 1, -1, 900, 100)
	r.EmitAt(KindHop, 2, -1, 2, 6, r.Now(), 10)
	r.Emit(KindEstimate, 2, 5, 0, 0)
	// TRRS events carry pair codes in Frame; they must not widen the
	// frame window.
	r.Emit(KindTRRSExtend, 2, PairCode(90, 91), 40, 2)

	evs := r.Snapshot()
	lin := Lineage(evs, 1)
	var gotKinds []Kind
	frames := map[int64]bool{}
	for _, e := range lin {
		gotKinds = append(gotKinds, e.Kind)
		if e.Hop != 1 && e.Hop != -1 {
			t.Errorf("lineage of hop 1 contains hop %d event %+v", e.Hop, e)
		}
		if e.Hop == -1 {
			frames[e.Frame] = true
			if e.Frame < 0 || e.Frame >= 4 {
				t.Errorf("lineage includes out-of-window frame event %+v", e)
			}
		}
	}
	for s := int64(0); s < 4; s++ {
		if !frames[s] {
			t.Errorf("lineage of hop 1 missing frame %d events", s)
		}
	}
	// The degraded estimate and the fusion step must be present.
	var haveEst, haveFus, haveLost bool
	for _, e := range lin {
		switch e.Kind {
		case KindEstimate:
			haveEst = e.A == 1 && e.Frame == 3
		case KindFusionStep:
			haveFus = true
		case KindPacketLost:
			haveLost = e.Frame == 3
		}
	}
	if !haveEst || !haveFus || !haveLost {
		t.Errorf("lineage missing estimate/fusion/loss: est=%v fus=%v lost=%v kinds=%v",
			haveEst, haveFus, haveLost, gotKinds)
	}

	// Hop 2's lineage must include frames [2, 6) but not hop 1's events,
	// and the TRRS pair code must not have widened the window.
	lin2 := Lineage(evs, 2)
	for _, e := range lin2 {
		if e.Hop == 1 {
			t.Errorf("hop 2 lineage contains hop 1 event %+v", e)
		}
		if e.Hop == -1 && (e.Frame < 2 || e.Frame >= 6) {
			t.Errorf("hop 2 lineage frame window wrong: %+v", e)
		}
	}
}

func TestWriteJSONShape(t *testing.T) {
	r := NewRecorder(64)
	r.Emit(KindFrameAcquired, -1, 0, 1, 0)
	r.EmitAt(KindHop, 1, -1, 0, 4, 1000, 500)
	r.Emit(KindFault, -1, 2, FaultDead, 1)
	r.Emit(KindTRRSExtend, 1, PairCode(0, 1), 10, 2)

	var buf bytes.Buffer
	if err := WriteJSON(&buf, r); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace output not valid JSON: %v", err)
	}
	if tf.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", tf.DisplayTimeUnit)
	}
	var phX, phI, phM int
	var sawHop bool
	for _, te := range tf.TraceEvents {
		switch te.Ph {
		case "X":
			phX++
		case "i":
			phI++
		case "M":
			phM++
		default:
			t.Errorf("unexpected ph %q", te.Ph)
		}
		if te.Ph != "M" && te.Pid != 1 {
			t.Errorf("event %q has pid %d", te.Name, te.Pid)
		}
		if te.Name == "hop" {
			sawHop = true
			if te.Ph != "X" || te.Ts != 1.0 || te.Dur != 0.5 {
				t.Errorf("hop span wrong: ph=%q ts=%v dur=%v", te.Ph, te.Ts, te.Dur)
			}
			if te.Args["slot_lo"].(float64) != 0 || te.Args["slot_hi"].(float64) != 4 {
				t.Errorf("hop args = %v", te.Args)
			}
		}
		if te.Name == "fault" && te.Args["fault"] != "chain_dead" {
			t.Errorf("fault args = %v", te.Args)
		}
		if te.Name == "trrs_extend" && te.Args["pair"] != "0-1" {
			t.Errorf("trrs_extend args = %v", te.Args)
		}
	}
	if phX != 1 || phI != 3 {
		t.Errorf("ph counts: X=%d i=%d, want 1/3", phX, phI)
	}
	if phM < 2 {
		t.Errorf("expected process+thread metadata events, got %d", phM)
	}
	if !sawHop {
		t.Error("hop span missing from trace")
	}
}

func TestTraceHandler(t *testing.T) {
	r := NewRecorder(16)
	r.Emit(KindEstimate, 1, 0, 0, 0)
	rec := httptest.NewRecorder()
	Handler(r).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/rimtrace", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var tf map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &tf); err != nil {
		t.Fatalf("handler body not JSON: %v", err)
	}
	if _, ok := tf["traceEvents"]; !ok {
		t.Error("handler body missing traceEvents")
	}
}

func TestFlightCaptureAndHandler(t *testing.T) {
	r := NewRecorder(128)
	reg := obs.NewRegistry()
	reg.Counter("rim_test_total", "t").Add(3)
	dir := t.TempDir()
	f := NewFlight(FlightConfig{
		Recorder:    r,
		Lookback:    time.Minute,
		MinInterval: -1,
		Registry:    reg,
		Health:      func() any { return map[string]int{"alive": 2} },
		Dir:         dir,
	})
	if f == nil {
		t.Fatal("NewFlight returned nil with a live recorder")
	}

	r.Emit(KindFrameIngest, -1, 0, 1, 0)
	r.EmitAt(KindHop, 1, -1, 0, 1, r.Now(), 10)
	r.Emit(KindEstimate, 1, 0, 1, 0)

	if !f.Offer(ReasonDegradedEstimates, 1, nil) {
		t.Fatal("Offer rejected")
	}
	pm := f.Last()
	if pm == nil {
		t.Fatal("Last returned nil after capture")
	}
	if pm.Reason != ReasonDegradedEstimates || pm.Hop != 1 || pm.Seq != 1 {
		t.Errorf("bundle header = %+v", pm)
	}
	if pm.Detail == nil {
		t.Error("bundle missing health detail")
	}
	if len(pm.Metrics) == 0 {
		t.Error("bundle missing metrics snapshot")
	}
	// The bundle's events must reconstruct hop 1's lineage, including the
	// trigger itself.
	lin := Lineage(pm.Events, 1)
	var haveIngest, haveEst, haveTrig bool
	for _, e := range lin {
		switch e.Kind {
		case KindFrameIngest:
			haveIngest = true
		case KindEstimate:
			haveEst = true
		case KindTrigger:
			haveTrig = true
		}
	}
	if !haveIngest || !haveEst || !haveTrig {
		t.Errorf("lineage incomplete: ingest=%v est=%v trigger=%v", haveIngest, haveEst, haveTrig)
	}

	// Disk bundle round trip.
	path := filepath.Join(dir, "postmortem-1-degraded_estimates.json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("bundle file: %v", err)
	}
	var back Postmortem
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("bundle file not valid JSON: %v", err)
	}
	if back.Reason != pm.Reason || len(back.Events) != len(pm.Events) {
		t.Errorf("disk bundle mismatch: %+v", back)
	}

	// HTTP handler serves the same bundle.
	rec := httptest.NewRecorder()
	f.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/postmortem", nil))
	if rec.Code != 200 {
		t.Fatalf("handler status = %d", rec.Code)
	}
	var served Postmortem
	if err := json.Unmarshal(rec.Body.Bytes(), &served); err != nil {
		t.Fatalf("served bundle not JSON: %v", err)
	}
	if served.Seq != 1 || served.Reason != ReasonDegradedEstimates {
		t.Errorf("served bundle = %+v", served)
	}
}

func TestFlightRateLimitAndPredicate(t *testing.T) {
	r := NewRecorder(64)
	f := NewFlight(FlightConfig{
		Recorder:    r,
		MinInterval: time.Hour,
		Trigger:     func(reason string) bool { return reason != ReasonDeadAntenna },
	})
	if f.Offer(ReasonDeadAntenna, -1, nil) {
		t.Error("vetoed reason captured")
	}
	if !f.Offer(ReasonAnalysisFailure, -1, nil) {
		t.Error("first accepted offer rejected")
	}
	if f.Offer(ReasonAnalysisFailure, -1, nil) {
		t.Error("rate limit not applied")
	}
	if f.Captures() != 1 {
		t.Errorf("Captures = %d, want 1", f.Captures())
	}
}

func TestFlightNilSafe(t *testing.T) {
	var f *Flight
	if f.Offer(ReasonAnalysisFailure, 0, nil) {
		t.Error("nil Flight accepted an offer")
	}
	if f.Last() != nil || f.Captures() != 0 {
		t.Error("nil Flight accessors should return zero")
	}
	rec := httptest.NewRecorder()
	f.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/postmortem", nil))
	if rec.Code != 404 {
		t.Errorf("nil Flight handler status = %d, want 404", rec.Code)
	}
	if NewFlight(FlightConfig{}) != nil {
		t.Error("NewFlight without recorder should return nil")
	}
}

func TestFlightEmptyLookbackWindow(t *testing.T) {
	r := NewRecorder(64)
	f := NewFlight(FlightConfig{Recorder: r, Lookback: time.Nanosecond, MinInterval: -1})
	if !f.Offer(ReasonAnalysisFailure, -1, nil) {
		t.Fatal("offer rejected")
	}
	pm := f.Last()
	// Even with an (effectively) empty lookback, the trigger event itself
	// is in-window.
	if len(pm.Events) == 0 || pm.Events[len(pm.Events)-1].Kind != KindTrigger {
		t.Errorf("bundle should end with its own trigger: %+v", pm.Events)
	}
}

func TestSinceFilters(t *testing.T) {
	r := NewRecorder(64)
	r.EmitAt(KindEstimate, 0, 0, 0, 0, 100, 0)
	r.EmitAt(KindEstimate, 1, 1, 0, 0, 200, 0)
	r.EmitAt(KindHop, 2, -1, 0, 0, 150, 100) // ends at 250
	evs := r.Since(220)
	if len(evs) != 1 || evs[0].Kind != KindHop {
		t.Fatalf("Since(220) = %+v, want just the hop span (ends 250)", evs)
	}
	if got := r.Since(math.MaxInt64); len(got) != 0 {
		t.Errorf("Since(max) = %d events, want 0", len(got))
	}
}
