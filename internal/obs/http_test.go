package obs

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func getBody(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp.StatusCode, string(b)
}

func TestDebugMuxEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("rim_smoke_total", "smoke counter").Add(9)
	// A histogram's snapshot carries a +Inf bucket; /healthz must encode it
	// (encoding/json rejects raw infinities).
	reg.Timer("rim_smoke_seconds", "smoke latency").Observe(0.004)
	type health struct {
		Slots int    `json:"slots"`
		State string `json:"state"`
	}
	srv := httptest.NewServer(DebugMux(reg, func() any { return health{Slots: 42, State: "ok"} }))
	defer srv.Close()

	code, body := getBody(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.Contains(body, "rim_smoke_total 9\n") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}

	code, body = getBody(t, srv, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status %d", code)
	}
	var payload struct {
		Health  health   `json:"health"`
		Metrics []Metric `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatalf("/healthz not JSON: %v\n%s", err, body)
	}
	if payload.Health.Slots != 42 || payload.Health.State != "ok" {
		t.Errorf("/healthz health = %+v", payload.Health)
	}
	if len(payload.Metrics) != 2 || payload.Metrics[0].Name != "rim_smoke_seconds" ||
		payload.Metrics[1].Name != "rim_smoke_total" {
		t.Errorf("/healthz metrics = %+v", payload.Metrics)
	}
	if bk := payload.Metrics[0].Buckets; len(bk) == 0 ||
		!math.IsInf(bk[len(bk)-1].UpperBound, 1) ||
		bk[len(bk)-1].CumulativeCount != 1 {
		t.Errorf("/healthz histogram buckets = %+v", payload.Metrics[0].Buckets)
	}

	// pprof index and expvar must answer.
	if code, _ := getBody(t, srv, "/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d", code)
	}
	code, body = getBody(t, srv, "/debug/vars")
	if code != http.StatusOK || !strings.Contains(body, "rim") {
		t.Errorf("/debug/vars status %d body %q", code, body[:min(len(body), 200)])
	}
}

func TestDebugMuxNilRegistryAndHealth(t *testing.T) {
	srv := httptest.NewServer(DebugMux(nil, nil))
	defer srv.Close()
	if code, body := getBody(t, srv, "/metrics"); code != http.StatusOK || body != "" {
		t.Errorf("/metrics on nil registry: status %d body %q", code, body)
	}
	code, body := getBody(t, srv, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status %d", code)
	}
	var payload map[string]any
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatalf("/healthz not JSON: %v", err)
	}
	if payload["health"] != nil {
		t.Errorf("health = %v, want null", payload["health"])
	}
}

func TestStartDebugServer(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("rim_started_total", "").Inc()
	srv, addr, err := StartDebugServer("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(b), "rim_started_total 1") {
		t.Errorf("debug server exposition:\n%s", b)
	}
}
