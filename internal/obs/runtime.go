package obs

import (
	"math"
	"runtime/metrics"
	"time"
)

// Go runtime/metrics bridge. The daemon's estimator-quality verdicts are
// only interpretable next to runtime pressure — a lag SLO burn with a
// 200 ms GC pause p99 is a memory problem, not a pipeline problem — so
// the sampler periodically reads the runtime's own metric stream and
// republishes the load-bearing subset as rim_runtime_* series on the
// process registry, where /metrics scrapes and rimtop pick them up.

// runtimeSamples enumerates the runtime/metrics keys the sampler reads.
var runtimeSamples = []string{
	"/sched/goroutines:goroutines",
	"/memory/classes/heap/objects:bytes",
	"/gc/cycles/total:gc-cycles",
	"/gc/pauses:seconds",
	"/sched/latencies:seconds",
}

// RuntimeSampler republishes Go runtime metrics into a Registry. Build
// one with NewRuntimeSampler, then either call Sample on your own cadence
// or Start a background loop.
type RuntimeSampler struct {
	goroutines *Gauge
	heapBytes  *Gauge
	gcPauseP99 *Gauge
	schedP99   *Gauge
	gcCycles   *Counter
	lastCycles uint64
	samples    []metrics.Sample
}

// NewRuntimeSampler resolves the rim_runtime_* handles on the registry.
// A nil registry yields a sampler whose Sample is a no-op, matching the
// package's disabled-observability contract.
func NewRuntimeSampler(reg *Registry) *RuntimeSampler {
	s := &RuntimeSampler{samples: make([]metrics.Sample, len(runtimeSamples))}
	for i, name := range runtimeSamples {
		s.samples[i].Name = name
	}
	if reg == nil {
		return s
	}
	s.goroutines = reg.Gauge("rim_runtime_goroutines",
		"live goroutine count (runtime/metrics /sched/goroutines)")
	s.heapBytes = reg.Gauge("rim_runtime_heap_bytes",
		"bytes occupied by live heap objects (runtime/metrics /memory/classes/heap/objects)")
	s.gcPauseP99 = reg.Gauge("rim_runtime_gc_pause_p99_seconds",
		"99th percentile GC stop-the-world pause over the process lifetime")
	s.schedP99 = reg.Gauge("rim_runtime_sched_latency_p99_seconds",
		"99th percentile goroutine scheduling latency over the process lifetime")
	s.gcCycles = reg.Counter("rim_runtime_gc_cycles_total",
		"completed GC cycles")
	return s
}

// Sample reads the runtime metric stream once and updates the published
// series. Safe to call concurrently with scrapes, but not with itself
// (the Start loop is the single caller in daemons).
func (s *RuntimeSampler) Sample() {
	if s == nil || s.goroutines == nil {
		return
	}
	metrics.Read(s.samples)
	for _, sm := range s.samples {
		switch sm.Name {
		case "/sched/goroutines:goroutines":
			if sm.Value.Kind() == metrics.KindUint64 {
				s.goroutines.Set(float64(sm.Value.Uint64()))
			}
		case "/memory/classes/heap/objects:bytes":
			if sm.Value.Kind() == metrics.KindUint64 {
				s.heapBytes.Set(float64(sm.Value.Uint64()))
			}
		case "/gc/cycles/total:gc-cycles":
			if sm.Value.Kind() == metrics.KindUint64 {
				// The runtime value is cumulative; the counter republishes
				// it by delta so restarts of the sampler cannot double-count.
				v := sm.Value.Uint64()
				if v > s.lastCycles {
					s.gcCycles.Add(v - s.lastCycles)
					s.lastCycles = v
				}
			}
		case "/gc/pauses:seconds":
			if sm.Value.Kind() == metrics.KindFloat64Histogram {
				s.gcPauseP99.Set(runtimeHistQuantile(sm.Value.Float64Histogram(), 0.99))
			}
		case "/sched/latencies:seconds":
			if sm.Value.Kind() == metrics.KindFloat64Histogram {
				s.schedP99.Set(runtimeHistQuantile(sm.Value.Float64Histogram(), 0.99))
			}
		}
	}
}

// Start samples immediately and then on the given interval (values at or
// below zero take 5s) until the returned stop function is called. Stop is
// idempotent and waits for the loop to exit.
func (s *RuntimeSampler) Start(every time.Duration) (stop func()) {
	if s == nil || s.goroutines == nil {
		return func() {}
	}
	if every <= 0 {
		every = 5 * time.Second
	}
	s.Sample()
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				s.Sample()
			}
		}
	}()
	var once bool
	return func() {
		if once {
			return
		}
		once = true
		close(done)
		<-exited
	}
}

// runtimeHistQuantile reads the q-quantile off a runtime/metrics
// cumulative bucket histogram (len(Buckets) == len(Counts)+1; the edge
// buckets may be infinite).
func runtimeHistQuantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			hi := h.Buckets[i+1]
			if math.IsInf(hi, 1) {
				return h.Buckets[i]
			}
			return hi
		}
	}
	last := h.Buckets[len(h.Buckets)-1]
	if math.IsInf(last, 1) {
		return h.Buckets[len(h.Buckets)-2]
	}
	return last
}
