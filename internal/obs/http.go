package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// HealthPayload is the /healthz response body: the application's health
// surface (e.g. core.Streamer.Health()) plus the registry snapshot, so one
// scrape answers both "is the stream degraded" and "what do the counters
// say".
type HealthPayload struct {
	Health  any      `json:"health"`
	Metrics []Metric `json:"metrics,omitempty"`
}

// Route is an extra (pattern, handler) pair mounted on a DebugMux beside
// the built-in endpoints — how subsystems that obs must not import (the
// trace recorder's /debug/rimtrace, the flight recorder's
// /debug/postmortem) join the debug surface.
type Route struct {
	Pattern string
	Handler http.Handler
}

// DebugMux builds the opt-in debug surface served by -debug-addr:
//
//	/metrics      Prometheus text exposition of reg
//	/healthz      JSON HealthPayload (health() plus reg.Snapshot())
//	/debug/vars   expvar JSON (reg is also published as expvar "rim")
//	/debug/pprof  the standard pprof handlers
//
// plus any extra routes. health may be nil (the payload's health field is
// then null); reg may be nil (empty exposition). The mux is self-contained
// — nothing is registered on http.DefaultServeMux.
func DebugMux(reg *Registry, health func() any, extras ...Route) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		payload := HealthPayload{Metrics: reg.Snapshot()}
		if health != nil {
			payload.Health = health()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(payload); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	reg.PublishExpvar("rim")
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, r := range extras {
		if r.Handler != nil {
			mux.Handle(r.Pattern, r.Handler)
		}
	}
	return mux
}

// expvarMu serializes PublishExpvar's get-then-publish (expvar.Publish
// panics on duplicates and offers no TryPublish).
var expvarMu sync.Mutex

// PublishExpvar exposes the registry under the given expvar name as a Func
// rendering Snapshot(). Repeat calls (or calls for an already-taken name)
// are no-ops, so every DebugMux in a process can safely request it.
func (r *Registry) PublishExpvar(name string) {
	if r == nil {
		return
	}
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

// StartDebugServer listens on addr and serves DebugMux(reg, health,
// extras...) in a background goroutine. It returns the server (for Close)
// and the bound address (useful with a ":0" addr). Startup errors (bad
// addr, port in use) are returned synchronously.
func StartDebugServer(addr string, reg *Registry, health func() any, extras ...Route) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("obs: debug server: %w", err)
	}
	srv := &http.Server{Handler: DebugMux(reg, health, extras...)}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}
