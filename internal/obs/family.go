package obs

import (
	"container/list"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// DefMaxChildren is the default per-family cardinality cap: the number of
// distinct label sets a family holds live before LRU eviction starts
// folding the coldest children into the reserved overflow child.
const DefMaxChildren = 512

// OverflowLabel is the reserved label value of a family's overflow child:
// every evicted (or Forgot) label set's counts end up under
// {label="other", ...}. Callers must not use it as a real label value.
const OverflowLabel = "other"

// FamilyOpts parameterizes a labeled metric family.
type FamilyOpts struct {
	// Labels are the label names, in rendering order (required, non-empty).
	Labels []string
	// MaxChildren caps the live label-set cardinality (default
	// DefMaxChildren). The overflow child is not counted against the cap.
	MaxChildren int
	// Bounds are the bucket bounds for HistogramFamily children (nil
	// selects DefLatencyBuckets). Ignored by counter and gauge families.
	Bounds []float64
}

// familyCore is the label-set bookkeeping shared by the three family
// kinds: a bounded map of children with LRU order, and the reserved
// overflow child absorbing evictions. The cardinality contract is hard: a
// family never holds more than MaxChildren live children, whatever label
// flood hits it, so the registry cannot be grown without bound by
// adversarial or runaway label values.
type familyCore struct {
	name, help string
	kind       string // "counter" | "gauge" | "histogram"
	labels     []string
	bounds     []float64
	max        int
	evictions  *Counter // shared rim_obs_family_evictions_total

	mu       sync.Mutex
	children map[string]*list.Element // key -> element whose Value is *famChild
	lru      *list.List               // front = most recently resolved
	other    any                      // *Counter | *Gauge | *Histogram
}

// famChild is one live label set.
type famChild struct {
	key    string
	values []string
	metric any
}

// famKey joins label values into the child map key. 0x1f (ASCII unit
// separator) never appears in sane label values; a value containing it
// would only alias two pathological label sets, never corrupt state.
func famKey(values []string) string { return strings.Join(values, "\x1f") }

func newFamilyCore(name, help, kind string, o FamilyOpts, evictions *Counter) *familyCore {
	if len(o.Labels) == 0 {
		panic(fmt.Sprintf("obs: family %q needs at least one label", name))
	}
	for _, l := range o.Labels {
		if !validName.MatchString(l) || strings.HasPrefix(l, "__") {
			panic(fmt.Sprintf("obs: family %q has invalid label name %q", name, l))
		}
	}
	if o.MaxChildren <= 0 {
		o.MaxChildren = DefMaxChildren
	}
	f := &familyCore{
		name:      name,
		help:      help,
		kind:      kind,
		labels:    append([]string(nil), o.Labels...),
		bounds:    o.Bounds,
		max:       o.MaxChildren,
		evictions: evictions,
		children:  make(map[string]*list.Element),
		lru:       list.New(),
	}
	f.other = f.newMetric()
	return f
}

// newMetric builds one child of the family's kind.
func (f *familyCore) newMetric() any {
	switch f.kind {
	case "counter":
		return &Counter{name: f.name, help: f.help}
	case "gauge":
		return &Gauge{name: f.name, help: f.help}
	default:
		h := &Histogram{name: f.name, help: f.help, bounds: f.bounds}
		h.counts = make([]atomic.Uint64, len(f.bounds))
		return h
	}
}

// with returns the child for the given label values, creating it (and
// evicting the LRU child into the overflow when at the cap) on first use.
// Resolve children once and hold the handle — with takes the family lock.
func (f *familyCore) with(values []string) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: family %q got %d label values, want %d", f.name, len(values), len(f.labels)))
	}
	key := famKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if el, ok := f.children[key]; ok {
		f.lru.MoveToFront(el)
		return el.Value.(*famChild).metric
	}
	for len(f.children) >= f.max {
		f.evictLocked()
	}
	ch := &famChild{key: key, values: append([]string(nil), values...), metric: f.newMetric()}
	f.children[key] = f.lru.PushFront(ch)
	return ch.metric
}

// get returns the live child for the given label values without creating
// one or touching the LRU order (read-side lookups must not churn the
// eviction order or fabricate children for dead label sets).
func (f *familyCore) get(values []string) (any, bool) {
	key := famKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	el, ok := f.children[key]
	if !ok {
		return nil, false
	}
	return el.Value.(*famChild).metric, true
}

// evictLocked folds the least-recently-resolved child into the overflow
// child and redirects its live handles there, so a handle resolved before
// the eviction keeps counting — into "other" — instead of into a series
// nobody renders.
func (f *familyCore) evictLocked() {
	el := f.lru.Back()
	if el == nil {
		return
	}
	f.lru.Remove(el)
	ch := el.Value.(*famChild)
	delete(f.children, ch.key)
	f.foldIntoOther(ch.metric)
	f.evictions.Inc()
}

// foldIntoOther moves a child's accumulated state into the overflow child
// and redirects the handle. Gauges are the exception: an instantaneous
// value cannot be merged, so the handle is detached instead.
func (f *familyCore) foldIntoOther(metric any) {
	switch m := metric.(type) {
	case *Counter:
		o := f.other.(*Counter)
		m.fwd.Store(o)
		o.v.Add(m.v.Swap(0))
	case *Gauge:
		m.detached.Store(true)
	case *Histogram:
		o := f.other.(*Histogram)
		m.fwd.Store(o)
		o.absorb(m)
	}
}

// forget retires one label set deliberately (e.g. a session closed): its
// counts fold into the overflow child — totals stay monotone across the
// scrape — and the slot frees up without counting as a cap eviction.
func (f *familyCore) forget(values []string) {
	key := famKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	el, ok := f.children[key]
	if !ok {
		return
	}
	f.lru.Remove(el)
	delete(f.children, key)
	f.foldIntoOther(el.Value.(*famChild).metric)
}

// each calls fn for every live child, key-sorted, the overflow child last
// (with every label value OverflowLabel). fn runs outside the family lock.
func (f *familyCore) each(fn func(values []string, metric any)) {
	f.mu.Lock()
	kids := make([]*famChild, 0, len(f.children))
	for _, el := range f.children {
		kids = append(kids, el.Value.(*famChild))
	}
	other := f.other
	f.mu.Unlock()
	sort.Slice(kids, func(i, j int) bool { return kids[i].key < kids[j].key })
	for _, ch := range kids {
		fn(ch.values, ch.metric)
	}
	ov := make([]string, len(f.labels))
	for i := range ov {
		ov[i] = OverflowLabel
	}
	fn(ov, other)
}

// lenLocked-free child count.
func (f *familyCore) size() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.children)
}

// labelMap renders one child's label set for a snapshot.
func (f *familyCore) labelMap(values []string) map[string]string {
	m := make(map[string]string, len(f.labels))
	for i, l := range f.labels {
		m[l] = values[i]
	}
	return m
}

// snapshotInto appends one Metric per live child (key-sorted, overflow
// last). The overflow child is rendered only once it has absorbed
// something, so unflooded families stay clean in the exposition.
func (f *familyCore) snapshotInto(out []Metric) []Metric {
	f.each(func(values []string, metric any) {
		isOther := len(values) > 0 && values[0] == OverflowLabel
		switch m := metric.(type) {
		case *Counter:
			if isOther && m.Value() == 0 {
				return
			}
			out = append(out, Metric{Name: f.name, Help: f.help, Type: "counter",
				Labels: f.labelMap(values), Value: float64(m.Value())})
		case *Gauge:
			if isOther {
				return // gauges are never folded into other
			}
			out = append(out, Metric{Name: f.name, Help: f.help, Type: "gauge",
				Labels: f.labelMap(values), Value: m.Value()})
		case *Histogram:
			if isOther && m.Count() == 0 {
				return
			}
			out = append(out, snapshotHistogram(f.name, f.help, f.labelMap(values), m))
		}
	})
	return out
}

// CounterFamily is a labeled counter: With(values...) hands out one
// nil-safe *Counter per label set, with the familyCore cardinality
// contract behind it. A nil family (from a nil registry) hands out nil
// children, keeping disabled instrumentation free.
type CounterFamily struct{ f *familyCore }

// With returns the child counter for the given label values (one value per
// family label, same order), creating it on first use. Resolve once per
// entity and hold the handle; With locks the family.
func (cf *CounterFamily) With(values ...string) *Counter {
	if cf == nil {
		return nil
	}
	return cf.f.with(values).(*Counter)
}

// Get returns the live child for the label values without creating one.
func (cf *CounterFamily) Get(values ...string) (*Counter, bool) {
	if cf == nil {
		return nil, false
	}
	m, ok := cf.f.get(values)
	if !ok {
		return nil, false
	}
	return m.(*Counter), true
}

// Forget retires the label set, folding its count into the overflow child.
func (cf *CounterFamily) Forget(values ...string) {
	if cf != nil {
		cf.f.forget(values)
	}
}

// Each visits every live child (key-sorted) and then the overflow child,
// whose label values are all OverflowLabel.
func (cf *CounterFamily) Each(fn func(values []string, c *Counter)) {
	if cf == nil {
		return
	}
	cf.f.each(func(v []string, m any) { fn(v, m.(*Counter)) })
}

// Other returns the reserved overflow child.
func (cf *CounterFamily) Other() *Counter {
	if cf == nil {
		return nil
	}
	return cf.f.other.(*Counter)
}

// Total sums every live child plus the overflow — the family-wide reading
// a fleet dashboard or an unlabeled predecessor metric would report.
func (cf *CounterFamily) Total() uint64 {
	if cf == nil {
		return 0
	}
	var t uint64
	cf.Each(func(_ []string, c *Counter) { t += c.Value() })
	return t
}

// Len returns the live child count (the overflow child excluded).
func (cf *CounterFamily) Len() int {
	if cf == nil {
		return 0
	}
	return cf.f.size()
}

// GaugeFamily is a labeled gauge. Evicted gauge children detach (their
// instantaneous values cannot be merged into the overflow child); the
// overflow gauge exists only to keep the family shape uniform and is never
// rendered.
type GaugeFamily struct{ f *familyCore }

// With returns the child gauge for the given label values.
func (gf *GaugeFamily) With(values ...string) *Gauge {
	if gf == nil {
		return nil
	}
	return gf.f.with(values).(*Gauge)
}

// Get returns the live child for the label values without creating one.
func (gf *GaugeFamily) Get(values ...string) (*Gauge, bool) {
	if gf == nil {
		return nil, false
	}
	m, ok := gf.f.get(values)
	if !ok {
		return nil, false
	}
	return m.(*Gauge), true
}

// Forget drops the label set (gauge values are not folded).
func (gf *GaugeFamily) Forget(values ...string) {
	if gf != nil {
		gf.f.forget(values)
	}
}

// Each visits every live child (key-sorted) and then the overflow child.
func (gf *GaugeFamily) Each(fn func(values []string, g *Gauge)) {
	if gf == nil {
		return
	}
	gf.f.each(func(v []string, m any) { fn(v, m.(*Gauge)) })
}

// Len returns the live child count.
func (gf *GaugeFamily) Len() int {
	if gf == nil {
		return 0
	}
	return gf.f.size()
}

// HistogramFamily is a labeled histogram; children share the family's
// bucket bounds, which is what makes eviction folding exact.
type HistogramFamily struct{ f *familyCore }

// With returns the child histogram for the given label values.
func (hf *HistogramFamily) With(values ...string) *Histogram {
	if hf == nil {
		return nil
	}
	return hf.f.with(values).(*Histogram)
}

// Get returns the live child for the label values without creating one.
func (hf *HistogramFamily) Get(values ...string) (*Histogram, bool) {
	if hf == nil {
		return nil, false
	}
	m, ok := hf.f.get(values)
	if !ok {
		return nil, false
	}
	return m.(*Histogram), true
}

// Forget retires the label set, folding its distribution into the
// overflow child.
func (hf *HistogramFamily) Forget(values ...string) {
	if hf != nil {
		hf.f.forget(values)
	}
}

// Each visits every live child (key-sorted) and then the overflow child.
func (hf *HistogramFamily) Each(fn func(values []string, h *Histogram)) {
	if hf == nil {
		return
	}
	hf.f.each(func(v []string, m any) { fn(v, m.(*Histogram)) })
}

// Other returns the reserved overflow child.
func (hf *HistogramFamily) Other() *Histogram {
	if hf == nil {
		return nil
	}
	return hf.f.other.(*Histogram)
}

// Len returns the live child count.
func (hf *HistogramFamily) Len() int {
	if hf == nil {
		return 0
	}
	return hf.f.size()
}

// famEvictions lazily registers the shared eviction counter — one per
// registry, covering every family in it.
func (r *Registry) famEvictions() *Counter {
	return r.Counter("rim_obs_family_evictions_total",
		"family children LRU-evicted into their overflow child at the cardinality cap")
}

// CounterFamily returns the labeled counter family registered under name,
// creating it on first use. Like the plain constructors it panics on a
// kind mismatch; it also panics when re-registered with different labels.
// A nil registry returns a nil (fully no-op) family.
func (r *Registry) CounterFamily(name, help string, o FamilyOpts) *CounterFamily {
	if r == nil {
		return nil
	}
	ev := r.famEvictions()
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.lookup(name); ok {
		cf, ok := m.(*CounterFamily)
		if !ok {
			panic(fmt.Sprintf("obs: metric %q already registered as %T, not counter family", name, m))
		}
		cf.f.checkLabels(name, o.Labels)
		return cf
	}
	cf := &CounterFamily{f: newFamilyCore(name, help, "counter", o, ev)}
	r.metrics[name] = cf
	return cf
}

// GaugeFamily returns the labeled gauge family registered under name.
func (r *Registry) GaugeFamily(name, help string, o FamilyOpts) *GaugeFamily {
	if r == nil {
		return nil
	}
	ev := r.famEvictions()
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.lookup(name); ok {
		gf, ok := m.(*GaugeFamily)
		if !ok {
			panic(fmt.Sprintf("obs: metric %q already registered as %T, not gauge family", name, m))
		}
		gf.f.checkLabels(name, o.Labels)
		return gf
	}
	gf := &GaugeFamily{f: newFamilyCore(name, help, "gauge", o, ev)}
	r.metrics[name] = gf
	return gf
}

// HistogramFamily returns the labeled histogram family registered under
// name, creating it with o.Bounds (nil selects DefLatencyBuckets) on first
// use. Bounds follow the same rules as Registry.Histogram.
func (r *Registry) HistogramFamily(name, help string, o FamilyOpts) *HistogramFamily {
	if r == nil {
		return nil
	}
	ev := r.famEvictions()
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.lookup(name); ok {
		hf, ok := m.(*HistogramFamily)
		if !ok {
			panic(fmt.Sprintf("obs: metric %q already registered as %T, not histogram family", name, m))
		}
		hf.f.checkLabels(name, o.Labels)
		return hf
	}
	bounds := o.Bounds
	if bounds == nil {
		bounds = DefLatencyBuckets
	}
	if n := len(bounds); n > 0 && math.IsInf(bounds[n-1], 1) {
		bounds = bounds[:n-1]
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram family %q bucket bounds not ascending at %d", name, i))
		}
	}
	o.Bounds = bounds
	hf := &HistogramFamily{f: newFamilyCore(name, help, "histogram", o, ev)}
	r.metrics[name] = hf
	return hf
}

// checkLabels enforces that re-registrations agree on the label schema.
func (f *familyCore) checkLabels(name string, labels []string) {
	if len(labels) != len(f.labels) {
		panic(fmt.Sprintf("obs: family %q re-registered with %d labels, want %d", name, len(labels), len(f.labels)))
	}
	for i, l := range labels {
		if l != f.labels[i] {
			panic(fmt.Sprintf("obs: family %q re-registered with label %q, want %q", name, l, f.labels[i]))
		}
	}
}
