package obs

import (
	"math"
	"runtime"
	"runtime/metrics"
	"testing"
	"time"
)

// TestRuntimeSamplerPublishes: one Sample must land plausible values in
// every rim_runtime_* series and the names must pass the lint.
func TestRuntimeSamplerPublishes(t *testing.T) {
	reg := NewRegistry()
	s := NewRuntimeSampler(reg)
	runtime.GC() // guarantee at least one cycle and one pause sample
	s.Sample()
	if v := s.goroutines.Value(); v < 1 {
		t.Fatalf("rim_runtime_goroutines = %v", v)
	}
	if v := s.heapBytes.Value(); v <= 0 {
		t.Fatalf("rim_runtime_heap_bytes = %v", v)
	}
	if v := s.gcCycles.Value(); v < 1 {
		t.Fatalf("rim_runtime_gc_cycles_total = %v", v)
	}
	if v := s.gcPauseP99.Value(); v < 0 || math.IsNaN(v) {
		t.Fatalf("rim_runtime_gc_pause_p99_seconds = %v", v)
	}
	// Cycle delta: a second GC must advance the counter by the delta,
	// not re-add the cumulative total.
	before := s.gcCycles.Value()
	runtime.GC()
	s.Sample()
	after := s.gcCycles.Value()
	if after < before || after > before+64 {
		t.Fatalf("gc cycles %d -> %d: delta accounting broken", before, after)
	}
	if bad := LintMetricNames(reg.Snapshot()); len(bad) > 0 {
		t.Fatalf("lint violations: %v", bad)
	}
}

// TestRuntimeSamplerNilRegistry: the nil-registry sampler must be inert.
func TestRuntimeSamplerNilRegistry(t *testing.T) {
	s := NewRuntimeSampler(nil)
	s.Sample() // must not panic
	stop := s.Start(time.Millisecond)
	stop()
	stop() // idempotent
	var nilS *RuntimeSampler
	nilS.Sample()
	nilS.Start(time.Millisecond)()
}

// TestRuntimeSamplerStartStop: the background loop must sample and shut
// down cleanly.
func TestRuntimeSamplerStartStop(t *testing.T) {
	reg := NewRegistry()
	s := NewRuntimeSampler(reg)
	stop := s.Start(time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for s.goroutines.Value() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	stop()
	if s.goroutines.Value() < 1 {
		t.Fatalf("loop never sampled")
	}
}

// TestRuntimeHistQuantile pins the bucket walk on a hand-built histogram.
func TestRuntimeHistQuantile(t *testing.T) {
	h := &metrics.Float64Histogram{
		Counts:  []uint64{0, 90, 9, 1},
		Buckets: []float64{math.Inf(-1), 0.001, 0.01, 0.1, math.Inf(1)},
	}
	if got := runtimeHistQuantile(h, 0.5); got != 0.01 {
		t.Fatalf("p50 = %v, want 0.01", got)
	}
	if got := runtimeHistQuantile(h, 0.99); got != 0.1 {
		t.Fatalf("p99 = %v, want 0.1", got)
	}
	// The top sample sits in the +Inf bucket: clamp to its finite lower
	// bound instead of reporting infinity.
	if got := runtimeHistQuantile(h, 1); got != 0.1 {
		t.Fatalf("p100 = %v, want 0.1", got)
	}
	empty := &metrics.Float64Histogram{Counts: []uint64{0}, Buckets: []float64{0, 1}}
	if got := runtimeHistQuantile(empty, 0.99); got != 0 {
		t.Fatalf("empty p99 = %v", got)
	}
}
