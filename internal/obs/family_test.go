package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestCounterFamilyBasics(t *testing.T) {
	r := NewRegistry()
	cf := r.CounterFamily("rim_test_frames_total", "frames", FamilyOpts{Labels: []string{"session"}})
	cf.With("a").Add(3)
	cf.With("b").Inc()
	cf.With("a").Inc() // same label set resolves the same child
	if got, _ := cf.Get("a"); got.Value() != 4 {
		t.Fatalf("child a = %d, want 4", got.Value())
	}
	if cf.Len() != 2 {
		t.Fatalf("Len = %d, want 2", cf.Len())
	}
	if cf.Total() != 5 {
		t.Fatalf("Total = %d, want 5", cf.Total())
	}
	if _, ok := cf.Get("missing"); ok {
		t.Fatal("Get fabricated a child")
	}
	if cf.Len() != 2 {
		t.Fatal("Get created a child")
	}
	// Re-registration returns the same family.
	if cf2 := r.CounterFamily("rim_test_frames_total", "frames", FamilyOpts{Labels: []string{"session"}}); cf2 != cf {
		t.Fatal("re-registration returned a different family")
	}
}

func TestFamilyNilSafety(t *testing.T) {
	var r *Registry
	cf := r.CounterFamily("x_total", "", FamilyOpts{Labels: []string{"s"}})
	gf := r.GaugeFamily("y", "", FamilyOpts{Labels: []string{"s"}})
	hf := r.HistogramFamily("z_seconds", "", FamilyOpts{Labels: []string{"s"}})
	// Every path must be a no-op, not a panic.
	cf.With("a").Inc()
	cf.Forget("a")
	cf.Each(func([]string, *Counter) { t.Fatal("nil family has children") })
	if cf.Total() != 0 || cf.Len() != 0 || cf.Other() != nil {
		t.Fatal("nil counter family not inert")
	}
	gf.With("a").Set(1)
	gf.Forget("a")
	if gf.Len() != 0 {
		t.Fatal("nil gauge family not inert")
	}
	hf.With("a").Observe(1)
	hf.Forget("a")
	if hf.Len() != 0 || hf.Other() != nil {
		t.Fatal("nil histogram family not inert")
	}
}

func TestCounterFamilyEvictionFoldsIntoOther(t *testing.T) {
	r := NewRegistry()
	cf := r.CounterFamily("rim_test_evict_total", "", FamilyOpts{Labels: []string{"session"}, MaxChildren: 2})
	a := cf.With("a")
	a.Add(10)
	cf.With("b").Add(20)
	cf.With("c").Add(30) // evicts a (LRU)
	if cf.Len() != 2 {
		t.Fatalf("Len = %d, want 2 after eviction", cf.Len())
	}
	if _, ok := cf.Get("a"); ok {
		t.Fatal("evicted child still live")
	}
	if got := cf.Other().Value(); got != 10 {
		t.Fatalf("other = %d, want 10 (a's count)", got)
	}
	// The stale handle must keep counting — into other, not into the void.
	a.Add(5)
	if got := cf.Other().Value(); got != 15 {
		t.Fatalf("other = %d, want 15 after post-eviction Add on stale handle", got)
	}
	if cf.Total() != 65 {
		t.Fatalf("Total = %d, want 65 — counts lost across eviction", cf.Total())
	}
	if ev := r.Counter("rim_obs_family_evictions_total", "").Value(); ev != 1 {
		t.Fatalf("evictions counter = %d, want 1", ev)
	}
}

func TestCounterFamilyLRUOrder(t *testing.T) {
	r := NewRegistry()
	cf := r.CounterFamily("rim_test_lru_total", "", FamilyOpts{Labels: []string{"s"}, MaxChildren: 2})
	cf.With("a").Inc()
	cf.With("b").Inc()
	cf.With("a").Inc() // touch a: b becomes LRU
	cf.With("c").Inc() // evicts b, not a
	if _, ok := cf.Get("a"); !ok {
		t.Fatal("recently-used child a was evicted")
	}
	if _, ok := cf.Get("b"); ok {
		t.Fatal("LRU child b survived past the cap")
	}
}

func TestHistogramFamilyEvictionAbsorbs(t *testing.T) {
	r := NewRegistry()
	hf := r.HistogramFamily("rim_test_lag_seconds", "", FamilyOpts{
		Labels: []string{"session"}, MaxChildren: 1, Bounds: []float64{0.1, 1}})
	a := hf.With("a")
	a.Observe(0.05)
	a.Observe(0.5)
	a.Observe(5)
	hf.With("b") // evicts a
	o := hf.Other()
	if o.Count() != 3 {
		t.Fatalf("other count = %d, want 3", o.Count())
	}
	if got := o.Sum(); got < 5.54 || got > 5.56 {
		t.Fatalf("other sum = %v, want 5.55", got)
	}
	if got := o.CountAtOrBelow(0.1); got != 1 {
		t.Fatalf("other <=0.1 = %d, want 1 — bucket counts lost in fold", got)
	}
	// Stale handle redirects.
	a.Observe(0.05)
	if o.Count() != 4 {
		t.Fatalf("other count = %d, want 4 after redirected Observe", o.Count())
	}
}

func TestGaugeFamilyEvictionDetaches(t *testing.T) {
	r := NewRegistry()
	gf := r.GaugeFamily("rim_test_depth", "", FamilyOpts{Labels: []string{"s"}, MaxChildren: 1})
	a := gf.With("a")
	a.Set(7)
	gf.With("b").Set(9) // evicts a
	a.Set(100)          // must not resurrect or leak anywhere
	var series []string
	gf.Each(func(values []string, g *Gauge) {
		series = append(series, fmt.Sprintf("%s=%v", values[0], g.Value()))
	})
	// Only the live child and the (zero, unfolded) overflow child remain.
	want := []string{"b=9", "other=0"}
	if len(series) != 2 || series[0] != want[0] || series[1] != want[1] {
		t.Fatalf("series = %v, want %v", series, want)
	}
}

func TestFamilyForget(t *testing.T) {
	r := NewRegistry()
	cf := r.CounterFamily("rim_test_forget_total", "", FamilyOpts{Labels: []string{"s"}})
	c := cf.With("gone")
	c.Add(42)
	cf.Forget("gone")
	if cf.Len() != 0 {
		t.Fatal("Forget left the child live")
	}
	if cf.Other().Value() != 42 {
		t.Fatalf("other = %d, want 42 — Forget dropped counts", cf.Other().Value())
	}
	c.Inc() // stale handle folds forward
	if cf.Other().Value() != 43 {
		t.Fatal("stale handle lost count after Forget")
	}
	if ev := r.Counter("rim_obs_family_evictions_total", "").Value(); ev != 0 {
		t.Fatalf("Forget counted as eviction (%d)", ev)
	}
	cf.Forget("never-existed") // no-op, no panic
}

// TestFamilyCardinalityBounded is the acceptance check: 10k distinct
// session labels must leave the registry bounded at the cap, with every
// count conserved.
func TestFamilyCardinalityBounded(t *testing.T) {
	r := NewRegistry()
	cf := r.CounterFamily("rim_test_flood_total", "", FamilyOpts{Labels: []string{"session"}})
	hf := r.HistogramFamily("rim_test_flood_seconds", "", FamilyOpts{
		Labels: []string{"session"}, Bounds: []float64{1}})
	const flood = 10000
	for i := 0; i < flood; i++ {
		id := fmt.Sprintf("sess-%05d", i)
		cf.With(id).Inc()
		hf.With(id).Observe(0.5)
	}
	if cf.Len() != DefMaxChildren || hf.Len() != DefMaxChildren {
		t.Fatalf("Len = %d/%d, want %d — cap not enforced", cf.Len(), hf.Len(), DefMaxChildren)
	}
	if cf.Total() != flood {
		t.Fatalf("Total = %d, want %d — counts lost under flood", cf.Total(), flood)
	}
	if hf.Other().Count() != flood-DefMaxChildren {
		t.Fatalf("other count = %d, want %d", hf.Other().Count(), flood-DefMaxChildren)
	}
	snap := r.Snapshot()
	// cap live children + other, per family, plus the evictions counter.
	if max := 2*(DefMaxChildren+1) + 1; len(snap) > max {
		t.Fatalf("snapshot has %d entries, want <= %d — registry unbounded", len(snap), max)
	}
}

func TestFamilyPrometheusRendering(t *testing.T) {
	r := NewRegistry()
	cf := r.CounterFamily("rim_test_render_total", "per-session frames", FamilyOpts{
		Labels: []string{"session", "shard"}})
	cf.With("w\"1\\x", "0").Add(2)
	cf.With("w2", "1").Add(3)
	hf := r.HistogramFamily("rim_test_render_seconds", "lag", FamilyOpts{
		Labels: []string{"session"}, Bounds: []float64{1}})
	hf.With("w2").Observe(0.5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP rim_test_render_total per-session frames\n",
		"# TYPE rim_test_render_total counter\n",
		`rim_test_render_total{session="w\"1\\x",shard="0"} 2` + "\n",
		`rim_test_render_total{session="w2",shard="1"} 3` + "\n",
		`rim_test_render_seconds_bucket{session="w2",le="1"} 1` + "\n",
		`rim_test_render_seconds_bucket{session="w2",le="+Inf"} 1` + "\n",
		`rim_test_render_seconds_sum{session="w2"} 0.5` + "\n",
		`rim_test_render_seconds_count{session="w2"} 1` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "# TYPE rim_test_render_total"); n != 1 {
		t.Fatalf("TYPE header emitted %d times, want once:\n%s", n, out)
	}
	// Children sort by label-value key: w"1\x < w2.
	if i, j := strings.Index(out, `session="w\"1\\x"`), strings.Index(out, `session="w2",shard`); i == -1 || j == -1 || i > j {
		t.Fatalf("children not key-sorted (i=%d j=%d):\n%s", i, j, out)
	}
}

func TestFamilyOtherRenderedOnlyWhenNonzero(t *testing.T) {
	r := NewRegistry()
	cf := r.CounterFamily("rim_test_quiet_total", "", FamilyOpts{Labels: []string{"s"}, MaxChildren: 4})
	cf.With("a").Inc()
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if strings.Contains(sb.String(), `s="other"`) {
		t.Fatalf("overflow child rendered with nothing folded:\n%s", sb.String())
	}
	cf.Forget("a")
	sb.Reset()
	r.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), `rim_test_quiet_total{s="other"} 1`) {
		t.Fatalf("overflow child missing after fold:\n%s", sb.String())
	}
}

func TestFamilyPanics(t *testing.T) {
	r := NewRegistry()
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("no labels", func() { r.CounterFamily("a_total", "", FamilyOpts{}) })
	mustPanic("bad label name", func() { r.CounterFamily("b_total", "", FamilyOpts{Labels: []string{"1x"}}) })
	mustPanic("reserved label name", func() { r.CounterFamily("b2_total", "", FamilyOpts{Labels: []string{"__name__"}}) })
	cf := r.CounterFamily("c_total", "", FamilyOpts{Labels: []string{"s"}})
	mustPanic("arity mismatch", func() { cf.With("a", "b") })
	mustPanic("label schema mismatch", func() {
		r.CounterFamily("c_total", "", FamilyOpts{Labels: []string{"t"}})
	})
	r.Counter("plain_total", "")
	mustPanic("kind mismatch", func() {
		r.CounterFamily("plain_total", "", FamilyOpts{Labels: []string{"s"}})
	})
	mustPanic("family vs plain mismatch", func() { r.Counter("c_total", "") })
}

// TestFamilyChurnRace drives concurrent child creation, eviction, Forget
// and scraping; run with -race this proves the family's synchronization.
func TestFamilyChurnRace(t *testing.T) {
	r := NewRegistry()
	cf := r.CounterFamily("rim_test_churn_total", "", FamilyOpts{Labels: []string{"session"}, MaxChildren: 8})
	hf := r.HistogramFamily("rim_test_churn_seconds", "", FamilyOpts{
		Labels: []string{"session"}, MaxChildren: 8, Bounds: []float64{0.1, 1}})
	gf := r.GaugeFamily("rim_test_churn_depth", "", FamilyOpts{Labels: []string{"session"}, MaxChildren: 8})
	const writers, iters = 4, 500
	var writeWg, readWg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		writeWg.Add(1)
		go func(w int) {
			defer writeWg.Done()
			for i := 0; i < iters; i++ {
				id := fmt.Sprintf("s%d-%d", w, i%32)
				c := cf.With(id)
				c.Inc()
				hf.With(id).Observe(float64(i%3) / 2)
				gf.With(id).Set(float64(i))
				if i%7 == 0 {
					cf.Forget(id)
					c.Inc() // stale handle after concurrent Forget
				}
			}
		}(w)
	}
	for s := 0; s < 2; s++ {
		readWg.Add(1)
		go func() {
			defer readWg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var sb strings.Builder
				if err := r.WritePrometheus(&sb); err != nil {
					t.Error(err)
					return
				}
				cf.Total()
				hf.Len()
			}
		}()
	}
	writeWg.Wait()
	close(stop)
	readWg.Wait()
	// Every Inc must land somewhere — live child or other: iters per
	// writer, plus one post-Forget Inc per Forget.
	want := uint64(writers * (iters + 1 + (iters-1)/7))
	if got := cf.Total(); got != want {
		t.Fatalf("Total = %d, want %d — counts lost under churn", got, want)
	}
}
