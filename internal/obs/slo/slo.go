// Package slo layers service-level objectives over the cumulative
// counters internal/obs already collects. An Objective declares what
// fraction of events must be good (a target like 0.99) over a sliding
// window; a Source reports the cumulative (good, total) counts backing
// it. The Engine samples every source on Tick, maintains the sliding
// window, and derives the three readings SRE practice cares about:
//
//   - the good ratio over the window,
//   - the error-budget fraction remaining (how much of the allowed
//     badness the window has already spent), and
//   - multi-window burn rates: how fast the budget is burning over a
//     short and a long window, in multiples of the all-window-exactly-
//     at-target rate. Burn 1.0 spends the budget exactly at expiry;
//     burn 14.4 spends 2% of a 30-day budget in an hour.
//
// State is ok / warn / page, with the standard multi-window AND: a page
// requires both the short and the long burn above the page threshold, so
// a brief spike (short high, long low) and a stale ancient burn (long
// high, short low) both stay quiet. Transitions into page invoke OnPage,
// which rimserved wires to the flight recorder for a postmortem bundle.
//
// The engine never reads the wall clock: callers pass now into Tick, so
// tests (and replay tooling) drive time explicitly.
package slo

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"rim/internal/obs"
)

// State is an objective's paging state.
type State int

const (
	StateOK State = iota
	StateWarn
	StatePage
)

// String returns the state's wire spelling.
func (s State) String() string {
	switch s {
	case StateWarn:
		return "warn"
	case StatePage:
		return "page"
	}
	return "ok"
}

// Sample is a point-in-time reading of the cumulative event counts
// behind an objective: Total events seen, Good of them within objective.
// Both are cumulative (monotone); the engine differences them itself.
type Sample struct {
	Good  float64
	Total float64
}

// Source produces the current cumulative Sample for an objective.
type Source func() Sample

// Objective declares one SLO.
type Objective struct {
	// Name identifies the objective; it is the slo label value on every
	// rim_slo_* metric and must be unique within the engine.
	Name string
	// Entity attributes the objective ("fleet", or a session id).
	Entity string
	// Target is the required good fraction in (0, 1), e.g. 0.99.
	Target float64
	// Window is the error-budget window the budget is accounted over.
	Window time.Duration
	// Source reports cumulative (good, total); required.
	Source Source
}

// Config parameterizes the engine.
type Config struct {
	// ShortWindow/LongWindow are the burn-rate windows. Defaults:
	// LongWindow = objective window, ShortWindow = LongWindow / 12
	// (the 1h/5m shape at a 1h budget window).
	ShortWindow, LongWindow time.Duration
	// PageBurn/WarnBurn are the burn-rate thresholds (defaults 14.4, 3).
	PageBurn, WarnBurn float64
	// Obs receives the rim_slo_* metric families (nil disables).
	Obs *obs.Registry
	// OnPage, when set, is invoked (outside the engine lock) each time an
	// objective transitions into StatePage.
	OnPage func(o Objective, s Status)
}

// Status is one objective's current evaluation, JSON-shaped for /slo.
type Status struct {
	Name          string  `json:"name"`
	Entity        string  `json:"entity"`
	Target        float64 `json:"target"`
	WindowSeconds float64 `json:"window_seconds"`
	// GoodRatio is the good fraction over the budget window (1 when the
	// window saw no events).
	GoodRatio float64 `json:"good_ratio"`
	// BudgetRemaining is the unspent error-budget fraction over the
	// budget window, clamped to [0, 1].
	BudgetRemaining float64 `json:"budget_remaining"`
	// BurnShort/BurnLong are the burn rates over the two windows.
	BurnShort float64 `json:"burn_short"`
	BurnLong  float64 `json:"burn_long"`
	State     string  `json:"state"`
	// Events is the total event count inside the budget window.
	Events float64 `json:"events"`
}

// sample is one retained source reading.
type sample struct {
	t time.Time
	s Sample
}

// tracked is one objective plus its sliding sample history.
type tracked struct {
	o     Objective
	hist  []sample // time-ascending; trimmed to the budget window
	state State
	last  Status
}

// Engine evaluates a dynamic set of objectives. Safe for concurrent use.
type Engine struct {
	cfg Config

	mu   sync.Mutex
	objs map[string]*tracked

	mState  *obs.GaugeFamily
	mBudget *obs.GaugeFamily
	mBurn   *obs.GaugeFamily
	mTrans  *obs.CounterFamily
}

// New builds an engine. Defaults are applied per Config.
func New(cfg Config) *Engine {
	if cfg.PageBurn <= 0 {
		cfg.PageBurn = 14.4
	}
	if cfg.WarnBurn <= 0 {
		cfg.WarnBurn = 3
	}
	e := &Engine{cfg: cfg, objs: make(map[string]*tracked)}
	if r := cfg.Obs; r != nil {
		lbl := obs.FamilyOpts{Labels: []string{"slo"}}
		e.mState = r.GaugeFamily("rim_slo_state",
			"objective paging state (0 ok, 1 warn, 2 page)", lbl)
		e.mBudget = r.GaugeFamily("rim_slo_budget_remaining_ratio",
			"unspent error-budget fraction over the objective window", lbl)
		e.mBurn = r.GaugeFamily("rim_slo_burn_rate",
			"error-budget burn rate in multiples of the sustainable rate",
			obs.FamilyOpts{Labels: []string{"slo", "window"}})
		e.mTrans = r.CounterFamily("rim_slo_transitions_total",
			"objective state transitions", obs.FamilyOpts{Labels: []string{"slo", "to"}})
	}
	return e
}

// Register adds (or replaces) an objective. The sample history starts
// empty; the objective reports ok until Tick has seen enough of it.
func (e *Engine) Register(o Objective) error {
	if o.Name == "" || o.Source == nil {
		return fmt.Errorf("slo: objective needs a name and a source")
	}
	if o.Target <= 0 || o.Target >= 1 {
		return fmt.Errorf("slo: objective %q target %v outside (0, 1)", o.Name, o.Target)
	}
	if o.Window <= 0 {
		return fmt.Errorf("slo: objective %q needs a positive window", o.Name)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.objs[o.Name] = &tracked{o: o, last: Status{
		Name: o.Name, Entity: o.Entity, Target: o.Target,
		WindowSeconds: o.Window.Seconds(), GoodRatio: 1, BudgetRemaining: 1,
		State: StateOK.String(),
	}}
	return nil
}

// Unregister drops an objective (a closed session's, typically) and
// forgets its metric children.
func (e *Engine) Unregister(name string) {
	e.mu.Lock()
	_, ok := e.objs[name]
	delete(e.objs, name)
	e.mu.Unlock()
	if !ok {
		return
	}
	e.mState.Forget(name)
	e.mBudget.Forget(name)
	e.mBurn.Forget(name, "short")
	e.mBurn.Forget(name, "long")
}

// windows resolves the burn windows for one objective.
func (e *Engine) windows(o Objective) (short, long time.Duration) {
	long = e.cfg.LongWindow
	if long <= 0 || long > o.Window {
		long = o.Window
	}
	short = e.cfg.ShortWindow
	if short <= 0 || short >= long {
		short = long / 12
		if short <= 0 {
			short = long
		}
	}
	return short, long
}

// deltaOver returns the (good, total) deltas across the trailing window
// ending at the newest sample: newest minus the youngest sample at least
// window old (or the oldest retained when none is).
func deltaOver(hist []sample, window time.Duration) (good, total float64) {
	if len(hist) < 2 {
		return 0, 0
	}
	newest := hist[len(hist)-1]
	base := hist[0]
	cutoff := newest.t.Add(-window)
	for _, s := range hist {
		if s.t.After(cutoff) {
			break
		}
		base = s
	}
	return newest.s.Good - base.s.Good, newest.s.Total - base.s.Total
}

// burn converts a window's (good, total) delta into a burn rate: the
// observed bad fraction in multiples of the objective's allowance.
func burn(good, total, target float64) float64 {
	if total <= 0 {
		return 0
	}
	bad := (total - good) / total
	if bad < 0 {
		bad = 0
	}
	return bad / (1 - target)
}

// Tick samples every objective's source at now, slides the windows and
// re-evaluates states. OnPage fires (after the lock is released) for
// every objective that transitioned into page this tick.
func (e *Engine) Tick(now time.Time) {
	type paged struct {
		o Objective
		s Status
	}
	var fire []paged

	e.mu.Lock()
	for _, tr := range e.objs {
		s := tr.o.Source()
		tr.hist = append(tr.hist, sample{t: now, s: s})
		// Retain one sample beyond the window so deltaOver always has a
		// base that is at least window old once the history is mature.
		cut := 0
		for cut < len(tr.hist)-1 && !tr.hist[cut+1].t.After(now.Add(-tr.o.Window)) {
			cut++
		}
		tr.hist = tr.hist[cut:]

		short, long := e.windows(tr.o)
		goodW, totalW := deltaOver(tr.hist, tr.o.Window)
		goodS, totalS := deltaOver(tr.hist, short)
		goodL, totalL := deltaOver(tr.hist, long)

		st := Status{
			Name: tr.o.Name, Entity: tr.o.Entity, Target: tr.o.Target,
			WindowSeconds: tr.o.Window.Seconds(),
			GoodRatio:     1, BudgetRemaining: 1,
			Events: totalW,
		}
		if totalW > 0 {
			st.GoodRatio = goodW / totalW
			st.BudgetRemaining = 1 - burn(goodW, totalW, tr.o.Target)
			if st.BudgetRemaining < 0 {
				st.BudgetRemaining = 0
			}
		}
		st.BurnShort = burn(goodS, totalS, tr.o.Target)
		st.BurnLong = burn(goodL, totalL, tr.o.Target)

		next := StateOK
		switch {
		case st.BurnShort >= e.cfg.PageBurn && st.BurnLong >= e.cfg.PageBurn:
			next = StatePage
		case st.BurnShort >= e.cfg.WarnBurn && st.BurnLong >= e.cfg.WarnBurn:
			next = StateWarn
		}
		st.State = next.String()
		if next != tr.state {
			e.mTrans.With(tr.o.Name, next.String()).Inc()
			if next == StatePage && e.cfg.OnPage != nil {
				fire = append(fire, paged{o: tr.o, s: st})
			}
		}
		tr.state = next
		tr.last = st

		e.mState.With(tr.o.Name).Set(float64(next))
		e.mBudget.With(tr.o.Name).Set(st.BudgetRemaining)
		e.mBurn.With(tr.o.Name, "short").Set(st.BurnShort)
		e.mBurn.With(tr.o.Name, "long").Set(st.BurnLong)
	}
	e.mu.Unlock()

	for _, p := range fire {
		e.cfg.OnPage(p.o, p.s)
	}
}

// Statuses returns every objective's latest evaluation, name-sorted.
func (e *Engine) Statuses() []Status {
	e.mu.Lock()
	out := make([]Status, 0, len(e.objs))
	for _, tr := range e.objs {
		out = append(out, tr.last)
	}
	e.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Status returns one objective's latest evaluation.
func (e *Engine) Status(name string) (Status, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	tr, ok := e.objs[name]
	if !ok {
		return Status{}, false
	}
	return tr.last, true
}

// Names returns the registered objective names, sorted.
func (e *Engine) Names() []string {
	e.mu.Lock()
	names := make([]string, 0, len(e.objs))
	for n := range e.objs {
		names = append(names, n)
	}
	e.mu.Unlock()
	sort.Strings(names)
	return names
}
