package slo

import (
	"encoding/json"
	"net/http"
	"time"

	"rim/internal/obs"
)

// Report is the /slo payload.
type Report struct {
	// State is the worst state across objectives (a fleet-level rollup).
	State      string   `json:"state"`
	Objectives []Status `json:"objectives"`
}

// Snapshot builds the /slo payload from the engine's latest evaluations.
func (e *Engine) Snapshot() Report {
	rep := Report{State: StateOK.String(), Objectives: e.Statuses()}
	worst := StateOK
	for _, s := range rep.Objectives {
		switch s.State {
		case StatePage.String():
			worst = StatePage
		case StateWarn.String():
			if worst < StateWarn {
				worst = StateWarn
			}
		}
	}
	rep.State = worst.String()
	return rep
}

// Handler serves the engine's Snapshot as indented JSON (the /slo
// endpoint, shaped for rimtop and CI scripts).
func (e *Engine) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(e.Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// Run ticks the engine every interval until stop is closed, reading the
// wall clock once per tick. Tests use Tick directly instead.
func (e *Engine) Run(interval time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case now := <-t.C:
			e.Tick(now)
		}
	}
}

// CounterRatioSource builds a Source from (bad, total) counters: good is
// total minus bad. Either counter may be nil (reads 0).
func CounterRatioSource(bad, total *obs.Counter) Source {
	return func() Sample {
		t := float64(total.Value())
		return Sample{Good: t - float64(bad.Value()), Total: t}
	}
}

// LatencySource builds a Source from a latency histogram: an observation
// is good when it lands in a bucket bounded at or below le (so le should
// be one of the histogram's bucket bounds). Nil-safe.
func LatencySource(h *obs.Histogram, le float64) Source {
	return func() Sample {
		return Sample{Good: float64(h.CountAtOrBelow(le)), Total: float64(h.Count())}
	}
}
